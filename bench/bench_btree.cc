// Micro-benchmarks of the physical substrate: B+-tree operations, index
// probes, and indexed-vs-naive path evaluation wall-clock (the paper's
// metric is page accesses; these timings sanity-check that the simulator
// is usable at experiment scale).

#include <benchmark/benchmark.h>

#include <random>

#include "bench_json_gbench.h"
#include "datagen/generator.h"
#include "datagen/paper_schema.h"
#include "exec/database.h"
#include "index/btree.h"

namespace {

using namespace pathix;

void BM_BTreeInsert(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    Pager pager(4096);
    PostingTree tree(&pager, "bench");
    state.ResumeTiming();
    for (int i = 0; i < n; ++i) {
      tree.Upsert(
          Key::FromInt(i),
          [&] {
            PostingRecord rec;
            rec.key_value = Key::FromInt(i);
            return rec;
          },
          [&](PostingRecord* rec) {
            rec->postings.push_back(Posting{0, static_cast<Oid>(i), 1});
          });
    }
    benchmark::DoNotOptimize(tree.num_records());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_BTreeInsert)->Arg(1000)->Arg(10000);

void BM_BTreeLookup(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Pager pager(4096);
  PostingTree tree(&pager, "bench");
  for (int i = 0; i < n; ++i) {
    tree.Upsert(
        Key::FromInt(i),
        [&] {
          PostingRecord rec;
          rec.key_value = Key::FromInt(i);
          return rec;
        },
        [&](PostingRecord* rec) {
          rec->postings.push_back(Posting{0, static_cast<Oid>(i), 1});
        });
  }
  std::mt19937 rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tree.Lookup(Key::FromInt(static_cast<int>(rng() % n))));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BTreeLookup)->Arg(1000)->Arg(100000);

struct SimFixtureState {
  SimFixtureState() : setup(MakeExample51Setup()),
                      db(setup.schema, PhysicalParams{}) {
    PathDataGenerator gen(11);
    gen.Populate(&db, setup.path,
                 {
                     {setup.division, 50, 25, 1.0},
                     {setup.company, 50, 0, 2.0},
                     {setup.vehicle, 200, 0, 1.5},
                     {setup.bus, 100, 0, 1.0},
                     {setup.truck, 100, 0, 1.0},
                     {setup.person, 2000, 0, 1.5},
                 });
  }
  PaperSetup setup;
  SimDatabase db;
};

void BM_IndexedPathQuery(benchmark::State& state) {
  SimFixtureState s;
  CheckOk(s.db.ConfigureIndexes(
      s.setup.path, IndexConfiguration({{Subpath{1, 2}, IndexOrg::kNIX},
                                        {Subpath{3, 4}, IndexOrg::kMX}})));
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        s.db.Query(Key::FromString(EndingValue(i++ % 25)), s.setup.person));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IndexedPathQuery);

void BM_NaivePathQuery(benchmark::State& state) {
  SimFixtureState s;
  CheckOk(s.db.ConfigureIndexes(
      s.setup.path, IndexConfiguration({{Subpath{1, 4}, IndexOrg::kMIX}})));
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.db.QueryNaive(
        Key::FromString(EndingValue(i++ % 25)), s.setup.person));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NaivePathQuery);

void BM_NIXMaintenanceInsert(benchmark::State& state) {
  SimFixtureState s;
  CheckOk(s.db.ConfigureIndexes(
      s.setup.path, IndexConfiguration({{Subpath{1, 4}, IndexOrg::kNIX}})));
  const std::vector<Oid> vehicles = s.db.store().PeekAll(s.setup.vehicle);
  std::mt19937 rng(3);
  for (auto _ : state) {
    AttrValues attrs;
    attrs["owns"] = {Value::Ref(vehicles[rng() % vehicles.size()])};
    benchmark::DoNotOptimize(s.db.Insert(s.setup.person, std::move(attrs)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NIXMaintenanceInsert);

}  // namespace

int main(int argc, char** argv) {
  pathix_bench::BenchJson json("bench_btree");
  pathix_bench::JsonLineReporter reporter(&json);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  json.Write();
  return 0;
}
