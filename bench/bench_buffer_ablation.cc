// Ablation: buffer pool vs the paper's cold-access model.
//
// The cost model (like the paper's) charges one page access per B+-tree
// node visit — a cold buffer. Real systems keep hot index levels resident.
// This bench runs the Example 5.1 query mix on the physical simulator under
// growing LRU buffer pools, showing how far the cold assumption is from a
// warm system and that the *relative* ordering of configurations — all the
// selection algorithm needs — is stable.

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_json.h"
#include "datagen/generator.h"
#include "datagen/paper_schema.h"
#include "exec/database.h"

namespace {

using namespace pathix;

constexpr int kDistinct = 60;

double QueryMixCost(SimDatabase& db, const PaperSetup& setup,
                    std::size_t buffer_pages) {
  db.pager().EnableBuffer(buffer_pages);
  db.pager().ResetStats();
  // Figure 7's query mix: 0.30 Person, 0.30 Vehicle, 0.05 Bus,
  // 0.10 Company, 0.20 Division — emulated as 19 queries per round.
  const std::pair<ClassId, int> mix[] = {{setup.person, 6},
                                         {setup.vehicle, 6},
                                         {setup.bus, 1},
                                         {setup.company, 2},
                                         {setup.division, 4}};
  int queries = 0;
  for (int round = 0; round < 10; ++round) {
    for (const auto& [cls, reps] : mix) {
      for (int r = 0; r < reps; ++r) {
        const Key value =
            Key::FromString(EndingValue((round * 19 + queries) % kDistinct));
        CheckOk(db.Query(value, cls, /*include_subclasses=*/true).status());
        ++queries;
      }
    }
  }
  const double per_query =
      static_cast<double>(db.pager().stats().total()) / queries;
  db.pager().EnableBuffer(0);
  return per_query;
}

}  // namespace

int main() {
  using namespace pathix;

  std::cout << "=== Buffer-pool ablation: page accesses per query "
               "(Figure 7 query mix, 1/20-scale data) ===\n\n";

  const IndexConfiguration configs[] = {
      IndexConfiguration({{Subpath{1, 2}, IndexOrg::kNIX},
                          {Subpath{3, 4}, IndexOrg::kMX}}),
      IndexConfiguration({{Subpath{1, 4}, IndexOrg::kNIX}}),
      IndexConfiguration({{Subpath{1, 4}, IndexOrg::kMIX}}),
      IndexConfiguration({{Subpath{1, 4}, IndexOrg::kMX}}),
  };
  const char* names[] = {"paper optimum (NIX+MX)", "whole-path NIX",
                         "whole-path MIX", "whole-path MX"};
  const char* slugs[] = {"paper_optimum", "whole_nix", "whole_mix",
                         "whole_mx"};
  pathix_bench::BenchJson json("bench_buffer_ablation");

  std::printf("  %-24s %10s %10s %10s %10s\n", "configuration", "cold",
              "buf=16", "buf=128", "buf=1024");
  for (int c = 0; c < 4; ++c) {
    const PaperSetup setup = MakeExample51Setup();
    SimDatabase db(setup.schema, PhysicalParams{});
    PathDataGenerator gen(99);
    gen.Populate(&db, setup.path,
                 {
                     {setup.division, 100, kDistinct, 1.0},
                     {setup.company, 100, 0, 2.0},
                     {setup.vehicle, 500, 0, 2.0},
                     {setup.bus, 250, 0, 1.0},
                     {setup.truck, 250, 0, 1.0},
                     {setup.person, 10000, 0, 1.0},
                 });
    CheckOk(db.ConfigureIndexes(setup.path, configs[c]));
    const double cold = QueryMixCost(db, setup, 0);
    const double buf16 = QueryMixCost(db, setup, 16);
    const double buf128 = QueryMixCost(db, setup, 128);
    const double buf1024 = QueryMixCost(db, setup, 1024);
    std::printf("  %-24s %10.2f %10.2f %10.2f %10.2f\n", names[c], cold,
                buf16, buf128, buf1024);
    json.Add(std::string(slugs[c]) + "_cold", cold);
    json.Add(std::string(slugs[c]) + "_buf16", buf16);
    json.Add(std::string(slugs[c]) + "_buf128", buf128);
    json.Add(std::string(slugs[c]) + "_buf1024", buf1024);
  }
  json.Write();
  std::cout << "\n(the cold column is what the Section 3 model predicts; "
               "realistic buffers (16-128 pages)\n shrink constants but "
               "preserve the ordering the selection algorithm relies on; "
               "once the\n whole working set is resident (buf=1024) only "
               "record-overflow chains remain, which\n penalizes the "
               "large-record NIX organizations — beyond the paper's cold "
               "model)\n";
  return 0;
}
