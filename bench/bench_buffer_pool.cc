// Buffer-pool capacity sweep: hit rate and throughput vs pool size.
//
// One Example 5.1 database, one deterministic query stream (the Figure 7
// mix), replayed identically under growing CLOCK pools. Capacity 0 is the
// paper's cold model — every touch a charged page access. Because the
// stream is read-only, every capacity sees the exact same touch sequence,
// so the sweep isolates the pool: hit rate must grow monotonically until
// the working set is resident, and the honest-accounting invariant
// hits + reads == cold reads must hold at every size.

#include <chrono>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_json.h"
#include "datagen/generator.h"
#include "datagen/paper_schema.h"
#include "exec/database.h"

namespace {

using namespace pathix;

constexpr int kDistinct = 60;
constexpr int kRounds = 20;

struct SweepPoint {
  std::size_t capacity = 0;
  double hit_rate = 0;
  double ops_per_sec = 0;
  std::uint64_t reads = 0;
  std::uint64_t hits = 0;
  std::uint64_t evictions = 0;
};

SweepPoint RunSweep(SimDatabase& db, const PaperSetup& setup,
                    std::size_t buffer_pages) {
  db.pager().EnableBuffer(0);  // drop warm state from the previous point
  db.pager().EnableBuffer(buffer_pages);
  db.pager().ResetStats();
  const BufferPoolStats before = db.pager().buffer_pool().GetStats();
  const std::pair<ClassId, int> mix[] = {{setup.person, 6},
                                         {setup.vehicle, 6},
                                         {setup.bus, 1},
                                         {setup.company, 2},
                                         {setup.division, 4}};
  int queries = 0;
  const auto start = std::chrono::steady_clock::now();
  for (int round = 0; round < kRounds; ++round) {
    for (const auto& [cls, reps] : mix) {
      for (int r = 0; r < reps; ++r) {
        const Key value =
            Key::FromString(EndingValue((round * 19 + queries) % kDistinct));
        CheckOk(db.Query(value, cls, /*include_subclasses=*/true).status());
        ++queries;
      }
    }
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  SweepPoint point;
  point.capacity = buffer_pages;
  const AccessStats stats = db.pager().stats();
  point.reads = stats.reads;
  point.hits = stats.buffer_hits;
  point.evictions =
      db.pager().buffer_pool().GetStats().evictions - before.evictions;
  const double touches = static_cast<double>(stats.reads + stats.buffer_hits);
  point.hit_rate =
      touches > 0 ? static_cast<double>(stats.buffer_hits) / touches : 0;
  point.ops_per_sec = seconds > 0 ? queries / seconds : 0;
  return point;
}

}  // namespace

int main() {
  using namespace pathix;

  std::cout << "=== Buffer-pool capacity sweep: hit rate and throughput "
               "(Figure 7 query mix, whole-path MIX) ===\n\n";

  const PaperSetup setup = MakeExample51Setup();
  SimDatabase db(setup.schema, PhysicalParams{});
  PathDataGenerator gen(99);
  gen.Populate(&db, setup.path,
               {
                   {setup.division, 100, kDistinct, 1.0},
                   {setup.company, 100, 0, 2.0},
                   {setup.vehicle, 500, 0, 2.0},
                   {setup.bus, 250, 0, 1.0},
                   {setup.truck, 250, 0, 1.0},
                   {setup.person, 10000, 0, 1.0},
               });
  CheckOk(db.ConfigureIndexes(
      setup.path, IndexConfiguration({{Subpath{1, 4}, IndexOrg::kMIX}})));

  const std::size_t capacities[] = {0, 8, 32, 128, 512, 2048};
  pathix_bench::BenchJson json("bench_buffer_pool");

  std::printf("  %10s %10s %12s %10s %10s %10s\n", "pool", "hit_rate",
              "ops/sec", "reads", "hits", "evictions");
  std::vector<SweepPoint> points;
  for (const std::size_t cap : capacities) {
    const SweepPoint p = RunSweep(db, setup, cap);
    std::printf("  %10zu %9.1f%% %12.0f %10llu %10llu %10llu\n", p.capacity,
                p.hit_rate * 100, p.ops_per_sec,
                static_cast<unsigned long long>(p.reads),
                static_cast<unsigned long long>(p.hits),
                static_cast<unsigned long long>(p.evictions));
    const std::string slug = "cap" + std::to_string(cap);
    json.Add(slug + "_hit_rate", p.hit_rate);
    json.Add(slug + "_ops_per_sec", p.ops_per_sec);
    points.push_back(p);
  }
  db.pager().EnableBuffer(0);

  // Acceptance checks, enforced here so the CI bench loop (which runs every
  // bench and fails on nonzero exit) catches a regression in either the
  // eviction policy or the accounting.
  int failures = 0;
  const std::uint64_t cold_reads = points.front().reads;
  for (std::size_t i = 0; i < points.size(); ++i) {
    // Honest accounting: the pool absorbs touches, it never loses them.
    if (points[i].reads + points[i].hits != cold_reads) {
      std::fprintf(stderr,
                   "FAIL: cap=%zu reads+hits=%llu != cold reads %llu\n",
                   points[i].capacity,
                   static_cast<unsigned long long>(points[i].reads +
                                                   points[i].hits),
                   static_cast<unsigned long long>(cold_reads));
      ++failures;
    }
    // Bigger pools never hit less on the identical stream.
    if (i > 0 && points[i].hit_rate < points[i - 1].hit_rate) {
      std::fprintf(stderr, "FAIL: hit rate fell from cap=%zu to cap=%zu\n",
                   points[i - 1].capacity, points[i].capacity);
      ++failures;
    }
  }
  json.Add("cold_reads", static_cast<double>(cold_reads));
  json.Add("monotone", failures == 0 ? 1 : 0);
  json.Write();
  if (failures == 0) {
    std::cout << "\nhit rate monotone non-decreasing; every capacity "
                 "reconciled reads+hits == cold reads\n";
  }
  return failures == 0 ? 0 : 1;
}
