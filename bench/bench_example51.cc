// Experiment E7 (DESIGN.md): the two conclusions of Example 5.1.
//
//  1. Splitting the path beats any single whole-path index: the paper
//     reports 16.03 for {(Per.owns.man, NIX), (Comp.divs.name, MX)} vs
//     42.84 for a whole-path NIX — a factor 2.7.
//  2. Branch-and-bound finds the optimum exploring 4 configurations
//     instead of all 2^(n-1) = 8.
//
// Our physical parameters differ from the unavailable report [7]; the
// reproduced quantities are the configuration itself, the direction and
// magnitude of the improvement, and the pruning behaviour. EXPERIMENTS.md
// records paper-vs-measured values.

#include <iomanip>
#include <iostream>

#include "bench_json.h"
#include "core/advisor.h"
#include "datagen/paper_schema.h"

int main() {
  using namespace pathix;

  const PaperSetup setup = MakeExample51Setup();
  AdvisorOptions opts;
  opts.capture_trace = true;
  const Recommendation rec =
      AdviseIndexConfiguration(setup.schema, setup.path, setup.catalog,
                               setup.load, opts)
          .value();
  AdvisorOptions exhaustive_opts;
  exhaustive_opts.use_branch_and_bound = false;
  const Recommendation ex =
      AdviseIndexConfiguration(setup.schema, setup.path, setup.catalog,
                               setup.load, exhaustive_opts)
          .value();

  std::cout << std::fixed << std::setprecision(2)
            << "=== Example 5.1: optimal index configuration for "
            << setup.path.ToString(setup.schema) << " ===\n\n";

  std::cout << "whole-path single-index costs:\n";
  const Subpath whole{1, 4};
  for (IndexOrg org : rec.matrix.orgs()) {
    std::cout << "  " << std::setw(4) << ToString(org) << " : "
              << rec.matrix.Cost(whole, org) << "\n";
  }

  std::cout << "\n                          measured        paper\n"
            << "optimal configuration : "
            << rec.result.config.ToString(setup.schema, setup.path) << "\n"
            << "                        (paper: {(Per.owns.man, NIX), "
               "(Comp.divs.name, MX)})\n"
            << "optimal cost          : " << std::setw(8) << rec.result.cost
            << "        16.03\n"
            << "best whole-path       : " << std::setw(8)
            << rec.whole_path_cost << "        42.84  (both NIX)\n"
            << "improvement factor    : " << std::setw(8)
            << rec.improvement_factor << "        2.7\n"
            << "configs explored (BB) : " << std::setw(8)
            << rec.result.evaluated << "        4\n"
            << "configs explored (ex) : " << std::setw(8) << ex.result.evaluated
            << "        8\n";

  std::cout << "\nbranch-and-bound trace:\n";
  for (const OptimizerTraceEvent& ev : rec.result.trace) {
    std::cout << "  " << ev.ToString() << "\n";
  }

  const bool same_config =
      rec.result.config.ToString(setup.schema, setup.path) ==
      "{(Person.owns.man, NIX), (Company.divs.name, MX)}";
  // Whole-path winner: the paper reports NIX; with our physical parameters
  // NIX and MIX tie within a few percent (see EXPERIMENTS.md).
  const bool nix_competitive =
      rec.matrix.Cost(whole, IndexOrg::kNIX) <= rec.whole_path_cost * 1.15;
  const bool shape_holds = nix_competitive && rec.improvement_factor > 1.3 &&
                           rec.result.evaluated < ex.result.evaluated &&
                           rec.result.cost == ex.result.cost;
  std::cout << (same_config && shape_holds
                    ? "\n[REPRODUCED] Example 5.1's optimal configuration and "
                      "both conclusions hold\n             (whole-path "
                      "winner is a NIX/MIX near-tie; paper: NIX).\n"
                    : "\n[MISMATCH] Example 5.1 shape diverged!\n");

  pathix_bench::BenchJson json("bench_example51");
  json.Add("optimal_cost", rec.result.cost);
  json.Add("whole_path_cost", rec.whole_path_cost);
  json.Add("improvement_factor", rec.improvement_factor);
  json.Add("configs_explored_bb", rec.result.evaluated);
  json.Add("configs_explored_exhaustive", ex.result.evaluated);
  json.Add("reproduced", same_config && shape_holds ? 1 : 0);
  json.Write();
  return same_config && shape_holds ? 0 : 1;
}
