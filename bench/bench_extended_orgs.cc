// Extension experiment (paper Section 6): the selection algorithm with the
// extended candidate set {MX, MIX, NIX, NX, PX (+ NONE)}. The paper argues
// adding organizations leaves the algorithm unchanged — only the matrix
// gains columns. This bench prints the extended Figure 8 matrix and shows
// where the new candidates win (and how storage trades against cost).

#include <iomanip>
#include <iostream>

#include "bench_json.h"
#include "core/advisor.h"
#include "datagen/paper_schema.h"

int main() {
  using namespace pathix;

  const PaperSetup setup = MakeExample51Setup();
  const std::vector<IndexOrg> extended = {IndexOrg::kMX, IndexOrg::kMIX,
                                          IndexOrg::kNIX, IndexOrg::kNX,
                                          IndexOrg::kPX, IndexOrg::kNone};

  const PathContext ctx =
      PathContext::Build(setup.schema, setup.path, setup.catalog, setup.load)
          .value();
  const CostMatrix matrix = CostMatrix::Build(ctx, extended);

  std::cout << "=== Extended cost matrix (Section 6 candidates) for "
            << setup.path.ToString(setup.schema) << " ===\n"
            << "(NX is infinite on subpaths whose interior classes carry "
               "query load; NONE on any queried subpath)\n\n";
  matrix.Print(std::cout);

  AdvisorOptions opts;
  opts.orgs = extended;
  const Recommendation rec = AdviseIndexConfiguration(ctx, opts);
  AdvisorOptions base_opts;
  const Recommendation base = AdviseIndexConfiguration(ctx, base_opts);

  std::cout << std::fixed << std::setprecision(2)
            << "\noptimal with {MX, MIX, NIX}          : "
            << base.result.config.ToString(setup.schema, setup.path)
            << "  cost " << base.result.cost
            << "\noptimal with extended candidates     : "
            << rec.result.config.ToString(setup.schema, setup.path)
            << "  cost " << rec.result.cost << "\n";

  // Storage ablation per whole-path organization.
  std::cout << "\nwhole-path storage footprints (index pages * page size):\n";
  for (IndexOrg org : {IndexOrg::kMX, IndexOrg::kMIX, IndexOrg::kNIX,
                       IndexOrg::kNX, IndexOrg::kPX}) {
    const std::unique_ptr<OrgCostModel> m = MakeOrgCostModel(org, ctx, 1, 4);
    std::cout << "  " << std::setw(4) << ToString(org) << " : " << std::setw(12)
              << m->StorageBytes() / (1024.0 * 1024.0) << " MiB\n";
  }

  // Root-read workload: NX's niche.
  LoadDistribution root_reads;
  root_reads.Set(setup.person, 1.0, 0.001, 0.001);
  const PathContext root_ctx =
      PathContext::Build(setup.schema, setup.path, setup.catalog, root_reads)
          .value();
  const Recommendation root_rec = AdviseIndexConfiguration(root_ctx, opts);
  std::cout << "\nroot-read-only workload optimum      : "
            << root_rec.result.config.ToString(setup.schema, setup.path)
            << "  cost " << root_rec.result.cost << "\n";

  pathix_bench::BenchJson json("bench_extended_orgs");
  json.Add("base_optimal_cost", base.result.cost);
  json.Add("extended_optimal_cost", rec.result.cost);
  json.Add("root_read_optimal_cost", root_rec.result.cost);
  json.Add("nix_whole_path_storage_bytes",
           MakeOrgCostModel(IndexOrg::kNIX, ctx, 1, 4)->StorageBytes());
  json.Write();
  return 0;
}
