// Experiment E4 (DESIGN.md): reproduces Figure 6 and the Section 5
// walkthrough of Opt_Ind_Con on the hypothetical cost matrix for
// Pex = C1.A1.A2.A3.A4.
//
// Paper's narrative: start from {P, NIX} (cost 9); evaluate {S13|S44}=12,
// {S12|S34}=12, {S12|S3|S4}=12; improve with {S1|S234}=8; prune {S1|S23...}
// at 8; evaluate {S1|S2|S34}=13; prune {S1|S2|S3...} at 9. Optimal:
// {(C1.A1, MX), (C2.A2.A3.A4, NIX)} with processing cost 8.

#include <cstdio>
#include <iostream>

#include "bench_json.h"
#include "core/optimizer.h"
#include "datagen/paper_schema.h"

int main() {
  using namespace pathix;

  std::cout << "=== Figure 6: hypothetical cost matrix for Pex = "
               "C1.A1.A2.A3.A4 ===\n"
               "(values printed in the paper are reconstructed to satisfy "
               "every walkthrough constraint;\n row minima marked '*' — the "
               "paper underlines them)\n\n";
  const CostMatrix matrix = MakeFigure6Matrix();
  matrix.Print(std::cout);

  std::cout << "\n=== Section 5 walkthrough: Opt_Ind_Con trace ===\n";
  const OptimizeResult bb = SelectBranchAndBound(matrix, /*capture_trace=*/true);
  for (const OptimizerTraceEvent& ev : bb.trace) {
    std::cout << "  " << ev.ToString() << "\n";
  }

  const OptimizeResult ex = SelectExhaustive(matrix);
  std::cout << "\noptimal configuration : " << bb.config.ToString()
            << "\nprocessing cost       : " << bb.cost
            << "   (paper: {(C1.A1, MX), (C2.A2.A3.A4, NIX)}, cost 8)"
            << "\nconfigs evaluated     : " << bb.evaluated << " of "
            << ex.evaluated << " (pruned prefixes: " << bb.pruned << ")\n";

  const bool ok = bb.cost == 8.0 && bb.config.degree() == 2 &&
                  bb.config.parts()[0].org == IndexOrg::kMX &&
                  bb.config.parts()[1].org == IndexOrg::kNIX &&
                  ex.cost == bb.cost;
  std::cout << (ok ? "\n[REPRODUCED] Figure 6 walkthrough matches the paper.\n"
                   : "\n[MISMATCH] walkthrough diverged from the paper!\n");

  pathix_bench::BenchJson json("bench_fig6_walkthrough");
  json.Add("bb_cost", bb.cost);
  json.Add("bb_evaluated", bb.evaluated);
  json.Add("bb_pruned", bb.pruned);
  json.Add("exhaustive_evaluated", ex.evaluated);
  json.Add("reproduced", ok ? 1 : 0);
  json.Write();
  return ok ? 0 : 1;
}
