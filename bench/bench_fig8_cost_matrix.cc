// Experiments E5+E6 (DESIGN.md): Figure 7's database/workload
// characteristics feed the cost model of Section 3; the resulting cost
// matrix for Pexa = Per.owns.man.divs.name is the paper's Figure 8
// (15 subpath/organization cells per column, row minima underlined).
//
// Absolute values depend on physical parameters the paper's tech report [7]
// fixed (unavailable); the decisive *shape* — which organization wins each
// row — is asserted in tests/core/advisor_test.cc and reported here.

#include <iomanip>
#include <iostream>

#include "bench_json.h"
#include "core/advisor.h"
#include "datagen/paper_schema.h"

int main() {
  using namespace pathix;

  const PaperSetup setup = MakeExample51Setup();
  std::cout << "=== Figure 7: database and workload characteristics ===\n\n"
            << "  class      n        d       nin   (alpha, beta, gamma)\n"
            << "  Person     200000   20000   1     (0.30, 0.10, 0.10)\n"
            << "  Vehicle    10000    5000    3     (0.30, 0.00, 0.05)\n"
            << "  Bus        5000     2500    2     (0.05, 0.05, 0.10)\n"
            << "  Truck      5000     2500    2     (0.00, 0.10, 0.00)\n"
            << "  Company    1000     1000    4     (0.10, 0.10, 0.10)\n"
            << "  Division   1000     1000    1     (0.20, 0.20, 0.10)\n\n"
            << "physical parameters: page " << setup.catalog.params().page_size
            << " B, oid/pointer/key " << setup.catalog.params().oid_len
            << " B (paper's values are in the unavailable report [7])\n\n";

  const PathContext ctx =
      PathContext::Build(setup.schema, setup.path, setup.catalog, setup.load)
          .value();
  const CostMatrix matrix = CostMatrix::Build(ctx);

  std::cout << "=== Figure 8: cost matrix for Pexa = "
            << setup.path.ToString(setup.schema) << " ===\n\n"
            << std::fixed << std::setprecision(2);
  matrix.Print(std::cout);

  std::cout << "\nper-row winners:\n";
  for (const Subpath& sp : matrix.subpaths()) {
    std::cout << "  " << matrix.RowLabel(SubpathRowIndex(ctx.n(), sp)) << " -> "
              << ToString(matrix.MinOrg(sp)) << " ("
              << matrix.MinCost(sp) << ")\n";
  }

  std::cout << "\ncost breakdown of the winning rows (query / prefix / "
               "maintenance / boundary):\n";
  for (const Subpath& sp : {Subpath{1, 2}, Subpath{3, 4}, Subpath{1, 4}}) {
    const SubpathCost c =
        ComputeSubpathCost(ctx, sp.start, sp.end, matrix.MinOrg(sp));
    std::cout << "  " << matrix.RowLabel(SubpathRowIndex(ctx.n(), sp)) << " ["
              << ToString(matrix.MinOrg(sp)) << "]: " << c.query << " / "
              << c.prefix << " / " << c.maintain << " / " << c.boundary
              << "  = " << c.total() << "\n";
  }

  pathix_bench::BenchJson json("bench_fig8_cost_matrix");
  const Subpath whole{1, ctx.n()};
  json.Add("rows", static_cast<int>(matrix.subpaths().size()));
  json.Add("whole_path_min_cost", matrix.MinCost(whole));
  json.Add("whole_path_min_org", ToString(matrix.MinOrg(whole)));
  json.Add("s12_min_cost", matrix.MinCost(Subpath{1, 2}));
  json.Add("s34_min_cost", matrix.MinCost(Subpath{3, 4}));
  json.Write();
  return 0;
}
