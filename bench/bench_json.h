#pragma once

// Machine-readable benchmark output: every bench_* binary, next to its
// human-readable table, appends key metrics to a BenchJson and writes one
// JSON object as a single line to BENCH_<name>.json in the working
// directory. CI and scripts can then track the perf trajectory across PRs
// without scraping stdout.
//
// Deliberately tiny: flat string/number fields, no nesting, no external
// dependency. Non-finite numbers become null (JSON has no inf/nan).

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

namespace pathix_bench {

class BenchJson {
 public:
  /// \p name names the benchmark binary, e.g. "bench_online".
  explicit BenchJson(std::string name) : name_(std::move(name)) {
    Add("bench", name_);
  }

  void Add(const std::string& key, const std::string& value) {
    fields_.push_back("\"" + Escape(key) + "\":\"" + Escape(value) + "\"");
  }
  void Add(const std::string& key, const char* value) {
    Add(key, std::string(value));
  }
  void Add(const std::string& key, double value) {
    if (!std::isfinite(value)) {
      fields_.push_back("\"" + Escape(key) + "\":null");
      return;
    }
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", value);
    fields_.push_back("\"" + Escape(key) + "\":" + buf);
  }
  void Add(const std::string& key, long value) {
    Add(key, static_cast<double>(value));
  }
  void Add(const std::string& key, int value) {
    Add(key, static_cast<double>(value));
  }
  void Add(const std::string& key, unsigned long value) {
    Add(key, static_cast<double>(value));
  }

  /// Writes "BENCH_<name>.json" (one line). Prints the location, or a
  /// warning on failure; benchmarks still succeed without the file.
  void Write() const {
    const std::string path = "BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "(could not write %s)\n", path.c_str());
      return;
    }
    std::fputc('{', f);
    for (std::size_t i = 0; i < fields_.size(); ++i) {
      if (i > 0) std::fputc(',', f);
      std::fputs(fields_[i].c_str(), f);
    }
    std::fputs("}\n", f);
    std::fclose(f);
    std::printf("(metrics: %s)\n", path.c_str());
  }

 private:
  static std::string Escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      if (static_cast<unsigned char>(c) < 0x20) {
        out += ' ';  // control characters never appear in our keys
        continue;
      }
      out.push_back(c);
    }
    return out;
  }

  std::string name_;
  std::vector<std::string> fields_;
};

}  // namespace pathix_bench
