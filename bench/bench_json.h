#pragma once

// Machine-readable benchmark output: every bench_* binary, next to its
// human-readable table, appends key metrics to a BenchJson and writes one
// JSON object as a single line to BENCH_<name>.json in the working
// directory. CI and scripts (scripts/bench_trend.py) can then track the
// perf trajectory across PRs without scraping stdout.
//
// Built on the observability layer: numeric fields are gauges in a private
// obs::MetricsRegistry (so a bench can also export its registry through
// obs/export.h if it wants Prometheus text), and the JSON line is
// assembled by obs::JsonWriter — correct escaping and non-finite-to-null
// handling live in one place instead of being re-derived here.

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "obs/json_writer.h"
#include "obs/metrics.h"

namespace pathix_bench {

class BenchJson {
 public:
  /// \p name names the benchmark binary, e.g. "bench_online".
  explicit BenchJson(std::string name) : name_(std::move(name)) {
    Add("bench", name_);
  }

  void Add(const std::string& key, const std::string& value) {
    fields_.push_back(Field{key, nullptr, value});
  }
  void Add(const std::string& key, const char* value) {
    Add(key, std::string(value));
  }
  void Add(const std::string& key, double value) {
    pathix::obs::Gauge& gauge = metrics_.GaugeAt(key);
    gauge.Set(value);
    fields_.push_back(Field{key, &gauge, std::string()});
  }
  void Add(const std::string& key, long value) {
    Add(key, static_cast<double>(value));
  }
  void Add(const std::string& key, int value) {
    Add(key, static_cast<double>(value));
  }
  void Add(const std::string& key, unsigned long value) {
    Add(key, static_cast<double>(value));
  }

  /// The registry behind the numeric fields, for benches that also want an
  /// obs/export.h rendering of their metrics.
  pathix::obs::MetricsRegistry& metrics() { return metrics_; }

  /// Writes "BENCH_<name>.json" (one line). Prints the location, or a
  /// warning on failure; benchmarks still succeed without the file.
  void Write() const {
    pathix::obs::JsonWriter w;
    w.BeginObject();
    for (const Field& f : fields_) {
      w.Key(f.key);
      if (f.gauge != nullptr) {
        w.Value(f.gauge->Value());
      } else {
        w.Value(f.text);
      }
    }
    w.EndObject();
    const std::string path = "BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "(could not write %s)\n", path.c_str());
      return;
    }
    std::fputs(w.str().c_str(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("(metrics: %s)\n", path.c_str());
  }

 private:
  /// One output field, in insertion order. Numeric fields read their value
  /// back from the registry gauge at Write() time (gauge addresses are
  /// stable for the registry's lifetime), so late updates through
  /// metrics() land in the JSON line too.
  struct Field {
    std::string key;
    pathix::obs::Gauge* gauge;  ///< null for string fields
    std::string text;
  };

  std::string name_;
  pathix::obs::MetricsRegistry metrics_;
  std::vector<Field> fields_;
};

}  // namespace pathix_bench
