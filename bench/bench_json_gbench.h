#pragma once

// Google-Benchmark adapter for bench_json.h: console output as usual, plus
// every run's adjusted real time captured into the BENCH_<name>.json
// metrics line. Only benches that already depend on Google Benchmark may
// include this header (the build skips those when the library is absent).

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench_json.h"

namespace pathix_bench {

class JsonLineReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonLineReporter(BenchJson* json) : json_(json) {}
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      json_->Add(run.benchmark_name() + "_real_ns", run.GetAdjustedRealTime());
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  BenchJson* json_;
};

}  // namespace pathix_bench
