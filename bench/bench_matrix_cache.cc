// Satellite of the online subsystem (ROADMAP open item): CostMatrix::Build
// performs O(n^2) * |orgs| organization-model evaluations per call, which
// the online selector used to repeat on every drift check. CostMatrixBuilder
// memoizes the load-independent unit costs, so a rebuild under drifted loads
// is pure reweighting. This bench measures both paths on long reference
// chains with the full six-organization candidate set.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_json.h"
#include "core/matrix_cache.h"

namespace {

using namespace pathix;

struct ChainSetup {
  Schema schema;
  Catalog catalog;
  std::vector<ClassId> classes;
  Path path;
};

/// A reference chain C0 -> C1 -> ... -> C_depth ending in an atomic
/// attribute, statistics shrinking along the chain.
ChainSetup MakeChain(int depth) {
  ChainSetup setup;
  double n = 1000000;
  for (int i = 0; i <= depth; ++i) {
    const ClassId cls = setup.schema.AddClass("C" + std::to_string(i)).value();
    setup.classes.push_back(cls);
    setup.catalog.SetClassStats(cls, ClassStats{n, n / 2, 1.5, 64});
    n = n / 2 < 64 ? 64 : n / 2;
  }
  std::vector<std::string> attrs;
  for (int i = 0; i < depth; ++i) {
    CheckOk(setup.schema.AddReferenceAttribute(
        setup.classes[static_cast<std::size_t>(i)], "a" + std::to_string(i),
        setup.classes[static_cast<std::size_t>(i + 1)], true));
    attrs.push_back("a" + std::to_string(i));
  }
  CheckOk(setup.schema.AddAtomicAttribute(setup.classes.back(), "name",
                                          AtomicType::kString));
  attrs.push_back("name");
  setup.path = Path::Create(setup.schema, setup.classes[0], attrs).value();
  return setup;
}

/// The i-th drifted load over the chain (what the online monitor hands the
/// selector on the i-th check: same statistics, different weights).
LoadDistribution DriftedLoad(const ChainSetup& setup, int i) {
  LoadDistribution load;
  const int k = static_cast<int>(setup.classes.size());
  for (int c = 0; c < k; ++c) {
    const double phase = static_cast<double>((c + i) % k) / k;
    load.Set(setup.classes[static_cast<std::size_t>(c)], 0.1 + phase,
             0.05 + phase / 2, 0.02 + phase / 4);
  }
  return load;
}

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main() {
  const std::vector<IndexOrg> orgs = {IndexOrg::kMX,  IndexOrg::kMIX,
                                      IndexOrg::kNIX, IndexOrg::kNX,
                                      IndexOrg::kPX,  IndexOrg::kNone};
  constexpr int kRebuilds = 20;  // drift checks per configuration

  pathix_bench::BenchJson json("bench_matrix_cache");
  std::printf(
      "=== Cost_Matrix construction: uncached vs unit-cost cache ===\n"
      "(%d rebuilds under drifting loads, %zu candidate organizations)\n\n"
      "  n    rows   uncached ms   cached ms   speedup\n",
      kRebuilds, orgs.size());

  for (int n : {4, 8, 16, 24, 32}) {
    const ChainSetup setup = MakeChain(n - 1);

    std::vector<PathContext> contexts;
    for (int i = 0; i < kRebuilds; ++i) {
      contexts.push_back(PathContext::Build(setup.schema, setup.path,
                                            setup.catalog,
                                            DriftedLoad(setup, i))
                             .value());
    }

    const auto t0 = std::chrono::steady_clock::now();
    double uncached_sum = 0;
    for (const PathContext& ctx : contexts) {
      uncached_sum += CostMatrix::Build(ctx, orgs).MinCost(Subpath{1, n});
    }
    const double uncached_ms = MillisSince(t0);

    CostMatrixBuilder builder(orgs);
    const auto t1 = std::chrono::steady_clock::now();
    double cached_sum = 0;
    for (const PathContext& ctx : contexts) {
      cached_sum += builder.Build(ctx).MinCost(Subpath{1, n});
    }
    const double cached_ms = MillisSince(t1);

    if (uncached_sum != cached_sum) {
      std::fprintf(stderr, "MISMATCH: cached matrix diverged at n=%d\n", n);
      return 1;
    }
    const double speedup = cached_ms > 0 ? uncached_ms / cached_ms : 0;
    std::printf("  %-4d %-6d %-13.2f %-11.2f %.1fx\n", n, NumSubpaths(n),
                uncached_ms, cached_ms, speedup);
    json.Add("n" + std::to_string(n) + "_uncached_ms", uncached_ms);
    json.Add("n" + std::to_string(n) + "_cached_ms", cached_ms);
    json.Add("n" + std::to_string(n) + "_speedup", speedup);
  }

  std::printf(
      "\n(the cache pays off once statistics hold still between drift "
      "checks: one model\n evaluation round, then pure reweighting; the "
      "online controller's lazy ANALYZE\n keeps exactly that invariant)\n");
  json.Write();
  return 0;
}
