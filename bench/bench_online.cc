// Online index selection: how the controller's advantage over static
// configurations depends on (a) the drift rate — how often the workload
// flips between a query-heavy and an update-heavy mix — and (b) the
// hysteresis factor, which trades adaptation speed against thrashing.
// Self-timed; every experiment replays the identical operation stream
// online / per-phase-oracle / per-candidate-static (see online/experiment.h).

#include <cstdio>
#include <string>

#include "bench_json.h"
#include "online/experiment.h"

namespace {

using namespace pathix;

/// A document-store trace: Submission -> Forum, flipping between reviewer
/// search and bulk ingest every `phase_ops` operations.
TraceSpec MakeFlippingTrace(std::uint64_t phase_ops, int flips) {
  TraceSpec spec;
  const ClassId submission = spec.schema.AddClass("Submission").value();
  const ClassId forum = spec.schema.AddClass("Forum").value();
  CheckOk(spec.schema.AddReferenceAttribute(submission, "forum", forum));
  CheckOk(spec.schema.AddAtomicAttribute(forum, "name", AtomicType::kString));
  TracePath tp;
  tp.id = "default";
  tp.path = Path::Create(spec.schema, submission, {"forum", "name"}).value();
  spec.paths.push_back(std::move(tp));
  spec.options.orgs = {IndexOrg::kMX, IndexOrg::kMIX, IndexOrg::kNIX,
                       IndexOrg::kNone};
  spec.seed = 4242;
  spec.populate.push_back(TracePopulate{submission, 2000, 1, 1.0});
  spec.populate.push_back(TracePopulate{forum, 50, 50, 1.0});
  for (int i = 0; i < flips; ++i) {
    TracePhase phase;
    phase.ops = phase_ops;
    LoadDistribution mix;
    if (i % 2 == 0) {
      phase.name = "search" + std::to_string(i);
      mix.Set(submission, 0.95, 0.03, 0.02);
    } else {
      phase.name = "ingest" + std::to_string(i);
      mix.Set(submission, 0.02, 0.6, 0.38);
    }
    phase.SetSinglePathMix(mix);
    spec.phases.push_back(std::move(phase));
  }
  return spec;
}

int CountSwitches(const ExperimentReport& r) {
  int switches = 0;
  for (const ReconfigurationEvent& ev : r.events) {
    if (!ev.initial) ++switches;
  }
  return switches;
}

}  // namespace

int main() {
  pathix_bench::BenchJson json("bench_online");

  // ---------------------------------------------------- drift-rate sweep
  // Fixed total work (8192 ops), shifting cut into ever shorter phases.
  std::printf(
      "=== drift-rate sweep: 8192 ops, phase length vs adaptivity ===\n\n"
      "  phase ops   switches   online      oracle      best static   "
      "online/static   online/oracle\n");
  for (const std::uint64_t phase_ops : {4096u, 2048u, 1024u, 512u}) {
    const int flips = static_cast<int>(8192 / phase_ops);
    const TraceSpec spec = MakeFlippingTrace(phase_ops, flips);
    const ExperimentReport r =
        RunOnlineExperiment(spec, ControllerOptions{}).value();
    std::printf("  %-11llu %-10d %-11.0f %-11.0f %-13.0f %-15.3f %.3f\n",
                static_cast<unsigned long long>(phase_ops), CountSwitches(r),
                r.online.total_cost(), r.oracle.total_cost(),
                r.best_static_cost(), r.online_vs_best_static(),
                r.online_vs_oracle());
    const std::string prefix = "phase" + std::to_string(phase_ops);
    json.Add(prefix + "_online_cost", r.online.total_cost());
    json.Add(prefix + "_oracle_cost", r.oracle.total_cost());
    json.Add(prefix + "_best_static_cost", r.best_static_cost());
    json.Add(prefix + "_switches", CountSwitches(r));
  }
  std::printf(
      "\n(long phases amortize adaptation: online beats every static pick; "
      "as phases approach\n the monitor's half-life the controller rightly "
      "stops chasing the drift)\n\n");

  // ---------------------------------------------------- hysteresis sweep
  std::printf(
      "=== hysteresis sweep: 4 x 2048-op phases, theta vs thrashing ===\n\n"
      "  theta     switches   transition pages   online total   "
      "online/oracle\n");
  const TraceSpec spec = MakeFlippingTrace(2048, 4);
  for (const double theta : {1.0, 1.5, 4.0, 16.0, 1e9}) {
    ControllerOptions options;
    options.hysteresis = theta;
    const ExperimentReport r = RunOnlineExperiment(spec, options).value();
    std::printf("  %-9.3g %-10d %-18.0f %-14.0f %.3f\n", theta,
                CountSwitches(r), r.online.transition_pages(),
                r.online.total_cost(), r.online_vs_oracle());
    char prefix[32];
    std::snprintf(prefix, sizeof prefix, "theta%g", theta);
    json.Add(std::string(prefix) + "_switches", CountSwitches(r));
    json.Add(std::string(prefix) + "_online_cost", r.online.total_cost());
  }
  std::printf(
      "\n(theta -> infinity pins the initial configuration — zero transition "
      "cost, maximal\n regret; small theta adapts eagerly and pays for it "
      "in transitions)\n");

  json.Write();
  return 0;
}
