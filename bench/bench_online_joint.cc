// Joint online index selection: how the JointReconfigurationController's
// advantage and overhead scale with (a) the number of workload paths
// sharing a common tail, (b) how much of each path overlaps with the
// others, and (c) the storage budget. Every experiment replays the
// identical operation stream online / per-phase-joint-oracle / static-joint
// (see online/joint_experiment.h). Self-timed.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "bench_json.h"
#include "online/joint_experiment.h"

namespace {

using namespace pathix;

/// A workload of `paths` overlapping paths: a shared chain
/// M1 -> M2 -> ... -> M<overlap> -> name, entered by per-path head classes
/// H1..H<paths>. Path i = Hi.r.m1....m<overlap-1>.name (length overlap+1),
/// so all paths share the whole chain suffix of length `overlap`. Phases
/// flip between head-query-heavy and churn-heavy traffic.
TraceSpec MakeOverlapTrace(int paths, int overlap, double budget_bytes) {
  TraceSpec spec;
  std::vector<ClassId> chain;
  for (int i = 0; i < overlap; ++i) {
    chain.push_back(
        spec.schema.AddClass("M" + std::to_string(i + 1)).value());
  }
  for (int i = 0; i + 1 < overlap; ++i) {
    CheckOk(spec.schema.AddReferenceAttribute(
        chain[static_cast<std::size_t>(i)],
        "m" + std::to_string(i + 1),
        chain[static_cast<std::size_t>(i + 1)]));
  }
  CheckOk(spec.schema.AddAtomicAttribute(chain.back(), "name",
                                         AtomicType::kString));

  std::vector<std::string> chain_attrs;
  for (int i = 0; i + 1 < overlap; ++i) {
    chain_attrs.push_back("m" + std::to_string(i + 1));
  }
  chain_attrs.push_back("name");

  std::vector<ClassId> heads;
  for (int p = 0; p < paths; ++p) {
    const ClassId head =
        spec.schema.AddClass("H" + std::to_string(p + 1)).value();
    heads.push_back(head);
    CheckOk(spec.schema.AddReferenceAttribute(head, "r", chain.front(),
                                              /*multi=*/true));
    TracePath tp;
    tp.id = "path" + std::to_string(p + 1);
    std::vector<std::string> attrs{"r"};
    attrs.insert(attrs.end(), chain_attrs.begin(), chain_attrs.end());
    tp.path = Path::Create(spec.schema, head, attrs).value();
    spec.paths.push_back(std::move(tp));
  }

  spec.options.orgs = {IndexOrg::kMX, IndexOrg::kNIX, IndexOrg::kNone};
  spec.seed = 20260728;
  spec.storage_budget_bytes = budget_bytes;
  spec.has_budget = std::isfinite(budget_bytes);

  for (ClassId head : heads) {
    spec.populate.push_back(TracePopulate{head, 1200, 1, 1.0});
  }
  for (std::size_t i = 0; i < chain.size(); ++i) {
    const bool last = i + 1 == chain.size();
    spec.populate.push_back(
        TracePopulate{chain[i], last ? 60 : 150, last ? 60 : 1, 1.5});
  }

  for (int f = 0; f < 4; ++f) {
    TracePhase phase;
    phase.ops = 3000;
    phase.queries.assign(spec.paths.size(), {});
    if (f % 2 == 0) {
      phase.name = "search" + std::to_string(f);
      for (std::size_t p = 0; p < spec.paths.size(); ++p) {
        phase.queries[p][heads[p]] = 0.9 / static_cast<double>(paths);
      }
      phase.updates[heads[0]] = OpLoad{0, 0.06, 0.04};
    } else {
      phase.name = "ingest" + std::to_string(f);
      for (std::size_t p = 0; p < spec.paths.size(); ++p) {
        phase.queries[p][heads[p]] = 0.04 / static_cast<double>(paths);
      }
      for (std::size_t p = 0; p < spec.paths.size(); ++p) {
        phase.updates[heads[p]] =
            OpLoad{0, 0.6 / static_cast<double>(paths),
                   0.36 / static_cast<double>(paths)};
      }
    }
    // Resolve the per-path mixes the oracle solves on (the parser does this
    // for file specs; programmatic specs do it by hand).
    phase.mixes.assign(spec.paths.size(), {});
    for (std::size_t p = 0; p < spec.paths.size(); ++p) {
      for (const auto& [cls, w] : phase.queries[p]) {
        const OpLoad upd =
            phase.updates.count(cls) > 0 ? phase.updates.at(cls) : OpLoad{};
        phase.mixes[p].Set(cls, w, upd.insert, upd.del);
      }
      for (const auto& [cls, upd] : phase.updates) {
        if (phase.queries[p].count(cls) > 0) continue;
        if (cls == heads[p] ||
            std::find(chain.begin(), chain.end(), cls) != chain.end()) {
          phase.mixes[p].Set(cls, 0, upd.insert, upd.del);
        }
      }
    }
    spec.phases.push_back(std::move(phase));
  }
  return spec;
}

struct RunStats {
  double online = 0;
  double online_measured = 0;  ///< measured pages + measured transition I/O
  double oracle = 0;
  double best_static = 0;
  int switches = 0;
  double millis = 0;
};

RunStats Run(const TraceSpec& spec) {
  const auto start = std::chrono::steady_clock::now();
  const JointExperimentReport r =
      RunJointOnlineExperiment(spec, ControllerOptions{}).value();
  const auto end = std::chrono::steady_clock::now();
  RunStats s;
  s.online = r.online.total_cost();
  s.online_measured = r.online.measured_total_cost();
  s.oracle = r.oracle.total_cost();
  s.best_static = r.best_static_joint_cost();
  for (const JointReconfigurationEvent& ev : r.events) {
    if (!ev.initial) ++s.switches;
  }
  s.millis =
      std::chrono::duration<double, std::milli>(end - start).count();
  return s;
}

}  // namespace

int main() {
  pathix_bench::BenchJson json("bench_online_joint");

  // ----------------------------------------------------- path-count sweep
  std::printf(
      "=== path-count sweep: N heads into one shared 3-class tail ===\n\n"
      "  paths   switches   online      (measured)  oracle      best static"
      "   online/static   online/oracle   wall ms\n");
  for (const int paths : {1, 2, 4, 6}) {
    const TraceSpec spec = MakeOverlapTrace(
        paths, 3, std::numeric_limits<double>::infinity());
    const RunStats s = Run(spec);
    std::printf(
        "  %-7d %-10d %-11.0f %-11.0f %-11.0f %-13.0f %-15.3f %-15.3f %.0f\n",
        paths, s.switches, s.online, s.online_measured, s.oracle,
        s.best_static, s.best_static > 0 ? s.online / s.best_static : 1.0,
        s.oracle > 0 ? s.online / s.oracle : 1.0, s.millis);
    const std::string prefix = "paths" + std::to_string(paths);
    json.Add(prefix + "_online_cost", s.online);
    json.Add(prefix + "_online_measured_cost", s.online_measured);
    json.Add(prefix + "_oracle_cost", s.oracle);
    json.Add(prefix + "_best_static_cost", s.best_static);
    json.Add(prefix + "_wall_ms", s.millis);
  }
  std::printf(
      "\n(the shared tail is one physical structure however many paths use "
      "it: per-path cost\n grows sublinearly, and the joint solve stays "
      "polynomial per check)\n\n");

  // -------------------------------------------------------- overlap sweep
  std::printf(
      "=== overlap sweep: 3 paths, shared-tail depth vs sharing payoff "
      "===\n\n"
      "  overlap   switches   online      oracle      best static   "
      "online/static   wall ms\n");
  for (const int overlap : {1, 2, 3, 4}) {
    const TraceSpec spec = MakeOverlapTrace(
        3, overlap, std::numeric_limits<double>::infinity());
    const RunStats s = Run(spec);
    std::printf("  %-9d %-10d %-11.0f %-11.0f %-13.0f %-15.3f %.0f\n",
                overlap, s.switches, s.online, s.oracle, s.best_static,
                s.best_static > 0 ? s.online / s.best_static : 1.0, s.millis);
    const std::string prefix = "overlap" + std::to_string(overlap);
    json.Add(prefix + "_online_cost", s.online);
    json.Add(prefix + "_best_static_cost", s.best_static);
  }

  // --------------------------------------------------------- budget sweep
  // The unbudgeted distinct storage of the 4-path workload anchors the
  // sweep: fractions of it constrain the joint solve ever harder.
  std::printf(
      "\n=== budget sweep: 4 paths, budget as a fraction of unbudgeted "
      "storage ===\n\n"
      "  fraction   online      oracle      best static   online/static   "
      "wall ms\n");
  const double anchor = 4e6;
  for (const double fraction : {1.0, 0.5, 0.25, 0.1}) {
    const TraceSpec spec = MakeOverlapTrace(4, 3, anchor * fraction);
    const RunStats s = Run(spec);
    std::printf("  %-10.2f %-11.0f %-11.0f %-13.0f %-15.3f %.0f\n", fraction,
                s.online, s.oracle, s.best_static,
                s.best_static > 0 ? s.online / s.best_static : 1.0, s.millis);
    char prefix[32];
    std::snprintf(prefix, sizeof prefix, "budget%g", fraction);
    json.Add(std::string(prefix) + "_online_cost", s.online);
    json.Add(std::string(prefix) + "_oracle_cost", s.oracle);
  }
  std::printf(
      "\n(tighter budgets converge online and static: with little storage "
      "to re-deploy, drift\n offers less to adapt with — the regret "
      "envelope is where the budget bites)\n");

  json.Write();
  return 0;
}
