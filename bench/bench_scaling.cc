// Experiment E8 (DESIGN.md): the complexity claims of Section 5.
//
//  - A path of length n has n(n+1)/2 subpaths (cost-matrix rows) and
//    2^(n-1) recombinations.
//  - Exhaustive enumeration explores all 2^(n-1); branch-and-bound prunes
//    ("does not guarantee [reduction] in all cases [but] has proved to be
//    useful in practice"); the interval DP needs O(n^2) lookups.
//
// Reports explored-configuration counts on random cost matrices, plus
// google-benchmark timings of the three optimizers.

#include <benchmark/benchmark.h>

#include <iostream>
#include <random>

#include "bench_json_gbench.h"
#include "core/optimizer.h"

namespace {

using namespace pathix;

CostMatrix RandomMatrix(int n, std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(1.0, 100.0);
  std::vector<std::vector<double>> values;
  for (int i = 0; i < NumSubpaths(n); ++i) {
    values.push_back({dist(rng), dist(rng), dist(rng)});
  }
  return CostMatrix::FromValues(
      n, {IndexOrg::kMX, IndexOrg::kMIX, IndexOrg::kNIX}, std::move(values));
}

void PrintScalingTable(pathix_bench::BenchJson* json) {
  std::cout << "=== Opt_Ind_Con scaling: explored configurations "
               "(mean over 20 random matrices) ===\n\n"
            << "  n   matrix rows   exhaustive 2^(n-1)   branch&bound   "
               "pruned      DP cells\n";
  for (int n : {2, 3, 4, 5, 6, 7, 8, 10, 12, 14, 16}) {
    double bb_eval = 0;
    double bb_pruned = 0;
    double dp_cells = 0;
    const int trials = 20;
    for (int t = 0; t < trials; ++t) {
      const CostMatrix m = RandomMatrix(n, 1000 + 31 * t + n);
      const OptimizeResult bb = SelectBranchAndBound(m);
      const OptimizeResult dp = SelectDP(m);
      bb_eval += bb.evaluated;
      bb_pruned += bb.pruned;
      dp_cells += dp.evaluated;
    }
    std::printf("  %-3d %-13d %-20.0f %-14.1f %-11.1f %.0f\n", n,
                NumSubpaths(n), std::pow(2.0, n - 1), bb_eval / trials,
                bb_pruned / trials, dp_cells / trials);
    json->Add("n" + std::to_string(n) + "_bb_evaluated", bb_eval / trials);
    json->Add("n" + std::to_string(n) + "_dp_cells", dp_cells / trials);
  }
  std::cout << "\n(the paper: \"in practice a path has rarely a length "
               "greater than 7\"; the matrix itself\n is the dominant cost, "
               "3 * n(n+1)/2 model evaluations)\n\n";
}

void BM_Exhaustive(benchmark::State& state) {
  const CostMatrix m = RandomMatrix(static_cast<int>(state.range(0)), 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SelectExhaustive(m));
  }
}
BENCHMARK(BM_Exhaustive)->DenseRange(4, 16, 4);

void BM_BranchAndBound(benchmark::State& state) {
  const CostMatrix m = RandomMatrix(static_cast<int>(state.range(0)), 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SelectBranchAndBound(m));
  }
}
BENCHMARK(BM_BranchAndBound)->DenseRange(4, 16, 4);

void BM_DP(benchmark::State& state) {
  const CostMatrix m = RandomMatrix(static_cast<int>(state.range(0)), 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SelectDP(m));
  }
}
BENCHMARK(BM_DP)->DenseRange(4, 16, 4);

}  // namespace

int main(int argc, char** argv) {
  pathix_bench::BenchJson json("bench_scaling");
  PrintScalingTable(&json);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  pathix_bench::JsonLineReporter reporter(&json);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  json.Write();
  return 0;
}
