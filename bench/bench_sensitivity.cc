// Ablation (DESIGN.md experiment index): where each organization wins.
//
// The paper motivates index configurations by the tension between NIX's
// single-probe queries and its expensive maintenance. This bench sweeps
// (a) the update/query intensity and (b) the shared-prefix fan-out on the
// Example 5.1 setup, reporting the winning whole-path organization, the
// optimal configuration, and the split's improvement factor — locating the
// crossovers the selection algorithm exploits.

#include <iomanip>
#include <iostream>

#include "bench_json.h"
#include "core/advisor.h"
#include "datagen/paper_schema.h"

namespace {

using namespace pathix;

void SweepUpdateIntensity(pathix_bench::BenchJson* json) {
  std::cout << "=== Sweep A: update intensity (scales every beta/gamma of "
               "Figure 7 by f; queries fixed) ===\n\n"
            << "  f      whole-path winner   whole cost   optimal cost   "
               "factor   optimal configuration\n";
  for (double f : {0.0, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0}) {
    PaperSetup setup = MakeExample51Setup();
    LoadDistribution scaled;
    for (ClassId cls : {setup.person, setup.vehicle, setup.bus, setup.truck,
                        setup.company, setup.division}) {
      const OpLoad load = setup.load.Get(cls);
      scaled.Set(cls, load.query, load.insert * f, load.del * f);
    }
    const Recommendation rec =
        AdviseIndexConfiguration(setup.schema, setup.path, setup.catalog,
                                 scaled)
            .value();
    std::printf("  %-6.2f %-19s %-12.2f %-14.2f %-8.2f %s\n", f,
                ToString(rec.whole_path_org), rec.whole_path_cost,
                rec.result.cost, rec.improvement_factor,
                rec.result.config.ToString(setup.schema, setup.path).c_str());
    char key[48];
    std::snprintf(key, sizeof key, "update_f%.2f_optimal_cost", f);
    json->Add(key, rec.result.cost);
  }
  std::cout << "\n(query-only favours one whole-path NIX; growing update "
               "shares push the optimum towards\n configurations that keep "
               "volatile classes in cheap-to-maintain MX/MIX subpaths)\n\n";
}

void SweepQueryClass(pathix_bench::BenchJson* json) {
  std::cout << "=== Sweep B: where the query mass sits (all queries on one "
               "class; Figure 7 updates) ===\n\n"
            << "  query class   whole winner   optimal cost   factor   "
               "optimal configuration\n";
  PaperSetup base = MakeExample51Setup();
  const std::pair<const char*, ClassId> classes[] = {
      {"Person", base.person},   {"Vehicle", base.vehicle},
      {"Bus", base.bus},         {"Company", base.company},
      {"Division", base.division}};
  for (const auto& [name, cls] : classes) {
    PaperSetup setup = MakeExample51Setup();
    LoadDistribution load;
    for (ClassId c : {setup.person, setup.vehicle, setup.bus, setup.truck,
                      setup.company, setup.division}) {
      const OpLoad l = setup.load.Get(c);
      load.Set(c, 0.0, l.insert, l.del);
    }
    ClassId target = setup.schema.FindClass(name);
    const OpLoad l = load.Get(target);
    load.Set(target, 0.95, l.insert, l.del);
    const Recommendation rec =
        AdviseIndexConfiguration(setup.schema, setup.path, setup.catalog,
                                 load)
            .value();
    std::printf("  %-13s %-14s %-14.2f %-8.2f %s\n", name,
                ToString(rec.whole_path_org), rec.result.cost,
                rec.improvement_factor,
                rec.result.config.ToString(setup.schema, setup.path).c_str());
    json->Add(std::string("query_on_") + name + "_optimal_cost",
              rec.result.cost);
  }
  std::cout << "\n(deep query classes benefit from long NIX prefixes; "
               "query mass near the ending attribute\n makes short tail "
               "indexes sufficient)\n\n";
}

void SweepFanOut(pathix_bench::BenchJson* json) {
  std::cout << "=== Sweep C: Company.divs fan-out (nin of Company; Figure 7 "
               "load) ===\n\n"
            << "  nin    whole winner   whole cost   optimal cost   factor   "
               "optimal configuration\n";
  for (double nin : {1.0, 2.0, 4.0, 8.0, 16.0}) {
    PaperSetup setup = MakeExample51Setup();
    ClassStats stats = setup.catalog.GetClassStats(setup.company);
    stats.nin = nin;
    setup.catalog.SetClassStats(setup.company, stats);
    const Recommendation rec =
        AdviseIndexConfiguration(setup.schema, setup.path, setup.catalog,
                                 setup.load)
            .value();
    std::printf("  %-6.1f %-14s %-12.2f %-14.2f %-8.2f %s\n", nin,
                ToString(rec.whole_path_org), rec.whole_path_cost,
                rec.result.cost, rec.improvement_factor,
                rec.result.config.ToString(setup.schema, setup.path).c_str());
    char key[48];
    std::snprintf(key, sizeof key, "fanout_nin%.0f_optimal_cost", nin);
    json->Add(key, rec.result.cost);
  }
  std::cout << "\n=== Sweep D: page size (physical parameter of §4.6) ===\n\n"
            << "  page    whole winner   whole cost   optimal cost   factor   "
               "optimal configuration\n";
  for (double page : {512.0, 1024.0, 2048.0, 4096.0, 8192.0}) {
    PaperSetup setup = MakeExample51Setup();
    setup.catalog.mutable_params()->page_size = page;
    const Recommendation rec =
        AdviseIndexConfiguration(setup.schema, setup.path, setup.catalog,
                                 setup.load)
            .value();
    std::printf("  %-7.0f %-14s %-12.2f %-14.2f %-8.2f %s\n", page,
                ToString(rec.whole_path_org), rec.whole_path_cost,
                rec.result.cost, rec.improvement_factor,
                rec.result.config.ToString(setup.schema, setup.path).c_str());
    char key[48];
    std::snprintf(key, sizeof key, "page%.0f_optimal_cost", page);
    json->Add(key, rec.result.cost);
  }
  std::cout << "\n(the split point after `man` is stable across physical "
               "parameters; organization choices\n on the short tail are "
               "within a few percent of each other)\n";
}

}  // namespace

int main() {
  pathix_bench::BenchJson json("bench_sensitivity");
  SweepUpdateIntensity(&json);
  SweepQueryClass(&json);
  SweepFanOut(&json);
  json.Write();
  return 0;
}
