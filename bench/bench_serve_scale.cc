// Serving-engine scalability: the N-thread serve driver against one
// SimDatabase, on the two-path vehicle registry of the paper's Figure 1.
// Workers contend only inside the engine — class-sharded store latches,
// per-part index latches, epoch-pinned queries, the commit mutex's reader
// side — so read-heavy phases should scale with the worker count while the
// joint online controller keeps reconfiguring mid-stream.
//
// For each thread count the full trace is served on a fresh database:
// a warmup phase (lets the controller install its first configuration),
// a read-heavy phase and a write-heavy phase. The table and
// BENCH_bench_serve_scale.json report per-phase throughput, tail latency
// and the speedup over the single-threaded run.

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench_json.h"
#include "serve/serve_driver.h"

namespace {

using namespace pathix;

// The vehicle joint drift trace at bench scale: same schema and path
// overlap as examples/specs/vehicle_joint_trace.pix, no storage budget (the
// solver's feasibility search is not what is being measured here).
constexpr const char* kSpec = R"(
class Person            2000 800 1 64
class Vehicle           300  250 3 64
class Bus     : Vehicle 150  140 2 64
class Truck   : Vehicle 150  140 2 64
class Company           40   40  3 64
class Division          40   40  1 64

ref Person  owns Vehicle  multi
ref Vehicle man  Company  multi
ref Company divs Division multi
attr Division name string

path people Person owns man divs name
load Person   0.3  0.1  0.1
load Division 0.2  0.2  0.1

path fleet Vehicle man divs name
load Vehicle  0.3  0.0  0.1
load Division 0.2  0.1  0.1

orgs MX MIX NIX NONE

populate Person   2000 0  1.0
populate Vehicle  300  0  2.0
populate Bus      150  0  2.0
populate Truck    150  0  2.0
populate Company  40   0  3.0
populate Division 40   40 1.0
trace_seed 1994

phase warmup 2000
mix people Person  0.5 0.2 0.1
mix fleet  Vehicle 0.2 0.0 0.0

phase read_heavy 8000
mix people Person   0.55 0.01 0.01
mix fleet  Vehicle  0.25 0.0  0.0
mix fleet  Division 0.18 0.0  0.0

phase write_heavy 8000
mix people Person  0.06 0.5 0.36
mix fleet  Vehicle 0.02 0.04 0.02
)";

struct PhaseResult {
  double ops_per_sec = 0;
  double p50_us = 0;
  double p99_us = 0;
  std::uint64_t epoch_swaps = 0;
};

std::map<std::string, PhaseResult> RunAt(const TraceSpec& s, int threads) {
  SimDatabase db(s.schema, s.catalog.params());
  ServeDriver driver(&db, s, ServeOptions{threads});
  driver.Populate();

  ControllerOptions copts;
  copts.orgs = s.options.orgs;
  copts.physical_params = s.catalog.params();
  JointReconfigurationController controller(&db, copts);
  db.SetObserver(&controller);

  std::map<std::string, PhaseResult> results;
  for (std::size_t i = 0; i < s.phases.size(); ++i) {
    const ServePhaseReport r = driver.RunPhase(i, &controller);
    PhaseResult& out = results[r.phase.name];
    out.ops_per_sec = r.ops_per_sec;
    out.p50_us = r.latency_us.Percentile(0.50);
    out.p99_us = r.latency_us.Percentile(0.99);
    out.epoch_swaps = r.epoch_swaps;
  }
  db.SetObserver(nullptr);
  if (!controller.status().ok()) {
    std::fprintf(stderr, "controller error at %d threads: %s\n", threads,
                 controller.status().ToString().c_str());
  }
  return results;
}

}  // namespace

int main() {
  Result<TraceSpec> spec = ParseTraceSpec(kSpec);
  if (!spec.ok()) {
    std::fprintf(stderr, "spec error: %s\n", spec.status().ToString().c_str());
    return 1;
  }
  const TraceSpec& s = spec.value();

  pathix_bench::BenchJson json("bench_serve_scale");
  std::printf(
      "=== Serving engine scalability (two-path vehicle trace) ===\n"
      "(fresh database per thread count; joint controller reconfiguring "
      "mid-stream)\n\n"
      "  threads  phase        ops/sec     p50us   p99us  epochs  speedup\n");

  std::map<std::string, PhaseResult> baseline;
  for (int threads : {1, 2, 4, 8}) {
    const std::map<std::string, PhaseResult> results = RunAt(s, threads);
    if (threads == 1) baseline = results;
    for (const auto& [phase, r] : results) {
      if (phase == "warmup") continue;
      const double base = baseline[phase].ops_per_sec;
      const double speedup = base > 0 ? r.ops_per_sec / base : 0;
      std::printf("  %-8d %-12s %9.0f %8.0f %8.0f %6llu  %.2fx\n", threads,
                  phase.c_str(), r.ops_per_sec, r.p50_us, r.p99_us,
                  static_cast<unsigned long long>(r.epoch_swaps), speedup);
      const std::string key = "t" + std::to_string(threads) + "_" + phase;
      json.Add(key + "_ops_per_sec", r.ops_per_sec);
      json.Add(key + "_p99_us", r.p99_us);
      json.Add(key + "_speedup", speedup);
    }
  }

  std::printf(
      "\n(speedup is ops/sec vs the 1-thread run of the same phase; the\n"
      " 1-thread run is byte-identical to the single-threaded replayer)\n");
  json.Write();
  return 0;
}
