// Validation experiment (DESIGN.md §6): the paper validated its cost model
// against the analysis in its unavailable technical report [7]; our
// substitute evidence is the page-level simulator. This bench populates a
// 1/10-scale Figure 7 database, collects the *actual* statistics
// (exec/analyze), and compares, per organization and operation:
//
//     analytic prediction (Section 3 formulas)  vs  counted page accesses
//
// Absolute agreement is not expected (the model works with statistical
// averages, the simulator with one concrete database); predictions should
// land within a small constant factor, and — decisive for the selection
// algorithm — the *ranking* of organizations per operation should match.

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <random>
#include <vector>

#include "bench_json.h"
#include "costmodel/org_model.h"
#include "datagen/generator.h"
#include "datagen/paper_schema.h"
#include "exec/analyze.h"
#include "exec/database.h"

namespace {

using namespace pathix;

constexpr int kDistinct = 100;

struct Row {
  const char* op;
  double model = 0;
  double measured = 0;
};

struct Bench {
  Bench() : setup(MakeExample51Setup()), db(setup.schema, PhysicalParams{}) {
    PathDataGenerator gen(2024);
    created = gen.Populate(&db, setup.path,
                           {
                               {setup.division, 100, kDistinct, 1.0},
                               {setup.company, 100, 0, 4.0},
                               {setup.vehicle, 1000, 0, 3.0},
                               {setup.bus, 500, 0, 2.0},
                               {setup.truck, 500, 0, 2.0},
                               {setup.person, 20000, 0, 1.0},
                           });
    catalog = CollectStatistics(db.store(), setup.schema, setup.path,
                                PhysicalParams{});
  }

  PaperSetup setup;
  SimDatabase db;
  std::map<ClassId, std::vector<Oid>> created;
  Catalog catalog;
};

double MeasureQueries(Bench& b, ClassId target, int n_queries) {
  double total = 0;
  for (int i = 0; i < n_queries; ++i) {
    const Key value = Key::FromString(EndingValue(i % kDistinct));
    b.db.pager().ResetStats();
    CheckOk(b.db.Query(value, target).status());
    total += static_cast<double>(b.db.pager().stats().total());
  }
  return total / n_queries;
}

double MeasureInserts(Bench& b, ClassId cls, const std::string& attr,
                      const std::vector<Oid>& pool, int reps, int nvals) {
  std::mt19937 rng(77);
  double total = 0;
  for (int i = 0; i < reps; ++i) {
    AttrValues attrs;
    for (int v = 0; v < nvals; ++v) {
      attrs[attr].push_back(Value::Ref(pool[rng() % pool.size()]));
    }
    b.db.pager().ResetStats();
    b.db.Insert(cls, std::move(attrs));
    total += static_cast<double>(b.db.pager().stats().total());
  }
  return total / reps;
}

double MeasureDeletes(Bench& b, std::vector<Oid>* victims, int reps) {
  std::mt19937 rng(78);
  double total = 0;
  int done = 0;
  for (int i = 0; i < reps && !victims->empty(); ++i) {
    const std::size_t pick = rng() % victims->size();
    const Oid victim = (*victims)[pick];
    victims->erase(victims->begin() + pick);
    b.db.pager().ResetStats();
    if (!b.db.Delete(victim).ok()) continue;
    total += static_cast<double>(b.db.pager().stats().total());
    ++done;
  }
  return done > 0 ? total / done : 0;
}

void RunOrg(IndexOrg org, pathix_bench::BenchJson* json) {
  Bench b;
  CheckOk(b.db.ConfigureIndexes(
      b.setup.path, IndexConfiguration({{Subpath{1, 4}, org}})));

  // Analytic model over the *collected* statistics with a query-only load
  // binding (the load only matters for subpath costs, not per-op costs).
  LoadDistribution load;
  const PathContext ctx =
      PathContext::Build(b.setup.schema, b.setup.path, b.catalog, load)
          .value();
  const std::unique_ptr<OrgCostModel> model = MakeOrgCostModel(org, ctx, 1, 4);

  std::vector<Row> rows;
  rows.push_back({"query w.r.t. Person", model->QueryCost(1, 0),
                  MeasureQueries(b, b.setup.person, 50)});
  rows.push_back({"query w.r.t. Vehicle", model->QueryCost(2, 0),
                  MeasureQueries(b, b.setup.vehicle, 50)});
  rows.push_back({"query w.r.t. Division", model->QueryCost(4, 0),
                  MeasureQueries(b, b.setup.division, 50)});
  rows.push_back(
      {"insert Vehicle", model->InsertCost(2, 0),
       MeasureInserts(b, b.setup.vehicle, "man", b.created[b.setup.company],
                      40, 3)});
  rows.push_back(
      {"insert Person", model->InsertCost(1, 0),
       MeasureInserts(b, b.setup.person, "owns", b.created[b.setup.vehicle],
                      40, 1)});
  std::vector<Oid> vehicles = b.created[b.setup.vehicle];
  rows.push_back({"delete Vehicle", model->DeleteCost(2, 0),
                  MeasureDeletes(b, &vehicles, 40)});
  std::vector<Oid> persons = b.created[b.setup.person];
  rows.push_back({"delete Person", model->DeleteCost(1, 0),
                  MeasureDeletes(b, &persons, 40)});
  std::vector<Oid> companies = b.created[b.setup.company];
  rows.push_back({"delete Company", model->DeleteCost(3, 0),
                  MeasureDeletes(b, &companies, 20)});

  std::printf("--- %s (whole path) ---\n", ToString(org));
  std::printf("  %-24s %10s %10s %8s\n", "operation", "model", "measured",
              "ratio");
  double worst_ratio = 1;
  for (const Row& row : rows) {
    const double ratio = row.measured > 0 ? row.model / row.measured : 0;
    std::printf("  %-24s %10.2f %10.2f %8.2f\n", row.op, row.model,
                row.measured, ratio);
    if (ratio > 0) {
      worst_ratio = std::max(worst_ratio, std::max(ratio, 1 / ratio));
    }
  }
  std::printf("\n");
  const std::string prefix = ToString(org);
  json->Add(prefix + "_query_person_model", rows[0].model);
  json->Add(prefix + "_query_person_measured", rows[0].measured);
  json->Add(prefix + "_worst_model_vs_measured_factor", worst_ratio);
}

void RankingCheck(pathix_bench::BenchJson* json) {
  // The model's raison d'etre: does it rank organizations like the
  // simulator does, per operation class?
  double q_measured[3];
  double q_model[3];
  const IndexOrg orgs[] = {IndexOrg::kMX, IndexOrg::kMIX, IndexOrg::kNIX};
  for (int i = 0; i < 3; ++i) {
    Bench b;
    CheckOk(b.db.ConfigureIndexes(
        b.setup.path, IndexConfiguration({{Subpath{1, 4}, orgs[i]}})));
    LoadDistribution load;
    const PathContext ctx =
        PathContext::Build(b.setup.schema, b.setup.path, b.catalog, load)
            .value();
    q_model[i] = MakeOrgCostModel(orgs[i], ctx, 1, 4)->QueryCost(1, 0);
    q_measured[i] = MeasureQueries(b, b.setup.person, 50);
  }
  std::printf("--- ranking check: query w.r.t. Person ---\n");
  std::printf("  %-6s %10s %10s\n", "org", "model", "measured");
  for (int i = 0; i < 3; ++i) {
    std::printf("  %-6s %10.2f %10.2f\n", ToString(orgs[i]), q_model[i],
                q_measured[i]);
  }
  const bool model_nix_wins = q_model[2] < q_model[0] && q_model[2] < q_model[1];
  const bool sim_nix_wins =
      q_measured[2] < q_measured[0] && q_measured[2] < q_measured[1];
  std::printf("  NIX cheapest for deep queries: model=%s simulator=%s\n\n",
              model_nix_wins ? "yes" : "no", sim_nix_wins ? "yes" : "no");
  json->Add("ranking_agrees", model_nix_wins == sim_nix_wins ? 1 : 0);
}

}  // namespace

int main() {
  std::cout << "=== Cost-model validation against the page-level simulator "
               "===\n(1/10-scale Figure 7 database: 22,100 objects; "
               "statistics collected from the store)\n\n";
  pathix_bench::BenchJson json("bench_validation");
  RunOrg(IndexOrg::kMX, &json);
  RunOrg(IndexOrg::kMIX, &json);
  RunOrg(IndexOrg::kNIX, &json);
  RankingCheck(&json);
  json.Write();
  return 0;
}
