// Workload advisor benchmark: joint vs greedy vs independent selection as
// the number of paths and their overlap grow.
//
// Two sweeps over synthetic reference chains:
//  - path count: k suffix paths of one chain (maximal overlap) — every
//    added path shares its whole tail with the others;
//  - overlap: k fixed-length paths that share a common tail of varying
//    length (0 = disjoint chains, larger = more shareable candidates).
//
// Reports the three totals, the joint improvement over the greedy merge,
// and the solve time / explored nodes of the exhaustive and
// branch-and-bound joint optimizers. Self-timed (no Google Benchmark).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "advisor/workload_advisor.h"
#include "bench_json.h"

namespace {

using namespace pathix;

/// A chain schema A0 -> A1 -> ... -> A_{depth}, ending in an atomic
/// attribute, with statistics that shrink along the chain (fan-in > 1).
struct ChainSetup {
  Schema schema;
  Catalog catalog;
  std::vector<ClassId> classes;
};

ChainSetup MakeChain(int depth, double root_objects) {
  ChainSetup setup;
  double n = root_objects;
  for (int i = 0; i <= depth; ++i) {
    const ClassId cls =
        setup.schema.AddClass("C" + std::to_string(i)).value();
    setup.classes.push_back(cls);
    setup.catalog.SetClassStats(cls, ClassStats{n, n / 2, 1, 64});
    n = n / 4 < 16 ? 16 : n / 4;
  }
  for (int i = 0; i < depth; ++i) {
    setup.schema
        .AddReferenceAttribute(setup.classes[static_cast<std::size_t>(i)],
                               "a" + std::to_string(i),
                               setup.classes[static_cast<std::size_t>(i + 1)],
                               /*multi_valued=*/true)
        .ok();
  }
  setup.schema
      .AddAtomicAttribute(setup.classes.back(), "name", AtomicType::kString)
      .ok();
  return setup;
}

/// The path starting at chain level \p start (0-based) down to the atomic
/// attribute, with a load touching every class it navigates.
PathWorkload SuffixPath(const ChainSetup& setup, int start, double alpha) {
  const int depth = static_cast<int>(setup.classes.size()) - 1;
  std::vector<std::string> attrs;
  for (int i = start; i < depth; ++i) attrs.push_back("a" + std::to_string(i));
  attrs.push_back("name");
  PathWorkload w;
  w.path = Path::Create(setup.schema,
                        setup.classes[static_cast<std::size_t>(start)], attrs)
               .value();
  for (int i = start; i <= depth; ++i) {
    w.load.Set(setup.classes[static_cast<std::size_t>(i)], alpha,
               alpha / 2, alpha / 4);
  }
  return w;
}

struct Timed {
  JointSelectionResult result;
  double millis = 0;
};

Timed RunJoint(const CandidatePool& pool, JointOptions::Algorithm algo) {
  JointOptions opts;
  opts.algorithm = algo;
  const auto start = std::chrono::steady_clock::now();
  Timed timed;
  timed.result = SelectJointConfiguration(pool, opts).value();
  timed.millis = std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  return timed;
}

void SweepPathCount(pathix_bench::BenchJson* json) {
  std::printf(
      "=== path-count sweep: k suffix paths of one depth-4 chain ===\n\n"
      "  k   independent   greedy      joint       joint/greedy   "
      "bb ms (nodes)        exhaustive ms (nodes)\n");
  const ChainSetup setup = MakeChain(/*depth=*/4, /*root_objects=*/100000);
  std::vector<PathWorkload> paths;
  for (int k = 1; k <= 4; ++k) {
    paths.push_back(SuffixPath(setup, k - 1, 0.2 + 0.1 * k));
    const WorkloadRecommendation rec =
        AdviseWorkload(setup.schema, setup.catalog, paths).value();
    const Timed bb = RunJoint(rec.pool, JointOptions::Algorithm::kBranchAndBound);
    json->Add("paths" + std::to_string(k) + "_joint_cost",
              bb.result.total_cost);
    json->Add("paths" + std::to_string(k) + "_greedy_cost",
              rec.total_cost_greedy);
    json->Add("paths" + std::to_string(k) + "_bb_ms", bb.millis);
    json->Add("paths" + std::to_string(k) + "_bb_nodes",
              bb.result.nodes_explored);
    // Exhaustive enumeration visits the full product of per-path
    // configuration counts; past 2 fully-overlapping paths it stops being a
    // benchmark and becomes a heat source.
    if (k <= 2) {
      const Timed ex = RunJoint(rec.pool, JointOptions::Algorithm::kExhaustive);
      std::printf(
          "  %-3d %-13.4g %-11.4g %-11.4g %-14.4f %7.2f (%-8ld)   %10.2f "
          "(%ld)\n",
          k, rec.total_cost_independent, rec.total_cost_greedy,
          bb.result.total_cost,
          rec.total_cost_greedy > 0
              ? bb.result.total_cost / rec.total_cost_greedy
              : 1.0,
          bb.millis, bb.result.nodes_explored, ex.millis,
          ex.result.nodes_explored);
    } else {
      std::printf(
          "  %-3d %-13.4g %-11.4g %-11.4g %-14.4f %7.2f (%-8ld)   %10s\n", k,
          rec.total_cost_independent, rec.total_cost_greedy,
          bb.result.total_cost,
          rec.total_cost_greedy > 0
              ? bb.result.total_cost / rec.total_cost_greedy
              : 1.0,
          bb.millis, bb.result.nodes_explored, "(skipped)");
    }
  }
  std::printf("\n");
}

void SweepOverlap(pathix_bench::BenchJson* json) {
  std::printf(
      "=== overlap sweep: 3 depth-3 paths sharing a tail of t levels ===\n\n"
      "  t   candidates   shared   independent   greedy      joint       "
      "joint/greedy\n");
  for (int tail = 0; tail <= 3; ++tail) {
    // Three branches B0/B1/B2 that join a common chain for the last `tail`
    // levels; tail = 0 keeps them fully disjoint.
    Schema schema;
    Catalog catalog;
    const int kBranches = 3;
    const int depth = 3;  // levels per path
    std::vector<ClassId> shared_chain;
    for (int i = 0; i < tail; ++i) {
      // The shared tail is deliberately heavy (many objects, busy updates)
      // so paying its index maintenance once instead of three times shows.
      const ClassId cls = schema.AddClass("S" + std::to_string(i)).value();
      catalog.SetClassStats(cls, ClassStats{80000.0 / (i + 1), 8000, 1, 64});
      if (!shared_chain.empty()) {
        schema
            .AddReferenceAttribute(shared_chain.back(),
                                   "s" + std::to_string(i - 1), cls, true)
            .ok();
      }
      shared_chain.push_back(cls);
    }
    if (!shared_chain.empty()) {
      schema.AddAtomicAttribute(shared_chain.back(), "name",
                                AtomicType::kString)
          .ok();
    }

    std::vector<PathWorkload> paths;
    for (int b = 0; b < kBranches; ++b) {
      std::vector<ClassId> own;
      const int own_levels = depth - tail;
      double n = 50000;
      for (int i = 0; i < own_levels; ++i) {
        const ClassId cls =
            schema
                .AddClass("B" + std::to_string(b) + "_" + std::to_string(i))
                .value();
        catalog.SetClassStats(cls, ClassStats{n, n / 2, 1, 64});
        n /= 5;
        if (!own.empty()) {
          schema
              .AddReferenceAttribute(own.back(), "b" + std::to_string(i - 1),
                                     cls, true)
              .ok();
        }
        own.push_back(cls);
      }
      std::vector<std::string> attrs;
      for (int i = 1; i < own_levels; ++i) {
        attrs.push_back("b" + std::to_string(i - 1));
      }
      if (tail > 0) {
        if (!own.empty()) {
          schema.AddReferenceAttribute(own.back(), "join", shared_chain[0],
                                       true)
              .ok();
          attrs.push_back("join");
        }
        for (int i = 1; i < tail; ++i) {
          attrs.push_back("s" + std::to_string(i - 1));
        }
        attrs.push_back("name");
      } else {
        schema.AddAtomicAttribute(own.back(), "name", AtomicType::kString)
            .ok();
        attrs.push_back("name");
      }
      PathWorkload w;
      const ClassId start = own.empty() ? shared_chain[0] : own[0];
      w.path = Path::Create(schema, start, attrs).value();
      // Branch classes are query-heavy; the shared tail is update-heavy, so
      // an index over it is expensive to maintain — exactly the candidate
      // worth paying for once across the three paths.
      for (const ClassId cls : w.path.classes()) {
        const bool is_shared = std::find(shared_chain.begin(),
                                         shared_chain.end(),
                                         cls) != shared_chain.end();
        if (is_shared) {
          w.load.Set(cls, 0.05, 1.5, 1.0);
        } else {
          w.load.Set(cls, 0.4, 0.05, 0.02);
        }
      }
      paths.push_back(std::move(w));
    }

    const WorkloadRecommendation rec =
        AdviseWorkload(schema, catalog, paths).value();
    int shared = 0;
    for (const CandidateEntry& e : rec.pool.entries()) {
      if (e.shareable) ++shared;
    }
    json->Add("tail" + std::to_string(tail) + "_joint_cost",
              rec.total_cost_joint);
    json->Add("tail" + std::to_string(tail) + "_greedy_cost",
              rec.total_cost_greedy);
    std::printf("  %-3d %-12zu %-8d %-13.4g %-11.4g %-11.4g %.4f\n", tail,
                rec.pool.entries().size(), shared,
                rec.total_cost_independent, rec.total_cost_greedy,
                rec.total_cost_joint,
                rec.total_cost_greedy > 0
                    ? rec.total_cost_joint / rec.total_cost_greedy
                    : 1.0);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  pathix_bench::BenchJson json("bench_workload_joint");
  SweepPathCount(&json);
  SweepOverlap(&json);
  std::printf(
      "(joint <= greedy <= independent by construction; the joint "
      "optimizer's edge\n grows with overlap, since the greedy merge only "
      "shares indexes the per-path\n optima happen to agree on)\n");
  json.Write();
  return 0;
}
