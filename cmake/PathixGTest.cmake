# Resolves GoogleTest for the test suite and sets PATHIX_GTEST_TARGETS in
# the caller's scope. Resolution order:
#
#   1. An installed GTest package (config or FindGTest module) — covers
#      distro libgtest-dev, conda, vcpkg, brew.
#   2. The Debian/Ubuntu source package under /usr/src/googletest, built as
#      part of this tree.
#   3. FetchContent from GitHub — the only option that needs network; last
#      so that offline builds of the first two never attempt a download.
macro(pathix_resolve_gtest)
  set(PATHIX_GTEST_TARGETS "")
  find_package(GTest QUIET)
  if(GTest_FOUND)
    set(PATHIX_GTEST_TARGETS GTest::gtest GTest::gtest_main)
  elseif(EXISTS /usr/src/googletest/CMakeLists.txt)
    add_subdirectory(/usr/src/googletest
                     ${CMAKE_BINARY_DIR}/googletest EXCLUDE_FROM_ALL)
    set(PATHIX_GTEST_TARGETS GTest::gtest GTest::gtest_main)
  else()
    include(FetchContent)
    FetchContent_Declare(
      googletest
      URL https://github.com/google/googletest/archive/refs/tags/v1.14.0.zip
    )
    set(INSTALL_GTEST OFF CACHE BOOL "" FORCE)
    FetchContent_MakeAvailable(googletest)
    set(PATHIX_GTEST_TARGETS GTest::gtest GTest::gtest_main)
  endif()
endmacro()
