// What-if index advisor: explores how the optimal index configuration for
// the paper's vehicle path shifts with the workload profile — the tool a
// database administrator would actually run ("In practice database
// administrators may predict the distribution very well", Section 3.2).
//
//   $ ./examples/index_advisor             # all canned profiles
//   $ ./examples/index_advisor reporting   # one profile, with full matrix

#include <cstring>
#include <iostream>

#include "core/advisor.h"
#include "datagen/paper_schema.h"

namespace {

using namespace pathix;

struct Profile {
  const char* name;
  const char* blurb;
  // (alpha, beta, gamma) per class: Per, Veh, Bus, Truck, Comp, Div.
  double rows[6][3];
};

constexpr Profile kProfiles[] = {
    {"paper",
     "Figure 7's mixed load (the Example 5.1 distribution)",
     {{0.30, 0.10, 0.10},
      {0.30, 0.00, 0.05},
      {0.05, 0.05, 0.10},
      {0.00, 0.10, 0.00},
      {0.10, 0.10, 0.10},
      {0.20, 0.20, 0.10}}},
    {"reporting",
     "read-mostly analytics: deep queries from Person, rare updates",
     {{0.80, 0.01, 0.01},
      {0.10, 0.00, 0.00},
      {0.05, 0.00, 0.00},
      {0.00, 0.00, 0.00},
      {0.03, 0.01, 0.00},
      {0.02, 0.02, 0.01}}},
    {"registration-office",
     "update-heavy: vehicles and owners churn daily, queries are rare",
     {{0.05, 0.30, 0.25},
      {0.05, 0.25, 0.20},
      {0.00, 0.15, 0.10},
      {0.00, 0.15, 0.10},
      {0.02, 0.02, 0.02},
      {0.03, 0.05, 0.03}}},
    {"fleet-audit",
     "mid-path queries: auditors start from vehicles and companies",
     {{0.05, 0.05, 0.05},
      {0.40, 0.05, 0.05},
      {0.10, 0.05, 0.05},
      {0.05, 0.05, 0.00},
      {0.25, 0.05, 0.05},
      {0.05, 0.05, 0.05}}},
};

void RunProfile(const Profile& profile, bool print_matrix) {
  PaperSetup setup = MakeExample51Setup();
  LoadDistribution load;
  const ClassId classes[6] = {setup.person, setup.vehicle, setup.bus,
                              setup.truck,  setup.company, setup.division};
  for (int i = 0; i < 6; ++i) {
    load.Set(classes[i], profile.rows[i][0], profile.rows[i][1],
             profile.rows[i][2]);
  }
  const Recommendation rec =
      AdviseIndexConfiguration(setup.schema, setup.path, setup.catalog, load)
          .value();

  std::cout << "profile '" << profile.name << "' — " << profile.blurb << "\n";
  if (print_matrix) {
    std::cout << "\n";
    rec.matrix.Print(std::cout);
    std::cout << "\n";
  }
  std::cout << "  recommendation : "
            << rec.result.config.ToString(setup.schema, setup.path) << "\n"
            << "  expected cost  : " << rec.result.cost << "  (single index: "
            << rec.whole_path_cost << " " << ToString(rec.whole_path_org)
            << ", " << rec.improvement_factor << "x)\n"
            << "  search         : " << rec.result.evaluated
            << " configurations evaluated, " << rec.result.pruned
            << " pruned\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1) {
    for (const Profile& p : kProfiles) {
      if (std::strcmp(argv[1], p.name) == 0) {
        RunProfile(p, /*print_matrix=*/true);
        return 0;
      }
    }
    std::cerr << "unknown profile '" << argv[1] << "'; available:";
    for (const Profile& p : kProfiles) std::cerr << " " << p.name;
    std::cerr << "\n";
    return 1;
  }
  std::cout << "=== PathIx what-if advisor: " << "Person.owns.man.divs.name"
            << " under different workloads ===\n\n";
  for (const Profile& p : kProfiles) RunProfile(p, /*print_matrix=*/false);
  std::cout << "(run with a profile name to see its full cost matrix)\n";
  return 0;
}
