// Multi-path tuning (the paper's "further research" extension, Section 6):
// several applications hit the same schema through different but
// overlapping paths. PathIx optimizes each path and then merges physically
// identical indexed subpaths so storage and maintenance are paid once.
//
//   $ ./examples/multipath_tuning

#include <iostream>

#include "core/multipath.h"
#include "datagen/paper_schema.h"

int main() {
  using namespace pathix;

  PaperSetup setup = MakeExample51Setup();

  // Path 1: the paper's Pexa — persons by division name.
  PathWorkload full{"", setup.path, setup.load};

  // Path 2: Pe from Example 2.1 — persons by manufacturer name... the
  // schema routes it through the same prefix Person.owns.man.
  LoadDistribution audit_load;
  audit_load.Set(setup.company, 0.5, 0.05, 0.05);
  audit_load.Set(setup.vehicle, 0.3, 0.0, 0.05);
  audit_load.Set(setup.division, 0.15, 0.1, 0.05);
  PathWorkload audit{
      "",
      Path::Create(setup.schema, setup.vehicle, {"man", "divs", "name"})
          .value(),
      audit_load};

  // Path 3: division lookups by name only (a subpath of both).
  LoadDistribution div_load;
  div_load.Set(setup.division, 0.8, 0.1, 0.1);
  PathWorkload divisions{
      "",
      Path::Create(setup.schema, setup.company, {"divs", "name"}).value(),
      div_load};

  const MultiPathRecommendation rec =
      AdviseMultiplePaths(setup.schema, setup.catalog,
                          {full, audit, divisions})
          .value();

  std::cout << "=== Multi-path index selection over "
            << rec.per_path.size() << " paths ===\n\n";
  const PathWorkload* inputs[] = {&full, &audit, &divisions};
  for (std::size_t i = 0; i < rec.per_path.size(); ++i) {
    const Recommendation& r = rec.per_path[i];
    std::cout << "path " << i + 1 << ": "
              << inputs[i]->path.ToString(setup.schema) << "\n"
              << "  optimal: "
              << r.result.config.ToString(setup.schema, inputs[i]->path)
              << "  (cost " << r.result.cost << ")\n";
  }

  std::cout << "\nshared physical indexes discovered:\n";
  if (rec.shared.empty()) {
    std::cout << "  (none — the optima chose disjoint subpath indexes)\n";
  }
  for (const SharedIndex& s : rec.shared) {
    std::cout << "  " << s.label << " shared by paths";
    for (int p : s.path_indexes) std::cout << " " << p + 1;
    std::cout << "  (saves " << s.saved_cost << " maintenance accesses)\n";
  }

  std::cout << "\ntotal cost, independent optima : "
            << rec.total_cost_independent
            << "\ntotal cost, shared indexes     : " << rec.total_cost_shared
            << "\n\n(The merge is a documented greedy heuristic — the paper "
               "leaves multi-path\nselection to future work; see DESIGN.md "
               "§7.)\n";
  return 0;
}
