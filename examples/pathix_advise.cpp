// pathix_advise: the command-line face of the selection algorithm — feed it
// a workload spec (see src/io/spec_parser.h for the format), get the cost
// matrix, the branch-and-bound trace and the optimal index configuration.
//
//   $ ./examples/pathix_advise ../examples/specs/vehicle.pix
//   $ ./examples/pathix_advise            # runs the embedded demo spec

#include <iostream>

#include "io/spec_parser.h"

namespace {

constexpr const char* kDemoSpec = R"(
# embedded demo: a document store where reviewers search submissions by
# conference name: Submission.review.forum.name
class Submission 80000 20000 1
class Review     40000 15000 2
class RushReview : Review 10000 5000 2
class Forum      500 500 3
ref Submission review Review multi
ref Review     forum  Forum
attr Forum name string
path Submission review forum name
load Submission 0.5 0.1  0.05
load Review     0.1 0.2  0.1
load RushReview 0.0 0.1  0.05
load Forum      0.1 0.02 0.02
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace pathix;

  Result<AdvisorSpec> spec =
      argc > 1 ? ParseAdvisorSpecFile(argv[1]) : ParseAdvisorSpec(kDemoSpec);
  if (!spec.ok()) {
    std::cerr << "error: " << spec.status().ToString() << "\n";
    return 1;
  }
  AdvisorSpec& s = spec.value();
  if (argc <= 1) {
    std::cout << "(no spec file given; using the embedded demo — pass a "
                 ".pix file, e.g. examples/specs/vehicle.pix)\n\n";
  }

  s.options.capture_trace = true;
  Result<Recommendation> rec = AdviseIndexConfiguration(
      s.schema, s.path, s.catalog, s.load, s.options);
  if (!rec.ok()) {
    std::cerr << "error: " << rec.status().ToString() << "\n";
    return 1;
  }
  const Recommendation& r = rec.value();

  std::cout << "path            : " << s.path.ToString(s.schema) << "\n\n";
  r.matrix.Print(std::cout);
  std::cout << "\nbranch-and-bound:\n";
  for (const OptimizerTraceEvent& ev : r.result.trace) {
    std::cout << "  " << ev.ToString() << "\n";
  }
  std::cout << "\noptimal configuration : "
            << r.result.config.ToString(s.schema, s.path)
            << "\nexpected cost         : " << r.result.cost
            << "\nsingle-index baseline : " << r.whole_path_cost << " ("
            << ToString(r.whole_path_org) << "), improvement "
            << r.improvement_factor << "x"
            << "\nestimated storage     : "
            << r.total_storage_bytes / (1024.0 * 1024.0) << " MiB\n";
  return 0;
}
