// pathix_explain: render a decision ledger (pathix_online --decisions-out=)
// as a human-readable audit trail.
//
//   $ ./examples/pathix_online --decisions-out=ledger.jsonl spec.pix
//   $ ./examples/pathix_explain ledger.jsonl
//   $ ./examples/pathix_explain --check=7 ledger.jsonl
//
// Without flags: the run's parameters, the per-phase decision timeline
// (every drift check's verdict with its hysteresis margin), and the phase
// summaries (ops, pages, windowed latency/page percentiles).
//
// --check=N drills into one decision: the workload estimate the controller
// saw, the solver's search stats, the full scored candidate table with each
// candidate's why-not margin ("why was candidate X rejected at check N"),
// and the hysteresis inequality exactly as evaluated — modeled side next to
// the pager-measured side when the check committed.
//
// Exit status: 0 on success, 1 on usage/IO errors, 2 on schema drift (the
// ledger's schema_version does not match this binary, a record is missing
// required keys, or a line is not valid JSON) — the CI smoke gate renders
// the shipped example ledger and fails the build on drift.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/decision_log.h"
#include "obs/json_reader.h"

namespace {

using pathix::obs::JsonValue;

int SchemaDrift(std::size_t line_no, const std::string& why) {
  std::fprintf(stderr, "schema drift at ledger line %zu: %s\n", line_no,
               why.c_str());
  return 2;
}

// Required keys per record type; a ledger record missing one no longer
// matches what this binary was built against.
bool HasAll(const JsonValue& v, const std::vector<const char*>& keys,
            std::string* missing) {
  for (const char* key : keys) {
    if (!v.Has(key)) {
      *missing = std::string("missing key \"") + key + "\"";
      return false;
    }
  }
  return true;
}

bool ValidateRecord(const JsonValue& v, std::string* why) {
  const std::string type = v.StringAt("type");
  if (type == "meta") {
    if (!HasAll(v, {"schema_version", "mode", "spec", "options", "paths",
                    "phases"},
                why)) {
      return false;
    }
    const int version = static_cast<int>(v.NumberAt("schema_version", -1));
    if (version != pathix::obs::kDecisionLedgerSchemaVersion) {
      std::ostringstream os;
      os << "schema_version " << version << " != supported "
         << pathix::obs::kDecisionLedgerSchemaVersion;
      *why = os.str();
      return false;
    }
    return true;
  }
  if (type == "decision") {
    return HasAll(v,
                  {"check", "op_index", "controller", "phase", "verdict",
                   "hold_reason", "workload", "search", "candidates",
                   "hysteresis"},
                  why) &&
           HasAll(*v.Find("hysteresis"),
                  {"evaluated", "current_cost_per_op", "best_cost_per_op",
                   "savings_per_op", "horizon_ops", "theta", "lhs_pages",
                   "modeled", "rhs_modeled_pages", "measured",
                   "rhs_measured_pages", "passed"},
                  why);
  }
  if (type == "phase_summary") {
    return HasAll(v,
                  {"phase", "ops", "pages", "reconfigurations", "decisions",
                   "transition_pages", "measured_transition_pages",
                   "latency_us", "op_pages"},
                  why);
  }
  *why = "unknown record type \"" + type + "\"";
  return false;
}

void PrintMeta(const JsonValue& meta) {
  std::printf("=== Decision ledger: %s run on %s ===\n",
              meta.StringAt("mode").c_str(), meta.StringAt("spec").c_str());
  const JsonValue* opts = meta.Find("options");
  const JsonValue* budget = opts->Find("storage_budget_bytes");
  std::printf(
      "options: theta=%.2f horizon=%.0f half_life=%.0f warmup=%.0f "
      "check_interval=%.0f top_k=%.0f",
      opts->NumberAt("theta"), opts->NumberAt("horizon_ops"),
      opts->NumberAt("half_life_ops"), opts->NumberAt("warmup_ops"),
      opts->NumberAt("check_interval_ops"), opts->NumberAt("decision_top_k"));
  if (budget != nullptr && budget->is_number()) {
    std::printf(" budget=%.0f bytes", budget->AsNumber());
  } else {
    std::printf(" budget=none");
  }
  std::printf("\npaths:\n");
  for (const JsonValue& p : meta.Find("paths")->array()) {
    std::printf("  %s\n", p.AsString().c_str());
  }
}

// One timeline line per decision: the verdict plus the margin that decided
// it (hysteresis lhs vs rhs when evaluated).
void PrintTimelineLine(const JsonValue& d) {
  const JsonValue* h = d.Find("hysteresis");
  const std::string verdict = d.StringAt("verdict");
  std::printf("  check %3.0f @ op %-7.0f %-8s", d.NumberAt("check"),
              d.NumberAt("op_index"), verdict.c_str());
  if (verdict == "hold") {
    std::printf(" (%s", d.StringAt("hold_reason").c_str());
    if (h->BoolAt("evaluated")) {
      std::printf(": %.0f pages won <= %.0f needed",
                  h->NumberAt("lhs_pages"), h->NumberAt("rhs_modeled_pages"));
    }
    std::printf(")");
  } else {
    std::printf(" (savings %.3f pages/op; %.0f pages won > %.0f needed",
                h->NumberAt("savings_per_op"), h->NumberAt("lhs_pages"),
                h->NumberAt("rhs_modeled_pages"));
    const JsonValue* measured_rhs = h->Find("rhs_measured_pages");
    if (measured_rhs != nullptr && measured_rhs->is_number()) {
      std::printf("; measured %.0f", measured_rhs->AsNumber());
    }
    std::printf(")");
  }
  std::printf("\n");
}

void PrintPhaseSummary(const JsonValue& p) {
  std::printf(
      "  phase %-12s ops=%-7.0f pages=%-8.0f reconfigs=%.0f decisions=%.0f "
      "transition=%.0f (measured %.0f)\n",
      p.StringAt("phase").c_str(), p.NumberAt("ops"), p.NumberAt("pages"),
      p.NumberAt("reconfigurations"), p.NumberAt("decisions"),
      p.NumberAt("transition_pages"),
      p.NumberAt("measured_transition_pages"));
  const auto table = [&](const char* key, const char* title) {
    const JsonValue* rows = p.Find(key);
    if (rows == nullptr || rows->array().empty()) return;
    std::printf("    %s:\n", title);
    for (const JsonValue& row : rows->array()) {
      std::printf("      %-14s n=%-7.0f p50=%-8.0f p90=%-8.0f p99=%-8.0f "
                  "max=%.0f\n",
                  row.StringAt("label").c_str(), row.NumberAt("count"),
                  row.NumberAt("p50"), row.NumberAt("p90"),
                  row.NumberAt("p99"), row.NumberAt("max"));
    }
  };
  table("latency_us", "latency (us, this phase's window)");
  table("op_pages", "pages per op (this phase's window)");
}

void PrintTransition(const char* label, const JsonValue* t) {
  if (t == nullptr || !t->is_object()) {
    std::printf("    %-8s (not available — check did not commit)\n", label);
    return;
  }
  std::printf("    %-8s drop=%-8.0f scan=%-8.0f write=%-8.0f total=%.0f\n",
              label, t->NumberAt("drop_pages"), t->NumberAt("scan_pages"),
              t->NumberAt("write_pages"), t->NumberAt("total"));
}

// The --check=N drill-down: everything the controller knew at that check.
void PrintDecisionDetail(const JsonValue& d) {
  std::printf("=== check %.0f (op %.0f, %s controller, phase %s) ===\n",
              d.NumberAt("check"), d.NumberAt("op_index"),
              d.StringAt("controller").c_str(), d.StringAt("phase").c_str());
  const std::string verdict = d.StringAt("verdict");
  std::printf("verdict: %s", verdict.c_str());
  if (verdict == "hold") {
    std::printf(" (%s)", d.StringAt("hold_reason").c_str());
  }
  std::printf("\n\nworkload estimate (decayed, normalized):\n");
  for (const JsonValue& e : d.Find("workload")->Find("load")->array()) {
    const std::string path = e.StringAt("path");
    std::printf("  %s%s%-14s query=%-8.4f insert=%-8.4f delete=%.4f\n",
                path.c_str(), path.empty() ? "" : " / ",
                e.StringAt("class").c_str(), e.NumberAt("query"),
                e.NumberAt("insert"), e.NumberAt("delete"));
  }
  std::printf("measured naive pages/op:\n");
  for (const JsonValue& n :
       d.Find("workload")->Find("naive_pages_per_op")->array()) {
    std::printf("  %-10s %.2f\n", n.StringAt("path", "(single)").c_str(),
                n.NumberAt("pages_per_op"));
  }

  const JsonValue* s = d.Find("search");
  std::printf("\nsearch: %s, %.0f pool entries, %.0f configs enumerated, "
              "%.0f nodes explored, %.0f pruned\n",
              s->BoolAt("used_branch_and_bound") ? "branch-and-bound"
                                                 : "exhaustive/DP",
              s->NumberAt("pool_entries"), s->NumberAt("configs_enumerated"),
              s->NumberAt("nodes_explored"), s->NumberAt("nodes_pruned"));
  std::printf("  lower bound %.4f, gap %.4f", s->NumberAt("lower_bound"),
              s->NumberAt("bound_gap"));
  const JsonValue* greedy = s->Find("greedy_seed");
  if (greedy != nullptr && greedy->is_object()) {
    std::printf("; greedy seed cost %.4f (gap %.4f, %s)",
                greedy->NumberAt("cost"), greedy->NumberAt("gap"),
                greedy->BoolAt("feasible") ? "feasible" : "over budget");
  }
  std::printf("\n");

  std::printf("\ncandidates (why-not margins vs the chosen assignment):\n");
  for (const JsonValue& c : d.Find("candidates")->array()) {
    const std::string why = c.StringAt("why_not");
    std::printf("  %s %s%s%s\n      cost/op=%-10.4f delta=%-+10.4f%s%s%s\n",
                c.BoolAt("chosen") ? "*" : " ", c.StringAt("path").c_str(),
                c.StringAt("path").empty() ? "" : " ",
                c.StringAt("config").c_str(), c.NumberAt("cost_per_op"),
                c.NumberAt("cost_delta"),
                c.BoolAt("current") ? "  [installed]" : "",
                c.BoolAt("violates_budget") ? "  [over budget]" : "",
                why.empty() ? "" : ("  why not: " + why).c_str());
    if (c.NumberAt("storage_bytes") > 0) {
      std::printf("      storage=%.0f bytes\n", c.NumberAt("storage_bytes"));
    }
  }

  const JsonValue* h = d.Find("hysteresis");
  std::printf("\nhysteresis gate: savings/op * horizon > theta * transition\n");
  std::printf("  current=%.4f%s best=%.4f savings=%.4f\n",
              h->NumberAt("current_cost_per_op"),
              h->BoolAt("current_is_measured_naive") ? " (measured naive)"
                                                     : " (modeled)",
              h->NumberAt("best_cost_per_op"), h->NumberAt("savings_per_op"));
  if (h->BoolAt("evaluated")) {
    std::printf("  lhs: %.4f * %.0f = %.2f pages won over the horizon\n",
                h->NumberAt("savings_per_op"), h->NumberAt("horizon_ops"),
                h->NumberAt("lhs_pages"));
    PrintTransition("modeled", h->Find("modeled"));
    std::printf("    rhs (modeled): theta %.2f * total = %.2f  ->  %s\n",
                h->NumberAt("theta"), h->NumberAt("rhs_modeled_pages"),
                h->BoolAt("passed") ? "PASS (reconfigure)" : "HOLD");
    PrintTransition("measured", h->Find("measured"));
    const JsonValue* rhs_measured = h->Find("rhs_measured_pages");
    if (rhs_measured != nullptr && rhs_measured->is_number()) {
      std::printf("    rhs (measured): theta %.2f * total = %.2f  ->  "
                  "would %s\n",
                  h->NumberAt("theta"), rhs_measured->AsNumber(),
                  h->NumberAt("lhs_pages") > rhs_measured->AsNumber()
                      ? "also PASS"
                      : "HOLD (modeled gate was optimistic)");
    }
  } else {
    std::printf("  (not evaluated — the check held before pricing a "
                "transition)\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string ledger_file;
  long check = -1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--check=", 0) == 0) {
      check = std::strtol(arg.c_str() + 8, nullptr, 10);
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "error: unknown flag %s (known: --check=N)\n",
                   arg.c_str());
      return 1;
    } else if (ledger_file.empty()) {
      ledger_file = arg;
    } else {
      std::fprintf(stderr, "error: more than one ledger file given\n");
      return 1;
    }
  }
  if (ledger_file.empty()) {
    std::fprintf(stderr,
                 "usage: pathix_explain [--check=N] LEDGER.jsonl\n"
                 "(produce one with pathix_online --decisions-out=FILE)\n");
    return 1;
  }

  std::ifstream in(ledger_file);
  if (!in) {
    std::fprintf(stderr, "error: could not read %s\n", ledger_file.c_str());
    return 1;
  }

  // Parse + validate every line first: a drifted ledger exits 2 before any
  // partial rendering.
  std::vector<JsonValue> records;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    pathix::Result<JsonValue> parsed = pathix::obs::ParseJson(line);
    if (!parsed.ok()) {
      return SchemaDrift(line_no, parsed.status().ToString());
    }
    std::string why;
    if (!ValidateRecord(parsed.value(), &why)) {
      return SchemaDrift(line_no, why);
    }
    records.push_back(std::move(parsed).value());
  }
  if (records.empty() || records[0].StringAt("type") != "meta") {
    return SchemaDrift(1, "ledger must start with a meta record");
  }

  if (check >= 0) {
    for (const JsonValue& r : records) {
      if (r.StringAt("type") == "decision" &&
          static_cast<long>(r.NumberAt("check")) == check) {
        PrintDecisionDetail(r);
        return 0;
      }
    }
    std::fprintf(stderr, "error: no decision record with check=%ld\n", check);
    return 1;
  }

  PrintMeta(records[0]);
  std::string current_phase;
  for (const JsonValue& r : records) {
    const std::string type = r.StringAt("type");
    if (type == "decision") {
      if (r.StringAt("phase") != current_phase) {
        current_phase = r.StringAt("phase");
        std::printf("\nphase %s:\n", current_phase.c_str());
      }
      PrintTimelineLine(r);
    }
  }
  std::printf("\nphase summaries:\n");
  for (const JsonValue& r : records) {
    if (r.StringAt("type") == "phase_summary") PrintPhaseSummary(r);
  }
  std::printf("\n(drill into one decision with --check=N)\n");
  return 0;
}
