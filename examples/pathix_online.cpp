// pathix_online: online index selection on a live simulated database.
//
// Feed it a trace spec (see src/io/spec_parser.h for the format): an object
// population plus timed operation batches whose mix shifts per phase. The
// tool replays the trace three ways — the online controller (monitor /
// selector / hysteresis, reconfiguring live), the per-phase offline oracle,
// and every candidate static configuration — and reports per-phase page
// costs, the reconfiguration points, and the regret.
//
//   $ ./examples/pathix_online ../examples/specs/vehicle_drift_trace.pix
//   $ ./examples/pathix_online     # runs the embedded demo trace
//
// Exit status: 0 when the online run beats the best static configuration
// and stays within 2x of the oracle (the acceptance envelope), 1 on error,
// 2 when the envelope is missed.

#include <cstdio>
#include <iostream>

#include "online/experiment.h"

namespace {

// Embedded demo distinct from the shipped vehicle_drift_trace.pix (which the
// smoke test replays): a document store whose traffic flips from reviewer
// searches to bulk ingest and back.
constexpr const char* kDemoSpec = R"(
class Submission 80000 8000 1
class Forum      400 400 1

ref Submission forum Forum
attr Forum name string

path Submission forum name
orgs MX MIX NIX NONE

populate Submission 3000 0 1.0
populate Forum      60 60 1.0
trace_seed 11

phase search 4000
mix Submission 0.95 0.03 0.02

phase ingest 4000
mix Submission 0.02 0.6 0.38

phase search2 4000
mix Submission 0.95 0.03 0.02
)";

void PrintRun(const pathix::ExperimentRun& run) {
  std::printf("  %-18s", run.label.c_str());
  for (const pathix::PhaseReport& p : run.phases) {
    std::printf(" %10.0f", p.total_cost());
  }
  std::printf(" %12.0f\n", run.total_cost());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pathix;

  Result<TraceSpec> spec = argc > 1 ? ParseTraceSpecFile(argv[1])
                                    : ParseTraceSpec(kDemoSpec);
  if (!spec.ok()) {
    std::cerr << "error: " << spec.status().ToString() << "\n";
    return 1;
  }
  const TraceSpec& s = spec.value();
  if (argc <= 1) {
    std::cout << "(no spec file given; using the embedded demo — pass a "
                 "trace .pix file, e.g. examples/specs/"
                 "vehicle_drift_trace.pix)\n\n";
  }

  Result<ExperimentReport> result = RunOnlineExperiment(s, ControllerOptions{});
  if (!result.ok()) {
    std::cerr << "error: " << result.status().ToString() << "\n";
    return 1;
  }
  const ExperimentReport& r = result.value();

  std::cout << "=== Online index selection on "
            << s.path.ToString(s.schema) << " ===\n\n";
  std::printf("phases:");
  for (const TracePhase& phase : s.phases) {
    std::printf("  %s(%llu ops)", phase.name.c_str(),
                static_cast<unsigned long long>(phase.ops));
  }
  std::printf("\n\nper-phase page cost (measured pages + modeled transition "
              "charges):\n  %-18s", "run");
  for (const TracePhase& phase : s.phases) {
    std::printf(" %10s", phase.name.c_str());
  }
  std::printf(" %12s\n", "total");
  PrintRun(r.online);
  PrintRun(r.oracle);
  for (const StaticCandidate& c : r.statics) PrintRun(c.run);

  std::cout << "\noracle per-phase configurations:\n";
  for (std::size_t i = 0; i < r.oracle_configs.size(); ++i) {
    std::cout << "  " << s.phases[i].name << " : "
              << r.oracle_configs[i].ToString(s.schema, s.path) << "\n";
  }

  std::cout << "\nonline reconfiguration points ("
            << r.events.size() << "):\n";
  for (const ReconfigurationEvent& ev : r.events) {
    std::cout << "  op " << ev.op_index << ": "
              << (ev.initial ? "install " : "switch to ")
              << ev.to.ToString(s.schema, s.path);
    if (!ev.initial) {
      std::printf(" (predicted savings %.3f pages/op, transition %.0f pages)",
                  ev.predicted_savings_per_op, ev.transition.total());
    }
    std::cout << "\n";
  }

  const int best = r.best_static;
  std::printf(
      "\ntotal cost, online         : %.0f  (%.0f measured + %.0f transition)\n"
      "total cost, oracle         : %.0f  (per-phase optimum, free switches)\n"
      "total cost, best static    : %.0f  (%s)\n"
      "online / best static       : %.3f  %s\n"
      "online / oracle (regret)   : %.3f  %s\n",
      r.online.total_cost(), r.online.measured_pages(),
      r.online.transition_pages(), r.oracle.total_cost(),
      r.best_static_cost(),
      best >= 0 ? r.statics[static_cast<std::size_t>(best)].label.c_str()
                : "n/a",
      r.online_vs_best_static(),
      r.online_vs_best_static() < 1 ? "(adapting beat every fixed choice)"
                                    : "(a static choice was at least as good)",
      r.online_vs_oracle(),
      r.online_vs_oracle() <= 2 ? "(within the 2x envelope)"
                                : "(outside the 2x envelope)");

  const bool ok = r.online_vs_best_static() < 1 && r.online_vs_oracle() <= 2;
  return ok ? 0 : 2;
}
