// pathix_online: online index selection on a live simulated database.
//
// Feed it a trace spec (see src/io/spec_parser.h for the format): an object
// population plus timed operation batches whose mix shifts per phase.
//
// Single-path traces replay three ways — the online controller (monitor /
// selector / hysteresis, reconfiguring live), the per-phase offline oracle,
// and every candidate static configuration. Multi-path traces (several
// `path` lines, optionally a storage `budget`) run the *joint* pipeline
// instead: a JointReconfigurationController re-solving the workload
// advisor's storage-budgeted joint selection on drift, compared against the
// per-phase joint oracle and static joint / independent baselines.
//
//   $ ./examples/pathix_online ../examples/specs/vehicle_drift_trace.pix
//   $ ./examples/pathix_online ../examples/specs/vehicle_joint_trace.pix
//   $ ./examples/pathix_online     # runs the embedded demo trace
//
// Serving flags:
//   --buffer-pages=N     serve every run through a buffer pool of N frames
//                        (enabled after population, so each replay starts
//                        cold). Default 0: the paper's cold-buffer cost
//                        model, where every touch is a charged page access.
//                        Buffered runs are a hot/cold ablation: the
//                        acceptance envelope is printed but not enforced
//                        (the envelope is a cold-model contract).
//
// Observability flags (any mix, before or after the spec file):
//   --metrics            print an online-run metrics summary to stdout
//   --metrics-out=FILE   Prometheus text exposition of the online run's
//                        final metrics snapshot
//   --metrics-json=FILE  structured JSON: the same snapshot plus the
//                        controller's reconfiguration event log
//   --trace-out=FILE     span trace of the online run in Trace Event
//                        Format — loads in chrome://tracing / Perfetto
//   --decisions-out=FILE decision ledger (JSONL): one meta line, one
//                        structured record per drift check (workload
//                        snapshot, scored candidates with why-not margins,
//                        the hysteresis inequality modeled and measured,
//                        verdict), one phase_summary per phase — render
//                        with pathix_explain
//
// Whenever any of these is given, the online run's metric counter deltas
// (final snapshot minus the post-populate baseline) are reconciled exactly
// against the replayer's per-phase operation tallies; a mismatch is an
// error (exit 1). A decision ledger is additionally reconciled against the
// controller: its commit verdicts must match the committed
// reconfiguration count.
//
// Exit status: 0 when the online run beats the best (budget-feasible)
// static configuration and stays within 2x of the oracle (the acceptance
// envelope), 1 on error, 2 when the envelope is missed.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "obs/decision_log.h"
#include "obs/export.h"
#include "obs/json_writer.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "online/decision_record.h"
#include "online/event_json.h"
#include "online/experiment.h"
#include "online/joint_experiment.h"
#include "online/measured_validation.h"

namespace {

// Embedded demo distinct from the shipped vehicle_drift_trace.pix (which the
// smoke test replays): a document store whose traffic flips from reviewer
// searches to bulk ingest and back.
constexpr const char* kDemoSpec = R"(
class Submission 80000 8000 1
class Forum      400 400 1

ref Submission forum Forum
attr Forum name string

path Submission forum name
orgs MX MIX NIX NONE

populate Submission 3000 0 1.0
populate Forum      60 60 1.0
trace_seed 11

phase search 6000
mix Submission 0.95 0.03 0.02

phase ingest 6000
mix Submission 0.02 0.6 0.38

phase search2 6000
mix Submission 0.95 0.03 0.02
)";

// Each run's page totals both ways: with the *modeled* transition charges
// (the gating view) and with the pager-*measured* transition I/O (the
// model-free view). Runs without a controller moved nothing, so the two
// totals coincide there.
void PrintRun(const pathix::ExperimentRun& run) {
  std::printf("  %-22s", run.label.c_str());
  for (const pathix::PhaseReport& p : run.phases) {
    std::printf(" %10.0f", p.total_cost());
  }
  std::printf(" %12.0f %12.0f\n", run.total_cost(), run.measured_total_cost());
}

void PrintHeader(const pathix::TraceSpec& s) {
  std::printf("phases:");
  for (const pathix::TracePhase& phase : s.phases) {
    std::printf("  %s(%llu ops)", phase.name.c_str(),
                static_cast<unsigned long long>(phase.ops));
  }
  std::printf("\n\nper-phase page cost (measured pages + modeled transition "
              "charges):\n  %-22s", "run");
  for (const pathix::TracePhase& phase : s.phases) {
    std::printf(" %10s", phase.name.c_str());
  }
  std::printf(" %12s %12s\n", "modeled", "measured");
}

// The `measure on` extra: the whole trace replayed once more under the
// average-mix optimum, the analytic matrix compared against the pager's
// scoped tallies per phase and per path.
int PrintMeasuredVsModeled(const pathix::TraceSpec& s) {
  using namespace pathix;
  Result<MeasuredVsModeledReport> validation = RunMeasuredVsModeled(s);
  if (!validation.ok()) {
    std::cerr << "error: " << validation.status().ToString() << "\n";
    return 1;
  }
  const MeasuredVsModeledReport& v = validation.value();
  std::printf("\nmeasured vs modeled (fixed avg-mix optimum; pages/op):\n"
              "  %-12s %-10s %10s %10s %8s\n",
              "phase", "path", "measured", "modeled", "ratio");
  for (const MeasuredVsModeledCell& cell : v.cells) {
    std::printf("  %-12s %-10s %10.2f %10.2f %8.2f\n", cell.phase.c_str(),
                cell.path.c_str(), cell.measured_pages_per_op,
                cell.modeled_pages_per_op, cell.ratio());
  }
  for (const MeasuredVsModeledPhase& phase : v.phases) {
    std::printf("  %-12s %-10s %10.2f %10.2f %8.2f\n", phase.phase.c_str(),
                "(all)", phase.measured_pages_per_op,
                phase.modeled_pages_per_op, phase.ratio());
  }
  return 0;
}

// ------------------------------------------------------- observability glue

struct ObsFlags {
  std::string metrics_out;   ///< --metrics-out=FILE (Prometheus text)
  std::string metrics_json;  ///< --metrics-json=FILE (snapshot + events)
  std::string trace_out;     ///< --trace-out=FILE (Trace Event JSON)
  std::string decisions_out;  ///< --decisions-out=FILE (JSONL ledger)
  std::string spec_label;     ///< spec path (or the embedded-demo label)
  bool print_summary = false;  ///< --metrics

  bool any() const {
    return print_summary || !metrics_out.empty() || !metrics_json.empty() ||
           !trace_out.empty() || !decisions_out.empty();
  }
};

bool WriteFileOrWarn(const std::string& path, const std::string& body,
                     const char* what) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "error: could not write %s file %s\n", what,
                 path.c_str());
    return false;
  }
  std::fputs(body.c_str(), f);
  std::fclose(f);
  std::printf("(%s: %s)\n", what, path.c_str());
  return true;
}

// The acceptance invariant behind the exports: every successful operation
// the replayer executed in the online run must appear, exactly once, as a
// metric counter increment. Counter deltas (final snapshot minus the
// post-populate baseline) are compared against the replayer's own tallies.
bool CrossCheckOnlineMetrics(const pathix::TraceSpec& s,
                             const pathix::ExperimentRun& online,
                             const pathix::obs::MetricsSnapshot& baseline,
                             const pathix::obs::MetricsSnapshot& final_snap) {
  using namespace pathix;
  std::map<std::string, std::uint64_t> queries;
  std::map<std::string, std::uint64_t> naive_queries;
  std::uint64_t inserts = 0;
  std::uint64_t deletes = 0;
  for (const PhaseReport& p : online.phases) {
    for (const auto& [path, n] : p.query_ops) queries[path] += n;
    for (const auto& [path, n] : p.naive_query_ops) naive_queries[path] += n;
    inserts += p.insert_ops;
    deletes += p.delete_ops;
  }

  bool ok = true;
  std::uint64_t reconciled = 0;
  const auto expect = [&](const char* what, const std::string& path,
                          obs::MetricLabels labels, std::uint64_t expected) {
    const double delta = final_snap.Value("pathix_db_ops_total", labels) -
                         baseline.Value("pathix_db_ops_total", std::move(labels));
    if (delta != static_cast<double>(expected)) {
      std::fprintf(stderr,
                   "metrics cross-check FAILED: %s%s%s: counter delta %.0f != "
                   "replayed %llu\n",
                   what, path.empty() ? "" : " on ", path.c_str(), delta,
                   static_cast<unsigned long long>(expected));
      ok = false;
    }
    reconciled += expected;
  };

  for (const TracePath& tp : s.paths) {
    expect("indexed queries", tp.id,
           {{"kind", "query"}, {"path", tp.id}, {"naive", "false"}},
           queries[tp.id]);
    expect("naive queries", tp.id,
           {{"kind", "query"}, {"path", tp.id}, {"naive", "true"}},
           naive_queries[tp.id]);
  }
  expect("inserts", "", {{"kind", "insert"}}, inserts);
  expect("deletes", "", {{"kind", "delete"}}, deletes);
  if (ok) {
    std::printf("\nmetrics cross-check: ok (%llu ops reconciled against the "
                "registry)\n",
                static_cast<unsigned long long>(reconciled));
  }
  return ok;
}

void PrintHistogramLine(const char* indent, const std::string& label,
                        const pathix::obs::MetricSample* sample) {
  if (sample == nullptr || sample->histogram.count == 0) return;
  const pathix::obs::HistogramData& h = sample->histogram;
  std::printf("%s%-12s n=%-7llu p50=%-8.0f p90=%-8.0f p99=%-8.0f max=%.0f\n",
              indent, label.c_str(),
              static_cast<unsigned long long>(h.count), h.Percentile(0.50),
              h.Percentile(0.90), h.Percentile(0.99), h.max);
}

void PrintMetricsSummary(const pathix::TraceSpec& s,
                         const pathix::obs::MetricsSnapshot& m) {
  using namespace pathix;
  // Query counters are per-path series; sum them for the rollup line.
  const auto query_total = [&](const char* naive) {
    double q = 0;
    for (const TracePath& tp : s.paths) {
      q += m.Value("pathix_db_ops_total",
                   {{"kind", "query"}, {"path", tp.id}, {"naive", naive}});
    }
    return q;
  };
  std::printf("\nonline run metrics (obs registry, final snapshot):\n");
  std::printf("  db ops: query=%.0f (naive %.0f) insert=%.0f delete=%.0f\n",
              query_total("false"), query_total("true"),
              m.Value("pathix_db_ops_total", {{"kind", "insert"}}),
              m.Value("pathix_db_ops_total", {{"kind", "delete"}}));
  std::printf("  query latency by path (us):\n");
  for (const TracePath& tp : s.paths) {
    PrintHistogramLine("    ", tp.id,
                       m.Find("pathix_db_op_latency_us",
                              {{"kind", "query"}, {"path", tp.id}}));
  }
  std::printf("  update latency (us):\n");
  PrintHistogramLine("    ", "insert",
                     m.Find("pathix_db_op_latency_us", {{"kind", "insert"}}));
  PrintHistogramLine("    ", "delete",
                     m.Find("pathix_db_op_latency_us", {{"kind", "delete"}}));
  std::printf(
      "  pager: reads=%.0f writes=%.0f buffer_hits=%.0f allocated=%.0f\n",
      m.Value("pathix_pager_io_total", {{"io", "read"}}),
      m.Value("pathix_pager_io_total", {{"io", "write"}}),
      m.Value("pathix_pager_buffer_hits_total"),
      m.Value("pathix_pager_allocated_pages"));
  std::printf(
      "  parts: built=%.0f adopted=%.0f released=%.0f live=%.0f "
      "(build io: %.0f read / %.0f write)\n",
      m.Value("pathix_parts_built_total"), m.Value("pathix_parts_adopted_total"),
      m.Value("pathix_parts_released_total"), m.Value("pathix_parts_live"),
      m.Value("pathix_parts_build_io_total", {{"io", "read"}}),
      m.Value("pathix_parts_build_io_total", {{"io", "write"}}));
  std::printf(
      "  controller: checks=%.0f reconfigurations=%.0f events_evicted=%.0f "
      "transition pages modeled=%.0f measured=%.0f\n",
      m.Value("pathix_controller_checks_total"),
      m.Value("pathix_controller_reconfigurations_total"),
      m.Value("pathix_controller_events_evicted_total"),
      m.Value("pathix_controller_transition_pages_total",
              {{"kind", "modeled"}}),
      m.Value("pathix_controller_transition_pages_total",
              {{"kind", "measured"}}));
}

// ------------------------------------------------------- decision ledger

// One labeled percentile row of a phase_summary table, from the windowed
// (DeltaSince) histogram sample. Rows with no observations are skipped.
void AppendPhaseStat(const pathix::obs::MetricsSnapshot& window,
                     const char* family, pathix::obs::MetricLabels labels,
                     const std::string& label,
                     std::vector<pathix::LedgerPhaseStat>* rows) {
  const pathix::obs::MetricSample* sample =
      window.Find(family, std::move(labels));
  if (sample == nullptr || sample->histogram.count == 0) return;
  const pathix::obs::HistogramData& h = sample->histogram;
  pathix::LedgerPhaseStat row;
  row.label = label;
  row.count = h.count;
  row.p50 = h.Percentile(0.50);
  row.p90 = h.Percentile(0.90);
  row.p99 = h.Percentile(0.99);
  row.max = h.max;
  rows->push_back(std::move(row));
}

/// Assembles and writes the JSONL decision ledger: the meta line, every
/// phase's decision records (already phase-stamped by the replayer), and a
/// phase_summary per phase whose percentile tables come from the windowed
/// snapshot deltas. Cross-checks the ledger's commit verdicts against the
/// controller's committed reconfiguration count; returns false on mismatch
/// or an unwritable file.
template <typename Report>
bool EmitDecisionLedger(const pathix::TraceSpec& s, const Report& r,
                        const char* mode, const ObsFlags& flags) {
  using namespace pathix;
  const ControllerOptions opts;  // what the runners were handed (defaults)

  LedgerMeta meta;
  meta.mode = mode;
  meta.spec = flags.spec_label;
  meta.theta = opts.hysteresis;
  meta.horizon_ops = opts.horizon_ops;
  meta.half_life_ops = opts.half_life_ops;
  meta.warmup_ops = opts.warmup_ops;
  meta.check_interval_ops = opts.check_interval_ops;
  meta.storage_budget_bytes =
      s.has_budget ? s.storage_budget_bytes
                   : std::numeric_limits<double>::infinity();
  meta.decision_top_k = opts.decision_top_k;
  for (const TracePath& tp : s.paths) {
    meta.paths.push_back(tp.id + ": " + tp.path.ToString(s.schema));
  }
  for (const TracePhase& phase : s.phases) meta.phases.push_back(phase.name);

  obs::DecisionLog log;
  WriteLedgerMeta(&log, meta);

  std::uint64_t commit_verdicts = 0;
  std::uint64_t records_retained = 0;
  std::uint64_t records_captured = 0;
  int reconfigurations = 0;
  for (std::size_t i = 0; i < r.online.phases.size(); ++i) {
    const PhaseReport& p = r.online.phases[i];
    for (const DecisionRecord& rec : p.decisions) {
      WriteDecisionRecord(&log, rec);
      if (rec.verdict == "install" || rec.verdict == "switch") {
        ++commit_verdicts;
      }
    }
    records_retained += p.decisions.size();
    records_captured += p.decisions_captured;
    reconfigurations += p.reconfigurations;

    const obs::MetricsSnapshot window = r.online_phase_metrics[i].DeltaSince(
        i == 0 ? r.online_metrics_baseline : r.online_phase_metrics[i - 1]);
    LedgerPhaseSummary summary;
    summary.phase = p.name;
    summary.ops = p.ops;
    summary.pages = p.pages;
    summary.reconfigurations = p.reconfigurations;
    summary.decisions = p.decisions_captured;
    summary.transition_pages = p.transition_pages;
    summary.measured_transition_pages = p.measured_transition_pages;
    for (const TracePath& tp : s.paths) {
      AppendPhaseStat(window, "pathix_db_op_latency_us",
                      {{"kind", "query"}, {"path", tp.id}}, "query:" + tp.id,
                      &summary.latency_us);
      AppendPhaseStat(window, "pathix_db_op_pages",
                      {{"kind", "query"}, {"path", tp.id}}, "query:" + tp.id,
                      &summary.op_pages);
    }
    for (const char* kind : {"insert", "delete"}) {
      AppendPhaseStat(window, "pathix_db_op_latency_us", {{"kind", kind}},
                      kind, &summary.latency_us);
      AppendPhaseStat(window, "pathix_db_op_pages", {{"kind", kind}}, kind,
                      &summary.op_pages);
    }
    AppendPhaseStat(window, "pathix_advisor_resolve_duration_us",
                    {{"controller", mode}}, "re_solve", &summary.latency_us);
    WriteLedgerPhaseSummary(&log, summary);
  }

  // The ledger must tell the same story as the controller: one commit
  // verdict per committed reconfiguration. Only checkable when the bounded
  // ledger evicted nothing (every captured record is still retained).
  if (records_retained == records_captured &&
      commit_verdicts != static_cast<std::uint64_t>(reconfigurations)) {
    std::fprintf(stderr,
                 "decision ledger cross-check FAILED: %llu commit verdicts "
                 "!= %d committed reconfigurations\n",
                 static_cast<unsigned long long>(commit_verdicts),
                 reconfigurations);
    return false;
  }
  std::printf("decision ledger cross-check: ok (%llu commit verdicts == %d "
              "reconfigurations; %llu records)\n",
              static_cast<unsigned long long>(commit_verdicts),
              reconfigurations,
              static_cast<unsigned long long>(log.records()));
  return WriteFileOrWarn(flags.decisions_out, log.str(), "decisions");
}

/// Everything the observability flags ask for, for either report flavor
/// (\p Report is ExperimentReport or JointExperimentReport — both carry the
/// snapshots, and WriteEventLog overloads on the event type). Returns
/// false on cross-check failure or unwritable output file.
template <typename Report>
bool EmitObservability(const pathix::TraceSpec& s, const Report& r,
                       const char* mode, const ObsFlags& flags) {
  using namespace pathix;
  if (!flags.any()) return true;
  if (!CrossCheckOnlineMetrics(s, r.online, r.online_metrics_baseline,
                               r.online_metrics)) {
    return false;
  }
  if (flags.print_summary) PrintMetricsSummary(s, r.online_metrics);
  if (!flags.metrics_out.empty() &&
      !WriteFileOrWarn(flags.metrics_out,
                       obs::ToPrometheusText(r.online_metrics), "metrics")) {
    return false;
  }
  if (!flags.metrics_json.empty()) {
    obs::JsonWriter w;
    w.BeginObject();
    w.Key("mode").Value(mode);
    w.Key("metrics");
    obs::WriteMetricsJson(&w, r.online_metrics);
    w.Key("events");
    WriteEventLog(&w, r.events);
    w.EndObject();
    if (!WriteFileOrWarn(flags.metrics_json, w.str() + "\n", "metrics-json")) {
      return false;
    }
  }
  if (!flags.decisions_out.empty() &&
      !EmitDecisionLedger(s, r, mode, flags)) {
    return false;
  }
  if (!flags.trace_out.empty()) {
    const obs::Tracer& tracer = obs::GlobalTracer();
    std::printf("(trace spans recorded: %llu events)\n",
                static_cast<unsigned long long>(tracer.size()));
    if (!WriteFileOrWarn(flags.trace_out, tracer.ToTraceEventJson() + "\n",
                         "trace")) {
      return false;
    }
  }
  return true;
}

int RunSinglePath(const pathix::TraceSpec& s, const ObsFlags& flags,
                  std::size_t buffer_pages) {
  using namespace pathix;
  Result<ExperimentReport> result =
      RunOnlineExperiment(s, ControllerOptions{}, buffer_pages);
  if (!result.ok()) {
    std::cerr << "error: " << result.status().ToString() << "\n";
    return 1;
  }
  const ExperimentReport& r = result.value();
  const Path& path = s.paths[0].path;

  std::cout << "=== Online index selection on " << path.ToString(s.schema)
            << " ===\n\n";
  PrintHeader(s);
  PrintRun(r.online);
  PrintRun(r.oracle);
  for (const StaticCandidate& c : r.statics) PrintRun(c.run);

  std::cout << "\noracle per-phase configurations:\n";
  for (std::size_t i = 0; i < r.oracle_configs.size(); ++i) {
    std::cout << "  " << s.phases[i].name << " : "
              << r.oracle_configs[i].ToString(s.schema, path) << "\n";
  }

  std::cout << "\nonline reconfiguration points (" << r.events.size()
            << "):\n";
  for (const ReconfigurationEvent& ev : r.events) {
    std::cout << "  op " << ev.op_index << ": "
              << (ev.initial ? "install " : "switch to ")
              << ev.to.ToString(s.schema, path);
    if (!ev.initial) {
      std::printf(" (predicted savings %.3f pages/op, transition %.0f pages)",
                  ev.predicted_savings_per_op, ev.transition.total());
    }
    std::cout << "\n";
  }

  const int best = r.best_static;
  std::printf(
      "\ntotal cost, online         : %.0f  (%.0f measured + %.0f modeled "
      "transition; %.0f measured transition)\n"
      "total cost, oracle         : %.0f  (per-phase optimum, free switches)\n"
      "total cost, best static    : %.0f  (%s)\n"
      "online / best static       : %.3f  %s\n"
      "online / oracle (regret)   : %.3f  %s\n",
      r.online.total_cost(), r.online.measured_pages(),
      r.online.transition_pages(), r.online.measured_transition_pages(),
      r.oracle.total_cost(), r.best_static_cost(),
      best >= 0 ? r.statics[static_cast<std::size_t>(best)].label.c_str()
                : "n/a",
      r.online_vs_best_static(),
      r.online_vs_best_static() < 1 ? "(adapting beat every fixed choice)"
                                    : "(a static choice was at least as good)",
      r.online_vs_oracle(),
      r.online_vs_oracle() <= 2 ? "(within the 2x envelope)"
                                : "(outside the 2x envelope)");

  if (!EmitObservability(s, r, "single", flags)) return 1;
  if (s.measure && PrintMeasuredVsModeled(s) != 0) return 1;

  // The acceptance envelope is a property of the paper's cold cost model:
  // a warm pool shrinks every measured total while the modeled transition
  // charges stay fixed, so buffered (ablation) runs report the ratios
  // without gating the exit code on them.
  const bool ok = buffer_pages > 0 ||
                  (r.online_vs_best_static() < 1 && r.online_vs_oracle() <= 2);
  return ok ? 0 : 2;
}

int RunJoint(const pathix::TraceSpec& s, const ObsFlags& flags,
             std::size_t buffer_pages) {
  using namespace pathix;
  Result<JointExperimentReport> result =
      RunJointOnlineExperiment(s, ControllerOptions{}, buffer_pages);
  if (!result.ok()) {
    std::cerr << "error: " << result.status().ToString() << "\n";
    return 1;
  }
  const JointExperimentReport& r = result.value();

  std::cout << "=== Joint online index selection over " << s.paths.size()
            << " paths ===\n\n";
  for (const TracePath& tp : s.paths) {
    std::cout << "  " << tp.id << " : " << tp.path.ToString(s.schema) << "\n";
  }
  if (s.has_budget) {
    std::printf("  storage budget: %.0f bytes\n", s.storage_budget_bytes);
  }
  std::cout << "\n";
  PrintHeader(s);
  PrintRun(r.online);
  PrintRun(r.oracle);
  for (const JointStaticCandidate& c : r.statics) PrintRun(c.run);

  std::cout << "\njoint oracle per-phase assignments:\n";
  for (std::size_t i = 0; i < r.oracle_configs.size(); ++i) {
    std::cout << "  " << s.phases[i].name << ":\n";
    for (std::size_t p = 0; p < s.paths.size(); ++p) {
      std::cout << "    " << s.paths[p].id << " : "
                << r.oracle_configs[i][p].ToString(s.schema, s.paths[p].path)
                << "\n";
    }
  }

  std::cout << "\nonline joint reconfiguration points (" << r.events.size()
            << "):\n";
  for (const JointReconfigurationEvent& ev : r.events) {
    std::cout << "  op " << ev.op_index << ": "
              << (ev.initial ? "install" : "switch");
    if (!ev.initial) {
      std::printf(" (predicted savings %.3f pages/op, transition %.0f pages)",
                  ev.predicted_savings_per_op, ev.transition.total());
    }
    std::cout << "\n";
    for (const JointReconfigurationEvent::PathChange& change : ev.changes) {
      const Path* path = nullptr;
      for (const TracePath& tp : s.paths) {
        if (tp.id == change.path) path = &tp.path;
      }
      std::cout << "    " << change.path << " -> "
                << change.to.ToString(s.schema, *path) << "\n";
    }
  }

  const int best = r.best_static_joint;
  std::printf(
      "\ntotal cost, online joint      : %.0f  (%.0f measured + %.0f modeled "
      "transition; %.0f measured transition)\n"
      "total cost, joint oracle      : %.0f  (per-phase joint optimum, free "
      "switches)\n"
      "total cost, best static joint : %.0f  (%s)\n"
      "online / best static joint    : %.3f  %s\n"
      "online / oracle (regret)      : %.3f  %s\n",
      r.online.total_cost(), r.online.measured_pages(),
      r.online.transition_pages(), r.online.measured_transition_pages(),
      r.oracle.total_cost(), r.best_static_joint_cost(),
      best >= 0 ? r.statics[static_cast<std::size_t>(best)].label.c_str()
                : "n/a",
      r.online_vs_best_static_joint(),
      r.online_vs_best_static_joint() < 1
          ? "(adapting beat every budget-feasible fixed choice)"
          : "(a static choice was at least as good)",
      r.online_vs_oracle(),
      r.online_vs_oracle() <= 2 ? "(within the 2x envelope)"
                                : "(outside the 2x envelope)");

  if (!EmitObservability(s, r, "joint", flags)) return 1;
  if (s.measure && PrintMeasuredVsModeled(s) != 0) return 1;

  // Cold-model envelope only — see RunSinglePath.
  const bool ok =
      buffer_pages > 0 ||
      (r.online_vs_best_static_joint() < 1 && r.online_vs_oracle() <= 2);
  return ok ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pathix;

  ObsFlags flags;
  std::string spec_file;
  std::size_t buffer_pages = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto flag_value = [&](const char* prefix) -> const char* {
      const std::size_t n = std::string(prefix).size();
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    if (arg == "--metrics") {
      flags.print_summary = true;
    } else if (const char* prom_file = flag_value("--metrics-out=")) {
      flags.metrics_out = prom_file;
    } else if (const char* json_file = flag_value("--metrics-json=")) {
      flags.metrics_json = json_file;
    } else if (const char* trace_file = flag_value("--trace-out=")) {
      flags.trace_out = trace_file;
    } else if (const char* ledger_file = flag_value("--decisions-out=")) {
      flags.decisions_out = ledger_file;
    } else if (const char* pages = flag_value("--buffer-pages=")) {
      const long parsed = std::atol(pages);
      if (parsed < 0) {
        std::cerr << "error: --buffer-pages wants a non-negative integer\n";
        return 1;
      }
      buffer_pages = static_cast<std::size_t>(parsed);
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "error: unknown flag " << arg
                << " (known: --buffer-pages=N, --metrics, --metrics-out=FILE, "
                   "--metrics-json=FILE, --trace-out=FILE, "
                   "--decisions-out=FILE)\n";
      return 1;
    } else if (spec_file.empty()) {
      spec_file = arg;
    } else {
      std::cerr << "error: more than one spec file given (" << spec_file
                << ", " << arg << ")\n";
      return 1;
    }
  }
  // Span creation is gated per-span at the tracer, so enabling before the
  // experiment captures every controller/registry span of all runs.
  if (!flags.trace_out.empty()) obs::GlobalTracer().SetEnabled(true);

  Result<TraceSpec> spec = !spec_file.empty() ? ParseTraceSpecFile(spec_file)
                                              : ParseTraceSpec(kDemoSpec);
  if (!spec.ok()) {
    std::cerr << "error: " << spec.status().ToString() << "\n";
    return 1;
  }
  const TraceSpec& s = spec.value();
  flags.spec_label = spec_file.empty() ? "<embedded demo>" : spec_file;
  if (spec_file.empty()) {
    std::cout << "(no spec file given; using the embedded demo — pass a "
                 "trace .pix file, e.g. examples/specs/"
                 "vehicle_drift_trace.pix or the multi-path "
                 "vehicle_joint_trace.pix)\n\n";
  }
  // The joint pipeline is also the only one that enforces a storage
  // budget, so a budgeted single-path trace routes through it rather than
  // silently ignoring the directive.
  return s.paths.size() > 1 || s.has_budget
             ? RunJoint(s, flags, buffer_pages)
             : RunSinglePath(s, flags, buffer_pages);
}
