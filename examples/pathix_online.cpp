// pathix_online: online index selection on a live simulated database.
//
// Feed it a trace spec (see src/io/spec_parser.h for the format): an object
// population plus timed operation batches whose mix shifts per phase.
//
// Single-path traces replay three ways — the online controller (monitor /
// selector / hysteresis, reconfiguring live), the per-phase offline oracle,
// and every candidate static configuration. Multi-path traces (several
// `path` lines, optionally a storage `budget`) run the *joint* pipeline
// instead: a JointReconfigurationController re-solving the workload
// advisor's storage-budgeted joint selection on drift, compared against the
// per-phase joint oracle and static joint / independent baselines.
//
//   $ ./examples/pathix_online ../examples/specs/vehicle_drift_trace.pix
//   $ ./examples/pathix_online ../examples/specs/vehicle_joint_trace.pix
//   $ ./examples/pathix_online     # runs the embedded demo trace
//
// Exit status: 0 when the online run beats the best (budget-feasible)
// static configuration and stays within 2x of the oracle (the acceptance
// envelope), 1 on error, 2 when the envelope is missed.

#include <cstdio>
#include <iostream>

#include "online/experiment.h"
#include "online/joint_experiment.h"
#include "online/measured_validation.h"

namespace {

// Embedded demo distinct from the shipped vehicle_drift_trace.pix (which the
// smoke test replays): a document store whose traffic flips from reviewer
// searches to bulk ingest and back.
constexpr const char* kDemoSpec = R"(
class Submission 80000 8000 1
class Forum      400 400 1

ref Submission forum Forum
attr Forum name string

path Submission forum name
orgs MX MIX NIX NONE

populate Submission 3000 0 1.0
populate Forum      60 60 1.0
trace_seed 11

phase search 6000
mix Submission 0.95 0.03 0.02

phase ingest 6000
mix Submission 0.02 0.6 0.38

phase search2 6000
mix Submission 0.95 0.03 0.02
)";

// Each run's page totals both ways: with the *modeled* transition charges
// (the gating view) and with the pager-*measured* transition I/O (the
// model-free view). Runs without a controller moved nothing, so the two
// totals coincide there.
void PrintRun(const pathix::ExperimentRun& run) {
  std::printf("  %-22s", run.label.c_str());
  for (const pathix::PhaseReport& p : run.phases) {
    std::printf(" %10.0f", p.total_cost());
  }
  std::printf(" %12.0f %12.0f\n", run.total_cost(), run.measured_total_cost());
}

void PrintHeader(const pathix::TraceSpec& s) {
  std::printf("phases:");
  for (const pathix::TracePhase& phase : s.phases) {
    std::printf("  %s(%llu ops)", phase.name.c_str(),
                static_cast<unsigned long long>(phase.ops));
  }
  std::printf("\n\nper-phase page cost (measured pages + modeled transition "
              "charges):\n  %-22s", "run");
  for (const pathix::TracePhase& phase : s.phases) {
    std::printf(" %10s", phase.name.c_str());
  }
  std::printf(" %12s %12s\n", "modeled", "measured");
}

// The `measure on` extra: the whole trace replayed once more under the
// average-mix optimum, the analytic matrix compared against the pager's
// scoped tallies per phase and per path.
int PrintMeasuredVsModeled(const pathix::TraceSpec& s) {
  using namespace pathix;
  Result<MeasuredVsModeledReport> validation = RunMeasuredVsModeled(s);
  if (!validation.ok()) {
    std::cerr << "error: " << validation.status().ToString() << "\n";
    return 1;
  }
  const MeasuredVsModeledReport& v = validation.value();
  std::printf("\nmeasured vs modeled (fixed avg-mix optimum; pages/op):\n"
              "  %-12s %-10s %10s %10s %8s\n",
              "phase", "path", "measured", "modeled", "ratio");
  for (const MeasuredVsModeledCell& cell : v.cells) {
    std::printf("  %-12s %-10s %10.2f %10.2f %8.2f\n", cell.phase.c_str(),
                cell.path.c_str(), cell.measured_pages_per_op,
                cell.modeled_pages_per_op, cell.ratio());
  }
  for (const MeasuredVsModeledPhase& phase : v.phases) {
    std::printf("  %-12s %-10s %10.2f %10.2f %8.2f\n", phase.phase.c_str(),
                "(all)", phase.measured_pages_per_op,
                phase.modeled_pages_per_op, phase.ratio());
  }
  return 0;
}

int RunSinglePath(const pathix::TraceSpec& s) {
  using namespace pathix;
  Result<ExperimentReport> result = RunOnlineExperiment(s, ControllerOptions{});
  if (!result.ok()) {
    std::cerr << "error: " << result.status().ToString() << "\n";
    return 1;
  }
  const ExperimentReport& r = result.value();
  const Path& path = s.paths[0].path;

  std::cout << "=== Online index selection on " << path.ToString(s.schema)
            << " ===\n\n";
  PrintHeader(s);
  PrintRun(r.online);
  PrintRun(r.oracle);
  for (const StaticCandidate& c : r.statics) PrintRun(c.run);

  std::cout << "\noracle per-phase configurations:\n";
  for (std::size_t i = 0; i < r.oracle_configs.size(); ++i) {
    std::cout << "  " << s.phases[i].name << " : "
              << r.oracle_configs[i].ToString(s.schema, path) << "\n";
  }

  std::cout << "\nonline reconfiguration points (" << r.events.size()
            << "):\n";
  for (const ReconfigurationEvent& ev : r.events) {
    std::cout << "  op " << ev.op_index << ": "
              << (ev.initial ? "install " : "switch to ")
              << ev.to.ToString(s.schema, path);
    if (!ev.initial) {
      std::printf(" (predicted savings %.3f pages/op, transition %.0f pages)",
                  ev.predicted_savings_per_op, ev.transition.total());
    }
    std::cout << "\n";
  }

  const int best = r.best_static;
  std::printf(
      "\ntotal cost, online         : %.0f  (%.0f measured + %.0f modeled "
      "transition; %.0f measured transition)\n"
      "total cost, oracle         : %.0f  (per-phase optimum, free switches)\n"
      "total cost, best static    : %.0f  (%s)\n"
      "online / best static       : %.3f  %s\n"
      "online / oracle (regret)   : %.3f  %s\n",
      r.online.total_cost(), r.online.measured_pages(),
      r.online.transition_pages(), r.online.measured_transition_pages(),
      r.oracle.total_cost(), r.best_static_cost(),
      best >= 0 ? r.statics[static_cast<std::size_t>(best)].label.c_str()
                : "n/a",
      r.online_vs_best_static(),
      r.online_vs_best_static() < 1 ? "(adapting beat every fixed choice)"
                                    : "(a static choice was at least as good)",
      r.online_vs_oracle(),
      r.online_vs_oracle() <= 2 ? "(within the 2x envelope)"
                                : "(outside the 2x envelope)");

  if (s.measure && PrintMeasuredVsModeled(s) != 0) return 1;

  const bool ok = r.online_vs_best_static() < 1 && r.online_vs_oracle() <= 2;
  return ok ? 0 : 2;
}

int RunJoint(const pathix::TraceSpec& s) {
  using namespace pathix;
  Result<JointExperimentReport> result =
      RunJointOnlineExperiment(s, ControllerOptions{});
  if (!result.ok()) {
    std::cerr << "error: " << result.status().ToString() << "\n";
    return 1;
  }
  const JointExperimentReport& r = result.value();

  std::cout << "=== Joint online index selection over " << s.paths.size()
            << " paths ===\n\n";
  for (const TracePath& tp : s.paths) {
    std::cout << "  " << tp.id << " : " << tp.path.ToString(s.schema) << "\n";
  }
  if (s.has_budget) {
    std::printf("  storage budget: %.0f bytes\n", s.storage_budget_bytes);
  }
  std::cout << "\n";
  PrintHeader(s);
  PrintRun(r.online);
  PrintRun(r.oracle);
  for (const JointStaticCandidate& c : r.statics) PrintRun(c.run);

  std::cout << "\njoint oracle per-phase assignments:\n";
  for (std::size_t i = 0; i < r.oracle_configs.size(); ++i) {
    std::cout << "  " << s.phases[i].name << ":\n";
    for (std::size_t p = 0; p < s.paths.size(); ++p) {
      std::cout << "    " << s.paths[p].id << " : "
                << r.oracle_configs[i][p].ToString(s.schema, s.paths[p].path)
                << "\n";
    }
  }

  std::cout << "\nonline joint reconfiguration points (" << r.events.size()
            << "):\n";
  for (const JointReconfigurationEvent& ev : r.events) {
    std::cout << "  op " << ev.op_index << ": "
              << (ev.initial ? "install" : "switch");
    if (!ev.initial) {
      std::printf(" (predicted savings %.3f pages/op, transition %.0f pages)",
                  ev.predicted_savings_per_op, ev.transition.total());
    }
    std::cout << "\n";
    for (const JointReconfigurationEvent::PathChange& change : ev.changes) {
      const Path* path = nullptr;
      for (const TracePath& tp : s.paths) {
        if (tp.id == change.path) path = &tp.path;
      }
      std::cout << "    " << change.path << " -> "
                << change.to.ToString(s.schema, *path) << "\n";
    }
  }

  const int best = r.best_static_joint;
  std::printf(
      "\ntotal cost, online joint      : %.0f  (%.0f measured + %.0f modeled "
      "transition; %.0f measured transition)\n"
      "total cost, joint oracle      : %.0f  (per-phase joint optimum, free "
      "switches)\n"
      "total cost, best static joint : %.0f  (%s)\n"
      "online / best static joint    : %.3f  %s\n"
      "online / oracle (regret)      : %.3f  %s\n",
      r.online.total_cost(), r.online.measured_pages(),
      r.online.transition_pages(), r.online.measured_transition_pages(),
      r.oracle.total_cost(), r.best_static_joint_cost(),
      best >= 0 ? r.statics[static_cast<std::size_t>(best)].label.c_str()
                : "n/a",
      r.online_vs_best_static_joint(),
      r.online_vs_best_static_joint() < 1
          ? "(adapting beat every budget-feasible fixed choice)"
          : "(a static choice was at least as good)",
      r.online_vs_oracle(),
      r.online_vs_oracle() <= 2 ? "(within the 2x envelope)"
                                : "(outside the 2x envelope)");

  if (s.measure && PrintMeasuredVsModeled(s) != 0) return 1;

  const bool ok =
      r.online_vs_best_static_joint() < 1 && r.online_vs_oracle() <= 2;
  return ok ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pathix;

  Result<TraceSpec> spec = argc > 1 ? ParseTraceSpecFile(argv[1])
                                    : ParseTraceSpec(kDemoSpec);
  if (!spec.ok()) {
    std::cerr << "error: " << spec.status().ToString() << "\n";
    return 1;
  }
  const TraceSpec& s = spec.value();
  if (argc <= 1) {
    std::cout << "(no spec file given; using the embedded demo — pass a "
                 "trace .pix file, e.g. examples/specs/"
                 "vehicle_drift_trace.pix or the multi-path "
                 "vehicle_joint_trace.pix)\n\n";
  }
  // The joint pipeline is also the only one that enforces a storage
  // budget, so a budgeted single-path trace routes through it rather than
  // silently ignoring the directive.
  return s.paths.size() > 1 || s.has_budget ? RunJoint(s) : RunSinglePath(s);
}
