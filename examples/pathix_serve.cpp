// pathix_serve: the concurrent serving engine on a live simulated database.
//
// Feed it a trace spec (src/io/spec_parser.h) and a worker count; the serve
// driver replays each phase's operation mix from N threads against one
// SimDatabase while an online reconfiguration controller (single-path or
// joint, chosen like pathix_online) adapts the index configuration
// mid-stream — queries keep serving across every epoch swap.
//
//   $ ./examples/pathix_serve --threads=8 ../examples/specs/vehicle_joint_trace.pix
//   $ ./examples/pathix_serve                # embedded demo trace, 1 thread
//
// With --threads=1 and --buffer-pages=0 (the defaults) the op sequence is
// byte-identical to the single-threaded TraceReplayer's (see
// serve/serve_driver.h for the determinism contract).
//
// --buffer-pages=N serves through a real buffer pool of N frames (CLOCK
// eviction, pinned descent paths, dirty write-back), enabled after
// population so serving starts cold. The final `pager:` line reports the
// honest accounting — every read touch is exactly one charged read or one
// buffer hit, so across runs hits + reads equals the unbuffered read count
// (the invariant scripts/obs_smoke.py asserts).
//
// Per phase the rollup reports serving-side throughput and tail latency
// (ops/sec, p50/p99 from the merged per-thread histograms) alongside the
// cost-model side: measured pages, the controller's modeled transition
// charges, and how many configuration epochs were swapped under load.
//
// Exit status: 0 when every phase's merged tallies account for every
// sampled op (executed + deterministic no-ops == ops) — the no-lost-ops
// invariant — and the controller stayed healthy; 1 otherwise.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "serve/serve_driver.h"

namespace {

// Embedded demo: the document-store drift trace, small enough to serve in
// seconds at any thread count.
constexpr const char* kDemoSpec = R"(
class Submission 80000 8000 1
class Forum      400 400 1

ref Submission forum Forum
attr Forum name string

path Submission forum name
orgs MX MIX NIX NONE

populate Submission 3000 0 1.0
populate Forum      60 60 1.0
trace_seed 11

phase search 6000
mix Submission 0.95 0.03 0.02

phase ingest 6000
mix Submission 0.02 0.6 0.38

phase search2 6000
mix Submission 0.95 0.03 0.02
)";

std::uint64_t ExecutedOps(const pathix::PhaseReport& p) {
  std::uint64_t executed = p.insert_ops + p.delete_ops + p.noop_ops;
  for (const auto& [id, n] : p.query_ops) executed += n;
  for (const auto& [id, n] : p.naive_query_ops) executed += n;
  return executed;
}

void PrintPhase(const pathix::ServePhaseReport& r) {
  std::printf("  %-10s %8llu %8.0f %8.0f %8.0f %10llu %10.0f %6llu %4d\n",
              r.phase.name.c_str(),
              static_cast<unsigned long long>(r.phase.ops), r.ops_per_sec,
              r.latency_us.Percentile(0.50), r.latency_us.Percentile(0.99),
              static_cast<unsigned long long>(r.phase.pages),
              r.phase.transition_pages,
              static_cast<unsigned long long>(r.epoch_swaps),
              r.phase.reconfigurations);
}

// The serve loop, generic over the controller flavor (controllers hold
// mutexes, so each flavor is constructed in place by its wrapper below).
template <typename Controller>
int ServeLoop(const pathix::TraceSpec& s, int threads, pathix::SimDatabase& db,
              pathix::ServeDriver& driver, Controller& controller) {
  using namespace pathix;
  db.SetObserver(&controller);

  std::printf("serving %zu path(s) from %d worker thread(s)\n\n",
              s.paths.size(), threads);
  std::printf("  %-10s %8s %8s %8s %8s %10s %10s %6s %4s\n", "phase", "ops",
              "ops/sec", "p50us", "p99us", "pages", "modeled_tr", "epochs",
              "rcfg");

  bool ok = true;
  double total_ops = 0;
  double total_wall = 0;
  std::uint64_t total_pages = 0;
  std::uint64_t total_epochs = 0;
  obs::HistogramData all_latency;
  for (std::size_t i = 0; i < s.phases.size(); ++i) {
    const ServePhaseReport r = driver.RunPhase(i, &controller);
    PrintPhase(r);
    total_ops += static_cast<double>(r.phase.ops);
    total_wall += r.wall_seconds;
    total_pages += r.phase.pages;
    total_epochs += r.epoch_swaps;
    all_latency.MergeFrom(r.latency_us);
    // The no-lost-ops invariant: every sampled op is accounted for, either
    // as an executed op or as the deterministic no-op.
    if (ExecutedOps(r.phase) != r.phase.ops) {
      std::fprintf(stderr,
                   "phase %s LOST OPS: %llu sampled, %llu accounted\n",
                   r.phase.name.c_str(),
                   static_cast<unsigned long long>(r.phase.ops),
                   static_cast<unsigned long long>(ExecutedOps(r.phase)));
      ok = false;
    }
  }
  db.SetObserver(nullptr);
  if (!controller.status().ok()) {
    std::cerr << "controller error: " << controller.status().ToString()
              << "\n";
    return 1;
  }

  std::printf("\n  total: %.0f ops in %.2fs (%.0f ops/sec) | p50=%.0fus "
              "p99=%.0fus | %llu pages | %llu epoch swaps\n",
              total_ops, total_wall,
              total_wall > 0 ? total_ops / total_wall : 0,
              all_latency.Percentile(0.50), all_latency.Percentile(0.99),
              static_cast<unsigned long long>(total_pages),
              static_cast<unsigned long long>(total_epochs));
  // Machine-parseable accounting line (scripts/obs_smoke.py greps it):
  // cumulative pager counters since construction, plus the pool's view.
  const AccessStats pstats = db.pager().stats();
  const BufferPoolStats bstats = db.pager().buffer_pool().GetStats();
  std::printf("  pager: reads=%llu writes=%llu buffer_hits=%llu "
              "evictions=%llu writebacks=%llu buffer_pages=%zu\n",
              static_cast<unsigned long long>(pstats.reads),
              static_cast<unsigned long long>(pstats.writes),
              static_cast<unsigned long long>(pstats.buffer_hits),
              static_cast<unsigned long long>(bstats.evictions),
              static_cast<unsigned long long>(bstats.writebacks),
              db.pager().buffer_pool().capacity());
  return ok ? 0 : 1;
}

pathix::ControllerOptions OptionsFor(const pathix::TraceSpec& s) {
  pathix::ControllerOptions copts;
  copts.orgs = s.options.orgs;
  copts.physical_params = s.catalog.params();
  return copts;
}

int ServeSingle(const pathix::TraceSpec& s, int threads,
                std::size_t buffer_pages) {
  using namespace pathix;
  SimDatabase db(s.schema, s.catalog.params());
  ServeDriver driver(&db, s, ServeOptions{threads});
  driver.Populate();
  if (buffer_pages > 0) db.pager().EnableBuffer(buffer_pages);
  ReconfigurationController controller(&db, s.paths.front().path,
                                       OptionsFor(s), s.paths.front().id);
  return ServeLoop(s, threads, db, driver, controller);
}

int ServeJoint(const pathix::TraceSpec& s, int threads,
               std::size_t buffer_pages) {
  using namespace pathix;
  SimDatabase db(s.schema, s.catalog.params());
  ServeDriver driver(&db, s, ServeOptions{threads});
  driver.Populate();
  if (buffer_pages > 0) db.pager().EnableBuffer(buffer_pages);
  JointReconfigurationController controller(&db, OptionsFor(s));
  return ServeLoop(s, threads, db, driver, controller);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pathix;

  int threads = 1;
  std::size_t buffer_pages = 0;
  std::string spec_file;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto flag_value = [&](const char* prefix) -> const char* {
      const std::size_t n = std::string(prefix).size();
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* value = flag_value("--threads=")) {
      threads = std::atoi(value);
      if (threads < 1) {
        std::cerr << "error: --threads wants a positive integer\n";
        return 1;
      }
    } else if (const char* pages = flag_value("--buffer-pages=")) {
      const long parsed = std::atol(pages);
      if (parsed < 0) {
        std::cerr << "error: --buffer-pages wants a non-negative integer\n";
        return 1;
      }
      buffer_pages = static_cast<std::size_t>(parsed);
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "error: unknown flag " << arg
                << " (known: --threads=N, --buffer-pages=N)\n";
      return 1;
    } else if (spec_file.empty()) {
      spec_file = arg;
    } else {
      std::cerr << "error: more than one spec file given (" << spec_file
                << ", " << arg << ")\n";
      return 1;
    }
  }

  Result<TraceSpec> spec = !spec_file.empty() ? ParseTraceSpecFile(spec_file)
                                              : ParseTraceSpec(kDemoSpec);
  if (!spec.ok()) {
    std::cerr << "error: " << spec.status().ToString() << "\n";
    return 1;
  }
  const TraceSpec& s = spec.value();
  if (spec_file.empty()) {
    std::cout << "(no spec file given; using the embedded demo — pass a "
                 "trace .pix file, e.g. examples/specs/"
                 "vehicle_drift_trace.pix)\n\n";
  }
  // Same routing as pathix_online: multi-path or budgeted traces serve
  // under the joint controller.
  return s.paths.size() > 1 || s.has_budget
             ? ServeJoint(s, threads, buffer_pages)
             : ServeSingle(s, threads, buffer_pages);
}
