// pathix_workload_advise: joint, storage-budgeted index selection for a
// workload of overlapping paths — feed it a workload spec (see
// src/io/spec_parser.h for the format), get one index configuration per
// path chosen over the shared candidate pool, compared against the greedy
// merge and the independent per-path optima.
//
//   $ ./examples/pathix_workload_advise ../examples/specs/vehicle_workload.pix
//   $ ./examples/pathix_workload_advise    # runs the embedded demo spec

#include <cstdio>
#include <iostream>

#include "advisor/workload_advisor.h"
#include "io/spec_parser.h"

namespace {

// Embedded demo distinct from the shipped vehicle_workload.pix (which the
// smoke test exercises): a document store where reviewers search
// submissions by forum name and moderators search forums directly.
constexpr const char* kDemoSpec = R"(
class Submission 80000 20000 1
class Review     40000 15000 2
class Forum      500 500 3

ref Submission review Review multi
ref Review     forum  Forum
attr Forum name string

load Forum 0.1 0.05 0.02            # default: both paths touch Forum

path Submission review forum name   # reviewer search
load Submission 0.5 0.1 0.05
load Review     0.1 0.2 0.1

path Review forum name              # moderator search
load Review 0.4 0.2 0.1
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace pathix;

  Result<WorkloadSpec> spec = argc > 1 ? ParseWorkloadSpecFile(argv[1])
                                       : ParseWorkloadSpec(kDemoSpec);
  if (!spec.ok()) {
    std::cerr << "error: " << spec.status().ToString() << "\n";
    return 1;
  }
  WorkloadSpec& s = spec.value();
  if (argc <= 1) {
    std::cout << "(no spec file given; using the embedded demo — pass a "
                 ".pix file, e.g. examples/specs/vehicle_workload.pix)\n\n";
  }

  Result<WorkloadRecommendation> rec = AdviseWorkload(
      s.schema, s.catalog, s.paths, s.options, s.joint_options);
  if (!rec.ok()) {
    std::cerr << "error: " << rec.status().ToString() << "\n";
    return 1;
  }
  const WorkloadRecommendation& r = rec.value();

  std::cout << "=== Joint index selection over " << s.paths.size()
            << " paths ===\n\n";
  for (std::size_t i = 0; i < s.paths.size(); ++i) {
    const JointPathSelection& sel = r.joint.per_path[i];
    std::cout << "path " << i + 1 << ": "
              << s.paths[i].path.ToString(s.schema) << "\n"
              << "  joint pick : "
              << sel.config.ToString(s.schema, s.paths[i].path) << "\n"
              << "  standalone : "
              << r.greedy.per_path[i].result.config.ToString(
                     s.schema, s.paths[i].path)
              << "  (cost " << r.greedy.per_path[i].result.cost << ")\n";
  }

  std::cout << "\nphysical indexes chosen (" << r.joint.chosen.size()
            << " distinct):\n";
  for (const ChosenIndex& c : r.joint.chosen) {
    const CandidateEntry& e =
        r.pool.entries()[static_cast<std::size_t>(c.entry_id)];
    std::cout << "  " << e.label << "  " << e.storage_bytes / (1024.0 * 1024.0)
              << " MiB, paths";
    for (int p : c.path_indexes) std::cout << " " << p + 1;
    if (c.path_indexes.size() > 1) std::cout << "  [shared]";
    std::cout << "\n";
  }

  const char* baseline_note = s.has_budget ? "  (ignores the budget)" : "";
  std::printf(
      "\ntotal cost, independent optima : %.6g%s\n"
      "total cost, greedy merge       : %.6g%s\n"
      "total cost, joint selection    : %.6g\n",
      r.total_cost_independent, baseline_note, r.total_cost_greedy,
      baseline_note, r.total_cost_joint);
  std::printf("total index storage            : %.3f MiB",
              r.joint.total_storage_bytes / (1024.0 * 1024.0));
  if (s.has_budget) {
    std::printf(" (budget %.3f MiB)",
                s.joint_options.storage_budget_bytes / (1024.0 * 1024.0));
  }
  std::printf(
      "\nsolver                         : %s, %ld nodes explored, %ld "
      "pruned\n",
      r.joint.used_branch_and_bound ? "branch-and-bound" : "exhaustive",
      r.joint.nodes_explored, r.joint.nodes_pruned);
  return 0;
}
