// Quickstart: define a schema, describe the database and workload, and ask
// PathIx for the optimal index configuration of a path.
//
//   $ ./examples/quickstart
//
// The scenario: a tiny order-management schema where support staff look up
// customers by the name of the product they ordered —
// Customer.orders.item.name.

#include <iostream>

#include "core/advisor.h"

int main() {
  using namespace pathix;

  // 1. Schema: Customer -> Order -> Product (aggregation), with a
  //    RushOrder subclass of Order.
  Schema schema;
  const ClassId customer = schema.AddClass("Customer").value();
  const ClassId order = schema.AddClass("Order").value();
  const ClassId rush = schema.AddClass("RushOrder", order).value();
  const ClassId product = schema.AddClass("Product").value();
  CheckOk(schema.AddAtomicAttribute(customer, "name", AtomicType::kString));
  CheckOk(schema.AddReferenceAttribute(customer, "orders", order,
                                       /*multi_valued=*/true));
  CheckOk(schema.AddReferenceAttribute(order, "item", product));
  CheckOk(schema.AddAtomicAttribute(order, "date", AtomicType::kInt));
  CheckOk(schema.AddAtomicAttribute(rush, "deadline", AtomicType::kInt));
  CheckOk(schema.AddAtomicAttribute(product, "name", AtomicType::kString));
  CheckOk(schema.Validate());

  // 2. The query path: "customers who ordered a product named X".
  const Path path =
      Path::Create(schema, customer, {"orders", "item", "name"}).value();
  std::cout << "path: " << path.ToString(schema) << "\n\n";

  // 3. Statistics (Figure 7 style: objects, distinct values, fan-out).
  Catalog catalog;
  catalog.SetClassStats(customer, ClassStats{50000, 20000, 2.5, 96});
  catalog.SetClassStats(order, ClassStats{100000, 8000, 1, 64});
  catalog.SetClassStats(rush, ClassStats{25000, 4000, 1, 72});
  catalog.SetClassStats(product, ClassStats{10000, 9000, 1, 128});

  // 4. Workload: (queries, inserts, deletes) per class. Orders churn;
  //    customers mostly query.
  LoadDistribution load;
  load.Set(customer, 0.50, 0.02, 0.01);
  load.Set(order, 0.10, 0.20, 0.15);
  load.Set(rush, 0.05, 0.10, 0.08);
  load.Set(product, 0.10, 0.02, 0.01);

  // 5. Ask the advisor.
  AdvisorOptions options;
  const Recommendation rec =
      AdviseIndexConfiguration(schema, path, catalog, load, options).value();

  std::cout << "cost matrix (page accesses per workload unit; '*' = row "
               "minimum):\n";
  rec.matrix.Print(std::cout);

  std::cout << "\nrecommended configuration : "
            << rec.result.config.ToString(schema, path)
            << "\nexpected processing cost  : " << rec.result.cost
            << "\nbest single-index cost    : " << rec.whole_path_cost << " ("
            << ToString(rec.whole_path_org) << ")"
            << "\nimprovement               : " << rec.improvement_factor
            << "x\nconfigurations evaluated  : " << rec.result.evaluated
            << " (branch-and-bound; exhaustive would cost "
            << (1 << (path.length() - 1)) << ")\n";
  return 0;
}
