// End-to-end walkthrough of the paper's own scenario (Figures 1, 2, 7):
// the vehicle registry. Builds the schema, loads a synthetic database,
// lets the advisor pick the optimal index configuration for
// Person.owns.man.divs.name, installs it *physically*, and demonstrates
// the page-access win over both naive navigation and single whole-path
// indexes — including the index maintenance the configuration was chosen
// to keep cheap.
//
//   $ ./examples/vehicle_registry

#include <iostream>

#include "core/advisor.h"
#include "datagen/generator.h"
#include "datagen/paper_schema.h"
#include "exec/analyze.h"
#include "exec/database.h"

int main() {
  using namespace pathix;

  // --- 1. Schema + synthetic database (1/20-scale Figure 7 shape).
  const PaperSetup setup = MakeExample51Setup();
  SimDatabase db(setup.schema, PhysicalParams{});
  PathDataGenerator gen(7);
  auto created = gen.Populate(&db, setup.path,
                              {
                                  {setup.division, 400, 400, 1.0},
                                  {setup.company, 200, 0, 2.0},
                                  {setup.vehicle, 500, 0, 1.0},
                                  {setup.bus, 250, 0, 1.0},
                                  {setup.truck, 250, 0, 1.0},
                                  {setup.person, 10000, 0, 1.0},
                              });
  std::cout << "database: " << db.store().live_objects()
            << " objects across 6 classes\n";

  // --- 2. Statistics straight from the data (ANALYZE) + Figure 7's load.
  const Catalog catalog = CollectStatistics(db.store(), setup.schema,
                                            setup.path, PhysicalParams{});
  const Recommendation rec =
      AdviseIndexConfiguration(setup.schema, setup.path, catalog, setup.load)
          .value();
  std::cout << "advisor recommends: "
            << rec.result.config.ToString(setup.schema, setup.path)
            << "\n  expected cost " << rec.result.cost << " vs "
            << rec.whole_path_cost << " for a single whole-path "
            << ToString(rec.whole_path_org) << " (" << rec.improvement_factor
            << "x)\n\n";

  // --- 3. Install the recommendation physically and measure.
  CheckOk(db.ConfigureIndexes(setup.path, rec.result.config));

  // Pick a division name that actually selects owners.
  Key fiat_like = Key::FromString(EndingValue(0));
  for (int i = 0; i < 400; ++i) {
    const Key candidate = Key::FromString(EndingValue(i));
    if (!db.Query(candidate, setup.person).value().empty()) {
      fiat_like = candidate;
      break;
    }
  }
  db.pager().ResetStats();
  const std::vector<Oid> owners = db.Query(fiat_like, setup.person).value();
  const AccessStats indexed = db.pager().stats();

  db.pager().ResetStats();
  const std::vector<Oid> owners_naive =
      db.QueryNaive(fiat_like, setup.person).value();
  const AccessStats naive = db.pager().stats();

  std::cout << "query: 'persons owning a vehicle manufactured by a company "
               "with a division named "
            << fiat_like.ToString() << "'\n"
            << "  result          : " << owners.size() << " persons (naive "
            << "agrees: " << (owners.size() == owners_naive.size() ? "yes" : "NO")
            << ")\n"
            << "  indexed         : " << indexed.total() << " page accesses\n"
            << "  naive navigation: " << naive.total() << " page accesses ("
            << (indexed.total() > 0 ? naive.total() / indexed.total() : 0)
            << "x)\n\n";

  // --- 4. Maintenance: the churny classes stay cheap under the split.
  db.pager().ResetStats();
  const Oid new_div = db.Insert(
      setup.division, {{"name", {Value::Str(EndingValue(5))}}});
  const AccessStats ins = db.pager().stats();
  db.pager().ResetStats();
  CheckOk(db.Delete(new_div));
  const AccessStats del = db.pager().stats();
  std::cout << "maintenance on the volatile tail (Division):\n"
            << "  insert: " << ins.total() << " page accesses\n"
            << "  delete: " << del.total() << " page accesses\n\n";

  // --- 5. Show the running system stays correct after updates.
  const Oid some_company = created[setup.company][3];
  db.pager().ResetStats();
  CheckOk(db.Delete(some_company));
  std::cout << "deleting a Company (cross-subpath boundary maintenance): "
            << db.pager().stats().total() << " page accesses\n";
  CheckOk(db.ValidateIndexesDeep());
  std::cout << "deep index validation after updates: OK\n";
  return 0;
}
