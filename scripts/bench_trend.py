#!/usr/bin/env python3
"""Benchmark trend report: BENCH_*.json one-liners vs a cached baseline.

Every bench_* binary writes one flat JSON object per run (see
bench/bench_json.h). CI restores the previous run's files from the actions
cache, calls this script to render a markdown comparison into the job
summary, and refreshes the baseline. The report is advisory — benchmarks
on shared CI runners are noisy — so this script always exits 0; it flags
metrics whose move exceeds the noise threshold rather than failing the
job.

Usage:
  bench_trend.py <baseline_dir> <current_dir>
      [--summary FILE]        # append markdown here (default: stdout,
                              # or $GITHUB_STEP_SUMMARY when set)
      [--update-baseline]     # copy current files over the baseline
      [--threshold PCT]       # highlight threshold, default 10
"""

import argparse
import json
import os
import shutil
import sys
from pathlib import Path


def load_dir(directory):
    """{bench name: {key: value}} for every BENCH_*.json in directory."""
    out = {}
    directory = Path(directory)
    if not directory.is_dir():
        return out
    for path in sorted(directory.glob("BENCH_*.json")):
        try:
            doc = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as err:
            print(f"bench_trend: skipping {path}: {err}", file=sys.stderr)
            continue
        out[doc.get("bench", path.stem)] = doc
    return out


def fmt(value):
    if isinstance(value, float) and value != int(value):
        return f"{value:.4g}"
    return str(value)


def render(baseline, current, threshold):
    lines = ["## Benchmark trend", ""]
    if not current:
        lines.append("_No BENCH_*.json files in the current run._")
        return "\n".join(lines) + "\n", 0
    if not baseline:
        lines.append("_No cached baseline yet — this run becomes the "
                     "baseline for the next one._")
    lines += [
        "| bench | metric | baseline | current | Δ |",
        "|---|---|---:|---:|---:|",
    ]
    flagged = 0
    for bench in sorted(current):
        doc = current[bench]
        base_doc = baseline.get(bench, {})
        for key, value in doc.items():
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                continue
            base = base_doc.get(key)
            if isinstance(base, (int, float)) and not isinstance(base, bool) \
                    and base != 0:
                pct = (value - base) / abs(base) * 100
                mark = " ⚠️" if abs(pct) > threshold else ""
                if mark:
                    flagged += 1
                delta = f"{pct:+.1f}%{mark}"
                base_text = fmt(base)
            else:
                delta = "new"
                base_text = "—"
            lines.append(
                f"| {bench} | {key} | {base_text} | {fmt(value)} | {delta} |")
    lines += [
        "",
        f"_Δ beyond ±{threshold:g}% is flagged; advisory only "
        "(shared-runner noise)._",
    ]
    return "\n".join(lines) + "\n", flagged


def main():
    parser = argparse.ArgumentParser(allow_abbrev=False)
    parser.add_argument("baseline_dir")
    parser.add_argument("current_dir")
    parser.add_argument("--summary")
    parser.add_argument("--update-baseline", action="store_true")
    parser.add_argument("--threshold", type=float, default=10.0)
    args = parser.parse_args()

    baseline = load_dir(args.baseline_dir)
    current = load_dir(args.current_dir)
    report, flagged = render(baseline, current, args.threshold)

    summary = args.summary or os.environ.get("GITHUB_STEP_SUMMARY")
    if summary:
        with open(summary, "a", encoding="utf-8") as f:
            f.write(report)
    else:
        sys.stdout.write(report)
    if flagged:
        print(f"bench_trend: {flagged} metric(s) moved beyond the threshold "
              "(advisory)", file=sys.stderr)

    if args.update_baseline and current:
        os.makedirs(args.baseline_dir, exist_ok=True)
        for path in Path(args.current_dir).glob("BENCH_*.json"):
            shutil.copy2(path, Path(args.baseline_dir) / path.name)
    return 0


if __name__ == "__main__":
    sys.exit(main())
