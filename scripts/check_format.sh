#!/bin/sh
# Verifies that first-party sources are clang-format clean (.clang-format
# at the repo root). Prints a diff per offending file; --fix rewrites in
# place instead.
#
#   usage: check_format.sh [--fix] [CLANG_FORMAT]
set -u

cd "$(dirname "$0")/.."

fix=0
if [ "${1:-}" = "--fix" ]; then
  fix=1
  shift
fi
CLANG_FORMAT="${1:-clang-format}"

if ! command -v "$CLANG_FORMAT" > /dev/null 2>&1; then
  echo "error: '$CLANG_FORMAT' not found." >&2
  echo "Install clang-format or pass its path as the last argument." >&2
  exit 2
fi

files="$(find src tests bench examples \
  \( -name '*.h' -o -name '*.cc' \) | sort)"

fail=0
for f in $files; do
  if [ "$fix" -eq 1 ]; then
    "$CLANG_FORMAT" -i "$f"
  elif ! "$CLANG_FORMAT" --dry-run -Werror "$f" > /dev/null 2>&1; then
    echo "NEEDS FORMAT: $f"
    "$CLANG_FORMAT" "$f" | diff -u "$f" - | head -40
    fail=1
  fi
done

if [ "$fail" -ne 0 ]; then
  echo "format check failed — run scripts/check_format.sh --fix"
  exit 1
fi
[ "$fix" -eq 1 ] && echo "formatted" || echo "format: clean"
