#!/bin/sh
# Two hygiene passes over the given source root, registered as the
# `header_hygiene` ctest:
#
#   1. Self-containedness: every header compiles as its own translation
#      unit (no reliance on transitive includes).
#   2. Banned primitives: raw standard-library locking (<mutex>,
#      <shared_mutex>, std::mutex, std::lock_guard, ...) is rejected
#      everywhere in src/ except common/mutex.h — the annotated Mutex /
#      MutexLock there is the only legal lock type, because it is the only
#      one Clang's -Wthread-safety can reason about. <iostream> is rejected
#      outside examples/bench too (it drags iostream globals into every TU;
#      library code reports through Status, not streams).
#
#   usage: check_header_hygiene.sh [SRC_DIR] [CXX]
set -u

SRC_DIR="${1:-src}"
CXX="${2:-c++}"

tmp_dir="$(mktemp -d)"
trap 'rm -rf "$tmp_dir"' EXIT

fail=0

# ------------------------------------------------------- banned primitives
banned='<mutex>|<shared_mutex>|std::mutex|std::shared_mutex|std::lock_guard|std::unique_lock|std::shared_lock|std::scoped_lock'
for f in $(find "$SRC_DIR" \( -name '*.h' -o -name '*.cc' \) | sort); do
  rel="${f#"$SRC_DIR"/}"
  # Comment lines may *mention* the banned names (e.g. to document the ban).
  hits="$(grep -nE "$banned" "$f" | grep -vE '^[0-9]+:[[:space:]]*(//|\*)' \
    || true)"
  if [ "$rel" != "common/mutex.h" ] && [ -n "$hits" ]; then
    printf '%s\n' "$hits" | sed "s|^|$f:|"
    echo "BANNED LOCK PRIMITIVE: $rel — use common/mutex.h (annotated)"
    fail=1
  fi
  if grep -n '#include <iostream>' "$f" /dev/null; then
    echo "BANNED INCLUDE: $rel — <iostream> is not allowed in library code"
    fail=1
  fi
done
for header in $(find "$SRC_DIR" -name '*.h' | sort); do
  rel="${header#"$SRC_DIR"/}"
  tu="$tmp_dir/check.cc"
  printf '#include "%s"\nint main() { return 0; }\n' "$rel" > "$tu"
  if ! "$CXX" -std=c++20 -I"$SRC_DIR" -Wall -Wextra -Werror -fsyntax-only \
       "$tu" 2> "$tmp_dir/err.txt"; then
    echo "NOT SELF-CONTAINED: $rel"
    cat "$tmp_dir/err.txt"
    fail=1
  fi
done

if [ "$fail" -ne 0 ]; then
  echo "header hygiene check failed"
  exit 1
fi
echo "all headers under $SRC_DIR are self-contained"
