#!/bin/sh
# Compiles every header under the given source root as its own translation
# unit, failing if any header is not self-contained (relies on a transitive
# include). Registered as the `header_hygiene` ctest.
#
#   usage: check_header_hygiene.sh [SRC_DIR] [CXX]
set -u

SRC_DIR="${1:-src}"
CXX="${2:-c++}"

tmp_dir="$(mktemp -d)"
trap 'rm -rf "$tmp_dir"' EXIT

fail=0
for header in $(find "$SRC_DIR" -name '*.h' | sort); do
  rel="${header#"$SRC_DIR"/}"
  tu="$tmp_dir/check.cc"
  printf '#include "%s"\nint main() { return 0; }\n' "$rel" > "$tu"
  if ! "$CXX" -std=c++20 -I"$SRC_DIR" -Wall -Wextra -Werror -fsyntax-only \
       "$tu" 2> "$tmp_dir/err.txt"; then
    echo "NOT SELF-CONTAINED: $rel"
    cat "$tmp_dir/err.txt"
    fail=1
  fi
done

if [ "$fail" -ne 0 ]; then
  echo "header hygiene check failed"
  exit 1
fi
echo "all headers under $SRC_DIR are self-contained"
