#!/bin/sh
# Every clang-tidy suppression must name the check(s) it silences AND carry
# a trailing justification after a colon:
#
#   // NOLINTNEXTLINE(google-explicit-constructor): implicit by design.
#   // NOLINTBEGIN(bugprone-macro-parentheses): attribute args are lock
#   //     expressions, not values.
#
# Bare `// NOLINT`, check-less `NOLINT(...)`-without-reason, and blanket
# suppressions are rejected. NOLINTEND is exempt (it closes a justified
# BEGIN). Registered as the `nolint_policy` ctest.
#
#   usage: check_nolint.sh [SRC_DIRS...]
set -u

cd "$(dirname "$0")/.."
dirs="${*:-src tests bench examples}"

fail=0
# shellcheck disable=SC2086
for f in $(grep -rl 'NOLINT' $dirs --include='*.h' --include='*.cc' \
  2> /dev/null | sort); do
  while IFS= read -r hit; do
    line="${hit%%:*}"
    text="${hit#*:}"
    case "$text" in
      *NOLINTEND*) continue ;;
    esac
    # Accept: NOLINT / NOLINTNEXTLINE / NOLINTBEGIN followed by
    # (non-empty check list) then ": " and a non-empty justification.
    if printf '%s' "$text" \
      | grep -qE 'NOLINT(NEXTLINE|BEGIN)?\([^)]+\): +[^ ]'; then
      continue
    fi
    echo "$f:$line: unjustified NOLINT — use NOLINT(<check>): <reason>"
    echo "    $text"
    fail=1
  done <<EOF
$(grep -n 'NOLINT' "$f")
EOF
done

if [ "$fail" -ne 0 ]; then
  echo "NOLINT policy check failed"
  exit 1
fi
echo "all NOLINT suppressions name their check and carry a justification"
