#!/usr/bin/env python3
"""End-to-end validation of pathix_online's observability exports.

Runs the binary on a trace spec with every export flag, then checks:

  * the binary's own exact metrics cross-check passed (counter deltas ==
    the replayer's operation tallies; the binary exits 1 otherwise and
    prints the reconciliation line we also assert on);
  * the Prometheus text parses line by line (TYPE declarations, sanitized
    names, numeric values) and carries the expected metric families;
  * the metrics JSON parses and its op counters are self-consistent with
    the Prometheus rendering;
  * the trace JSON parses, is non-empty, and every thread's B/E events
    form a properly nested span stack (what chrome://tracing requires);
  * the expected span names from the online reconfiguration stack appear;
  * the decision ledger JSONL parses line by line, starts with a schema-
    versioned meta record, every decision record carries the full audit
    schema (workload, search stats, candidates, both hysteresis sides),
    and its install/switch verdict count equals both the metrics-JSON
    event list and pathix_controller_reconfigurations_total;
  * (when a pathix_serve binary is supplied) the buffer pool's accounting
    is honest: serving the same trace single-threaded with and without
    --buffer-pages, the buffered run's `pager:` line must reconcile
    hits + reads == the unbuffered run's reads — the pool may absorb
    read touches as hits, but it may never lose or invent one.

Usage: obs_smoke.py <pathix_online-binary> <trace.pix> [<pathix_serve-binary>]
"""

import json
import re
import subprocess
import sys
import tempfile
from pathlib import Path

PROM_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? (-?[0-9.eE+-]+|[+-]Inf|NaN)$"
)
PROM_TYPE = re.compile(r"^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]*"
                       r" (counter|gauge|histogram)$")
LABEL = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')

EXPECTED_FAMILIES = [
    "pathix_db_ops_total",
    "pathix_db_op_latency_us_bucket",
    "pathix_pager_io_total",
    "pathix_pager_pages_total",
    "pathix_parts_built_total",
    "pathix_monitor_ops_observed_total",
    "pathix_controller_checks_total",
    "pathix_controller_transition_pages_total",
    "pathix_advisor_nodes_explored_total",
    "pathix_advisor_resolve_duration_us_bucket",
]

LEDGER_SCHEMA_VERSION = 1
DECISION_KEYS = ("check", "op_index", "controller", "phase", "verdict",
                 "hold_reason", "workload", "search", "candidates",
                 "hysteresis")
HYSTERESIS_KEYS = ("evaluated", "current_cost_per_op", "best_cost_per_op",
                   "savings_per_op", "horizon_ops", "theta", "lhs_pages",
                   "modeled", "rhs_modeled_pages", "measured",
                   "rhs_measured_pages", "passed")


def fail(message):
    print(f"obs_smoke: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def check_prometheus(text):
    families = set()
    samples = {}
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("#"):
            if not PROM_TYPE.match(line):
                fail(f"bad comment/TYPE line: {line!r}")
            continue
        if not PROM_LINE.match(line):
            fail(f"unparseable exposition line: {line!r}")
        name_and_labels, value = line.rsplit(" ", 1)
        name = name_and_labels.split("{", 1)[0]
        families.add(name)
        labels = tuple(sorted(LABEL.findall(name_and_labels)))
        key = (name, labels)
        if key in samples:
            fail(f"duplicate series: {line!r}")
        samples[key] = float(value)
    for family in EXPECTED_FAMILIES:
        if family not in families:
            fail(f"expected metric family missing: {family}")
    # Histogram invariant on one family: +Inf bucket == _count.
    for (name, labels), value in samples.items():
        if not name.endswith("_bucket"):
            continue
        label_map = dict(labels)
        if label_map.get("le") != "+Inf":
            continue
        bare = dict(labels)
        del bare["le"]
        count_key = (name[: -len("_bucket")] + "_count",
                     tuple(sorted(bare.items())))
        if count_key not in samples:
            fail(f"histogram {name}{labels} has no _count series")
        if samples[count_key] != value:
            fail(f"+Inf bucket {value} != _count {samples[count_key]} "
                 f"for {name}{labels}")
    return samples


def check_metrics_json(path, prom_samples):
    doc = json.loads(Path(path).read_text())
    for key in ("mode", "metrics", "events"):
        if key not in doc:
            fail(f"metrics JSON missing key {key!r}")
    by_name = {}
    for sample in doc["metrics"]:
        labels = tuple(sorted(sample.get("labels", {}).items()))
        by_name[(sample["name"], labels)] = sample
    # Every non-histogram Prometheus series appears with the same value.
    for (name, labels), value in prom_samples.items():
        if any(name.endswith(s) for s in ("_bucket", "_sum", "_count")):
            continue
        key = (name, labels)
        if key not in by_name:
            fail(f"series {key} in Prometheus text but not in JSON")
        if by_name[key].get("value") != value:
            fail(f"value mismatch for {key}: JSON {by_name[key].get('value')}"
                 f" vs Prometheus {value}")
    ops = [s for (name, _), s in by_name.items()
           if name == "pathix_db_ops_total"]
    if not ops or sum(s["value"] for s in ops) <= 0:
        fail("no database operations recorded in pathix_db_ops_total")
    if not isinstance(doc["events"], list):
        fail("events is not a list")
    for event in doc["events"]:
        if "op_index" not in event or "transition" not in event:
            fail(f"malformed reconfiguration event: {event}")
    return doc


def check_trace(path):
    doc = json.loads(Path(path).read_text())
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail("trace has no traceEvents")
    stacks = {}
    names = set()
    for event in events:
        for key in ("name", "cat", "ph", "ts", "pid", "tid"):
            if key not in event:
                fail(f"trace event missing {key!r}: {event}")
        names.add(event["name"])
        stack = stacks.setdefault(event["tid"], [])
        if event["ph"] == "B":
            stack.append(event)
        elif event["ph"] == "E":
            if not stack:
                fail(f"unmatched E event on tid {event['tid']}: {event}")
            top = stack.pop()
            if top["name"] != event["name"]:
                fail(f"E {event['name']!r} closes B {top['name']!r}")
            if event["ts"] < top["ts"]:
                fail(f"span {event['name']!r} ends before it begins")
        else:
            fail(f"unexpected phase {event['ph']!r}")
    for tid, stack in stacks.items():
        if stack:
            fail(f"unclosed spans on tid {tid}: "
                 f"{[e['name'] for e in stack]}")
    for expected in ("part_build",):
        if expected not in names:
            fail(f"expected span {expected!r} missing (got {sorted(names)})")
    if not names & {"drift_check", "joint_drift_check"}:
        fail(f"no controller drift-check spans (got {sorted(names)})")
    return names


def check_ledger(path, metrics_doc, prom_samples):
    lines = Path(path).read_text().splitlines()
    if not lines:
        fail("decision ledger is empty")
    records = []
    for i, line in enumerate(lines, 1):
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as err:
            fail(f"ledger line {i} is not valid JSON: {err}")
    meta = records[0]
    if meta.get("type") != "meta":
        fail("ledger does not start with a meta record")
    if meta.get("schema_version") != LEDGER_SCHEMA_VERSION:
        fail(f"ledger schema_version {meta.get('schema_version')} != "
             f"{LEDGER_SCHEMA_VERSION}")
    for key in ("mode", "spec", "options", "paths", "phases"):
        if key not in meta:
            fail(f"ledger meta missing key {key!r}")
    commit_verdicts = 0
    decisions = 0
    phase_summaries = 0
    for i, rec in enumerate(records[1:], 2):
        kind = rec.get("type")
        if kind == "phase_summary":
            phase_summaries += 1
            for key in ("phase", "ops", "pages", "reconfigurations",
                        "decisions", "latency_us", "op_pages"):
                if key not in rec:
                    fail(f"ledger line {i}: phase_summary missing {key!r}")
            continue
        if kind != "decision":
            fail(f"ledger line {i}: unexpected record type {kind!r}")
        decisions += 1
        for key in DECISION_KEYS:
            if key not in rec:
                fail(f"ledger line {i}: decision missing {key!r}")
        hyst = rec["hysteresis"]
        for key in HYSTERESIS_KEYS:
            if key not in hyst:
                fail(f"ledger line {i}: hysteresis missing {key!r}")
        verdict = rec["verdict"]
        if verdict in ("install", "switch"):
            commit_verdicts += 1
            if hyst["measured"] is None:
                fail(f"ledger line {i}: committed decision has no measured "
                     "hysteresis side")
            if not rec["candidates"]:
                fail(f"ledger line {i}: committed decision has no candidates")
        elif verdict == "hold":
            if not rec["hold_reason"]:
                fail(f"ledger line {i}: hold without a hold_reason")
        else:
            fail(f"ledger line {i}: unknown verdict {verdict!r}")
    if decisions == 0:
        fail("ledger has no decision records")
    if phase_summaries != len(meta["phases"]):
        fail(f"{phase_summaries} phase summaries for "
             f"{len(meta['phases'])} phases")
    # The same reconfiguration count must be visible in all three exports.
    events = len(metrics_doc["events"])
    if commit_verdicts != events:
        fail(f"ledger commit verdicts {commit_verdicts} != metrics-JSON "
             f"events {events}")
    recon = sum(v for (name, _), v in prom_samples.items()
                if name == "pathix_controller_reconfigurations_total")
    if commit_verdicts != recon:
        fail(f"ledger commit verdicts {commit_verdicts} != "
             f"pathix_controller_reconfigurations_total {recon}")
    return decisions


PAGER_LINE = re.compile(
    r"pager: reads=(\d+) writes=(\d+) buffer_hits=(\d+) "
    r"evictions=(\d+) writebacks=(\d+) buffer_pages=(\d+)"
)

SERVE_BUFFER_PAGES = 256


def serve_pager_counters(serve_binary, spec, buffer_pages):
    args = [serve_binary, "--threads=1"]
    if buffer_pages:
        args.append(f"--buffer-pages={buffer_pages}")
    args.append(spec)
    proc = subprocess.run(args, capture_output=True, text=True)
    if proc.returncode != 0:
        sys.stderr.write(proc.stderr)
        fail(f"pathix_serve {' '.join(args[1:])} exited {proc.returncode}")
    match = PAGER_LINE.search(proc.stdout)
    if not match:
        fail(f"no pager accounting line in pathix_serve output "
             f"(buffer_pages={buffer_pages})")
    reads, writes, hits, evictions, writebacks, pages = map(
        int, match.groups())
    if pages != buffer_pages:
        fail(f"pathix_serve reports buffer_pages={pages}, "
             f"expected {buffer_pages}")
    return {"reads": reads, "writes": writes, "hits": hits,
            "evictions": evictions, "writebacks": writebacks}


def check_buffered_serving(serve_binary, spec):
    """Buffered serving must account every read touch exactly once.

    The op stream is deterministic and independent of the buffer capacity
    (selection prices workloads with cold-model logical touches), so the
    buffered run sees the identical read-touch sequence: each touch is
    either one charged read or one buffer hit, never both, never neither.
    """
    cold = serve_pager_counters(serve_binary, spec, 0)
    warm = serve_pager_counters(serve_binary, spec, SERVE_BUFFER_PAGES)
    if cold["hits"] != 0:
        fail(f"unbuffered serve reports {cold['hits']} buffer hits")
    if warm["hits"] + warm["reads"] != cold["reads"]:
        fail(f"buffered serve lost read touches: hits {warm['hits']} + "
             f"reads {warm['reads']} != unbuffered reads {cold['reads']}")
    if warm["hits"] == 0:
        fail("buffered serve recorded no buffer hits at all")
    # Write-back may only collapse repeated writes, never add any.
    if warm["writes"] > cold["writes"]:
        fail(f"buffered serve charged more writes ({warm['writes']}) than "
             f"the unbuffered run ({cold['writes']})")
    return cold, warm


def main():
    if len(sys.argv) not in (3, 4):
        fail(f"usage: {sys.argv[0]} <pathix_online> <trace.pix> "
             "[<pathix_serve>]")
    binary, spec = sys.argv[1], sys.argv[2]
    serve_binary = sys.argv[3] if len(sys.argv) == 4 else None
    with tempfile.TemporaryDirectory(prefix="obs_smoke.") as tmp:
        metrics_out = str(Path(tmp) / "metrics.prom")
        metrics_json = str(Path(tmp) / "metrics.json")
        trace_out = str(Path(tmp) / "trace.json")
        decisions_out = str(Path(tmp) / "decisions.jsonl")
        proc = subprocess.run(
            [binary, spec, "--metrics",
             f"--metrics-out={metrics_out}",
             f"--metrics-json={metrics_json}",
             f"--trace-out={trace_out}",
             f"--decisions-out={decisions_out}"],
            capture_output=True, text=True)
        sys.stdout.write(proc.stdout)
        sys.stderr.write(proc.stderr)
        # 0 = envelope met, 2 = envelope missed but the run (and all
        # exports + the exact cross-check) succeeded; 1 = hard error.
        if proc.returncode not in (0, 2):
            fail(f"pathix_online exited {proc.returncode}")
        if "metrics cross-check: ok" not in proc.stdout:
            fail("exact counters-vs-replay cross-check line missing")
        if "decision ledger cross-check: ok" not in proc.stdout:
            fail("decision ledger cross-check line missing")
        prom = check_prometheus(Path(metrics_out).read_text())
        doc = check_metrics_json(metrics_json, prom)
        names = check_trace(trace_out)
        decisions = check_ledger(decisions_out, doc, prom)
    serve_note = ""
    if serve_binary is not None:
        cold, warm = check_buffered_serving(serve_binary, spec)
        serve_note = (f", buffered serving reconciled: {warm['hits']} hits"
                      f" + {warm['reads']} reads == {cold['reads']} cold"
                      " reads")
    print(f"obs_smoke: ok ({len(prom)} Prometheus series, "
          f"{decisions} ledgered decisions, "
          f"span names: {', '.join(sorted(names))}{serve_note})")


if __name__ == "__main__":
    main()
