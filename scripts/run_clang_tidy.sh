#!/bin/sh
# Runs clang-tidy over every first-party translation unit recorded in a
# build directory's compile_commands.json (cmake exports it by default —
# CMAKE_EXPORT_COMPILE_COMMANDS is ON in the top-level CMakeLists.txt).
# Third-party sources (_deps) and generated files are skipped. The check
# set and the error policy live in .clang-tidy (WarningsAsErrors '*'), so
# any finding fails this script — that is the CI gate.
#
#   usage: run_clang_tidy.sh [BUILD_DIR] [CLANG_TIDY]
set -u

BUILD_DIR="${1:-build}"
CLANG_TIDY="${2:-clang-tidy}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"

if ! command -v "$CLANG_TIDY" > /dev/null 2>&1; then
  echo "error: '$CLANG_TIDY' not found." >&2
  echo "Install clang-tidy (e.g. apt-get install clang-tidy) or pass its" >&2
  echo "path: scripts/run_clang_tidy.sh BUILD_DIR /path/to/clang-tidy" >&2
  exit 2
fi

DB="$BUILD_DIR/compile_commands.json"
if [ ! -f "$DB" ]; then
  echo "error: $DB not found — configure cmake first:" >&2
  echo "  cmake -S . -B $BUILD_DIR" >&2
  exit 2
fi

# First-party TUs: everything under src/, tests/, bench/, examples/ that
# the build compiles. The compilation database stores absolute paths.
files="$(sed -n 's/^ *"file": "\(.*\)",\{0,1\}$/\1/p' "$DB" | sort -u \
  | grep -E "^$ROOT/(src|tests|bench|examples)/" || true)"

if [ -z "$files" ]; then
  echo "error: no first-party files found in $DB" >&2
  exit 2
fi

count="$(printf '%s\n' "$files" | wc -l | tr -d ' ')"
jobs="$(nproc 2> /dev/null || echo 4)"
echo "clang-tidy over $count translation units ($jobs-way parallel)..."

# xargs -P fans the TUs out; any non-zero clang-tidy exit makes xargs
# return non-zero, which is the gate.
if printf '%s\n' "$files" \
  | xargs -P "$jobs" -n 4 "$CLANG_TIDY" -p "$BUILD_DIR" --quiet; then
  echo "clang-tidy: clean"
else
  echo "clang-tidy: violations found (config: .clang-tidy)" >&2
  exit 1
fi
