#include "advisor/candidate_pool.h"

#include <algorithm>
#include <map>
#include <set>
#include <utility>

#include "core/matrix_cache.h"
#include "costmodel/org_model.h"

namespace pathix {

Result<CandidatePool> CandidatePool::Build(
    const Schema& schema, const Catalog& catalog,
    const std::vector<PathWorkload>& paths, const AdvisorOptions& options) {
  if (paths.empty()) {
    return Status::InvalidArgument("no paths given");
  }
  if (options.orgs.empty()) {
    return Status::InvalidArgument("no candidate organizations given");
  }

  CandidatePool pool;
  pool.orgs_ = options.orgs;
  std::map<StructuralKey, int> entry_ids;

  for (std::size_t i = 0; i < paths.size(); ++i) {
    Result<PathContext> ctx =
        PathContext::Build(schema, paths[i].path, catalog, paths[i].load,
                           options.query_profile);
    if (!ctx.ok()) return ctx.status();
    const int n = ctx.value().n();
    pool.path_lengths_.push_back(n);

    const std::vector<Subpath> subpaths = EnumerateSubpaths(n);
    std::vector<std::vector<std::pair<int, int>>> path_lookup(
        subpaths.size(),
        std::vector<std::pair<int, int>>(options.orgs.size(), {-1, -1}));

    for (std::size_t row = 0; row < subpaths.size(); ++row) {
      const Subpath& sp = subpaths[row];
      for (std::size_t col = 0; col < options.orgs.size(); ++col) {
        const IndexOrg org = options.orgs[col];
        StructuralKey key =
            StructuralKey::ForSubpath(paths[i].path, sp.start, sp.end, org);

        CandidateUse use;
        use.path_index = static_cast<int>(i);
        use.subpath = sp;
        use.breakdown =
            ComputeSubpathCost(ctx.value(), sp.start, sp.end, org);
        use.query_prefix = use.breakdown.query + use.breakdown.prefix;
        use.maintain = use.breakdown.maintain + use.breakdown.boundary;
        const double bytes =
            MakeOrgCostModel(org, ctx.value(), sp.start, sp.end)
                ->StorageBytes();

        auto [it, inserted] =
            entry_ids.emplace(key, static_cast<int>(pool.entries_.size()));
        if (inserted) {
          CandidateEntry entry;
          entry.key = std::move(key);
          entry.label = entry.key.Label(schema);
          pool.entries_.push_back(std::move(entry));
        }
        CandidateEntry& entry =
            pool.entries_[static_cast<std::size_t>(it->second)];
        entry.storage_bytes = std::max(entry.storage_bytes, bytes);
        path_lookup[row][col] = {it->second,
                                 static_cast<int>(entry.uses.size())};
        entry.uses.push_back(use);
      }
    }
    pool.lookup_.push_back(std::move(path_lookup));
  }

  for (CandidateEntry& entry : pool.entries_) {
    std::set<int> distinct;
    for (const CandidateUse& use : entry.uses) distinct.insert(use.path_index);
    entry.shareable = distinct.size() >= 2;
  }
  return pool;
}

int CandidatePool::EntryFor(int path_index, const Subpath& sp,
                            IndexOrg org) const {
  PATHIX_DCHECK(path_index >= 0 && path_index < num_paths());
  const auto col_it = std::find(orgs_.begin(), orgs_.end(), org);
  if (col_it == orgs_.end()) return -1;
  const int row = SubpathRowIndex(path_length(path_index), sp);
  return lookup_[static_cast<std::size_t>(path_index)]
                [static_cast<std::size_t>(row)]
                [static_cast<std::size_t>(col_it - orgs_.begin())]
                    .first;
}

Result<CandidatePool> CandidatePoolBuilder::Build(
    const Schema& schema, const Catalog& catalog,
    const std::vector<PathWorkload>& paths, const AdvisorOptions& options) {
  if (paths.empty()) {
    return Status::InvalidArgument("no paths given");
  }
  if (options.orgs.empty()) {
    return Status::InvalidArgument("no candidate organizations given");
  }

  // Contexts carry the current loads; built fresh each call (cheap —
  // catalog lookups, no model evaluations).
  std::vector<PathContext> ctxs;
  ctxs.reserve(paths.size());
  for (const PathWorkload& pw : paths) {
    Result<PathContext> ctx = PathContext::Build(schema, pw.path, catalog,
                                                 pw.load,
                                                 options.query_profile);
    if (!ctx.ok()) return ctx.status();
    ctxs.push_back(std::move(ctx).value());
  }

  // The statistics fingerprint: per-path structure/statistics (the matrix
  // cache's notion) plus the candidate organization set. Loads are not in
  // it — they are reweighed below either way.
  std::vector<double> fp;
  fp.push_back(static_cast<double>(options.orgs.size()));
  for (const IndexOrg org : options.orgs) {
    fp.push_back(static_cast<double>(org));
  }
  for (const PathContext& ctx : ctxs) {
    const std::vector<double> part = CostMatrixBuilder::Fingerprint(ctx);
    fp.push_back(static_cast<double>(part.size()));  // path delimiter
    fp.insert(fp.end(), part.begin(), part.end());
  }

  if (!fingerprint_.empty() && fp == fingerprint_) {
    ++cache_hits_;
  } else {
    ++model_rebuilds_;
    skeleton_ = CandidatePool();
    unit_.clear();
    skeleton_.orgs_ = options.orgs;
    std::map<StructuralKey, int> entry_ids;
    for (std::size_t i = 0; i < paths.size(); ++i) {
      const int n = ctxs[i].n();
      skeleton_.path_lengths_.push_back(n);
      const std::vector<Subpath> subpaths = EnumerateSubpaths(n);
      std::vector<std::vector<std::pair<int, int>>> path_lookup(
          subpaths.size(),
          std::vector<std::pair<int, int>>(options.orgs.size(), {-1, -1}));
      for (std::size_t row = 0; row < subpaths.size(); ++row) {
        const Subpath& sp = subpaths[row];
        for (std::size_t col = 0; col < options.orgs.size(); ++col) {
          const IndexOrg org = options.orgs[col];
          StructuralKey key = StructuralKey::ForSubpath(paths[i].path,
                                                        sp.start, sp.end, org);
          CandidateUse use;  // cost fields filled by the reweigh below
          use.path_index = static_cast<int>(i);
          use.subpath = sp;
          const double bytes =
              MakeOrgCostModel(org, ctxs[i], sp.start, sp.end)
                  ->StorageBytes();
          auto [it, inserted] = entry_ids.emplace(
              key, static_cast<int>(skeleton_.entries_.size()));
          if (inserted) {
            CandidateEntry entry;
            entry.key = std::move(key);
            entry.label = entry.key.Label(schema);
            skeleton_.entries_.push_back(std::move(entry));
            unit_.emplace_back();
          }
          const auto e = static_cast<std::size_t>(it->second);
          CandidateEntry& entry = skeleton_.entries_[e];
          entry.storage_bytes = std::max(entry.storage_bytes, bytes);
          path_lookup[row][col] = {it->second,
                                   static_cast<int>(entry.uses.size())};
          entry.uses.push_back(use);
          unit_[e].push_back(
              ComputeSubpathUnitCosts(ctxs[i], sp.start, sp.end, org));
        }
      }
      skeleton_.lookup_.push_back(std::move(path_lookup));
    }
    for (CandidateEntry& entry : skeleton_.entries_) {
      std::set<int> distinct;
      for (const CandidateUse& use : entry.uses) {
        distinct.insert(use.path_index);
      }
      entry.shareable = distinct.size() >= 2;
    }
    fingerprint_ = std::move(fp);
  }

  // Reweigh: copy the skeleton and price every use under the current
  // loads.
  CandidatePool pool = skeleton_;
  for (std::size_t e = 0; e < pool.entries_.size(); ++e) {
    CandidateEntry& entry = pool.entries_[e];
    for (std::size_t u = 0; u < entry.uses.size(); ++u) {
      CandidateUse& use = entry.uses[u];
      const auto& ctx = ctxs[static_cast<std::size_t>(use.path_index)];
      use.breakdown = WeighSubpathCost(unit_[e][u], ctx, use.subpath.start,
                                       use.subpath.end);
      use.query_prefix = use.breakdown.query + use.breakdown.prefix;
      use.maintain = use.breakdown.maintain + use.breakdown.boundary;
    }
  }
  return pool;
}

const CandidateUse& CandidatePool::UseFor(int path_index, const Subpath& sp,
                                          IndexOrg org) const {
  PATHIX_DCHECK(path_index >= 0 && path_index < num_paths());
  const auto col_it = std::find(orgs_.begin(), orgs_.end(), org);
  PATHIX_DCHECK(col_it != orgs_.end());
  const int row = SubpathRowIndex(path_length(path_index), sp);
  const auto [entry, use] = lookup_[static_cast<std::size_t>(path_index)]
                                   [static_cast<std::size_t>(row)]
                                   [static_cast<std::size_t>(
                                       col_it - orgs_.begin())];
  PATHIX_DCHECK(entry >= 0);
  return entries_[static_cast<std::size_t>(entry)]
      .uses[static_cast<std::size_t>(use)];
}

}  // namespace pathix
