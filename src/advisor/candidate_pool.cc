#include "advisor/candidate_pool.h"

#include <algorithm>
#include <map>
#include <set>
#include <utility>

#include "costmodel/org_model.h"

namespace pathix {

Result<CandidatePool> CandidatePool::Build(
    const Schema& schema, const Catalog& catalog,
    const std::vector<PathWorkload>& paths, const AdvisorOptions& options) {
  if (paths.empty()) {
    return Status::InvalidArgument("no paths given");
  }
  if (options.orgs.empty()) {
    return Status::InvalidArgument("no candidate organizations given");
  }

  CandidatePool pool;
  pool.orgs_ = options.orgs;
  std::map<StructuralKey, int> entry_ids;

  for (std::size_t i = 0; i < paths.size(); ++i) {
    Result<PathContext> ctx =
        PathContext::Build(schema, paths[i].path, catalog, paths[i].load,
                           options.query_profile);
    if (!ctx.ok()) return ctx.status();
    const int n = ctx.value().n();
    pool.path_lengths_.push_back(n);

    const std::vector<Subpath> subpaths = EnumerateSubpaths(n);
    std::vector<std::vector<std::pair<int, int>>> path_lookup(
        subpaths.size(),
        std::vector<std::pair<int, int>>(options.orgs.size(), {-1, -1}));

    for (std::size_t row = 0; row < subpaths.size(); ++row) {
      const Subpath& sp = subpaths[row];
      for (std::size_t col = 0; col < options.orgs.size(); ++col) {
        const IndexOrg org = options.orgs[col];
        StructuralKey key =
            StructuralKey::ForSubpath(paths[i].path, sp.start, sp.end, org);

        CandidateUse use;
        use.path_index = static_cast<int>(i);
        use.subpath = sp;
        use.breakdown =
            ComputeSubpathCost(ctx.value(), sp.start, sp.end, org);
        use.query_prefix = use.breakdown.query + use.breakdown.prefix;
        use.maintain = use.breakdown.maintain + use.breakdown.boundary;
        const double bytes =
            MakeOrgCostModel(org, ctx.value(), sp.start, sp.end)
                ->StorageBytes();

        auto [it, inserted] =
            entry_ids.emplace(key, static_cast<int>(pool.entries_.size()));
        if (inserted) {
          CandidateEntry entry;
          entry.key = std::move(key);
          entry.label = entry.key.Label(schema);
          pool.entries_.push_back(std::move(entry));
        }
        CandidateEntry& entry =
            pool.entries_[static_cast<std::size_t>(it->second)];
        entry.storage_bytes = std::max(entry.storage_bytes, bytes);
        path_lookup[row][col] = {it->second,
                                 static_cast<int>(entry.uses.size())};
        entry.uses.push_back(use);
      }
    }
    pool.lookup_.push_back(std::move(path_lookup));
  }

  for (CandidateEntry& entry : pool.entries_) {
    std::set<int> distinct;
    for (const CandidateUse& use : entry.uses) distinct.insert(use.path_index);
    entry.shareable = distinct.size() >= 2;
  }
  return pool;
}

int CandidatePool::EntryFor(int path_index, const Subpath& sp,
                            IndexOrg org) const {
  PATHIX_DCHECK(path_index >= 0 && path_index < num_paths());
  const auto col_it = std::find(orgs_.begin(), orgs_.end(), org);
  if (col_it == orgs_.end()) return -1;
  const int row = SubpathRowIndex(path_length(path_index), sp);
  return lookup_[static_cast<std::size_t>(path_index)]
                [static_cast<std::size_t>(row)]
                [static_cast<std::size_t>(col_it - orgs_.begin())]
                    .first;
}

const CandidateUse& CandidatePool::UseFor(int path_index, const Subpath& sp,
                                          IndexOrg org) const {
  PATHIX_DCHECK(path_index >= 0 && path_index < num_paths());
  const auto col_it = std::find(orgs_.begin(), orgs_.end(), org);
  PATHIX_DCHECK(col_it != orgs_.end());
  const int row = SubpathRowIndex(path_length(path_index), sp);
  const auto [entry, use] = lookup_[static_cast<std::size_t>(path_index)]
                                   [static_cast<std::size_t>(row)]
                                   [static_cast<std::size_t>(
                                       col_it - orgs_.begin())];
  PATHIX_DCHECK(entry >= 0);
  return entries_[static_cast<std::size_t>(entry)]
      .uses[static_cast<std::size_t>(use)];
}

}  // namespace pathix
