#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/multipath.h"
#include "core/structural_key.h"
#include "costmodel/subpath_cost.h"

/// \file candidate_pool.h
/// \brief The shared candidate pool of the workload advisor.
///
/// Joint selection across a workload of overlapping paths (the paper's
/// Section 6 "further research"; CoPhy-style in spirit) starts from one
/// pool of *physical* index candidates: every subpath of every workload
/// path under every candidate organization, structurally deduplicated via
/// StructuralKey. Each distinct candidate is priced once for storage and
/// once per using path for benefit:
///
///  - query_prefix (per use): the retrieval share of the subpath cost —
///    what the using path pays whether or not anybody else uses the index;
///  - maintain (per use): the maintenance + boundary share attributed by
///    that path's load. Occurrences of one entry describe the same physical
///    update stream, so a shared entry charges the *maximum* occurrence
///    (paid once), matching the greedy merge's accounting;
///  - storage_bytes (per entry): structure-determined, charged once.
///
/// The pool is plain data after Build(): the joint optimizer never needs to
/// re-evaluate the cost model.

namespace pathix {

/// One workload path's use of a pool entry.
struct CandidateUse {
  int path_index = 0;  ///< which workload path
  Subpath subpath;     ///< the levels of that path the entry covers
  double query_prefix = 0;  ///< query + prefix share of the subpath cost
  double maintain = 0;      ///< maintain + boundary share (paid once if shared)
  SubpathCost breakdown;    ///< full decomposition, for reporting
};

/// One distinct physical index candidate across the workload.
struct CandidateEntry {
  StructuralKey key;
  std::string label;         ///< rendered from key — reporting only
  double storage_bytes = 0;  ///< estimated index bytes (max across uses)
  std::vector<CandidateUse> uses;
  bool shareable = false;  ///< used by >= 2 distinct workload paths
};

/// \brief Every indexable subpath of every workload path, structurally
/// deduplicated and priced.
class CandidatePool {
 public:
  /// An empty pool; usable only as an assignment target.
  CandidatePool() = default;

  /// Binds each path to the schema/catalog/load and prices all candidates.
  /// Fails when any per-path context fails to build (missing statistics) or
  /// \p paths is empty.
  static Result<CandidatePool> Build(const Schema& schema,
                                     const Catalog& catalog,
                                     const std::vector<PathWorkload>& paths,
                                     const AdvisorOptions& options = {});

  int num_paths() const { return static_cast<int>(path_lengths_.size()); }
  int path_length(int path_index) const {
    PATHIX_DCHECK(path_index >= 0 && path_index < num_paths());
    return path_lengths_[static_cast<std::size_t>(path_index)];
  }
  const std::vector<IndexOrg>& orgs() const { return orgs_; }
  const std::vector<CandidateEntry>& entries() const { return entries_; }

  /// Pool entry covering \p sp of path \p path_index with \p org, or -1 when
  /// \p org is not among the candidate organizations.
  int EntryFor(int path_index, const Subpath& sp, IndexOrg org) const;

  /// The priced use behind EntryFor (which must not be -1).
  const CandidateUse& UseFor(int path_index, const Subpath& sp,
                             IndexOrg org) const;

 private:
  friend class CandidatePoolBuilder;

  std::vector<CandidateEntry> entries_;
  std::vector<int> path_lengths_;
  std::vector<IndexOrg> orgs_;
  /// Per path: [subpath row][org column] -> {entry id, use index}.
  std::vector<std::vector<std::vector<std::pair<int, int>>>> lookup_;
};

/// \brief Builds CandidatePool instances, reusing the structural skeleton
/// and the load-independent unit costs across calls with unchanged
/// statistics — the matrix-cache factorization (core/matrix_cache.h)
/// lifted to the workload pool.
///
/// The pool's shape (deduplicated entries, lookup tables, storage bytes)
/// and the per-use organization-model evaluations depend on the path set,
/// the catalog statistics and the physical parameters — never on the
/// drifting load estimates, which enter each use's price purely as linear
/// weights. A drift check with unchanged statistics therefore reweighs the
/// cached unit costs (zero model evaluations, zero dedup work); the
/// statistics fingerprint is CostMatrixBuilder's, so "unchanged" means
/// exactly what it means for the single-path matrix cache. Pools produced
/// by Build() are identical to CandidatePool::Build on the same inputs
/// (tests/advisor/pool_cache_test.cc).
class CandidatePoolBuilder {
 public:
  /// As CandidatePool::Build: prices all candidates under the given loads.
  /// Re-evaluates the organization models only when the path set, the
  /// candidate organizations or the statistics fingerprint changed.
  Result<CandidatePool> Build(const Schema& schema, const Catalog& catalog,
                              const std::vector<PathWorkload>& paths,
                              const AdvisorOptions& options = {});

  /// Calls that had to rebuild the skeleton and re-evaluate the models.
  std::uint64_t model_rebuilds() const { return model_rebuilds_; }
  /// Calls served from the cached skeleton (reweigh only).
  std::uint64_t cache_hits() const { return cache_hits_; }

  /// Drops the cache (the next Build() re-evaluates the models).
  void Invalidate() { fingerprint_.clear(); }

 private:
  std::vector<double> fingerprint_;  ///< empty = no cached skeleton
  /// The priced-once skeleton: entries with keys/labels/storage/shareable
  /// and every use's (path, subpath) — cost fields zero, filled per call.
  CandidatePool skeleton_;
  /// Unit costs per entry, parallel to skeleton_.entries_[e].uses.
  std::vector<std::vector<SubpathUnitCosts>> unit_;
  std::uint64_t model_rebuilds_ = 0;
  std::uint64_t cache_hits_ = 0;
};

}  // namespace pathix
