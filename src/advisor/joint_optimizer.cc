#include "advisor/joint_optimizer.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <utility>

namespace pathix {

namespace {

constexpr double kCostEps = 1e-7;
constexpr double kBytesEps = 1e-6;

/// One enumerated configuration of one path, with everything the search
/// needs precomputed from the pool.
struct PerPathConfig {
  IndexConfiguration config;
  std::vector<int> entry_ids;      // parallel to config.parts()
  std::vector<double> maintains;   // per part, maintain + boundary
  double qp = 0;                   // sum of query + prefix shares
  double full = 0;                 // qp + all maintenance (standalone cost)
  double lb = 0;                   // qp + maintenance of unshareable entries
  double unique_storage = 0;       // storage of unshareable entries
};

/// Enumerates every (split, per-block organization) configuration of one
/// path. Without a storage budget, blocks whose candidate is unshareable
/// are restricted to the cheapest organization: swapping a dominated
/// unshareable organization for the per-block optimum never increases the
/// joint cost, so optimality is preserved (the swap could change storage,
/// hence the restriction is off under a budget).
Status EnumerateConfigs(const CandidatePool& pool, int path_index,
                        bool restrict_orgs, long max_configs,
                        std::vector<PerPathConfig>* out) {
  const int n = pool.path_length(path_index);
  const std::vector<IndexOrg>& orgs = pool.orgs();

  // Allowed organizations per subpath row.
  const std::vector<Subpath> subpaths = EnumerateSubpaths(n);
  std::vector<std::vector<IndexOrg>> allowed(subpaths.size());
  for (std::size_t row = 0; row < subpaths.size(); ++row) {
    const Subpath& sp = subpaths[row];
    if (!restrict_orgs) {
      allowed[row] = orgs;
      continue;
    }
    IndexOrg best_org = orgs.front();
    double best_cost = std::numeric_limits<double>::infinity();
    for (const IndexOrg org : orgs) {
      const CandidateUse& use = pool.UseFor(path_index, sp, org);
      const double total = use.query_prefix + use.maintain;
      const int entry = pool.EntryFor(path_index, sp, org);
      if (pool.entries()[static_cast<std::size_t>(entry)].shareable) {
        allowed[row].push_back(org);
      }
      if (total < best_cost) {
        best_cost = total;
        best_org = org;
      }
    }
    if (std::find(allowed[row].begin(), allowed[row].end(), best_org) ==
        allowed[row].end()) {
      allowed[row].push_back(best_org);
    }
  }

  PerPathConfig partial;
  std::vector<IndexedSubpath> parts;
  Status overflow = Status::OK();

  // Depth-first over the first-block end, then organizations, then the tail.
  auto recurse = [&](auto&& self, int start) -> void {
    if (!overflow.ok()) return;
    if (start > n) {
      if (static_cast<long>(out->size()) >= max_configs) {
        overflow = Status::FailedPrecondition(
            "path " + std::to_string(path_index) + " exceeds " +
            std::to_string(max_configs) +
            " joint candidates; shorten the path or trim the candidate "
            "organizations");
        return;
      }
      PerPathConfig done = partial;
      done.config = IndexConfiguration(parts);
      out->push_back(std::move(done));
      return;
    }
    for (int end = start; end <= n; ++end) {
      const Subpath sp{start, end};
      const int row = SubpathRowIndex(n, sp);
      for (const IndexOrg org : allowed[static_cast<std::size_t>(row)]) {
        const CandidateUse& use = pool.UseFor(path_index, sp, org);
        const int entry = pool.EntryFor(path_index, sp, org);
        const CandidateEntry& e =
            pool.entries()[static_cast<std::size_t>(entry)];

        parts.push_back(IndexedSubpath{sp, org});
        partial.entry_ids.push_back(entry);
        partial.maintains.push_back(use.maintain);
        partial.qp += use.query_prefix;
        partial.full += use.query_prefix + use.maintain;
        if (!e.shareable) {
          partial.lb += use.maintain;
          partial.unique_storage += e.storage_bytes;
        }

        self(self, end + 1);

        parts.pop_back();
        partial.entry_ids.pop_back();
        partial.maintains.pop_back();
        partial.qp -= use.query_prefix;
        partial.full -= use.query_prefix + use.maintain;
        if (!e.shareable) {
          partial.lb -= use.maintain;
          partial.unique_storage -= e.storage_bytes;
        }
      }
    }
  };
  recurse(recurse, 1);
  if (!overflow.ok()) return overflow;

  for (PerPathConfig& cfg : *out) cfg.lb += cfg.qp;
  std::sort(out->begin(), out->end(),
            [](const PerPathConfig& a, const PerPathConfig& b) {
              return a.lb < b.lb;
            });
  return Status::OK();
}

/// Depth-first search over paths with shared-aware incremental accounting.
class JointSearcher {
 public:
  JointSearcher(const CandidatePool& pool,
                const std::vector<std::vector<PerPathConfig>>& configs,
                const JointOptions& options, bool use_bound)
      : pool_(pool),
        configs_(configs),
        budget_(options.storage_budget_bytes),
        use_bound_(use_bound) {
    const std::size_t k = configs.size();
    suffix_lb_.assign(k + 1, 0);
    suffix_unique_storage_.assign(k + 1, 0);
    for (std::size_t i = k; i-- > 0;) {
      double min_storage = std::numeric_limits<double>::infinity();
      for (const PerPathConfig& cfg : configs[i]) {
        min_storage = std::min(min_storage, cfg.unique_storage);
      }
      // configs are sorted by lb, so front() carries the path's bound.
      suffix_lb_[i] = suffix_lb_[i + 1] + configs[i].front().lb;
      suffix_unique_storage_[i] = suffix_unique_storage_[i + 1] + min_storage;
    }
    placed_maint_.assign(pool.entries().size(), -1.0);
    choice_.assign(k, -1);
  }

  /// Seeds the incumbent with a concrete assignment (ignored if it busts
  /// the budget). Guarantees the final result is no worse than the seed.
  void Seed(const std::vector<int>& choice) {
    double cost = 0;
    double storage = 0;
    for (std::size_t i = 0; i < choice.size(); ++i) {
      const PerPathConfig& cfg =
          configs_[i][static_cast<std::size_t>(choice[i])];
      cost += Apply(cfg, &storage);
    }
    Unwind(0);
    if (storage <= budget_ + kBytesEps && cost < best_cost_) {
      best_cost_ = cost;
      best_storage_ = storage;
      best_choice_ = choice;
    }
  }

  void Run() { Recurse(0, 0, 0); }

  /// Prices one concrete assignment under the shared accounting without
  /// touching the incumbent (Apply + full Unwind — the same arithmetic
  /// Seed uses). For alternative scoring after the search.
  std::pair<double, double> Evaluate(const std::vector<int>& choice) {
    double cost = 0;
    double storage = 0;
    for (std::size_t i = 0; i < choice.size(); ++i) {
      cost += Apply(configs_[i][static_cast<std::size_t>(choice[i])],
                    &storage);
    }
    Unwind(0);
    return {cost, storage};
  }

  /// The admissible root bound (suffix bound over all paths); valid in
  /// both modes since the ctor always computes it.
  double root_lower_bound() const { return suffix_lb_.front(); }

  bool found() const { return !best_choice_.empty(); }
  double best_cost() const { return best_cost_; }
  double best_storage() const { return best_storage_; }
  const std::vector<int>& best_choice() const { return best_choice_; }
  long explored() const { return explored_; }
  long pruned() const { return pruned_; }

 private:
  /// Charges \p cfg on top of the current placement: query/prefix always,
  /// maintenance only above what is already placed, storage once per new
  /// entry. Placement changes land on the shared undo log (old values);
  /// callers note the log size beforehand and Unwind back to it.
  double Apply(const PerPathConfig& cfg, double* storage) {
    double delta = cfg.qp;
    for (std::size_t p = 0; p < cfg.entry_ids.size(); ++p) {
      const int entry = cfg.entry_ids[p];
      const double m = cfg.maintains[p];
      double& placed = placed_maint_[static_cast<std::size_t>(entry)];
      if (placed < 0) {
        delta += m;
        *storage +=
            pool_.entries()[static_cast<std::size_t>(entry)].storage_bytes;
        undo_.emplace_back(entry, placed);
        placed = m;
      } else if (m > placed) {
        delta += m - placed;
        undo_.emplace_back(entry, placed);
        placed = m;
      }
    }
    return delta;
  }

  /// Reverts the undo log down to \p mark (newest first, so an entry
  /// touched twice ends at its original value).
  void Unwind(std::size_t mark) {
    while (undo_.size() > mark) {
      placed_maint_[static_cast<std::size_t>(undo_.back().first)] =
          undo_.back().second;
      undo_.pop_back();
    }
  }

  void Recurse(std::size_t i, double cost, double storage) {
    ++explored_;
    if (i == configs_.size()) {
      if (cost < best_cost_ - kCostEps) {
        best_cost_ = cost;
        best_storage_ = storage;
        best_choice_ = choice_;
      }
      return;
    }
    if (use_bound_ && cost + suffix_lb_[i] >= best_cost_ - kCostEps) {
      ++pruned_;
      return;
    }
    if (storage + suffix_unique_storage_[i] > budget_ + kBytesEps) {
      ++pruned_;
      return;
    }
    for (std::size_t c = 0; c < configs_[i].size(); ++c) {
      const PerPathConfig& cfg = configs_[i][c];
      if (use_bound_ &&
          cost + cfg.lb + suffix_lb_[i + 1] >= best_cost_ - kCostEps) {
        ++pruned_;
        break;  // configs sorted by lb: every later one is bounded too
      }
      const std::size_t mark = undo_.size();
      double new_storage = storage;
      const double delta = Apply(cfg, &new_storage);
      if (new_storage + suffix_unique_storage_[i + 1] <= budget_ + kBytesEps) {
        choice_[i] = static_cast<int>(c);
        Recurse(i + 1, cost + delta, new_storage);
        choice_[i] = -1;
      }
      Unwind(mark);
    }
  }

  const CandidatePool& pool_;
  const std::vector<std::vector<PerPathConfig>>& configs_;
  const double budget_;
  const bool use_bound_;

  std::vector<double> suffix_lb_;
  std::vector<double> suffix_unique_storage_;
  std::vector<double> placed_maint_;  // -1: entry not placed
  std::vector<std::pair<int, double>> undo_;  // shared log, see Unwind()
  std::vector<int> choice_;

  double best_cost_ = std::numeric_limits<double>::infinity();
  double best_storage_ = 0;
  std::vector<int> best_choice_;
  long explored_ = 0;
  long pruned_ = 0;
};

}  // namespace

Result<JointSelectionResult> SelectJointConfiguration(
    const CandidatePool& pool, const JointOptions& options) {
  if (pool.num_paths() == 0) {
    return Status::InvalidArgument("empty candidate pool");
  }
  if (!(options.storage_budget_bytes >= 0)) {
    return Status::InvalidArgument("storage budget must be >= 0");
  }
  const bool has_budget =
      options.storage_budget_bytes != std::numeric_limits<double>::infinity();

  std::vector<std::vector<PerPathConfig>> configs(
      static_cast<std::size_t>(pool.num_paths()));
  long long combinations = 1;
  for (int i = 0; i < pool.num_paths(); ++i) {
    PATHIX_RETURN_IF_ERROR(
        EnumerateConfigs(pool, i, /*restrict_orgs=*/!has_budget,
                         options.max_configs_per_path,
                         &configs[static_cast<std::size_t>(i)]));
    const long long count =
        static_cast<long long>(configs[static_cast<std::size_t>(i)].size());
    if (combinations <= options.exhaustive_limit) {
      combinations *= count;  // saturates past the threshold check below
    }
  }

  bool exhaustive;
  switch (options.algorithm) {
    case JointOptions::Algorithm::kExhaustive:
      exhaustive = true;
      break;
    case JointOptions::Algorithm::kBranchAndBound:
      exhaustive = false;
      break;
    case JointOptions::Algorithm::kAuto:
    default:
      exhaustive = combinations <= options.exhaustive_limit;
      break;
  }

  // Greedy assignment: each path's standalone optimum. Evaluating it under
  // the shared accounting reproduces the greedy merge's total.
  const auto greedy_choice = [&configs] {
    std::vector<int> greedy(configs.size());
    for (std::size_t i = 0; i < configs.size(); ++i) {
      std::size_t best = 0;
      for (std::size_t c = 1; c < configs[i].size(); ++c) {
        if (configs[i][c].full < configs[i][best].full) best = c;
      }
      greedy[i] = static_cast<int>(best);
    }
    return greedy;
  };

  JointSearcher searcher(pool, configs, options, /*use_bound=*/!exhaustive);
  if (!exhaustive) {
    // Seed the incumbent with the greedy assignment, so the result can only
    // improve on it. Exhaustive mode stays unseeded: pre-setting the
    // incumbent would change which cost-tied assignment wins (leaves accept
    // on strict improvement only), and the exhaustive pick is the tests'
    // ground truth.
    searcher.Seed(greedy_choice());
  }
  searcher.Run();

  if (!searcher.found()) {
    return Status::FailedPrecondition(
        "no index configuration assignment fits the storage budget of " +
        std::to_string(options.storage_budget_bytes) +
        " bytes; raise the budget or add cheaper candidate organizations "
        "(e.g. NONE)");
  }

  JointSelectionResult result;
  result.total_cost = searcher.best_cost();
  result.total_storage_bytes = searcher.best_storage();
  result.nodes_explored = searcher.explored();
  result.nodes_pruned = searcher.pruned();
  result.used_branch_and_bound = !exhaustive;
  for (const std::vector<PerPathConfig>& path_configs : configs) {
    result.configs_enumerated += static_cast<long>(path_configs.size());
  }
  result.lower_bound = searcher.root_lower_bound();

  if (options.capture_alternatives > 0) {
    const auto [greedy_cost, greedy_storage] =
        searcher.Evaluate(greedy_choice());
    result.has_greedy_seed = true;
    result.greedy_cost = greedy_cost;
    result.greedy_storage_bytes = greedy_storage;
    result.greedy_feasible =
        greedy_storage <= options.storage_budget_bytes + kBytesEps;

    // Score every single-config swap against the chosen assignment. The
    // enumeration order is deterministic and the sort stable, so the
    // captured list is byte-stable across runs (the decision ledger's
    // determinism contract).
    std::vector<int> swapped = searcher.best_choice();
    for (std::size_t i = 0; i < configs.size(); ++i) {
      const int chosen_c = swapped[i];
      for (std::size_t c = 0; c < configs[i].size(); ++c) {
        if (static_cast<int>(c) == chosen_c) continue;
        swapped[i] = static_cast<int>(c);
        const auto [cost, storage] = searcher.Evaluate(swapped);
        JointCandidateScore alt;
        alt.path_index = static_cast<int>(i);
        alt.config = configs[i][c].config;
        alt.total_cost = cost;
        alt.total_storage_bytes = storage;
        alt.within_budget = storage <= options.storage_budget_bytes + kBytesEps;
        result.alternatives.push_back(std::move(alt));
      }
      swapped[i] = chosen_c;
    }
    std::stable_sort(result.alternatives.begin(), result.alternatives.end(),
                     [](const JointCandidateScore& a,
                        const JointCandidateScore& b) {
                       return a.total_cost < b.total_cost;
                     });
    if (result.alternatives.size() >
        static_cast<std::size_t>(options.capture_alternatives)) {
      result.alternatives.resize(
          static_cast<std::size_t>(options.capture_alternatives));
    }
  }

  // Re-derive the per-path selections and the distinct chosen indexes.
  std::set<int> distinct;
  std::vector<std::vector<int>> users;
  std::vector<double> charged;
  std::vector<int> chosen_ids;
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const PerPathConfig& cfg =
        configs[i][static_cast<std::size_t>(searcher.best_choice()[i])];
    JointPathSelection sel;
    sel.config = cfg.config;
    sel.query_prefix_cost = cfg.qp;
    sel.standalone_cost = cfg.full;
    result.per_path.push_back(std::move(sel));
    for (std::size_t p = 0; p < cfg.entry_ids.size(); ++p) {
      const int entry = cfg.entry_ids[p];
      auto [it, inserted] = distinct.emplace(entry);
      (void)it;
      if (inserted) {
        chosen_ids.push_back(entry);
        users.emplace_back();
        charged.push_back(0);
      }
      const std::size_t pos = static_cast<std::size_t>(
          std::find(chosen_ids.begin(), chosen_ids.end(), entry) -
          chosen_ids.begin());
      users[pos].push_back(static_cast<int>(i));
      charged[pos] = std::max(charged[pos], cfg.maintains[p]);
    }
  }
  for (std::size_t j = 0; j < chosen_ids.size(); ++j) {
    ChosenIndex chosen;
    chosen.entry_id = chosen_ids[j];
    chosen.path_indexes = std::move(users[j]);
    chosen.charged_maintain = charged[j];
    result.chosen.push_back(std::move(chosen));
  }
  return result;
}

}  // namespace pathix
