#pragma once

#include <limits>
#include <vector>

#include "advisor/candidate_pool.h"
#include "core/index_config.h"

/// \file joint_optimizer.h
/// \brief Joint, storage-budgeted index selection over the shared candidate
/// pool: one index configuration per workload path, minimizing the
/// *workload* cost in which a physically shared index pays maintenance and
/// storage once.
///
/// Cost of an assignment (one configuration c_i per path):
///
///   sum_i QP_i(c_i)  +  sum_{distinct entries E used}  max over uses of E
///                                                       of its maintenance
///
/// subject to  sum_{distinct entries E used} storage(E) <= budget.
///
/// This generalizes the greedy merge of AdviseMultiplePaths: evaluating the
/// per-path standalone optima under this accounting reproduces exactly the
/// greedy `total_cost_shared`, so the joint optimum is <= greedy <= the sum
/// of independent optima by construction (the search is seeded with the
/// greedy assignment and the space contains it).
///
/// The search is a branch-and-bound over paths. The admissible lower bound
/// for the unassigned paths is each path's optimum with maintenance (and
/// storage, for budget pruning) discounted to zero on *shareable* candidates
/// — a path can never beat its own unshared optimum on the candidates only
/// it can use, and on shared candidates another path may already have paid.
/// Small instances fall back to exhaustive enumeration (also the testing
/// ground truth).

namespace pathix {

struct JointOptions {
  /// Maximum total bytes across the distinct chosen indexes; infinity (the
  /// default) disables the constraint.
  double storage_budget_bytes = std::numeric_limits<double>::infinity();

  enum class Algorithm {
    kAuto,             ///< exhaustive when small, else branch-and-bound
    kExhaustive,       ///< full enumeration (ground truth for tests)
    kBranchAndBound,   ///< bounded search, greedy-seeded
  };
  Algorithm algorithm = Algorithm::kAuto;

  /// kAuto uses exhaustive enumeration when the product of per-path
  /// configuration counts is at most this.
  long exhaustive_limit = 20000;

  /// Hard cap on the number of enumerated configurations per path; a path
  /// beyond it fails with FailedPrecondition (shorten the path or trim the
  /// candidate organizations).
  long max_configs_per_path = 500000;
};

/// The configuration chosen for one workload path.
struct JointPathSelection {
  IndexConfiguration config;
  double query_prefix_cost = 0;  ///< retrieval share this path always pays
  double standalone_cost = 0;    ///< unshared cost of the same configuration
};

/// One distinct physical index of the joint solution.
struct ChosenIndex {
  int entry_id = -1;              ///< index into CandidatePool::entries()
  std::vector<int> path_indexes;  ///< paths whose configuration uses it
  double charged_maintain = 0;    ///< the (single) maintenance charge
};

struct JointSelectionResult {
  std::vector<JointPathSelection> per_path;  ///< one per workload path
  std::vector<ChosenIndex> chosen;           ///< distinct physical indexes
  double total_cost = 0;           ///< shared-aware workload cost
  double total_storage_bytes = 0;  ///< sum over distinct chosen indexes
  long nodes_explored = 0;
  long nodes_pruned = 0;
  bool used_branch_and_bound = false;
};

/// Selects one configuration per path over the pool. Fails with
/// FailedPrecondition when no assignment fits the storage budget.
Result<JointSelectionResult> SelectJointConfiguration(
    const CandidatePool& pool, const JointOptions& options = {});

}  // namespace pathix
