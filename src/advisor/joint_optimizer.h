#pragma once

#include <limits>
#include <vector>

#include "advisor/candidate_pool.h"
#include "core/index_config.h"

/// \file joint_optimizer.h
/// \brief Joint, storage-budgeted index selection over the shared candidate
/// pool: one index configuration per workload path, minimizing the
/// *workload* cost in which a physically shared index pays maintenance and
/// storage once.
///
/// Cost of an assignment (one configuration c_i per path):
///
///   sum_i QP_i(c_i)  +  sum_{distinct entries E used}  max over uses of E
///                                                       of its maintenance
///
/// subject to  sum_{distinct entries E used} storage(E) <= budget.
///
/// This generalizes the greedy merge of AdviseMultiplePaths: evaluating the
/// per-path standalone optima under this accounting reproduces exactly the
/// greedy `total_cost_shared`, so the joint optimum is <= greedy <= the sum
/// of independent optima by construction (the search is seeded with the
/// greedy assignment and the space contains it).
///
/// The search is a branch-and-bound over paths. The admissible lower bound
/// for the unassigned paths is each path's optimum with maintenance (and
/// storage, for budget pruning) discounted to zero on *shareable* candidates
/// — a path can never beat its own unshared optimum on the candidates only
/// it can use, and on shared candidates another path may already have paid.
/// Small instances fall back to exhaustive enumeration (also the testing
/// ground truth).

namespace pathix {

struct JointOptions {
  /// Maximum total bytes across the distinct chosen indexes; infinity (the
  /// default) disables the constraint.
  double storage_budget_bytes = std::numeric_limits<double>::infinity();

  enum class Algorithm {
    kAuto,             ///< exhaustive when small, else branch-and-bound
    kExhaustive,       ///< full enumeration (ground truth for tests)
    kBranchAndBound,   ///< bounded search, greedy-seeded
  };
  Algorithm algorithm = Algorithm::kAuto;

  /// kAuto uses exhaustive enumeration when the product of per-path
  /// configuration counts is at most this.
  long exhaustive_limit = 20000;

  /// Hard cap on the number of enumerated configurations per path; a path
  /// beyond it fails with FailedPrecondition (shorten the path or trim the
  /// candidate organizations).
  long max_configs_per_path = 500000;

  /// Number of scored alternative assignments captured into
  /// JointSelectionResult::alternatives (plus greedy-seed quality stats):
  /// each alternative is the chosen assignment with exactly one path's
  /// configuration swapped, re-priced under the shared accounting. 0 (the
  /// default) skips the extra evaluation entirely — the search itself is
  /// unchanged either way.
  int capture_alternatives = 0;
};

/// The configuration chosen for one workload path.
struct JointPathSelection {
  IndexConfiguration config;
  double query_prefix_cost = 0;  ///< retrieval share this path always pays
  double standalone_cost = 0;    ///< unshared cost of the same configuration
};

/// One distinct physical index of the joint solution.
struct ChosenIndex {
  int entry_id = -1;              ///< index into CandidatePool::entries()
  std::vector<int> path_indexes;  ///< paths whose configuration uses it
  double charged_maintain = 0;    ///< the (single) maintenance charge
};

/// One scored alternative assignment (JointOptions::capture_alternatives):
/// the chosen assignment with \p path_index's configuration swapped to
/// \p config, everything else fixed, re-priced under the same shared
/// accounting the search optimizes. total_cost - the chosen total_cost is
/// the candidate's why-not margin.
struct JointCandidateScore {
  int path_index = -1;
  IndexConfiguration config;
  double total_cost = 0;
  double total_storage_bytes = 0;
  bool within_budget = true;
};

struct JointSelectionResult {
  std::vector<JointPathSelection> per_path;  ///< one per workload path
  std::vector<ChosenIndex> chosen;           ///< distinct physical indexes
  double total_cost = 0;           ///< shared-aware workload cost
  double total_storage_bytes = 0;  ///< sum over distinct chosen indexes
  long nodes_explored = 0;
  long nodes_pruned = 0;
  bool used_branch_and_bound = false;
  /// Total enumerated per-path configurations (the search space's width).
  long configs_enumerated = 0;
  /// Admissible root lower bound: sum over paths of the cheapest
  /// maintenance-discounted per-path cost. total_cost >= lower_bound always;
  /// the gap is how loose the bound was on this instance.
  double lower_bound = 0;
  /// Single-swap alternatives, cheapest first, capped at
  /// capture_alternatives (empty when capturing is off).
  std::vector<JointCandidateScore> alternatives;
  /// Greedy-seed quality (capture_alternatives > 0 only): each path's
  /// standalone optimum, priced under the shared accounting — what the
  /// search improved on.
  bool has_greedy_seed = false;
  double greedy_cost = 0;
  double greedy_storage_bytes = 0;
  bool greedy_feasible = false;
};

/// Selects one configuration per path over the pool. Fails with
/// FailedPrecondition when no assignment fits the storage budget.
Result<JointSelectionResult> SelectJointConfiguration(
    const CandidatePool& pool, const JointOptions& options = {});

}  // namespace pathix
