#include "advisor/workload_advisor.h"

namespace pathix {

Result<WorkloadRecommendation> AdviseWorkload(
    const Schema& schema, const Catalog& catalog,
    const std::vector<PathWorkload>& paths, const AdvisorOptions& options,
    const JointOptions& joint_options) {
  WorkloadRecommendation rec;

  Result<CandidatePool> pool =
      CandidatePool::Build(schema, catalog, paths, options);
  if (!pool.ok()) return pool.status();
  rec.pool = std::move(pool).value();

  Result<MultiPathRecommendation> greedy =
      AdviseMultiplePaths(schema, catalog, paths, options);
  if (!greedy.ok()) return greedy.status();
  rec.greedy = std::move(greedy).value();

  Result<JointSelectionResult> joint =
      SelectJointConfiguration(rec.pool, joint_options);
  if (!joint.ok()) return joint.status();
  rec.joint = std::move(joint).value();

  rec.total_cost_joint = rec.joint.total_cost;
  rec.total_cost_greedy = rec.greedy.total_cost_shared;
  rec.total_cost_independent = rec.greedy.total_cost_independent;
  return rec;
}

}  // namespace pathix
