#pragma once

#include <vector>

#include "advisor/joint_optimizer.h"
#include "core/multipath.h"

/// \file workload_advisor.h
/// \brief High-level facade of the workload advisor: builds the shared
/// candidate pool, runs the joint optimizer, and reports the two baselines
/// it must beat — the greedy label-merge of AdviseMultiplePaths and the sum
/// of independent per-path optima.
///
/// Invariant (verified by the tests):
///   total_cost_joint <= total_cost_greedy <= total_cost_independent.
/// With a finite storage budget the joint result additionally respects
/// sum of distinct index bytes <= budget (or the call fails with a clear
/// FailedPrecondition when nothing feasible exists).

namespace pathix {

struct WorkloadRecommendation {
  CandidatePool pool;            ///< priced candidates, kept for reporting
  JointSelectionResult joint;    ///< the jointly optimal assignment
  MultiPathRecommendation greedy;  ///< baseline: per-path optima + merge

  double total_cost_joint = 0;        ///< == joint.total_cost
  double total_cost_greedy = 0;       ///< == greedy.total_cost_shared
  double total_cost_independent = 0;  ///< == greedy.total_cost_independent
};

/// Runs the full workload pipeline: candidate pool, greedy baseline, joint
/// selection under \p joint_options.
Result<WorkloadRecommendation> AdviseWorkload(
    const Schema& schema, const Catalog& catalog,
    const std::vector<PathWorkload>& paths,
    const AdvisorOptions& options = {},
    const JointOptions& joint_options = {});

}  // namespace pathix
