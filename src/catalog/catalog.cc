#include "catalog/catalog.h"

// Catalog is header-only today; this translation unit anchors the library
// target and reserves room for persistence of statistics.
