#pragma once

#include <map>
#include <string>
#include <unordered_map>
#include <utility>

#include "common/status.h"
#include "common/types.h"

/// \file catalog.h
/// \brief Physical parameters and per-class statistics (the "database
/// characteristics" of Figure 7): object counts, distinct attribute values,
/// multi-value fan-outs. These drive the analytic cost model of Section 3.

namespace pathix {

/// \brief Physical storage parameters.
///
/// The paper's extended technical report [7] fixes these for its experiment;
/// it is unavailable, so PathIx exposes them explicitly (DESIGN.md §4.6, §6).
/// Defaults model a 4 KiB page with 8-byte oids/pointers/keys.
struct PhysicalParams {
  double page_size = 4096;  ///< p: bytes per page
  double oid_len = 8;       ///< bytes per oid
  double ptr_len = 8;       ///< bytes per intra-index pointer
  double key_len = 8;       ///< bytes per atomic (ending-attribute) key value
  double rec_overhead = 8;  ///< per index record: header + key-count bookkeeping
  double dir_entry_len = 8; ///< NIX primary record: per-class directory entry
  double numchild_len = 4;  ///< NIX (oid, numchild) pair: counter width

  /// pr_X / pm_X inputs of Section 3.1: average pages touched when a
  /// multi-page index record is retrieved / maintained. The paper treats
  /// them as input parameters; 0 means "derive as ceil(ln/p)" (whole record)
  /// for retrieval and 1 page for maintenance (the modified page only).
  double pr_override = 0;
  double pm_override = 0;
};

/// \brief Statistics for one class with respect to a path attribute.
///
/// Per the paper's Table 2 (for class C_{l,x} and its path attribute A_l):
///  - n:   number of objects in the class
///  - d:   number of distinct values of A_l held by objects of the class
///  - nin: average number of values of A_l per object (1 if single-valued)
/// plus obj_len, the storage footprint used by the physical simulator and
/// the NONE (no-index) organization's scan costs.
struct ClassStats {
  double n = 0;
  double d = 1;
  double nin = 1;
  double obj_len = 64;

  /// k_{l,x} = n * nin / d: average number of objects of the class holding
  /// a given value for the path attribute (reverse fan-in).
  double k() const { return d > 0 ? n * nin / d : 0.0; }
};

/// \brief The statistics catalog: PhysicalParams plus ClassStats per class.
class Catalog {
 public:
  Catalog() = default;
  explicit Catalog(PhysicalParams params) : params_(params) {}

  const PhysicalParams& params() const { return params_; }
  PhysicalParams* mutable_params() { return &params_; }

  void SetClassStats(ClassId cls, ClassStats stats) { stats_[cls] = stats; }
  bool HasClassStats(ClassId cls) const { return stats_.count(cls) > 0; }

  /// Stats for \p cls; a class never registered yields empty stats (n = 0),
  /// which the cost model treats as an empty class.
  const ClassStats& GetClassStats(ClassId cls) const {
    static const ClassStats kEmpty{0, 1, 1, 64};
    auto it = stats_.find(cls);
    return it == stats_.end() ? kEmpty : it->second;
  }

  // Attribute-keyed statistics. d and nin are properties of (class, path
  // attribute), not of the class alone: when two paths navigate the same
  // class through different attributes, class-keyed stats degrade to
  // whichever path was refreshed last. Writers that know the attribute set
  // both keys (the class-keyed entry keeps n/obj_len consumers and older
  // spec-file catalogs working); readers that know it ask attribute-first
  // and fall back to the class-keyed entry.

  void SetClassStats(ClassId cls, const std::string& attr, ClassStats stats) {
    attr_stats_[{cls, attr}] = stats;
  }
  bool HasClassStats(ClassId cls, const std::string& attr) const {
    return attr_stats_.count({cls, attr}) > 0 || HasClassStats(cls);
  }
  /// Stats for \p cls w.r.t. path attribute \p attr; falls back to the
  /// class-keyed entry when no attribute-keyed one was ever set.
  const ClassStats& GetClassStats(ClassId cls, const std::string& attr) const {
    auto it = attr_stats_.find({cls, attr});
    return it == attr_stats_.end() ? GetClassStats(cls) : it->second;
  }

 private:
  PhysicalParams params_;
  std::unordered_map<ClassId, ClassStats> stats_;
  std::map<std::pair<ClassId, std::string>, ClassStats> attr_stats_;
};

}  // namespace pathix
