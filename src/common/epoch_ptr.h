#pragma once

#include <atomic>
#include <memory>
#include <utility>

/// \file epoch_ptr.h
/// \brief Atomically-published shared_ptr: the epoch handoff primitive.
///
/// An EpochPtr<T> holds the *current epoch* of some immutably-published
/// state (for the engine: a path's PhysicalConfiguration). Readers load()
/// a shared_ptr snapshot and work against it for as long as they like;
/// a writer prepares the next epoch off to the side and store()s it in one
/// atomic publish. In-flight readers keep the old epoch alive through
/// their snapshot's refcount; when the last one drains, the old epoch's
/// destructor runs (releasing, e.g., its PhysicalPartRegistry part
/// references) — no reader ever blocks on epoch *construction* and no
/// writer ever waits for readers to drain.
///
/// The pointer handoff itself is guarded by a tiny spin latch: load()
/// copies the shared_ptr (one refcount increment) and store() swaps the
/// pointer, each a handful of instructions under the latch; the old
/// epoch's release — which may cascade into part teardown — happens
/// *outside* it, so the publish window never stretches. The latch uses
/// acquire/release ordering on both sides: everything the writer did to
/// construct the epoch happens-before any reader that observes it.
///
/// Deliberately not C++20 std::atomic<std::shared_ptr<T>> (P0718):
/// libstdc++'s _Sp_atomic releases its load-side lock bit with relaxed
/// ordering (GCC 12), which is a formal data race against the next
/// store() — ThreadSanitizer reports it, and the concurrency gates
/// (tests/common/serve_stress_test.cc under -fsanitize=thread) must run
/// clean.
namespace pathix {

template <typename T>
class EpochPtr {
 public:
  EpochPtr() = default;
  explicit EpochPtr(std::shared_ptr<T> initial) : ptr_(std::move(initial)) {}

  EpochPtr(const EpochPtr&) = delete;
  EpochPtr& operator=(const EpochPtr&) = delete;

  /// The current epoch (may be null if never published). The returned
  /// snapshot keeps its epoch alive independently of later store()s.
  std::shared_ptr<T> load() const {
    const SpinGuard guard(&latch_);
    return ptr_;
  }

  /// Publishes \p next as the current epoch. The previous epoch is
  /// released here (destroyed once the last outstanding load() snapshot
  /// drops it) — outside the latch, so a cascading teardown never holds
  /// up concurrent readers.
  void store(std::shared_ptr<T> next) {
    std::shared_ptr<T> old;
    {
      const SpinGuard guard(&latch_);
      old.swap(ptr_);
      ptr_ = std::move(next);
    }
  }

 private:
  class SpinGuard {
   public:
    explicit SpinGuard(std::atomic_flag* latch) : latch_(latch) {
      while (latch_->test_and_set(std::memory_order_acquire)) {
        // Spin on the read-only test to keep the cache line shared until
        // the holder (a few instructions away) clears it.
        while (latch_->test(std::memory_order_relaxed)) {
        }
      }
    }
    ~SpinGuard() { latch_->clear(std::memory_order_release); }

    SpinGuard(const SpinGuard&) = delete;
    SpinGuard& operator=(const SpinGuard&) = delete;

   private:
    std::atomic_flag* latch_;
  };

  mutable std::atomic_flag latch_ = ATOMIC_FLAG_INIT;
  std::shared_ptr<T> ptr_;
};

}  // namespace pathix
