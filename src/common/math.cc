#include "common/math.h"

#include <algorithm>
#include <cmath>

#include "common/status.h"

namespace pathix {

namespace {

// Yao's product for integral t. Computed in log space when t is large to
// avoid underflow; for the path lengths in question t is typically small.
double YaoNpaIntegral(double t, double n, double m) {
  if (t >= n) return m;
  const double per_page = n / m;  // records per page
  // prod_{i=0}^{t-1} (n - per_page - i) / (n - i)
  double log_prod = 0.0;
  for (double i = 0; i < t; i += 1.0) {
    const double num = n - per_page - i;
    const double den = n - i;
    if (num <= 0.0 || den <= 0.0) return m;  // selection saturates all pages
    log_prod += std::log(num) - std::log(den);
  }
  const double prod = std::exp(log_prod);
  return m * (1.0 - prod);
}

}  // namespace

double YaoNpa(double t, double n, double m) {
  if (t <= 0.0 || n <= 0.0 || m <= 0.0) return 0.0;
  if (m <= 1.0) return 1.0;
  if (t >= n) return m;
  const double lo = std::floor(t);
  const double hi = std::ceil(t);
  double result;
  if (lo == hi) {
    result = YaoNpaIntegral(t, n, m);
  } else {
    const double f = t - lo;
    const double at_lo = (lo <= 0.0) ? 0.0 : YaoNpaIntegral(lo, n, m);
    const double at_hi = YaoNpaIntegral(hi, n, m);
    result = (1.0 - f) * at_lo + f * at_hi;
  }
  // npa <= min(t, m) analytically; guard against rounding drift.
  return std::min(result, std::min(t, m));
}

double CeilDiv(double a, double b) {
  // A non-positive divisor is a caller bug: every use divides a byte or
  // record count by a capacity (page size, fanout, records per page).
  // Returning 0 here would silently propagate (e.g. a 0-page B-tree from
  // BTreeModel::Build); instead trip the debug check, and in release
  // builds degrade to ceil(a) — one unit per record, the most conservative
  // positive answer — rather than "nothing exists".
  PATHIX_DCHECK(b > 0.0);
  if (b <= 0.0) return CeilPos(a);
  if (a <= 0.0) return 0.0;
  return std::ceil(a / b);
}

double CeilPos(double x) { return std::max(0.0, std::ceil(x)); }

}  // namespace pathix
