#pragma once

#include <cstdint>

/// \file math.h
/// \brief Numeric helpers for the analytic cost model, most importantly
/// Yao's block-access estimate [Yao, CACM 1977], which the paper uses as
/// `npa` throughout Section 3.

namespace pathix {

/// \brief Yao's formula: expected number of pages touched when selecting
/// `t` records out of `n` records uniformly stored on `m` pages.
///
/// npa(t, n, m) = m * [1 - prod_{i=0}^{t-1} (n - n/m - i) / (n - i)]
///
/// Edge behaviour (all used by the cost model):
///  - t <= 0 or n <= 0 or m <= 0  -> 0
///  - t >= n                      -> m   (every page is touched)
///  - m == 1                      -> 1
///
/// Fractional t is accepted (workload frequencies scale record counts);
/// it is interpreted by linear interpolation between floor(t) and ceil(t).
double YaoNpa(double t, double n, double m);

/// Ceiling division for positive doubles, returned as double.
double CeilDiv(double a, double b);

/// ceil(x) guarded against negative/NaN inputs (clamped to >= 0).
double CeilPos(double x);

}  // namespace pathix
