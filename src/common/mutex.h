#pragma once

// The one file in src/ allowed to name std::shared_mutex: every other use
// must go through the annotated wrappers below so Clang's thread safety
// analysis sees each acquire/release (check_header_hygiene.sh enforces
// this; the marker it looks for is this header's path).
#include <shared_mutex>

#include "common/thread_annotations.h"

/// \file mutex.h
/// \brief The project's annotated locking primitives.
///
/// `Mutex` is the only legal lock type in `src/`: a shared (reader/writer)
/// mutex carrying Clang thread-safety capability annotations, so that state
/// declared GUARDED_BY one provably cannot be touched without holding it.
/// Lock it through the RAII guards — `MutexLock` (exclusive) and
/// `ReaderMutexLock` (shared) — not through bare Lock/Unlock pairs, so the
/// release is tied to scope exit on every path.
///
/// Lock ordering. The engine's mutex hierarchy is strictly leaf-ward:
///
///   SimDatabase commit mutex  >  SimDatabase observer mutex
///     >  controller check mutex
///     >  PhysicalPartRegistry  >  PhysicalPart latch  >  ObjectStore
///                                                     >  Pager
///
/// i.e. the Pager's mutex is a leaf (Note* never calls out), part latches
/// and the ObjectStore's methods may call into the Pager, and
/// Registry::Acquire may call into all of them while building a part. The
/// SimDatabase commit mutex serializes configuration epoch swaps against
/// update operations and is taken before anything else. Never call upward
/// (e.g. from index code back into the registry) while holding a
/// downstream mutex.
///
/// The buffer pool's sharded frame-table latches (storage/buffer_pool.h)
/// are leaves beside the Pager's mutex: a buffered page touch takes one
/// shard latch, releases it, and only then (if unframed) takes the pager
/// mutex for the stats — the two are never held together. Pool-wide
/// operations (Resize/FlushAll/GetStats) take every shard latch in index
/// order and call nothing while holding them.
///
/// The observability layer (obs/metrics.h, obs/trace.h) sits below the
/// whole hierarchy: every per-metric mutex, the registry map mutex and the
/// tracer's event mutex are *leaves* — their methods never call out — so
/// counters may be bumped and spans opened from inside any engine-locked
/// region. The converse is the rule to keep: never call engine code while
/// holding an obs mutex (the exporters copy state out first for exactly
/// this reason).

namespace pathix {

/// \brief Annotated reader/writer mutex (wraps std::shared_mutex).
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { impl_.lock(); }
  void Unlock() RELEASE() { impl_.unlock(); }
  /// Attempts the exclusive lock without blocking; true when acquired.
  /// The one sanctioned non-RAII acquire: used by drift-check arbitration
  /// where losing the race means "another thread is already checking" and
  /// the right move is to skip, not wait.
  bool TryLock() TRY_ACQUIRE(true) { return impl_.try_lock(); }
  void ReaderLock() ACQUIRE_SHARED() { impl_.lock_shared(); }
  void ReaderUnlock() RELEASE_SHARED() { impl_.unlock_shared(); }

  /// Tells the analysis the current thread holds this mutex exclusively
  /// (for helpers reached only from locked scopes the analysis cannot
  /// follow, e.g. through a stored pointer). No runtime effect.
  void AssertHeld() const ASSERT_CAPABILITY(this) {}
  void AssertReaderHeld() const ASSERT_SHARED_CAPABILITY(this) {}

 private:
  std::shared_mutex impl_;
};

/// \brief RAII exclusive lock.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// \brief RAII shared (reader) lock.
class SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(Mutex* mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_->ReaderLock();
  }
  ~ReaderMutexLock() RELEASE() { mu_->ReaderUnlock(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  Mutex* const mu_;
};

}  // namespace pathix
