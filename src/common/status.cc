#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace pathix {

namespace {
const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}
}  // namespace

void CheckOk(const Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "CheckOk failed: %s\n", status.ToString().c_str());
    std::abort();
  }
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace pathix
