#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>

/// \file status.h
/// \brief RocksDB-style status / result types used for error handling in the
/// PathIx public API. The library does not throw exceptions on expected
/// failure paths; internal invariant violations use PATHIX_DCHECK.

namespace pathix {

/// Error category of a Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kOutOfRange,
  kInternal,
};

/// \brief Lightweight success-or-error value.
///
/// Follows the RocksDB/Arrow idiom: functions that can fail for reasons the
/// caller should handle return a Status (or a Result<T>), never throw.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable rendering, e.g. "InvalidArgument: path is empty".
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// \brief Holds either a value of type T or an error Status.
///
/// A minimal StatusOr. Accessing value() on an error aborts in debug builds;
/// callers must check ok() first.
template <typename T>
class Result {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor): implicit conversion is the
  // point — `return value;` / `return status;` is the whole Result idiom.
  Result(T value) : value_(std::move(value)) {}
  // NOLINTNEXTLINE(google-explicit-constructor): see above.
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "Result(Status) requires an error status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Aborts (in every build mode) if \p status is an error. For call sites
/// that cannot fail by construction, e.g. building canned schemas.
void CheckOk(const Status& status);

}  // namespace pathix

/// Debug-only invariant check for internal logic errors. Never put
/// side-effecting expressions inside: the macro compiles out under NDEBUG.
#define PATHIX_DCHECK(cond) assert(cond)

/// Propagate an error Status from an expression returning Status.
#define PATHIX_RETURN_IF_ERROR(expr)            \
  do {                                          \
    ::pathix::Status _st = (expr);              \
    if (!_st.ok()) return _st;                  \
  } while (0)
