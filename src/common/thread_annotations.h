#pragma once

/// \file thread_annotations.h
/// \brief Clang Thread Safety Analysis attribute macros.
///
/// These wrap Clang's `-Wthread-safety` attributes so that locking contracts
/// are stated in the type system: a member annotated GUARDED_BY(mu_) cannot
/// be touched on Clang without holding mu_, a function annotated
/// REQUIRES(mu_) cannot be called without it, and violations are compile
/// errors under -Werror. On compilers without the attributes (GCC) every
/// macro expands to nothing — the annotations are documentation there, and
/// the TSan CI job is the dynamic backstop.
///
/// Use common/mutex.h's annotated Mutex/MutexLock as the lock types; raw
/// std::mutex is rejected by scripts/check_header_hygiene.sh precisely
/// because the analysis cannot see through it.
///
/// Attribute reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html

// NOLINTBEGIN(bugprone-macro-parentheses): attribute arguments are lock
// expressions and must be spliced verbatim; parenthesizing them breaks the
// attribute grammar.

#if defined(__clang__) && defined(__has_attribute)
#define PATHIX_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define PATHIX_THREAD_ANNOTATION(x)  // no-op off Clang
#endif

/// Declares a class to be a lockable capability ("mutex").
#define CAPABILITY(x) PATHIX_THREAD_ANNOTATION(capability(x))

/// Declares an RAII class whose lifetime holds a capability.
#define SCOPED_CAPABILITY PATHIX_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only while holding the given mutex.
#define GUARDED_BY(x) PATHIX_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is guarded by the given mutex.
#define PT_GUARDED_BY(x) PATHIX_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function callable only while holding the given mutex(es) exclusively.
#define REQUIRES(...) \
  PATHIX_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function callable only while holding the mutex(es) at least shared.
#define REQUIRES_SHARED(...) \
  PATHIX_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Function that must NOT be called with the given mutex(es) held
/// (it acquires them itself; calling it under the lock would deadlock).
#define EXCLUDES(...) PATHIX_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function acquires the mutex(es) exclusively and does not release.
#define ACQUIRE(...) PATHIX_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function acquires the mutex(es) shared and does not release.
#define ACQUIRE_SHARED(...) \
  PATHIX_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

/// Function attempts the lock and reports success; the capability is held
/// only when the return value equals the annotation's first argument.
#define TRY_ACQUIRE(...) \
  PATHIX_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Function releases the held mutex(es) (exclusive or shared).
#define RELEASE(...) PATHIX_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function releases the shared hold of the mutex(es).
#define RELEASE_SHARED(...) \
  PATHIX_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

/// Runtime assertion that the calling thread holds the capability; informs
/// the analysis without acquiring (deep-read accessor helper).
#define ASSERT_CAPABILITY(x) PATHIX_THREAD_ANNOTATION(assert_capability(x))

/// As ASSERT_CAPABILITY for a shared hold.
#define ASSERT_SHARED_CAPABILITY(x) \
  PATHIX_THREAD_ANNOTATION(assert_shared_capability(x))

/// Function returns a reference to the given mutex (lock-expression alias).
#define RETURN_CAPABILITY(x) PATHIX_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Use only for
/// init/teardown paths that are single-threaded by construction, with a
/// comment saying why.
#define NO_THREAD_SAFETY_ANALYSIS \
  PATHIX_THREAD_ANNOTATION(no_thread_safety_analysis)

// NOLINTEND(bugprone-macro-parentheses)
