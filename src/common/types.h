#pragma once

#include <cstdint>
#include <limits>

/// \file types.h
/// \brief Fundamental identifier types shared across all PathIx modules.

namespace pathix {

/// Object identifier. The paper assumes system-generated, globally unique
/// oids; we generate them sequentially per database instance.
using Oid = std::uint64_t;

/// Class identifier within a Schema. Dense, assigned at class creation.
using ClassId = std::int32_t;

/// Attribute position within a class definition.
using AttrId = std::int32_t;

/// Logical page identifier within a Pager.
using PageId = std::uint32_t;

inline constexpr Oid kInvalidOid = 0;
inline constexpr ClassId kInvalidClass = -1;
inline constexpr AttrId kInvalidAttr = -1;
inline constexpr PageId kInvalidPage = std::numeric_limits<PageId>::max();

}  // namespace pathix
