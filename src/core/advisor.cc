#include "core/advisor.h"

namespace pathix {

Recommendation AdviseIndexConfiguration(const PathContext& ctx,
                                        const AdvisorOptions& options) {
  Recommendation rec;
  rec.matrix = CostMatrix::Build(ctx, options.orgs);
  rec.result = options.use_branch_and_bound
                   ? SelectBranchAndBound(rec.matrix, options.capture_trace)
                   : SelectExhaustive(rec.matrix);

  for (const IndexedSubpath& part : rec.result.config.parts()) {
    rec.part_costs.push_back(ComputeSubpathCost(ctx, part.subpath.start,
                                                part.subpath.end, part.org));
    const double bytes =
        MakeOrgCostModel(part.org, ctx, part.subpath.start, part.subpath.end)
            ->StorageBytes();
    rec.part_storage_bytes.push_back(bytes);
    rec.total_storage_bytes += bytes;
  }

  const Subpath whole{1, ctx.n()};
  rec.whole_path_cost = rec.matrix.MinCost(whole);
  rec.whole_path_org = rec.matrix.MinOrg(whole);
  rec.improvement_factor =
      rec.result.cost > 0 ? rec.whole_path_cost / rec.result.cost : 1.0;
  return rec;
}

Result<Recommendation> AdviseIndexConfiguration(const Schema& schema,
                                                const Path& path,
                                                const Catalog& catalog,
                                                const LoadDistribution& load,
                                                const AdvisorOptions& options) {
  Result<PathContext> ctx = PathContext::Build(schema, path, catalog, load,
                                               options.query_profile);
  if (!ctx.ok()) return ctx.status();
  return AdviseIndexConfiguration(ctx.value(), options);
}

}  // namespace pathix
