#pragma once

#include <vector>

#include "core/cost_matrix.h"
#include "core/optimizer.h"
#include "costmodel/path_context.h"

/// \file advisor.h
/// \brief High-level facade: the full pipeline of Section 5 — build the
/// PathContext, the Cost_Matrix, run Opt_Ind_Con — plus the comparison
/// against the best single whole-path index that Example 5.1 reports.

namespace pathix {

/// Tuning knobs for the advisor.
struct AdvisorOptions {
  /// Candidate organizations (matrix columns). Adding organizations does not
  /// change the algorithm, as the paper notes in the abstract.
  std::vector<IndexOrg> orgs = {IndexOrg::kMX, IndexOrg::kMIX, IndexOrg::kNIX};
  /// false switches Opt_Ind_Con to exhaustive enumeration (testing).
  bool use_branch_and_bound = true;
  bool capture_trace = false;
  /// Predicate shape against the ending attribute (range extension).
  QueryProfile query_profile;
};

/// Advisor output for one path.
struct Recommendation {
  CostMatrix matrix;
  OptimizeResult result;                  ///< the optimal configuration
  std::vector<SubpathCost> part_costs;    ///< breakdown per chosen subpath
  std::vector<double> part_storage_bytes; ///< estimated index bytes per part
  double total_storage_bytes = 0;

  /// Best organization when the whole path is covered by a single index
  /// (the baseline the paper compares against: "without index
  /// configurations the whole path would be indexed by one index type").
  IndexOrg whole_path_org = IndexOrg::kNIX;
  double whole_path_cost = 0;

  /// whole_path_cost / result.cost (Example 5.1's factor 2.7).
  double improvement_factor = 1;
};

/// Runs the full selection pipeline for one path.
Result<Recommendation> AdviseIndexConfiguration(
    const Schema& schema, const Path& path, const Catalog& catalog,
    const LoadDistribution& load, const AdvisorOptions& options = {});

/// As above but over an already-built context (avoids rebinding statistics
/// in parameter sweeps).
Recommendation AdviseIndexConfiguration(const PathContext& ctx,
                                        const AdvisorOptions& options = {});

}  // namespace pathix
