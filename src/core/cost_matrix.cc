#include "core/cost_matrix.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace pathix {

CostMatrix CostMatrix::Build(const PathContext& ctx,
                             std::vector<IndexOrg> orgs) {
  CostMatrix m;
  m.n_ = ctx.n();
  m.orgs_ = std::move(orgs);
  m.subpaths_ = EnumerateSubpaths(m.n_);
  for (const Subpath& sp : m.subpaths_) {
    std::vector<double> row;
    row.reserve(m.orgs_.size());
    for (IndexOrg org : m.orgs_) {
      row.push_back(ComputeSubpathCost(ctx, sp.start, sp.end, org).total());
    }
    m.values_.push_back(std::move(row));
    m.row_labels_.push_back(
        ctx.path().SubpathBetween(sp.start, sp.end).ToString(ctx.schema()));
  }
  return m;
}

CostMatrix CostMatrix::FromValues(int n, std::vector<IndexOrg> orgs,
                                  std::vector<std::vector<double>> values,
                                  std::vector<std::string> row_labels) {
  CostMatrix m;
  m.n_ = n;
  m.orgs_ = std::move(orgs);
  m.subpaths_ = EnumerateSubpaths(n);
  PATHIX_DCHECK(values.size() == m.subpaths_.size());
  m.values_ = std::move(values);
  if (row_labels.empty()) {
    for (const Subpath& sp : m.subpaths_) {
      row_labels.push_back(ToString(sp));
    }
  }
  m.row_labels_ = std::move(row_labels);
  return m;
}

int CostMatrix::OrgColumn(IndexOrg org) const {
  for (std::size_t i = 0; i < orgs_.size(); ++i) {
    if (orgs_[i] == org) return static_cast<int>(i);
  }
  PATHIX_DCHECK(false && "organization not part of this matrix");
  return 0;
}

double CostMatrix::Cost(const Subpath& sp, IndexOrg org) const {
  return values_[SubpathRowIndex(n_, sp)][OrgColumn(org)];
}

double CostMatrix::MinCost(const Subpath& sp) const {
  const auto& row = values_[SubpathRowIndex(n_, sp)];
  return *std::min_element(row.begin(), row.end());
}

IndexOrg CostMatrix::MinOrg(const Subpath& sp) const {
  const auto& row = values_[SubpathRowIndex(n_, sp)];
  const auto it = std::min_element(row.begin(), row.end());
  return orgs_[static_cast<std::size_t>(it - row.begin())];
}

void CostMatrix::Print(std::ostream& os) const {
  std::size_t label_width = 8;
  for (const std::string& label : row_labels_) {
    label_width = std::max(label_width, label.size());
  }
  os << std::left << std::setw(static_cast<int>(label_width) + 2) << "subpath";
  for (IndexOrg org : orgs_) {
    os << std::right << std::setw(12) << pathix::ToString(org);
  }
  os << "\n";
  for (std::size_t row = 0; row < values_.size(); ++row) {
    os << std::left << std::setw(static_cast<int>(label_width) + 2)
       << row_labels_[row];
    const double min_v =
        *std::min_element(values_[row].begin(), values_[row].end());
    for (double v : values_[row]) {
      std::string cell;
      {
        std::ostringstream tmp;
        tmp << std::fixed << std::setprecision(2) << v;
        cell = tmp.str();
      }
      if (v == min_v) cell += "*";
      os << std::right << std::setw(12) << cell;
    }
    os << "\n";
  }
}

}  // namespace pathix
