#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/subpath.h"
#include "costmodel/path_context.h"
#include "costmodel/subpath_cost.h"

/// \file cost_matrix.h
/// \brief The Cost_Matrix and Min_Cost procedures of Section 5: processing
/// cost of every subpath under every candidate organization, and per-row
/// minima.

namespace pathix {

/// \brief Cost matrix: rows are the n(n+1)/2 subpaths (ordered by length,
/// then start), columns the candidate organizations.
class CostMatrix {
 public:
  /// Cost_Matrix: computes every entry from the analytic model.
  static CostMatrix Build(const PathContext& ctx,
                          std::vector<IndexOrg> orgs = {IndexOrg::kMX,
                                                        IndexOrg::kMIX,
                                                        IndexOrg::kNIX});

  /// Builds a matrix from externally supplied values (e.g. the paper's
  /// hypothetical Figure 6). \p values is indexed [row][org-column] in
  /// EnumerateSubpaths(n) order.
  static CostMatrix FromValues(int n, std::vector<IndexOrg> orgs,
                               std::vector<std::vector<double>> values,
                               std::vector<std::string> row_labels = {});

  int path_length() const { return n_; }
  const std::vector<IndexOrg>& orgs() const { return orgs_; }
  const std::vector<Subpath>& subpaths() const { return subpaths_; }

  double Cost(const Subpath& sp, IndexOrg org) const;

  /// Min_Cost: the cheapest organization for \p sp and its cost.
  double MinCost(const Subpath& sp) const;
  IndexOrg MinOrg(const Subpath& sp) const;

  const std::string& RowLabel(int row) const { return row_labels_[row]; }

  /// Renders the matrix in the style of Figures 6/8; the per-row minimum is
  /// marked with '*' (the paper underlines it).
  void Print(std::ostream& os) const;

 private:
  int OrgColumn(IndexOrg org) const;

  int n_ = 0;
  std::vector<IndexOrg> orgs_;
  std::vector<Subpath> subpaths_;
  std::vector<std::vector<double>> values_;  // [row][col]
  std::vector<std::string> row_labels_;
};

}  // namespace pathix
