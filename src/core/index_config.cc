#include "core/index_config.h"

namespace pathix {

Status IndexConfiguration::Validate(int n) const {
  if (parts_.empty()) {
    return Status::InvalidArgument("configuration has no subpaths");
  }
  int expected_start = 1;
  for (const IndexedSubpath& part : parts_) {
    if (part.subpath.start != expected_start) {
      return Status::InvalidArgument("subpaths are not contiguous at level " +
                                     std::to_string(expected_start));
    }
    if (part.subpath.end < part.subpath.start || part.subpath.end > n) {
      return Status::InvalidArgument("subpath out of range: " +
                                     pathix::ToString(part.subpath));
    }
    expected_start = part.subpath.end + 1;
  }
  if (expected_start != n + 1) {
    return Status::InvalidArgument("configuration does not cover the path");
  }
  return Status::OK();
}

std::string IndexConfiguration::ToString() const {
  std::string out = "{";
  for (std::size_t i = 0; i < parts_.size(); ++i) {
    if (i > 0) out += ", ";
    out += "(" + pathix::ToString(parts_[i].subpath) + ", " +
           pathix::ToString(parts_[i].org) + ")";
  }
  out += "}";
  return out;
}

std::string IndexConfiguration::ToString(const Schema& schema,
                                         const Path& path) const {
  std::string out = "{";
  for (std::size_t i = 0; i < parts_.size(); ++i) {
    if (i > 0) out += ", ";
    const Subpath& sp = parts_[i].subpath;
    out += "(" + path.SubpathBetween(sp.start, sp.end).ToString(schema) +
           ", " + pathix::ToString(parts_[i].org) + ")";
  }
  out += "}";
  return out;
}

}  // namespace pathix
