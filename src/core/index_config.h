#pragma once

#include <string>
#include <vector>

#include "core/subpath.h"
#include "costmodel/index_org.h"
#include "schema/path.h"

/// \file index_config.h
/// \brief Index configurations (Definition 4.1): a split of a path into
/// consecutive subpaths, each allocated one index organization.

namespace pathix {

/// One (S_i, X_i) pair of Definition 4.1.
struct IndexedSubpath {
  Subpath subpath;
  IndexOrg org = IndexOrg::kMX;

  bool operator==(const IndexedSubpath& other) const {
    return subpath == other.subpath && org == other.org;
  }
};

/// \brief An index configuration IC_m(P): an ordered sequence of indexed
/// subpaths whose concatenation is exactly the path.
class IndexConfiguration {
 public:
  IndexConfiguration() = default;
  explicit IndexConfiguration(std::vector<IndexedSubpath> parts)
      : parts_(std::move(parts)) {}

  const std::vector<IndexedSubpath>& parts() const { return parts_; }
  int degree() const { return static_cast<int>(parts_.size()); }
  bool empty() const { return parts_.empty(); }

  /// Validates Definition 4.1 for a path of length \p n: parts are in order,
  /// contiguous, and cover [1, n] exactly.
  Status Validate(int n) const;

  /// "{(S[1,1], MX), (S[2,4], NIX)}"
  std::string ToString() const;

  /// "{(Per.owns, MX), (Veh.man.divs.name, NIX)}" — resolves subpath labels
  /// against the path/schema.
  std::string ToString(const Schema& schema, const Path& path) const;

  bool operator==(const IndexConfiguration& other) const {
    return parts_ == other.parts_;
  }

 private:
  std::vector<IndexedSubpath> parts_;
};

}  // namespace pathix
