#include "core/matrix_cache.h"

namespace pathix {

std::vector<double> CostMatrixBuilder::Fingerprint(const PathContext& ctx) {
  std::vector<double> fp;
  const PhysicalParams& p = ctx.params();
  fp.insert(fp.end(),
            {static_cast<double>(ctx.n()), p.page_size, p.oid_len, p.ptr_len,
             p.key_len, p.rec_overhead, p.dir_entry_len, p.numchild_len,
             p.pr_override, p.pm_override, ctx.profile().matching_keys});
  for (int l = 1; l <= ctx.n(); ++l) {
    fp.push_back(ctx.KeyLenAt(l));
    fp.push_back(ctx.DistinctKeysLevel(l));
    const auto& level = ctx.level(l);
    fp.push_back(static_cast<double>(level.size()));
    for (const LevelClassInfo& c : level) {
      fp.insert(fp.end(), {static_cast<double>(c.cls), c.stats.n, c.stats.d,
                           c.stats.nin, c.stats.obj_len});
    }
  }
  return fp;
}

CostMatrix CostMatrixBuilder::Build(const PathContext& ctx) {
  std::vector<double> fp = Fingerprint(ctx);
  const std::vector<Subpath> subpaths = EnumerateSubpaths(ctx.n());
  if (fp != fingerprint_) {  // never empty, so the first call always misses
    ++model_rebuilds_;
    unit_.clear();
    unit_.reserve(subpaths.size());
    labels_.clear();
    labels_.reserve(subpaths.size());
    for (const Subpath& sp : subpaths) {
      std::vector<SubpathUnitCosts> row;
      row.reserve(orgs_.size());
      for (IndexOrg org : orgs_) {
        row.push_back(ComputeSubpathUnitCosts(ctx, sp.start, sp.end, org));
      }
      unit_.push_back(std::move(row));
      labels_.push_back(
          ctx.path().SubpathBetween(sp.start, sp.end).ToString(ctx.schema()));
    }
    fingerprint_ = std::move(fp);
  } else {
    ++cache_hits_;
  }

  std::vector<std::vector<double>> values;
  values.reserve(subpaths.size());
  for (std::size_t row = 0; row < subpaths.size(); ++row) {
    const Subpath& sp = subpaths[row];
    std::vector<double> cells;
    cells.reserve(orgs_.size());
    for (std::size_t col = 0; col < orgs_.size(); ++col) {
      cells.push_back(
          WeighSubpathCost(unit_[row][col], ctx, sp.start, sp.end).total());
    }
    values.push_back(std::move(cells));
  }
  return CostMatrix::FromValues(ctx.n(), orgs_, std::move(values), labels_);
}

}  // namespace pathix
