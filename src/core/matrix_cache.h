#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/cost_matrix.h"

/// \file matrix_cache.h
/// \brief Memoized Cost_Matrix construction (ROADMAP open item).
///
/// CostMatrix::Build evaluates the analytic organization models for all
/// n(n+1)/2 subpaths x |orgs| columns — O(n^2) model constructions per call.
/// The models depend only on the catalog statistics, physical parameters and
/// path structure; the load distribution enters each cell as linear weights
/// (see SubpathUnitCosts). The online selector rebuilds the matrix on every
/// drift check with *identical* statistics and *different* load estimates,
/// so CostMatrixBuilder caches the unit costs keyed by a statistics
/// fingerprint and reweighs them per call: a cache hit costs O(n^2 * |orgs|
/// * classes) multiply-adds and zero model evaluations.

namespace pathix {

/// \brief Builds CostMatrix instances, reusing unit costs across calls with
/// unchanged statistics.
///
/// Matrices produced by Build() are bit-identical to CostMatrix::Build(ctx,
/// orgs) on the same context (tests/core/matrix_cache_test.cc); only the
/// work to produce them differs.
class CostMatrixBuilder {
 public:
  explicit CostMatrixBuilder(std::vector<IndexOrg> orgs = {IndexOrg::kMX,
                                                           IndexOrg::kMIX,
                                                           IndexOrg::kNIX})
      : orgs_(std::move(orgs)) {}

  /// As CostMatrix::Build(ctx, orgs): evaluates the models if \p ctx has
  /// different statistics/structure than the previous call (a "model
  /// rebuild"), otherwise only reweighs the cached unit costs.
  CostMatrix Build(const PathContext& ctx);

  const std::vector<IndexOrg>& orgs() const { return orgs_; }

  /// Calls that had to (re)evaluate the organization models.
  std::uint64_t model_rebuilds() const { return model_rebuilds_; }
  /// Calls served entirely from cached unit costs.
  std::uint64_t cache_hits() const { return cache_hits_; }

  /// Drops the cache (the next Build() re-evaluates the models).
  void Invalidate() { fingerprint_.clear(); }

  /// Everything the unit costs depend on, flattened: path structure, class
  /// statistics, physical parameters, query profile — NOT the loads.
  /// Public so other load-factored caches (the advisor's
  /// CandidatePoolBuilder) key on the identical notion of "statistics
  /// unchanged".
  static std::vector<double> Fingerprint(const PathContext& ctx);

 private:
  std::vector<IndexOrg> orgs_;
  std::vector<double> fingerprint_;  ///< empty = no cached unit costs
  std::vector<std::vector<SubpathUnitCosts>> unit_;  ///< [row][org column]
  std::vector<std::string> labels_;  ///< rendered row labels, same lifetime
  std::uint64_t model_rebuilds_ = 0;
  std::uint64_t cache_hits_ = 0;
};

}  // namespace pathix
