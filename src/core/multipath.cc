#include "core/multipath.h"

#include <map>

namespace pathix {

Result<MultiPathRecommendation> AdviseMultiplePaths(
    const Schema& schema, const Catalog& catalog,
    const std::vector<PathWorkload>& paths, const AdvisorOptions& options) {
  if (paths.empty()) {
    return Status::InvalidArgument("no paths given");
  }
  MultiPathRecommendation out;

  struct Occurrence {
    int path_index;
    double maintain_cost;  // maintenance + boundary share of the subpath
  };
  std::map<StructuralKey, std::vector<Occurrence>> by_key;

  for (std::size_t i = 0; i < paths.size(); ++i) {
    Result<Recommendation> rec = AdviseIndexConfiguration(
        schema, paths[i].path, catalog, paths[i].load, options);
    if (!rec.ok()) return rec.status();
    out.per_path.push_back(std::move(rec).value());
    const Recommendation& r = out.per_path.back();
    out.total_cost_independent += r.result.cost;

    const auto& parts = r.result.config.parts();
    for (std::size_t p = 0; p < parts.size(); ++p) {
      const Subpath& sp = parts[p].subpath;
      const StructuralKey key = StructuralKey::ForSubpath(
          paths[i].path, sp.start, sp.end, parts[p].org);
      by_key[key].push_back(Occurrence{
          static_cast<int>(i),
          r.part_costs[p].maintain + r.part_costs[p].boundary});
    }
  }

  // Duplicates: a physically identical index maintained once serves every
  // path; keep the most expensive maintenance occurrence, save the rest.
  out.total_cost_shared = out.total_cost_independent;
  for (const auto& [key, occurrences] : by_key) {
    if (occurrences.size() < 2) continue;
    SharedIndex shared;
    shared.key = key;
    shared.label = key.Label(schema);
    double max_maint = 0;
    double sum_maint = 0;
    for (const Occurrence& occ : occurrences) {
      shared.path_indexes.push_back(occ.path_index);
      max_maint = std::max(max_maint, occ.maintain_cost);
      sum_maint += occ.maintain_cost;
    }
    shared.saved_cost = sum_maint - max_maint;
    out.total_cost_shared -= shared.saved_cost;
    out.shared.push_back(std::move(shared));
  }
  return out;
}

}  // namespace pathix
