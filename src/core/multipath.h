#pragma once

#include <string>
#include <vector>

#include "core/advisor.h"
#include "core/structural_key.h"

/// \file multipath.h
/// \brief Extension (paper's Section 6, "further research"): index selection
/// for a *set* of paths that may overlap. PathIx implements the greedy
/// sharing heuristic described in DESIGN.md §7: optimize each path
/// independently, then merge physically identical indexed subpaths (same
/// class/attribute sequence, same organization) so their storage and
/// maintenance are paid once.
///
/// This is a documented heuristic, not an algorithm from the paper.

namespace pathix {

/// One path with its own workload. \p name is an optional caller-chosen
/// identifier (spec path names; the online subsystem's SimDatabase path
/// ids); empty when the workload is anonymous.
struct PathWorkload {
  std::string name;
  Path path;
  LoadDistribution load;
};

/// A physically shared index discovered across paths. Identity is the
/// structural key (class ids + attribute sequence + organization); the label
/// is rendered from it for reporting only.
struct SharedIndex {
  StructuralKey key;              ///< physical identity of the shared index
  std::string label;              ///< e.g. "Veh.man (MIX)" — reporting only
  std::vector<int> path_indexes;  ///< which inputs use it
  double saved_cost = 0;          ///< maintenance counted once instead of k times
};

struct MultiPathRecommendation {
  std::vector<Recommendation> per_path;
  std::vector<SharedIndex> shared;
  double total_cost_independent = 0;  ///< sum of per-path optimal costs
  double total_cost_shared = 0;       ///< after merging duplicates
};

/// Runs the advisor per path and merges duplicate indexed subpaths.
Result<MultiPathRecommendation> AdviseMultiplePaths(
    const Schema& schema, const Catalog& catalog,
    const std::vector<PathWorkload>& paths, const AdvisorOptions& options = {});

}  // namespace pathix
