#include "core/optimizer.h"

#include <limits>
#include <sstream>

namespace pathix {

namespace {

/// Builds the configuration made of the given block boundaries, each block
/// taking its row-minimal organization.
IndexConfiguration ConfigFromBlocks(const CostMatrix& m,
                                    const std::vector<Subpath>& blocks) {
  std::vector<IndexedSubpath> parts;
  parts.reserve(blocks.size());
  for (const Subpath& sp : blocks) {
    parts.push_back(IndexedSubpath{sp, m.MinOrg(sp)});
  }
  return IndexConfiguration(std::move(parts));
}

double BlocksCost(const CostMatrix& m, const std::vector<Subpath>& blocks) {
  double cost = 0;
  for (const Subpath& sp : blocks) cost += m.MinCost(sp);
  return cost;
}

}  // namespace

std::string OptimizerTraceEvent::ToString() const {
  std::ostringstream os;
  switch (kind) {
    case Kind::kInitial:
      os << "initial  ";
      break;
    case Kind::kEvaluated:
      os << "evaluate ";
      break;
    case Kind::kImproved:
      os << "improve  ";
      break;
    case Kind::kPruned:
      os << "prune    ";
      break;
  }
  os << config.ToString() << "  cost=" << cost;
  return os.str();
}

OptimizeResult SelectExhaustive(const CostMatrix& matrix) {
  const int n = matrix.path_length();
  OptimizeResult result;
  // An empty path has exactly one (empty) configuration of cost 0; the
  // shift below would be UB for n <= 0.
  if (n <= 0) return result;
  // The 2^(n-1) mask enumeration overflows std::uint64_t beyond 64 levels
  // (and is intractable long before); hand such paths to the O(n^2) DP,
  // which returns the same optimal cost.
  if (n > 63) return SelectDP(matrix);
  result.cost = std::numeric_limits<double>::infinity();
  // Each bit of `mask` decides whether to split after level i+1.
  const std::uint64_t combos = std::uint64_t{1} << (n - 1);
  for (std::uint64_t mask = 0; mask < combos; ++mask) {
    std::vector<Subpath> blocks;
    blocks.reserve(static_cast<std::size_t>(n));
    int start = 1;
    for (int i = 1; i < n; ++i) {
      if (mask & (std::uint64_t{1} << (i - 1))) {
        blocks.push_back(Subpath{start, i});
        start = i + 1;
      }
    }
    blocks.push_back(Subpath{start, n});
    const double cost = BlocksCost(matrix, blocks);
    ++result.evaluated;
    if (cost < result.cost) {
      result.cost = cost;
      result.config = ConfigFromBlocks(matrix, blocks);
    }
  }
  return result;
}

namespace {

/// Recursive exploration of the tail [s, n]: first-block end runs from n-1
/// down to s (the paper's order). `prefix` holds the already-fixed blocks
/// covering [1, s-1] with accumulated cost `prefix_cost`.
class BranchAndBound {
 public:
  BranchAndBound(const CostMatrix& m, bool capture_trace)
      : m_(m), n_(m.path_length()), capture_trace_(capture_trace) {}

  OptimizeResult Run() {
    // Degree-1 configuration seeds PC_min (there is exactly one).
    const Subpath whole{1, n_};
    best_cost_ = m_.MinCost(whole);
    best_blocks_ = {whole};
    result_.evaluated = 1;
    Trace(OptimizerTraceEvent::Kind::kInitial, {whole}, best_cost_);

    std::vector<Subpath> prefix;
    Explore(1, 0.0, &prefix);

    result_.cost = best_cost_;
    result_.config = ConfigFromBlocks(m_, best_blocks_);
    return std::move(result_);
  }

 private:
  void Explore(int s, double prefix_cost, std::vector<Subpath>* prefix) {
    for (int e = n_ - 1; e >= s; --e) {
      const Subpath head{s, e};
      const double head_cost = m_.MinCost(head);
      prefix->push_back(head);
      if (prefix_cost + head_cost >= best_cost_) {
        // No configuration containing this prefix can beat PC_min.
        ++result_.pruned;
        Trace(OptimizerTraceEvent::Kind::kPruned, *prefix,
              prefix_cost + head_cost);
        prefix->pop_back();
        continue;
      }
      // Candidate: close the configuration with the tail as one block.
      const Subpath tail{e + 1, n_};
      prefix->push_back(tail);
      const double cand_cost = prefix_cost + head_cost + m_.MinCost(tail);
      ++result_.evaluated;
      Trace(OptimizerTraceEvent::Kind::kEvaluated, *prefix, cand_cost);
      if (cand_cost < best_cost_) {
        best_cost_ = cand_cost;
        best_blocks_ = *prefix;
        Trace(OptimizerTraceEvent::Kind::kImproved, *prefix, cand_cost);
      }
      prefix->pop_back();
      // Recurse: split the tail further (it has length >= 1; splittable
      // only when longer than one level).
      if (tail.length() > 1) {
        Explore(e + 1, prefix_cost + head_cost, prefix);
      }
      prefix->pop_back();
    }
  }

  void Trace(OptimizerTraceEvent::Kind kind,
             const std::vector<Subpath>& blocks, double cost) {
    if (!capture_trace_) return;
    OptimizerTraceEvent ev;
    ev.kind = kind;
    ev.config = ConfigFromBlocks(m_, blocks);
    ev.cost = cost;
    result_.trace.push_back(std::move(ev));
  }

  const CostMatrix& m_;
  const int n_;
  const bool capture_trace_;
  double best_cost_ = std::numeric_limits<double>::infinity();
  std::vector<Subpath> best_blocks_;
  OptimizeResult result_;
};

}  // namespace

OptimizeResult SelectBranchAndBound(const CostMatrix& matrix,
                                    bool capture_trace) {
  return BranchAndBound(matrix, capture_trace).Run();
}

std::vector<ScoredConfiguration> TopKConfigurations(const CostMatrix& matrix,
                                                    int k) {
  std::vector<ScoredConfiguration> top;
  if (k <= 0) return top;
  const int n = matrix.path_length();
  if (n <= 0) return top;
  if (n > 16) {
    // 2^(n-1) is no longer a ledger-capture-sized enumeration; report the
    // optimum alone rather than stalling a drift check.
    const OptimizeResult best = SelectDP(matrix);
    top.push_back(ScoredConfiguration{best.config, best.cost});
    return top;
  }
  // Same mask enumeration as SelectExhaustive, keeping the k cheapest via
  // insertion into a small sorted vector (k is single digits in practice).
  const std::uint64_t combos = std::uint64_t{1} << (n - 1);
  for (std::uint64_t mask = 0; mask < combos; ++mask) {
    std::vector<Subpath> blocks;
    blocks.reserve(static_cast<std::size_t>(n));
    int start = 1;
    for (int i = 1; i < n; ++i) {
      if (mask & (std::uint64_t{1} << (i - 1))) {
        blocks.push_back(Subpath{start, i});
        start = i + 1;
      }
    }
    blocks.push_back(Subpath{start, n});
    const double cost = BlocksCost(matrix, blocks);
    if (top.size() == static_cast<std::size_t>(k) &&
        cost >= top.back().cost) {
      continue;
    }
    // Strict < keeps the first-enumerated configuration ahead on ties.
    auto pos = top.begin();
    while (pos != top.end() && pos->cost <= cost) ++pos;
    top.insert(pos, ScoredConfiguration{ConfigFromBlocks(matrix, blocks),
                                        cost});
    if (top.size() > static_cast<std::size_t>(k)) top.pop_back();
  }
  return top;
}

OptimizeResult SelectDP(const CostMatrix& matrix) {
  const int n = matrix.path_length();
  // best[s] = cheapest cover of levels [s, n]; split[s] = end of its first
  // block. best[n+1] = 0.
  std::vector<double> best(n + 2, 0.0);
  std::vector<int> split(n + 2, 0);
  OptimizeResult result;
  for (int s = n; s >= 1; --s) {
    best[s] = std::numeric_limits<double>::infinity();
    for (int e = s; e <= n; ++e) {
      const double cost = matrix.MinCost(Subpath{s, e}) + best[e + 1];
      ++result.evaluated;  // counts DP cell evaluations, not configurations
      if (cost < best[s]) {
        best[s] = cost;
        split[s] = e;
      }
    }
  }
  std::vector<Subpath> blocks;
  blocks.reserve(static_cast<std::size_t>(n));
  for (int s = 1; s <= n; s = split[s] + 1) {
    blocks.push_back(Subpath{s, split[s]});
  }
  result.cost = best[1];
  result.config = ConfigFromBlocks(matrix, blocks);
  return result;
}

}  // namespace pathix
