#pragma once

#include <string>
#include <vector>

#include "core/cost_matrix.h"
#include "core/index_config.h"

/// \file optimizer.h
/// \brief The Opt_Ind_Con procedure of Section 5 (branch-and-bound over the
/// 2^(n-1) recombinations of a path from its subpaths), plus an exhaustive
/// enumerator and an O(n^2) dynamic-programming formulation (extension) used
/// to cross-check it.

namespace pathix {

/// One step of the branch-and-bound walkthrough (mirrors the narrative the
/// paper gives for Figure 6).
struct OptimizerTraceEvent {
  enum class Kind {
    kInitial,    ///< the degree-1 configuration that seeds PC_min
    kEvaluated,  ///< a complete candidate configuration was costed
    kImproved,   ///< the candidate became the best so far
    kPruned,     ///< a prefix was discarded: prefix cost >= PC_min
  };
  Kind kind;
  IndexConfiguration config;  ///< candidate or pruned prefix (as blocks)
  double cost = 0;            ///< candidate cost or prefix bound
  std::string ToString() const;
};

/// Result of a configuration search.
struct OptimizeResult {
  IndexConfiguration config;
  double cost = 0;
  /// Complete configurations whose cost was computed ("explored" in the
  /// paper's Example 5.1 accounting). The exhaustive search explores
  /// 2^(n-1) for 1 <= n <= 63; outside that range it returns the trivial
  /// result (n <= 0) or delegates to SelectDP, whose count is the number
  /// of DP cell evaluations.
  int evaluated = 0;
  /// Prefixes cut off by the bound (branch-and-bound only).
  int pruned = 0;
  std::vector<OptimizerTraceEvent> trace;  ///< filled when requested
};

/// Exhaustive search over all 2^(n-1) recombinations; each block uses its
/// row-minimal organization (Min_Cost). Ground truth for the tests.
OptimizeResult SelectExhaustive(const CostMatrix& matrix);

/// The paper's Opt_Ind_Con: seeds PC_min with the whole-path configuration,
/// then explores first-block splits from longest to shortest, recursing on
/// the tail, discarding any prefix whose accumulated cost already reaches
/// PC_min. Ties prune (the paper keeps the first-found optimum).
OptimizeResult SelectBranchAndBound(const CostMatrix& matrix,
                                    bool capture_trace = false);

/// Interval dynamic program: best[s] = min_e PC(S[s,e]) + best[e+1].
/// O(n^2) matrix lookups. Extension (not in the paper); returns the same
/// cost as the exhaustive search.
OptimizeResult SelectDP(const CostMatrix& matrix);

/// One recombination and its cost (TopKConfigurations).
struct ScoredConfiguration {
  IndexConfiguration config;
  double cost = 0;
};

/// The \p k cheapest recombinations of the path, cheapest first (ties keep
/// enumeration order, so the list is deterministic). Enumerates all
/// 2^(n-1) recombinations — the decision ledger's candidate capture, not a
/// hot path; for n > 16 (or k <= 0) it degrades to just the DP optimum.
std::vector<ScoredConfiguration> TopKConfigurations(const CostMatrix& matrix,
                                                    int k);

}  // namespace pathix
