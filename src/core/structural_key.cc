#include "core/structural_key.h"

#include <tuple>

namespace pathix {

StructuralKey StructuralKey::ForSubpath(const Path& path, int a, int b,
                                        IndexOrg org) {
  PATHIX_DCHECK(1 <= a && a <= b && b <= path.length());
  StructuralKey key;
  key.org = org;
  key.classes.reserve(static_cast<std::size_t>(b - a + 1));
  key.attrs.reserve(static_cast<std::size_t>(b - a + 1));
  for (int l = a; l <= b; ++l) {
    key.classes.push_back(path.class_at(l));
    key.attrs.push_back(path.attribute_at(l).name);
  }
  return key;
}

bool StructuralKey::operator==(const StructuralKey& other) const {
  return org == other.org && classes == other.classes && attrs == other.attrs;
}

bool StructuralKey::operator<(const StructuralKey& other) const {
  return std::tie(classes, attrs, org) <
         std::tie(other.classes, other.attrs, other.org);
}

std::string StructuralKey::Label(const Schema& schema) const {
  std::string out =
      classes.empty() ? "?" : schema.GetClass(classes.front()).name();
  for (const std::string& attr : attrs) {
    out += ".";
    out += attr;
  }
  out += " (";
  out += ToString(org);
  out += ")";
  return out;
}

}  // namespace pathix
