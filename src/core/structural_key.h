#pragma once

#include <string>
#include <vector>

#include "common/types.h"
#include "costmodel/index_org.h"
#include "schema/path.h"

/// \file structural_key.h
/// \brief Physical identity of an indexed subpath.
///
/// Two indexed subpaths — possibly belonging to different workload paths —
/// denote the *same physical index* exactly when they traverse the same
/// class sequence via the same attributes and use the same organization.
/// Rendered labels ("Company.divs.name (MX)") are for humans only: they
/// abbreviate the interior of the subpath, so keying shared-index detection
/// on them conflates distinct structures (e.g. subclass-typed paths) the
/// moment renderings collide. The advisor and the multi-path merge key on
/// this structural identity instead and keep labels purely for reporting.

namespace pathix {

/// \brief Identity of a physical path index: class ids, attribute names and
/// organization. Totally ordered so it can key ordered containers.
struct StructuralKey {
  std::vector<ClassId> classes;    ///< C_a ... C_b, in path order
  std::vector<std::string> attrs;  ///< A_a ... A_b, in path order
  IndexOrg org = IndexOrg::kMX;

  /// The key of the subpath [a, b] (1-based, inclusive) of \p path indexed
  /// with \p org.
  static StructuralKey ForSubpath(const Path& path, int a, int b,
                                  IndexOrg org);

  bool operator==(const StructuralKey& other) const;
  bool operator<(const StructuralKey& other) const;

  /// Human-readable rendering, e.g. "Company.divs.name (MX)"; reporting
  /// only, never identity.
  std::string Label(const Schema& schema) const;
};

}  // namespace pathix
