#include "core/subpath.h"

namespace pathix {

std::vector<Subpath> EnumerateSubpaths(int n) {
  std::vector<Subpath> out;
  out.reserve(NumSubpaths(n));
  for (int len = 1; len <= n; ++len) {
    for (int start = 1; start + len - 1 <= n; ++start) {
      out.push_back(Subpath{start, start + len - 1});
    }
  }
  return out;
}

int NumSubpaths(int n) { return n * (n + 1) / 2; }

int SubpathRowIndex(int n, const Subpath& sp) {
  PATHIX_DCHECK(1 <= sp.start && sp.start <= sp.end && sp.end <= n);
  const int len = sp.length();
  // Rows of lengths 1..len-1 precede: sum_{k=1}^{len-1} (n - k + 1).
  int row = 0;
  for (int k = 1; k < len; ++k) row += n - k + 1;
  return row + (sp.start - 1);
}

std::string ToString(const Subpath& sp) {
  return "S[" + std::to_string(sp.start) + "," + std::to_string(sp.end) + "]";
}

}  // namespace pathix
