#pragma once

#include <string>
#include <vector>

#include "common/status.h"

/// \file subpath.h
/// \brief Subpath ranges over a path of length n and their enumeration.
///
/// A path of length n has n(n+1)/2 subpaths (n of length 1, n-1 of length 2,
/// ...), which form the rows of the algorithm's Cost_Matrix (Section 5).

namespace pathix {

/// \brief A contiguous range [start, end] of path levels, 1-based inclusive,
/// identifying the subpath C_start.A_start....A_end.
struct Subpath {
  int start = 1;
  int end = 1;

  int length() const { return end - start + 1; }
  bool operator==(const Subpath& other) const {
    return start == other.start && end == other.end;
  }
};

/// All subpaths of a path of length \p n, ordered by (length, start) — the
/// paper's S_1 ... S_{n(n+1)/2} numbering.
std::vector<Subpath> EnumerateSubpaths(int n);

/// Number of subpaths of a path of length \p n: n(n+1)/2.
int NumSubpaths(int n);

/// Dense row index of \p sp within EnumerateSubpaths(n).
int SubpathRowIndex(int n, const Subpath& sp);

/// "S[2,4]"-style rendering for diagnostics.
std::string ToString(const Subpath& sp);

}  // namespace pathix
