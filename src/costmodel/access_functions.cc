#include "costmodel/access_functions.h"

#include <algorithm>

#include "common/math.h"

namespace pathix {

double CRL(const BTreeModel& ix) { return CRLWithPr(ix, ix.pr()); }

double CRLWithPr(const BTreeModel& ix, double pr) {
  const double h = ix.height();
  if (!ix.multi_page_record()) return h;
  return h - 1 + pr;
}

double CML(const BTreeModel& ix) { return CMLWithPm(ix, ix.pm()); }

double CMLWithPm(const BTreeModel& ix, double pm) {
  const double h = ix.height();
  if (!ix.multi_page_record()) return h + 1;  // +1 rewrites the leaf page
  return h - 1 + 2 * pm;                      // fetch + rewrite pm pages
}

namespace {

/// Sum of npa over the non-leaf levels, propagating t upward
/// (t_{k-1} = npa(t_k, n_k, p_k)). \p t_at_parent is the number of records
/// needed at the level just above the leaves.
double NonLeafTraversal(const BTreeModel& ix, double t_at_parent) {
  const auto& levels = ix.levels();
  double cost = 0;
  double tk = t_at_parent;
  // levels.back() is the leaf level; iterate the non-leaf levels upward.
  for (int k = static_cast<int>(levels.size()) - 2; k >= 0; --k) {
    const double a = YaoNpa(tk, levels[k].records, levels[k].pages);
    cost += a;
    tk = a;
  }
  return cost;
}

}  // namespace

double CRT(const BTreeModel& ix, double t) {
  return CRTWithPr(ix, t, ix.pr());
}

double CRTWithPr(const BTreeModel& ix, double t, double pr) {
  if (t <= 0) return 0;
  const auto& leaf = ix.levels().back();
  if (!ix.multi_page_record()) {
    const double leaf_cost = YaoNpa(t, leaf.records, leaf.pages);
    return leaf_cost + NonLeafTraversal(ix, leaf_cost);
  }
  // Multi-page records: t_X * pr_X at the leaves; one parent entry per
  // record start above.
  return t * pr + NonLeafTraversal(ix, t);
}

double CMT(const BTreeModel& ix, double t) {
  return CMTWithPm(ix, t, ix.pm());
}

double CMTWithPm(const BTreeModel& ix, double t, double pm) {
  if (t <= 0) return 0;
  const auto& leaf = ix.levels().back();
  if (!ix.multi_page_record()) {
    const double leaf_pages = YaoNpa(t, leaf.records, leaf.pages);
    // Fetch the leaf pages, then rewrite each once all its records are done.
    return 2 * leaf_pages + NonLeafTraversal(ix, leaf_pages);
  }
  return 2 * t * pm + NonLeafTraversal(ix, t);
}

double CRR(const BTreeModel& aux, double x) {
  if (x <= 0) return 0;
  const auto& leaf = aux.levels().back();
  if (!aux.multi_page_record()) {
    return YaoNpa(x, leaf.records, leaf.pages);
  }
  return x * aux.pm();
}

}  // namespace pathix
