#pragma once

#include "costmodel/btree_model.h"

/// \file access_functions.h
/// \brief The four access-cost functions of Section 3.1 (page accesses):
///
///  - CRL: retrieve one specified index record
///  - CML: maintain one specified index record
///  - CRT: retrieve a set of index records
///  - CMT: maintain a set of index records
///
/// plus CRR, the auxiliary-record rewrite cost used by the NIX model.
/// All costs are expected page accesses; fractional values arise from Yao's
/// formula and fractional workload weights.

namespace pathix {

/// CRL(h_X, pr_X): h_X when the record fits one page, else h_X - 1 + pr_X
/// (descend the non-leaf levels, then fetch pr_X pages of the record).
double CRL(const BTreeModel& ix);

/// CRL with an explicit pr (e.g. a partial NIX primary-record read).
double CRLWithPr(const BTreeModel& ix, double pr);

/// CML(h_X, pm_X): h_X + 1 when the record fits one page (the +1 rewrites
/// the leaf page), else h_X - 1 + 2 pm_X (fetch and rewrite the modified
/// pages of the record).
double CML(const BTreeModel& ix);

/// CML with an explicit pm. Definition 4.2 uses pm = ceil(ln/p) for CMD,
/// since deleting a whole record touches every page it occupies.
double CMLWithPm(const BTreeModel& ix, double pm);

/// CRT(h_X, t_X, pr_X): retrieve t_X index records. Implemented as the
/// paper's level recursion: t_h = t_X, t_{k-1} = npa(t_k, n_k, p_k),
/// summing npa per level; multi-page records replace the leaf term with
/// t_X * pr_X.
double CRT(const BTreeModel& ix, double t);

/// CRT with an explicit per-record pr (e.g. partial NIX primary reads).
double CRTWithPr(const BTreeModel& ix, double t, double pr);

/// CMT(h_X, t_X, pm_X): maintain t_X index records: CRT's traversal plus a
/// rewrite of each touched leaf page (records <= page), else 2 t_X pm_X at
/// the leaves.
double CMT(const BTreeModel& ix, double t);

/// CMT with an explicit per-record pm. Section 3.1 notes that the pages
/// retrieved and rewritten to maintain a NIX primary record differ between
/// insertion (append: the default pm) and deletion (locate the oid in the
/// class slice: pmd_NIX = prd_NIX).
double CMTWithPm(const BTreeModel& ix, double t, double pm);

/// CRR(x): rewrite x auxiliary index records stored on an auxiliary index
/// with \p aux geometry: npa(x, n_az, pl_az) page writes when records fit a
/// page, else x * pm per record.
double CRR(const BTreeModel& aux, double x);

}  // namespace pathix
