#include "costmodel/btree_model.h"

#include <algorithm>
#include <cmath>

#include "common/math.h"
#include "common/status.h"

namespace pathix {

BTreeModel BTreeModel::Build(double num_records, double record_len,
                             double key_len, const PhysicalParams& params) {
  BTreeModel m;
  m.page_size_ = params.page_size;
  m.num_records_ = std::max(0.0, num_records);
  m.record_len_ = std::max(1.0, record_len);

  const double p = params.page_size;
  double leaf_pages;
  double parent_entries;  // entries the level above the leaves must hold
  if (m.num_records_ < 1.0) {
    // Empty or near-empty index: a single (possibly empty) leaf page.
    m.levels_ = {{m.num_records_, 1}};
    m.pr_ = 1;
    m.pm_ = 1;
    return m;
  }
  if (m.record_len_ <= p) {
    const double per_page = std::max(1.0, std::floor(p / m.record_len_));
    leaf_pages = CeilDiv(m.num_records_, per_page);
    parent_entries = leaf_pages;
  } else {
    // Each record occupies its own chain of ceil(ln/p) pages; the level
    // above addresses record starts.
    leaf_pages = m.num_records_ * CeilDiv(m.record_len_, p);
    parent_entries = m.num_records_;
  }
  m.levels_ = {{m.num_records_, leaf_pages}};

  const double fanout =
      std::max(2.0, std::floor(p / (key_len + params.ptr_len)));
  double entries = parent_entries;
  while (entries > 1.0) {
    const double pages = CeilDiv(entries, fanout);
    m.levels_.insert(m.levels_.begin(), BTreeLevelInfo{entries, pages});
    if (pages <= 1.0) break;
    entries = pages;
  }

  m.pr_ = params.pr_override > 0 ? params.pr_override : m.record_pages();
  m.pm_ = params.pm_override > 0 ? params.pm_override : 1.0;
  return m;
}

double BTreeModel::record_pages() const {
  return std::max(1.0, CeilDiv(record_len_, page_size_));
}

}  // namespace pathix
