#pragma once

#include <vector>

#include "catalog/catalog.h"

/// \file btree_model.h
/// \brief Analytic model of a B+-tree-organized index (Section 3.1).
///
/// Indices are B+-trees with chained leaf nodes. Leaf nodes hold the index
/// records (one per distinct key value); non-leaf records are
/// (attribute value, pointer) pairs. The paper defers the height/occupancy
/// computation to its technical report [7]; we use the standard bottom-up
/// construction (DESIGN.md §4.1).

namespace pathix {

/// Occupancy of one B+-tree level.
struct BTreeLevelInfo {
  double records;  ///< index records (leaf) or child pointers (non-leaf)
  double pages;
};

/// \brief Derived shape of one index: height, per-level occupancy, and the
/// average index-record geometry the access-cost functions need.
class BTreeModel {
 public:
  BTreeModel() = default;

  /// Models an index holding \p num_records leaf records of average length
  /// \p record_len bytes, keyed by values of \p key_len bytes.
  static BTreeModel Build(double num_records, double record_len,
                          double key_len, const PhysicalParams& params);

  /// h_X: number of levels, leaf level included. At least 1.
  int height() const { return static_cast<int>(levels_.size()); }

  /// Levels from root (front) to leaves (back).
  const std::vector<BTreeLevelInfo>& levels() const { return levels_; }

  double num_records() const { return num_records_; }
  double record_len() const { return record_len_; }
  double leaf_pages() const { return levels_.back().pages; }
  double page_size() const { return page_size_; }

  /// True when one index record does not fit a page (ln_X > p).
  bool multi_page_record() const { return record_len_ > page_size_; }

  /// ceil(ln_X / p): pages occupied by one index record.
  double record_pages() const;

  /// pr_X: average pages retrieved for one (multi-page) record. Defaults to
  /// the whole record unless PhysicalParams::pr_override is set.
  double pr() const { return pr_; }
  /// pm_X: average pages maintained in one (multi-page) record. Defaults to
  /// 1 (the modified page) unless PhysicalParams::pm_override is set.
  double pm() const { return pm_; }

 private:
  std::vector<BTreeLevelInfo> levels_{{0, 1}};
  double num_records_ = 0;
  double record_len_ = 0;
  double page_size_ = 4096;
  double pr_ = 1;
  double pm_ = 1;
};

}  // namespace pathix
