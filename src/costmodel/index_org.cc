#include "costmodel/index_org.h"

namespace pathix {

const char* ToString(IndexOrg org) {
  switch (org) {
    case IndexOrg::kMX:
      return "MX";
    case IndexOrg::kMIX:
      return "MIX";
    case IndexOrg::kNIX:
      return "NIX";
    case IndexOrg::kNone:
      return "NONE";
    case IndexOrg::kNX:
      return "NX";
    case IndexOrg::kPX:
      return "PX";
  }
  return "?";
}

}  // namespace pathix
