#pragma once

#include <string>

/// \file index_org.h
/// \brief The index organizations of Section 2.2.
///
/// SIX and IIX are degenerate cases of MX / MIX for subpaths of length one
/// (the paper reduces the five techniques to three for the selection
/// algorithm); kNone is the paper's future-work extension of allocating no
/// index on a subpath.

namespace pathix {

enum class IndexOrg {
  kMX,    ///< multi-index: one simple index per class in scope(P)
  kMIX,   ///< multi-inherited index: one inherited index per class of class(P)
  kNIX,   ///< nested inherited index: primary + auxiliary index on the path
  kNone,  ///< no index (navigational scans); extension, off by default
  // Section 6 extension: "the incorporation of path and nested indices
  // [6,2] can be done straightforward". Model-only candidates (the paper's
  // references are Bertino's nested/path indexes); see nx_model.h/px_model.h.
  kNX,    ///< nested index: ending value -> starting-class oids only
  kPX,    ///< path index: ending value -> full path instantiations
};

/// Short display name ("MX", "MIX", "NIX", "NONE").
const char* ToString(IndexOrg org);

/// The paper's three candidate organizations for the selection algorithm.
inline constexpr IndexOrg kPaperOrgs[] = {IndexOrg::kMX, IndexOrg::kMIX,
                                          IndexOrg::kNIX};

}  // namespace pathix
