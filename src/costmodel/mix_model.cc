#include "costmodel/mix_model.h"

namespace pathix {

MIXCostModel::MIXCostModel(const PathContext& ctx, int a, int b)
    : OrgCostModel(ctx, a, b) {
  const PhysicalParams& pp = ctx.params();
  for (int l = a; l <= b; ++l) {
    // One record per distinct A_l value across the hierarchy; the record
    // groups, per class of the hierarchy, the oids holding the value
    // (class-hierarchy index of Kim et al.).
    double oids_per_record = 0;
    for (const LevelClassInfo& c : ctx.level(l)) oids_per_record += c.k;
    const double ln = ctx.KeyLenAt(l) + pp.rec_overhead +
                      ctx.nc(l) * pp.dir_entry_len +
                      oids_per_record * pp.oid_len;
    trees_.push_back(BTreeModel::Build(ctx.DistinctKeysLevel(l), ln,
                                       ctx.KeyLenAt(l), pp));
  }
}

double MIXCostModel::QueryCost(int l, int j) const {
  (void)j;  // one index serves every class of the hierarchy
  return QueryCostHierarchy(l);
}

double MIXCostModel::QueryCostHierarchy(int l) const {
  // CRMIX (Section 3.1): sum_{i=l}^{b-1} CRT(h_i, noid+_{i+1}) + CRL(h_b);
  // with an equality predicate noid+_{b+1} = 1 at the ending level, so the
  // last term is CRT(.., 1) == CRL.
  double cost = 0;
  for (int i = l; i <= b_; ++i) {
    cost += CRT(tree(i), ctx_.noidplus(i + 1));
  }
  return cost;
}

double MIXCostModel::InsertCost(int l, int j) const {
  return CMT(tree(l), ctx_.level(l)[j].stats.nin);
}

double MIXCostModel::DeleteCost(int l, int j) const {
  double cost = CMT(tree(l), ctx_.level(l)[j].stats.nin);
  if (l > a_) {
    // Remove the deleted oid's record from the single inherited index of
    // the previous level (CMMIX, Section 3.1).
    cost += CML(tree(l - 1));
  }
  return cost;
}

double MIXCostModel::BoundaryDeleteCost() const {
  if (b_ == ctx_.n()) return 0;
  return CMLWithPm(tree(b_), tree(b_).record_pages());
}

double MIXCostModel::StorageBytes() const {
  double bytes = 0;
  for (const BTreeModel& t : trees_) {
    double pages = 0;
    for (const BTreeLevelInfo& lvl : t.levels()) pages += lvl.pages;
    bytes += pages * ctx_.params().page_size;
  }
  return bytes;
}

}  // namespace pathix
