#pragma once

#include <vector>

#include "costmodel/access_functions.h"
#include "costmodel/org_model.h"

/// \file mix_model.h
/// \brief Multi-inherited-index (MIX) cost model: one inherited index (IIX)
/// per class of class(P) — a single B+-tree per level whose records hold the
/// oids of the whole inheritance hierarchy, grouped per class. For a subpath
/// of length one this degenerates to an IIX (or a SIX without subclasses).

namespace pathix {

class MIXCostModel : public OrgCostModel {
 public:
  MIXCostModel(const PathContext& ctx, int a, int b);

  double QueryCost(int l, int j) const override;
  double QueryCostHierarchy(int l) const override;
  double InsertCost(int l, int j) const override;
  double DeleteCost(int l, int j) const override;
  double BoundaryDeleteCost() const override;
  double StorageBytes() const override;

  const BTreeModel& tree(int l) const { return trees_[l - a_]; }

 private:
  std::vector<BTreeModel> trees_;  // [l - a]
};

}  // namespace pathix
