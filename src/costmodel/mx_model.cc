#include "costmodel/mx_model.h"

namespace pathix {

MXCostModel::MXCostModel(const PathContext& ctx, int a, int b)
    : OrgCostModel(ctx, a, b) {
  const PhysicalParams& pp = ctx.params();
  trees_.reserve(static_cast<std::size_t>(b - a + 1));
  for (int l = a; l <= b; ++l) {
    std::vector<BTreeModel> level_trees;
    level_trees.reserve(ctx.level(l).size());
    for (const LevelClassInfo& c : ctx.level(l)) {
      // One index record per distinct value of A_l held by the class; the
      // record associates the value with the k_{l,j} oids holding it.
      const double ln = ctx.KeyLenAt(l) + pp.rec_overhead + c.k * pp.oid_len;
      level_trees.push_back(
          BTreeModel::Build(c.stats.d, ln, ctx.KeyLenAt(l), pp));
    }
    trees_.push_back(std::move(level_trees));
  }
}

double MXCostModel::DownstreamChainCost(int l) const {
  // For each level i below l, every class index of the level is probed with
  // the noid+_{i+1} key values produced downstream (Section 3.1, CRMX).
  double cost = 0;
  for (int i = l + 1; i <= b_; ++i) {
    const double keys = ctx_.noidplus(i + 1);
    for (int j = 0; j < ctx_.nc(i); ++j) {
      cost += CRT(tree(i, j), keys);
    }
  }
  return cost;
}

double MXCostModel::QueryCost(int l, int j) const {
  return CRT(tree(l, j), ctx_.noidplus(l + 1)) + DownstreamChainCost(l);
}

double MXCostModel::QueryCostHierarchy(int l) const {
  double cost = 0;
  const double keys = ctx_.noidplus(l + 1);
  for (int j = 0; j < ctx_.nc(l); ++j) {
    cost += CRT(tree(l, j), keys);
  }
  return cost + DownstreamChainCost(l);
}

double MXCostModel::InsertCost(int l, int j) const {
  // The new object's nin_{l,j} attribute values gain one oid each; only the
  // class's own index is touched (Section 3.1).
  return CMT(tree(l, j), ctx_.level(l)[j].stats.nin);
}

double MXCostModel::DeleteCost(int l, int j) const {
  double cost = CMT(tree(l, j), ctx_.level(l)[j].stats.nin);
  if (l > a_) {
    // The deleted oid is a key value in the indexes on A_{l-1} of the
    // previous class and all its subclasses; its record is removed from
    // each (Section 3.1: sum_j CML(h_{l-1,j})).
    for (int j2 = 0; j2 < ctx_.nc(l - 1); ++j2) {
      cost += CML(tree(l - 1, j2));
    }
  }
  return cost;
}

double MXCostModel::BoundaryDeleteCost() const {
  if (b_ == ctx_.n()) return 0;
  // Definition 4.2 / CMD_MX: deleting an object of C_{b+1} removes its key
  // record from the indexes on A_b; all pages of the record are touched.
  double cost = 0;
  for (int j = 0; j < ctx_.nc(b_); ++j) {
    cost += CMLWithPm(tree(b_, j), tree(b_, j).record_pages());
  }
  return cost;
}

double MXCostModel::StorageBytes() const {
  double bytes = 0;
  for (const auto& level_trees : trees_) {
    for (const BTreeModel& t : level_trees) {
      double pages = 0;
      for (const BTreeLevelInfo& lvl : t.levels()) pages += lvl.pages;
      bytes += pages * ctx_.params().page_size;
    }
  }
  return bytes;
}

}  // namespace pathix
