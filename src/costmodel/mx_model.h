#pragma once

#include <vector>

#include "costmodel/access_functions.h"
#include "costmodel/org_model.h"

/// \file mx_model.h
/// \brief Multi-index (MX) cost model: one simple index (SIX) on the path
/// attribute of *each class in the scope* of the subpath. For a subpath of
/// length one over a class without subclasses this degenerates to a SIX.

namespace pathix {

class MXCostModel : public OrgCostModel {
 public:
  MXCostModel(const PathContext& ctx, int a, int b);

  double QueryCost(int l, int j) const override;
  double QueryCostHierarchy(int l) const override;
  double InsertCost(int l, int j) const override;
  double DeleteCost(int l, int j) const override;
  double BoundaryDeleteCost() const override;
  double StorageBytes() const override;

  /// The modelled B+-tree for class j of level l (testing / reporting).
  const BTreeModel& tree(int l, int j) const {
    return trees_[l - a_][j];
  }

 private:
  /// Lookup cost for all levels strictly below \p l down to the subpath end
  /// (the "chain" part shared by QueryCost and QueryCostHierarchy).
  double DownstreamChainCost(int l) const;

  std::vector<std::vector<BTreeModel>> trees_;  // [l - a][j]
};

}  // namespace pathix
