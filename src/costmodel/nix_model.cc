#include "costmodel/nix_model.h"

#include <algorithm>
#include <cmath>

#include "common/math.h"

namespace pathix {

NIXCostModel::NIXCostModel(const PathContext& ctx, int a, int b)
    : OrgCostModel(ctx, a, b) {
  const PhysicalParams& pp = ctx.params();

  // ---- Primary index: keyed by values of A_b. One record per distinct key
  // value; the record holds, per class in scope(S), the selected oids
  // ((oid, numchild) pairs for classes with multi-valued path attributes).
  int scope_classes = 0;
  double entries_bytes = 0;
  for (int l = a; l <= b; ++l) {
    for (int j = 0; j < ctx.nc(l); ++j) {
      const LevelClassInfo& c = ctx.level(l)[j];
      const double entry_len =
          pp.oid_len + (c.stats.nin > 1.0 ? pp.numchild_len : 0.0);
      entries_bytes += ctx.NoidWithin(l, j, b) * entry_len;
      ++scope_classes;
    }
  }
  dir_bytes_ = scope_classes * pp.dir_entry_len;
  const double ln_primary =
      ctx.KeyLenAt(b) + pp.rec_overhead + dir_bytes_ + entries_bytes;
  primary_ = BTreeModel::Build(ctx.DistinctKeysLevel(b), ln_primary,
                               ctx.KeyLenAt(b), pp);

  // ---- Auxiliary index: one 3-tuple per object of levels a+1..b (the
  // subpath root hierarchy has no aggregation parents). Tuple length:
  // oid + pointer array to the nbar primary records the object appears in
  // + list of parent oids.
  double tuples = 0;
  double tuple_bytes = 0;
  for (int l = a + 1; l <= b; ++l) {
    for (int j = 0; j < ctx.nc(l); ++j) {
      const LevelClassInfo& c = ctx.level(l)[j];
      const double tlen = pp.oid_len + pp.rec_overhead +
                          ctx.Nbar(l, j, b) * pp.ptr_len +
                          ctx.Parents(l) * pp.oid_len;
      tuples += c.stats.n;
      tuple_bytes += c.stats.n * tlen;
    }
  }
  has_aux_ = tuples > 0;
  if (has_aux_) {
    aux_ = BTreeModel::Build(tuples, tuple_bytes / tuples, pp.oid_len, pp);
  }
}

double NIXCostModel::LevelPortionBytes(int l) const {
  const PhysicalParams& pp = ctx_.params();
  double bytes = 0;
  for (int j = 0; j < ctx_.nc(l); ++j) {
    const LevelClassInfo& c = ctx_.level(l)[j];
    const double entry_len =
        pp.oid_len + (c.stats.nin > 1.0 ? pp.numchild_len : 0.0);
    bytes += ctx_.NoidWithin(l, j, b_) * entry_len;
  }
  return bytes;
}

double NIXCostModel::PartialReadPages(int l) const {
  // Reading the directory plus one level's slice of the record; clamped to
  // the record's page span.
  const double needed = ctx_.KeyLenAt(b_) + ctx_.params().rec_overhead +
                        dir_bytes_ + LevelPortionBytes(l);
  const double pages = CeilDiv(needed, ctx_.params().page_size);
  return std::clamp(pages, 1.0, primary_.record_pages());
}

double NIXCostModel::AncestorSlicePages(int l) const {
  // A deletion's propagation modifies the slices of the deleted class's
  // level and of every ancestor level within the subpath.
  double needed =
      ctx_.KeyLenAt(b_) + ctx_.params().rec_overhead + dir_bytes_;
  for (int i = a_; i <= l; ++i) needed += LevelPortionBytes(i);
  const double pages = CeilDiv(needed, ctx_.params().page_size);
  return std::clamp(pages, 1.0, primary_.record_pages());
}

double NIXCostModel::QueryCost(int l, int j) const {
  (void)j;  // the primary record serves every scope class
  // One probe per key value delivered by the downstream subpaths
  // (noid+_{b+1} = 1 when b == n: the single primary lookup of Section 3.1).
  return CRTWithPr(primary_, ctx_.noidplus(b_ + 1), PartialReadPages(l));
}

double NIXCostModel::QueryCostHierarchy(int l) const {
  return CRTWithPr(primary_, ctx_.noidplus(b_ + 1), PartialReadPages(l));
}

double NIXCostModel::NarNextLevel(int l, int j) const {
  if (l >= b_) return 0;  // children of level b live outside the subpath
  const double nin = ctx_.level(l)[j].stats.nin;
  return std::min<double>(ctx_.nc(l + 1), nin);
}

double NIXCostModel::InsertCost(int l, int j) const {
  const LevelClassInfo& c = ctx_.level(l)[j];
  const bool has_own_tuple = l > a_;
  const bool has_children_tuples = l < b_;

  // Steps 2+4 (CSI24): access the children's 3-tuples to register the new
  // parent, and insert the new object's own 3-tuple (a B+-tree insertion
  // into the auxiliary index).
  double csi24 = 0;
  if (has_aux_) {
    if (has_children_tuples) {
      csi24 += CRT(aux_, c.stats.nin) + CRR(aux_, NarNextLevel(l, j));
    }
    if (has_own_tuple) csi24 += CML(aux_);
  }
  // Step 3 (CSI3): add the oid to the nbar primary records it now reaches.
  const double csi3 = CMT(primary_, ctx_.Nbar(l, j, b_));
  return csi24 + csi3;
}

double NIXCostModel::DeleteCost(int l, int j) const {
  const LevelClassInfo& c = ctx_.level(l)[j];
  const bool has_own_tuple = l > a_;
  const bool has_children_tuples = l < b_;

  // Step 2 (CSD2): fetch the children's 3-tuples (drop the parent link),
  // rewrite the modified auxiliary records, and remove the object's own
  // 3-tuple (a B+-tree deletion from the auxiliary index).
  double csd2 = 0;
  if (has_aux_) {
    if (has_children_tuples) {
      csd2 += CRT(aux_, c.stats.nin) + CRR(aux_, NarNextLevel(l, j));
    }
    if (has_own_tuple) csd2 += CML(aux_);
  }

  // Step 3a (CS3a): maintain the nbar primary records containing the oid.
  // Deleting an oid locates it in its class slice AND decrements the
  // numchild counters of its ancestors in the same records (step 3(a)ii):
  // pmd_NIX = prd_NIX covers the slices of levels a..l (Section 3.1).
  const double cs3a =
      CMTWithPm(primary_, ctx_.Nbar(l, j, b_), AncestorSlicePages(l));

  // Steps 3b/3c (CU3bc + min(SA1, SA2)): propagate numchild decrements up
  // the parent chain; parents at levels a+1..l-1 own auxiliary 3-tuples.
  double cu3bc = 0;
  double total_parent_tuples = 0;
  double total_parent_records = 0;
  if (has_aux_ && has_own_tuple) {
    double par = ctx_.Parents(l);  // parents at level l-1
    for (int i = l - 1; i >= a_; --i) {
      if (i > a_) {
        const double narp = std::min<double>(ctx_.nc(i), par);
        cu3bc += CRR(aux_, narp);
        total_parent_tuples += par;
        total_parent_records += narp;
      }
      if (i > 1) par *= ctx_.S(i - 1) > 0 ? ctx_.S(i - 1) : 0;
    }
  }
  double locate = 0;
  if (total_parent_tuples > 0) {
    // SA1: scan the auxiliary leaf level for the parent tuples; SA2: reach
    // them through the pointers stored in the primary records.
    const auto& leaf = aux_.levels().back();
    const double sa1 = YaoNpa(total_parent_tuples, leaf.records, leaf.pages);
    const double sa2 = aux_.multi_page_record()
                           ? total_parent_records
                           : YaoNpa(total_parent_records, leaf.records,
                                    leaf.pages);
    locate = std::min(sa1, sa2);
  }
  return csd2 + cs3a + cu3bc + locate;
}

double NIXCostModel::BoundaryDeleteCost() const {
  if (b_ == ctx_.n()) return 0;
  // CMD_NIX (Definition 4.2): delete the whole primary record keyed by the
  // removed oid, then delete the pointers to it from the auxiliary 3-tuples
  // of every scope object listed in it (delpoint).
  double cost = CMLWithPm(primary_, primary_.record_pages());
  if (has_aux_) {
    double tuples = 0;
    for (int l = a_ + 1; l <= b_; ++l) {
      for (int j = 0; j < ctx_.nc(l); ++j) {
        tuples += ctx_.NoidWithin(l, j, b_);
      }
    }
    if (tuples > 0) {
      const auto& leaf = aux_.levels().back();
      tuples = std::min(tuples, leaf.records);
      // Fetch + rewrite the touched auxiliary pages.
      cost += 2 * YaoNpa(tuples, leaf.records, leaf.pages);
    }
  }
  return cost;
}

double NIXCostModel::StorageBytes() const {
  double pages = 0;
  for (const BTreeLevelInfo& lvl : primary_.levels()) pages += lvl.pages;
  if (has_aux_) {
    for (const BTreeLevelInfo& lvl : aux_.levels()) pages += lvl.pages;
  }
  return pages * ctx_.params().page_size;
}

}  // namespace pathix
