#pragma once

#include "costmodel/access_functions.h"
#include "costmodel/org_model.h"

/// \file nix_model.h
/// \brief Nested-inherited-index (NIX) cost model (Section 3.1, Figures
/// 3-5): a *primary* B+-tree keyed by the subpath's ending-attribute values
/// whose records list, per class in scope, the oids of all objects reaching
/// the key value; plus an *auxiliary* index mapping each object (of every
/// scope class except the subpath root hierarchy) to a 3-tuple
/// (oid, pointers to primary records, list of aggregation parents).
///
/// Queries are a single primary lookup regardless of the class queried;
/// maintenance pays for primary-record surgery plus the parent-chain
/// propagation through the auxiliary index (steps CSD2/CSD3 for deletion,
/// CSI24/CSI3 for insertion).
///
/// For a subpath of length one the auxiliary index is empty and the
/// organization degenerates to an inherited index, exactly as Example 5.1
/// prescribes.

namespace pathix {

class NIXCostModel : public OrgCostModel {
 public:
  NIXCostModel(const PathContext& ctx, int a, int b);

  double QueryCost(int l, int j) const override;
  double QueryCostHierarchy(int l) const override;
  double InsertCost(int l, int j) const override;
  double DeleteCost(int l, int j) const override;
  double BoundaryDeleteCost() const override;
  double StorageBytes() const override;

  const BTreeModel& primary() const { return primary_; }
  const BTreeModel& aux() const { return aux_; }
  bool has_aux() const { return has_aux_; }

 private:
  /// Bytes of one primary record devoted to the classes of level l
  /// (hierarchy slice), used for partial-record retrieval (pr_NIX).
  double LevelPortionBytes(int l) const;

  /// Pages retrieved when the query needs only level \p l's slice of a
  /// multi-page primary record.
  double PartialReadPages(int l) const;

  /// Pages maintained when a deletion at level \p l propagates through the
  /// slices of levels a..l (pmd_NIX = prd_NIX).
  double AncestorSlicePages(int l) const;

  /// nar_{l+1}: auxiliary records touched when distributing nin_{l,j}
  /// child references over the classes of level l+1 (paper's abs() sum,
  /// assuming an even spread).
  double NarNextLevel(int l, int j) const;

  BTreeModel primary_;
  BTreeModel aux_;
  bool has_aux_ = false;
  double dir_bytes_ = 0;  ///< class-directory bytes of one primary record
};

}  // namespace pathix
