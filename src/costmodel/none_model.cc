#include "costmodel/none_model.h"

#include <algorithm>
#include <cmath>

#include "common/math.h"

namespace pathix {

double NoneCostModel::ClassPages(int l, int j) const {
  const LevelClassInfo& c = ctx_.level(l)[j];
  const double per_page = std::max(
      1.0, std::floor(ctx_.params().page_size / std::max(1.0, c.stats.obj_len)));
  return CeilDiv(c.stats.n, per_page);
}

double NoneCostModel::DownstreamPages(int l) const {
  // With only forward references and no index, evaluating the predicate for
  // the objects of level l requires materializing the referenced objects of
  // every deeper level of the subpath (class-at-a-time scan).
  double pages = 0;
  for (int i = l + 1; i <= b_; ++i) {
    for (int j = 0; j < ctx_.nc(i); ++j) pages += ClassPages(i, j);
  }
  return pages;
}

double NoneCostModel::QueryCost(int l, int j) const {
  return ClassPages(l, j) + DownstreamPages(l);
}

double NoneCostModel::QueryCostHierarchy(int l) const {
  double pages = 0;
  for (int j = 0; j < ctx_.nc(l); ++j) pages += ClassPages(l, j);
  return pages + DownstreamPages(l);
}

double NoneCostModel::DeleteCost(int l, int j) const {
  (void)l;
  (void)j;
  return 0;
}

}  // namespace pathix
