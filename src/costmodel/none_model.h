#pragma once

#include "costmodel/org_model.h"

/// \file none_model.h
/// \brief The "no index on this subpath" organization — the paper's stated
/// future-work extension (Section 6). Queries fall back to navigational
/// scans (the naive evaluation of the introduction): scan the queried
/// class's pages, then every downstream class's pages to follow the forward
/// references. Maintenance is free.

namespace pathix {

class NoneCostModel : public OrgCostModel {
 public:
  NoneCostModel(const PathContext& ctx, int a, int b)
      : OrgCostModel(ctx, a, b) {}

  double QueryCost(int l, int j) const override;
  double QueryCostHierarchy(int l) const override;
  double InsertCost(int /*l*/, int /*j*/) const override { return 0; }
  double DeleteCost(int l, int j) const override;
  double BoundaryDeleteCost() const override { return 0; }
  double StorageBytes() const override { return 0; }

 private:
  double ClassPages(int l, int j) const;
  double DownstreamPages(int l) const;
};

}  // namespace pathix
