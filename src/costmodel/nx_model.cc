#include "costmodel/nx_model.h"

#include <cmath>
#include <limits>

#include "common/math.h"

namespace pathix {

NXCostModel::NXCostModel(const PathContext& ctx, int a, int b)
    : OrgCostModel(ctx, a, b) {
  const PhysicalParams& pp = ctx.params();
  // One record per distinct ending value; only starting-hierarchy oids.
  double start_oids = 0;
  for (int j = 0; j < ctx.nc(a); ++j) {
    start_oids += ctx.NoidWithin(a, j, b);
  }
  const double ln = ctx.KeyLenAt(b) + pp.rec_overhead +
                    ctx.nc(a) * pp.dir_entry_len + start_oids * pp.oid_len;
  primary_ = BTreeModel::Build(ctx.DistinctKeysLevel(b), ln, ctx.KeyLenAt(b),
                               pp);
}

double NXCostModel::QueryCost(int l, int j) const {
  (void)j;
  if (l != a_) {
    // Interior classes are not represented in the index.
    return std::numeric_limits<double>::infinity();
  }
  return CRT(primary_, ctx_.noidplus(b_ + 1));
}

double NXCostModel::QueryCostHierarchy(int l) const { return QueryCost(l, 0); }

double NXCostModel::StartSegmentPages() const {
  double pages = 0;
  for (const LevelClassInfo& c : ctx_.level(a_)) {
    const double per_page = std::max(
        1.0,
        std::floor(ctx_.params().page_size / std::max(1.0, c.stats.obj_len)));
    pages += CeilDiv(c.stats.n, per_page);
  }
  return pages;
}

double NXCostModel::InsertCost(int l, int j) const {
  if (l == a_) {
    // A new starting-class object: add its oid under every reachable
    // ending value (found by forward navigation, whose object fetches the
    // update itself already performs).
    return CMT(primary_, ctx_.Nbar(a_, j, b_));
  }
  // Interior insertion: the affected starting-class objects can only be
  // found by scanning the starting segment and re-navigating.
  return StartSegmentPages() + CMT(primary_, ctx_.Nbar(l, j, b_));
}

double NXCostModel::DeleteCost(int l, int j) const {
  if (l == a_) {
    return CMTWithPm(primary_, ctx_.Nbar(a_, j, b_),
                     primary_.record_pages());
  }
  return StartSegmentPages() +
         CMTWithPm(primary_, ctx_.Nbar(l, j, b_), primary_.record_pages());
}

double NXCostModel::BoundaryDeleteCost() const {
  if (b_ == ctx_.n()) return 0;
  return CMLWithPm(primary_, primary_.record_pages());
}

double NXCostModel::StorageBytes() const {
  double pages = 0;
  for (const BTreeLevelInfo& lvl : primary_.levels()) pages += lvl.pages;
  return pages * ctx_.params().page_size;
}

}  // namespace pathix
