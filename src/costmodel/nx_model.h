#pragma once

#include "costmodel/access_functions.h"
#include "costmodel/org_model.h"

/// \file nx_model.h
/// \brief Nested-index (NX) cost model — the Section 6 extension covering
/// Bertino/Kim's *nested index* [2]: one B+-tree mapping each ending-
/// attribute value of the subpath directly to the oids of the *starting
/// class hierarchy* whose objects reach it. No intermediate classes, no
/// auxiliary structure.
///
/// Consequences modelled here:
///  - queries w.r.t. the starting hierarchy are a single probe (cheapest
///    possible, smaller records than NIX);
///  - queries w.r.t. interior classes are NOT supported: the cost is
///    infinite, so Min_Cost never selects NX for a subpath whose interior
///    classes carry query load;
///  - maintenance is expensive: without an auxiliary index, an interior
///    update cannot locate the affected starting-class objects by forward
///    references alone — the model charges a starting-segment scan plus the
///    primary-record maintenance (the known weakness of nested indexes that
///    motivated the NIX design).

namespace pathix {

class NXCostModel : public OrgCostModel {
 public:
  NXCostModel(const PathContext& ctx, int a, int b);

  double QueryCost(int l, int j) const override;
  double QueryCostHierarchy(int l) const override;
  double InsertCost(int l, int j) const override;
  double DeleteCost(int l, int j) const override;
  double BoundaryDeleteCost() const override;
  double StorageBytes() const override;

  const BTreeModel& primary() const { return primary_; }

 private:
  /// Pages of the starting hierarchy's object segments (the locate scan).
  double StartSegmentPages() const;

  BTreeModel primary_;
};

}  // namespace pathix
