#include "costmodel/org_model.h"

#include "costmodel/mix_model.h"
#include "costmodel/mx_model.h"
#include "costmodel/nix_model.h"
#include "costmodel/none_model.h"
#include "costmodel/nx_model.h"
#include "costmodel/px_model.h"

namespace pathix {

std::unique_ptr<OrgCostModel> MakeOrgCostModel(IndexOrg org,
                                               const PathContext& ctx, int a,
                                               int b) {
  switch (org) {
    case IndexOrg::kMX:
      return std::make_unique<MXCostModel>(ctx, a, b);
    case IndexOrg::kMIX:
      return std::make_unique<MIXCostModel>(ctx, a, b);
    case IndexOrg::kNIX:
      return std::make_unique<NIXCostModel>(ctx, a, b);
    case IndexOrg::kNone:
      return std::make_unique<NoneCostModel>(ctx, a, b);
    case IndexOrg::kNX:
      return std::make_unique<NXCostModel>(ctx, a, b);
    case IndexOrg::kPX:
      return std::make_unique<PXCostModel>(ctx, a, b);
  }
  PATHIX_DCHECK(false);
  return nullptr;
}

}  // namespace pathix
