#pragma once

#include <memory>

#include "costmodel/index_org.h"
#include "costmodel/path_context.h"

/// \file org_model.h
/// \brief Per-organization analytic cost models (Section 3.1) for an index
/// allocated on the subpath C_a.A_a....A_b of the context's path.
///
/// All retrieval costs are for a query with an equality predicate against
/// the *path's* ending attribute A_n; the number of key values that reach
/// this subpath's index from downstream subpaths is the global noid+ of the
/// context, which makes subpath costs composable (Proposition 4.1).

namespace pathix {

/// \brief Cost model of one organization on one subpath.
class OrgCostModel {
 public:
  OrgCostModel(const PathContext& ctx, int a, int b)
      : ctx_(ctx), a_(a), b_(b) {
    PATHIX_DCHECK(1 <= a && a <= b && b <= ctx.n());
  }
  virtual ~OrgCostModel() = default;

  int start() const { return a_; }
  int end() const { return b_; }

  /// CR_X(C_{l,j}): searching cost of the objects of class C_{l,j}
  /// satisfying the predicate, using this subpath's index. l in [a, b].
  virtual double QueryCost(int l, int j) const = 0;

  /// CR+_X(C_l): same, with respect to the whole hierarchy rooted at C_l.
  /// Used for downstream subpaths in a configuration and for the derived
  /// prefix load of Section 3.2.
  virtual double QueryCostHierarchy(int l) const = 0;

  /// Maintenance cost of this subpath's index due to the insertion of one
  /// object into C_{l,j}.
  virtual double InsertCost(int l, int j) const = 0;

  /// Maintenance cost due to the deletion of one object from C_{l,j}
  /// (within-subpath effects only; the cross-subpath effect is
  /// BoundaryDeleteCost of the *preceding* subpath, per Definition 4.2).
  virtual double DeleteCost(int l, int j) const = 0;

  /// CMD_X(A_b): cost of removing the key record of a deleted object of
  /// class C_{b+1} from this subpath's index. Zero when b == n (the ending
  /// attribute of the whole path is not oid-valued).
  virtual double BoundaryDeleteCost() const = 0;

  /// Estimated bytes occupied by the index structures (leaf levels);
  /// reported by the advisor as a space ablation. Extension, not in paper.
  virtual double StorageBytes() const = 0;

 protected:
  const PathContext& ctx_;
  int a_;
  int b_;
};

/// Factory for the models of index_org.h.
std::unique_ptr<OrgCostModel> MakeOrgCostModel(IndexOrg org,
                                               const PathContext& ctx, int a,
                                               int b);

}  // namespace pathix
