#include "costmodel/path_context.h"

#include <algorithm>
#include <cmath>

namespace pathix {

Result<PathContext> PathContext::Build(const Schema& schema, const Path& path,
                                       const Catalog& catalog,
                                       const LoadDistribution& load,
                                       QueryProfile profile) {
  if (profile.matching_keys < 1) {
    return Status::InvalidArgument("matching_keys must be >= 1");
  }
  PathContext ctx;
  ctx.schema_ = &schema;
  ctx.path_ = &path;
  ctx.params_ = catalog.params();
  ctx.profile_ = profile;
  for (int l = 1; l <= path.length(); ++l) {
    // Attribute-keyed lookup: a class two paths navigate through different
    // attributes has one d/nin per attribute, and this level's stats must
    // be the ones collected for *this* path's attribute.
    const std::string& attr = path.attribute_at(l).name;
    std::vector<LevelClassInfo> level;
    for (ClassId cls : schema.HierarchyOf(path.class_at(l))) {
      LevelClassInfo info;
      info.cls = cls;
      info.stats = catalog.GetClassStats(cls, attr);
      info.load = load.Get(cls);
      info.k = info.stats.k();
      const bool has_load = info.load.query > 0 || info.load.insert > 0 ||
                            info.load.del > 0;
      if (!catalog.HasClassStats(cls, attr) && has_load) {
        return Status::FailedPrecondition(
            "class '" + schema.GetClass(cls).name() +
            "' carries workload but has no statistics in the catalog");
      }
      level.push_back(info);
    }
    ctx.levels_.push_back(std::move(level));
  }
  return ctx;
}

double PathContext::S(int l) const {
  double s = 0;
  for (const LevelClassInfo& c : level(l)) s += c.k;
  return s;
}

double PathContext::noidplus(int l) const {
  PATHIX_DCHECK(l >= 1 && l <= n() + 1);
  double prod = profile_.matching_keys;
  for (int i = l; i <= n(); ++i) prod *= S(i);
  return prod;
}

double PathContext::noid(int l, int j) const {
  return level(l)[j].k * noidplus(l + 1);
}

double PathContext::NoidPlusWithin(int l, int b) const {
  PATHIX_DCHECK(b <= n());
  double prod = 1;
  for (int i = l; i <= b; ++i) prod *= S(i);
  return prod;
}

double PathContext::NoidWithin(int l, int j, int b) const {
  return level(l)[j].k * NoidPlusWithin(l + 1, b);
}

double PathContext::KeyLenAt(int l) const {
  const Attribute& attr = path_->attribute_at(l);
  return attr.kind == AttrKind::kReference ? params_.oid_len
                                           : params_.key_len;
}

double PathContext::DistinctKeysLevel(int l) const {
  double sum_d = 0;
  for (const LevelClassInfo& c : level(l)) sum_d += c.stats.d;
  sum_d = std::max(1.0, sum_d);
  // Reference attribute: values are oids of the next level's hierarchy, so
  // the union of distinct values cannot exceed that population.
  if (l < n()) {
    return std::min(sum_d, std::max(1.0, TotalObjects(l + 1)));
  }
  return sum_d;
}

double PathContext::Nbar(int l, int j, int b) const {
  PATHIX_DCHECK(l <= b && b <= n());
  if (l == b) return level(l)[j].stats.nin;
  // Average reachability of the next level, weighted by class population.
  double next = 0;
  double total_n = 0;
  const auto& down = level(l + 1);
  for (int jj = 0; jj < static_cast<int>(down.size()); ++jj) {
    next += down[jj].stats.n * Nbar(l + 1, jj, b);
    total_n += down[jj].stats.n;
  }
  next = total_n > 0 ? next / total_n : 0;
  const double reach = level(l)[j].stats.nin * next;
  return std::min(reach, DistinctKeysLevel(b));
}

double PathContext::Parents(int l) const {
  PATHIX_DCHECK(l >= 2 && l <= n());
  return S(l - 1);
}

double PathContext::TotalObjects(int l) const {
  double total = 0;
  for (const LevelClassInfo& c : level(l)) total += c.stats.n;
  return total;
}

double PathContext::PrefixAlpha(int a) const {
  double total = 0;
  for (int l = 1; l < a; ++l) total += AlphaLevel(l);
  return total;
}

double PathContext::AlphaLevel(int l) const {
  double total = 0;
  for (const LevelClassInfo& c : level(l)) total += c.load.query;
  return total;
}

}  // namespace pathix
