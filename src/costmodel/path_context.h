#pragma once

#include <vector>

#include "catalog/catalog.h"
#include "common/status.h"
#include "schema/path.h"
#include "workload/load.h"

/// \file path_context.h
/// \brief All per-path derived statistics the organization cost models need:
/// the hierarchy of classes per level, fan-ins k_{l,x}, the selectivity
/// products noid/noid+ of Section 3.1, reachability fan-outs nbar, and the
/// prefix query load of the workload model (Section 3.2).

namespace pathix {

/// Statistics and load for one class of one path level's hierarchy.
struct LevelClassInfo {
  ClassId cls = kInvalidClass;
  ClassStats stats;
  OpLoad load;
  double k = 0;  ///< stats.k(): objects of the class sharing an A_l value
};

/// \brief Shape of the query predicate against the ending attribute.
///
/// The paper restricts Section 3 to equality predicates and notes the
/// "extension to range predicates is straightforward": a range predicate
/// matches `matching_keys` distinct A_n values, which seeds the selectivity
/// recursion (noid+_{n+1} = matching_keys instead of 1).
struct QueryProfile {
  double matching_keys = 1;
};

/// \brief Immutable bundle of derived statistics for one path.
///
/// Levels are 1-based like the paper (l in [1, n]); within a level, index 0
/// is the root class C_l and the rest are its transitive subclasses
/// (the C_{l,x} of the paper).
class PathContext {
 public:
  /// Binds \p path to schema, catalog and workload. Fails if statistics are
  /// missing for a scope class with nonzero load.
  static Result<PathContext> Build(const Schema& schema, const Path& path,
                                   const Catalog& catalog,
                                   const LoadDistribution& load,
                                   QueryProfile profile = {});

  int n() const { return static_cast<int>(levels_.size()); }
  const Schema& schema() const { return *schema_; }
  const Path& path() const { return *path_; }
  const PhysicalParams& params() const { return params_; }

  /// The inheritance hierarchy of level \p l (1-based); [0] is the root.
  const std::vector<LevelClassInfo>& level(int l) const {
    PATHIX_DCHECK(l >= 1 && l <= n());
    return levels_[l - 1];
  }
  /// nc_l: classes in the hierarchy rooted at C_l.
  int nc(int l) const { return static_cast<int>(level(l).size()); }

  /// S(l) = sum_j k_{l,j}: oids fanned out per key value at level l.
  double S(int l) const;

  /// noid+_{l}: oids of the level-l hierarchy selected by the predicate on
  /// A_n, for l in [1, n+1]; noid+_{n+1} = QueryProfile::matching_keys
  /// (1 for the paper's equality predicates, Section 3.1).
  double noidplus(int l) const;

  /// noid_{l,j} = k_{l,j} * noid+_{l+1}: selected oids of class C_{l,j}.
  double noid(int l, int j) const;

  /// Same products restricted to a subpath ending at level \p b (used to
  /// size NIX primary records): prod_{i=l..b} within the subpath.
  double NoidPlusWithin(int l, int b) const;
  double NoidWithin(int l, int j, int b) const;

  /// Key length of values of A_l: oid_len for reference attributes, the
  /// atomic key length for the ending attribute of the full path.
  double KeyLenAt(int l) const;

  /// Distinct values of A_l across the whole level hierarchy (clamped by
  /// the domain cardinality for reference attributes).
  double DistinctKeysLevel(int l) const;

  /// nbar_{l,j} w.r.t. level b: average number of distinct A_b values
  /// reachable from one object of C_{l,j} (primary records an object of
  /// C_{l,j} appears in, for a NIX whose subpath ends at b).
  double Nbar(int l, int j, int b) const;

  /// par at level l: average number of aggregation parents (objects of the
  /// level l-1 hierarchy referencing a given object) = S(l-1).
  double Parents(int l) const;

  /// Total objects of the level hierarchy.
  double TotalObjects(int l) const;

  /// Sum of query frequencies of all classes at levels < a (the derived
  /// subpath load of Section 3.2).
  double PrefixAlpha(int a) const;

  /// Sum of query frequencies at level \p l.
  double AlphaLevel(int l) const;

  const QueryProfile& profile() const { return profile_; }

 private:
  PathContext() = default;

  const Schema* schema_ = nullptr;
  const Path* path_ = nullptr;
  PhysicalParams params_;
  QueryProfile profile_;
  std::vector<std::vector<LevelClassInfo>> levels_;
};

}  // namespace pathix
