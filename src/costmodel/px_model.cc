#include "costmodel/px_model.h"

#include <algorithm>

#include "common/math.h"

namespace pathix {

PXCostModel::PXCostModel(const PathContext& ctx, int a, int b)
    : OrgCostModel(ctx, a, b) {
  const PhysicalParams& pp = ctx.params();
  // Instantiations per key value: one tuple per distinct path, i.e. the
  // product of the per-level fan-ins S(a)...S(b).
  const double inst_per_key = ctx.NoidPlusWithin(a, b);
  inst_len_ = (b - a + 1) * pp.oid_len;
  const double ln =
      ctx.KeyLenAt(b) + pp.rec_overhead + inst_per_key * inst_len_;
  primary_ = BTreeModel::Build(ctx.DistinctKeysLevel(b), ln, ctx.KeyLenAt(b),
                               pp);
}

double PXCostModel::QueryCost(int l, int j) const {
  (void)l;
  (void)j;
  // One probe per delivered key; the whole record is read (instantiation
  // tuples are not grouped per class).
  return CRT(primary_, ctx_.noidplus(b_ + 1));
}

double PXCostModel::QueryCostHierarchy(int l) const { return QueryCost(l, 0); }

double PXCostModel::TuplesThroughObject(int l, int j) const {
  (void)j;
  // Paths above the object: product of fan-ins of levels a..l-1 (times the
  // object's own fan-in k share); paths below: its nbar spread over the
  // reachable keys. Averaged per key, an object of C_{l,j} appears in
  // (paths through it) / (distinct keys it reaches) tuples of each record.
  double above = 1;
  for (int i = a_; i < l; ++i) above *= std::max(1.0, ctx_.S(i));
  // Each of its nin children chains independently below; per reachable key
  // the object contributes at least one tuple.
  return std::max(1.0, above);
}

double PXCostModel::InsertCost(int l, int j) const {
  // New instantiations appear in every record the object reaches; the
  // affected tuples multiply the fan-in above the object.
  const double records = ctx_.Nbar(l, j, b_);
  const double tuples = TuplesThroughObject(l, j);
  const double pages_per_record = std::clamp(
      CeilDiv(tuples * inst_len_, ctx_.params().page_size), 1.0,
      primary_.record_pages());
  return CMTWithPm(primary_, records, pages_per_record);
}

double PXCostModel::DeleteCost(int l, int j) const {
  // Deletion removes the same tuples but must locate them within the whole
  // record (no class grouping): the full record span is touched.
  return CMTWithPm(primary_, ctx_.Nbar(l, j, b_), primary_.record_pages());
}

double PXCostModel::BoundaryDeleteCost() const {
  if (b_ == ctx_.n()) return 0;
  return CMLWithPm(primary_, primary_.record_pages());
}

double PXCostModel::StorageBytes() const {
  double pages = 0;
  for (const BTreeLevelInfo& lvl : primary_.levels()) pages += lvl.pages;
  return pages * ctx_.params().page_size;
}

}  // namespace pathix
