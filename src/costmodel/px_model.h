#pragma once

#include "costmodel/access_functions.h"
#include "costmodel/org_model.h"

/// \file px_model.h
/// \brief Path-index (PX) cost model — the Section 6 extension covering
/// Bertino/Guglielmina's *path index* [6]: one B+-tree mapping each ending
/// value to the set of full **path instantiations** (o_a, o_{a+1}, ..., o_b)
/// reaching it.
///
/// Consequences modelled here:
///  - queries w.r.t. *any* class are a single probe (the instantiation
///    tuples project onto every position), at the price of records that
///    grow with the product of the fan-ins — the largest of all
///    organizations;
///  - maintenance rewrites instantiation tuples: an update at level l
///    invalidates every instantiation through the object. Locating them is
///    direct (the record is keyed by the reachable ending values), but the
///    number of affected tuples multiplies the fan-ins above *and* below
///    the object.

namespace pathix {

class PXCostModel : public OrgCostModel {
 public:
  PXCostModel(const PathContext& ctx, int a, int b);

  double QueryCost(int l, int j) const override;
  double QueryCostHierarchy(int l) const override;
  double InsertCost(int l, int j) const override;
  double DeleteCost(int l, int j) const override;
  double BoundaryDeleteCost() const override;
  double StorageBytes() const override;

  const BTreeModel& primary() const { return primary_; }

 private:
  /// Average instantiation tuples through one object of C_{l,j}, per
  /// reachable ending value.
  double TuplesThroughObject(int l, int j) const;

  BTreeModel primary_;
  double inst_len_ = 0;  ///< bytes of one instantiation tuple
};

}  // namespace pathix
