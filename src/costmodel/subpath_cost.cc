#include "costmodel/subpath_cost.h"

namespace pathix {

SubpathCost ComputeSubpathCost(const PathContext& ctx, int a, int b,
                               IndexOrg org) {
  const std::unique_ptr<OrgCostModel> model = MakeOrgCostModel(org, ctx, a, b);
  SubpathCost cost;

  for (int l = a; l <= b; ++l) {
    const auto& level = ctx.level(l);
    for (int j = 0; j < static_cast<int>(level.size()); ++j) {
      const OpLoad& load = level[j].load;
      if (load.query > 0) cost.query += load.query * model->QueryCost(l, j);
      if (load.insert > 0) {
        cost.maintain += load.insert * model->InsertCost(l, j);
      }
      if (load.del > 0) cost.maintain += load.del * model->DeleteCost(l, j);
    }
  }

  // Queries with respect to classes upstream of the subpath traverse it
  // with respect to its root hierarchy (derived load, Section 3.2).
  if (a > 1) {
    const double prefix_alpha = ctx.PrefixAlpha(a);
    if (prefix_alpha > 0) {
      cost.prefix = prefix_alpha * model->QueryCostHierarchy(a);
    }
  }

  // Deletions of objects of the next subpath's root hierarchy remove their
  // key record from this subpath's index (Definition 4.2, CMD).
  if (b < ctx.n()) {
    double gamma_next = 0;
    for (const LevelClassInfo& c : ctx.level(b + 1)) gamma_next += c.load.del;
    if (gamma_next > 0) {
      cost.boundary = gamma_next * model->BoundaryDeleteCost();
    }
  }
  return cost;
}

}  // namespace pathix
