#include "costmodel/subpath_cost.h"

namespace pathix {

SubpathUnitCosts ComputeSubpathUnitCosts(const PathContext& ctx, int a, int b,
                                         IndexOrg org) {
  const std::unique_ptr<OrgCostModel> model = MakeOrgCostModel(org, ctx, a, b);
  SubpathUnitCosts unit;

  for (int l = a; l <= b; ++l) {
    const auto& level = ctx.level(l);
    std::vector<double> query, insert, del;
    query.reserve(level.size());
    insert.reserve(level.size());
    del.reserve(level.size());
    for (int j = 0; j < static_cast<int>(level.size()); ++j) {
      query.push_back(model->QueryCost(l, j));
      insert.push_back(model->InsertCost(l, j));
      del.push_back(model->DeleteCost(l, j));
    }
    unit.query.push_back(std::move(query));
    unit.insert.push_back(std::move(insert));
    unit.del.push_back(std::move(del));
  }

  if (a > 1) unit.prefix_query = model->QueryCostHierarchy(a);
  if (b < ctx.n()) unit.boundary = model->BoundaryDeleteCost();
  return unit;
}

SubpathCost WeighSubpathCost(const SubpathUnitCosts& unit,
                             const PathContext& ctx, int a, int b) {
  SubpathCost cost;

  for (int l = a; l <= b; ++l) {
    const auto& level = ctx.level(l);
    const std::size_t row = static_cast<std::size_t>(l - a);
    for (std::size_t j = 0; j < level.size(); ++j) {
      const OpLoad& load = level[j].load;
      if (load.query > 0) cost.query += load.query * unit.query[row][j];
      if (load.insert > 0) cost.maintain += load.insert * unit.insert[row][j];
      if (load.del > 0) cost.maintain += load.del * unit.del[row][j];
    }
  }

  // Queries with respect to classes upstream of the subpath traverse it
  // with respect to its root hierarchy (derived load, Section 3.2).
  if (a > 1) {
    const double prefix_alpha = ctx.PrefixAlpha(a);
    if (prefix_alpha > 0) cost.prefix = prefix_alpha * unit.prefix_query;
  }

  // Deletions of objects of the next subpath's root hierarchy remove their
  // key record from this subpath's index (Definition 4.2, CMD).
  if (b < ctx.n()) {
    double gamma_next = 0;
    for (const LevelClassInfo& c : ctx.level(b + 1)) gamma_next += c.load.del;
    if (gamma_next > 0) cost.boundary = gamma_next * unit.boundary;
  }
  return cost;
}

SubpathCost ComputeSubpathCost(const PathContext& ctx, int a, int b,
                               IndexOrg org) {
  return WeighSubpathCost(ComputeSubpathUnitCosts(ctx, a, b, org), ctx, a, b);
}

double AccumulateSharedPartCost(
    const Path& path, const IndexedSubpath& part, double query_prefix,
    double maintain, std::map<StructuralKey, double>* placed_maintain) {
  double increment = query_prefix;
  double& placed = (*placed_maintain)[StructuralKey::ForSubpath(
      path, part.subpath.start, part.subpath.end, part.org)];
  if (maintain > placed) {
    increment += maintain - placed;
    placed = maintain;
  }
  return increment;
}

}  // namespace pathix
