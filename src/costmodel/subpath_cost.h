#pragma once

#include "costmodel/org_model.h"

/// \file subpath_cost.h
/// \brief The processing cost of one subpath under one organization — the
/// quantity stored in the algorithm's Cost_Matrix (Sections 4 and 5).

namespace pathix {

/// Breakdown of a subpath's processing cost (all in page accesses,
/// workload-weighted).
struct SubpathCost {
  double query = 0;     ///< searching cost of the subpath's own query load
  double prefix = 0;    ///< searching cost of queries w.r.t. upstream classes
  double maintain = 0;  ///< insert/delete maintenance within the subpath
  double boundary = 0;  ///< CMD: deletions of the next subpath's root class

  double total() const { return query + prefix + maintain + boundary; }
};

/// \brief Computes the processing cost of indexing the subpath [a, b] of the
/// context's path with organization \p org (DESIGN.md §4.5):
///
///   PC(S, X) = sum_{C_{l,x} in scope(S)} alpha CR_X(C_{l,x})
///            + prefix_alpha(S) * CR+_X(C_a)
///            + sum_{C_{l,x}} [beta CMins_X + gamma CMdel_X]
///            + [b < n] sum_{x in C+_{b+1}} gamma CMD_X(A_b)
///
/// The decomposition follows Propositions 4.1/4.2 and Definition 4.2, which
/// make configuration costs the sum of their subpath costs.
SubpathCost ComputeSubpathCost(const PathContext& ctx, int a, int b,
                               IndexOrg org);

}  // namespace pathix
