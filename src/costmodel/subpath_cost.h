#pragma once

#include <map>
#include <vector>

#include "core/index_config.h"
#include "core/structural_key.h"
#include "costmodel/org_model.h"

/// \file subpath_cost.h
/// \brief The processing cost of one subpath under one organization — the
/// quantity stored in the algorithm's Cost_Matrix (Sections 4 and 5).

namespace pathix {

/// Breakdown of a subpath's processing cost (all in page accesses,
/// workload-weighted).
struct SubpathCost {
  double query = 0;     ///< searching cost of the subpath's own query load
  double prefix = 0;    ///< searching cost of queries w.r.t. upstream classes
  double maintain = 0;  ///< insert/delete maintenance within the subpath
  double boundary = 0;  ///< CMD: deletions of the next subpath's root class

  double total() const { return query + prefix + maintain + boundary; }
};

/// \brief The load-independent unit costs of one (subpath, organization)
/// pair: every per-class model evaluation ComputeSubpathCost weighs with the
/// workload frequencies.
///
/// The organization models of Section 3.1 depend only on the catalog
/// statistics and physical parameters, never on the load distribution —
/// the workload enters the processing cost purely as linear weights. Unit
/// costs can therefore be computed once and reweighed for every drifting
/// load estimate (the online selector's hot loop; see
/// core/matrix_cache.h).
struct SubpathUnitCosts {
  /// Per level l in [a, b] (outer index l - a) and hierarchy position j:
  /// CR_X(C_{l,j}), CMins_X(C_{l,j}), CMdel_X(C_{l,j}).
  std::vector<std::vector<double>> query;
  std::vector<std::vector<double>> insert;
  std::vector<std::vector<double>> del;
  double prefix_query = 0;  ///< CR+_X(C_a): unit cost of upstream queries
  double boundary = 0;      ///< CMD_X(A_b): unit cost of a C_{b+1} deletion
};

/// Evaluates the organization model for every class of the subpath [a, b]
/// (including zero-load classes, unlike ComputeSubpathCost's lazy loop).
SubpathUnitCosts ComputeSubpathUnitCosts(const PathContext& ctx, int a, int b,
                                         IndexOrg org);

/// Weighs precomputed unit costs with the context's load distribution.
/// Classes with zero frequency contribute nothing, whatever their unit cost
/// (degenerate statistics can make an unloaded class's unit cost non-finite).
SubpathCost WeighSubpathCost(const SubpathUnitCosts& unit,
                             const PathContext& ctx, int a, int b);

/// \brief Computes the processing cost of indexing the subpath [a, b] of the
/// context's path with organization \p org (DESIGN.md §4.5):
///
///   PC(S, X) = sum_{C_{l,x} in scope(S)} alpha CR_X(C_{l,x})
///            + prefix_alpha(S) * CR+_X(C_a)
///            + sum_{C_{l,x}} [beta CMins_X + gamma CMdel_X]
///            + [b < n] sum_{x in C+_{b+1}} gamma CMD_X(A_b)
///
/// The decomposition follows Propositions 4.1/4.2 and Definition 4.2, which
/// make configuration costs the sum of their subpath costs.
SubpathCost ComputeSubpathCost(const PathContext& ctx, int a, int b,
                               IndexOrg org);

/// Accumulates one configured part of \p path into a shared-accounting
/// workload total — the joint advisor's objective, also used by the joint
/// controller's current-cost pricing and the measured-vs-modeled
/// validation: query+prefix is charged per use, maintenance once per
/// distinct physical structure (the running maximum across uses, keyed by
/// structural identity in \p placed_maintain). Returns the increment to the
/// total.
double AccumulateSharedPartCost(const Path& path, const IndexedSubpath& part,
                                double query_prefix, double maintain,
                                std::map<StructuralKey, double>* placed_maintain);

}  // namespace pathix
