#include "datagen/generator.h"

#include <algorithm>
#include <random>
#include <set>

namespace pathix {

std::string EndingValue(int i) { return "val-" + std::to_string(i); }

std::map<ClassId, std::vector<Oid>> PathDataGenerator::Populate(
    SimDatabase* db, const Path& path, const std::vector<ClassGenSpec>& specs) {
  return Populate(db, std::vector<const Path*>{&path}, specs);
}

std::map<ClassId, std::vector<Oid>> PathDataGenerator::Populate(
    SimDatabase* db, const std::vector<const Path*>& paths,
    const std::vector<ClassGenSpec>& specs) {
  std::mt19937 rng(seed_);
  std::map<ClassId, const ClassGenSpec*> by_class;
  for (const ClassGenSpec& spec : specs) by_class[spec.cls] = &spec;

  // One attribute to fill per (class, path role): level l of path p fills
  // p's attribute at l for every class of the level's hierarchy; the ending
  // level draws atomic values, inner levels reference the next level's
  // hierarchy. A class may play several roles across paths (or the same
  // role twice, when paths overlap — filled once, keyed by attribute name).
  struct Role {
    const Path* path = nullptr;
    int level = 0;
    bool ending = false;
  };
  std::map<ClassId, std::vector<Role>> roles;
  // Candidate emission order: paths in caller order, levels bottom-up,
  // hierarchy order — for a single path this is exactly the legacy order,
  // so the RNG consumption (and hence the data) is unchanged.
  std::vector<ClassId> order;
  for (const Path* path : paths) {
    for (int l = path->length(); l >= 1; --l) {
      for (ClassId cls : db->schema().HierarchyOf(path->class_at(l))) {
        if (by_class.count(cls) == 0) continue;
        roles[cls].push_back(Role{path, l, l == path->length()});
        if (std::find(order.begin(), order.end(), cls) == order.end()) {
          order.push_back(cls);
        }
      }
    }
  }

  // Dependencies: a class whose role references level l+1 of a path must be
  // generated after every spec'd class of that level's hierarchy.
  std::map<ClassId, std::set<ClassId>> deps;
  for (const auto& [cls, cls_roles] : roles) {
    for (const Role& role : cls_roles) {
      if (role.ending) continue;
      for (ClassId next : db->schema().HierarchyOf(
               role.path->class_at(role.level + 1))) {
        if (by_class.count(next) > 0 && next != cls) deps[cls].insert(next);
      }
    }
  }

  std::map<ClassId, std::vector<Oid>> created;
  std::set<ClassId> done;
  std::size_t emitted = 0;
  while (emitted < order.size()) {
    bool progressed = false;
    for (ClassId cls : order) {
      if (done.count(cls) > 0) continue;
      bool ready = true;
      for (ClassId dep : deps[cls]) {
        if (done.count(dep) == 0) {
          ready = false;
          break;
        }
      }
      if (!ready) continue;
      progressed = true;
      done.insert(cls);
      ++emitted;

      const ClassGenSpec& spec = *by_class.at(cls);
      std::uniform_int_distribution<int> value_dist(
          0, std::max(1, spec.distinct_values) - 1);
      std::uniform_real_distribution<double> frac(0.0, 1.0);

      // Reference pools per role, resolved once per class.
      struct Fill {
        const std::string* attr = nullptr;
        bool ending = false;
        std::vector<Oid> pool;
      };
      std::vector<Fill> fills;
      std::set<std::string> filled_attrs;
      for (const Role& role : roles.at(cls)) {
        const std::string& attr = role.path->attribute_at(role.level).name;
        if (!filled_attrs.insert(attr).second) continue;  // shared subpath
        Fill fill;
        fill.attr = &attr;
        fill.ending = role.ending;
        if (!role.ending) {
          for (ClassId next : db->schema().HierarchyOf(
                   role.path->class_at(role.level + 1))) {
            const auto it = created.find(next);
            if (it != created.end()) {
              fill.pool.insert(fill.pool.end(), it->second.begin(),
                               it->second.end());
            }
          }
        }
        fills.push_back(std::move(fill));
      }

      for (int i = 0; i < spec.count; ++i) {
        AttrValues attrs;
        for (const Fill& fill : fills) {
          // nin values on average: floor(nin) plus one more with the
          // fractional probability.
          int nvals = static_cast<int>(spec.nin);
          if (frac(rng) < spec.nin - nvals) ++nvals;
          nvals = std::max(1, nvals);

          std::vector<Value>& values = attrs[*fill.attr];
          if (fill.ending) {
            for (int v = 0; v < nvals; ++v) {
              values.push_back(Value::Str(EndingValue(value_dist(rng))));
            }
          } else if (!fill.pool.empty()) {
            std::uniform_int_distribution<std::size_t> ref_dist(
                0, fill.pool.size() - 1);
            for (int v = 0; v < nvals; ++v) {
              values.push_back(Value::Ref(fill.pool[ref_dist(rng)]));
            }
          }
        }
        created[cls].push_back(db->Insert(cls, std::move(attrs)));
      }
    }
    PATHIX_DCHECK(progressed &&
                  "reference cycle across the workload's paths; cannot "
                  "order data generation");
    if (!progressed) break;  // release builds: bail instead of spinning
  }

  db->pager().ResetStats();
  return created;
}

}  // namespace pathix
