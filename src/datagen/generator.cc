#include "datagen/generator.h"

#include <random>

namespace pathix {

std::string EndingValue(int i) { return "val-" + std::to_string(i); }

std::map<ClassId, std::vector<Oid>> PathDataGenerator::Populate(
    SimDatabase* db, const Path& path,
    const std::vector<ClassGenSpec>& specs) {
  std::mt19937 rng(seed_);
  std::map<ClassId, const ClassGenSpec*> by_class;
  for (const ClassGenSpec& spec : specs) by_class[spec.cls] = &spec;

  std::map<ClassId, std::vector<Oid>> created;

  // Bottom-up so that references point at existing objects.
  for (int l = path.length(); l >= 1; --l) {
    const std::string& attr = path.attribute_at(l).name;
    const bool ending = (l == path.length());

    // The reference pool: every object of the next level's hierarchy.
    std::vector<Oid> pool;
    if (!ending) {
      for (ClassId cls : db->schema().HierarchyOf(path.class_at(l + 1))) {
        const auto it = created.find(cls);
        if (it != created.end()) {
          pool.insert(pool.end(), it->second.begin(), it->second.end());
        }
      }
    }

    for (ClassId cls : db->schema().HierarchyOf(path.class_at(l))) {
      const auto spec_it = by_class.find(cls);
      if (spec_it == by_class.end()) continue;
      const ClassGenSpec& spec = *spec_it->second;

      std::uniform_int_distribution<int> value_dist(
          0, std::max(1, spec.distinct_values) - 1);
      std::uniform_real_distribution<double> frac(0.0, 1.0);

      for (int i = 0; i < spec.count; ++i) {
        // nin values on average: floor(nin) plus one more with the
        // fractional probability.
        int nvals = static_cast<int>(spec.nin);
        if (frac(rng) < spec.nin - nvals) ++nvals;
        nvals = std::max(1, nvals);

        AttrValues attrs;
        std::vector<Value>& values = attrs[attr];
        if (ending) {
          for (int v = 0; v < nvals; ++v) {
            values.push_back(Value::Str(EndingValue(value_dist(rng))));
          }
        } else if (!pool.empty()) {
          std::uniform_int_distribution<std::size_t> ref_dist(
              0, pool.size() - 1);
          for (int v = 0; v < nvals; ++v) {
            values.push_back(Value::Ref(pool[ref_dist(rng)]));
          }
        }
        created[cls].push_back(db->Insert(cls, std::move(attrs)));
      }
    }
  }
  db->pager().ResetStats();
  return created;
}

}  // namespace pathix
