#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "exec/database.h"
#include "schema/path.h"

/// \file generator.h
/// \brief Synthetic data generation: populates a SimDatabase so that each
/// class along one or several paths matches target statistics (object
/// count, distinct path-attribute values, multi-value fan-out) — the knobs
/// of Figure 7, extended to multi-path workloads whose paths may overlap.

namespace pathix {

/// Generation targets for one class.
struct ClassGenSpec {
  ClassId cls = kInvalidClass;
  int count = 0;          ///< n: objects to create
  int distinct_values = 1;///< d: distinct values of the path attribute
                          ///< (meaningful for ending-level classes)
  double nin = 1.0;       ///< average values per object for the path attr
};

/// \brief Deterministic generator (seeded Mersenne twister).
class PathDataGenerator {
 public:
  explicit PathDataGenerator(std::uint32_t seed) : seed_(seed) {}

  /// Populates \p db along \p path: ending-level classes draw atomic values
  /// from a pool of `distinct_values` strings; inner levels reference the
  /// next level's objects uniformly, `nin` refs per object on average.
  /// Returns the generated oids per class. Page-access counters are reset
  /// afterwards (loading is not part of any experiment).
  std::map<ClassId, std::vector<Oid>> Populate(
      SimDatabase* db, const Path& path,
      const std::vector<ClassGenSpec>& specs);

  /// The multi-path variant: each object receives values for *every* path
  /// attribute of its class across \p paths (a class interior to one path
  /// and ending another gets references and atomic values). Classes are
  /// created in dependency order — a class referencing another (at the next
  /// level of any path) is generated after it; reference cycles across
  /// paths are a PATHIX_DCHECK failure. With a single path this consumes
  /// the RNG identically to the single-path overload.
  std::map<ClassId, std::vector<Oid>> Populate(
      SimDatabase* db, const std::vector<const Path*>& paths,
      const std::vector<ClassGenSpec>& specs);

 private:
  std::uint32_t seed_;
};

/// Value pool helper: the i-th distinct ending-attribute value.
std::string EndingValue(int i);

}  // namespace pathix
