#include "datagen/paper_schema.h"

#include <algorithm>
#include <cmath>

namespace pathix {

Schema MakePaperSchema(ClassId* person, ClassId* vehicle, ClassId* bus,
                       ClassId* truck, ClassId* company, ClassId* division) {
  Schema s;
  const ClassId per = s.AddClass("Person").value();
  const ClassId veh = s.AddClass("Vehicle").value();
  const ClassId bus_c = s.AddClass("Bus", veh).value();
  const ClassId truck_c = s.AddClass("Truck", veh).value();
  const ClassId comp = s.AddClass("Company").value();
  const ClassId divi = s.AddClass("Division").value();

  // Person
  CheckOk(s.AddAtomicAttribute(per, "name", AtomicType::kString));
  CheckOk(s.AddAtomicAttribute(per, "age", AtomicType::kInt));
  CheckOk(s.AddReferenceAttribute(per, "owns", veh, /*multi_valued=*/true));
  // Vehicle (+ subclasses)
  CheckOk(s.AddAtomicAttribute(veh, "id", AtomicType::kInt));
  CheckOk(s.AddAtomicAttribute(veh, "color", AtomicType::kString));
  CheckOk(s.AddAtomicAttribute(veh, "max-speed", AtomicType::kInt));
  CheckOk(s.AddReferenceAttribute(veh, "man", comp, /*multi_valued=*/true));
  CheckOk(s.AddAtomicAttribute(bus_c, "seats", AtomicType::kInt));
  CheckOk(s.AddAtomicAttribute(truck_c, "height", AtomicType::kInt));
  CheckOk(s.AddAtomicAttribute(truck_c, "availability", AtomicType::kString));
  // Company
  CheckOk(s.AddAtomicAttribute(comp, "name", AtomicType::kString));
  CheckOk(s.AddAtomicAttribute(comp, "location", AtomicType::kString));
  CheckOk(s.AddReferenceAttribute(comp, "divs", divi, /*multi_valued=*/true));
  // Division
  CheckOk(s.AddAtomicAttribute(divi, "name", AtomicType::kString));
  CheckOk(s.AddAtomicAttribute(divi, "movings", AtomicType::kInt));

  if (person != nullptr) *person = per;
  if (vehicle != nullptr) *vehicle = veh;
  if (bus != nullptr) *bus = bus_c;
  if (truck != nullptr) *truck = truck_c;
  if (company != nullptr) *company = comp;
  if (division != nullptr) *division = divi;
  return s;
}

namespace {

ClassStats Scaled(double n, double d, double nin, double obj_len,
                  double scale) {
  ClassStats st;
  st.n = std::max(1.0, std::floor(n / scale));
  st.d = std::max(1.0, std::floor(d / scale));
  st.nin = nin;
  st.obj_len = obj_len;
  return st;
}

}  // namespace

PaperSetup MakeExample51Setup(double scale) {
  PATHIX_DCHECK(scale >= 1.0);
  PaperSetup setup;
  setup.schema =
      MakePaperSchema(&setup.person, &setup.vehicle, &setup.bus, &setup.truck,
                      &setup.company, &setup.division);
  setup.path = Path::Create(setup.schema, setup.person,
                            {"owns", "man", "divs", "name"})
                   .value();

  // Figure 7: database characteristics (n, d, nin).
  setup.catalog.SetClassStats(setup.person, Scaled(200000, 20000, 1, 64, scale));
  setup.catalog.SetClassStats(setup.vehicle, Scaled(10000, 5000, 3, 64, scale));
  setup.catalog.SetClassStats(setup.bus, Scaled(5000, 2500, 2, 64, scale));
  setup.catalog.SetClassStats(setup.truck, Scaled(5000, 2500, 2, 64, scale));
  setup.catalog.SetClassStats(setup.company, Scaled(1000, 1000, 4, 64, scale));
  setup.catalog.SetClassStats(setup.division, Scaled(1000, 1000, 1, 64, scale));

  // Figure 7: load distribution (alpha, beta, gamma).
  setup.load.Set(setup.person, 0.3, 0.1, 0.1);
  setup.load.Set(setup.vehicle, 0.3, 0.0, 0.05);
  setup.load.Set(setup.bus, 0.05, 0.05, 0.1);
  setup.load.Set(setup.truck, 0.0, 0.1, 0.0);
  setup.load.Set(setup.company, 0.1, 0.1, 0.1);
  setup.load.Set(setup.division, 0.2, 0.2, 0.1);
  return setup;
}

CostMatrix MakeFigure6Matrix() {
  const int n = 4;
  const std::vector<IndexOrg> orgs = {IndexOrg::kMX, IndexOrg::kMIX,
                                      IndexOrg::kNIX};
  // Rows in EnumerateSubpaths(4) order: [1,1] [2,2] [3,3] [4,4]
  // [1,2] [2,3] [3,4] [1,3] [2,4] [1,4].
  const std::vector<std::vector<double>> values = {
      {3, 4, 6},    // C1.A1           min 3 (MX)
      {4, 4, 4},    // C2.A2           min 4
      {2, 3, 4},    // C3.A3           min 2 (MX)
      {4, 5, 5},    // C4.A4           min 4 (MX)
      {7, 6, 8},    // C1.A1.A2        min 6 (MIX)
      {6, 5, 6},    // C2.A2.A3        min 5 (MIX)
      {8, 7, 6},    // C3.A3.A4        min 6 (NIX)
      {9, 8, 10},   // C1.A1.A2.A3     min 8 (MIX)
      {7, 6, 5},    // C2.A2.A3.A4     min 5 (NIX)
      {12, 10, 9},  // C1.A1.A2.A3.A4  min 9 (NIX)
  };
  const std::vector<std::string> labels = {
      "C1.A1",       "C2.A2",    "C3.A3",       "C4.A4",
      "C1.A1..A2",   "C2.A2..A3", "C3.A3..A4",  "C1.A1..A3",
      "C2.A2..A4",   "C1.A1..A4"};
  return CostMatrix::FromValues(n, orgs, values, labels);
}

}  // namespace pathix
