#pragma once

#include <vector>

#include "catalog/catalog.h"
#include "core/cost_matrix.h"
#include "schema/path.h"
#include "workload/load.h"

/// \file paper_schema.h
/// \brief Canned setups from the paper: the vehicle schema of Figure 1, the
/// database/workload characteristics of Figure 7, and the hypothetical cost
/// matrix of Figure 6.

namespace pathix {

/// The Figure 1 / Figure 7 experimental setup bundled together.
struct PaperSetup {
  Schema schema;
  Path path;  ///< Pexa = Per.owns.man.divs.name
  Catalog catalog;
  LoadDistribution load;

  ClassId person = kInvalidClass;
  ClassId vehicle = kInvalidClass;
  ClassId bus = kInvalidClass;
  ClassId truck = kInvalidClass;
  ClassId company = kInvalidClass;
  ClassId division = kInvalidClass;
};

/// \brief Builds the logical schema of Figure 1.
///
/// Classes: Person, Vehicle (subclasses Bus, Truck), Company, Division.
/// Part-of: Person.owns+ -> Vehicle, Vehicle.man -> Company,
/// Company.divs+ -> Division; plus the atomic attributes of the figure
/// (name, age, color, max-speed, seats, height, availability, location).
Schema MakePaperSchema(ClassId* person, ClassId* vehicle, ClassId* bus,
                       ClassId* truck, ClassId* company, ClassId* division);

/// \brief The full Example 5.1 setup: Figure 1 schema, path Pexa, Figure 7
/// statistics and load distribution.
///
/// Statistics (n, d, nin) per Figure 7: Per(200000, 20000, 1),
/// Veh(10000, 5000, 3), Bus(5000, 2500, 2), Truck(5000, 2500, 2),
/// Comp(1000, 1000, 4), Div(1000, 1000, 1). Loads (alpha, beta, gamma):
/// Per(.3,.1,.1), Veh(.3,0,.05), Bus(.05,.05,.1), Truck(0,.1,0),
/// Comp(.1,.1,.1), Div(.2,.2,.1).
///
/// \param scale divides every n and d (floor 1) so the physical simulator
/// can run the same shape at laptop scale; 1 reproduces the paper's values.
PaperSetup MakeExample51Setup(double scale = 1.0);

/// \brief The hypothetical cost matrix of Figure 6 for
/// Pex = C1.A1.A2.A3.A4.
///
/// Only a few entries are printed in the paper; the remaining values are
/// reconstructed to satisfy every constraint of the Section 5 walkthrough
/// (row minima: S[1,1]=3 MX, S[2,2]=4, S[3,3]=2 MX, S[4,4]=4 MX,
/// S[1,2]=6 MIX, S[2,3]=5, S[3,4]=6 NIX, S[1,3]=8 MIX, S[2,4]=5 NIX,
/// S[1,4]=9 NIX), so the branch-and-bound trace of the paper is reproduced
/// verbatim.
CostMatrix MakeFigure6Matrix();

}  // namespace pathix
