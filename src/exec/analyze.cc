#include "exec/analyze.h"

#include <algorithm>
#include <set>

#include "index/key.h"

namespace pathix {

Catalog CollectStatistics(const ObjectStore& store, const Schema& schema,
                          const Path& path, const PhysicalParams& params) {
  Catalog catalog(params);
  for (int l = 1; l <= path.length(); ++l) {
    const std::string& attr = path.attribute_at(l).name;
    for (ClassId cls : schema.HierarchyOf(path.class_at(l))) {
      const std::vector<Oid> oids = store.PeekAll(cls);
      ClassStats stats;
      stats.n = static_cast<double>(oids.size());
      std::set<std::string> distinct;
      double total_values = 0;
      double total_bytes = 0;
      for (Oid oid : oids) {
        const Object* obj = store.Peek(oid);
        total_bytes += static_cast<double>(obj->bytes());
        for (const Value& v : obj->values(attr)) {
          // Dangling references do not select anything; skip them like the
          // evaluators do.
          if (v.kind() == Value::Kind::kRef &&
              store.Peek(v.as_ref()) == nullptr) {
            continue;
          }
          total_values += 1;
          distinct.insert(Key::FromValue(v).ToString());
        }
      }
      stats.d = std::max<double>(1.0, static_cast<double>(distinct.size()));
      stats.nin = stats.n > 0 ? std::max(1.0, total_values / stats.n) : 1.0;
      stats.obj_len = stats.n > 0 ? total_bytes / stats.n : 64.0;
      catalog.SetClassStats(cls, stats);
    }
  }
  return catalog;
}

}  // namespace pathix
