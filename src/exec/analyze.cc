#include "exec/analyze.h"

#include <algorithm>
#include <memory>

#include "index/key.h"

namespace pathix {

namespace {

/// One class's statistics w.r.t. one path attribute, from the live store.
ClassStats CollectClassStats(const ObjectStore& store, ClassId cls,
                             const std::string& attr) {
  const std::vector<Oid> oids = store.PeekAll(cls);
  ClassStats stats;
  stats.n = static_cast<double>(oids.size());
  std::set<std::string> distinct;
  double total_values = 0;
  double total_bytes = 0;
  for (Oid oid : oids) {
    // Owning references: ANALYZE runs on the controller's thread while
    // serving workers delete concurrently; the PeekAll snapshot may name
    // oids that are gone by the time this loop reaches them.
    const std::shared_ptr<const Object> obj = store.PeekRef(oid);
    if (obj == nullptr) continue;
    total_bytes += static_cast<double>(obj->bytes());
    for (const Value& v : obj->values(attr)) {
      // Dangling references do not select anything; skip them like the
      // evaluators do.
      if (v.kind() == Value::Kind::kRef &&
          store.PeekRef(v.as_ref()) == nullptr) {
        continue;
      }
      total_values += 1;
      distinct.insert(Key::FromValue(v).ToString());
    }
  }
  stats.d = std::max<double>(1.0, static_cast<double>(distinct.size()));
  stats.nin = stats.n > 0 ? std::max(1.0, total_values / stats.n) : 1.0;
  stats.obj_len = stats.n > 0 ? total_bytes / stats.n : 64.0;
  return stats;
}

}  // namespace

Catalog CollectStatistics(const ObjectStore& store, const Schema& schema,
                          const Path& path, const PhysicalParams& params) {
  Catalog catalog(params);
  for (int l = 1; l <= path.length(); ++l) {
    const std::string& attr = path.attribute_at(l).name;
    for (ClassId cls : schema.HierarchyOf(path.class_at(l))) {
      const ClassStats stats = CollectClassStats(store, cls, attr);
      // Both keys: attribute-keyed for the cost model (d/nin depend on the
      // attribute), class-keyed as the fallback for attr-agnostic readers.
      catalog.SetClassStats(cls, attr, stats);
      catalog.SetClassStats(cls, stats);
    }
  }
  return catalog;
}

int RefreshStatistics(const ObjectStore& store, const Schema& schema,
                      const Path& path, const std::set<ClassId>& classes,
                      Catalog* catalog,
                      std::set<std::pair<ClassId, std::string>>* collected) {
  int collections = 0;
  for (int l = 1; l <= path.length(); ++l) {
    const std::string& attr = path.attribute_at(l).name;
    for (ClassId cls : schema.HierarchyOf(path.class_at(l))) {
      if (classes.count(cls) == 0) continue;
      if (collected != nullptr && !collected->emplace(cls, attr).second) {
        continue;  // another overlapping path already scanned this pair
      }
      const ClassStats stats = CollectClassStats(store, cls, attr);
      catalog->SetClassStats(cls, attr, stats);
      catalog->SetClassStats(cls, stats);
      ++collections;
    }
  }
  return collections;
}

}  // namespace pathix
