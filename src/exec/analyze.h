#pragma once

#include <set>
#include <string>
#include <utility>

#include "catalog/catalog.h"
#include "schema/path.h"
#include "storage/object_store.h"

/// \file analyze.h
/// \brief Statistics collection ("ANALYZE"): derives the catalog statistics
/// the cost model needs (n, d, nin per class along a path) from the actual
/// contents of an object store, so that analytic predictions can be
/// compared against measured page accesses on the same data.

namespace pathix {

/// Computes ClassStats for every class in the scope of \p path from the
/// store's live objects. \p params seeds the catalog's physical parameters
/// (they must match the store's pager).
Catalog CollectStatistics(const ObjectStore& store, const Schema& schema,
                          const Path& path, const PhysicalParams& params);

/// Scoped refresh: re-collects statistics only for the classes of \p path's
/// scope listed in \p classes, leaving every other class's entry in
/// \p *catalog untouched (the reconfiguration controllers call this with
/// the classes whose live-object count drifted past their threshold, so a
/// stable class costs no store pass). Returns the number of (class,
/// attribute) collections performed — the controllers' ANALYZE work
/// counter. When \p collected is non-null, (class, attribute) pairs already
/// in it are skipped and newly collected pairs are added — callers
/// refreshing several overlapping paths scan each shared class once.
int RefreshStatistics(const ObjectStore& store, const Schema& schema,
                      const Path& path, const std::set<ClassId>& classes,
                      Catalog* catalog,
                      std::set<std::pair<ClassId, std::string>>* collected =
                          nullptr);

}  // namespace pathix
