#pragma once

#include "catalog/catalog.h"
#include "schema/path.h"
#include "storage/object_store.h"

/// \file analyze.h
/// \brief Statistics collection ("ANALYZE"): derives the catalog statistics
/// the cost model needs (n, d, nin per class along a path) from the actual
/// contents of an object store, so that analytic predictions can be
/// compared against measured page accesses on the same data.

namespace pathix {

/// Computes ClassStats for every class in the scope of \p path from the
/// store's live objects. \p params seeds the catalog's physical parameters
/// (they must match the store's pager).
Catalog CollectStatistics(const ObjectStore& store, const Schema& schema,
                          const Path& path, const PhysicalParams& params);

}  // namespace pathix
