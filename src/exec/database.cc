#include "exec/database.h"

#include <chrono>
#include <set>

#include "index/nix_index.h"

namespace pathix {

namespace {

using SteadyClock = std::chrono::steady_clock;

double MicrosSince(SteadyClock::time_point start) {
  return std::chrono::duration<double, std::micro>(SteadyClock::now() - start)
      .count();
}

}  // namespace

Oid SimDatabase::Insert(ClassId cls, AttrValues attrs) {
  Oid oid = kInvalidOid;
  AccessStats io;
  const SteadyClock::time_point start = SteadyClock::now();
  {
    ScopedAccessProbe probe(&pager_, PageOpKind::kInsert);
    Object obj;
    obj.cls = cls;
    obj.attrs = std::move(attrs);
    oid = store_.Insert(std::move(obj));
    // Dedup of shared parts only matters with several paths; the
    // single-path hot path skips the bookkeeping entirely.
    const bool shared = paths_.size() > 1;
    std::set<const SubpathIndex*> visited;
    for (auto& [id, cp] : paths_) {
      (void)id;
      if (cp.physical.has_value()) {
        cp.physical->OnInsert(*store_.Peek(oid), shared ? &visited : nullptr);
      }
    }
    io = probe.Delta();
  }
  insert_ops_->Increment();
  insert_latency_us_->Observe(MicrosSince(start));
  insert_pages_->Observe(static_cast<double>(io.total()));
  Notify(DbOpKind::kInsert, cls, io);
  return oid;
}

Status SimDatabase::Delete(Oid oid) {
  const Object* obj = store_.Peek(oid);
  if (obj == nullptr) {
    return Status::NotFound("object " + std::to_string(oid));
  }
  const ClassId cls = obj->cls;
  Status status = Status::OK();
  AccessStats io;
  const SteadyClock::time_point start = SteadyClock::now();
  {
    ScopedAccessProbe probe(&pager_, PageOpKind::kDelete);
    // Index maintenance first: it needs the pre-deletion image.
    const bool shared = paths_.size() > 1;
    std::set<const SubpathIndex*> visited;
    std::set<const SubpathIndex*> boundary_visited;
    for (auto& [id, cp] : paths_) {
      (void)id;
      if (cp.physical.has_value()) {
        cp.physical->OnDelete(*obj, shared ? &visited : nullptr,
                              shared ? &boundary_visited : nullptr);
      }
    }
    status = store_.Delete(oid);
    io = probe.Delta();
  }
  if (status.ok()) {
    delete_ops_->Increment();
    delete_latency_us_->Observe(MicrosSince(start));
    delete_pages_->Observe(static_cast<double>(io.total()));
    Notify(DbOpKind::kDelete, cls, io);
  }
  return status;
}

Status SimDatabase::RegisterPath(const PathId& id, const Path& path) {
  if (id.empty()) {
    return Status::InvalidArgument("path id must not be empty");
  }
  if (path.length() <= 0) {
    return Status::InvalidArgument("path '" + id + "' is empty");
  }
  ConfiguredPath& cp = paths_[id];
  cp.physical.reset();  // old configuration refers to the old path copy
  cp.path = path;
  // Registry handles are stable for the database's lifetime, so
  // re-registering an id resolves to the same series.
  cp.ops = &metrics_.CounterAt(
      "pathix_db_ops_total",
      {{"kind", "query"}, {"path", id}, {"naive", "false"}});
  cp.naive_ops = &metrics_.CounterAt(
      "pathix_db_ops_total",
      {{"kind", "query"}, {"path", id}, {"naive", "true"}});
  cp.latency_us = &metrics_.HistogramAt("pathix_db_op_latency_us",
                                        {{"kind", "query"}, {"path", id}});
  cp.pages = &metrics_.HistogramAt("pathix_db_op_pages",
                                   {{"kind", "query"}, {"path", id}});
  return Status::OK();
}

Status SimDatabase::ConfigureIndexes(const PathId& id,
                                     IndexConfiguration config) {
  auto it = paths_.find(id);
  if (it == paths_.end()) {
    return Status::FailedPrecondition("path '" + id +
                                      "' is not registered (RegisterPath)");
  }
  // Fresh-build semantics: drop this path's configuration first, so only
  // parts shared with *other* paths' configurations are adopted.
  it->second.physical.reset();
  Result<PhysicalConfiguration> phys =
      PhysicalConfiguration::Create(&pager_, schema_, it->second.path,
                                    std::move(config), &registry_, store_);
  if (!phys.ok()) return phys.status();
  it->second.physical.emplace(std::move(phys).value());
  return Status::OK();
}

Status SimDatabase::ReconfigureIndexes(const PathId& id,
                                       IndexConfiguration config) {
  return ReconfigureIndexes(
      std::vector<std::pair<PathId, IndexConfiguration>>{
          {id, std::move(config)}});
}

Status SimDatabase::ReconfigureIndexes(
    const std::vector<std::pair<PathId, IndexConfiguration>>& changes) {
  for (const auto& [id, config] : changes) {
    (void)config;
    if (paths_.count(id) == 0) {
      return Status::FailedPrecondition("path '" + id +
                                        "' is not registered (RegisterPath)");
    }
  }
  // Create every incoming configuration while all outgoing ones are still
  // alive: parts surviving anywhere (same path across time, or moving to a
  // different path) keep their physical structures.
  std::vector<PhysicalConfiguration> incoming;
  incoming.reserve(changes.size());
  for (const auto& [id, config] : changes) {
    ConfiguredPath& cp = paths_.find(id)->second;
    Result<PhysicalConfiguration> phys = PhysicalConfiguration::Create(
        &pager_, schema_, cp.path, config, &registry_, store_);
    if (!phys.ok()) return phys.status();
    incoming.push_back(std::move(phys).value());
  }
  for (std::size_t i = 0; i < changes.size(); ++i) {
    paths_.find(changes[i].first)
        ->second.physical.emplace(std::move(incoming[i]));
  }
  return Status::OK();
}

void SimDatabase::DropIndexes(const PathId& id) {
  auto it = paths_.find(id);
  if (it != paths_.end()) it->second.physical.reset();
}

bool SimDatabase::has_indexes(const PathId& id) const {
  auto it = paths_.find(id);
  return it != paths_.end() && it->second.physical.has_value();
}

const PhysicalConfiguration& SimDatabase::physical(const PathId& id) const {
  auto it = paths_.find(id);
  PATHIX_DCHECK(it != paths_.end() && it->second.physical.has_value());
  return *it->second.physical;
}

const Path& SimDatabase::path(const PathId& id) const {
  auto it = paths_.find(id);
  PATHIX_DCHECK(it != paths_.end());
  return it->second.path;
}

std::vector<PathId> SimDatabase::path_ids() const {
  std::vector<PathId> ids;
  ids.reserve(paths_.size());
  for (const auto& [id, cp] : paths_) {
    (void)cp;
    ids.push_back(id);
  }
  return ids;
}

SimDatabase::ConfiguredPath* SimDatabase::SolePath() {
  return paths_.size() == 1 ? &paths_.begin()->second : nullptr;
}

const SimDatabase::ConfiguredPath* SimDatabase::SolePath() const {
  return paths_.size() == 1 ? &paths_.begin()->second : nullptr;
}

Status SimDatabase::ConfigureIndexes(const Path& path,
                                     IndexConfiguration config) {
  for (const auto& [id, cp] : paths_) {
    (void)cp;
    if (id != kDefaultPathId) {
      return Status::FailedPrecondition(
          "named paths are registered; use ConfigureIndexes(id, config)");
    }
  }
  PATHIX_RETURN_IF_ERROR(RegisterPath(kDefaultPathId, path));
  return ConfigureIndexes(kDefaultPathId, std::move(config));
}

Status SimDatabase::ReconfigureIndexes(IndexConfiguration config) {
  const ConfiguredPath* sole = SolePath();
  if (sole == nullptr) {
    return Status::FailedPrecondition(
        paths_.empty()
            ? "no path configured (use ConfigureIndexes for the initial "
              "configuration)"
            : "several paths are registered; name one "
              "(ReconfigureIndexes(id, config))");
  }
  return ReconfigureIndexes(paths_.begin()->first, std::move(config));
}

void SimDatabase::SetQueryPath(const Path& path) {
  for (const auto& [id, cp] : paths_) {
    (void)cp;
    PATHIX_DCHECK(id == kDefaultPathId &&
                  "named paths are registered; use RegisterPath");
    if (id != kDefaultPathId) return;  // release builds: refuse, not corrupt
  }
  const Status status = RegisterPath(kDefaultPathId, path);
  PATHIX_DCHECK(status.ok());
  (void)status;
}

bool SimDatabase::has_indexes() const {
  const ConfiguredPath* sole = SolePath();
  return sole != nullptr && sole->physical.has_value();
}

const PhysicalConfiguration& SimDatabase::physical() const {
  const ConfiguredPath* sole = SolePath();
  PATHIX_DCHECK(sole != nullptr && sole->physical.has_value());
  return *sole->physical;
}

Result<std::vector<Oid>> SimDatabase::Query(const PathId& id,
                                            const Key& ending_value,
                                            ClassId target_class,
                                            bool include_subclasses) {
  auto it = paths_.find(id);
  if (it == paths_.end()) {
    return Status::FailedPrecondition("path '" + id + "' is not registered");
  }
  if (!it->second.physical.has_value()) {
    return Status::FailedPrecondition("no index configuration installed on '" +
                                      id + "'");
  }
  std::vector<Oid> oids;
  AccessStats io;
  const SteadyClock::time_point start = SteadyClock::now();
  {
    ScopedAccessProbe probe(&pager_, PageOpKind::kQuery, it->first);
    oids = it->second.physical->Evaluate(ending_value, target_class,
                                         include_subclasses);
    io = probe.Delta();
  }
  it->second.ops->Increment();
  it->second.latency_us->Observe(MicrosSince(start));
  it->second.pages->Observe(static_cast<double>(io.total()));
  Notify(DbOpKind::kQuery, target_class, io, it->first);
  return oids;
}

Result<std::vector<Oid>> SimDatabase::QueryNaive(const PathId& id,
                                                 const Key& ending_value,
                                                 ClassId target_class,
                                                 bool include_subclasses) {
  auto it = paths_.find(id);
  if (it == paths_.end()) {
    return Status::FailedPrecondition("path '" + id + "' is not registered");
  }
  NaiveEvaluator eval(&store_, &schema_, &it->second.path);
  std::vector<Oid> oids;
  AccessStats io;
  const SteadyClock::time_point start = SteadyClock::now();
  {
    ScopedAccessProbe probe(&pager_, PageOpKind::kQuery, it->first);
    oids = eval.Evaluate(ending_value, target_class, include_subclasses,
                         &pager_);
    io = probe.Delta();
  }
  it->second.naive_ops->Increment();
  it->second.latency_us->Observe(MicrosSince(start));
  it->second.pages->Observe(static_cast<double>(io.total()));
  Notify(DbOpKind::kQuery, target_class, io, it->first, /*naive=*/true);
  return oids;
}

Result<std::vector<Oid>> SimDatabase::Query(const Key& ending_value,
                                            ClassId target_class,
                                            bool include_subclasses) {
  if (paths_.size() != 1) {
    return Status::FailedPrecondition(
        paths_.empty() ? "no index configuration installed"
                       : "several paths are registered; name one");
  }
  return Query(paths_.begin()->first, ending_value, target_class,
               include_subclasses);
}

Result<std::vector<Oid>> SimDatabase::QueryNaive(const Key& ending_value,
                                                 ClassId target_class,
                                                 bool include_subclasses) {
  if (paths_.size() != 1) {
    return Status::FailedPrecondition(
        paths_.empty()
            ? "no path configured (naive evaluation follows the configured "
              "path)"
            : "several paths are registered; name one");
  }
  return QueryNaive(paths_.begin()->first, ending_value, target_class,
                    include_subclasses);
}

obs::MetricsSnapshot SimDatabase::SnapshotMetrics() {
  pager_.ExportMetrics(&metrics_);
  registry_.ExportMetrics(&metrics_);
  return metrics_.Snapshot();
}

Status SimDatabase::ValidateIndexes() const {
  for (const auto& [id, cp] : paths_) {
    (void)id;
    if (cp.physical.has_value()) {
      PATHIX_RETURN_IF_ERROR(cp.physical->Validate());
    }
  }
  return Status::OK();
}

Status SimDatabase::ValidateIndexesDeep() const {
  PATHIX_RETURN_IF_ERROR(ValidateIndexes());
  std::set<const SubpathIndex*> checked;
  for (const auto& [id, cp] : paths_) {
    (void)id;
    if (!cp.physical.has_value()) continue;
    for (SubpathIndex* index : cp.physical->indexes()) {
      if (!checked.insert(index).second) continue;
      if (index->org() == IndexOrg::kNIX) {
        const auto* nix = static_cast<const NIXIndex*>(index);
        PATHIX_RETURN_IF_ERROR(nix->ValidateAgainstStore(store_));
      }
    }
  }
  return Status::OK();
}

}  // namespace pathix
