#include "exec/database.h"

#include <chrono>
#include <set>

#include "index/nix_index.h"

namespace pathix {

namespace {

using SteadyClock = std::chrono::steady_clock;

double MicrosSince(SteadyClock::time_point start) {
  return std::chrono::duration<double, std::micro>(SteadyClock::now() - start)
      .count();
}

}  // namespace

Oid SimDatabase::Insert(ClassId cls, AttrValues attrs) {
  Oid oid = kInvalidOid;
  AccessStats io;
  const SteadyClock::time_point start = SteadyClock::now();
  {
    ReaderMutexLock commit_guard(&commit_mu_);
    ScopedAccessProbe probe(&pager_, PageOpKind::kInsert);
    Object obj;
    obj.cls = cls;
    obj.attrs = std::move(attrs);
    const std::shared_ptr<const Object> stored =
        store_.InsertAndGet(std::move(obj));
    oid = stored->oid;
    // Dedup of shared parts only matters with several paths; the
    // single-path hot path skips the bookkeeping entirely.
    const bool shared = paths_.size() > 1;
    std::set<const SubpathIndex*> visited;
    for (auto& [id, cp] : paths_) {
      (void)id;
      if (const std::shared_ptr<PhysicalConfiguration> phys =
              cp.physical.load()) {
        phys->OnInsert(*stored, shared ? &visited : nullptr);
      }
    }
    io = probe.Delta();
  }
  insert_ops_->Increment();
  insert_latency_us_->Observe(MicrosSince(start));
  insert_pages_->Observe(static_cast<double>(io.total()));
  Notify(DbOpKind::kInsert, cls, io);
  return oid;
}

Status SimDatabase::Delete(Oid oid) {
  ClassId cls = kInvalidClass;
  AccessStats io;
  const SteadyClock::time_point start = SteadyClock::now();
  {
    ReaderMutexLock commit_guard(&commit_mu_);
    ScopedAccessProbe probe(&pager_, PageOpKind::kDelete);
    // Claim first: of two racing deleters of the same oid exactly one
    // receives the pre-deletion image and runs the index maintenance from
    // it; the loser observes NotFound and counts nothing.
    const std::shared_ptr<const Object> obj = store_.Take(oid);
    if (obj == nullptr) {
      return Status::NotFound("object " + std::to_string(oid));
    }
    cls = obj->cls;
    const bool shared = paths_.size() > 1;
    std::set<const SubpathIndex*> visited;
    std::set<const SubpathIndex*> boundary_visited;
    for (auto& [id, cp] : paths_) {
      (void)id;
      if (const std::shared_ptr<PhysicalConfiguration> phys =
              cp.physical.load()) {
        phys->OnDelete(*obj, shared ? &visited : nullptr,
                       shared ? &boundary_visited : nullptr);
      }
    }
    io = probe.Delta();
  }
  delete_ops_->Increment();
  delete_latency_us_->Observe(MicrosSince(start));
  delete_pages_->Observe(static_cast<double>(io.total()));
  Notify(DbOpKind::kDelete, cls, io);
  return Status::OK();
}

Status SimDatabase::RegisterPath(const PathId& id, const Path& path) {
  if (id.empty()) {
    return Status::InvalidArgument("path id must not be empty");
  }
  if (path.length() <= 0) {
    return Status::InvalidArgument("path '" + id + "' is empty");
  }
  MutexLock commit(&commit_mu_);
  ConfiguredPath& cp = paths_[id];
  // The old configuration refers to the old path copy; drop it. Not an
  // epoch publish — registration precedes serving.
  cp.physical.store(nullptr);
  cp.path = path;
  // Registry handles are stable for the database's lifetime, so
  // re-registering an id resolves to the same series.
  cp.ops = &metrics_.CounterAt(
      "pathix_db_ops_total",
      {{"kind", "query"}, {"path", id}, {"naive", "false"}});
  cp.naive_ops = &metrics_.CounterAt(
      "pathix_db_ops_total",
      {{"kind", "query"}, {"path", id}, {"naive", "true"}});
  cp.latency_us = &metrics_.HistogramAt("pathix_db_op_latency_us",
                                        {{"kind", "query"}, {"path", id}});
  cp.pages = &metrics_.HistogramAt("pathix_db_op_pages",
                                   {{"kind", "query"}, {"path", id}});
  return Status::OK();
}

void SimDatabase::PublishEpoch(ConfiguredPath* cp,
                               std::shared_ptr<PhysicalConfiguration> next) {
  cp->physical.store(std::move(next));
  config_epochs_->Increment();
}

Status SimDatabase::ConfigureIndexes(const PathId& id,
                                     IndexConfiguration config) {
  auto it = paths_.find(id);
  if (it == paths_.end()) {
    return Status::FailedPrecondition("path '" + id +
                                      "' is not registered (RegisterPath)");
  }
  MutexLock commit(&commit_mu_);
  // Fresh-build semantics: drop this path's configuration first, so only
  // parts shared with *other* paths' configurations — or still pinned by
  // an in-flight query's snapshot — are adopted.
  it->second.physical.store(nullptr);
  Result<PhysicalConfiguration> phys =
      PhysicalConfiguration::Create(&pager_, schema_, it->second.path,
                                    std::move(config), &registry_, store_);
  if (!phys.ok()) return phys.status();
  PublishEpoch(&it->second,
               std::make_shared<PhysicalConfiguration>(std::move(phys).value()));
  return Status::OK();
}

Status SimDatabase::ReconfigureIndexes(const PathId& id,
                                       IndexConfiguration config) {
  return ReconfigureIndexes(
      std::vector<std::pair<PathId, IndexConfiguration>>{
          {id, std::move(config)}});
}

Status SimDatabase::ReconfigureIndexes(
    const std::vector<std::pair<PathId, IndexConfiguration>>& changes) {
  for (const auto& [id, config] : changes) {
    (void)config;
    if (paths_.count(id) == 0) {
      return Status::FailedPrecondition("path '" + id +
                                        "' is not registered (RegisterPath)");
    }
  }
  // The commit: build every incoming configuration while all outgoing ones
  // are still published — parts surviving anywhere (same path across time,
  // or moving to a different path) keep their physical structures — then
  // publish the new epochs. Exclusive commit_mu_ makes the swap a
  // quiescent point between updates; queries keep running on whichever
  // epoch they pinned, and the registry releases the outgoing parts when
  // the last snapshot drains.
  MutexLock commit(&commit_mu_);
  std::vector<std::shared_ptr<PhysicalConfiguration>> incoming;
  incoming.reserve(changes.size());
  for (const auto& [id, config] : changes) {
    ConfiguredPath& cp = paths_.find(id)->second;
    Result<PhysicalConfiguration> phys = PhysicalConfiguration::Create(
        &pager_, schema_, cp.path, config, &registry_, store_);
    if (!phys.ok()) return phys.status();
    incoming.push_back(
        std::make_shared<PhysicalConfiguration>(std::move(phys).value()));
  }
  for (std::size_t i = 0; i < changes.size(); ++i) {
    PublishEpoch(&paths_.find(changes[i].first)->second,
                 std::move(incoming[i]));
  }
  return Status::OK();
}

void SimDatabase::DropIndexes(const PathId& id) {
  auto it = paths_.find(id);
  if (it == paths_.end()) return;
  MutexLock commit(&commit_mu_);
  it->second.physical.store(nullptr);
}

bool SimDatabase::has_indexes(const PathId& id) const {
  auto it = paths_.find(id);
  return it != paths_.end() && it->second.physical.load() != nullptr;
}

const PhysicalConfiguration& SimDatabase::physical(const PathId& id) const {
  auto it = paths_.find(id);
  PATHIX_DCHECK(it != paths_.end());
  const std::shared_ptr<PhysicalConfiguration> snapshot =
      it->second.physical.load();
  PATHIX_DCHECK(snapshot != nullptr);
  // The epoch keeps the configuration alive after the local reference
  // dies; see the header contract (no concurrent swap).
  return *snapshot;
}

const Path& SimDatabase::path(const PathId& id) const {
  auto it = paths_.find(id);
  PATHIX_DCHECK(it != paths_.end());
  return it->second.path;
}

std::vector<PathId> SimDatabase::path_ids() const {
  std::vector<PathId> ids;
  ids.reserve(paths_.size());
  for (const auto& [id, cp] : paths_) {
    (void)cp;
    ids.push_back(id);
  }
  return ids;
}

SimDatabase::ConfiguredPath* SimDatabase::SolePath() {
  return paths_.size() == 1 ? &paths_.begin()->second : nullptr;
}

const SimDatabase::ConfiguredPath* SimDatabase::SolePath() const {
  return paths_.size() == 1 ? &paths_.begin()->second : nullptr;
}

Status SimDatabase::ConfigureIndexes(const Path& path,
                                     IndexConfiguration config) {
  for (const auto& [id, cp] : paths_) {
    (void)cp;
    if (id != kDefaultPathId) {
      return Status::FailedPrecondition(
          "named paths are registered; use ConfigureIndexes(id, config)");
    }
  }
  PATHIX_RETURN_IF_ERROR(RegisterPath(kDefaultPathId, path));
  return ConfigureIndexes(kDefaultPathId, std::move(config));
}

Status SimDatabase::ReconfigureIndexes(IndexConfiguration config) {
  const ConfiguredPath* sole = SolePath();
  if (sole == nullptr) {
    return Status::FailedPrecondition(
        paths_.empty()
            ? "no path configured (use ConfigureIndexes for the initial "
              "configuration)"
            : "several paths are registered; name one "
              "(ReconfigureIndexes(id, config))");
  }
  return ReconfigureIndexes(paths_.begin()->first, std::move(config));
}

void SimDatabase::SetQueryPath(const Path& path) {
  for (const auto& [id, cp] : paths_) {
    (void)cp;
    PATHIX_DCHECK(id == kDefaultPathId &&
                  "named paths are registered; use RegisterPath");
    if (id != kDefaultPathId) return;  // release builds: refuse, not corrupt
  }
  const Status status = RegisterPath(kDefaultPathId, path);
  PATHIX_DCHECK(status.ok());
  (void)status;
}

bool SimDatabase::has_indexes() const {
  const ConfiguredPath* sole = SolePath();
  return sole != nullptr && sole->physical.load() != nullptr;
}

const PhysicalConfiguration& SimDatabase::physical() const {
  const ConfiguredPath* sole = SolePath();
  PATHIX_DCHECK(sole != nullptr);
  const std::shared_ptr<PhysicalConfiguration> snapshot =
      sole->physical.load();
  PATHIX_DCHECK(snapshot != nullptr);
  return *snapshot;
}

std::vector<Oid> SimDatabase::RunIndexedQuery(ConfiguredPath* cp,
                                              const std::string& label,
                                              PhysicalConfiguration* phys,
                                              const Key& ending_value,
                                              ClassId target_class,
                                              bool include_subclasses) {
  std::vector<Oid> oids;
  AccessStats io;
  const SteadyClock::time_point start = SteadyClock::now();
  {
    ScopedAccessProbe probe(&pager_, PageOpKind::kQuery, label);
    oids = phys->Evaluate(ending_value, target_class, include_subclasses);
    io = probe.Delta();
  }
  cp->ops->Increment();
  cp->latency_us->Observe(MicrosSince(start));
  cp->pages->Observe(static_cast<double>(io.total()));
  Notify(DbOpKind::kQuery, target_class, io, label);
  return oids;
}

std::vector<Oid> SimDatabase::RunNaiveQuery(ConfiguredPath* cp,
                                            const std::string& label,
                                            const Key& ending_value,
                                            ClassId target_class,
                                            bool include_subclasses) {
  NaiveEvaluator eval(&store_, &schema_, &cp->path);
  std::vector<Oid> oids;
  AccessStats io;
  const SteadyClock::time_point start = SteadyClock::now();
  {
    ScopedAccessProbe probe(&pager_, PageOpKind::kQuery, label);
    oids = eval.Evaluate(ending_value, target_class, include_subclasses,
                         &pager_);
    io = probe.Delta();
  }
  cp->naive_ops->Increment();
  cp->latency_us->Observe(MicrosSince(start));
  cp->pages->Observe(static_cast<double>(io.total()));
  Notify(DbOpKind::kQuery, target_class, io, label, /*naive=*/true);
  return oids;
}

Result<std::vector<Oid>> SimDatabase::Query(const PathId& id,
                                            const Key& ending_value,
                                            ClassId target_class,
                                            bool include_subclasses) {
  auto it = paths_.find(id);
  if (it == paths_.end()) {
    return Status::FailedPrecondition("path '" + id + "' is not registered");
  }
  // Pin the current epoch: the evaluation runs to completion on this
  // snapshot even if a reconfiguration publishes mid-flight.
  const std::shared_ptr<PhysicalConfiguration> phys =
      it->second.physical.load();
  if (phys == nullptr) {
    return Status::FailedPrecondition("no index configuration installed on '" +
                                      id + "'");
  }
  return RunIndexedQuery(&it->second, it->first, phys.get(), ending_value,
                         target_class, include_subclasses);
}

Result<std::vector<Oid>> SimDatabase::QueryNaive(const PathId& id,
                                                 const Key& ending_value,
                                                 ClassId target_class,
                                                 bool include_subclasses) {
  auto it = paths_.find(id);
  if (it == paths_.end()) {
    return Status::FailedPrecondition("path '" + id + "' is not registered");
  }
  return RunNaiveQuery(&it->second, it->first, ending_value, target_class,
                       include_subclasses);
}

Result<SimDatabase::QueryOutcome> SimDatabase::QueryAny(
    const PathId& id, const Key& ending_value, ClassId target_class,
    bool include_subclasses) {
  auto it = paths_.find(id);
  if (it == paths_.end()) {
    return Status::FailedPrecondition("path '" + id + "' is not registered");
  }
  QueryOutcome outcome;
  // One load decides *and* pins: no has_indexes()-then-Query race.
  if (const std::shared_ptr<PhysicalConfiguration> phys =
          it->second.physical.load()) {
    outcome.oids = RunIndexedQuery(&it->second, it->first, phys.get(),
                                   ending_value, target_class,
                                   include_subclasses);
  } else {
    outcome.naive = true;
    outcome.oids = RunNaiveQuery(&it->second, it->first, ending_value,
                                 target_class, include_subclasses);
  }
  return outcome;
}

Result<std::vector<Oid>> SimDatabase::Query(const Key& ending_value,
                                            ClassId target_class,
                                            bool include_subclasses) {
  if (paths_.size() != 1) {
    return Status::FailedPrecondition(
        paths_.empty() ? "no index configuration installed"
                       : "several paths are registered; name one");
  }
  return Query(paths_.begin()->first, ending_value, target_class,
               include_subclasses);
}

Result<std::vector<Oid>> SimDatabase::QueryNaive(const Key& ending_value,
                                                 ClassId target_class,
                                                 bool include_subclasses) {
  if (paths_.size() != 1) {
    return Status::FailedPrecondition(
        paths_.empty()
            ? "no path configured (naive evaluation follows the configured "
              "path)"
            : "several paths are registered; name one");
  }
  return QueryNaive(paths_.begin()->first, ending_value, target_class,
                    include_subclasses);
}

obs::MetricsSnapshot SimDatabase::SnapshotMetrics() {
  pager_.ExportMetrics(&metrics_);
  registry_.ExportMetrics(&metrics_);
  return metrics_.Snapshot();
}

Status SimDatabase::ValidateIndexes() const {
  for (const auto& [id, cp] : paths_) {
    (void)id;
    if (const std::shared_ptr<PhysicalConfiguration> phys =
            cp.physical.load()) {
      PATHIX_RETURN_IF_ERROR(phys->Validate());
    }
  }
  return Status::OK();
}

Status SimDatabase::ValidateIndexesDeep() const {
  PATHIX_RETURN_IF_ERROR(ValidateIndexes());
  std::set<const SubpathIndex*> checked;
  for (const auto& [id, cp] : paths_) {
    (void)id;
    const std::shared_ptr<PhysicalConfiguration> phys = cp.physical.load();
    if (phys == nullptr) continue;
    for (SubpathIndex* index : phys->indexes()) {
      if (!checked.insert(index).second) continue;
      if (index->org() == IndexOrg::kNIX) {
        const auto* nix = static_cast<const NIXIndex*>(index);
        PATHIX_RETURN_IF_ERROR(nix->ValidateAgainstStore(store_));
      }
    }
  }
  return Status::OK();
}

}  // namespace pathix
