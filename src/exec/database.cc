#include "exec/database.h"

#include "index/nix_index.h"

namespace pathix {

Oid SimDatabase::Insert(ClassId cls, AttrValues attrs) {
  Object obj;
  obj.cls = cls;
  obj.attrs = std::move(attrs);
  const Oid oid = store_.Insert(std::move(obj));
  if (physical_.has_value()) {
    physical_->OnInsert(*store_.Peek(oid));
  }
  Notify(DbOpKind::kInsert, cls);
  return oid;
}

Status SimDatabase::Delete(Oid oid) {
  const Object* obj = store_.Peek(oid);
  if (obj == nullptr) {
    return Status::NotFound("object " + std::to_string(oid));
  }
  const ClassId cls = obj->cls;
  // Index maintenance first: it needs the pre-deletion image.
  if (physical_.has_value()) {
    physical_->OnDelete(*obj);
  }
  const Status status = store_.Delete(oid);
  if (status.ok()) Notify(DbOpKind::kDelete, cls);
  return status;
}

Status SimDatabase::ConfigureIndexes(const Path& path,
                                     IndexConfiguration config) {
  // The physical configuration keeps pointers into this database; bind it
  // to our own stable copy of the path, not the caller's.
  path_ = path;
  Result<PhysicalConfiguration> phys = PhysicalConfiguration::Create(
      &pager_, schema_, *path_, std::move(config));
  if (!phys.ok()) {
    path_.reset();
    physical_.reset();
    return phys.status();
  }
  physical_.emplace(std::move(phys).value());
  physical_->Build(store_);
  return Status::OK();
}

Status SimDatabase::ReconfigureIndexes(IndexConfiguration config) {
  if (!path_.has_value()) {
    return Status::FailedPrecondition(
        "no path configured (use ConfigureIndexes for the initial "
        "configuration)");
  }
  Result<PhysicalConfiguration> phys = PhysicalConfiguration::CreateReusing(
      &pager_, schema_, *path_, std::move(config),
      physical_.has_value() ? &*physical_ : nullptr, store_);
  if (!phys.ok()) return phys.status();
  physical_.emplace(std::move(phys).value());
  return Status::OK();
}

Result<std::vector<Oid>> SimDatabase::Query(const Key& ending_value,
                                            ClassId target_class,
                                            bool include_subclasses) {
  if (!physical_.has_value()) {
    return Status::FailedPrecondition("no index configuration installed");
  }
  std::vector<Oid> oids =
      physical_->Evaluate(ending_value, target_class, include_subclasses);
  Notify(DbOpKind::kQuery, target_class);
  return oids;
}

Result<std::vector<Oid>> SimDatabase::QueryNaive(const Key& ending_value,
                                                 ClassId target_class,
                                                 bool include_subclasses) {
  if (!path_.has_value()) {
    return Status::FailedPrecondition(
        "no path configured (naive evaluation follows the configured path)");
  }
  NaiveEvaluator eval(&store_, &schema_, &*path_);
  Result<std::vector<Oid>> oids = eval.Evaluate(ending_value, target_class,
                                                include_subclasses, &pager_);
  if (oids.ok()) Notify(DbOpKind::kQuery, target_class);
  return oids;
}

Status SimDatabase::ValidateIndexes() const {
  if (!physical_.has_value()) return Status::OK();
  return physical_->Validate();
}

Status SimDatabase::ValidateIndexesDeep() const {
  if (!physical_.has_value()) return Status::OK();
  PATHIX_RETURN_IF_ERROR(physical_->Validate());
  for (const auto& index : physical_->indexes()) {
    if (index->org() == IndexOrg::kNIX) {
      const auto* nix = static_cast<const NIXIndex*>(index.get());
      PATHIX_RETURN_IF_ERROR(nix->ValidateAgainstStore(store_));
    }
  }
  return Status::OK();
}

}  // namespace pathix
