#pragma once

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "catalog/catalog.h"
#include "common/epoch_ptr.h"
#include "common/mutex.h"
#include "exec/naive_evaluator.h"
#include "index/physical_config.h"
#include "obs/metrics.h"

/// \file database.h
/// \brief SimDatabase: the simulated object database — schema + paged object
/// store + a set of *named configured paths*, each optionally carrying a
/// physical index configuration. Physical parts that are structurally
/// identical across paths (same class/attribute sequence and organization)
/// are built once and shared through the database's PhysicalPartRegistry.
/// Every operation counts page accesses, the paper's cost metric.
///
/// Concurrency model. Each path's installed configuration is an *epoch*
/// (common/epoch_ptr.h): queries load a snapshot and never block — an
/// online reconfiguration builds the incoming configuration off to the
/// side and publishes it atomically, while in-flight queries finish on the
/// old epoch's parts (kept alive by their snapshot; the registry releases
/// them when the last one drains). Updates take the commit mutex *shared*
/// so that a configuration swap (exclusive) observes a quiescent point
/// between updates: index maintenance always runs against a configuration
/// that is still current when the op's probe closes. Structure access
/// below this level is latched per part and sharded per class
/// (index/part_registry.h, storage/object_store.h). Path *registration*
/// is not serialized against serving — register every path before
/// spinning up worker threads.

namespace pathix {

/// Name of a configured path within one database ("people_by_division").
using PathId = std::string;

/// The path id the single-path convenience API binds to.
inline constexpr const char kDefaultPathId[] = "default";

/// Kind of a counted database operation, as seen by a DbOpObserver.
enum class DbOpKind { kQuery, kInsert, kDelete };

/// One observed operation. Queries carry the id of the path they were
/// evaluated on; inserts and deletions are path-agnostic (they maintain the
/// indexes of every configured path whose scope contains the class), so
/// \p path is empty for them. \p pages is the operation's measured page
/// delta (a ScopedAccessProbe around the store/index work, closed before
/// the observer fires — observer-triggered rebuilds are not included), so
/// observers can price the live traffic they watch: the WorkloadMonitor
/// turns the naive-scan deltas into the priced current-cost of an
/// unconfigured path.
struct DbOpEvent {
  DbOpKind kind = DbOpKind::kQuery;
  ClassId cls = kInvalidClass;    ///< operated/queried class
  std::string_view path;          ///< queried path id; empty for updates
  bool naive = false;             ///< query evaluated by naive scan
  AccessStats pages;              ///< measured page accesses of the op
};

/// \brief Observer of the database's operation stream (the hook the online
/// index-selection subsystem estimates the live load distribution from).
///
/// Events fire as the *last* action of Insert/Delete/Query (after the store
/// and every configured index have been updated and the result has been
/// materialized), so an observer may reconfigure the database's indexes —
/// including from within its own callback — without invalidating the
/// operation in flight. Observer work is expected to be uncounted (catalog
/// reads, index rebuilds); it does not pollute the pager's access stats
/// beyond what its own actions explicitly charge.
class DbOpObserver {
 public:
  virtual ~DbOpObserver() = default;

  /// Queries report both indexed and naive evaluations; failed operations
  /// (unknown oid, no configuration) are not reported. \p ev.path views a
  /// string owned by the database; copy it to retain beyond the callback.
  virtual void OnOperation(const DbOpEvent& ev) = 0;
};

class SimDatabase {
 public:
  SimDatabase(Schema schema, PhysicalParams params)
      : schema_(std::move(schema)),
        pager_(static_cast<std::size_t>(params.page_size)),
        store_(&pager_) {}

  // The physical configurations hold pointers into this object; pin it.
  SimDatabase(const SimDatabase&) = delete;
  SimDatabase& operator=(const SimDatabase&) = delete;

  const Schema& schema() const { return schema_; }
  Pager& pager() { return pager_; }
  const Pager& pager() const { return pager_; }
  ObjectStore& store() { return store_; }
  const ObjectStore& store() const { return store_; }

  // ------------------------------------------------------------- updates

  /// Stores a new object and maintains the configured indexes of every
  /// path; a physical part shared between paths is maintained exactly once.
  /// Returns the assigned oid.
  Oid Insert(ClassId cls, AttrValues attrs);

  /// Deletes an object, maintaining the configured indexes (including the
  /// preceding subpath's key record, Definition 4.2) of every path.
  Status Delete(Oid oid);

  // ------------------------------------------------------------- indexing

  /// Registers (or re-registers) \p path under \p id for naive evaluation
  /// and later (Re)ConfigureIndexes, without building any indexes.
  /// Re-registering drops the id's installed configuration. Not serialized
  /// against serving: register paths before starting worker threads.
  Status RegisterPath(const PathId& id, const Path& path);

  /// Builds the physical indexes of \p config on the registered path \p id
  /// from the current store contents (uncounted). Replaces that path's
  /// previous configuration *before* acquiring the new parts, so this is a
  /// fresh build except for parts shared with other paths' configurations.
  /// FailedPrecondition when \p id is not registered.
  Status ConfigureIndexes(const PathId& id, IndexConfiguration config);

  /// Switches the index layout on path \p id without touching parts that
  /// survive into the new configuration or are shared with another path's
  /// configuration (same structural identity): those keep their physical
  /// structures; only genuinely new parts are built from the store
  /// (uncounted — the transition's page price is modeled by
  /// online/transition_cost.h). FailedPrecondition when \p id is not
  /// registered.
  Status ReconfigureIndexes(const PathId& id, IndexConfiguration config);

  /// Reconfigures several paths as one step: every incoming configuration
  /// is created while *all* outgoing ones are still alive, so a part moving
  /// between paths is never dropped and rebuilt mid-batch (the joint
  /// transition cost model prices exactly this semantics).
  Status ReconfigureIndexes(
      const std::vector<std::pair<PathId, IndexConfiguration>>& changes);

  /// Drops path \p id's installed configuration (keeps the registration).
  void DropIndexes(const PathId& id);

  bool has_path(const PathId& id) const { return paths_.count(id) > 0; }
  bool has_indexes(const PathId& id) const;

  /// The installed configuration of path \p id. DCHECKs that one is
  /// installed. The reference is borrowed from the *current* epoch:
  /// callers must rule out a concurrent swap (the controller does — it is
  /// the only swapper and holds its check mutex; concurrent *queries* go
  /// through Query/QueryAny, which pin their own snapshot).
  const PhysicalConfiguration& physical(const PathId& id) const;
  const Path& path(const PathId& id) const;

  /// Registered path ids, in id order (deterministic).
  std::vector<PathId> path_ids() const;

  /// The shared-part registry (inspection: distinct structures, refcounts).
  const PhysicalPartRegistry& registry() const { return registry_; }

  /// This database's own metrics registry (obs/metrics.h). Every counted
  /// operation lands here — per-path query counters (split indexed/naive),
  /// insert/delete counters, and per-op latency/page histograms — so two
  /// databases replaying the same trace in one process report disjoint
  /// counters. Instruments record as the op completes; pager and part
  /// registry counters enter via SnapshotMetrics()'s mirror step.
  obs::MetricsRegistry& metrics() { return metrics_; }

  /// Mirrors the pager's and part registry's counters into metrics() and
  /// returns the combined point-in-time snapshot.
  obs::MetricsSnapshot SnapshotMetrics();

  // ------------------------------------------- single-path convenience API
  //
  // The degenerate case the paper's offline pipeline and the single-path
  // online controller run in: exactly one path, registered under
  // kDefaultPathId. These fail/DCHECK when other named paths exist.

  /// Registers \p path under kDefaultPathId and builds \p config on it.
  Status ConfigureIndexes(const Path& path, IndexConfiguration config);

  /// Reconfigures the sole registered path.
  Status ReconfigureIndexes(IndexConfiguration config);

  /// Binds \p path under kDefaultPathId for naive evaluation (and later
  /// ReconfigureIndexes) without building any indexes — the online
  /// subsystem's cold start. Drops any installed configuration.
  void SetQueryPath(const Path& path);

  bool has_indexes() const;
  const PhysicalConfiguration& physical() const;

  /// Registers \p observer for the operation stream (nullptr detaches).
  /// At most one observer; the caller keeps ownership and must detach (or
  /// outlive the database) before the observer dies.
  void SetObserver(DbOpObserver* observer) EXCLUDES(observer_mu_) {
    MutexLock lock(&observer_mu_);
    observer_ = observer;
  }

  // -------------------------------------------------------------- queries

  /// Evaluates "A_n = value" w.r.t. \p target_class via path \p id's
  /// configured indexes. Counted (index pages only — the searching cost of
  /// Section 4).
  Result<std::vector<Oid>> Query(const PathId& id, const Key& ending_value,
                                 ClassId target_class,
                                 bool include_subclasses = false);

  /// What QueryAny evaluated and how.
  struct QueryOutcome {
    std::vector<Oid> oids;
    bool naive = false;  ///< evaluated by naive scan (no configuration)
  };

  /// Evaluates via path \p id's configured indexes when a configuration is
  /// installed, by naive scan otherwise — deciding on *one* epoch snapshot,
  /// so the answer is consistent even when a reconfiguration lands between
  /// the decision and the evaluation (the has_indexes()-then-Query idiom is
  /// racy under concurrency; serving threads use this instead). Accounting
  /// and observer events are identical to Query/QueryNaive.
  Result<QueryOutcome> QueryAny(const PathId& id, const Key& ending_value,
                                ClassId target_class,
                                bool include_subclasses = false);

  /// The same query evaluated by scanning and navigating path \p id
  /// (no indexes).
  Result<std::vector<Oid>> QueryNaive(const PathId& id,
                                      const Key& ending_value,
                                      ClassId target_class,
                                      bool include_subclasses = false);

  /// Single-path variants: dispatch to the sole registered path.
  Result<std::vector<Oid>> Query(const Key& ending_value,
                                 ClassId target_class,
                                 bool include_subclasses = false);
  Result<std::vector<Oid>> QueryNaive(const Key& ending_value,
                                      ClassId target_class,
                                      bool include_subclasses = false);

  // ------------------------------------------------------------ integrity

  /// Structural invariants of every configured index of every path.
  Status ValidateIndexes() const;

  /// Deep check: NIX contents against ground-truth reachability, and the
  /// MX/MIX trees' structure. Slow; tests only.
  Status ValidateIndexesDeep() const;

 private:
  struct ConfiguredPath {
    Path path;
    /// The path's current configuration epoch (null = unconfigured).
    /// Queries pin a snapshot; commits publish a fresh shared_ptr.
    EpochPtr<PhysicalConfiguration> physical;
    // Metric handles into metrics_, resolved once at RegisterPath so the
    // query hot path updates through pointers (no registry lookup per op).
    obs::Counter* ops = nullptr;        ///< queries via indexes
    obs::Counter* naive_ops = nullptr;  ///< queries via naive scan
    obs::Histogram* latency_us = nullptr;
    obs::Histogram* pages = nullptr;
  };

  /// Dispatches to the registered observer. The pointer is read under
  /// observer_mu_ but the callback runs outside it: observers reconfigure
  /// the database from within OnOperation, and holding any lock across
  /// that re-entry would deadlock.
  void Notify(DbOpKind kind, ClassId cls, const AccessStats& pages,
              std::string_view path = {}, bool naive = false)
      EXCLUDES(observer_mu_) {
    DbOpObserver* observer = nullptr;
    {
      ReaderMutexLock lock(&observer_mu_);
      observer = observer_;
    }
    if (observer != nullptr) {
      observer->OnOperation({kind, cls, path, naive, pages});
    }
  }

  /// The sole registered path, for the single-path API (nullptr + error
  /// message when there are zero or several).
  ConfiguredPath* SolePath();
  const ConfiguredPath* SolePath() const;

  /// Counted indexed evaluation on the pinned snapshot \p phys (the caller
  /// keeps the epoch reference alive across the call): probe, metrics,
  /// observer — the shared body of Query and QueryAny.
  std::vector<Oid> RunIndexedQuery(ConfiguredPath* cp,
                                   const std::string& label,
                                   PhysicalConfiguration* phys,
                                   const Key& ending_value,
                                   ClassId target_class,
                                   bool include_subclasses);

  /// Counted naive evaluation — the shared body of QueryNaive and QueryAny.
  std::vector<Oid> RunNaiveQuery(ConfiguredPath* cp, const std::string& label,
                                 const Key& ending_value,
                                 ClassId target_class,
                                 bool include_subclasses);

  /// Publishes \p next as path \p cp's new configuration epoch and bumps
  /// the epoch counter. Caller holds commit_mu_ exclusively (or is
  /// single-threaded setup code).
  void PublishEpoch(ConfiguredPath* cp,
                    std::shared_ptr<PhysicalConfiguration> next);

  Schema schema_;
  Pager pager_;
  ObjectStore store_;
  obs::MetricsRegistry metrics_;
  // Handles for the path-agnostic update instruments (queries cache theirs
  // per ConfiguredPath). Initialized here so they may follow metrics_ in
  // declaration order.
  obs::Counter* insert_ops_ =
      &metrics_.CounterAt("pathix_db_ops_total", {{"kind", "insert"}});
  obs::Counter* delete_ops_ =
      &metrics_.CounterAt("pathix_db_ops_total", {{"kind", "delete"}});
  obs::Histogram* insert_latency_us_ =
      &metrics_.HistogramAt("pathix_db_op_latency_us", {{"kind", "insert"}});
  obs::Histogram* insert_pages_ =
      &metrics_.HistogramAt("pathix_db_op_pages", {{"kind", "insert"}});
  obs::Histogram* delete_latency_us_ =
      &metrics_.HistogramAt("pathix_db_op_latency_us", {{"kind", "delete"}});
  obs::Histogram* delete_pages_ =
      &metrics_.HistogramAt("pathix_db_op_pages", {{"kind", "delete"}});
  /// Configuration epochs published over this database's lifetime.
  obs::Counter* config_epochs_ =
      &metrics_.CounterAt("pathix_db_config_epochs_total");
  // Node-based map: Path objects need stable addresses (physical
  // configurations point into them).
  std::map<PathId, ConfiguredPath> paths_;
  PhysicalPartRegistry registry_;
  /// The update/commit reader-writer lock: Insert/Delete hold it *shared*
  /// around their probe scope (released before Notify, so an observer may
  /// reconfigure in-callback); the configuration-change APIs hold it
  /// *exclusive*, making every epoch swap a quiescent point between
  /// updates. Queries never touch it — they run on pinned snapshots.
  /// Top of the lock hierarchy (common/mutex.h).
  mutable Mutex commit_mu_;
  mutable Mutex observer_mu_;
  DbOpObserver* observer_ GUARDED_BY(observer_mu_) = nullptr;
};

}  // namespace pathix
