#pragma once

#include <memory>
#include <optional>

#include "catalog/catalog.h"
#include "exec/naive_evaluator.h"
#include "index/physical_config.h"

/// \file database.h
/// \brief SimDatabase: the simulated object database — schema + paged object
/// store + (optionally) a physical index configuration on one path. Every
/// operation counts page accesses, the paper's cost metric.

namespace pathix {

/// Kind of a counted database operation, as seen by a DbOpObserver.
enum class DbOpKind { kQuery, kInsert, kDelete };

/// \brief Observer of the database's operation stream (the hook the online
/// index-selection subsystem estimates the live load distribution from).
///
/// Events fire as the *last* action of Insert/Delete/Query (after the store
/// and every configured index have been updated and the result has been
/// materialized), so an observer may reconfigure the database's indexes —
/// including from within its own callback — without invalidating the
/// operation in flight. Observer work is expected to be uncounted (catalog
/// reads, index rebuilds); it does not pollute the pager's access stats
/// beyond what its own actions explicitly charge.
class DbOpObserver {
 public:
  virtual ~DbOpObserver() = default;

  /// \p cls is the inserted/deleted object's class, or the query's target
  /// class. Queries report both indexed and naive evaluations; failed
  /// operations (unknown oid, no configuration) are not reported.
  virtual void OnOperation(DbOpKind kind, ClassId cls) = 0;
};

class SimDatabase {
 public:
  SimDatabase(Schema schema, PhysicalParams params)
      : schema_(std::move(schema)),
        pager_(static_cast<std::size_t>(params.page_size)),
        store_(&pager_) {}

  // The physical configuration holds pointers into this object; pin it.
  SimDatabase(const SimDatabase&) = delete;
  SimDatabase& operator=(const SimDatabase&) = delete;

  const Schema& schema() const { return schema_; }
  Pager& pager() { return pager_; }
  const Pager& pager() const { return pager_; }
  ObjectStore& store() { return store_; }
  const ObjectStore& store() const { return store_; }

  // ------------------------------------------------------------- updates

  /// Stores a new object and maintains the configured indexes. Returns the
  /// assigned oid.
  Oid Insert(ClassId cls, AttrValues attrs);

  /// Deletes an object, maintaining the configured indexes (including the
  /// preceding subpath's key record, Definition 4.2).
  Status Delete(Oid oid);

  // ------------------------------------------------------------- indexing

  /// Builds the physical indexes of \p config on \p path from the current
  /// store contents (uncounted). Replaces any previous configuration.
  Status ConfigureIndexes(const Path& path, IndexConfiguration config);

  /// Switches the index layout on the already-configured path without
  /// touching parts that are identical in both configurations (same subpath
  /// range and organization): those keep their physical structures; only
  /// genuinely new parts are built from the store (uncounted, like
  /// ConfigureIndexes — the transition's page price is modeled by
  /// online/transition_cost.h). FailedPrecondition if no path is configured.
  Status ReconfigureIndexes(IndexConfiguration config);

  /// Binds \p path for naive evaluation (and later ReconfigureIndexes)
  /// without building any indexes — the online subsystem's cold start.
  /// Drops any installed configuration.
  void SetQueryPath(const Path& path) {
    path_ = path;
    physical_.reset();
  }

  bool has_indexes() const { return physical_.has_value(); }
  const PhysicalConfiguration& physical() const { return *physical_; }

  /// Registers \p observer for the operation stream (nullptr detaches).
  /// At most one observer; the caller keeps ownership and must detach (or
  /// outlive the database) before the observer dies.
  void SetObserver(DbOpObserver* observer) { observer_ = observer; }

  // -------------------------------------------------------------- queries

  /// Evaluates "A_n = value" w.r.t. \p target_class via the configured
  /// indexes. Counted (index pages only — the searching cost of Section 4).
  Result<std::vector<Oid>> Query(const Key& ending_value,
                                 ClassId target_class,
                                 bool include_subclasses = false);

  /// The same query evaluated by scanning and navigating (no indexes).
  Result<std::vector<Oid>> QueryNaive(const Key& ending_value,
                                      ClassId target_class,
                                      bool include_subclasses = false);

  // ------------------------------------------------------------ integrity

  /// Structural invariants of every configured index.
  Status ValidateIndexes() const;

  /// Deep check: NIX contents against ground-truth reachability, and the
  /// MX/MIX trees' structure. Slow; tests only.
  Status ValidateIndexesDeep() const;

 private:
  void Notify(DbOpKind kind, ClassId cls) {
    if (observer_ != nullptr) observer_->OnOperation(kind, cls);
  }

  Schema schema_;
  Pager pager_;
  ObjectStore store_;
  std::optional<Path> path_;
  std::optional<PhysicalConfiguration> physical_;
  DbOpObserver* observer_ = nullptr;
};

}  // namespace pathix
