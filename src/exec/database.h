#pragma once

#include <memory>
#include <optional>

#include "catalog/catalog.h"
#include "exec/naive_evaluator.h"
#include "index/physical_config.h"

/// \file database.h
/// \brief SimDatabase: the simulated object database — schema + paged object
/// store + (optionally) a physical index configuration on one path. Every
/// operation counts page accesses, the paper's cost metric.

namespace pathix {

class SimDatabase {
 public:
  SimDatabase(Schema schema, PhysicalParams params)
      : schema_(std::move(schema)),
        pager_(static_cast<std::size_t>(params.page_size)),
        store_(&pager_) {}

  // The physical configuration holds pointers into this object; pin it.
  SimDatabase(const SimDatabase&) = delete;
  SimDatabase& operator=(const SimDatabase&) = delete;

  const Schema& schema() const { return schema_; }
  Pager& pager() { return pager_; }
  ObjectStore& store() { return store_; }

  // ------------------------------------------------------------- updates

  /// Stores a new object and maintains the configured indexes. Returns the
  /// assigned oid.
  Oid Insert(ClassId cls, AttrValues attrs);

  /// Deletes an object, maintaining the configured indexes (including the
  /// preceding subpath's key record, Definition 4.2).
  Status Delete(Oid oid);

  // ------------------------------------------------------------- indexing

  /// Builds the physical indexes of \p config on \p path from the current
  /// store contents (uncounted). Replaces any previous configuration.
  Status ConfigureIndexes(const Path& path, IndexConfiguration config);

  bool has_indexes() const { return physical_.has_value(); }
  const PhysicalConfiguration& physical() const { return *physical_; }

  // -------------------------------------------------------------- queries

  /// Evaluates "A_n = value" w.r.t. \p target_class via the configured
  /// indexes. Counted (index pages only — the searching cost of Section 4).
  Result<std::vector<Oid>> Query(const Key& ending_value,
                                 ClassId target_class,
                                 bool include_subclasses = false);

  /// The same query evaluated by scanning and navigating (no indexes).
  Result<std::vector<Oid>> QueryNaive(const Key& ending_value,
                                      ClassId target_class,
                                      bool include_subclasses = false);

  // ------------------------------------------------------------ integrity

  /// Structural invariants of every configured index.
  Status ValidateIndexes() const;

  /// Deep check: NIX contents against ground-truth reachability, and the
  /// MX/MIX trees' structure. Slow; tests only.
  Status ValidateIndexesDeep() const;

 private:
  Schema schema_;
  Pager pager_;
  ObjectStore store_;
  std::optional<Path> path_;
  std::optional<PhysicalConfiguration> physical_;
};

}  // namespace pathix
