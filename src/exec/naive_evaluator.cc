#include "exec/naive_evaluator.h"

#include <memory>
#include <unordered_map>
#include <unordered_set>

namespace pathix {

namespace {

class QueryRun {
 public:
  QueryRun(ObjectStore* store, const Schema* schema, const Path* path,
           const Key& value, Pager* pager)
      : store_(store), schema_(schema), path_(path), value_(value),
        pager_(pager) {}

  bool Reaches(Oid oid, int level) {
    auto memo = memo_.find(oid);
    if (memo != memo_.end()) return memo->second;
    ChargePage(store_->PageOf(oid));
    // Owning reference: a concurrent delete may unmap the oid mid-walk, but
    // the object stays alive for the duration of this visit.
    const std::shared_ptr<const Object> obj = store_->PeekRef(oid);
    bool hit = false;
    if (obj != nullptr) {
      const std::string& attr = path_->attribute_at(level).name;
      if (level == path_->length()) {
        for (const Value& v : obj->values(attr)) {
          if (Key::FromValue(v) == value_) {
            hit = true;
            break;
          }
        }
      } else {
        for (Oid child : obj->refs(attr)) {
          if (Reaches(child, level + 1)) {
            hit = true;
            break;
          }
        }
      }
    }
    memo_[oid] = hit;
    return hit;
  }

  void ChargeSegment(ClassId cls) {
    // Scanning the class segment touches every page once.
    for (Oid oid : store_->PeekAll(cls)) {
      ChargePage(store_->PageOf(oid));
    }
  }

 private:
  void ChargePage(PageId page) {
    if (page == kInvalidPage) return;
    if (charged_.insert(page).second) pager_->NoteRead(page);
  }

  ObjectStore* store_;
  const Schema* schema_;
  const Path* path_;
  Key value_;
  Pager* pager_;
  std::unordered_set<PageId> charged_;
  std::unordered_map<Oid, bool> memo_;
};

}  // namespace

std::vector<Oid> NaiveEvaluator::Evaluate(const Key& ending_value,
                                          ClassId target_class,
                                          bool include_subclasses,
                                          Pager* pager) {
  int target_level = 0;
  for (int l = 1; l <= path_->length(); ++l) {
    if (schema_->IsSameOrSubclassOf(target_class, path_->class_at(l))) {
      target_level = l;
      break;
    }
  }
  PATHIX_DCHECK(target_level > 0);

  QueryRun run(store_, schema_, path_, ending_value, pager);
  std::vector<ClassId> targets =
      include_subclasses ? schema_->HierarchyOf(target_class)
                         : std::vector<ClassId>{target_class};
  std::vector<Oid> out;
  for (ClassId cls : targets) {
    run.ChargeSegment(cls);
    for (Oid oid : store_->PeekAll(cls)) {
      if (run.Reaches(oid, target_level)) out.push_back(oid);
    }
  }
  return out;
}

}  // namespace pathix
