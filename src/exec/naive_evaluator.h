#pragma once

#include <vector>

#include "index/key.h"
#include "schema/path.h"
#include "storage/object_store.h"

/// \file naive_evaluator.h
/// \brief Index-less path evaluation — the expensive strategy the paper's
/// introduction motivates indexing against: scan the queried class and
/// navigate the forward references class by class, comparing the ending
/// attribute.

namespace pathix {

/// \brief Evaluates "A_n = value" with respect to \p target_class by
/// scanning and navigating.
///
/// Page accounting emulates an unbounded per-query buffer: each data page
/// is charged once per query, however many objects on it are visited
/// (objects shared between parents are memoized).
class NaiveEvaluator {
 public:
  NaiveEvaluator(ObjectStore* store, const Schema* schema, const Path* path)
      : store_(store), schema_(schema), path_(path) {}

  std::vector<Oid> Evaluate(const Key& ending_value, ClassId target_class,
                            bool include_subclasses, Pager* pager);

 private:
  ObjectStore* store_;
  const Schema* schema_;
  const Path* path_;
};

}  // namespace pathix
