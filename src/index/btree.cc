#include "index/btree.h"

namespace pathix {

// Explicit instantiations of the two record shapes used by the library.
template class BTree<PostingRecord>;
template class BTree<AuxRecord>;

}  // namespace pathix
