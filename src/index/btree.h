#pragma once

#include <algorithm>
#include <functional>
#include <memory>
#include <set>
#include <vector>

#include "common/math.h"
#include "common/status.h"
#include "index/key.h"
#include "storage/pager.h"

/// \file btree.h
/// \brief Paged B+-tree with chained leaves and record-overflow chains —
/// the physical index structure underlying every organization of Section 3.
///
/// The tree is generic over the leaf-record type so the same structure
/// backs posting-list indexes (SIX/IIX/MX/MIX, NIX primary) and the NIX
/// auxiliary index of 3-tuples. A Record must expose:
///   const Key& key() const;
///   std::size_t bytes() const;
///
/// Pages: each node occupies one page; a record larger than a page is kept
/// out-of-node in an overflow chain of ceil(bytes/p) pages, with only a
/// (key, pointer) stub in the leaf — matching the cost model's multi-page
/// index records. Node splits occur when a node's byte occupancy exceeds
/// the page size. Deletions shrink nodes without merging (standard lazy
/// deletion).
///
/// Every public operation counts page traffic through the Pager; *Peek*
/// operations are uncounted and intended for builds and test assertions.

namespace pathix {

/// \brief Page-charge deduplication for batched operations.
///
/// Yao's formula — the cost model's backbone — charges each page once per
/// batched access, however many records on it are touched. Batched probes
/// and per-round maintenance pass a BatchCharge so the simulator counts the
/// same way (sorted batch probes are standard practice in real systems).
struct BatchCharge {
  std::set<PageId> reads;
  std::set<PageId> writes;
  /// Overflow-chain pages, identified by (record key hash, page index):
  /// within one batched operation a record's chain is buffered after the
  /// first fetch ("a page will be fetched only once", Section 3.1).
  std::set<std::pair<std::size_t, std::size_t>> chain_reads;
  std::set<std::pair<std::size_t, std::size_t>> chain_writes;
};

/// Posting entry of an index record: an object holding the record's key
/// value, with the NIX numchild counter (Figure 3; 1 elsewhere).
struct Posting {
  ClassId cls = kInvalidClass;
  Oid oid = kInvalidOid;
  std::int32_t numchild = 1;

  static constexpr std::size_t kBytes = 16;  // cls + oid + numchild
  bool operator==(const Posting& other) const {
    return cls == other.cls && oid == other.oid &&
           numchild == other.numchild;
  }
};

/// Leaf record of the posting-list indexes: key value -> postings.
struct PostingRecord {
  Key key_value;
  std::vector<Posting> postings;

  const Key& key() const { return key_value; }
  std::size_t bytes() const {
    return key_value.bytes() + 8 + postings.size() * Posting::kBytes;
  }
};

/// Leaf record of the NIX auxiliary index: the 3-tuple of Figure 4 —
/// object oid, pointers to the primary records listing the object, and the
/// object's aggregation parents.
struct AuxRecord {
  Key key_value;  ///< Key::FromOid(oid of the object)
  std::set<Key> primary_keys;
  std::vector<Oid> parents;

  const Key& key() const { return key_value; }
  std::size_t bytes() const {
    std::size_t b = key_value.bytes() + 16;
    for (const Key& k : primary_keys) b += k.bytes() + 8;
    b += parents.size() * 8;
    return b;
  }
};

/// \brief The tree.
template <typename Record>
class BTree {
 public:
  BTree(Pager* pager, std::string name)
      : pager_(pager), name_(std::move(name)) {
    root_ = std::make_unique<Node>(/*leaf=*/true, pager_->Allocate());
  }

  const std::string& name() const { return name_; }

  // ------------------------------------------------------------- counted

  /// Retrieves the record for \p key, reading the root-to-leaf path and the
  /// whole overflow chain of a multi-page record. nullptr if absent.
  /// \p batch deduplicates page charges across a batched operation.
  const Record* Lookup(const Key& key, BatchCharge* batch = nullptr) {
    PinSet pins;
    Node* leaf = DescendCounted(key, batch, &pins);
    Record* rec = FindInLeaf(leaf, key);
    if (rec != nullptr) {
      CountChainReads(*rec, ChainPages(*rec), batch);
    }
    return rec;
  }

  /// As Lookup, but reads at most \p needed_bytes of a multi-page record
  /// (partial retrieval, e.g. one class's slice of a NIX primary record).
  const Record* LookupPartial(const Key& key, std::size_t needed_bytes) {
    return LookupPartialFn(key,
                           [needed_bytes](const Record&) { return needed_bytes; });
  }

  /// As LookupPartial with the needed bytes computed from the record (the
  /// record's directory is inspected on its first page before the chain is
  /// followed).
  template <typename NeedFn>
  const Record* LookupPartialFn(const Key& key, NeedFn&& needed_bytes_fn,
                                BatchCharge* batch = nullptr) {
    PinSet pins;
    Node* leaf = DescendCounted(key, batch, &pins);
    Record* rec = FindInLeaf(leaf, key);
    if (rec != nullptr) {
      const std::size_t chain = ChainPages(*rec);
      if (chain > 0) {
        const std::size_t needed_bytes = needed_bytes_fn(*rec);
        const std::size_t needed = static_cast<std::size_t>(
            CeilDiv(static_cast<double>(needed_bytes),
                    static_cast<double>(pager_->page_size())));
        CountChainReads(*rec,
                        std::min(chain, std::max<std::size_t>(needed, 1)),
                        batch);
      }
    }
    return rec;
  }

  /// Applies \p fn to the record for \p key, creating it with \p make if
  /// absent. Counts the descent, the leaf write, \p touched_chain_pages
  /// read+written pages of a multi-page record, and any split writes.
  template <typename Make, typename Fn>
  void Upsert(const Key& key, Make&& make, Fn&& fn,
              std::size_t touched_chain_pages = 1,
              BatchCharge* batch = nullptr) {
    PinSet pins;
    Node* leaf = DescendCounted(key, batch, &pins);
    Record* rec = FindInLeaf(leaf, key);
    if (rec == nullptr) {
      Record fresh = make();
      PATHIX_DCHECK(fresh.key() == key);
      fn(&fresh);
      InsertRecord(std::move(fresh));
      return;
    }
    fn(rec);
    TouchRecord(leaf, *rec, touched_chain_pages, batch);
    // The mutation may have grown the record past the node budget.
    if (NodeBytes(leaf) > pager_->page_size()) {
      RebalanceAfterGrowth(key);
    }
  }

  /// Applies \p fn to an existing record; returns false (counting only the
  /// descent) if the key is absent.
  template <typename Fn>
  bool Mutate(const Key& key, Fn&& fn, std::size_t touched_chain_pages = 1,
              BatchCharge* batch = nullptr) {
    PinSet pins;
    Node* leaf = DescendCounted(key, batch, &pins);
    Record* rec = FindInLeaf(leaf, key);
    if (rec == nullptr) return false;
    fn(rec);
    TouchRecord(leaf, *rec, touched_chain_pages, batch);
    if (NodeBytes(leaf) > pager_->page_size()) {
      RebalanceAfterGrowth(key);
    }
    return true;
  }

  /// As Mutate, with the touched chain pages computed from the record after
  /// the mutation (e.g. the page span of one class's slice).
  template <typename Fn, typename TouchFn>
  bool MutateWithTouch(const Key& key, Fn&& fn, TouchFn&& touched_fn,
                       BatchCharge* batch = nullptr) {
    PinSet pins;
    Node* leaf = DescendCounted(key, batch, &pins);
    Record* rec = FindInLeaf(leaf, key);
    if (rec == nullptr) return false;
    fn(rec);
    TouchRecord(leaf, *rec, touched_fn(*rec), batch);
    if (NodeBytes(leaf) > pager_->page_size()) {
      RebalanceAfterGrowth(key);
    }
    return true;
  }

  /// Removes the record for \p key (counting descent, chain, leaf write).
  bool Remove(const Key& key) {
    PinSet pins;
    Node* leaf = DescendCounted(key, nullptr, &pins);
    auto it = LowerBound(leaf->records, key);
    if (it == leaf->records.end() || !(it->key() == key)) return false;
    const std::size_t chain = ChainPages(*it);
    CountChainReads(*it, chain);  // all record pages are discarded
    if (chain > 0) pager_->NoteWrite(0);
    leaf->records.erase(it);
    pager_->NoteWrite(leaf->page);
    --num_records_;
    return true;
  }

  // ----------------------------------------------------------- uncounted

  /// Uncounted exact-match access (builds, assertions).
  const Record* Peek(const Key& key) const {
    const Node* node = root_.get();
    while (!node->leaf) node = Child(node, key);
    auto it = LowerBound(const_cast<Node*>(node)->records, key);
    if (it == node->records.end() || !(it->key() == key)) return nullptr;
    return &*it;
  }

  /// Uncounted insert-or-modify used while building an index from a
  /// populated store (index creation cost is not part of any experiment).
  /// An excluded frame absorbs the descent's traffic — measured into the
  /// kBuild tally, charged nowhere, buffer pool bypassed. (The previous
  /// charge-then-rewind scheme would wipe concurrent serving threads'
  /// folds and leave build pages resident in the pool behind counters
  /// the pager never saw.)
  template <typename Make, typename Fn>
  void UpsertUncounted(const Key& key, Make&& make, Fn&& fn) {
    ScopedAccessProbe probe(pager_, PageOpKind::kBuild, {}, /*exclude=*/true);
    Upsert(key, std::forward<Make>(make), std::forward<Fn>(fn));
  }

  /// Visits every record in key order (uncounted).
  void ForEach(const std::function<void(const Record&)>& fn) const {
    ForEachNode(root_.get(), fn);
  }

  // ----------------------------------------------------------------- stats

  int height() const {
    int h = 1;
    const Node* node = root_.get();
    while (!node->leaf) {
      node = node->children.front().get();
      ++h;
    }
    return h;
  }

  std::size_t num_records() const { return num_records_; }

  std::size_t leaf_pages() const {
    std::size_t pages = 0;
    CountLeafPages(root_.get(), &pages);
    return pages;
  }

  std::size_t total_pages() const {
    std::size_t pages = 0;
    CountAllPages(root_.get(), &pages);
    return pages;
  }

  /// Structural invariants: sorted keys, uniform leaf depth, separator
  /// consistency, node occupancy within a page (stubs for big records).
  Status ValidateStructure() const {
    int leaf_depth = -1;
    const Key* prev = nullptr;
    return ValidateNode(root_.get(), 0, &leaf_depth, &prev);
  }

 private:
  struct Node {
    Node(bool is_leaf, PageId pid) : leaf(is_leaf), page(pid) {}
    bool leaf;
    PageId page;
    std::vector<Key> seps;  // inner: seps[i] = min key of children[i+1]
    std::vector<std::unique_ptr<Node>> children;
    std::vector<Record> records;
    Node* next = nullptr;  // leaf chain
  };

  // Bytes a record occupies inside its node: full size if it fits a page,
  // otherwise a (key, pointer) stub with content in the overflow chain.
  std::size_t InNodeBytes(const Record& rec) const {
    const std::size_t b = rec.bytes();
    return b <= pager_->page_size() ? b : rec.key().bytes() + 8;
  }

  std::size_t ChainPages(const Record& rec) const {
    const std::size_t b = rec.bytes();
    if (b <= pager_->page_size()) return 0;
    return static_cast<std::size_t>(CeilDiv(
        static_cast<double>(b), static_cast<double>(pager_->page_size())));
  }

  std::size_t NodeBytes(const Node* node) const {
    std::size_t b = 0;
    if (node->leaf) {
      for (const Record& r : node->records) b += InNodeBytes(r);
    } else {
      for (const Key& k : node->seps) b += k.bytes() + 8;
      b += 8;
    }
    return b;
  }

  static typename std::vector<Record>::iterator LowerBound(
      std::vector<Record>& records, const Key& key) {
    return std::lower_bound(
        records.begin(), records.end(), key,
        [](const Record& r, const Key& k) { return r.key() < k; });
  }

  static const Node* Child(const Node* node, const Key& key) {
    auto it = std::upper_bound(node->seps.begin(), node->seps.end(), key);
    return node->children[it - node->seps.begin()].get();
  }

  /// Root-to-leaf descent, one charged read per node. \p pins keeps every
  /// node page of the path pinned in the buffer pool until the caller's
  /// operation completes (guards released when the PinSet unwinds), so
  /// CLOCK cannot evict the descent path out from under a multi-touch op.
  Node* DescendCounted(const Key& key, BatchCharge* batch, PinSet* pins) {
    Node* node = root_.get();
    ChargeRead(node->page, batch, pins);
    while (!node->leaf) {
      node = const_cast<Node*>(Child(node, key));
      ChargeRead(node->page, batch, pins);
    }
    return node;
  }

  void ChargeRead(PageId page, BatchCharge* batch, PinSet* pins = nullptr) {
    if (batch != nullptr && !batch->reads.insert(page).second) return;
    if (pins != nullptr) {
      PageGuard guard = pager_->PinRead(page);
      if (guard.pinned()) pins->push_back(std::move(guard));
      return;
    }
    pager_->NoteRead(page);
  }

  void ChargeWrite(PageId page, BatchCharge* batch) {
    if (batch != nullptr && !batch->writes.insert(page).second) return;
    pager_->NoteWrite(page);
  }

  static Record* FindInLeaf(Node* leaf, const Key& key) {
    auto it = LowerBound(leaf->records, key);
    if (it == leaf->records.end() || !(it->key() == key)) return nullptr;
    return &*it;
  }

  static std::size_t RecordIdentity(const Record& rec) {
    return std::hash<std::string>{}(rec.key().ToString());
  }

  void CountChainReads(const Record& rec, std::size_t pages,
                       BatchCharge* batch = nullptr) {
    if (batch == nullptr) {
      pager_->NoteReads(pages);
      return;
    }
    const std::size_t id = RecordIdentity(rec);
    for (std::size_t i = 0; i < pages; ++i) {
      if (batch->chain_reads.insert({id, i}).second) pager_->NoteReads(1);
    }
  }

  void TouchRecord(Node* leaf, const Record& rec,
                   std::size_t touched_chain_pages,
                   BatchCharge* batch = nullptr) {
    const std::size_t chain = ChainPages(rec);
    if (chain == 0) {
      ChargeWrite(leaf->page, batch);
      return;
    }
    const std::size_t touched =
        std::max<std::size_t>(1, std::min(chain, touched_chain_pages));
    CountChainReads(rec, touched, batch);
    if (batch == nullptr) {
      for (std::size_t i = 0; i < touched; ++i) pager_->NoteWrite(leaf->page);
      return;
    }
    const std::size_t id = RecordIdentity(rec);
    for (std::size_t i = 0; i < touched; ++i) {
      if (batch->chain_writes.insert({id, i}).second) {
        pager_->NoteWrite(leaf->page);
      }
    }
  }

  // --------------------------------------------------------------- insert

  struct SplitResult {
    bool split = false;
    Key sep;
    std::unique_ptr<Node> right;
  };

  void InsertRecord(Record rec) {
    const Key key = rec.key();
    SplitResult top = InsertRec(root_.get(), std::move(rec));
    if (top.split) {
      auto new_root = std::make_unique<Node>(/*leaf=*/false,
                                             pager_->Allocate());
      new_root->seps.push_back(top.sep);
      new_root->children.push_back(std::move(root_));
      new_root->children.push_back(std::move(top.right));
      root_ = std::move(new_root);
      pager_->NoteWrite(root_->page);
    }
    ++num_records_;
    (void)key;
  }

  SplitResult InsertRec(Node* node, Record rec) {
    if (node->leaf) {
      auto it = LowerBound(node->records, rec.key());
      PATHIX_DCHECK(it == node->records.end() || !(it->key() == rec.key()));
      const std::size_t chain = ChainPages(rec);
      node->records.insert(it, std::move(rec));
      pager_->NoteWrite(node->page);
      if (chain > 0) {
        for (std::size_t i = 0; i < chain; ++i) pager_->NoteWrite(node->page);
      }
      return MaybeSplit(node);
    }
    auto cit = std::upper_bound(node->seps.begin(), node->seps.end(),
                                rec.key());
    const std::size_t idx = cit - node->seps.begin();
    SplitResult child_split =
        InsertRec(node->children[idx].get(), std::move(rec));
    if (!child_split.split) return SplitResult{};
    node->seps.insert(node->seps.begin() + idx, child_split.sep);
    node->children.insert(node->children.begin() + idx + 1,
                          std::move(child_split.right));
    pager_->NoteWrite(node->page);
    return MaybeSplit(node);
  }

  SplitResult MaybeSplit(Node* node) {
    if (NodeBytes(node) <= pager_->page_size()) return SplitResult{};
    const std::size_t count =
        node->leaf ? node->records.size() : node->children.size();
    if (count < 2) return SplitResult{};  // a single stub may exceed a page
    SplitResult out;
    out.split = true;
    out.right = std::make_unique<Node>(node->leaf, pager_->Allocate());
    if (node->leaf) {
      const std::size_t mid = node->records.size() / 2;
      out.right->records.assign(
          std::make_move_iterator(node->records.begin() + mid),
          std::make_move_iterator(node->records.end()));
      node->records.resize(mid);
      out.sep = out.right->records.front().key();
      out.right->next = node->next;
      node->next = out.right.get();
    } else {
      const std::size_t mid = node->children.size() / 2;
      out.sep = node->seps[mid - 1];
      out.right->seps.assign(node->seps.begin() + mid, node->seps.end());
      out.right->children.assign(
          std::make_move_iterator(node->children.begin() + mid),
          std::make_move_iterator(node->children.end()));
      node->seps.resize(mid - 1);
      node->children.resize(mid);
    }
    pager_->NoteWrite(node->page);
    pager_->NoteWrite(out.right->page);
    return out;
  }

  /// An in-place record mutation grew its leaf past a page: reinsert the
  /// affected leaf's split through the root path. Simplest correct
  /// approach: locate the leaf and split upward via a fresh descent.
  void RebalanceAfterGrowth(const Key& key) {
    SplitResult top = SplitPathRec(root_.get(), key);
    if (top.split) {
      auto new_root =
          std::make_unique<Node>(/*leaf=*/false, pager_->Allocate());
      new_root->seps.push_back(top.sep);
      new_root->children.push_back(std::move(root_));
      new_root->children.push_back(std::move(top.right));
      root_ = std::move(new_root);
      pager_->NoteWrite(root_->page);
    }
  }

  SplitResult SplitPathRec(Node* node, const Key& key) {
    if (node->leaf) return MaybeSplit(node);
    auto cit = std::upper_bound(node->seps.begin(), node->seps.end(), key);
    const std::size_t idx = cit - node->seps.begin();
    SplitResult child_split = SplitPathRec(node->children[idx].get(), key);
    if (!child_split.split) return SplitResult{};
    node->seps.insert(node->seps.begin() + idx, child_split.sep);
    node->children.insert(node->children.begin() + idx + 1,
                          std::move(child_split.right));
    pager_->NoteWrite(node->page);
    return MaybeSplit(node);
  }

  // ---------------------------------------------------------------- stats

  void ForEachNode(const Node* node,
                   const std::function<void(const Record&)>& fn) const {
    if (node->leaf) {
      for (const Record& r : node->records) fn(r);
      return;
    }
    for (const auto& child : node->children) ForEachNode(child.get(), fn);
  }

  void CountLeafPages(const Node* node, std::size_t* pages) const {
    if (node->leaf) {
      *pages += 1;
      for (const Record& r : node->records) *pages += ChainPages(r);
      return;
    }
    for (const auto& child : node->children) CountLeafPages(child.get(), pages);
  }

  void CountAllPages(const Node* node, std::size_t* pages) const {
    *pages += 1;
    if (node->leaf) {
      for (const Record& r : node->records) *pages += ChainPages(r);
      return;
    }
    for (const auto& child : node->children) CountAllPages(child.get(), pages);
  }

  Status ValidateNode(const Node* node, int depth, int* leaf_depth,
                      const Key** prev) const {
    if (node->leaf) {
      if (*leaf_depth == -1) *leaf_depth = depth;
      if (*leaf_depth != depth) {
        return Status::Internal("leaves at differing depths");
      }
      for (const Record& r : node->records) {
        if (*prev != nullptr && !(**prev < r.key())) {
          return Status::Internal("keys out of order at " +
                                  r.key().ToString());
        }
        *prev = &r.key();
      }
      if (node->records.size() > 1 &&
          NodeBytes(node) > pager_->page_size()) {
        return Status::Internal("leaf overflows a page");
      }
      return Status::OK();
    }
    if (node->children.size() != node->seps.size() + 1) {
      return Status::Internal("inner node arity mismatch");
    }
    for (std::size_t i = 0; i < node->children.size(); ++i) {
      PATHIX_RETURN_IF_ERROR(
          ValidateNode(node->children[i].get(), depth + 1, leaf_depth, prev));
      if (i < node->seps.size() && *prev != nullptr &&
          node->seps[i] < **prev) {
        return Status::Internal("separator below subtree maximum");
      }
    }
    return Status::OK();
  }

  Pager* pager_;
  std::string name_;
  std::unique_ptr<Node> root_;
  std::size_t num_records_ = 0;
};

using PostingTree = BTree<PostingRecord>;
using AuxTree = BTree<AuxRecord>;

}  // namespace pathix
