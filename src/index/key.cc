#include "index/key.h"

#include "common/status.h"

namespace pathix {

Key Key::FromOid(Oid oid) {
  Key k;
  k.kind_ = Kind::kOid;
  k.int_ = static_cast<std::int64_t>(oid);
  return k;
}

Key Key::FromInt(std::int64_t v) {
  Key k;
  k.kind_ = Kind::kInt;
  k.int_ = v;
  return k;
}

Key Key::FromString(std::string v) {
  Key k;
  k.kind_ = Kind::kString;
  k.str_ = std::move(v);
  return k;
}

Key Key::FromValue(const Value& v) {
  switch (v.kind()) {
    case Value::Kind::kInt:
      return FromInt(v.as_int());
    case Value::Kind::kString:
      return FromString(v.as_string());
    case Value::Kind::kRef:
      return FromOid(v.as_ref());
  }
  PATHIX_DCHECK(false);
  return Key();
}

std::size_t Key::bytes() const {
  return kind_ == Kind::kString ? str_.size() + 2 : 8;
}

std::string Key::ToString() const {
  switch (kind_) {
    case Kind::kOid:
      return "oid:" + std::to_string(int_);
    case Kind::kInt:
      return std::to_string(int_);
    case Kind::kString:
      return str_;
  }
  return "?";
}

std::strong_ordering Key::operator<=>(const Key& other) const {
  if (kind_ != other.kind_) return kind_ <=> other.kind_;
  if (kind_ == Kind::kString) return str_ <=> other.str_;
  return int_ <=> other.int_;
}

bool Key::operator==(const Key& other) const {
  return (*this <=> other) == std::strong_ordering::equal;
}

}  // namespace pathix
