#pragma once

#include <compare>
#include <cstdint>
#include <string>

#include "common/types.h"
#include "storage/object.h"

/// \file key.h
/// \brief Index key values: either an atomic value (int/string, for ending
/// attributes) or an oid (for reference attributes, whose index records are
/// keyed by the oids of the domain class — Section 4 of the paper).

namespace pathix {

/// \brief Totally ordered index key.
class Key {
 public:
  Key() = default;

  static Key FromOid(Oid oid);
  static Key FromInt(std::int64_t v);
  static Key FromString(std::string v);
  /// Converts a stored attribute value (Ref -> oid key).
  static Key FromValue(const Value& v);

  /// Serialized size in bytes (page occupancy accounting).
  std::size_t bytes() const;

  std::string ToString() const;

  std::strong_ordering operator<=>(const Key& other) const;
  bool operator==(const Key& other) const;

  bool is_oid() const { return kind_ == Kind::kOid; }
  Oid oid() const { return static_cast<Oid>(int_); }

 private:
  enum class Kind : std::uint8_t { kOid, kInt, kString };

  Kind kind_ = Kind::kInt;
  std::int64_t int_ = 0;
  std::string str_;
};

}  // namespace pathix
