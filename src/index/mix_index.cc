#include "index/mix_index.h"

#include <algorithm>

namespace pathix {

MIXIndex::MIXIndex(Pager* pager, SubpathIndexContext ctx)
    : SubpathIndex(pager, std::move(ctx)) {
  for (int l = ctx_.range.start; l <= ctx_.range.end; ++l) {
    trees_[l] = std::make_unique<AttrIndex>(
        pager_, "mix." + std::to_string(l) + "." + ctx_.attr_name(l));
  }
}

AttrIndex* MIXIndex::tree_for(int level) {
  auto it = trees_.find(level);
  return it == trees_.end() ? nullptr : it->second.get();
}

void MIXIndex::BuildImpl(const ObjectStore& store) {
  for (int l = ctx_.range.start; l <= ctx_.range.end; ++l) {
    const std::string& attr = ctx_.attr_name(l);
    AttrIndex* tree = trees_.at(l).get();
    for (ClassId cls : ctx_.hierarchy(l)) {
      for (Oid oid : store.PeekAll(cls)) {
        const Object* obj = store.Peek(oid);
        for (const Value& v : obj->values(attr)) {
          tree->AddEntryUncounted(Key::FromValue(v), cls, oid);
        }
      }
    }
  }
}

std::vector<Oid> MIXIndex::Probe(const std::vector<Key>& keys,
                                 int target_level,
                                 const std::vector<ClassId>& target_classes) {
  std::vector<Key> current = keys;
  for (int l = ctx_.range.end; l >= target_level; --l) {
    const bool last = (l == target_level);
    std::vector<Oid> oids;
    for (const Posting& p : trees_.at(l)->LookupMany(current)) {
      // One inherited index serves the hierarchy; the target filter picks
      // the requested class(es) out of the grouped record.
      if (last && std::find(target_classes.begin(), target_classes.end(),
                            p.cls) == target_classes.end()) {
        continue;
      }
      oids.push_back(p.oid);
    }
    std::sort(oids.begin(), oids.end());
    oids.erase(std::unique(oids.begin(), oids.end()), oids.end());
    if (last) return oids;
    current.clear();
    current.reserve(oids.size());
    for (Oid oid : oids) current.push_back(Key::FromOid(oid));
  }
  return {};
}

void MIXIndex::OnInsert(const Object& obj, int level) {
  AttrIndex* tree = trees_.at(level).get();
  for (const Value& v : obj.values(ctx_.attr_name(level))) {
    tree->AddEntry(Key::FromValue(v), obj.cls, obj.oid);
  }
}

void MIXIndex::OnDelete(const Object& obj, int level) {
  AttrIndex* tree = trees_.at(level).get();
  for (const Value& v : obj.values(ctx_.attr_name(level))) {
    tree->RemoveEntry(Key::FromValue(v), obj.cls, obj.oid);
  }
  if (level > ctx_.range.start) {
    trees_.at(level - 1)->RemoveKey(Key::FromOid(obj.oid));
  }
}

void MIXIndex::OnBoundaryDelete(Oid oid) {
  trees_.at(ctx_.range.end)->RemoveKey(Key::FromOid(oid));
}

Status MIXIndex::Validate() const {
  for (const auto& [level, tree] : trees_) {
    PATHIX_RETURN_IF_ERROR(tree->tree().ValidateStructure());
  }
  return Status::OK();
}

std::size_t MIXIndex::total_pages() const {
  std::size_t pages = 0;
  for (const auto& [level, tree] : trees_) pages += tree->tree().total_pages();
  return pages;
}

}  // namespace pathix
