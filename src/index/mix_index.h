#pragma once

#include <map>

#include "index/single_index.h"
#include "index/subpath_index.h"

/// \file mix_index.h
/// \brief Physical multi-inherited index (MIX): one inherited index per
/// class of class(P) — a single B+-tree per path level whose records hold
/// the oids of the whole inheritance hierarchy (Section 2.2).

namespace pathix {

class MIXIndex : public SubpathIndex {
 public:
  MIXIndex(Pager* pager, SubpathIndexContext ctx);

  IndexOrg org() const override { return IndexOrg::kMIX; }
  std::vector<Oid> Probe(const std::vector<Key>& keys, int target_level,
                         const std::vector<ClassId>& target_classes) override;
  void OnInsert(const Object& obj, int level) override;
  void OnDelete(const Object& obj, int level) override;
  void OnBoundaryDelete(Oid oid) override;
  Status Validate() const override;
  std::size_t total_pages() const override;

  AttrIndex* tree_for(int level);

 protected:
  void BuildImpl(const ObjectStore& store) override;

 private:
  std::map<int, std::unique_ptr<AttrIndex>> trees_;  // one per level
};

}  // namespace pathix
