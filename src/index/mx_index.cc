#include "index/mx_index.h"

#include <algorithm>

namespace pathix {

MXIndex::MXIndex(Pager* pager, SubpathIndexContext ctx)
    : SubpathIndex(pager, std::move(ctx)) {
  for (int l = ctx_.range.start; l <= ctx_.range.end; ++l) {
    for (ClassId cls : ctx_.hierarchy(l)) {
      trees_[{l, cls}] = std::make_unique<AttrIndex>(
          pager_, "mx." + std::to_string(l) + "." +
                      ctx_.schema->GetClass(cls).name());
    }
  }
}

AttrIndex* MXIndex::tree_for(int level, ClassId cls) {
  auto it = trees_.find({level, cls});
  return it == trees_.end() ? nullptr : it->second.get();
}

void MXIndex::BuildImpl(const ObjectStore& store) {
  for (int l = ctx_.range.start; l <= ctx_.range.end; ++l) {
    const std::string& attr = ctx_.attr_name(l);
    for (ClassId cls : ctx_.hierarchy(l)) {
      AttrIndex* tree = trees_.at({l, cls}).get();
      for (Oid oid : store.PeekAll(cls)) {
        const Object* obj = store.Peek(oid);
        for (const Value& v : obj->values(attr)) {
          tree->AddEntryUncounted(Key::FromValue(v), cls, oid);
        }
      }
    }
  }
}

std::vector<Oid> MXIndex::Probe(const std::vector<Key>& keys,
                                int target_level,
                                const std::vector<ClassId>& target_classes) {
  std::vector<Key> current = keys;
  for (int l = ctx_.range.end; l >= target_level; --l) {
    const bool last = (l == target_level);
    std::vector<Oid> oids;
    for (ClassId cls : ctx_.hierarchy(l)) {
      // At the target level only the requested classes' indexes are probed
      // (CRMX evaluates a single class's index at level l; the hierarchy
      // variant passes the whole hierarchy in target_classes).
      if (last && std::find(target_classes.begin(), target_classes.end(),
                            cls) == target_classes.end()) {
        continue;
      }
      for (const Posting& p : trees_.at({l, cls})->LookupMany(current)) {
        oids.push_back(p.oid);
      }
    }
    if (last) {
      std::sort(oids.begin(), oids.end());
      oids.erase(std::unique(oids.begin(), oids.end()), oids.end());
      return oids;
    }
    current.clear();
    std::sort(oids.begin(), oids.end());
    oids.erase(std::unique(oids.begin(), oids.end()), oids.end());
    current.reserve(oids.size());
    for (Oid oid : oids) current.push_back(Key::FromOid(oid));
  }
  return {};
}

void MXIndex::OnInsert(const Object& obj, int level) {
  AttrIndex* tree = trees_.at({level, obj.cls}).get();
  for (const Value& v : obj.values(ctx_.attr_name(level))) {
    tree->AddEntry(Key::FromValue(v), obj.cls, obj.oid);
  }
}

void MXIndex::OnDelete(const Object& obj, int level) {
  AttrIndex* tree = trees_.at({level, obj.cls}).get();
  for (const Value& v : obj.values(ctx_.attr_name(level))) {
    tree->RemoveEntry(Key::FromValue(v), obj.cls, obj.oid);
  }
  // The deleted oid is a key of the previous level's indexes (all
  // subclasses): remove its record from each (Section 3.1, CMMX).
  if (level > ctx_.range.start) {
    for (ClassId cls : ctx_.hierarchy(level - 1)) {
      trees_.at({level - 1, cls})->RemoveKey(Key::FromOid(obj.oid));
    }
  }
}

void MXIndex::OnBoundaryDelete(Oid oid) {
  for (ClassId cls : ctx_.hierarchy(ctx_.range.end)) {
    trees_.at({ctx_.range.end, cls})->RemoveKey(Key::FromOid(oid));
  }
}

Status MXIndex::Validate() const {
  for (const auto& [key, tree] : trees_) {
    PATHIX_RETURN_IF_ERROR(tree->tree().ValidateStructure());
  }
  return Status::OK();
}

std::size_t MXIndex::total_pages() const {
  std::size_t pages = 0;
  for (const auto& [key, tree] : trees_) pages += tree->tree().total_pages();
  return pages;
}

}  // namespace pathix
