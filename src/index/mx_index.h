#pragma once

#include <map>

#include "index/single_index.h"
#include "index/subpath_index.h"

/// \file mx_index.h
/// \brief Physical multi-index (MX): one simple index per class in the
/// scope of the subpath, on that class's path attribute (Section 2.2).

namespace pathix {

class MXIndex : public SubpathIndex {
 public:
  MXIndex(Pager* pager, SubpathIndexContext ctx);

  IndexOrg org() const override { return IndexOrg::kMX; }
  std::vector<Oid> Probe(const std::vector<Key>& keys, int target_level,
                         const std::vector<ClassId>& target_classes) override;
  void OnInsert(const Object& obj, int level) override;
  void OnDelete(const Object& obj, int level) override;
  void OnBoundaryDelete(Oid oid) override;
  Status Validate() const override;
  std::size_t total_pages() const override;

  /// The per-class tree (testing / reporting).
  AttrIndex* tree_for(int level, ClassId cls);

 protected:
  void BuildImpl(const ObjectStore& store) override;

 private:
  // One AttrIndex per (level, class in the level's hierarchy).
  std::map<std::pair<int, ClassId>, std::unique_ptr<AttrIndex>> trees_;
};

}  // namespace pathix
