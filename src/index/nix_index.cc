#include "index/nix_index.h"

#include <algorithm>

namespace pathix {

namespace {

PostingRecord MakePostingRecord(const Key& key) {
  PostingRecord rec;
  rec.key_value = key;
  return rec;
}

AuxRecord MakeAuxRecord(Oid oid) {
  AuxRecord rec;
  rec.key_value = Key::FromOid(oid);
  return rec;
}

void AddOrBumpPosting(PostingRecord* rec, ClassId cls, Oid oid,
                      std::int32_t numchild) {
  for (Posting& p : rec->postings) {
    if (p.oid == oid && p.cls == cls) {
      p.numchild += numchild;
      return;
    }
  }
  rec->postings.push_back(Posting{cls, oid, numchild});
}

/// Bytes of the slice of \p rec holding the postings of \p classes, plus
/// the record header/directory (what a partial read must fetch).
template <typename ClassContainer>
std::size_t SliceBytes(const PostingRecord& rec,
                       const ClassContainer& classes) {
  std::size_t bytes = rec.key_value.bytes() + 16;
  for (const Posting& p : rec.postings) {
    if (std::find(classes.begin(), classes.end(), p.cls) != classes.end()) {
      bytes += Posting::kBytes;
    }
  }
  return bytes;
}

/// Chain pages a class-slice maintenance touches (pmd_NIX = prd_NIX).
template <typename ClassContainer>
std::size_t SlicePages(const PostingRecord& rec,
                       const ClassContainer& classes, double page_size) {
  return static_cast<std::size_t>(
      CeilDiv(static_cast<double>(SliceBytes(rec, classes)), page_size));
}

}  // namespace

NIXIndex::NIXIndex(Pager* pager, SubpathIndexContext ctx)
    : SubpathIndex(pager, std::move(ctx)),
      primary_(pager, "nix.primary"),
      aux_(pager, "nix.aux") {}

// --------------------------------------------------------------- reach

NIXIndex::ReachSet NIXIndex::ComputeReachFromStore(const ObjectStore& store,
                                                   const Object& obj,
                                                   int level) const {
  ReachSet reach;
  const std::string& attr = ctx_.attr_name(level);
  if (level == ctx_.range.end) {
    for (const Value& v : obj.values(attr)) {
      // A reference to a deleted object is dangling: the key record was
      // dropped by the boundary deletion (Definition 4.2) and must not be
      // counted as reachable.
      if (v.kind() == Value::Kind::kRef &&
          store.Peek(v.as_ref()) == nullptr) {
        continue;
      }
      reach[Key::FromValue(v)] += 1;
    }
    return reach;
  }
  for (Oid child : obj.refs(attr)) {
    const Object* child_obj = store.Peek(child);
    if (child_obj == nullptr) continue;
    const ReachSet child_reach =
        ComputeReachFromStore(store, *child_obj, level + 1);
    for (const auto& [key, nc] : child_reach) {
      (void)nc;
      reach[key] += 1;  // numchild counts children, not paths
    }
  }
  return reach;
}

NIXIndex::ReachSet NIXIndex::ComputeReach(const Object& obj, int level) {
  ReachSet reach;
  const std::string& attr = ctx_.attr_name(level);
  if (level == ctx_.range.end) {
    for (const Value& v : obj.values(attr)) {
      reach[Key::FromValue(v)] += 1;
    }
    return reach;
  }
  // Inner level: the children's aux 3-tuples hold their primary-record
  // pointers, i.e. exactly their reach sets (Section 3.1, insertion step 2).
  for (Oid child : obj.refs(attr)) {
    if (const AuxRecord* tuple = aux_.Lookup(Key::FromOid(child))) {
      for (const Key& key : tuple->primary_keys) {
        reach[key] += 1;
      }
    }
  }
  return reach;
}

// --------------------------------------------------------------- build

void NIXIndex::BuildImpl(const ObjectStore& store) {
  // Ground-truth reachability per object, bottom-up; parents via the
  // forward references of the level above.
  std::unordered_map<Oid, ReachSet> reach;
  std::unordered_map<Oid, std::vector<Oid>> parents;

  for (int l = ctx_.range.end; l >= ctx_.range.start; --l) {
    for (ClassId cls : ctx_.hierarchy(l)) {
      for (Oid oid : store.PeekAll(cls)) {
        const Object* obj = store.Peek(oid);
        if (l == ctx_.range.end) {
          reach[oid] = ComputeReachFromStore(store, *obj, l);
        } else {
          ReachSet mine;
          for (Oid child : obj->refs(ctx_.attr_name(l))) {
            auto it = reach.find(child);
            if (it == reach.end()) continue;
            for (const auto& [key, nc] : it->second) {
              (void)nc;
              mine[key] += 1;
            }
            parents[child].push_back(oid);
          }
          reach[oid] = std::move(mine);
        }
      }
    }
  }

  for (int l = ctx_.range.start; l <= ctx_.range.end; ++l) {
    for (ClassId cls : ctx_.hierarchy(l)) {
      for (Oid oid : store.PeekAll(cls)) {
        const ReachSet& mine = reach[oid];
        for (const auto& [key, nc] : mine) {
          primary_.UpsertUncounted(
              key, [&] { return MakePostingRecord(key); },
              [&](PostingRecord* rec) {
                rec->postings.push_back(Posting{cls, oid, nc});
              });
        }
        if (HasAuxTuple(l)) {
          const Key akey = Key::FromOid(oid);
          aux_.UpsertUncounted(
              akey, [&] { return MakeAuxRecord(oid); },
              [&](AuxRecord* tuple) {
                for (const auto& [key, nc] : mine) {
                  (void)nc;
                  tuple->primary_keys.insert(key);
                }
                tuple->parents = parents[oid];
              });
        }
      }
    }
  }
}

// --------------------------------------------------------------- probe

std::vector<Oid> NIXIndex::Probe(const std::vector<Key>& keys,
                                 int target_level,
                                 const std::vector<ClassId>& target_classes) {
  (void)target_level;
  BatchCharge batch;
  std::vector<Oid> oids;
  for (const Key& key : keys) {
    const PostingRecord* rec = primary_.LookupPartialFn(
        key,
        [&](const PostingRecord& r) { return SliceBytes(r, target_classes); },
        &batch);
    if (rec == nullptr) continue;
    for (const Posting& p : rec->postings) {
      if (std::find(target_classes.begin(), target_classes.end(), p.cls) !=
          target_classes.end()) {
        oids.push_back(p.oid);
      }
    }
  }
  std::sort(oids.begin(), oids.end());
  oids.erase(std::unique(oids.begin(), oids.end()), oids.end());
  return oids;
}

// --------------------------------------------------------------- insert

void NIXIndex::OnInsert(const Object& obj, int level) {
  // Steps 1-2: determine the reachable key values; for inner levels this
  // walks the children's 3-tuples, which also gain the new parent.
  const ReachSet reach = ComputeReach(obj, level);
  if (HasChildTuples(level)) {
    BatchCharge aux_batch;
    for (Oid child : obj.refs(ctx_.attr_name(level))) {
      aux_.Mutate(
          Key::FromOid(child),
          [&](AuxRecord* tuple) { tuple->parents.push_back(obj.oid); },
          /*touched_chain_pages=*/1, &aux_batch);
    }
  }
  // Step 3: register the oid in every reached primary record (insertion
  // appends to the class slice: one touched page per record, pmi_NIX).
  BatchCharge primary_batch;
  for (const auto& [key, nc] : reach) {
    primary_.Upsert(
        key, [&] { return MakePostingRecord(key); },
        [&](PostingRecord* rec) {
          AddOrBumpPosting(rec, obj.cls, obj.oid, nc);
        },
        /*touched_chain_pages=*/1, &primary_batch);
  }
  // Step 4: the new object's own 3-tuple (no parents yet: references are
  // forward-only, nothing can point at a brand-new object).
  if (HasAuxTuple(level)) {
    const Key akey = Key::FromOid(obj.oid);
    aux_.Upsert(
        akey, [&] { return MakeAuxRecord(obj.oid); },
        [&](AuxRecord* tuple) {
          for (const auto& [key, nc] : reach) {
            (void)nc;
            tuple->primary_keys.insert(key);
          }
        });
  }
}

// --------------------------------------------------------------- delete

void NIXIndex::OnDelete(const Object& obj, int level) {
  const double page_size = static_cast<double>(pager_->page_size());

  // Step 2: drop the parent link from the children's 3-tuples; fetch the
  // object's own 3-tuple (pointer set S and parents), then remove it.
  std::set<Key> pointer_keys;
  std::vector<Oid> parent_oids;
  if (HasChildTuples(level)) {
    BatchCharge aux_batch;
    for (Oid child : obj.refs(ctx_.attr_name(level))) {
      aux_.Mutate(
          Key::FromOid(child),
          [&](AuxRecord* tuple) {
            auto it = std::find(tuple->parents.begin(), tuple->parents.end(),
                                obj.oid);
            if (it != tuple->parents.end()) tuple->parents.erase(it);
          },
          /*touched_chain_pages=*/1, &aux_batch);
    }
  }
  if (HasAuxTuple(level)) {
    if (const AuxRecord* tuple = aux_.Lookup(Key::FromOid(obj.oid))) {
      pointer_keys = tuple->primary_keys;
      parent_oids = tuple->parents;
    }
    aux_.Remove(Key::FromOid(obj.oid));
  } else {
    // The subpath root has no 3-tuple; S comes from its reachability.
    for (const auto& [key, nc] : ComputeReach(obj, level)) {
      (void)nc;
      pointer_keys.insert(key);
    }
  }

  // Step 3, round 0: remove the object from every primary record in S.
  // Deletion locates the oid inside its class slice, so the slice's page
  // span is fetched and rewritten (pmd_NIX = prd_NIX, Section 3.1). The
  // records in S stay buffered across the propagation rounds ("a page will
  // be fetched only once"): one charge batch covers the whole deletion.
  BatchCharge primary_op_batch;
  {
    const ClassId cls = obj.cls;
    for (const Key& key : pointer_keys) {
      primary_.MutateWithTouch(
          key,
          [&](PostingRecord* rec) {
            rec->postings.erase(
                std::remove_if(rec->postings.begin(), rec->postings.end(),
                               [&](const Posting& p) {
                                 return p.oid == obj.oid;
                               }),
                rec->postings.end());
          },
          [&](const PostingRecord& rec) {
            return SlicePages(rec, std::vector<ClassId>{cls}, page_size);
          },
          &primary_op_batch);
    }
  }

  // Rounds 1..: propagate numchild decrements up the parent chain
  // ("then step 3 is executed again").
  std::map<Oid, std::map<Key, int>> frontier;
  for (Oid parent : parent_oids) {
    for (const Key& key : pointer_keys) frontier[parent][key] += 1;
  }
  int frontier_level = level - 1;
  while (!frontier.empty() && frontier_level >= ctx_.range.start) {
    // Group the decrements by key: one primary-record access per key per
    // round, as in the paper's step 3(a).
    std::map<Key, std::vector<std::pair<Oid, int>>> by_key;
    for (const auto& [parent, decs] : frontier) {
      for (const auto& [key, count] : decs) {
        by_key[key].push_back({parent, count});
      }
    }
    std::map<Oid, std::set<Key>> zeroed;  // parent -> keys it fell out of
    for (const auto& [key, decs] : by_key) {
      std::set<ClassId> touched_classes;
      primary_.MutateWithTouch(
          key,
          [&](PostingRecord* rec) {
            for (const auto& [parent, count] : decs) {
              for (auto it = rec->postings.begin();
                   it != rec->postings.end(); ++it) {
                if (it->oid == parent) {
                  touched_classes.insert(it->cls);
                  it->numchild -= count;
                  if (it->numchild <= 0) {
                    rec->postings.erase(it);
                    zeroed[parent].insert(key);
                  }
                  break;
                }
              }
            }
          },
          [&](const PostingRecord& rec) {
            return SlicePages(rec, touched_classes, page_size);
          },
          &primary_op_batch);
    }
    // Steps 3(b)/(c): the zeroed parents' 3-tuples lose pointers; their own
    // parents enter the next round.
    std::map<Oid, std::map<Key, int>> next;
    BatchCharge aux_batch;
    for (const auto& [parent, keys] : zeroed) {
      if (frontier_level > ctx_.range.start) {
        aux_.Mutate(
            Key::FromOid(parent),
            [&](AuxRecord* tuple) {
              for (const Key& key : keys) tuple->primary_keys.erase(key);
              for (Oid grand : tuple->parents) {
                for (const Key& key : keys) next[grand][key] += 1;
              }
            },
            /*touched_chain_pages=*/1, &aux_batch);
      }
      // frontier_level == range.start: roots have no 3-tuple and no
      // in-subpath parents; propagation ends below them.
    }
    frontier = std::move(next);
    --frontier_level;
  }
}

// --------------------------------------------------- boundary delete (CMD)

void NIXIndex::OnBoundaryDelete(Oid oid) {
  const Key key = Key::FromOid(oid);
  std::vector<Posting> postings;
  if (const PostingRecord* rec = primary_.Lookup(key)) {
    postings = rec->postings;
  } else {
    return;
  }
  primary_.Remove(key);
  // delpoint: every listed object's 3-tuple drops its pointer to the
  // removed record (batched: tuples share auxiliary leaf pages).
  BatchCharge aux_batch;
  for (const Posting& p : postings) {
    const int level = ctx_.LevelOfClass(p.cls);
    if (level > ctx_.range.start) {
      aux_.Mutate(
          Key::FromOid(p.oid),
          [&](AuxRecord* tuple) { tuple->primary_keys.erase(key); },
          /*touched_chain_pages=*/1, &aux_batch);
    }
  }
}

// --------------------------------------------------------------- validate

Status NIXIndex::Validate() const {
  PATHIX_RETURN_IF_ERROR(primary_.ValidateStructure());
  PATHIX_RETURN_IF_ERROR(aux_.ValidateStructure());

  // Cross-consistency: every aux pointer must resolve to a primary record
  // listing the object, and vice versa for non-root postings.
  Status status = Status::OK();
  std::map<Key, std::set<Oid>> primary_members;
  primary_.ForEach([&](const PostingRecord& rec) {
    for (const Posting& p : rec.postings) {
      primary_members[rec.key_value].insert(p.oid);
    }
  });
  aux_.ForEach([&](const AuxRecord& tuple) {
    if (!status.ok()) return;
    for (const Key& key : tuple.primary_keys) {
      auto it = primary_members.find(key);
      if (it == primary_members.end() ||
          it->second.count(tuple.key_value.oid()) == 0) {
        status = Status::Internal(
            "aux tuple points at a primary record not listing it: oid " +
            std::to_string(tuple.key_value.oid()));
        return;
      }
    }
  });
  return status;
}

Status NIXIndex::ValidateAgainstStore(const ObjectStore& store) const {
  // Recompute ground truth and compare with the primary contents.
  std::map<Key, std::map<Oid, std::int32_t>> truth;
  for (int l = ctx_.range.start; l <= ctx_.range.end; ++l) {
    for (ClassId cls : ctx_.hierarchy(l)) {
      for (Oid oid : store.PeekAll(cls)) {
        const Object* obj = store.Peek(oid);
        for (const auto& [key, nc] : ComputeReachFromStore(store, *obj, l)) {
          truth[key][oid] = nc;
        }
      }
    }
  }
  std::map<Key, std::map<Oid, std::int32_t>> actual;
  primary_.ForEach([&](const PostingRecord& rec) {
    for (const Posting& p : rec.postings) {
      if (p.numchild > 0) actual[rec.key_value][p.oid] = p.numchild;
    }
  });
  // Empty records may linger (lazy deletion); drop them for comparison.
  for (auto it = actual.begin(); it != actual.end();) {
    it = it->second.empty() ? actual.erase(it) : std::next(it);
  }
  for (auto it = truth.begin(); it != truth.end();) {
    it = it->second.empty() ? truth.erase(it) : std::next(it);
  }
  if (truth != actual) {
    return Status::Internal("NIX primary diverges from store ground truth");
  }
  return Status::OK();
}

std::size_t NIXIndex::total_pages() const {
  return primary_.total_pages() + aux_.total_pages();
}

}  // namespace pathix
