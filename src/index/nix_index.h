#pragma once

#include <map>
#include <set>
#include <unordered_map>

#include "index/btree.h"
#include "index/subpath_index.h"

/// \file nix_index.h
/// \brief Physical nested-inherited index (NIX), Section 3.1 / Figures 3-5.
///
/// Primary index: keyed by the subpath's ending-attribute values; each
/// record lists, grouped per scope class, the (oid, numchild) postings of
/// every object reaching the key value. numchild counts the object's
/// children that reach the value; it drives deletion propagation.
///
/// Auxiliary index: one 3-tuple per object of every scope class except the
/// subpath root hierarchy — (oid, pointers to the primary records listing
/// the object, list of aggregation parents).
///
/// OnInsert/OnDelete implement the paper's maintenance algorithms,
/// including the round-by-round parent-chain propagation of numchild
/// decrements ("then step 3 is executed again").

namespace pathix {

class NIXIndex : public SubpathIndex {
 public:
  NIXIndex(Pager* pager, SubpathIndexContext ctx);

  IndexOrg org() const override { return IndexOrg::kNIX; }
  std::vector<Oid> Probe(const std::vector<Key>& keys, int target_level,
                         const std::vector<ClassId>& target_classes) override;
  void OnInsert(const Object& obj, int level) override;
  void OnDelete(const Object& obj, int level) override;
  void OnBoundaryDelete(Oid oid) override;
  Status Validate() const override;
  std::size_t total_pages() const override;

  /// Deep consistency check against ground truth: recomputes reachability
  /// from the store and compares with the primary/auxiliary contents.
  Status ValidateAgainstStore(const ObjectStore& store) const;

  PostingTree& primary() { return primary_; }
  AuxTree& aux() { return aux_; }

 protected:
  void BuildImpl(const ObjectStore& store) override;

 private:
  /// key -> numchild for one object: its distinct reachable ending values.
  using ReachSet = std::map<Key, std::int32_t>;

  /// Reachability of one object computed through the index itself (children
  /// tuples for inner levels, own values at the ending level). Counted.
  ReachSet ComputeReach(const Object& obj, int level);

  /// Ground-truth reachability from the store (uncounted; Build/Validate).
  ReachSet ComputeReachFromStore(const ObjectStore& store, const Object& obj,
                                 int level) const;

  bool HasAuxTuple(int level) const { return level > ctx_.range.start; }
  bool HasChildTuples(int level) const { return level < ctx_.range.end; }

  PostingTree primary_;
  AuxTree aux_;
};

}  // namespace pathix
