#include "index/none_index.h"

#include <algorithm>
#include <memory>

namespace pathix {

bool NoneIndex::Reaches(Oid oid, int level, const std::vector<Key>& keys,
                        std::set<PageId>* charged) {
  const PageId page = store_->PageOf(oid);
  if (page != kInvalidPage && charged->insert(page).second) {
    pager_->NoteRead(page);
  }
  // Owning reference: NONE probes run during queries, concurrently with
  // deletes claiming objects out of the store.
  const std::shared_ptr<const Object> obj = store_->PeekRef(oid);
  if (obj == nullptr) return false;
  const std::string& attr = ctx_.attr_name(level);
  if (level == ctx_.range.end) {
    for (const Value& v : obj->values(attr)) {
      // Dangling references cannot match a live boundary key.
      if (v.kind() == Value::Kind::kRef &&
          store_->PeekRef(v.as_ref()) == nullptr) {
        continue;
      }
      const Key k = Key::FromValue(v);
      if (std::find(keys.begin(), keys.end(), k) != keys.end()) return true;
    }
    return false;
  }
  for (Oid child : obj->refs(attr)) {
    if (Reaches(child, level + 1, keys, charged)) return true;
  }
  return false;
}

std::vector<Oid> NoneIndex::Probe(const std::vector<Key>& keys,
                                  int target_level,
                                  const std::vector<ClassId>& target_classes) {
  PATHIX_DCHECK(store_ != nullptr && "Build() must run before Probe()");
  std::vector<Oid> out;
  std::set<PageId> charged;
  for (ClassId cls : target_classes) {
    for (Oid oid : store_->PeekAll(cls)) {
      // The scan itself touches every segment page once.
      const PageId page = store_->PageOf(oid);
      if (page != kInvalidPage && charged.insert(page).second) {
        pager_->NoteRead(page);
      }
      if (Reaches(oid, target_level, keys, &charged)) out.push_back(oid);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace pathix
