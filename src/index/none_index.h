#pragma once

#include <set>

#include "index/subpath_index.h"

/// \file none_index.h
/// \brief Physical counterpart of the kNone organization (the paper's
/// "no index on a subpath" future-work extension): the subpath is evaluated
/// navigationally against the object store — scan the target classes, follow
/// the forward references, test membership of the boundary keys.
///
/// Maintenance is free (there is nothing to maintain); queries pay the scan,
/// exactly as the NoneCostModel predicts.

namespace pathix {

class NoneIndex : public SubpathIndex {
 public:
  NoneIndex(Pager* pager, SubpathIndexContext ctx)
      : SubpathIndex(pager, std::move(ctx)) {}

  IndexOrg org() const override { return IndexOrg::kNone; }

  std::vector<Oid> Probe(const std::vector<Key>& keys, int target_level,
                         const std::vector<ClassId>& target_classes) override;

  void OnInsert(const Object& obj, int level) override {
    (void)obj;
    (void)level;
  }
  void OnDelete(const Object& obj, int level) override {
    (void)obj;
    (void)level;
  }
  void OnBoundaryDelete(Oid oid) override { (void)oid; }

  Status Validate() const override { return Status::OK(); }
  std::size_t total_pages() const override { return 0; }

 protected:
  void BuildImpl(const ObjectStore& store) override { store_ = &store; }
  /// Nothing is materialized, so building charges nothing (the transition
  /// model's "no index builds for free" rule, made physically true).
  void ChargeBuildIo(const ObjectStore& store) override { (void)store; }

 private:
  /// True if \p oid (an object at \p level) reaches one of \p keys at the
  /// subpath's ending attribute. Charges object pages through the per-query
  /// cache.
  bool Reaches(Oid oid, int level, const std::vector<Key>& keys,
               std::set<PageId>* charged);

  const ObjectStore* store_ = nullptr;
};

}  // namespace pathix
