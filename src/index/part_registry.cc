#include "index/part_registry.h"

#include "index/mix_index.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "index/mx_index.h"
#include "index/nix_index.h"
#include "index/none_index.h"

namespace pathix {

namespace {

Result<std::unique_ptr<SubpathIndex>> MakeIndex(Pager* pager,
                                                SubpathIndexContext ctx,
                                                IndexOrg org) {
  switch (org) {
    case IndexOrg::kMX:
      return std::unique_ptr<SubpathIndex>(
          std::make_unique<MXIndex>(pager, std::move(ctx)));
    case IndexOrg::kMIX:
      return std::unique_ptr<SubpathIndex>(
          std::make_unique<MIXIndex>(pager, std::move(ctx)));
    case IndexOrg::kNIX:
      return std::unique_ptr<SubpathIndex>(
          std::make_unique<NIXIndex>(pager, std::move(ctx)));
    case IndexOrg::kNone:
      return std::unique_ptr<SubpathIndex>(
          std::make_unique<NoneIndex>(pager, std::move(ctx)));
    case IndexOrg::kNX:
    case IndexOrg::kPX:
      break;
  }
  return Status::InvalidArgument(
      "NX/PX are model-only selection candidates (Section 6 extension); no "
      "physical implementation");
}

}  // namespace

Result<std::shared_ptr<PhysicalPart>> PhysicalPartRegistry::Acquire(
    Pager* pager, const Schema& schema, const Path& path,
    const IndexedSubpath& part, const ObjectStore& store) {
  StructuralKey key = StructuralKey::ForSubpath(path, part.subpath.start,
                                                part.subpath.end, part.org);
  // Exclusive across find-or-build: a second thread acquiring the same key
  // waits here and then adopts the winner's part instead of double-building.
  MutexLock lock(&mu_);
  auto it = parts_.find(key);
  if (it != parts_.end()) {
    if (std::shared_ptr<PhysicalPart> live = it->second.lock()) {
      ++parts_adopted_;
      return live;
    }
  }

  // Span around the actual build only (adoption is free). The tracer is a
  // leaf of the lock hierarchy, so opening it under mu_ is in order.
  obs::ObsSpan span(&obs::GlobalTracer(), "part_build", "registry");
  span.AddArg("key", key.Label(schema));

  // The part lives on its own standalone copy of the subpath (levels
  // renumbered to [1, len]), so its context never dangles when the workload
  // path that first created it is dropped or replaced.
  auto owner = std::make_shared<const Path>(
      path.SubpathBetween(part.subpath.start, part.subpath.end));
  SubpathIndexContext ctx;
  ctx.schema = &schema;
  ctx.path = owner.get();
  ctx.range = Subpath{1, owner->length()};
  Result<std::unique_ptr<SubpathIndex>> index =
      MakeIndex(pager, std::move(ctx), part.org);
  if (!index.ok()) return index.status();

  // The deleter owns the release counter jointly with the registry, so a
  // part outliving the registry (configurations are destroyed after it in
  // SimDatabase) still counts its release safely.
  std::shared_ptr<PhysicalPart> created(
      new PhysicalPart(), [counter = released_](PhysicalPart* p) {
        counter->fetch_add(1, std::memory_order_relaxed);
        delete p;
      });
  created->owner_path = std::move(owner);
  created->index = std::move(index).value();
  created->index->Build(store);
  const AccessStats io = created->index->build_io();
  span.AddArg("build_reads", static_cast<double>(io.reads));
  span.AddArg("build_writes", static_cast<double>(io.writes));
  build_io_ += io;
  ++parts_built_;
  parts_[std::move(key)] = created;
  return created;
}

std::shared_ptr<PhysicalPart> PhysicalPartRegistry::Find(
    const StructuralKey& key) const {
  ReaderMutexLock lock(&mu_);
  auto it = parts_.find(key);
  return it == parts_.end() ? nullptr : it->second.lock();
}

std::size_t PhysicalPartRegistry::live_parts() const {
  MutexLock lock(&mu_);  // exclusive: prunes expired entries
  std::size_t live = 0;
  for (auto it = parts_.begin(); it != parts_.end();) {
    if (it->second.expired()) {
      it = parts_.erase(it);
    } else {
      ++live;
      ++it;
    }
  }
  return live;
}

void PhysicalPartRegistry::ExportMetrics(
    obs::MetricsRegistry* registry_out) const {
  // Copy under mu_ first; metric mutexes are only taken afterwards (both
  // sides are lock-hierarchy leaves and must not nest).
  AccessStats io;
  std::uint64_t built = 0;
  std::uint64_t adopted = 0;
  {
    ReaderMutexLock lock(&mu_);
    io = build_io_;
    built = parts_built_;
    adopted = parts_adopted_;
  }
  const std::uint64_t released = parts_released();
  const std::size_t live = live_parts();

  registry_out->CounterAt("pathix_parts_built_total")
      .MirrorTo(static_cast<double>(built));
  registry_out->CounterAt("pathix_parts_adopted_total")
      .MirrorTo(static_cast<double>(adopted));
  registry_out->CounterAt("pathix_parts_released_total")
      .MirrorTo(static_cast<double>(released));
  registry_out->CounterAt("pathix_parts_build_io_total", {{"io", "read"}})
      .MirrorTo(static_cast<double>(io.reads));
  registry_out->CounterAt("pathix_parts_build_io_total", {{"io", "write"}})
      .MirrorTo(static_cast<double>(io.writes));
  registry_out->GaugeAt("pathix_parts_live").Set(static_cast<double>(live));
}

long PhysicalPartRegistry::use_count(const StructuralKey& key) const {
  const std::shared_ptr<PhysicalPart> live = Find(key);
  return live == nullptr ? 0 : live.use_count() - 1;  // minus our own ref
}

}  // namespace pathix
