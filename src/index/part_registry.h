#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>

#include "common/mutex.h"
#include "core/index_config.h"
#include "core/structural_key.h"
#include "index/subpath_index.h"

/// \file part_registry.h
/// \brief Refcounted registry of the distinct physical index structures of
/// one database.
///
/// Two indexed subpaths — of the same path across time, or of *different*
/// paths at the same time — denote the same physical structure exactly when
/// their StructuralKey matches (same class sequence, same attributes, same
/// organization). The registry maps each key to at most one live
/// PhysicalPart; every PhysicalConfiguration that uses the part holds a
/// shared_ptr to it, so
///
///  - a two-path workload sharing a subpath builds (and maintains) exactly
///    one structure for it, matching the advisor's pay-maintenance-once
///    pricing;
///  - reconfiguring a path keeps every part whose key survives, because the
///    outgoing configuration still holds its reference while the incoming
///    one is acquired (SimDatabase::ReconfigureIndexes);
///  - dropping the last reference frees the part, and the registry's weak
///    entry expires.
///
/// Each part is built on a standalone copy of its own subpath (levels
/// renumbered to [1, len]), so it is independent of whichever workload path
/// first created it; borrowing configurations translate their path-relative
/// levels by a per-slot offset.

namespace pathix {

namespace obs {
class MetricsRegistry;
}  // namespace obs

/// One distinct physical index structure, self-contained: \p owner_path is
/// the part's subpath as a standalone Path (levels [1, len]) and keeps the
/// index's SubpathIndexContext pointers valid for the part's lifetime.
///
/// \p latch is the part's reader/writer lock: probes take it shared (hot
/// reads never serialize against each other), maintenance takes it
/// exclusive. Because parts are shared across configurations by
/// StructuralKey, two paths borrowing the same structure automatically
/// serialize through the *same* latch. The latch sits between the
/// registry's mutex and the ObjectStore/Pager in the lock hierarchy
/// (common/mutex.h); index code under the latch calls only downstream.
struct PhysicalPart {
  std::shared_ptr<const Path> owner_path;
  std::unique_ptr<SubpathIndex> index;
  mutable Mutex latch;
};

/// \brief The per-database registry. Internally synchronized: Acquire,
/// Find and the counters may be called from concurrent threads; a key
/// being acquired by two threads at once is built exactly once (the loser
/// adopts the winner's part). Acquire holds the registry mutex across the
/// build, calling into the ObjectStore and Pager — downstream in the lock
/// hierarchy (common/mutex.h), never back up into the registry.
class PhysicalPartRegistry {
 public:
  /// Returns the live part for the key of (\p path, \p part), creating and
  /// building it from \p store (uncounted) when no configuration currently
  /// holds one. InvalidArgument for model-only organizations (NX/PX).
  Result<std::shared_ptr<PhysicalPart>> Acquire(Pager* pager,
                                                const Schema& schema,
                                                const Path& path,
                                                const IndexedSubpath& part,
                                                const ObjectStore& store)
      EXCLUDES(mu_);

  /// The live part for \p key, or nullptr when none is held. Never builds.
  std::shared_ptr<PhysicalPart> Find(const StructuralKey& key) const
      EXCLUDES(mu_);

  /// Number of distinct physical structures currently alive (prunes expired
  /// entries as a side effect of counting).
  std::size_t live_parts() const EXCLUDES(mu_);

  /// Shared_ptr use count of the live part for \p key (0 when none) — the
  /// number of configurations referencing the structure.
  long use_count(const StructuralKey& key) const EXCLUDES(mu_);

  /// Cumulative pager-measured build I/O of every part Acquire actually
  /// built (SubpathIndex::build_io: bulk scan reads + structure writes).
  /// Parts adopted from a live configuration add nothing, so the delta of
  /// this counter across a reconfiguration is the measured counterpart of
  /// the transition model's analytic scan + write estimate.
  AccessStats cumulative_build_io() const EXCLUDES(mu_) {
    ReaderMutexLock lock(&mu_);
    return build_io_;
  }

  /// Number of parts Acquire built (as opposed to adopted).
  std::uint64_t parts_built() const EXCLUDES(mu_) {
    ReaderMutexLock lock(&mu_);
    return parts_built_;
  }

  /// Number of Acquire calls that adopted a live part instead of building.
  std::uint64_t parts_adopted() const EXCLUDES(mu_) {
    ReaderMutexLock lock(&mu_);
    return parts_adopted_;
  }

  /// Number of parts destroyed so far (last configuration reference
  /// dropped). Counted by the parts' deleter, which owns the counter
  /// jointly with the registry — so the count stays correct even for parts
  /// that outlive the registry (SimDatabase destroys the registry before
  /// the configurations holding the parts).
  std::uint64_t parts_released() const {
    return released_->load(std::memory_order_relaxed);
  }

  /// Mirrors the registry's counters into \p registry_out (obs/metrics.h):
  /// pathix_parts_{built,adopted,released}_total,
  /// pathix_parts_build_io_total{io} and the pathix_parts_live gauge.
  /// Never called with mu_ held.
  void ExportMetrics(obs::MetricsRegistry* registry_out) const EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  mutable std::map<StructuralKey, std::weak_ptr<PhysicalPart>> parts_
      GUARDED_BY(mu_);
  AccessStats build_io_ GUARDED_BY(mu_);
  std::uint64_t parts_built_ GUARDED_BY(mu_) = 0;
  std::uint64_t parts_adopted_ GUARDED_BY(mu_) = 0;
  /// Shared with every part's deleter (see parts_released()).
  std::shared_ptr<std::atomic<std::uint64_t>> released_ =
      std::make_shared<std::atomic<std::uint64_t>>(0);
};

}  // namespace pathix
