#include "index/physical_config.h"

#include "index/mix_index.h"
#include "index/mx_index.h"
#include "index/nix_index.h"
#include "index/none_index.h"

namespace pathix {

Result<PhysicalConfiguration> PhysicalConfiguration::Create(
    Pager* pager, const Schema& schema, const Path& path,
    IndexConfiguration config) {
  PATHIX_RETURN_IF_ERROR(config.Validate(path.length()));
  PhysicalConfiguration out;
  out.schema_ = &schema;
  out.path_ = &path;
  out.config_ = std::move(config);
  for (const IndexedSubpath& part : out.config_.parts()) {
    SubpathIndexContext ctx;
    ctx.schema = &schema;
    ctx.path = &path;
    ctx.range = part.subpath;
    switch (part.org) {
      case IndexOrg::kMX:
        out.indexes_.push_back(std::make_unique<MXIndex>(pager, ctx));
        break;
      case IndexOrg::kMIX:
        out.indexes_.push_back(std::make_unique<MIXIndex>(pager, ctx));
        break;
      case IndexOrg::kNIX:
        out.indexes_.push_back(std::make_unique<NIXIndex>(pager, ctx));
        break;
      case IndexOrg::kNone:
        out.indexes_.push_back(std::make_unique<NoneIndex>(pager, ctx));
        break;
      case IndexOrg::kNX:
      case IndexOrg::kPX:
        return Status::InvalidArgument(
            "NX/PX are model-only selection candidates (Section 6 "
            "extension); no physical implementation");
    }
  }
  return out;
}

Result<PhysicalConfiguration> PhysicalConfiguration::CreateReusing(
    Pager* pager, const Schema& schema, const Path& path,
    IndexConfiguration config, PhysicalConfiguration* previous,
    const ObjectStore& store) {
  Result<PhysicalConfiguration> created =
      Create(pager, schema, path, std::move(config));
  if (!created.ok()) return created.status();
  PhysicalConfiguration out = std::move(created).value();
  for (std::size_t i = 0; i < out.indexes_.size(); ++i) {
    const IndexedSubpath& part = out.config_.parts()[i];
    std::unique_ptr<SubpathIndex>* reusable = nullptr;
    if (previous != nullptr) {
      for (std::size_t j = 0; j < previous->indexes_.size(); ++j) {
        std::unique_ptr<SubpathIndex>& prev = previous->indexes_[j];
        if (prev != nullptr && prev->range() == part.subpath &&
            prev->org() == part.org) {
          reusable = &prev;
          break;
        }
      }
    }
    if (reusable != nullptr) {
      out.indexes_[i] = std::move(*reusable);
    } else {
      out.indexes_[i]->Build(store);
    }
  }
  return out;
}

void PhysicalConfiguration::Build(const ObjectStore& store) {
  for (const auto& index : indexes_) index->Build(store);
}

int PhysicalConfiguration::LevelOf(ClassId cls) const {
  for (int l = 1; l <= path_->length(); ++l) {
    if (schema_->IsSameOrSubclassOf(cls, path_->class_at(l))) return l;
  }
  return 0;
}

int PhysicalConfiguration::PartOfLevel(int level) const {
  for (std::size_t i = 0; i < indexes_.size(); ++i) {
    const Subpath& range = indexes_[i]->range();
    if (range.start <= level && level <= range.end) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

std::vector<Oid> PhysicalConfiguration::Evaluate(const Key& ending_value,
                                                 ClassId target_class,
                                                 bool include_subclasses) {
  const int target_level = LevelOf(target_class);
  PATHIX_DCHECK(target_level > 0);
  const int target_part = PartOfLevel(target_level);
  PATHIX_DCHECK(target_part >= 0);

  std::vector<Key> keys{ending_value};
  // Downstream subpaths resolve with respect to their root hierarchy; the
  // resulting oids are the key values of the preceding subpath's index.
  for (int i = static_cast<int>(indexes_.size()) - 1; i > target_part; --i) {
    SubpathIndex& index = *indexes_[i];
    const std::vector<Oid> oids = index.Probe(
        keys, index.range().start, index.context().hierarchy(index.range().start));
    keys.clear();
    keys.reserve(oids.size());
    for (Oid oid : oids) keys.push_back(Key::FromOid(oid));
    if (keys.empty()) return {};
  }
  std::vector<ClassId> targets =
      include_subclasses ? schema_->HierarchyOf(target_class)
                         : std::vector<ClassId>{target_class};
  return indexes_[target_part]->Probe(keys, target_level, targets);
}

void PhysicalConfiguration::OnInsert(const Object& obj) {
  const int level = LevelOf(obj.cls);
  if (level == 0) return;  // class not on this path
  const int part = PartOfLevel(level);
  indexes_[part]->OnInsert(obj, level);
}

void PhysicalConfiguration::OnDelete(const Object& obj) {
  const int level = LevelOf(obj.cls);
  if (level == 0) return;
  const int part = PartOfLevel(level);
  indexes_[part]->OnDelete(obj, level);
  // Definition 4.2: the deleted oid is a key value of the preceding
  // subpath's index; its record is dropped there.
  if (level == indexes_[part]->range().start && part > 0) {
    indexes_[part - 1]->OnBoundaryDelete(obj.oid);
  }
}

Status PhysicalConfiguration::Validate() const {
  for (const auto& index : indexes_) {
    PATHIX_RETURN_IF_ERROR(index->Validate());
  }
  return Status::OK();
}

std::size_t PhysicalConfiguration::total_pages() const {
  std::size_t pages = 0;
  for (const auto& index : indexes_) pages += index->total_pages();
  return pages;
}

}  // namespace pathix
