#include "index/physical_config.h"

#include "index/nix_index.h"

namespace pathix {

Result<PhysicalConfiguration> PhysicalConfiguration::Create(
    Pager* pager, const Schema& schema, const Path& path,
    IndexConfiguration config, PhysicalPartRegistry* registry,
    const ObjectStore& store) {
  PATHIX_RETURN_IF_ERROR(config.Validate(path.length()));
  PhysicalConfiguration out;
  out.schema_ = &schema;
  out.path_ = &path;
  out.config_ = std::move(config);
  for (const IndexedSubpath& part : out.config_.parts()) {
    Result<std::shared_ptr<PhysicalPart>> acquired =
        registry->Acquire(pager, schema, path, part, store);
    if (!acquired.ok()) return acquired.status();
    Slot slot;
    slot.part = std::move(acquired).value();
    slot.offset = slot.part->index->range().start - part.subpath.start;
    out.slots_.push_back(std::move(slot));
  }
  return out;
}

int PhysicalConfiguration::LevelOf(ClassId cls) const {
  for (int l = 1; l <= path_->length(); ++l) {
    if (schema_->IsSameOrSubclassOf(cls, path_->class_at(l))) return l;
  }
  return 0;
}

int PhysicalConfiguration::PartOfLevel(int level) const {
  for (std::size_t i = 0; i < config_.parts().size(); ++i) {
    const Subpath& range = config_.parts()[i].subpath;
    if (range.start <= level && level <= range.end) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

std::vector<Oid> PhysicalConfiguration::Evaluate(const Key& ending_value,
                                                 ClassId target_class,
                                                 bool include_subclasses) {
  const int target_level = LevelOf(target_class);
  PATHIX_DCHECK(target_level > 0);
  const int target_part = PartOfLevel(target_level);
  PATHIX_DCHECK(target_part >= 0);

  std::vector<Key> keys{ending_value};
  // Downstream subpaths resolve with respect to their root hierarchy; the
  // resulting oids are the key values of the preceding subpath's index.
  // Probes run in the part's own standalone coordinates, each under that
  // part's shared latch (one at a time, so latches never nest).
  for (int i = static_cast<int>(slots_.size()) - 1; i > target_part; --i) {
    const Slot& probed = slots_[static_cast<std::size_t>(i)];
    ReaderMutexLock latch(&probed.part->latch);
    SubpathIndex& index = *probed.part->index;
    const std::vector<Oid> oids =
        index.Probe(keys, index.range().start,
                    index.context().hierarchy(index.range().start));
    keys.clear();
    keys.reserve(oids.size());
    for (Oid oid : oids) keys.push_back(Key::FromOid(oid));
    if (keys.empty()) return {};
  }
  std::vector<ClassId> targets =
      include_subclasses ? schema_->HierarchyOf(target_class)
                         : std::vector<ClassId>{target_class};
  const Slot& slot = slots_[static_cast<std::size_t>(target_part)];
  ReaderMutexLock latch(&slot.part->latch);
  return slot.part->index->Probe(keys, target_level + slot.offset, targets);
}

void PhysicalConfiguration::OnInsert(const Object& obj,
                                     std::set<const SubpathIndex*>* visited) {
  const int level = LevelOf(obj.cls);
  if (level == 0) return;  // class not on this path
  const int part = PartOfLevel(level);
  const Slot& slot = slots_[static_cast<std::size_t>(part)];
  if (visited != nullptr && !visited->insert(slot.part->index.get()).second) {
    return;  // another path's configuration already maintained this part
  }
  MutexLock latch(&slot.part->latch);
  slot.part->index->OnInsert(obj, level + slot.offset);
}

void PhysicalConfiguration::OnDelete(
    const Object& obj, std::set<const SubpathIndex*>* visited,
    std::set<const SubpathIndex*>* boundary_visited) {
  const int level = LevelOf(obj.cls);
  if (level == 0) return;
  const int part = PartOfLevel(level);
  const Slot& slot = slots_[static_cast<std::size_t>(part)];
  if (visited == nullptr || visited->insert(slot.part->index.get()).second) {
    MutexLock latch(&slot.part->latch);
    slot.part->index->OnDelete(obj, level + slot.offset);
  }
  // Definition 4.2: the deleted oid is a key value of the preceding
  // subpath's index; its record is dropped there.
  if (level == config_.parts()[static_cast<std::size_t>(part)].subpath.start &&
      part > 0) {
    const Slot& prev_slot = slots_[static_cast<std::size_t>(part - 1)];
    SubpathIndex* preceding = prev_slot.part->index.get();
    if (boundary_visited == nullptr ||
        boundary_visited->insert(preceding).second) {
      MutexLock latch(&prev_slot.part->latch);
      preceding->OnBoundaryDelete(obj.oid);
    }
  }
}

Status PhysicalConfiguration::Validate() const {
  for (const Slot& slot : slots_) {
    ReaderMutexLock latch(&slot.part->latch);
    PATHIX_RETURN_IF_ERROR(slot.part->index->Validate());
  }
  return Status::OK();
}

std::size_t PhysicalConfiguration::total_pages() const {
  std::size_t pages = 0;
  for (const Slot& slot : slots_) {
    ReaderMutexLock latch(&slot.part->latch);
    pages += slot.part->index->total_pages();
  }
  return pages;
}

std::vector<SubpathIndex*> PhysicalConfiguration::indexes() const {
  std::vector<SubpathIndex*> out;
  out.reserve(slots_.size());
  for (const Slot& slot : slots_) out.push_back(slot.part->index.get());
  return out;
}

}  // namespace pathix
