#pragma once

#include <memory>
#include <vector>

#include "core/index_config.h"
#include "index/subpath_index.h"

/// \file physical_config.h
/// \brief The physical realization of an index configuration: one
/// SubpathIndex per (S_i, X_i) pair, plus the cross-subpath query
/// evaluation and maintenance dispatch (including Definition 4.2's
/// boundary deletions).

namespace pathix {

class PhysicalConfiguration {
 public:
  /// Instantiates (empty) physical indexes for \p config on \p path.
  static Result<PhysicalConfiguration> Create(Pager* pager,
                                              const Schema& schema,
                                              const Path& path,
                                              IndexConfiguration config);

  /// Builds the configuration *ready to use*: parts that exist identically
  /// in \p previous (same subpath range and organization) adopt its physical
  /// structures instead of being rebuilt; the remaining parts are built from
  /// \p store (uncounted). \p previous may be nullptr (everything is fresh);
  /// adoption leaves it in a moved-from state (destroy it, don't use it),
  /// and \p path must be the path \p previous was created on. Do not call
  /// Build() afterwards.
  static Result<PhysicalConfiguration> CreateReusing(
      Pager* pager, const Schema& schema, const Path& path,
      IndexConfiguration config, PhysicalConfiguration* previous,
      const ObjectStore& store);

  /// Populates every index from the store (uncounted).
  void Build(const ObjectStore& store);

  /// Evaluates "A_n = value" with respect to \p target_class: probes the
  /// subpath indexes from the ending attribute backwards, feeding each
  /// subpath's result oids as key values into the previous one
  /// (Proposition 4.1's decomposition). Counted.
  ///
  /// \param include_subclasses true evaluates w.r.t. the hierarchy rooted
  /// at target_class (the paper's C+ variant).
  std::vector<Oid> Evaluate(const Key& ending_value, ClassId target_class,
                            bool include_subclasses);

  /// Index maintenance for an object insertion / deletion. For deletions
  /// of a subpath's root-hierarchy object, the preceding subpath's index
  /// drops the corresponding key record (CMD).
  void OnInsert(const Object& obj);
  void OnDelete(const Object& obj);

  Status Validate() const;
  std::size_t total_pages() const;

  const IndexConfiguration& config() const { return config_; }
  const std::vector<std::unique_ptr<SubpathIndex>>& indexes() const {
    return indexes_;
  }

 private:
  PhysicalConfiguration() = default;

  /// Path level of \p cls (1-based) or 0 if the class is not in scope.
  int LevelOf(ClassId cls) const;
  /// Index of the configuration part containing path level \p level.
  int PartOfLevel(int level) const;

  const Schema* schema_ = nullptr;
  const Path* path_ = nullptr;
  IndexConfiguration config_;
  std::vector<std::unique_ptr<SubpathIndex>> indexes_;
};

}  // namespace pathix
