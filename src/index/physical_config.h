#pragma once

#include <memory>
#include <set>
#include <vector>

#include "core/index_config.h"
#include "index/part_registry.h"

/// \file physical_config.h
/// \brief The physical realization of an index configuration on one path:
/// one slot per (S_i, X_i) pair referencing a (possibly shared) physical
/// part from the database's PhysicalPartRegistry, plus the cross-subpath
/// query evaluation and maintenance dispatch (including Definition 4.2's
/// boundary deletions).
///
/// Parts are owned by shared_ptr: configurations of different paths that
/// cover a structurally identical subpath with the same organization
/// reference the *same* structure, which is therefore built and maintained
/// once (the accounting the workload advisor's pricing assumes). Each slot
/// carries the offset between the configuration's path-relative levels and
/// the part's own standalone levels.

namespace pathix {

class PhysicalConfiguration {
 public:
  /// Builds the configuration *ready to use*: every part is acquired from
  /// \p registry — structures already held by any configuration (this
  /// path's previous one, or another path's current one) are adopted;
  /// genuinely new parts are built from \p store (uncounted, like all index
  /// creation — transition prices are modeled by online/transition_cost.h).
  static Result<PhysicalConfiguration> Create(Pager* pager,
                                              const Schema& schema,
                                              const Path& path,
                                              IndexConfiguration config,
                                              PhysicalPartRegistry* registry,
                                              const ObjectStore& store);

  /// Evaluates "A_n = value" with respect to \p target_class: probes the
  /// subpath indexes from the ending attribute backwards, feeding each
  /// subpath's result oids as key values into the previous one
  /// (Proposition 4.1's decomposition). Counted.
  ///
  /// \param include_subclasses true evaluates w.r.t. the hierarchy rooted
  /// at target_class (the paper's C+ variant).
  std::vector<Oid> Evaluate(const Key& ending_value, ClassId target_class,
                            bool include_subclasses);

  /// Index maintenance for an object insertion / deletion. For deletions
  /// of a subpath's root-hierarchy object, the preceding subpath's index
  /// drops the corresponding key record (CMD) — \p boundary_visited dedups
  /// that across configurations. Parts shared with another configuration
  /// must be maintained once per database operation, not once per using
  /// path: \p visited (when non-null) records the parts already maintained
  /// in this operation and suppresses repeats.
  void OnInsert(const Object& obj, std::set<const SubpathIndex*>* visited);
  void OnDelete(const Object& obj, std::set<const SubpathIndex*>* visited,
                std::set<const SubpathIndex*>* boundary_visited);

  Status Validate() const;
  std::size_t total_pages() const;

  const IndexConfiguration& config() const { return config_; }

  /// The physical indexes behind the configuration's parts, in part order.
  /// Shared parts are the same object in every configuration using them.
  std::vector<SubpathIndex*> indexes() const;

  /// The shared part behind part \p i (tests and transition pricing).
  const std::shared_ptr<PhysicalPart>& part(std::size_t i) const {
    return slots_[i].part;
  }

 private:
  PhysicalConfiguration() = default;

  /// One configured part: the shared structure plus the translation from
  /// this path's levels to the part's standalone levels
  /// (owner_level = path_level + offset).
  struct Slot {
    std::shared_ptr<PhysicalPart> part;
    int offset = 0;
  };

  /// Path level of \p cls (1-based) or 0 if the class is not in scope.
  int LevelOf(ClassId cls) const;
  /// Index of the configuration part containing path level \p level.
  int PartOfLevel(int level) const;

  const Schema* schema_ = nullptr;
  const Path* path_ = nullptr;
  IndexConfiguration config_;
  std::vector<Slot> slots_;
};

}  // namespace pathix
