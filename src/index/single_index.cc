#include "index/single_index.h"

namespace pathix {

namespace {

PostingRecord MakeRecord(const Key& key) {
  PostingRecord rec;
  rec.key_value = key;
  return rec;
}

void AddPosting(PostingRecord* rec, ClassId cls, Oid oid) {
  for (Posting& p : rec->postings) {
    if (p.cls == cls && p.oid == oid) {
      ++p.numchild;  // multi-valued attribute holding the value twice
      return;
    }
  }
  rec->postings.push_back(Posting{cls, oid, 1});
}

}  // namespace

void AttrIndex::AddEntryUncounted(const Key& key, ClassId cls, Oid oid) {
  tree_.UpsertUncounted(
      key, [&] { return MakeRecord(key); },
      [&](PostingRecord* rec) { AddPosting(rec, cls, oid); });
}

void AttrIndex::AddEntry(const Key& key, ClassId cls, Oid oid) {
  tree_.Upsert(
      key, [&] { return MakeRecord(key); },
      [&](PostingRecord* rec) { AddPosting(rec, cls, oid); });
}

void AttrIndex::RemoveEntry(const Key& key, ClassId cls, Oid oid) {
  tree_.Mutate(key, [&](PostingRecord* rec) {
    for (auto it = rec->postings.begin(); it != rec->postings.end(); ++it) {
      if (it->cls == cls && it->oid == oid) {
        if (--it->numchild <= 0) rec->postings.erase(it);
        return;
      }
    }
  });
}

void AttrIndex::RemoveKey(const Key& key) { tree_.Remove(key); }

std::vector<Posting> AttrIndex::Lookup(const Key& key) {
  std::vector<Posting> out;
  if (const PostingRecord* rec = tree_.Lookup(key)) {
    out = rec->postings;
  }
  return out;
}

std::vector<Posting> AttrIndex::LookupMany(const std::vector<Key>& keys) {
  // Batched probe: a page shared by several keys is charged once, matching
  // Yao's accounting in the analytic model (CRT).
  BatchCharge batch;
  std::vector<Posting> out;
  for (const Key& key : keys) {
    if (const PostingRecord* rec = tree_.Lookup(key, &batch)) {
      out.insert(out.end(), rec->postings.begin(), rec->postings.end());
    }
  }
  return out;
}

}  // namespace pathix
