#pragma once

#include <string>
#include <vector>

#include "index/btree.h"

/// \file single_index.h
/// \brief Attribute index: one B+-tree mapping attribute values to the oids
/// holding them. This is the paper's simple index (SIX) when fed by one
/// class, and its inherited index (IIX / class-hierarchy index) when fed by
/// a whole inheritance hierarchy — the building block of the physical MX
/// and MIX organizations.

namespace pathix {

class AttrIndex {
 public:
  AttrIndex(Pager* pager, std::string name)
      : tree_(pager, std::move(name)) {}

  /// Registers (key -> oid of cls); uncounted (index build).
  void AddEntryUncounted(const Key& key, ClassId cls, Oid oid);

  /// Counted maintenance: adds / removes one posting.
  void AddEntry(const Key& key, ClassId cls, Oid oid);
  void RemoveEntry(const Key& key, ClassId cls, Oid oid);

  /// Counted: deletes the whole record of \p key (Definition 4.2's CMD —
  /// the key value, an oid of the next class, disappeared).
  void RemoveKey(const Key& key);

  /// Counted lookup of one key's postings (empty if absent).
  std::vector<Posting> Lookup(const Key& key);

  /// Counted lookup of many keys; postings are concatenated.
  std::vector<Posting> LookupMany(const std::vector<Key>& keys);

  PostingTree& tree() { return tree_; }
  const PostingTree& tree() const { return tree_; }

 private:
  PostingTree tree_;
};

}  // namespace pathix
