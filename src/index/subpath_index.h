#pragma once

#include <memory>
#include <vector>

#include "core/subpath.h"
#include "costmodel/index_org.h"
#include "index/key.h"
#include "schema/path.h"
#include "storage/object_store.h"

/// \file subpath_index.h
/// \brief Interface of a physical index allocated on one subpath of a path
/// (the physical counterpart of one (S_i, X_i) pair of Definition 4.1).

namespace pathix {

/// \brief Shared context of a physical subpath index.
struct SubpathIndexContext {
  const Schema* schema = nullptr;
  const Path* path = nullptr;
  Subpath range;

  /// Name of attribute A_l (1-based path level).
  const std::string& attr_name(int l) const {
    return path->attribute_at(l).name;
  }
  /// The inheritance hierarchy of level l (root first).
  std::vector<ClassId> hierarchy(int l) const {
    return schema->HierarchyOf(path->class_at(l));
  }
  /// The path level within [range.start, range.end] whose hierarchy
  /// contains \p cls, or 0 if none.
  int LevelOfClass(ClassId cls) const {
    for (int l = range.start; l <= range.end; ++l) {
      if (schema->IsSameOrSubclassOf(cls, path->class_at(l))) return l;
    }
    return 0;
  }
};

/// \brief A physical index on one subpath.
///
/// Page traffic of Probe/On* calls is counted through the Pager. Build's
/// construction work is uncounted (index creation is never part of a
/// replay's measured pages), but its *bulk-build* page traffic — one read
/// of every segment page in the subpath's scope, one write per structure
/// page — is routed through the pager in an excluded ScopedAccessProbe and
/// kept as build_io(): the measured counterpart of the transition model's
/// analytic scan + write estimate, which the reconfiguration controllers
/// record next to the modeled price of every committed switch.
class SubpathIndex {
 public:
  virtual ~SubpathIndex() = default;

  virtual IndexOrg org() const = 0;
  const Subpath& range() const { return ctx_.range; }
  const SubpathIndexContext& context() const { return ctx_; }

  /// Populates the index from a loaded store and records build_io().
  void Build(const ObjectStore& store) {
    BuildImpl(store);
    ScopedAccessProbe probe(pager_, PageOpKind::kBuild, {}, /*exclude=*/true);
    ChargeBuildIo(store);
    build_io_ = probe.Delta();
  }

  /// Measured page I/O of the last Build() (zero before any build).
  const AccessStats& build_io() const { return build_io_; }

  /// Evaluates the subpath: \p keys are values of the subpath's ending
  /// attribute A_b (the query constant, or oids delivered by the next
  /// subpath); returns the oids of objects of \p target_classes at
  /// \p target_level that reach one of the keys.
  virtual std::vector<Oid> Probe(const std::vector<Key>& keys,
                                 int target_level,
                                 const std::vector<ClassId>& target_classes) = 0;

  /// Index maintenance for an object of path level \p level (within range)
  /// being inserted / having been deleted. The object carries its
  /// attribute values; for deletion it is the pre-deletion image.
  virtual void OnInsert(const Object& obj, int level) = 0;
  virtual void OnDelete(const Object& obj, int level) = 0;

  /// Definition 4.2's boundary maintenance: an object of class C_{b+1}
  /// (the next subpath's root hierarchy) was deleted; its oid is a key
  /// value of this index and its record must go.
  virtual void OnBoundaryDelete(Oid oid) = 0;

  /// Structural invariants (tests).
  virtual Status Validate() const = 0;

  /// Pages occupied (storage ablations).
  virtual std::size_t total_pages() const = 0;

 protected:
  SubpathIndex(Pager* pager, SubpathIndexContext ctx)
      : pager_(pager), ctx_(std::move(ctx)) {}

  /// The organization-specific construction (uncounted, as before).
  virtual void BuildImpl(const ObjectStore& store) = 0;

  /// Charges the measured bulk-build I/O through the pager: the default
  /// reads every segment page of every class in scope once (the builders
  /// iterate the store class by class) and writes each structure page out.
  /// NoneIndex materializes nothing and overrides this to charge nothing —
  /// mirroring the transition model's "no index builds for free" rule.
  virtual void ChargeBuildIo(const ObjectStore& store) {
    for (int l = ctx_.range.start; l <= ctx_.range.end; ++l) {
      for (ClassId cls : ctx_.hierarchy(l)) {
        pager_->NoteReads(store.SegmentPages(cls));
      }
    }
    pager_->NoteWrites(total_pages());
  }

  Pager* pager_;
  SubpathIndexContext ctx_;
  AccessStats build_io_;
};

}  // namespace pathix
