#include "io/spec_parser.h"

#include <fstream>
#include <sstream>
#include <vector>

namespace pathix {

namespace {

Status LineError(int line, const std::string& msg) {
  return Status::InvalidArgument("line " + std::to_string(line) + ": " + msg);
}

bool ParseDouble(const std::string& token, double* out) {
  std::size_t used = 0;
  try {
    *out = std::stod(token, &used);
  } catch (...) {
    return false;
  }
  return used == token.size();
}

Result<IndexOrg> ParseOrg(const std::string& token) {
  if (token == "MX") return IndexOrg::kMX;
  if (token == "MIX") return IndexOrg::kMIX;
  if (token == "NIX") return IndexOrg::kNIX;
  if (token == "NX") return IndexOrg::kNX;
  if (token == "PX") return IndexOrg::kPX;
  if (token == "NONE") return IndexOrg::kNone;
  return Status::InvalidArgument("unknown organization '" + token + "'");
}

}  // namespace

Result<AdvisorSpec> ParseAdvisorSpec(const std::string& text) {
  AdvisorSpec spec;
  bool have_path = false;
  ClassId path_start = kInvalidClass;
  std::vector<std::string> path_attrs;

  std::istringstream in(text);
  std::string raw;
  int line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    const std::size_t hash = raw.find('#');
    if (hash != std::string::npos) raw.resize(hash);
    std::istringstream line(raw);
    std::vector<std::string> tok;
    for (std::string t; line >> t;) tok.push_back(t);
    if (tok.empty()) continue;
    const std::string& cmd = tok[0];

    if (cmd == "page_size" || cmd == "oid_len" || cmd == "key_len") {
      double v;
      if (tok.size() != 2 || !ParseDouble(tok[1], &v) || v <= 0) {
        return LineError(line_no, cmd + " expects one positive number");
      }
      PhysicalParams* pp = spec.catalog.mutable_params();
      if (cmd == "page_size") pp->page_size = v;
      if (cmd == "oid_len") pp->oid_len = v;
      if (cmd == "key_len") pp->key_len = v;
    } else if (cmd == "class") {
      // class NAME [: SUPER] n d nin [obj_len]
      if (tok.size() < 5) {
        return LineError(line_no, "class NAME [: SUPER] n d nin [obj_len]");
      }
      std::size_t i = 1;
      const std::string name = tok[i++];
      ClassId super = kInvalidClass;
      if (tok[i] == ":") {
        if (tok.size() < 7) {
          return LineError(line_no, "subclass declaration needs n d nin");
        }
        super = spec.schema.FindClass(tok[i + 1]);
        if (super == kInvalidClass) {
          return LineError(line_no, "unknown superclass '" + tok[i + 1] + "'");
        }
        i += 2;
      }
      double n, d, nin, obj_len = 64;
      if (tok.size() < i + 3 || !ParseDouble(tok[i], &n) ||
          !ParseDouble(tok[i + 1], &d) || !ParseDouble(tok[i + 2], &nin)) {
        return LineError(line_no, "class statistics must be numeric");
      }
      if (tok.size() > i + 3 && !ParseDouble(tok[i + 3], &obj_len)) {
        return LineError(line_no, "obj_len must be numeric");
      }
      Result<ClassId> cls = spec.schema.AddClass(name, super);
      if (!cls.ok()) return LineError(line_no, cls.status().message());
      spec.catalog.SetClassStats(cls.value(), ClassStats{n, d, nin, obj_len});
    } else if (cmd == "ref") {
      if (tok.size() < 4) {
        return LineError(line_no, "ref CLASS ATTR DOMAIN [multi]");
      }
      const ClassId cls = spec.schema.FindClass(tok[1]);
      const ClassId domain = spec.schema.FindClass(tok[3]);
      if (cls == kInvalidClass || domain == kInvalidClass) {
        return LineError(line_no, "unknown class in ref");
      }
      const bool multi = tok.size() > 4 && tok[4] == "multi";
      const Status s =
          spec.schema.AddReferenceAttribute(cls, tok[2], domain, multi);
      if (!s.ok()) return LineError(line_no, s.message());
    } else if (cmd == "attr") {
      if (tok.size() < 4) {
        return LineError(line_no, "attr CLASS NAME string|int [multi]");
      }
      const ClassId cls = spec.schema.FindClass(tok[1]);
      if (cls == kInvalidClass) {
        return LineError(line_no, "unknown class '" + tok[1] + "'");
      }
      AtomicType type;
      if (tok[3] == "string") {
        type = AtomicType::kString;
      } else if (tok[3] == "int") {
        type = AtomicType::kInt;
      } else {
        return LineError(line_no, "atomic type must be string or int");
      }
      const bool multi = tok.size() > 4 && tok[4] == "multi";
      const Status s = spec.schema.AddAtomicAttribute(cls, tok[2], type, multi);
      if (!s.ok()) return LineError(line_no, s.message());
    } else if (cmd == "path") {
      if (have_path) return LineError(line_no, "only one path per spec");
      if (tok.size() < 3) return LineError(line_no, "path CLASS attr...");
      path_start = spec.schema.FindClass(tok[1]);
      if (path_start == kInvalidClass) {
        return LineError(line_no, "unknown class '" + tok[1] + "'");
      }
      path_attrs.assign(tok.begin() + 2, tok.end());
      have_path = true;
    } else if (cmd == "load") {
      if (tok.size() != 5) {
        return LineError(line_no, "load CLASS alpha beta gamma");
      }
      const ClassId cls = spec.schema.FindClass(tok[1]);
      if (cls == kInvalidClass) {
        return LineError(line_no, "unknown class '" + tok[1] + "'");
      }
      double a, b, g;
      if (!ParseDouble(tok[2], &a) || !ParseDouble(tok[3], &b) ||
          !ParseDouble(tok[4], &g) || a < 0 || b < 0 || g < 0) {
        return LineError(line_no, "load frequencies must be >= 0");
      }
      spec.load.Set(cls, a, b, g);
    } else if (cmd == "orgs") {
      if (tok.size() < 2) return LineError(line_no, "orgs needs at least one");
      spec.options.orgs.clear();
      for (std::size_t i = 1; i < tok.size(); ++i) {
        Result<IndexOrg> org = ParseOrg(tok[i]);
        if (!org.ok()) return LineError(line_no, org.status().message());
        spec.options.orgs.push_back(org.value());
      }
    } else if (cmd == "matching_keys") {
      double v;
      if (tok.size() != 2 || !ParseDouble(tok[1], &v) || v < 1) {
        return LineError(line_no, "matching_keys expects a number >= 1");
      }
      spec.options.query_profile.matching_keys = v;
    } else {
      return LineError(line_no, "unknown directive '" + cmd + "'");
    }
  }

  if (!have_path) {
    return Status::InvalidArgument("spec declares no path");
  }
  PATHIX_RETURN_IF_ERROR(spec.schema.Validate());
  Result<Path> path = Path::Create(spec.schema, path_start, path_attrs);
  if (!path.ok()) return path.status();
  spec.path = std::move(path).value();
  return spec;
}

Result<AdvisorSpec> ParseAdvisorSpecFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("cannot open spec file '" + path + "'");
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseAdvisorSpec(buf.str());
}

}  // namespace pathix
