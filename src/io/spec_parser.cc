#include "io/spec_parser.h"

#include <algorithm>
#include <fstream>
#include <limits>
#include <set>
#include <sstream>
#include <vector>

namespace pathix {

namespace {

Status LineError(int line, const std::string& msg) {
  return Status::InvalidArgument("line " + std::to_string(line) + ": " + msg);
}

bool ParseDouble(const std::string& token, double* out) {
  std::size_t used = 0;
  try {
    *out = std::stod(token, &used);
  } catch (...) {
    return false;
  }
  return used == token.size();
}

Result<IndexOrg> ParseOrg(const std::string& token) {
  if (token == "MX") return IndexOrg::kMX;
  if (token == "MIX") return IndexOrg::kMIX;
  if (token == "NIX") return IndexOrg::kNIX;
  if (token == "NX") return IndexOrg::kNX;
  if (token == "PX") return IndexOrg::kPX;
  if (token == "NONE") return IndexOrg::kNone;
  return Status::InvalidArgument("unknown organization '" + token + "'");
}

/// A `path` directive with the `load` lines bound to it.
struct PendingPath {
  int line = 0;  // of the path directive, for late errors
  std::string name;  // explicit spec name; empty when unnamed
  ClassId start = kInvalidClass;
  std::vector<std::string> attrs;
  LoadDistribution load;
  std::set<ClassId> loaded_classes;  // duplicate detection
};

/// One raw `mix` line, validated against path scopes only after the paths
/// have been resolved (the errors keep the line number).
struct RawMix {
  int line = 0;
  std::size_t phase = 0;
  std::string path_name;  // empty: the legacy single-path form
  ClassId cls = kInvalidClass;
  double query = 0;
  double insert = 0;
  double del = 0;
};

/// Trace-mode collection state: the spec under construction plus the raw
/// lines whose validation needs the resolved paths.
struct TraceParseState {
  TraceSpec spec;
  std::vector<RawMix> mixes;
  std::vector<int> populate_lines;  // parallel to spec.populate
};

/// Which spec flavor is being parsed (gates the flavor-specific directives).
enum class SpecMode { kSinglePath, kWorkload, kTrace };

/// Shared parser for all three spec flavors. kWorkload and kTrace permit
/// multiple (optionally named) paths, per-path load sections and the budget
/// directive; kTrace additionally permits the populate/trace_seed/phase/mix
/// section, collected into \p trace (non-null exactly in trace mode).
Result<WorkloadSpec> ParseSpecImpl(const std::string& text, SpecMode mode,
                                   TraceParseState* trace) {
  const bool multi_path = mode != SpecMode::kSinglePath;
  TraceSpec* trace_out = trace != nullptr ? &trace->spec : nullptr;
  WorkloadSpec spec;
  std::vector<PendingPath> pending;
  std::set<std::string> path_names;
  std::set<ClassId> populated;      // trace: duplicate populate detection
  // trace: per-phase duplicate detection — (path name, class) for queries,
  // class for update weights.
  std::set<std::pair<std::string, ClassId>> mixed_queries;
  std::set<ClassId> mixed_updates;
  bool phase_has_weight = false;    // trace: current phase has a weight > 0
  bool have_seed = false;
  LoadDistribution default_load;       // loads before the first path
  std::set<ClassId> default_loaded;    // duplicate detection
  bool have_orgs = false;

  std::istringstream in(text);
  std::string raw;
  int line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    const std::size_t hash = raw.find('#');
    if (hash != std::string::npos) raw.resize(hash);
    std::istringstream line(raw);
    std::vector<std::string> tok;
    for (std::string t; line >> t;) tok.push_back(t);
    if (tok.empty()) continue;
    const std::string& cmd = tok[0];

    if (cmd == "page_size" || cmd == "oid_len" || cmd == "key_len") {
      double v;
      // Bounds are checked in negated form so NaN fails them too.
      if (tok.size() != 2 || !ParseDouble(tok[1], &v) || !(v > 0)) {
        return LineError(line_no, cmd + " expects one positive number");
      }
      PhysicalParams* pp = spec.catalog.mutable_params();
      if (cmd == "page_size") pp->page_size = v;
      if (cmd == "oid_len") pp->oid_len = v;
      if (cmd == "key_len") pp->key_len = v;
    } else if (cmd == "class") {
      // class NAME [: SUPER] n d nin [obj_len]
      if (tok.size() < 5) {
        return LineError(line_no, "class NAME [: SUPER] n d nin [obj_len]");
      }
      std::size_t i = 1;
      const std::string name = tok[i++];
      if (path_names.count(name) > 0) {
        return LineError(line_no, "class '" + name +
                                      "' collides with a path name");
      }
      ClassId super = kInvalidClass;
      if (tok[i] == ":") {
        if (tok.size() < 7) {
          return LineError(line_no, "subclass declaration needs n d nin");
        }
        super = spec.schema.FindClass(tok[i + 1]);
        if (super == kInvalidClass) {
          return LineError(line_no, "unknown superclass '" + tok[i + 1] + "'");
        }
        i += 2;
      }
      double n, d, nin, obj_len = 64;
      if (tok.size() < i + 3 || !ParseDouble(tok[i], &n) ||
          !ParseDouble(tok[i + 1], &d) || !ParseDouble(tok[i + 2], &nin)) {
        return LineError(line_no, "class statistics must be numeric");
      }
      if (tok.size() > i + 3 && !ParseDouble(tok[i + 3], &obj_len)) {
        return LineError(line_no, "obj_len must be numeric");
      }
      Result<ClassId> cls = spec.schema.AddClass(name, super);
      if (!cls.ok()) return LineError(line_no, cls.status().message());
      spec.catalog.SetClassStats(cls.value(), ClassStats{n, d, nin, obj_len});
    } else if (cmd == "ref") {
      if (tok.size() < 4) {
        return LineError(line_no, "ref CLASS ATTR DOMAIN [multi]");
      }
      const ClassId cls = spec.schema.FindClass(tok[1]);
      const ClassId domain = spec.schema.FindClass(tok[3]);
      if (cls == kInvalidClass || domain == kInvalidClass) {
        return LineError(line_no, "unknown class in ref");
      }
      const bool multi = tok.size() > 4 && tok[4] == "multi";
      const Status s =
          spec.schema.AddReferenceAttribute(cls, tok[2], domain, multi);
      if (!s.ok()) return LineError(line_no, s.message());
    } else if (cmd == "attr") {
      if (tok.size() < 4) {
        return LineError(line_no, "attr CLASS NAME string|int [multi]");
      }
      const ClassId cls = spec.schema.FindClass(tok[1]);
      if (cls == kInvalidClass) {
        return LineError(line_no, "unknown class '" + tok[1] + "'");
      }
      AtomicType type;
      if (tok[3] == "string") {
        type = AtomicType::kString;
      } else if (tok[3] == "int") {
        type = AtomicType::kInt;
      } else {
        return LineError(line_no, "atomic type must be string or int");
      }
      const bool multi = tok.size() > 4 && tok[4] == "multi";
      const Status s = spec.schema.AddAtomicAttribute(cls, tok[2], type, multi);
      if (!s.ok()) return LineError(line_no, s.message());
    } else if (cmd == "path") {
      if (!multi_path && !pending.empty()) {
        return LineError(line_no, "only one path per spec");
      }
      if (trace_out != nullptr && !trace_out->phases.empty()) {
        return LineError(line_no, "paths must be declared before phases");
      }
      if (tok.size() < 3) {
        return LineError(line_no, "path [NAME] CLASS attr...");
      }
      PendingPath p;
      p.line = line_no;
      // Trace mixes reference paths by name, so a multi-path trace with an
      // unnamed path would be unusable; reject it at the declaration (the
      // check for the earlier path, which was legal while it was alone,
      // lives after this directive is parsed).
      std::size_t i = 1;
      p.start = spec.schema.FindClass(tok[i]);
      if (p.start == kInvalidClass) {
        // Named form: path NAME CLASS attr...
        if (tok.size() < 4) {
          return LineError(line_no, "unknown class '" + tok[i] + "'");
        }
        p.name = tok[i++];
        if (spec.schema.FindClass(p.name) != kInvalidClass) {
          return LineError(line_no, "path name '" + p.name +
                                        "' collides with a class name");
        }
        if (!path_names.insert(p.name).second) {
          return LineError(line_no, "duplicate path name '" + p.name + "'");
        }
        p.start = spec.schema.FindClass(tok[i]);
        if (p.start == kInvalidClass) {
          return LineError(line_no, "unknown class '" + tok[i] + "'");
        }
      }
      ++i;
      p.attrs.assign(tok.begin() + static_cast<long>(i), tok.end());
      pending.push_back(std::move(p));
      if (trace_out != nullptr && pending.size() >= 2) {
        for (const PendingPath& declared : pending) {
          if (declared.name.empty()) {
            return LineError(declared.line,
                             "multi-path traces require named paths "
                             "(path NAME CLASS attr...), so mix lines can "
                             "direct their queries");
          }
        }
      }
    } else if (cmd == "load") {
      if (tok.size() != 5) {
        return LineError(line_no, "load CLASS alpha beta gamma");
      }
      const ClassId cls = spec.schema.FindClass(tok[1]);
      if (cls == kInvalidClass) {
        return LineError(line_no, "unknown class '" + tok[1] + "'");
      }
      double a, b, g;
      if (!ParseDouble(tok[2], &a) || !ParseDouble(tok[3], &b) ||
          !ParseDouble(tok[4], &g) || !(a >= 0) || !(b >= 0) || !(g >= 0)) {
        return LineError(line_no, "load frequencies must be >= 0");
      }
      // In multi-path modes a load binds to the most recent path; loads
      // before the first path are defaults for every path. Single-path
      // specs keep one global section (declaration order does not matter).
      const bool to_default = !multi_path || pending.empty();
      LoadDistribution& target =
          to_default ? default_load : pending.back().load;
      std::set<ClassId>& seen =
          to_default ? default_loaded : pending.back().loaded_classes;
      if (!seen.insert(cls).second) {
        return LineError(line_no,
                         "duplicate load for class '" + tok[1] + "'");
      }
      target.Set(cls, a, b, g);
    } else if (cmd == "orgs") {
      if (have_orgs) {
        return LineError(line_no, "duplicate orgs directive");
      }
      if (tok.size() < 2) return LineError(line_no, "orgs needs at least one");
      have_orgs = true;
      spec.options.orgs.clear();
      for (std::size_t i = 1; i < tok.size(); ++i) {
        Result<IndexOrg> org = ParseOrg(tok[i]);
        if (!org.ok()) return LineError(line_no, org.status().message());
        spec.options.orgs.push_back(org.value());
      }
    } else if (cmd == "matching_keys") {
      double v;
      if (tok.size() != 2 || !ParseDouble(tok[1], &v) || !(v >= 1)) {
        return LineError(line_no, "matching_keys expects a number >= 1");
      }
      spec.options.query_profile.matching_keys = v;
    } else if (cmd == "populate" && trace_out != nullptr) {
      // populate CLASS COUNT [DISTINCT [NIN]]
      if (tok.size() < 3 || tok.size() > 5) {
        return LineError(line_no, "populate CLASS COUNT [DISTINCT [NIN]]");
      }
      TracePopulate p;
      p.cls = spec.schema.FindClass(tok[1]);
      if (p.cls == kInvalidClass) {
        return LineError(line_no, "unknown class '" + tok[1] + "'");
      }
      if (!populated.insert(p.cls).second) {
        return LineError(line_no, "duplicate populate for '" + tok[1] + "'");
      }
      // Upper bounds keep the int/uint casts below defined for any input.
      double count, distinct = 0, nin = 1;
      if (!ParseDouble(tok[2], &count) || !(count >= 0) || count > 1e9) {
        return LineError(line_no, "populate count must be in [0, 1e9]");
      }
      if (tok.size() > 3 && (!ParseDouble(tok[3], &distinct) ||
                             !(distinct >= 0) || distinct > 1e9)) {
        return LineError(line_no, "populate distinct must be in [0, 1e9]");
      }
      if (tok.size() > 4 && (!ParseDouble(tok[4], &nin) || !(nin >= 1))) {
        return LineError(line_no, "populate nin must be >= 1");
      }
      p.count = static_cast<int>(count);
      // Default ending-value pool: a tenth of the objects, at least one.
      p.distinct_values = distinct > 0 ? static_cast<int>(distinct)
                                       : std::max(1, p.count / 10);
      p.nin = nin;
      trace_out->populate.push_back(p);
      trace->populate_lines.push_back(line_no);
    } else if (cmd == "trace_seed" && trace_out != nullptr) {
      double v;
      if (have_seed || tok.size() != 2 || !ParseDouble(tok[1], &v) ||
          !(v >= 0) || v > 4294967295.0) {
        return LineError(line_no, have_seed
                                      ? "duplicate trace_seed"
                                      : "trace_seed expects one number in "
                                        "[0, 2^32)");
      }
      have_seed = true;
      trace_out->seed = static_cast<std::uint32_t>(v);
    } else if (cmd == "phase" && trace_out != nullptr) {
      // phase NAME OPS
      double ops;
      if (tok.size() != 3 || !ParseDouble(tok[2], &ops) || !(ops >= 1) ||
          ops > 1e15) {
        return LineError(line_no, "phase NAME OPS (1 to 1e15 operations)");
      }
      if (!trace_out->phases.empty() && !phase_has_weight) {
        return LineError(line_no, "phase '" + trace_out->phases.back().name +
                                      "' has no positive mix weights");
      }
      TracePhase phase;
      phase.name = tok[1];
      phase.ops = static_cast<std::uint64_t>(ops);
      trace_out->phases.push_back(std::move(phase));
      mixed_queries.clear();
      mixed_updates.clear();
      phase_has_weight = false;
    } else if (cmd == "mix" && trace_out != nullptr) {
      if (trace_out->phases.empty()) {
        return LineError(line_no, "mix before the first phase");
      }
      // mix [PATH] CLASS query insert delete
      if (tok.size() != 5 && tok.size() != 6) {
        return LineError(line_no, "mix [PATH] CLASS query insert delete");
      }
      RawMix mix;
      mix.line = line_no;
      mix.phase = trace_out->phases.size() - 1;
      std::size_t i = 1;
      if (tok.size() == 6) {
        mix.path_name = tok[i++];
        if (path_names.count(mix.path_name) == 0) {
          return LineError(line_no, "mix names path '" + mix.path_name +
                                        "', which is not declared in this "
                                        "spec's workload section");
        }
      }
      mix.cls = spec.schema.FindClass(tok[i]);
      if (mix.cls == kInvalidClass) {
        return LineError(line_no, "unknown class '" + tok[i] + "'");
      }
      if (!ParseDouble(tok[i + 1], &mix.query) ||
          !ParseDouble(tok[i + 2], &mix.insert) ||
          !ParseDouble(tok[i + 3], &mix.del) || !(mix.query >= 0) ||
          !(mix.insert >= 0) || !(mix.del >= 0)) {
        return LineError(line_no, "mix weights must be >= 0");
      }
      if (!mixed_queries.emplace(mix.path_name, mix.cls).second) {
        return LineError(line_no, "duplicate mix for class '" + tok[i] +
                                      "'" +
                                      (mix.path_name.empty()
                                           ? std::string()
                                           : " on path '" + mix.path_name +
                                                 "'"));
      }
      if (mix.insert > 0 || mix.del > 0) {
        if (!mixed_updates.insert(mix.cls).second) {
          return LineError(line_no,
                           "update weights for class '" + tok[i] +
                               "' are already given in this phase (updates "
                               "are path-agnostic; give them once)");
        }
      }
      if (mix.query + mix.insert + mix.del > 0) phase_has_weight = true;
      trace->mixes.push_back(std::move(mix));
    } else if (cmd == "measure" && trace_out != nullptr) {
      // measure on|off — opt the trace into the measured-vs-modeled
      // validation replay (pathix_online prints the per-phase, per-path
      // comparison when on).
      if (tok.size() != 2 || (tok[1] != "on" && tok[1] != "off")) {
        return LineError(line_no, "measure expects 'on' or 'off'");
      }
      trace_out->measure = tok[1] == "on";
    } else if (cmd == "budget") {
      if (!multi_path) {
        return LineError(line_no,
                         "budget is only valid in workload and trace specs "
                         "(pathix_workload_advise, pathix_online)");
      }
      if (spec.has_budget) {
        return LineError(line_no, "duplicate budget directive");
      }
      double v;
      if (tok.size() != 2 || !ParseDouble(tok[1], &v) || !(v >= 0) ||
          v == std::numeric_limits<double>::infinity()) {
        return LineError(line_no, "budget expects one number of bytes >= 0");
      }
      spec.has_budget = true;
      spec.joint_options.storage_budget_bytes = v;
    } else if (cmd == "populate" || cmd == "trace_seed" || cmd == "phase" ||
               cmd == "mix" || cmd == "measure") {
      return LineError(line_no, cmd + " is only valid in trace specs "
                                      "(pathix_online)");
    } else {
      return LineError(line_no, "unknown directive '" + cmd + "'");
    }
  }

  if (pending.empty()) {
    return Status::InvalidArgument("spec declares no path");
  }
  if (trace_out != nullptr) {
    if (trace_out->populate.empty()) {
      return Status::InvalidArgument("trace spec declares no populate lines");
    }
    if (trace_out->phases.empty()) {
      return Status::InvalidArgument("trace spec declares no phases");
    }
    if (!phase_has_weight) {
      return Status::InvalidArgument("phase '" + trace_out->phases.back().name +
                                     "' has no positive mix weights");
    }
  }
  PATHIX_RETURN_IF_ERROR(spec.schema.Validate());

  for (std::size_t k = 0; k < pending.size(); ++k) {
    PendingPath& p = pending[k];
    Result<Path> path = Path::Create(spec.schema, p.start, p.attrs);
    if (!path.ok()) return LineError(p.line, path.status().message());
    PathWorkload workload;
    // Synthesized names start with '#', which comment stripping makes
    // unwritable in a spec — they can never collide with (or be mistaken
    // for) an explicit name.
    workload.name = !p.name.empty() ? p.name : "#" + std::to_string(k);
    workload.path = std::move(path).value();
    workload.load = default_load;  // defaults first, then overrides
    for (const ClassId cls : p.loaded_classes) {
      workload.load.Set(cls, p.load.Get(cls));
    }
    spec.paths.push_back(std::move(workload));
  }
  return spec;
}

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("cannot open spec file '" + path + "'");
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

}  // namespace

void TracePhase::SetSinglePathMix(const LoadDistribution& combined) {
  queries.assign(1, {});
  updates.clear();
  for (const auto& [cls, load] : combined.entries()) {
    if (load.query > 0) queries[0][cls] = load.query;
    if (load.insert > 0 || load.del > 0) {
      updates[cls] = OpLoad{0, load.insert, load.del};
    }
  }
  mixes.assign(1, combined);
}

Result<AdvisorSpec> ParseAdvisorSpec(const std::string& text) {
  Result<WorkloadSpec> parsed =
      ParseSpecImpl(text, SpecMode::kSinglePath, nullptr);
  if (!parsed.ok()) return parsed.status();
  WorkloadSpec& w = parsed.value();
  AdvisorSpec spec;
  spec.schema = std::move(w.schema);
  spec.catalog = std::move(w.catalog);
  spec.options = std::move(w.options);
  spec.load = std::move(w.paths.front().load);
  spec.path = std::move(w.paths.front().path);
  return spec;
}

Result<AdvisorSpec> ParseAdvisorSpecFile(const std::string& path) {
  Result<std::string> text = ReadFile(path);
  if (!text.ok()) return text.status();
  return ParseAdvisorSpec(text.value());
}

Result<WorkloadSpec> ParseWorkloadSpec(const std::string& text) {
  return ParseSpecImpl(text, SpecMode::kWorkload, nullptr);
}

Result<WorkloadSpec> ParseWorkloadSpecFile(const std::string& path) {
  Result<std::string> text = ReadFile(path);
  if (!text.ok()) return text.status();
  return ParseWorkloadSpec(text.value());
}

Result<TraceSpec> ParseTraceSpec(const std::string& text) {
  TraceParseState state;
  Result<WorkloadSpec> parsed = ParseSpecImpl(text, SpecMode::kTrace, &state);
  if (!parsed.ok()) return parsed.status();
  WorkloadSpec& w = parsed.value();
  TraceSpec& trace = state.spec;
  trace.schema = std::move(w.schema);
  trace.catalog = std::move(w.catalog);
  trace.options = std::move(w.options);
  trace.storage_budget_bytes = w.joint_options.storage_budget_bytes;
  trace.has_budget = w.has_budget;

  // Path ids: the spec's names; the sole *unnamed* path of a single-path
  // trace (synthesized "#0") keeps the database's default id so the
  // degenerate case is literally the single-path subsystem. Multi-path
  // traces reject unnamed paths at parse time, so synthesized names never
  // become ids.
  std::map<std::string, std::size_t> path_index;
  std::vector<std::set<ClassId>> scopes;
  for (std::size_t k = 0; k < w.paths.size(); ++k) {
    TracePath tp;
    tp.id = (w.paths.size() == 1 && w.paths[k].name == "#0")
                ? "default"
                : w.paths[k].name;
    tp.path = std::move(w.paths[k].path);
    tp.claimed_load = std::move(w.paths[k].load);
    const std::vector<ClassId> scope_vec = tp.path.Scope(trace.schema);
    scopes.emplace_back(scope_vec.begin(), scope_vec.end());
    path_index[w.paths[k].name] = k;
    trace.paths.push_back(std::move(tp));
  }

  // The replayer turns mix entries into concrete operations; resolve every
  // raw line against the declared paths' scopes, keeping line numbers.
  for (TracePhase& phase : trace.phases) {
    phase.queries.assign(trace.paths.size(), {});
  }
  for (const RawMix& mix : state.mixes) {
    std::size_t p = 0;
    if (mix.path_name.empty()) {
      if (trace.paths.size() > 1) {
        return LineError(mix.line,
                         "this trace declares several paths; mix lines must "
                         "name the path their queries hit "
                         "(mix PATH CLASS q i d)");
      }
    } else {
      p = path_index.at(mix.path_name);
    }
    TracePhase& phase = trace.phases[mix.phase];
    const std::string cls_name = trace.schema.GetClass(mix.cls).name();
    if (mix.query > 0 && scopes[p].count(mix.cls) == 0) {
      return LineError(mix.line, "phase '" + phase.name + "': mix class '" +
                                     cls_name + "' is not in the scope of "
                                     "path '" +
                                     trace.paths[p].id + "'");
    }
    if (mix.insert > 0 || mix.del > 0) {
      bool anywhere = false;
      for (const std::set<ClassId>& scope : scopes) {
        if (scope.count(mix.cls) > 0) {
          anywhere = true;
          break;
        }
      }
      if (!anywhere) {
        return LineError(mix.line, "phase '" + phase.name +
                                       "': update class '" + cls_name +
                                       "' is not in any declared path's "
                                       "scope");
      }
    }
    if (mix.query > 0) phase.queries[p][mix.cls] += mix.query;
    if (mix.insert > 0 || mix.del > 0) {
      OpLoad& upd = phase.updates[mix.cls];
      upd.insert += mix.insert;
      upd.del += mix.del;
    }
  }

  // Resolved per-path mixes: path p's queries as alpha, plus the updates of
  // the classes in its scope as beta/gamma — the view oracle and claimed-
  // load consumers solve on.
  for (TracePhase& phase : trace.phases) {
    phase.mixes.assign(trace.paths.size(), {});
    for (std::size_t p = 0; p < trace.paths.size(); ++p) {
      std::map<ClassId, OpLoad> merged;
      for (const auto& [cls, weight] : phase.queries[p]) {
        merged[cls].query += weight;
      }
      for (const auto& [cls, upd] : phase.updates) {
        if (scopes[p].count(cls) == 0) continue;
        merged[cls].insert += upd.insert;
        merged[cls].del += upd.del;
      }
      for (const auto& [cls, load] : merged) {
        phase.mixes[p].Set(cls, load);
      }
    }
  }

  for (std::size_t i = 0; i < trace.populate.size(); ++i) {
    bool anywhere = false;
    for (const std::set<ClassId>& scope : scopes) {
      if (scope.count(trace.populate[i].cls) > 0) {
        anywhere = true;
        break;
      }
    }
    if (!anywhere) {
      return LineError(state.populate_lines[i],
                       "populate class '" +
                           trace.schema.GetClass(trace.populate[i].cls)
                               .name() +
                           "' is not in any declared path's scope");
    }
  }
  return trace;
}

Result<TraceSpec> ParseTraceSpecFile(const std::string& path) {
  Result<std::string> text = ReadFile(path);
  if (!text.ok()) return text.status();
  return ParseTraceSpec(text.value());
}

}  // namespace pathix
