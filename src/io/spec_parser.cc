#include "io/spec_parser.h"

#include <fstream>
#include <limits>
#include <set>
#include <sstream>
#include <vector>

namespace pathix {

namespace {

Status LineError(int line, const std::string& msg) {
  return Status::InvalidArgument("line " + std::to_string(line) + ": " + msg);
}

bool ParseDouble(const std::string& token, double* out) {
  std::size_t used = 0;
  try {
    *out = std::stod(token, &used);
  } catch (...) {
    return false;
  }
  return used == token.size();
}

Result<IndexOrg> ParseOrg(const std::string& token) {
  if (token == "MX") return IndexOrg::kMX;
  if (token == "MIX") return IndexOrg::kMIX;
  if (token == "NIX") return IndexOrg::kNIX;
  if (token == "NX") return IndexOrg::kNX;
  if (token == "PX") return IndexOrg::kPX;
  if (token == "NONE") return IndexOrg::kNone;
  return Status::InvalidArgument("unknown organization '" + token + "'");
}

/// A `path` directive with the `load` lines bound to it.
struct PendingPath {
  int line = 0;  // of the path directive, for late errors
  ClassId start = kInvalidClass;
  std::vector<std::string> attrs;
  LoadDistribution load;
  std::set<ClassId> loaded_classes;  // duplicate detection
};

/// Shared parser for both spec flavors; \p workload_mode permits multiple
/// paths, per-path load sections and the budget directive.
Result<WorkloadSpec> ParseSpecImpl(const std::string& text,
                                   bool workload_mode) {
  WorkloadSpec spec;
  std::vector<PendingPath> pending;
  LoadDistribution default_load;       // loads before the first path
  std::set<ClassId> default_loaded;    // duplicate detection
  bool have_orgs = false;

  std::istringstream in(text);
  std::string raw;
  int line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    const std::size_t hash = raw.find('#');
    if (hash != std::string::npos) raw.resize(hash);
    std::istringstream line(raw);
    std::vector<std::string> tok;
    for (std::string t; line >> t;) tok.push_back(t);
    if (tok.empty()) continue;
    const std::string& cmd = tok[0];

    if (cmd == "page_size" || cmd == "oid_len" || cmd == "key_len") {
      double v;
      // Bounds are checked in negated form so NaN fails them too.
      if (tok.size() != 2 || !ParseDouble(tok[1], &v) || !(v > 0)) {
        return LineError(line_no, cmd + " expects one positive number");
      }
      PhysicalParams* pp = spec.catalog.mutable_params();
      if (cmd == "page_size") pp->page_size = v;
      if (cmd == "oid_len") pp->oid_len = v;
      if (cmd == "key_len") pp->key_len = v;
    } else if (cmd == "class") {
      // class NAME [: SUPER] n d nin [obj_len]
      if (tok.size() < 5) {
        return LineError(line_no, "class NAME [: SUPER] n d nin [obj_len]");
      }
      std::size_t i = 1;
      const std::string name = tok[i++];
      ClassId super = kInvalidClass;
      if (tok[i] == ":") {
        if (tok.size() < 7) {
          return LineError(line_no, "subclass declaration needs n d nin");
        }
        super = spec.schema.FindClass(tok[i + 1]);
        if (super == kInvalidClass) {
          return LineError(line_no, "unknown superclass '" + tok[i + 1] + "'");
        }
        i += 2;
      }
      double n, d, nin, obj_len = 64;
      if (tok.size() < i + 3 || !ParseDouble(tok[i], &n) ||
          !ParseDouble(tok[i + 1], &d) || !ParseDouble(tok[i + 2], &nin)) {
        return LineError(line_no, "class statistics must be numeric");
      }
      if (tok.size() > i + 3 && !ParseDouble(tok[i + 3], &obj_len)) {
        return LineError(line_no, "obj_len must be numeric");
      }
      Result<ClassId> cls = spec.schema.AddClass(name, super);
      if (!cls.ok()) return LineError(line_no, cls.status().message());
      spec.catalog.SetClassStats(cls.value(), ClassStats{n, d, nin, obj_len});
    } else if (cmd == "ref") {
      if (tok.size() < 4) {
        return LineError(line_no, "ref CLASS ATTR DOMAIN [multi]");
      }
      const ClassId cls = spec.schema.FindClass(tok[1]);
      const ClassId domain = spec.schema.FindClass(tok[3]);
      if (cls == kInvalidClass || domain == kInvalidClass) {
        return LineError(line_no, "unknown class in ref");
      }
      const bool multi = tok.size() > 4 && tok[4] == "multi";
      const Status s =
          spec.schema.AddReferenceAttribute(cls, tok[2], domain, multi);
      if (!s.ok()) return LineError(line_no, s.message());
    } else if (cmd == "attr") {
      if (tok.size() < 4) {
        return LineError(line_no, "attr CLASS NAME string|int [multi]");
      }
      const ClassId cls = spec.schema.FindClass(tok[1]);
      if (cls == kInvalidClass) {
        return LineError(line_no, "unknown class '" + tok[1] + "'");
      }
      AtomicType type;
      if (tok[3] == "string") {
        type = AtomicType::kString;
      } else if (tok[3] == "int") {
        type = AtomicType::kInt;
      } else {
        return LineError(line_no, "atomic type must be string or int");
      }
      const bool multi = tok.size() > 4 && tok[4] == "multi";
      const Status s = spec.schema.AddAtomicAttribute(cls, tok[2], type, multi);
      if (!s.ok()) return LineError(line_no, s.message());
    } else if (cmd == "path") {
      if (!workload_mode && !pending.empty()) {
        return LineError(line_no, "only one path per spec");
      }
      if (tok.size() < 3) return LineError(line_no, "path CLASS attr...");
      PendingPath p;
      p.line = line_no;
      p.start = spec.schema.FindClass(tok[1]);
      if (p.start == kInvalidClass) {
        return LineError(line_no, "unknown class '" + tok[1] + "'");
      }
      p.attrs.assign(tok.begin() + 2, tok.end());
      pending.push_back(std::move(p));
    } else if (cmd == "load") {
      if (tok.size() != 5) {
        return LineError(line_no, "load CLASS alpha beta gamma");
      }
      const ClassId cls = spec.schema.FindClass(tok[1]);
      if (cls == kInvalidClass) {
        return LineError(line_no, "unknown class '" + tok[1] + "'");
      }
      double a, b, g;
      if (!ParseDouble(tok[2], &a) || !ParseDouble(tok[3], &b) ||
          !ParseDouble(tok[4], &g) || !(a >= 0) || !(b >= 0) || !(g >= 0)) {
        return LineError(line_no, "load frequencies must be >= 0");
      }
      // In workload mode a load binds to the most recent path; loads before
      // the first path are defaults for every path. Single-path specs keep
      // one global section (declaration order does not matter).
      const bool to_default = !workload_mode || pending.empty();
      LoadDistribution& target =
          to_default ? default_load : pending.back().load;
      std::set<ClassId>& seen =
          to_default ? default_loaded : pending.back().loaded_classes;
      if (!seen.insert(cls).second) {
        return LineError(line_no,
                         "duplicate load for class '" + tok[1] + "'");
      }
      target.Set(cls, a, b, g);
    } else if (cmd == "orgs") {
      if (have_orgs) {
        return LineError(line_no, "duplicate orgs directive");
      }
      if (tok.size() < 2) return LineError(line_no, "orgs needs at least one");
      have_orgs = true;
      spec.options.orgs.clear();
      for (std::size_t i = 1; i < tok.size(); ++i) {
        Result<IndexOrg> org = ParseOrg(tok[i]);
        if (!org.ok()) return LineError(line_no, org.status().message());
        spec.options.orgs.push_back(org.value());
      }
    } else if (cmd == "matching_keys") {
      double v;
      if (tok.size() != 2 || !ParseDouble(tok[1], &v) || !(v >= 1)) {
        return LineError(line_no, "matching_keys expects a number >= 1");
      }
      spec.options.query_profile.matching_keys = v;
    } else if (cmd == "budget") {
      if (!workload_mode) {
        return LineError(line_no,
                         "budget is only valid in workload specs "
                         "(pathix_workload_advise)");
      }
      if (spec.has_budget) {
        return LineError(line_no, "duplicate budget directive");
      }
      double v;
      if (tok.size() != 2 || !ParseDouble(tok[1], &v) || !(v >= 0) ||
          v == std::numeric_limits<double>::infinity()) {
        return LineError(line_no, "budget expects one number of bytes >= 0");
      }
      spec.has_budget = true;
      spec.joint_options.storage_budget_bytes = v;
    } else {
      return LineError(line_no, "unknown directive '" + cmd + "'");
    }
  }

  if (pending.empty()) {
    return Status::InvalidArgument("spec declares no path");
  }
  PATHIX_RETURN_IF_ERROR(spec.schema.Validate());

  for (PendingPath& p : pending) {
    Result<Path> path = Path::Create(spec.schema, p.start, p.attrs);
    if (!path.ok()) return LineError(p.line, path.status().message());
    PathWorkload workload;
    workload.path = std::move(path).value();
    workload.load = default_load;  // defaults first, then overrides
    for (const ClassId cls : p.loaded_classes) {
      workload.load.Set(cls, p.load.Get(cls));
    }
    spec.paths.push_back(std::move(workload));
  }
  return spec;
}

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("cannot open spec file '" + path + "'");
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

}  // namespace

Result<AdvisorSpec> ParseAdvisorSpec(const std::string& text) {
  Result<WorkloadSpec> parsed = ParseSpecImpl(text, /*workload_mode=*/false);
  if (!parsed.ok()) return parsed.status();
  WorkloadSpec& w = parsed.value();
  AdvisorSpec spec;
  spec.schema = std::move(w.schema);
  spec.catalog = std::move(w.catalog);
  spec.options = std::move(w.options);
  spec.load = std::move(w.paths.front().load);
  spec.path = std::move(w.paths.front().path);
  return spec;
}

Result<AdvisorSpec> ParseAdvisorSpecFile(const std::string& path) {
  Result<std::string> text = ReadFile(path);
  if (!text.ok()) return text.status();
  return ParseAdvisorSpec(text.value());
}

Result<WorkloadSpec> ParseWorkloadSpec(const std::string& text) {
  return ParseSpecImpl(text, /*workload_mode=*/true);
}

Result<WorkloadSpec> ParseWorkloadSpecFile(const std::string& path) {
  Result<std::string> text = ReadFile(path);
  if (!text.ok()) return text.status();
  return ParseWorkloadSpec(text.value());
}

}  // namespace pathix
