#pragma once

#include <string>

#include "core/advisor.h"

/// \file spec_parser.h
/// \brief Text format for advisor inputs, so the selection pipeline can be
/// driven without writing C++ (the `pathix_advise` example tool).
///
/// Line-based; '#' starts a comment. Directives:
///
///   page_size 4096            # physical parameters (optional)
///   oid_len 8
///   key_len 8
///   class Person 200000 20000 1        # name n d nin [obj_len]
///   class Bus : Vehicle 5000 2500 2    # subclass declaration
///   ref Person owns Vehicle multi      # reference attribute [multi]
///   attr Division name string          # atomic attribute (string|int)
///   path Person owns man divs name     # exactly one path
///   load Person 0.3 0.1 0.1            # alpha beta gamma
///   orgs MX MIX NIX NX PX NONE         # candidate set (optional)
///   matching_keys 1                    # range-predicate width (optional)
///
/// Classes must be declared before use; the path must come after the
/// attributes it navigates.

namespace pathix {

/// Everything the advisor needs, parsed from one spec.
struct AdvisorSpec {
  Schema schema;
  Catalog catalog;
  LoadDistribution load;
  Path path;
  AdvisorOptions options;
};

/// Parses a spec from text. Errors carry the offending line number.
Result<AdvisorSpec> ParseAdvisorSpec(const std::string& text);

/// Reads \p path and parses it.
Result<AdvisorSpec> ParseAdvisorSpecFile(const std::string& path);

}  // namespace pathix
