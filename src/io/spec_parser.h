#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "advisor/joint_optimizer.h"
#include "core/advisor.h"
#include "core/multipath.h"

/// \file spec_parser.h
/// \brief Text format for advisor inputs, so the selection pipeline can be
/// driven without writing C++ (the `pathix_advise`, `pathix_workload_advise`
/// and `pathix_online` example tools).
///
/// Line-based; '#' starts a comment. Directives:
///
///   page_size 4096            # physical parameters (optional)
///   oid_len 8
///   key_len 8
///   class Person 200000 20000 1        # name n d nin [obj_len]
///   class Bus : Vehicle 5000 2500 2    # subclass declaration
///   ref Person owns Vehicle multi      # reference attribute [multi]
///   attr Division name string          # atomic attribute (string|int)
///   path Person owns man divs name     # the query path
///   path people Person owns man divs name  # ... with an explicit name
///   load Person 0.3 0.1 0.1            # alpha beta gamma
///   orgs MX MIX NIX NX PX NONE         # candidate set (optional, once)
///   matching_keys 1                    # range-predicate width (optional)
///
/// Classes must be declared before use; a path must come after the
/// attributes it navigates. A `path` whose first token is not a declared
/// class is a *named* path (the name must not collide with a class name);
/// names identify paths in multi-path trace mixes and become the
/// SimDatabase path ids of the online subsystem.
///
/// Single-path specs (ParseAdvisorSpec) allow exactly one `path`; repeating
/// `path`, `orgs`, or `load` for the same class is an error (with the
/// offending line number) rather than a silent override.
///
/// Workload specs (ParseWorkloadSpec) extend the format to many paths:
///
///   path Person owns man divs name     # first workload path
///   load Person 0.3 0.1 0.1            #   its load
///   path Company divs name             # second workload path
///   load Company 0.1 0.1 0.1           #   its load
///   budget 16000000                    # optional storage budget in bytes
///
/// `load` lines *before* the first `path` are defaults applied to every
/// path; `load` lines after a `path` bind to that path (overriding the
/// default for that class). `budget` caps the total bytes of the distinct
/// physical indexes the joint optimizer may choose.
///
/// Trace specs (ParseTraceSpec) extend the *workload* format with a trace
/// section — the input of the online subsystem (`pathix_online`): an
/// initial population and timed operation batches with phase shifts:
///
///   populate Person 5000 200 1.0  # CLASS COUNT [DISTINCT [NIN]]
///   trace_seed 42                 # replay RNG seed (optional)
///   measure on                    # measured-vs-modeled validation replay
///   phase reporting 4000          # NAME OPS — a batch of 4000 operations
///   mix Person 0.8 0.1 0.1        # CLASS query insert delete weights
///   phase ingest 3000             # drift: the mix shifts per phase
///   mix Person 0.05 0.6 0.35
///
/// Within a phase, operations are drawn from the normalized union of its
/// `mix` lines. In a *multi-path* trace every path must be named and query
/// weights name the path they hit:
///
///   mix people Person 0.8 0.02 0.02   # PATH CLASS query insert delete
///   mix fleet  Vehicle 0.1 0 0
///
/// Query weights bind to (path, class); insert/delete weights are
/// path-agnostic (one churned object maintains every path's indexes) and
/// may be given at most once per (phase, class). Mixing ops on an
/// undeclared path, or on a class outside the named path's scope, is a
/// line-numbered parse error. `load` lines remain legal and carry the
/// statically *claimed* per-path distribution (what an offline advisor
/// would be given); the phases are the ground truth the trace actually
/// executes. `budget` carries into the online joint controller.

namespace pathix {

/// Everything the single-path advisor needs, parsed from one spec.
struct AdvisorSpec {
  Schema schema;
  Catalog catalog;
  LoadDistribution load;
  Path path;
  AdvisorOptions options;
};

/// Everything the workload advisor needs, parsed from one spec.
struct WorkloadSpec {
  Schema schema;
  Catalog catalog;
  std::vector<PathWorkload> paths;  ///< .name filled ("#<k>" when unnamed —
                                    ///< '#' starts a comment, so explicit
                                    ///< names can never collide)
  AdvisorOptions options;
  JointOptions joint_options;  ///< carries the storage budget (if any)
  bool has_budget = false;
};

/// Parses a single-path spec. Errors carry the offending line number.
Result<AdvisorSpec> ParseAdvisorSpec(const std::string& text);

/// Reads \p path and parses it as a single-path spec.
Result<AdvisorSpec> ParseAdvisorSpecFile(const std::string& path);

/// Parses a workload spec (one or more paths, optional budget).
Result<WorkloadSpec> ParseWorkloadSpec(const std::string& text);

/// Reads \p path and parses it as a workload spec.
Result<WorkloadSpec> ParseWorkloadSpecFile(const std::string& path);

/// Initial data generation targets for one class of a trace spec
/// (mirrors datagen's ClassGenSpec without pulling exec into io).
struct TracePopulate {
  ClassId cls = kInvalidClass;
  int count = 0;
  int distinct_values = 1;  ///< distinct path-attribute values
  double nin = 1.0;         ///< average values per object
};

/// One operation batch of a trace: \p ops operations drawn from the
/// normalized union of the per-path query weights and the per-class update
/// weights.
struct TracePhase {
  std::string name;
  std::uint64_t ops = 0;

  /// Query weights per path (parallel to TraceSpec::paths) per class.
  std::vector<std::map<ClassId, double>> queries;
  /// Insert/delete weights per class (path-agnostic; .query is unused).
  std::map<ClassId, OpLoad> updates;

  /// Per-path view on the same scale: queries[p] as the alpha frequencies,
  /// the updates of classes in path p's scope as beta/gamma. Parallel to
  /// TraceSpec::paths — what a per-phase joint oracle solves on.
  std::vector<LoadDistribution> mixes;

  /// The single-path view: the sole path's resolved mix. Multi-path
  /// phases (and unresolved programmatic ones) must use mixes[p] instead.
  const LoadDistribution& mix() const {
    PATHIX_DCHECK(mixes.size() == 1);
    return mixes.front();
  }

  /// Programmatic construction for single-path traces (benchmarks): sets
  /// queries/updates/mixes from one combined distribution, every class
  /// assumed in scope.
  void SetSinglePathMix(const LoadDistribution& combined);
};

/// One path of a trace spec.
struct TracePath {
  std::string id;  ///< SimDatabase path id (spec name, or "default"/"p<k>")
  Path path;
  LoadDistribution claimed_load;  ///< the spec's `load` lines, if any
};

/// Everything the online experiment needs, parsed from one trace spec.
struct TraceSpec {
  Schema schema;
  Catalog catalog;
  std::vector<TracePath> paths;
  AdvisorOptions options;
  double storage_budget_bytes = std::numeric_limits<double>::infinity();
  bool has_budget = false;
  std::uint32_t seed = 7;
  std::vector<TracePopulate> populate;
  std::vector<TracePhase> phases;
  /// `measure on`: opt into the measured-vs-modeled validation replay
  /// (online/measured_validation.h) — pathix_online prints the per-phase,
  /// per-path comparison of pager-measured page traffic against the
  /// analytic cost matrix when set.
  bool measure = false;
};

/// Parses a trace spec (one or more paths + populate/phase/mix sections).
Result<TraceSpec> ParseTraceSpec(const std::string& text);

/// Reads \p path and parses it as a trace spec.
Result<TraceSpec> ParseTraceSpecFile(const std::string& path);

}  // namespace pathix
