#pragma once

#include <limits>
#include <string>
#include <vector>

#include "advisor/joint_optimizer.h"
#include "core/advisor.h"
#include "core/multipath.h"

/// \file spec_parser.h
/// \brief Text format for advisor inputs, so the selection pipeline can be
/// driven without writing C++ (the `pathix_advise` and
/// `pathix_workload_advise` example tools).
///
/// Line-based; '#' starts a comment. Directives:
///
///   page_size 4096            # physical parameters (optional)
///   oid_len 8
///   key_len 8
///   class Person 200000 20000 1        # name n d nin [obj_len]
///   class Bus : Vehicle 5000 2500 2    # subclass declaration
///   ref Person owns Vehicle multi      # reference attribute [multi]
///   attr Division name string          # atomic attribute (string|int)
///   path Person owns man divs name     # the query path
///   load Person 0.3 0.1 0.1            # alpha beta gamma
///   orgs MX MIX NIX NX PX NONE         # candidate set (optional, once)
///   matching_keys 1                    # range-predicate width (optional)
///
/// Classes must be declared before use; a path must come after the
/// attributes it navigates.
///
/// Single-path specs (ParseAdvisorSpec) allow exactly one `path`; repeating
/// `path`, `orgs`, or `load` for the same class is an error (with the
/// offending line number) rather than a silent override.
///
/// Workload specs (ParseWorkloadSpec) extend the format to many paths:
///
///   path Person owns man divs name     # first workload path
///   load Person 0.3 0.1 0.1            #   its load
///   path Company divs name             # second workload path
///   load Company 0.1 0.1 0.1           #   its load
///   budget 16000000                    # optional storage budget in bytes
///
/// `load` lines *before* the first `path` are defaults applied to every
/// path; `load` lines after a `path` bind to that path (overriding the
/// default for that class). `budget` caps the total bytes of the distinct
/// physical indexes the joint optimizer may choose.

namespace pathix {

/// Everything the single-path advisor needs, parsed from one spec.
struct AdvisorSpec {
  Schema schema;
  Catalog catalog;
  LoadDistribution load;
  Path path;
  AdvisorOptions options;
};

/// Everything the workload advisor needs, parsed from one spec.
struct WorkloadSpec {
  Schema schema;
  Catalog catalog;
  std::vector<PathWorkload> paths;
  AdvisorOptions options;
  JointOptions joint_options;  ///< carries the storage budget (if any)
  bool has_budget = false;
};

/// Parses a single-path spec. Errors carry the offending line number.
Result<AdvisorSpec> ParseAdvisorSpec(const std::string& text);

/// Reads \p path and parses it as a single-path spec.
Result<AdvisorSpec> ParseAdvisorSpecFile(const std::string& path);

/// Parses a workload spec (one or more paths, optional budget).
Result<WorkloadSpec> ParseWorkloadSpec(const std::string& text);

/// Reads \p path and parses it as a workload spec.
Result<WorkloadSpec> ParseWorkloadSpecFile(const std::string& path);

}  // namespace pathix
