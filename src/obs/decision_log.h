#pragma once

#include <cstddef>
#include <optional>
#include <string>

#include "obs/json_writer.h"

/// \file decision_log.h
/// \brief JSONL framing for decision ledgers: one JsonWriter document per
/// record, one record per line.
///
/// The decision ledger (online/decision_record.h) is the audit trail of
/// every index-selection decision the controllers take. Its serialized form
/// is JSON Lines — each record a self-contained JSON object on its own
/// line — because the ledger is appended to as the run progresses and
/// consumers (pathix_explain, scripts/obs_smoke.py) stream it line by line
/// without holding the whole document. This class owns only the framing:
/// the schema of what goes *into* a record lives with the record types.

namespace pathix::obs {

/// Version stamp every ledger's meta record carries; consumers reject
/// ledgers from a different major schema (see pathix_explain).
inline constexpr int kDecisionLedgerSchemaVersion = 1;

/// \brief Accumulates JSONL records, each written through its own
/// JsonWriter.
///
/// Usage:
///   DecisionLog log;
///   JsonWriter& w = log.BeginRecord();
///   w.BeginObject().Key("type").Value("decision")...EndObject();
///   log.EndRecord();
///   file << log.str();
class DecisionLog {
 public:
  /// Opens a new record. DCHECKs that no record is already open.
  JsonWriter& BeginRecord() {
    PATHIX_DCHECK(!current_.has_value());
    current_.emplace();
    return *current_;
  }

  /// Closes the open record: its (balanced) document becomes one line of
  /// the ledger.
  void EndRecord() {
    PATHIX_DCHECK(current_.has_value());
    out_ += current_->str();
    out_.push_back('\n');
    current_.reset();
    ++records_;
  }

  /// Every completed record, one per '\n'-terminated line.
  const std::string& str() const {
    PATHIX_DCHECK(!current_.has_value());
    return out_;
  }

  std::size_t records() const { return records_; }

 private:
  std::optional<JsonWriter> current_;
  std::string out_;
  std::size_t records_ = 0;
};

}  // namespace pathix::obs
