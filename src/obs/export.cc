#include "obs/export.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <string_view>

#include "obs/json_writer.h"
#include "obs/metrics.h"

namespace pathix::obs {

namespace {

bool IsNameChar(char c, bool first) {
  const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z');
  const bool digit = (c >= '0' && c <= '9');
  return alpha || c == '_' || c == ':' || (digit && !first);
}

std::string SanitizeName(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    out.push_back(IsNameChar(c, out.empty()) ? c : '_');
  }
  if (out.empty()) out.push_back('_');
  return out;
}

std::string SanitizeLabelName(std::string_view name) {
  std::string out = SanitizeName(name);
  for (char& c : out) {
    if (c == ':') c = '_';
  }
  return out;
}

/// Prometheus label-value escaping: backslash, double quote, newline.
void AppendLabelValue(std::string* out, std::string_view value) {
  for (const char c : value) {
    switch (c) {
      case '\\':
        *out += "\\\\";
        break;
      case '"':
        *out += "\\\"";
        break;
      case '\n':
        *out += "\\n";
        break;
      default:
        out->push_back(c);
    }
  }
}

void AppendLabels(std::string* out, const MetricLabels& labels,
                  const char* extra_key = nullptr,
                  const std::string& extra_value = {}) {
  if (labels.empty() && extra_key == nullptr) return;
  out->push_back('{');
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out->push_back(',');
    first = false;
    *out += SanitizeLabelName(key);
    *out += "=\"";
    AppendLabelValue(out, value);
    out->push_back('"');
  }
  if (extra_key != nullptr) {
    if (!first) out->push_back(',');
    *out += extra_key;
    *out += "=\"";
    AppendLabelValue(out, extra_value);
    out->push_back('"');
  }
  out->push_back('}');
}

/// Counter/gauge/sum values: integers print as integers, the rest with
/// enough digits to round-trip.
void AppendNumber(std::string* out, double v) {
  char buf[64];
  if (!std::isfinite(v)) {
    std::snprintf(buf, sizeof buf, "%s",
                  std::isnan(v) ? "NaN" : (v > 0 ? "+Inf" : "-Inf"));
  } else if (v == std::floor(v) && std::abs(v) < 9.007199254740992e15) {
    std::snprintf(buf, sizeof buf, "%" PRId64, static_cast<std::int64_t>(v));
  } else {
    std::snprintf(buf, sizeof buf, "%.17g", v);
  }
  *out += buf;
}

std::string FormatBound(double bound) {
  std::string out;
  AppendNumber(&out, bound);
  return out;
}

}  // namespace

std::string ToPrometheusText(const MetricsSnapshot& snapshot) {
  std::string out;
  std::string last_family;
  for (const MetricSample& s : snapshot.samples) {
    const std::string family = SanitizeName(s.name);
    if (family != last_family) {
      out += "# TYPE ";
      out += family;
      out.push_back(' ');
      out += ToString(s.type);
      out.push_back('\n');
      last_family = family;
    }
    if (s.type != MetricType::kHistogram) {
      out += family;
      AppendLabels(&out, s.labels);
      out.push_back(' ');
      AppendNumber(&out, s.value);
      out.push_back('\n');
      continue;
    }
    const HistogramData& h = s.histogram;
    // Cumulative buckets; empty buckets are elided (valid exposition — the
    // cumulative count at any le is unchanged) except the mandatory +Inf.
    std::uint64_t cumulative = 0;
    for (int b = 0; b < HistogramBuckets::kBucketCount; ++b) {
      const std::uint64_t in_bucket =
          h.buckets.empty() ? 0 : h.buckets[static_cast<std::size_t>(b)];
      if (in_bucket == 0) continue;
      cumulative += in_bucket;
      if (b == HistogramBuckets::kBucketCount - 1) break;  // +Inf below
      out += family;
      out += "_bucket";
      AppendLabels(&out, s.labels, "le",
                   FormatBound(HistogramBuckets::UpperBound(b)));
      out.push_back(' ');
      AppendNumber(&out, static_cast<double>(cumulative));
      out.push_back('\n');
    }
    out += family;
    out += "_bucket";
    AppendLabels(&out, s.labels, "le", "+Inf");
    out.push_back(' ');
    AppendNumber(&out, static_cast<double>(h.count));
    out.push_back('\n');
    out += family;
    out += "_sum";
    AppendLabels(&out, s.labels);
    out.push_back(' ');
    AppendNumber(&out, h.sum);
    out.push_back('\n');
    out += family;
    out += "_count";
    AppendLabels(&out, s.labels);
    out.push_back(' ');
    AppendNumber(&out, static_cast<double>(h.count));
    out.push_back('\n');
  }
  return out;
}

void WriteMetricsJson(JsonWriter* w, const MetricsSnapshot& snapshot) {
  w->BeginArray();
  for (const MetricSample& s : snapshot.samples) {
    w->BeginObject();
    w->Key("name").Value(s.name);
    w->Key("type").Value(ToString(s.type));
    if (!s.labels.empty()) {
      w->Key("labels").BeginObject();
      for (const auto& [key, value] : s.labels) {
        w->Key(key).Value(value);
      }
      w->EndObject();
    }
    if (s.type != MetricType::kHistogram) {
      w->Key("value").Value(s.value);
    } else {
      const HistogramData& h = s.histogram;
      w->Key("count").Value(h.count);
      w->Key("sum").Value(h.sum);
      if (h.count > 0) {
        w->Key("min").Value(h.min);
        w->Key("max").Value(h.max);
        w->Key("p50").Value(h.Percentile(0.50));
        w->Key("p90").Value(h.Percentile(0.90));
        w->Key("p99").Value(h.Percentile(0.99));
      }
      w->Key("buckets").BeginArray();
      for (int b = 0; b < HistogramBuckets::kBucketCount; ++b) {
        const std::uint64_t in_bucket =
            h.buckets.empty() ? 0 : h.buckets[static_cast<std::size_t>(b)];
        if (in_bucket == 0) continue;
        w->BeginObject();
        w->Key("le").Value(HistogramBuckets::UpperBound(b));
        w->Key("n").Value(in_bucket);
        w->EndObject();
      }
      w->EndArray();
    }
    w->EndObject();
  }
  w->EndArray();
}

}  // namespace pathix::obs
