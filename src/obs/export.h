#pragma once

#include <string>

/// \file export.h
/// \brief Exporters over MetricsSnapshot: Prometheus text exposition format
/// and a structured JSON snapshot.
///
/// Both exporters consume MetricsSnapshot (not a live registry), so the
/// same code path serves a running process and a snapshot captured earlier
/// (ExperimentReport keeps the online run's snapshot; pathix_online exports
/// it after the replays finish).
///
/// Naming scheme (see README "Observability"): pathix_<component>_<what>,
/// with Prometheus conventions — monotone series end in _total, histograms
/// expand to _bucket{le=...}/_sum/_count, labels identify the series within
/// a family (path="people", kind="query", io="read", ...).

namespace pathix::obs {

class JsonWriter;
struct MetricsSnapshot;

/// Renders \p snapshot in the Prometheus text exposition format (version
/// 0.0.4): one "# TYPE" line per family, then each series. Metric and label
/// names are sanitized to [a-zA-Z0-9_:] / [a-zA-Z0-9_]; label values are
/// escaped per the format (backslash, quote, newline). Histograms emit
/// cumulative _bucket lines for non-empty buckets plus the mandatory
/// le="+Inf" bucket, and _sum/_count.
std::string ToPrometheusText(const MetricsSnapshot& snapshot);

/// Writes \p snapshot as a JSON array of samples on \p w: each entry has
/// name/labels/type plus value (counter, gauge) or count/sum/min/max/
/// p50/p90/p99 and the non-empty buckets (histogram).
void WriteMetricsJson(JsonWriter* w, const MetricsSnapshot& snapshot);

}  // namespace pathix::obs
