#include "obs/json_reader.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace pathix::obs {

const JsonValue* JsonValue::Find(std::string_view key) const {
  for (const auto& [name, value] : members_) {
    if (name == key) return &value;
  }
  return nullptr;
}

double JsonValue::NumberAt(std::string_view key, double fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_number() ? v->number_ : fallback;
}

bool JsonValue::BoolAt(std::string_view key, bool fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_bool() ? v->bool_ : fallback;
}

std::string JsonValue::StringAt(std::string_view key,
                                std::string_view fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_string() ? v->string_ : std::string(fallback);
}

JsonValue JsonValue::MakeBool(bool v) {
  JsonValue j;
  j.type_ = Type::kBool;
  j.bool_ = v;
  return j;
}

JsonValue JsonValue::MakeNumber(double v) {
  JsonValue j;
  j.type_ = Type::kNumber;
  j.number_ = v;
  return j;
}

JsonValue JsonValue::MakeString(std::string v) {
  JsonValue j;
  j.type_ = Type::kString;
  j.string_ = std::move(v);
  return j;
}

JsonValue JsonValue::MakeArray(std::vector<JsonValue> items) {
  JsonValue j;
  j.type_ = Type::kArray;
  j.array_ = std::move(items);
  return j;
}

JsonValue JsonValue::MakeObject(
    std::vector<std::pair<std::string, JsonValue>> members) {
  JsonValue j;
  j.type_ = Type::kObject;
  j.members_ = std::move(members);
  return j;
}

namespace {

/// Recursive-descent parser over one contiguous buffer. Depth-bounded so a
/// hostile input cannot blow the C++ stack.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    JsonValue root;
    PATHIX_RETURN_IF_ERROR(ParseValue(&root, 0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return root;
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Error(const std::string& what) const {
    return Status::InvalidArgument("JSON parse error at byte " +
                                   std::to_string(pos_) + ": " + what);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ConsumeLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) {
      return Error("expected '" + std::string(literal) + "'");
    }
    pos_ += literal.size();
    return Status::OK();
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Error("nesting deeper than 64 levels");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"': {
        std::string s;
        PATHIX_RETURN_IF_ERROR(ParseString(&s));
        *out = JsonValue::MakeString(std::move(s));
        return Status::OK();
      }
      case 't':
        PATHIX_RETURN_IF_ERROR(ConsumeLiteral("true"));
        *out = JsonValue::MakeBool(true);
        return Status::OK();
      case 'f':
        PATHIX_RETURN_IF_ERROR(ConsumeLiteral("false"));
        *out = JsonValue::MakeBool(false);
        return Status::OK();
      case 'n':
        PATHIX_RETURN_IF_ERROR(ConsumeLiteral("null"));
        *out = JsonValue::MakeNull();
        return Status::OK();
      default:
        return ParseNumber(out);
    }
  }

  Status ParseObject(JsonValue* out, int depth) {
    ++pos_;  // '{'
    std::vector<std::pair<std::string, JsonValue>> members;
    SkipWhitespace();
    if (Consume('}')) {
      *out = JsonValue::MakeObject(std::move(members));
      return Status::OK();
    }
    while (true) {
      SkipWhitespace();
      std::string key;
      PATHIX_RETURN_IF_ERROR(ParseString(&key));
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after object key");
      JsonValue value;
      PATHIX_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      members.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) break;
      return Error("expected ',' or '}' in object");
    }
    *out = JsonValue::MakeObject(std::move(members));
    return Status::OK();
  }

  Status ParseArray(JsonValue* out, int depth) {
    ++pos_;  // '['
    std::vector<JsonValue> items;
    SkipWhitespace();
    if (Consume(']')) {
      *out = JsonValue::MakeArray(std::move(items));
      return Status::OK();
    }
    while (true) {
      JsonValue value;
      PATHIX_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      items.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) break;
      return Error("expected ',' or ']' in array");
    }
    *out = JsonValue::MakeArray(std::move(items));
    return Status::OK();
  }

  Status ParseString(std::string* out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return Error("expected string");
    }
    ++pos_;
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return Status::OK();
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("raw control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        ++pos_;
        continue;
      }
      if (pos_ + 1 >= text_.size()) return Error("truncated escape");
      const char esc = text_[pos_ + 1];
      pos_ += 2;
      switch (esc) {
        case '"':
          out->push_back('"');
          break;
        case '\\':
          out->push_back('\\');
          break;
        case '/':
          out->push_back('/');
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_ + static_cast<std::size_t>(i)];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Error("bad hex digit in \\u escape");
            }
          }
          pos_ += 4;
          // UTF-8 encode. The writer only emits \u00XX (control bytes),
          // but accept the full BMP for robustness; surrogate pairs are
          // beyond what any pathix emitter produces and are rejected.
          if (code >= 0xD800 && code <= 0xDFFF) {
            return Error("surrogate \\u escapes are not supported");
          }
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Error("unknown escape");
      }
    }
    return Error("unterminated string");
  }

  Status ParseNumber(JsonValue* out) {
    const std::size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           ((text_[pos_] >= '0' && text_[pos_] <= '9') || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected a value");
    // strtod needs a terminated buffer; the slice is short, copy it.
    const std::string token(text_.substr(start, pos_ - start));
    errno = 0;
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || errno == ERANGE) {
      pos_ = start;
      return Error("malformed number '" + token + "'");
    }
    *out = JsonValue::MakeNumber(value);
    return Status::OK();
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).Parse();
}

}  // namespace pathix::obs
