#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

/// \file json_reader.h
/// \brief Minimal JSON parser: the reading counterpart of json_writer.h.
///
/// Everything the project emits goes through JsonWriter; pathix_explain
/// (and tests round-tripping ledgers) must read it back without an external
/// dependency. The parser builds a plain DOM — null/bool/number/string/
/// array/object, object members in document order — and accepts exactly
/// the JSON the writer produces (full RFC 8259 syntax; numbers parsed as
/// double, which round-trips the writer's %.17g rendering bit-exactly).
/// It never throws; malformed input returns InvalidArgument with the byte
/// offset of the problem.

namespace pathix::obs {

/// \brief One parsed JSON value.
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool AsBool(bool fallback = false) const {
    return is_bool() ? bool_ : fallback;
  }
  double AsNumber(double fallback = 0) const {
    return is_number() ? number_ : fallback;
  }
  const std::string& AsString() const { return string_; }

  const std::vector<JsonValue>& array() const { return array_; }
  /// Members in document order (the writer emits deterministic order, so
  /// consumers may rely on it for byte-stable rendering).
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }

  /// The member named \p key, or nullptr (objects only; first match).
  const JsonValue* Find(std::string_view key) const;

  /// Convenience lookups with fallbacks, for schema-tolerant readers.
  double NumberAt(std::string_view key, double fallback = 0) const;
  bool BoolAt(std::string_view key, bool fallback = false) const;
  /// The string member \p key, or \p fallback when absent / not a string.
  std::string StringAt(std::string_view key,
                       std::string_view fallback = "") const;

  /// True when the object has a member \p key (of any type, null included).
  bool Has(std::string_view key) const { return Find(key) != nullptr; }

  static JsonValue MakeNull() { return JsonValue(); }
  static JsonValue MakeBool(bool v);
  static JsonValue MakeNumber(double v);
  static JsonValue MakeString(std::string v);
  static JsonValue MakeArray(std::vector<JsonValue> items);
  static JsonValue MakeObject(
      std::vector<std::pair<std::string, JsonValue>> members);

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Parses \p text as exactly one JSON document (leading/trailing whitespace
/// allowed, trailing garbage is an error — JSONL callers split on newlines
/// first).
Result<JsonValue> ParseJson(std::string_view text);

}  // namespace pathix::obs
