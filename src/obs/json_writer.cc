#include "obs/json_writer.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>

namespace pathix::obs {

JsonWriter& JsonWriter::Value(double v) {
  OpenValue();
  if (!std::isfinite(v)) {
    out_ += "null";
    return *this;
  }
  // Integral doubles (counters, page tallies) print as plain integers —
  // "%.17g" would render 3000000 as 3e+06, which is valid JSON but hostile
  // to grep and diff.
  if (v == std::floor(v) && std::abs(v) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%" PRId64, static_cast<std::int64_t>(v));
    out_ += buf;
    return *this;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Value(std::uint64_t v) {
  OpenValue();
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Value(std::int64_t v) {
  OpenValue();
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRId64, v);
  out_ += buf;
  return *this;
}

void JsonWriter::AppendEscaped(std::string* out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\b':
        *out += "\\b";
        break;
      case '\f':
        *out += "\\f";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
}

}  // namespace pathix::obs
