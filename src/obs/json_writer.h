#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

/// \file json_writer.h
/// \brief Tiny streaming JSON writer: correct escaping, nested objects and
/// arrays, automatic commas — and nothing else.
///
/// Every machine-readable artifact the project emits goes through this one
/// class: the BENCH_*.json one-liners (bench/bench_json.h), the metrics
/// snapshot and event-log exports (obs/export.h, online/event_json.h) and
/// the chrome://tracing trace files (obs/trace.h). Before it existed each
/// emitter hand-assembled strings with ad-hoc (and incomplete) escaping;
/// centralizing the quoting is the point, not expressiveness.
///
/// Usage:
///   JsonWriter w;
///   w.BeginObject().Key("name").Value("x").Key("xs").BeginArray()
///       .Value(1.0).Value(2.0).EndArray().EndObject();
///   file << w.str();
///
/// The writer DCHECKs structural misuse (value without key inside an
/// object, unbalanced End*) in debug builds; it never throws.

namespace pathix::obs {

class JsonWriter {
 public:
  JsonWriter& BeginObject() {
    OpenValue();
    out_.push_back('{');
    stack_.push_back(Frame{/*is_object=*/true, /*count=*/0});
    return *this;
  }
  JsonWriter& EndObject() {
    PATHIX_DCHECK(!stack_.empty() && stack_.back().is_object && !after_key_);
    out_.push_back('}');
    stack_.pop_back();
    return *this;
  }
  JsonWriter& BeginArray() {
    OpenValue();
    out_.push_back('[');
    stack_.push_back(Frame{/*is_object=*/false, /*count=*/0});
    return *this;
  }
  JsonWriter& EndArray() {
    PATHIX_DCHECK(!stack_.empty() && !stack_.back().is_object);
    out_.push_back(']');
    stack_.pop_back();
    return *this;
  }

  /// Writes the member key of the next value. Only legal inside an object.
  JsonWriter& Key(std::string_view key) {
    PATHIX_DCHECK(!stack_.empty() && stack_.back().is_object && !after_key_);
    Separate();
    AppendQuoted(key);
    out_.push_back(':');
    after_key_ = true;
    return *this;
  }

  JsonWriter& Value(std::string_view v) {
    OpenValue();
    AppendQuoted(v);
    return *this;
  }
  JsonWriter& Value(const char* v) { return Value(std::string_view(v)); }
  /// Doubles: shortest round-trip-safe rendering; non-finite becomes null
  /// (JSON has no inf/nan). Integral values print without an exponent so
  /// counters stay greppable.
  JsonWriter& Value(double v);
  JsonWriter& Value(std::uint64_t v);
  JsonWriter& Value(std::int64_t v);
  JsonWriter& Value(int v) { return Value(static_cast<std::int64_t>(v)); }
  JsonWriter& Value(bool v) {
    OpenValue();
    out_ += v ? "true" : "false";
    return *this;
  }
  JsonWriter& Null() {
    OpenValue();
    out_ += "null";
    return *this;
  }

  /// The document so far. Complete (balanced) once every Begin* has its
  /// End* — DCHECKed here.
  const std::string& str() const {
    PATHIX_DCHECK(stack_.empty());
    return out_;
  }

  /// Appends \p s to \p out with full JSON escaping (quote, backslash,
  /// \n \r \t \b \f shortcuts, \u00XX for remaining control characters).
  /// Non-ASCII bytes pass through untouched (UTF-8 stays UTF-8).
  static void AppendEscaped(std::string* out, std::string_view s);

 private:
  struct Frame {
    bool is_object;
    int count;
  };

  /// Comma bookkeeping before a key or a value at the current level.
  void Separate() {
    if (!stack_.empty() && stack_.back().count++ > 0) out_.push_back(',');
  }
  /// Position check + separation for a value: after a key inside an
  /// object, or a (comma-separated) element of an array / the root.
  void OpenValue() {
    if (after_key_) {
      after_key_ = false;
      return;  // Key() already separated
    }
    PATHIX_DCHECK(stack_.empty() || !stack_.back().is_object);
    Separate();
  }
  void AppendQuoted(std::string_view s) {
    out_.push_back('"');
    AppendEscaped(&out_, s);
    out_.push_back('"');
  }

  std::string out_;
  std::vector<Frame> stack_;
  bool after_key_ = false;
};

}  // namespace pathix::obs
