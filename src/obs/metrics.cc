#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/status.h"

namespace pathix::obs {

int HistogramBuckets::BucketFor(double value) {
  if (!(value >= 1)) return 0;  // < 1, zero, negative, NaN
  int exp = 0;
  const double mantissa = std::frexp(value, &exp);  // value = m * 2^exp
  const int octave = exp - 1;  // value in [2^octave, 2^(octave+1))
  if (octave >= kOctaves) return kBucketCount - 1;  // saturation
  // mantissa*2 is in [1, 2); the sub-bucket index is exact for boundary
  // values because kSubBuckets is a power of two (binary fractions).
  const int sub = static_cast<int>((mantissa * 2 - 1) * kSubBuckets);
  return 1 + octave * kSubBuckets + std::min(sub, kSubBuckets - 1);
}

double HistogramBuckets::LowerBound(int index) {
  PATHIX_DCHECK(index >= 0 && index < kBucketCount);
  if (index == 0) return 0;
  if (index == kBucketCount - 1) return std::ldexp(1.0, kOctaves);
  const int octave = (index - 1) / kSubBuckets;
  const int sub = (index - 1) % kSubBuckets;
  return std::ldexp(1.0 + static_cast<double>(sub) / kSubBuckets, octave);
}

double HistogramBuckets::UpperBound(int index) {
  PATHIX_DCHECK(index >= 0 && index < kBucketCount);
  if (index == 0) return 1;
  if (index == kBucketCount - 1) {
    return std::numeric_limits<double>::infinity();
  }
  return LowerBound(index + 1);
}

double HistogramData::Percentile(double q) const {
  if (count == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(count))));
  std::uint64_t seen = 0;
  for (int b = 0; b < HistogramBuckets::kBucketCount; ++b) {
    seen += buckets[static_cast<std::size_t>(b)];
    if (seen >= rank) {
      if (b == HistogramBuckets::kBucketCount - 1) return max;
      // Representative: the bucket's upper bound, capped at the exact max
      // (so p100 == max and the bracket lower(b) <= r <= upper(b) holds —
      // the max is never below the rank's bucket).
      return std::min(HistogramBuckets::UpperBound(b), max);
    }
  }
  return max;  // unreachable for consistent data
}

HistogramData HistogramData::DeltaSince(const HistogramData& earlier) const {
  PATHIX_DCHECK(count >= earlier.count &&
                "DeltaSince wants an earlier snapshot of the same histogram");
  HistogramData delta;
  if (count <= earlier.count) return delta;  // empty window
  delta.count = count - earlier.count;
  delta.sum = sum - earlier.sum;
  delta.buckets.assign(HistogramBuckets::kBucketCount, 0);
  int first = -1;
  int last = -1;
  for (int b = 0; b < HistogramBuckets::kBucketCount; ++b) {
    const auto i = static_cast<std::size_t>(b);
    const std::uint64_t before =
        i < earlier.buckets.size() ? earlier.buckets[i] : 0;
    const std::uint64_t now = i < buckets.size() ? buckets[i] : 0;
    PATHIX_DCHECK(now >= before);
    delta.buckets[i] = now - before;
    if (delta.buckets[i] > 0) {
      if (first < 0) first = b;
      last = b;
    }
  }
  // The window's exact extremes are gone; bracket them with the occupied
  // buckets' bounds. The all-time max still caps the upper end (it is
  // >= every windowed observation), which keeps Percentile()'s "never
  // above the exact max" property intact for the delta.
  delta.min = HistogramBuckets::LowerBound(first);
  delta.max = std::min(max, HistogramBuckets::UpperBound(last));
  return delta;
}

void HistogramData::Observe(double value) {
  const int bucket = HistogramBuckets::BucketFor(value);
  if (buckets.empty()) {
    buckets.assign(HistogramBuckets::kBucketCount, 0);
  }
  ++buckets[static_cast<std::size_t>(bucket)];
  ++count;
  sum += value;
  min = std::min(min, value);
  max = std::max(max, value);
}

void HistogramData::MergeFrom(const HistogramData& other) {
  if (other.count == 0) return;
  if (buckets.empty()) {
    buckets.assign(HistogramBuckets::kBucketCount, 0);
  }
  PATHIX_DCHECK(other.buckets.size() == buckets.size());
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    buckets[i] += other.buckets[i];
  }
  count += other.count;
  sum += other.sum;
  min = std::min(min, other.min);
  max = std::max(max, other.max);
}

void Histogram::Observe(double value) {
  MutexLock lock(&mu_);
  data_.Observe(value);
}

const char* ToString(MetricType type) {
  switch (type) {
    case MetricType::kCounter:
      return "counter";
    case MetricType::kGauge:
      return "gauge";
    case MetricType::kHistogram:
      return "histogram";
  }
  return "unknown";
}

const MetricSample* MetricsSnapshot::Find(std::string_view name,
                                          MetricLabels labels) const {
  std::sort(labels.begin(), labels.end());
  for (const MetricSample& s : samples) {
    if (s.name == name && s.labels == labels) return &s;
  }
  return nullptr;
}

double MetricsSnapshot::Value(std::string_view name,
                              MetricLabels labels) const {
  const MetricSample* s = Find(name, std::move(labels));
  return s == nullptr ? 0 : s->value;
}

double MetricsSnapshot::SumOf(std::string_view name) const {
  double total = 0;
  for (const MetricSample& s : samples) {
    if (s.name == name && s.type != MetricType::kHistogram) total += s.value;
  }
  return total;
}

MetricsSnapshot MetricsSnapshot::DeltaSince(
    const MetricsSnapshot& earlier) const {
  MetricsSnapshot delta;
  delta.samples.reserve(samples.size());
  for (const MetricSample& now : samples) {
    const MetricSample* before = earlier.Find(now.name, now.labels);
    MetricSample d = now;
    if (before != nullptr) {
      switch (now.type) {
        case MetricType::kCounter:
          d.value = now.value - before->value;
          break;
        case MetricType::kGauge:
          break;  // point-in-time: the current value *is* the window's view
        case MetricType::kHistogram:
          d.histogram = now.histogram.DeltaSince(before->histogram);
          break;
      }
    }
    delta.samples.push_back(std::move(d));
  }
  return delta;
}

MetricsRegistry::Series& MetricsRegistry::SeriesAt(std::string_view name,
                                                   MetricLabels labels,
                                                   MetricType type) {
  std::sort(labels.begin(), labels.end());
  SeriesKey key{std::string(name), std::move(labels)};
  auto it = series_.find(key);
  if (it == series_.end()) {
    Series series;
    series.type = type;
    switch (type) {
      case MetricType::kCounter:
        series.counter = std::make_unique<Counter>();
        break;
      case MetricType::kGauge:
        series.gauge = std::make_unique<Gauge>();
        break;
      case MetricType::kHistogram:
        series.histogram = std::make_unique<Histogram>();
        break;
    }
    it = series_.emplace(std::move(key), std::move(series)).first;
  }
  PATHIX_DCHECK(it->second.type == type &&
                "a metric name keeps one type for the registry's lifetime");
  return it->second;
}

Counter& MetricsRegistry::CounterAt(std::string_view name,
                                    MetricLabels labels) {
  MutexLock lock(&mu_);
  return *SeriesAt(name, std::move(labels), MetricType::kCounter).counter;
}

Gauge& MetricsRegistry::GaugeAt(std::string_view name, MetricLabels labels) {
  MutexLock lock(&mu_);
  return *SeriesAt(name, std::move(labels), MetricType::kGauge).gauge;
}

Histogram& MetricsRegistry::HistogramAt(std::string_view name,
                                        MetricLabels labels) {
  MutexLock lock(&mu_);
  return *SeriesAt(name, std::move(labels), MetricType::kHistogram).histogram;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  // Two phases so metric mutexes are only taken after the registry mutex is
  // released (both are leaves; neither is ever held while acquiring the
  // other).
  std::vector<std::pair<const SeriesKey*, const Series*>> entries;
  {
    ReaderMutexLock lock(&mu_);
    entries.reserve(series_.size());
    for (const auto& [key, series] : series_) {
      entries.emplace_back(&key, &series);
    }
  }
  // The map's node addresses are stable and entries are never erased, so
  // the pointers stay valid after the lock is dropped (a concurrent insert
  // may add series this snapshot misses — snapshots are point-in-time).
  MetricsSnapshot snapshot;
  snapshot.samples.reserve(entries.size());
  for (const auto& [key, series] : entries) {
    MetricSample sample;
    sample.name = key->name;
    sample.labels = key->labels;
    sample.type = series->type;
    switch (series->type) {
      case MetricType::kCounter:
        sample.value = series->counter->Value();
        break;
      case MetricType::kGauge:
        sample.value = series->gauge->Value();
        break;
      case MetricType::kHistogram:
        sample.histogram = series->histogram->Snapshot();
        break;
    }
    snapshot.samples.push_back(std::move(sample));
  }
  return snapshot;
}

MetricsRegistry& GlobalMetrics() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

}  // namespace pathix::obs
