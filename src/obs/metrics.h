#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/mutex.h"

/// \file metrics.h
/// \brief The metrics registry: named counters, gauges and log-bucketed
/// histograms — the reporting spine of the online reconfiguration stack.
///
/// A MetricsRegistry is a map from (name, label set) to a metric object
/// with a stable address; hot paths resolve their handles once and then
/// update through the pointer (one leaf mutex per metric, no registry
/// lookup per operation). Every shared-state rule of common/mutex.h
/// applies: metric mutexes and the registry mutex are *leaves* of the lock
/// hierarchy — metric methods never call out — so instrumentation may be
/// dropped into any locked region of the engine.
///
/// Instances compose: SimDatabase owns one registry per database (so two
/// replays of the same trace in one process — online vs oracle vs static —
/// report disjoint counters and the acceptance harness can compare them
/// exactly), while GlobalMetrics() is the process-wide default used by
/// standalone emitters (bench_json.h). Exporters (obs/export.h) work on
/// MetricsSnapshot, so live registries and saved snapshots export the same.
///
/// Histograms are log-bucketed (HDR-style: power-of-two octaves, each
/// split into kSubBuckets linear sub-buckets, 12.5% relative width), with
/// exact count/sum/min/max and percentile extraction that brackets the true
/// order statistic within one bucket: Percentile(q) returns a value r with
/// lower(b) <= r and true_quantile <= r <= upper(b) for the bucket b
/// containing the rank — and the exact max for the saturation bucket.

namespace pathix::obs {

/// Sorted (key, value) pairs identifying one series of a metric family.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

/// \brief Monotonically-increasing value.
class Counter {
 public:
  /// Adds \p delta (negative deltas are ignored — counters only go up).
  void Increment(double delta = 1.0) EXCLUDES(mu_) {
    if (delta <= 0) return;
    MutexLock lock(&mu_);
    value_ += delta;
  }

  /// Overwrites the value from an external monotone source (the pager's
  /// tallies, the registry's build counters): mirroring, not counting.
  /// The caller owns the monotonicity argument.
  void MirrorTo(double value) EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    value_ = value;
  }

  double Value() const EXCLUDES(mu_) {
    ReaderMutexLock lock(&mu_);
    return value_;
  }

 private:
  mutable Mutex mu_;
  double value_ GUARDED_BY(mu_) = 0;
};

/// \brief Point-in-time value that may move in both directions.
class Gauge {
 public:
  void Set(double value) EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    value_ = value;
  }
  void Add(double delta) EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    value_ += delta;
  }
  double Value() const EXCLUDES(mu_) {
    ReaderMutexLock lock(&mu_);
    return value_;
  }

 private:
  mutable Mutex mu_;
  double value_ GUARDED_BY(mu_) = 0;
};

/// Bucket layout shared by Histogram and HistogramData. Bucket 0 holds
/// everything below 1 (latencies under a microsecond, zero-page ops);
/// buckets 1..kOctaves*kSubBuckets are lower-inclusive log buckets
/// [2^o * (1 + s/kSubBuckets), next boundary); the last bucket saturates
/// (values >= 2^kOctaves). Boundary values are exact powers-of-two sums, so
/// bucket assignment has no floating-point boundary ambiguity.
struct HistogramBuckets {
  static constexpr int kSubBuckets = 8;  ///< power of two (exact sub-index)
  static constexpr int kOctaves = 40;    ///< covers up to ~10^12
  static constexpr int kBucketCount = 1 + kOctaves * kSubBuckets + 1;

  static int BucketFor(double value);
  /// Lower bound of bucket \p index (inclusive). 0 for bucket 0.
  static double LowerBound(int index);
  /// Upper bound of bucket \p index (exclusive); +inf for the saturation
  /// bucket.
  static double UpperBound(int index);
};

/// Everything a histogram knows, copied out under one lock — the form the
/// exporters and tests consume.
struct HistogramData {
  std::vector<std::uint64_t> buckets;  ///< kBucketCount entries (or empty)
  std::uint64_t count = 0;
  double sum = 0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();

  /// The value at quantile \p q in [0, 1]: rank ceil(q * count) (clamped to
  /// [1, count]), bracketed within the rank's bucket, exact for the
  /// saturation bucket and never above the exact max. 0 when empty.
  double Percentile(double q) const;

  /// Records \p value into this plain-data histogram — no lock, no atomics:
  /// the serving engine's per-thread tally form. Each worker observes into
  /// its own HistogramData and the driver folds them into the shared
  /// Histogram once, via Histogram::MergeFrom.
  void Observe(double value);

  /// Folds \p other's observations into this one (bucket-wise add,
  /// count/sum add, min/max widen). Either side may be empty.
  void MergeFrom(const HistogramData& other);

  /// The observations made after \p earlier was taken: bucket-wise and
  /// count/sum subtraction (\p earlier must be an earlier snapshot of the
  /// *same* histogram, DCHECKed via the count). min/max degrade to bucket
  /// bounds — the exact extremes of just the window are not recoverable —
  /// except that max never exceeds the all-time exact max. An empty delta
  /// is a default HistogramData (count 0, empty buckets).
  HistogramData DeltaSince(const HistogramData& earlier) const;
};

/// \brief Log-bucketed distribution of latencies or sizes.
class Histogram {
 public:
  void Observe(double value) EXCLUDES(mu_);

  /// Folds a per-thread HistogramData tally into this histogram under one
  /// lock acquisition (vs one per Observe).
  void MergeFrom(const HistogramData& tally) EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    data_.MergeFrom(tally);
  }

  std::uint64_t Count() const EXCLUDES(mu_) {
    ReaderMutexLock lock(&mu_);
    return data_.count;
  }
  double Sum() const EXCLUDES(mu_) {
    ReaderMutexLock lock(&mu_);
    return data_.sum;
  }
  /// Exact largest observed value (-inf when empty).
  double Max() const EXCLUDES(mu_) {
    ReaderMutexLock lock(&mu_);
    return data_.max;
  }
  /// See HistogramData::Percentile.
  double Percentile(double q) const EXCLUDES(mu_) {
    ReaderMutexLock lock(&mu_);
    return data_.Percentile(q);
  }

  HistogramData Snapshot() const EXCLUDES(mu_) {
    ReaderMutexLock lock(&mu_);
    return data_;
  }

 private:
  mutable Mutex mu_;
  HistogramData data_ GUARDED_BY(mu_);
};

enum class MetricType { kCounter, kGauge, kHistogram };

const char* ToString(MetricType type);

/// One series of one metric, copied out of a registry.
struct MetricSample {
  std::string name;
  MetricLabels labels;
  MetricType type = MetricType::kCounter;
  double value = 0;         ///< counter / gauge
  HistogramData histogram;  ///< histogram only
};

/// A registry's full state at one instant, sorted by (name, labels).
struct MetricsSnapshot {
  std::vector<MetricSample> samples;

  /// The sample of (\p name, \p labels), or nullptr. \p labels need not be
  /// pre-sorted.
  const MetricSample* Find(std::string_view name, MetricLabels labels) const;
  /// Convenience: Find()'s counter/gauge value, or 0 when absent.
  double Value(std::string_view name, MetricLabels labels = {}) const;
  /// Sum of every series of family \p name (counters/gauges).
  double SumOf(std::string_view name) const;

  /// The windowed view between \p earlier and this snapshot (both of the
  /// same registry, \p earlier taken first): counters subtract, histograms
  /// subtract bucket-wise (HistogramData::DeltaSince), gauges keep their
  /// current (point-in-time) value. Series absent from \p earlier are
  /// taken whole; series that only exist in \p earlier are dropped. The
  /// per-phase percentile tables (phase_summary ledger records) are built
  /// from exactly this.
  MetricsSnapshot DeltaSince(const MetricsSnapshot& earlier) const;
};

/// \brief The process's (or one subsystem's) named metrics.
///
/// Lookup creates on first use; returned references stay valid for the
/// registry's lifetime (hot paths cache them). A name must keep one type
/// for the registry's lifetime (DCHECKed).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& CounterAt(std::string_view name, MetricLabels labels = {})
      EXCLUDES(mu_);
  Gauge& GaugeAt(std::string_view name, MetricLabels labels = {})
      EXCLUDES(mu_);
  Histogram& HistogramAt(std::string_view name, MetricLabels labels = {})
      EXCLUDES(mu_);

  MetricsSnapshot Snapshot() const EXCLUDES(mu_);

 private:
  struct SeriesKey {
    std::string name;
    MetricLabels labels;
    bool operator<(const SeriesKey& o) const {
      if (name != o.name) return name < o.name;
      return labels < o.labels;
    }
  };
  struct Series {
    MetricType type;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Series& SeriesAt(std::string_view name, MetricLabels labels,
                   MetricType type) REQUIRES(mu_);

  mutable Mutex mu_;
  std::map<SeriesKey, Series> series_ GUARDED_BY(mu_);
};

/// The process-wide default registry (standalone emitters; the engine's
/// per-database registries live on SimDatabase).
MetricsRegistry& GlobalMetrics();

}  // namespace pathix::obs
