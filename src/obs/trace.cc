#include "obs/trace.h"

#include <utility>

#include "obs/json_writer.h"

namespace pathix::obs {

std::string Tracer::ToTraceEventJson() const {
  const std::vector<TraceEvent> events = Snapshot();
  JsonWriter w;
  w.BeginObject();
  w.Key("displayTimeUnit").Value("ms");
  w.Key("traceEvents").BeginArray();
  for (const TraceEvent& e : events) {
    w.BeginObject();
    w.Key("name").Value(e.name);
    w.Key("cat").Value(e.category);
    w.Key("ph").Value(std::string_view(&e.phase, 1));
    w.Key("ts").Value(e.ts_us);
    w.Key("pid").Value(1);
    w.Key("tid").Value(e.tid);
    if (!e.num_args.empty() || !e.str_args.empty()) {
      w.Key("args").BeginObject();
      for (const auto& [key, value] : e.num_args) {
        w.Key(key).Value(value);
      }
      for (const auto& [key, value] : e.str_args) {
        w.Key(key).Value(value);
      }
      w.EndObject();
    }
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

int Tracer::CurrentThreadId() {
  static std::atomic<int> next{0};
  thread_local const int id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

Tracer& GlobalTracer() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

ObsSpan::ObsSpan(Tracer* tracer, std::string_view name,
                 std::string_view category)
    : tracer_(tracer), active_(tracer != nullptr && tracer->enabled()) {
  if (!active_) return;
  const std::uint64_t now = tracer_->NowMicros();
  const int tid = Tracer::CurrentThreadId();
  TraceEvent begin;
  begin.phase = 'B';
  begin.name = std::string(name);
  begin.category = std::string(category);
  begin.ts_us = now;
  begin.tid = tid;
  // The end event is assembled up front so the destructor only stamps the
  // time; name/category/tid must match the begin for the B/E pairing.
  end_.phase = 'E';
  end_.name = begin.name;
  end_.category = begin.category;
  end_.tid = tid;
  tracer_->Record(std::move(begin));
}

ObsSpan::~ObsSpan() {
  if (!active_) return;
  // Recorded even if tracing was disabled mid-span: every exported begin
  // keeps its matching end.
  end_.ts_us = tracer_->NowMicros();
  tracer_->Record(std::move(end_));
}

void ObsSpan::AddArg(std::string_view key, double value) {
  if (!active_) return;
  end_.num_args.emplace_back(std::string(key), value);
}

void ObsSpan::AddArg(std::string_view key, std::string_view value) {
  if (!active_) return;
  end_.str_args.emplace_back(std::string(key), std::string(value));
}

}  // namespace pathix::obs
