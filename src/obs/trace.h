#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/mutex.h"

/// \file trace.h
/// \brief Lightweight span tracing: RAII ObsSpan frames emitting begin/end
/// events, exported as chrome://tracing-compatible Trace Event JSON.
///
/// Answering "what did the advisor spend its time on" needs more than
/// counters: the drift checks, joint re-solves, reconfiguration commits and
/// part builds nest, and their relative durations are the story. A Tracer
/// collects timestamped B/E event pairs (one per ObsSpan scope, with
/// optional key/value args attached to the end event — modeled vs measured
/// transition cost, build I/O); ToTraceEventJson() renders them in the
/// Trace Event Format, so the file loads directly in chrome://tracing or
/// Perfetto (ui.perfetto.dev).
///
/// Tracing is off by default and costs one relaxed atomic load per span
/// when disabled. While enabled, Record appends under a leaf mutex — spans
/// may open inside any locked region of the engine (the registry holds its
/// mutex across part builds; the tracer never calls out). Spans that are
/// open when tracing is disabled still record their end event, so every
/// begin has a matching end in any exported snapshot.

namespace pathix::obs {

/// One begin or end event. Times are microseconds on the tracer's steady
/// clock (epoch = tracer construction).
struct TraceEvent {
  char phase = 'B';  ///< 'B' begin / 'E' end
  std::string name;
  std::string category;
  std::uint64_t ts_us = 0;
  int tid = 0;  ///< small dense per-thread id (not the OS tid)
  /// Args attached by ObsSpan::AddArg (end events only).
  std::vector<std::pair<std::string, double>> num_args;
  std::vector<std::pair<std::string, std::string>> str_args;
};

/// \brief Collects span events; thread-safe, leaf of the lock hierarchy.
class Tracer {
 public:
  Tracer() : epoch_(std::chrono::steady_clock::now()) {}
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Gates span *creation* only: an ObsSpan that recorded its begin always
  /// records its end, so B/E pairs stay balanced across a toggle.
  void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  void Record(TraceEvent event) EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    events_.push_back(std::move(event));
  }

  std::vector<TraceEvent> Snapshot() const EXCLUDES(mu_) {
    ReaderMutexLock lock(&mu_);
    return events_;
  }
  std::size_t size() const EXCLUDES(mu_) {
    ReaderMutexLock lock(&mu_);
    return events_.size();
  }
  void Clear() EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    events_.clear();
  }

  /// Microseconds since the tracer's construction (steady clock).
  std::uint64_t NowMicros() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

  /// The collected events as a Trace Event Format JSON document
  /// ({"traceEvents": [...]}) — load it in chrome://tracing or Perfetto.
  std::string ToTraceEventJson() const EXCLUDES(mu_);

  /// Small dense id of the calling thread (first call assigns).
  static int CurrentThreadId();

 private:
  std::atomic<bool> enabled_{false};
  mutable Mutex mu_;
  std::vector<TraceEvent> events_ GUARDED_BY(mu_);
  std::chrono::steady_clock::time_point epoch_;
};

/// The process-wide tracer every engine span records into. Enable it around
/// the stretch of work to trace (pathix_online --trace-out does).
Tracer& GlobalTracer();

/// \brief RAII span: records a begin event at construction (when the
/// tracer is enabled) and the matching end event — carrying any AddArg'd
/// key/values — at scope exit. Inactive spans cost one atomic load.
class ObsSpan {
 public:
  ObsSpan(Tracer* tracer, std::string_view name,
          std::string_view category = "pathix");
  /// Records into GlobalTracer().
  explicit ObsSpan(std::string_view name) : ObsSpan(&GlobalTracer(), name) {}
  ~ObsSpan();

  ObsSpan(const ObsSpan&) = delete;
  ObsSpan& operator=(const ObsSpan&) = delete;

  /// Attaches an argument to the span's end event. No-op when inactive.
  void AddArg(std::string_view key, double value);
  void AddArg(std::string_view key, std::string_view value);

  /// Whether the span recorded a begin event (tracing was enabled).
  bool active() const { return active_; }

 private:
  Tracer* tracer_;
  bool active_;
  TraceEvent end_;  ///< assembled across the scope, recorded at exit
};

}  // namespace pathix::obs
