#include "online/controller.h"

#include <chrono>
#include <cmath>
#include <optional>
#include <set>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace pathix {

bool ScopedAnalyzer::Refresh(const SimDatabase& db,
                             const std::vector<const Path*>& paths,
                             const ControllerOptions& options) {
  // The classes in scope, with their live counts.
  std::set<ClassId> scope;
  for (const Path* path : paths) {
    for (int l = 1; l <= path->length(); ++l) {
      for (ClassId cls : db.schema().HierarchyOf(path->class_at(l))) {
        scope.insert(cls);
      }
    }
  }

  std::set<ClassId> drifted;
  for (ClassId cls : scope) {
    const double live = static_cast<double>(db.store().LiveCount(cls));
    if (!has_catalog_) {
      drifted.insert(cls);  // first collection covers everything
      continue;
    }
    const auto it = live_at_collection_.find(cls);
    const double at = it == live_at_collection_.end() ? 0 : it->second;
    if (std::abs(live - at) >
        options.stats_refresh_fraction * std::max(1.0, at)) {
      drifted.insert(cls);
    }
  }
  if (drifted.empty()) return false;

  if (!has_catalog_) {
    PhysicalParams params = options.physical_params;
    params.page_size = static_cast<double>(db.pager().page_size());
    catalog_ = Catalog(params);
    has_catalog_ = true;
  }
  std::set<std::pair<ClassId, std::string>> collected;
  for (const Path* path : paths) {
    class_collections_ += static_cast<std::uint64_t>(RefreshStatistics(
        db.store(), db.schema(), *path, drifted, &catalog_, &collected));
  }
  for (ClassId cls : drifted) {
    live_at_collection_[cls] = static_cast<double>(db.store().LiveCount(cls));
  }
  ++refreshes_;
  return true;
}

ReconfigurationController::ReconfigurationController(SimDatabase* db,
                                                     const Path& path,
                                                     ControllerOptions options,
                                                     PathId path_id)
    : db_(db),
      path_(&path),
      path_id_(std::move(path_id)),
      options_(std::move(options)),
      monitor_(options_.half_life_ops),
      selector_(options_.orgs),
      events_(options_.max_event_log),
      decisions_(options_.max_decision_log) {
  cadence_.Init(options_);
}

void ReconfigurationController::MirrorMetrics() const {
  obs::MetricsRegistry& m = db_->metrics();
  m.CounterAt("pathix_controller_checks_total")
      .MirrorTo(static_cast<double>(checks_));
  m.CounterAt("pathix_controller_reconfigurations_total")
      .MirrorTo(static_cast<double>(events_.committed()));
  m.CounterAt("pathix_controller_events_evicted_total")
      .MirrorTo(static_cast<double>(events_.evicted()));
  m.CounterAt("pathix_controller_transition_pages_total",
              {{"kind", "modeled"}})
      .MirrorTo(transition_charged_);
  m.CounterAt("pathix_controller_transition_pages_total",
              {{"kind", "measured"}})
      .MirrorTo(measured_transition_charged_);
  monitor_.ExportMetrics(&m);
}

void ReconfigurationController::OnOperation(const DbOpEvent& ev) {
  monitor_.Observe(ev);
  if (dormant_.load(std::memory_order_relaxed)) return;
  const std::uint64_t ops = monitor_.ops_observed();
  if (ops < options_.warmup_ops) return;
  // Lock-free fast path: while the op count is below the published next
  // check, no thread even attempts the lock. The hint lags a concurrent
  // Reschedule harmlessly — stale readers fall through to the TryLock and
  // lose it.
  if (ops < next_check_hint_.load(std::memory_order_relaxed)) return;
  // A due check is claimed by exactly one thread; the others skip past
  // without blocking (the claimant is checking on everyone's behalf).
  if (!check_mu_.TryLock()) return;
  if (status_.ok() && cadence_.Due(ops)) {
    cadence_.Reschedule(ops, Check());
    next_check_hint_.store(cadence_.next_check(), std::memory_order_relaxed);
    if (!status_.ok()) dormant_.store(true, std::memory_order_relaxed);
  }
  check_mu_.Unlock();
}

void ReconfigurationController::CheckNow() {
  MutexLock lock(&check_mu_);
  if (status_.ok()) Check();
  if (!status_.ok()) dormant_.store(true, std::memory_order_relaxed);
}

bool ReconfigurationController::Check() {
  obs::ObsSpan check_span(&obs::GlobalTracer(), "drift_check", "controller");
  ++checks_;

  // Every exit path of the check — hold or commit — lands this record on
  // the decision ledger, so the audit trail has no gaps.
  DecisionRecord rec;
  rec.check_number = checks_;
  rec.op_index = monitor_.ops_observed();
  rec.controller = "single";
  const auto hold = [&](const char* reason) {
    rec.verdict = "hold";
    rec.hold_reason = reason;
    decisions_.Append(std::move(rec));
    return false;
  };

  // ANALYZE with per-class scoping: stable classes keep their statistics,
  // and an unchanged catalog keeps the selector's matrix cache hot, so a
  // drift check costs no model evaluations.
  analyzer_.Refresh(*db_, {path_}, options_);

  const LoadDistribution load = monitor_.EstimatedLoad();
  if (monitor_.DecayedTotal() <= 0) return hold("no_traffic");
  AppendLoadEntries(db_->schema(), "", load, &rec);
  rec.naive_pages.push_back(
      DecisionNaivePages{"", monitor_.MeasuredNaiveQueryPagesPerOp()});

  std::optional<obs::ObsSpan> solve_span;
  solve_span.emplace(&obs::GlobalTracer(), "re_solve", "controller");
  const auto solve_start = std::chrono::steady_clock::now();
  Result<PathContext> ctx =
      PathContext::Build(db_->schema(), *path_, analyzer_.catalog(), load);
  if (!ctx.ok()) {
    status_ = ctx.status();
    return hold("error");
  }

  const IndexConfiguration* current =
      db_->has_indexes(path_id_) ? &db_->physical(path_id_).config() : nullptr;
  const OnlineSelection sel =
      selector_.Select(ctx.value(), current, options_.decision_top_k);
  const double solve_us =
      std::chrono::duration<double, std::micro>(
          std::chrono::steady_clock::now() - solve_start)
          .count();
  solve_span.reset();  // the commit below is a sibling span, not a child

  // Search effort, into the ledger (deterministic) and the metrics
  // (the re-solve duration is wall-clock, so it lives *only* here).
  obs::MetricsRegistry& metrics = db_->metrics();
  metrics
      .CounterAt("pathix_advisor_nodes_explored_total",
                 {{"controller", "single"}})
      .Increment(static_cast<double>(sel.best.evaluated));
  metrics
      .CounterAt("pathix_advisor_nodes_pruned_total",
                 {{"controller", "single"}})
      .Increment(static_cast<double>(sel.best.pruned));
  metrics
      .HistogramAt("pathix_advisor_resolve_duration_us",
                   {{"controller", "single"}})
      .Observe(solve_us);
  rec.search.nodes_explored = sel.best.evaluated;
  rec.search.nodes_pruned = sel.best.pruned;
  // Width of the recombination space the per-path problem ranges over.
  const int path_n = path_->length();
  rec.search.configs_enumerated =
      path_n > 0 && path_n <= 63 ? 1L << (path_n - 1) : 0;

  // The scored candidate list: the DP optimum first, then the enumerated
  // top-K (skipping the optimum's duplicate entry).
  const std::string current_rendered =
      current != nullptr ? current->ToString(db_->schema(), *path_) : "";
  {
    DecisionCandidate best_cand;
    best_cand.path = path_id_;
    best_cand.config = sel.best.config.ToString(db_->schema(), *path_);
    best_cand.cost_per_op = sel.best.cost;
    best_cand.chosen = true;
    best_cand.current = current != nullptr && sel.best.config == *current;
    rec.candidates.push_back(std::move(best_cand));
  }
  for (const ScoredConfiguration& alt : sel.alternatives) {
    if (alt.config == sel.best.config) continue;
    DecisionCandidate cand;
    cand.path = path_id_;
    cand.config = alt.config.ToString(db_->schema(), *path_);
    cand.cost_per_op = alt.cost;
    cand.cost_delta = alt.cost - sel.best.cost;
    cand.current = current != nullptr && alt.config == *current;
    cand.why_not = "costlier";
    rec.candidates.push_back(std::move(cand));
  }

  DecisionHysteresis& hyst = rec.hysteresis;
  hyst.horizon_ops = options_.horizon_ops;
  hyst.theta = options_.hysteresis;
  hyst.best_cost_per_op = sel.best.cost;

  if (current == nullptr) {
    // Initial install — hysteresis-gated like any other transition: the
    // status quo is no longer unpriced, its cost per operation is the
    // *measured* naive-scan page traffic the monitor observed (the matrix
    // does not price index-less evaluation, the pager does).
    const double current_cost = monitor_.MeasuredNaiveQueryPagesPerOp();
    const double savings = current_cost - sel.best.cost;
    hyst.current_cost_per_op = current_cost;
    hyst.current_is_measured_naive = true;
    hyst.savings_per_op = savings;
    if (savings <= 0) return hold("no_savings");
    const TransitionCost transition = EstimateTransitionCost(
        ctx.value(), db_->store(), nullptr, sel.best.config);
    hyst.evaluated = true;
    hyst.lhs_pages = savings * options_.horizon_ops;
    hyst.modeled = transition;
    hyst.rhs_modeled_pages = options_.hysteresis * transition.total();
    if (hyst.lhs_pages <= hyst.rhs_modeled_pages) {
      rec.candidates.front().why_not = "hysteresis";
      return hold("hysteresis");
    }
    hyst.passed = true;
    if (!db_->has_path(path_id_)) {
      const Status registered = db_->RegisterPath(path_id_, *path_);
      if (!registered.ok()) {
        status_ = registered;
        return hold("error");
      }
    }
    obs::ObsSpan commit_span(&obs::GlobalTracer(), "reconfigure",
                             "controller");
    const AccessStats built_before = db_->registry().cumulative_build_io();
    const Status installed =
        db_->ConfigureIndexes(path_id_, sel.best.config);
    if (!installed.ok()) {
      status_ = installed;
      return hold("error");
    }
    ReconfigurationEvent ev;
    ev.op_index = monitor_.ops_observed();
    ev.initial = true;
    ev.to = sel.best.config;
    ev.predicted_savings_per_op = savings;
    ev.transition = transition;
    ev.measured = MeasuredTransitionCost(
        transition, db_->registry().cumulative_build_io() - built_before);
    transition_charged_ += transition.total();
    measured_transition_charged_ += ev.measured.total();
    commit_span.AddArg("initial", "true");
    commit_span.AddArg("modeled_pages", transition.total());
    commit_span.AddArg("measured_pages", ev.measured.total());
    hyst.has_measured = true;
    hyst.measured = ev.measured;
    hyst.rhs_measured_pages = options_.hysteresis * ev.measured.total();
    rec.verdict = "install";
    decisions_.Append(std::move(rec));
    events_.Append(std::move(ev));
    return true;
  }

  hyst.current_cost_per_op = sel.current_cost;
  hyst.savings_per_op = sel.current_cost - sel.best.cost;
  if (sel.best.config == *current) return hold("already_optimal");
  const double savings = sel.current_cost - sel.best.cost;
  if (savings <= 0) return hold("no_savings");

  const TransitionCost transition = EstimateTransitionCost(
      ctx.value(), db_->store(), &db_->physical(path_id_), sel.best.config);
  hyst.evaluated = true;
  hyst.lhs_pages = savings * options_.horizon_ops;
  hyst.modeled = transition;
  hyst.rhs_modeled_pages = options_.hysteresis * transition.total();
  if (hyst.lhs_pages <= hyst.rhs_modeled_pages) {
    rec.candidates.front().why_not = "hysteresis";
    return hold("hysteresis");
  }
  hyst.passed = true;

  ReconfigurationEvent ev;
  ev.op_index = monitor_.ops_observed();
  ev.from = *current;
  ev.to = sel.best.config;
  ev.predicted_savings_per_op = savings;
  ev.transition = transition;

  obs::ObsSpan commit_span(&obs::GlobalTracer(), "reconfigure", "controller");
  const AccessStats built_before = db_->registry().cumulative_build_io();
  const Status switched = db_->ReconfigureIndexes(path_id_, sel.best.config);
  if (!switched.ok()) {
    status_ = switched;
    return hold("error");
  }
  ev.measured = MeasuredTransitionCost(
      transition, db_->registry().cumulative_build_io() - built_before);
  transition_charged_ += transition.total();
  measured_transition_charged_ += ev.measured.total();
  commit_span.AddArg("initial", "false");
  commit_span.AddArg("modeled_pages", transition.total());
  commit_span.AddArg("measured_pages", ev.measured.total());
  hyst.has_measured = true;
  hyst.measured = ev.measured;
  hyst.rhs_measured_pages = options_.hysteresis * ev.measured.total();
  rec.verdict = "switch";
  decisions_.Append(std::move(rec));
  events_.Append(std::move(ev));
  return true;
}

}  // namespace pathix
