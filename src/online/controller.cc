#include "online/controller.h"

#include <cmath>

#include "exec/analyze.h"

namespace pathix {

ReconfigurationController::ReconfigurationController(SimDatabase* db,
                                                     const Path& path,
                                                     ControllerOptions options)
    : db_(db),
      path_(&path),
      options_(std::move(options)),
      monitor_(options_.half_life_ops),
      selector_(options_.orgs) {}

void ReconfigurationController::OnOperation(DbOpKind kind, ClassId cls) {
  monitor_.Observe(kind, cls);
  if (!status_.ok()) return;
  const std::uint64_t ops = monitor_.ops_observed();
  if (ops < options_.warmup_ops) return;
  const std::uint64_t interval = std::max<std::uint64_t>(
      1, options_.check_interval_ops);
  if (ops % interval == 0) Check();
}

void ReconfigurationController::CheckNow() {
  if (status_.ok()) Check();
}

void ReconfigurationController::Check() {
  ++checks_;

  // ANALYZE lazily: unchanged statistics keep the selector's matrix cache
  // hot, so a drift check costs no model evaluations.
  const double live = static_cast<double>(db_->store().live_objects());
  if (!has_catalog_ ||
      std::abs(live - objects_at_analyze_) >
          options_.stats_refresh_fraction * std::max(1.0, objects_at_analyze_)) {
    PhysicalParams params = options_.physical_params;
    params.page_size = static_cast<double>(db_->pager().page_size());
    catalog_ = CollectStatistics(db_->store(), db_->schema(), *path_, params);
    has_catalog_ = true;
    objects_at_analyze_ = live;
  }

  const LoadDistribution load = monitor_.EstimatedLoad();
  if (monitor_.DecayedTotal() <= 0) return;

  Result<PathContext> ctx =
      PathContext::Build(db_->schema(), *path_, catalog_, load);
  if (!ctx.ok()) {
    status_ = ctx.status();
    return;
  }

  const IndexConfiguration* current =
      db_->has_indexes() ? &db_->physical().config() : nullptr;
  const OnlineSelection sel = selector_.Select(ctx.value(), current);

  if (current == nullptr) {
    // Initial install: not gated by hysteresis (the alternative is a naive
    // scan per query, which the matrix does not even price).
    const TransitionCost transition = EstimateTransitionCost(
        ctx.value(), db_->store(), nullptr, sel.best.config);
    const Status installed =
        db_->ConfigureIndexes(*path_, sel.best.config);
    if (!installed.ok()) {
      status_ = installed;
      return;
    }
    ReconfigurationEvent ev;
    ev.op_index = monitor_.ops_observed();
    ev.initial = true;
    ev.to = sel.best.config;
    ev.transition = transition;
    transition_charged_ += transition.total();
    events_.push_back(std::move(ev));
    return;
  }

  if (sel.best.config == *current) return;
  const double savings = sel.current_cost - sel.best.cost;
  if (savings <= 0) return;

  const TransitionCost transition = EstimateTransitionCost(
      ctx.value(), db_->store(), &db_->physical(), sel.best.config);
  if (savings * options_.horizon_ops <=
      options_.hysteresis * transition.total()) {
    return;
  }

  ReconfigurationEvent ev;
  ev.op_index = monitor_.ops_observed();
  ev.from = *current;
  ev.to = sel.best.config;
  ev.predicted_savings_per_op = savings;
  ev.transition = transition;

  const Status switched = db_->ReconfigureIndexes(sel.best.config);
  if (!switched.ok()) {
    status_ = switched;
    return;
  }
  transition_charged_ += transition.total();
  events_.push_back(std::move(ev));
}

}  // namespace pathix
