#include "online/controller.h"

#include <cmath>
#include <optional>
#include <set>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace pathix {

bool ScopedAnalyzer::Refresh(const SimDatabase& db,
                             const std::vector<const Path*>& paths,
                             const ControllerOptions& options) {
  // The classes in scope, with their live counts.
  std::set<ClassId> scope;
  for (const Path* path : paths) {
    for (int l = 1; l <= path->length(); ++l) {
      for (ClassId cls : db.schema().HierarchyOf(path->class_at(l))) {
        scope.insert(cls);
      }
    }
  }

  std::set<ClassId> drifted;
  for (ClassId cls : scope) {
    const double live = static_cast<double>(db.store().LiveCount(cls));
    if (!has_catalog_) {
      drifted.insert(cls);  // first collection covers everything
      continue;
    }
    const auto it = live_at_collection_.find(cls);
    const double at = it == live_at_collection_.end() ? 0 : it->second;
    if (std::abs(live - at) >
        options.stats_refresh_fraction * std::max(1.0, at)) {
      drifted.insert(cls);
    }
  }
  if (drifted.empty()) return false;

  if (!has_catalog_) {
    PhysicalParams params = options.physical_params;
    params.page_size = static_cast<double>(db.pager().page_size());
    catalog_ = Catalog(params);
    has_catalog_ = true;
  }
  std::set<std::pair<ClassId, std::string>> collected;
  for (const Path* path : paths) {
    class_collections_ += static_cast<std::uint64_t>(RefreshStatistics(
        db.store(), db.schema(), *path, drifted, &catalog_, &collected));
  }
  for (ClassId cls : drifted) {
    live_at_collection_[cls] = static_cast<double>(db.store().LiveCount(cls));
  }
  ++refreshes_;
  return true;
}

ReconfigurationController::ReconfigurationController(SimDatabase* db,
                                                     const Path& path,
                                                     ControllerOptions options,
                                                     PathId path_id)
    : db_(db),
      path_(&path),
      path_id_(std::move(path_id)),
      options_(std::move(options)),
      monitor_(options_.half_life_ops),
      selector_(options_.orgs),
      events_(options_.max_event_log) {
  cadence_.Init(options_);
}

void ReconfigurationController::MirrorMetrics() const {
  obs::MetricsRegistry& m = db_->metrics();
  m.CounterAt("pathix_controller_checks_total")
      .MirrorTo(static_cast<double>(checks_));
  m.CounterAt("pathix_controller_reconfigurations_total")
      .MirrorTo(static_cast<double>(events_.committed()));
  m.CounterAt("pathix_controller_events_evicted_total")
      .MirrorTo(static_cast<double>(events_.evicted()));
  m.CounterAt("pathix_controller_transition_pages_total",
              {{"kind", "modeled"}})
      .MirrorTo(transition_charged_);
  m.CounterAt("pathix_controller_transition_pages_total",
              {{"kind", "measured"}})
      .MirrorTo(measured_transition_charged_);
  monitor_.ExportMetrics(&m);
}

void ReconfigurationController::OnOperation(const DbOpEvent& ev) {
  monitor_.Observe(ev);
  if (!status_.ok()) return;
  const std::uint64_t ops = monitor_.ops_observed();
  if (ops < options_.warmup_ops) return;
  if (cadence_.Due(ops)) cadence_.Reschedule(ops, Check());
}

void ReconfigurationController::CheckNow() {
  if (status_.ok()) Check();
}

bool ReconfigurationController::Check() {
  obs::ObsSpan check_span(&obs::GlobalTracer(), "drift_check", "controller");
  ++checks_;

  // ANALYZE with per-class scoping: stable classes keep their statistics,
  // and an unchanged catalog keeps the selector's matrix cache hot, so a
  // drift check costs no model evaluations.
  analyzer_.Refresh(*db_, {path_}, options_);

  const LoadDistribution load = monitor_.EstimatedLoad();
  if (monitor_.DecayedTotal() <= 0) return false;

  std::optional<obs::ObsSpan> solve_span;
  solve_span.emplace(&obs::GlobalTracer(), "re_solve", "controller");
  Result<PathContext> ctx =
      PathContext::Build(db_->schema(), *path_, analyzer_.catalog(), load);
  if (!ctx.ok()) {
    status_ = ctx.status();
    return false;
  }

  const IndexConfiguration* current =
      db_->has_indexes(path_id_) ? &db_->physical(path_id_).config() : nullptr;
  const OnlineSelection sel = selector_.Select(ctx.value(), current);
  solve_span.reset();  // the commit below is a sibling span, not a child

  if (current == nullptr) {
    // Initial install — hysteresis-gated like any other transition: the
    // status quo is no longer unpriced, its cost per operation is the
    // *measured* naive-scan page traffic the monitor observed (the matrix
    // does not price index-less evaluation, the pager does).
    const double current_cost = monitor_.MeasuredNaiveQueryPagesPerOp();
    const double savings = current_cost - sel.best.cost;
    if (savings <= 0) return false;
    const TransitionCost transition = EstimateTransitionCost(
        ctx.value(), db_->store(), nullptr, sel.best.config);
    if (savings * options_.horizon_ops <=
        options_.hysteresis * transition.total()) {
      return false;
    }
    if (!db_->has_path(path_id_)) {
      const Status registered = db_->RegisterPath(path_id_, *path_);
      if (!registered.ok()) {
        status_ = registered;
        return false;
      }
    }
    obs::ObsSpan commit_span(&obs::GlobalTracer(), "reconfigure",
                             "controller");
    const AccessStats built_before = db_->registry().cumulative_build_io();
    const Status installed =
        db_->ConfigureIndexes(path_id_, sel.best.config);
    if (!installed.ok()) {
      status_ = installed;
      return false;
    }
    ReconfigurationEvent ev;
    ev.op_index = monitor_.ops_observed();
    ev.initial = true;
    ev.to = sel.best.config;
    ev.predicted_savings_per_op = savings;
    ev.transition = transition;
    ev.measured = MeasuredTransitionCost(
        transition, db_->registry().cumulative_build_io() - built_before);
    transition_charged_ += transition.total();
    measured_transition_charged_ += ev.measured.total();
    commit_span.AddArg("initial", "true");
    commit_span.AddArg("modeled_pages", transition.total());
    commit_span.AddArg("measured_pages", ev.measured.total());
    events_.Append(std::move(ev));
    return true;
  }

  if (sel.best.config == *current) return false;
  const double savings = sel.current_cost - sel.best.cost;
  if (savings <= 0) return false;

  const TransitionCost transition = EstimateTransitionCost(
      ctx.value(), db_->store(), &db_->physical(path_id_), sel.best.config);
  if (savings * options_.horizon_ops <=
      options_.hysteresis * transition.total()) {
    return false;
  }

  ReconfigurationEvent ev;
  ev.op_index = monitor_.ops_observed();
  ev.from = *current;
  ev.to = sel.best.config;
  ev.predicted_savings_per_op = savings;
  ev.transition = transition;

  obs::ObsSpan commit_span(&obs::GlobalTracer(), "reconfigure", "controller");
  const AccessStats built_before = db_->registry().cumulative_build_io();
  const Status switched = db_->ReconfigureIndexes(path_id_, sel.best.config);
  if (!switched.ok()) {
    status_ = switched;
    return false;
  }
  ev.measured = MeasuredTransitionCost(
      transition, db_->registry().cumulative_build_io() - built_before);
  transition_charged_ += transition.total();
  measured_transition_charged_ += ev.measured.total();
  commit_span.AddArg("initial", "false");
  commit_span.AddArg("modeled_pages", transition.total());
  commit_span.AddArg("measured_pages", ev.measured.total());
  events_.Append(std::move(ev));
  return true;
}

}  // namespace pathix
