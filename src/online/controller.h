#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <vector>

#include "exec/analyze.h"
#include "exec/database.h"
#include "online/decision_record.h"
#include "online/online_selector.h"
#include "online/transition_cost.h"
#include "online/workload_monitor.h"

/// \file controller.h
/// \brief The reconfiguration controller: observes a live SimDatabase,
/// estimates the drifting load (WorkloadMonitor), periodically re-solves
/// the selection problem (OnlineSelector) and — with hysteresis, so noise
/// cannot thrash the physical layer — rebuilds the index configuration via
/// SimDatabase::ReconfigureIndexes. Inspired by production advisors (AIM,
/// PAPERS.md): observe, act incrementally, never flap.
///
/// This header also hosts the pieces shared with the multi-path
/// JointReconfigurationController (joint_controller.h): the options, the
/// adaptive drift-check cadence and the scoped-ANALYZE statistics tracker —
/// sharing them is what makes the joint controller's single-path degenerate
/// case *provably* identical to this controller (the equivalence property
/// test).

namespace pathix {

/// Tuning knobs of the control loops. The defaults favour stability: a
/// reconfiguration must pay for itself within the horizon with 50% margin.
struct ControllerOptions {
  /// Candidate organizations per subpath (matrix columns).
  std::vector<IndexOrg> orgs = {IndexOrg::kMX, IndexOrg::kMIX, IndexOrg::kNIX};
  /// Half-life of the monitor's decayed counts, in operations.
  double half_life_ops = 512;
  /// Operations between drift checks (the base interval the adaptive
  /// cadence backs off from).
  std::uint64_t check_interval_ops = 256;
  /// While consecutive checks commit no reconfiguration the interval is
  /// multiplied by this factor (1 disables the backoff); a committed
  /// reconfiguration resets it to the base. Cuts solver work on stationary
  /// stretches without giving up drift tracking.
  double cadence_backoff = 2.0;
  /// Cap: the interval never exceeds check_interval_ops * this factor.
  double cadence_max_factor = 4.0;
  /// Operations observed before the first drift check may run. The initial
  /// install is hysteresis-gated like any other transition, against the
  /// *measured* naive-scan cost of the status quo
  /// (WorkloadMonitor::MeasuredNaiveQueryPagesPerOp).
  std::uint64_t warmup_ops = 256;
  /// Amortization horizon H: a switch must win within H future operations.
  double horizon_ops = 4096;
  /// Hysteresis factor theta >= 1: reconfigure only when
  ///   (current_cost - best_cost) * horizon_ops > theta * transition_cost.
  double hysteresis = 1.5;
  /// A class's statistics are re-collected (scoped ANALYZE) when its live
  /// object count moved by more than this fraction since its last
  /// collection; untouched classes keep their entries and cost no store
  /// pass. Between refreshes the matrix cache serves drift checks without
  /// model calls.
  double stats_refresh_fraction = 0.1;
  /// Storage budget for the *joint* controller's selection, in bytes
  /// (infinity disables the constraint; ignored by the single-path
  /// controller, whose degenerate equivalence assumes no budget).
  double storage_budget_bytes = std::numeric_limits<double>::infinity();
  /// Ring-buffer bound on the retained reconfiguration event log (0 keeps
  /// everything). A long-running controller keeps the newest max_event_log
  /// events; evictions are counted (events_evicted(), mirrored as the
  /// pathix_controller_events_evicted_total metric) so consumers can tell a
  /// truncated log from a short one.
  std::size_t max_event_log = 1024;
  /// Scored candidate alternatives captured into each decision record
  /// (online/decision_record.h). 0 disables candidate capture — the record
  /// itself (workload snapshot, search stats, hysteresis, verdict) is
  /// always kept.
  int decision_top_k = 5;
  /// Ring-buffer bound on the retained decision ledger (0 keeps
  /// everything). Decisions accrue one per drift check — far faster than
  /// committed events — so the default bound is what keeps a long-running
  /// controller's memory flat.
  std::size_t max_decision_log = 4096;
  /// Physical parameters (oid/key lengths etc.) the cost model solves
  /// against; page_size is always taken from the database's pager. Pass the
  /// spec's catalog params when the spec overrides the defaults.
  PhysicalParams physical_params;
};

/// \brief The adaptive drift-check schedule shared by both controllers:
/// checks start at the base interval, back off multiplicatively while they
/// commit nothing, and snap back on a committed reconfiguration.
class DriftCadence {
 public:
  void Init(const ControllerOptions& options) {
    base_ = std::max<std::uint64_t>(1, options.check_interval_ops);
    max_interval_ = std::max<std::uint64_t>(
        base_, static_cast<std::uint64_t>(
                   static_cast<double>(base_) *
                   std::max(1.0, options.cadence_max_factor)));
    backoff_ = std::max(1.0, options.cadence_backoff);
    interval_ = base_;
    // First check: the first base-interval boundary past the warmup (the
    // pre-backoff schedule checked every multiple of the base interval).
    const std::uint64_t warmup = std::max<std::uint64_t>(options.warmup_ops, 1);
    next_check_ = ((warmup + base_ - 1) / base_) * base_;
  }

  bool Due(std::uint64_t ops) const { return ops >= next_check_; }

  /// Reschedules after a check at \p ops: a committed reconfiguration
  /// resets the interval, a quiet check backs it off (capped).
  void Reschedule(std::uint64_t ops, bool reconfigured) {
    if (reconfigured) {
      interval_ = base_;
    } else {
      interval_ = std::min<std::uint64_t>(
          max_interval_, static_cast<std::uint64_t>(
                             static_cast<double>(interval_) * backoff_));
    }
    next_check_ = ops + interval_;
  }

  std::uint64_t current_interval() const { return interval_; }
  std::uint64_t base_interval() const { return base_; }
  /// Operation index of the next scheduled check (the value Due compares
  /// against) — what the controllers publish as their lock-free fast-path
  /// hint under concurrency.
  std::uint64_t next_check() const { return next_check_; }

 private:
  std::uint64_t base_ = 1;
  std::uint64_t max_interval_ = 1;
  double backoff_ = 1;
  std::uint64_t interval_ = 1;
  std::uint64_t next_check_ = 1;
};

/// \brief Scoped ANALYZE: keeps a catalog over the scopes of a set of paths
/// and re-collects only the classes whose live-object count drifted past
/// the threshold since their last collection (exec/analyze.h's
/// RefreshStatistics). The first refresh collects everything.
class ScopedAnalyzer {
 public:
  /// Refreshes the catalog from \p db for \p paths. Returns true when any
  /// class was re-collected (callers invalidate load-independent caches).
  bool Refresh(const SimDatabase& db, const std::vector<const Path*>& paths,
               const ControllerOptions& options);

  bool has_catalog() const { return has_catalog_; }
  const Catalog& catalog() const { return catalog_; }

  /// Total (class, path-attribute) collections performed — the ANALYZE work
  /// counter the scoped-refresh tests pin down.
  std::uint64_t class_collections() const { return class_collections_; }
  /// Refresh() calls that re-collected at least one class.
  std::uint64_t refreshes() const { return refreshes_; }

 private:
  Catalog catalog_;
  bool has_catalog_ = false;
  std::map<ClassId, double> live_at_collection_;
  std::uint64_t class_collections_ = 0;
  std::uint64_t refreshes_ = 0;
};

/// \brief Append-only event log with an optional ring-buffer bound: keeps
/// the newest \p max_events entries, counts what it evicted, and remembers
/// the all-time committed total — so BoundedEventLog(0) is exactly the
/// unbounded vector it replaces, and a bounded log still reports true
/// counts (TraceReplayer counts reconfigurations from committed(), never
/// from events().size()).
template <typename Event>
class BoundedEventLog {
 public:
  explicit BoundedEventLog(std::size_t max_events = 0) : max_(max_events) {}

  /// Sets the bound (normally once, from ControllerOptions::max_event_log,
  /// before any append). Shrinking an over-full log evicts on next Append.
  void set_max_events(std::size_t max_events) { max_ = max_events; }

  void Append(Event event) {
    ++committed_;
    events_.push_back(std::move(event));
    if (max_ > 0 && events_.size() > max_) {
      const auto excess =
          static_cast<std::ptrdiff_t>(events_.size() - max_);
      events_.erase(events_.begin(), events_.begin() + excess);
      evicted_ += static_cast<std::uint64_t>(excess);
    }
  }

  /// The retained suffix (newest committed() - evicted() events, in order).
  const std::vector<Event>& events() const { return events_; }
  /// All-time appends, evicted or not.
  std::uint64_t committed() const { return committed_; }
  std::uint64_t evicted() const { return evicted_; }
  std::size_t max_events() const { return max_; }

 private:
  std::size_t max_;
  std::vector<Event> events_;
  std::uint64_t committed_ = 0;
  std::uint64_t evicted_ = 0;
};

/// One committed reconfiguration (including the initial install).
struct ReconfigurationEvent {
  std::uint64_t op_index = 0;  ///< operations observed when it happened
  bool initial = false;        ///< first install (no previous configuration)
  IndexConfiguration from;     ///< empty when initial
  IndexConfiguration to;
  /// current_cost - best_cost. For the initial install the current cost is
  /// the *measured* naive-scan pages per operation (the priced status quo
  /// the hysteresis gate weighs the install against).
  double predicted_savings_per_op = 0;
  TransitionCost transition;  ///< modeled price of the switch
  /// Pager-measured price, recorded after the commit: drops from actual
  /// structure pages (as modeled), scan/write from the build I/O of the
  /// parts the registry actually built.
  TransitionCost measured;
};

/// \brief Attach with db->SetObserver(&controller); detach before either
/// dies. All controller work (ANALYZE, solving, index builds) is uncounted;
/// the modeled transition price is accumulated in transition_pages_charged()
/// so experiment totals can include it.
///
/// Thread safety: OnOperation may fire from any number of serving threads
/// concurrently. The monitor absorbs every observation (internally
/// synchronized); drift checks are arbitrated through a non-blocking
/// TryLock on the check mutex — when a check is due, exactly one thread
/// runs it and the rest skip past (they neither wait nor double-check),
/// with a relaxed next-check hint keeping the fast path at one atomic
/// load. The inspection accessors (events(), decisions(), monitor(), ...)
/// are for quiescent use: call them when no serving thread is driving
/// operations, or accept a racy read.
class ReconfigurationController : public DbOpObserver {
 public:
  /// \p path must outlive the controller and be the path registered with
  /// the database under \p path_id (the id the controller configures).
  ReconfigurationController(SimDatabase* db, const Path& path,
                            ControllerOptions options = {},
                            PathId path_id = kDefaultPathId);

  void OnOperation(const DbOpEvent& ev) override;

  /// Runs a drift check now, regardless of the check interval (the cadence
  /// normally drives this; exposed for tests and end-of-trace flushes).
  void CheckNow();

  const WorkloadMonitor& monitor() const { return monitor_; }
  const OnlineSelector& selector() const { return selector_; }
  const ScopedAnalyzer& analyzer() const { return analyzer_; }
  const DriftCadence& cadence() const { return cadence_; }

  /// The retained event log (the newest ControllerOptions::max_event_log
  /// events; everything when the bound is 0).
  const std::vector<ReconfigurationEvent>& events() const {
    return events_.events();
  }
  /// All-time committed reconfigurations (eviction-proof — use this, not
  /// events().size(), for counting).
  std::uint64_t events_committed() const { return events_.committed(); }
  /// Events dropped from the retained log by the ring-buffer bound.
  std::uint64_t events_evicted() const { return events_.evicted(); }

  /// The retained decision ledger: one record per drift check (the newest
  /// ControllerOptions::max_decision_log records; everything when 0).
  const std::vector<DecisionRecord>& decisions() const {
    return decisions_.events();
  }
  /// All-time decision records captured (eviction-proof).
  std::uint64_t decisions_committed() const { return decisions_.committed(); }
  std::uint64_t decisions_evicted() const { return decisions_.evicted(); }

  /// Modeled page cost of every committed transition so far.
  double transition_pages_charged() const { return transition_charged_; }

  /// Pager-measured page cost of every committed transition so far (the
  /// events' .measured totals).
  double measured_transition_pages_charged() const {
    return measured_transition_charged_;
  }

  std::uint64_t checks_run() const { return checks_; }

  /// Mirrors the controller's counters (checks, committed/evicted events,
  /// modeled and measured transition pages) and the monitor's drift gauges
  /// into the database's metrics registry. Call before exporting.
  void MirrorMetrics() const;

  /// First error the control loop hit (selection or reconfiguration); the
  /// controller goes dormant after an error rather than flapping.
  const Status& status() const { return status_; }

 private:
  /// Returns true when a reconfiguration was committed. Caller holds
  /// check_mu_.
  bool Check();

  SimDatabase* db_;
  const Path* path_;
  PathId path_id_;
  ControllerOptions options_;
  WorkloadMonitor monitor_;
  OnlineSelector selector_;

  /// Serializes drift checks and protects everything below it. Observers
  /// reach this state only through OnOperation's TryLock (or CheckNow);
  /// the const accessors read it quiescently (see the class comment).
  mutable Mutex check_mu_;
  /// Fast-path mirror of cadence_.next_check(): threads skip the TryLock
  /// entirely while the op count is below it.
  std::atomic<std::uint64_t> next_check_hint_{0};
  /// Mirror of !status_.ok(): once the loop errors, every thread stops
  /// checking without having to acquire check_mu_ to find out.
  std::atomic<bool> dormant_{false};

  DriftCadence cadence_;
  ScopedAnalyzer analyzer_;
  BoundedEventLog<ReconfigurationEvent> events_;
  BoundedEventLog<DecisionRecord> decisions_;
  double transition_charged_ = 0;
  double measured_transition_charged_ = 0;
  std::uint64_t checks_ = 0;
  Status status_;
};

}  // namespace pathix
