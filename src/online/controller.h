#pragma once

#include <cstdint>
#include <vector>

#include "exec/database.h"
#include "online/online_selector.h"
#include "online/transition_cost.h"
#include "online/workload_monitor.h"

/// \file controller.h
/// \brief The reconfiguration controller: observes a live SimDatabase,
/// estimates the drifting load (WorkloadMonitor), periodically re-solves
/// the selection problem (OnlineSelector) and — with hysteresis, so noise
/// cannot thrash the physical layer — rebuilds the index configuration via
/// SimDatabase::ReconfigureIndexes. Inspired by production advisors (AIM,
/// PAPERS.md): observe, act incrementally, never flap.

namespace pathix {

/// Tuning knobs of the control loop. The defaults favour stability: a
/// reconfiguration must pay for itself within the horizon with 50% margin.
struct ControllerOptions {
  /// Candidate organizations per subpath (matrix columns).
  std::vector<IndexOrg> orgs = {IndexOrg::kMX, IndexOrg::kMIX, IndexOrg::kNIX};
  /// Half-life of the monitor's decayed counts, in operations.
  double half_life_ops = 512;
  /// Operations between drift checks.
  std::uint64_t check_interval_ops = 256;
  /// Operations observed before the first configuration is installed (the
  /// initial build is not gated by hysteresis: anything beats naive scans).
  std::uint64_t warmup_ops = 256;
  /// Amortization horizon H: a switch must win within H future operations.
  double horizon_ops = 4096;
  /// Hysteresis factor theta >= 1: reconfigure only when
  ///   (current_cost - best_cost) * horizon_ops > theta * transition_cost.
  double hysteresis = 1.5;
  /// Statistics are re-collected (ANALYZE) when the live object count moved
  /// by more than this fraction since the last collection — between
  /// refreshes the matrix cache serves drift checks without model calls.
  double stats_refresh_fraction = 0.1;
  /// Physical parameters (oid/key lengths etc.) the cost model solves
  /// against; page_size is always taken from the database's pager. Pass the
  /// spec's catalog params when the spec overrides the defaults.
  PhysicalParams physical_params;
};

/// One committed reconfiguration (including the initial install).
struct ReconfigurationEvent {
  std::uint64_t op_index = 0;  ///< operations observed when it happened
  bool initial = false;        ///< first install (no previous configuration)
  IndexConfiguration from;     ///< empty when initial
  IndexConfiguration to;
  double predicted_savings_per_op = 0;  ///< current_cost - best_cost
  TransitionCost transition;            ///< modeled price of the switch
};

/// \brief Attach with db->SetObserver(&controller); detach before either
/// dies. All controller work (ANALYZE, solving, index builds) is uncounted;
/// the modeled transition price is accumulated in transition_pages_charged()
/// so experiment totals can include it.
class ReconfigurationController : public DbOpObserver {
 public:
  /// \p path must outlive the controller and be the path the database's
  /// indexes are (to be) configured on.
  ReconfigurationController(SimDatabase* db, const Path& path,
                            ControllerOptions options = {});

  void OnOperation(DbOpKind kind, ClassId cls) override;

  /// Runs a drift check now, regardless of the check interval (the cadence
  /// normally drives this; exposed for tests and end-of-trace flushes).
  void CheckNow();

  const WorkloadMonitor& monitor() const { return monitor_; }
  const OnlineSelector& selector() const { return selector_; }
  const std::vector<ReconfigurationEvent>& events() const { return events_; }

  /// Modeled page cost of every committed transition so far.
  double transition_pages_charged() const { return transition_charged_; }

  std::uint64_t checks_run() const { return checks_; }

  /// First error the control loop hit (selection or reconfiguration); the
  /// controller goes dormant after an error rather than flapping.
  const Status& status() const { return status_; }

 private:
  void Check();

  SimDatabase* db_;
  const Path* path_;
  ControllerOptions options_;
  WorkloadMonitor monitor_;
  OnlineSelector selector_;

  Catalog catalog_;
  bool has_catalog_ = false;
  double objects_at_analyze_ = 0;

  std::vector<ReconfigurationEvent> events_;
  double transition_charged_ = 0;
  std::uint64_t checks_ = 0;
  Status status_;
};

}  // namespace pathix
