#include "online/decision_record.h"

#include <algorithm>
#include <utility>

#include "schema/schema.h"

namespace pathix {

namespace {

void WriteTransition(obs::JsonWriter* w, const TransitionCost& t) {
  w->BeginObject()
      .Key("drop_pages").Value(t.drop_pages)
      .Key("scan_pages").Value(t.scan_pages)
      .Key("write_pages").Value(t.write_pages)
      .Key("total").Value(t.total())
      .EndObject();
}

void WritePhaseStats(obs::JsonWriter* w,
                     const std::vector<LedgerPhaseStat>& stats) {
  w->BeginArray();
  for (const LedgerPhaseStat& s : stats) {
    w->BeginObject()
        .Key("label").Value(s.label)
        .Key("count").Value(static_cast<std::uint64_t>(s.count))
        .Key("p50").Value(s.p50)
        .Key("p90").Value(s.p90)
        .Key("p99").Value(s.p99)
        .Key("max").Value(s.max)
        .EndObject();
  }
  w->EndArray();
}

}  // namespace

void AppendLoadEntries(const Schema& schema, const std::string& path_label,
                       const LoadDistribution& load, DecisionRecord* rec) {
  std::vector<std::pair<ClassId, OpLoad>> entries(load.entries().begin(),
                                                  load.entries().end());
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [cls, op] : entries) {
    DecisionLoadEntry e;
    e.path = path_label;
    e.cls = schema.GetClass(cls).name();
    e.query = op.query;
    e.insert = op.insert;
    e.del = op.del;
    rec->load.push_back(std::move(e));
  }
}

void WriteDecisionRecord(obs::DecisionLog* log, const DecisionRecord& rec) {
  obs::JsonWriter& w = log->BeginRecord();
  w.BeginObject()
      .Key("type").Value("decision")
      .Key("check").Value(static_cast<std::uint64_t>(rec.check_number))
      .Key("op_index").Value(static_cast<std::uint64_t>(rec.op_index))
      .Key("controller").Value(rec.controller)
      .Key("phase").Value(rec.phase)
      .Key("verdict").Value(rec.verdict)
      .Key("hold_reason").Value(rec.hold_reason);

  w.Key("workload").BeginObject();
  w.Key("load").BeginArray();
  for (const DecisionLoadEntry& e : rec.load) {
    w.BeginObject()
        .Key("path").Value(e.path)
        .Key("class").Value(e.cls)
        .Key("query").Value(e.query)
        .Key("insert").Value(e.insert)
        .Key("delete").Value(e.del)
        .EndObject();
  }
  w.EndArray();
  w.Key("naive_pages_per_op").BeginArray();
  for (const DecisionNaivePages& n : rec.naive_pages) {
    w.BeginObject()
        .Key("path").Value(n.path)
        .Key("pages_per_op").Value(n.pages_per_op)
        .EndObject();
  }
  w.EndArray();
  w.EndObject();  // workload

  const DecisionSearchStats& s = rec.search;
  w.Key("search").BeginObject()
      .Key("pool_entries").Value(static_cast<std::int64_t>(s.pool_entries))
      .Key("configs_enumerated")
          .Value(static_cast<std::int64_t>(s.configs_enumerated))
      .Key("nodes_explored").Value(static_cast<std::int64_t>(s.nodes_explored))
      .Key("nodes_pruned").Value(static_cast<std::int64_t>(s.nodes_pruned))
      .Key("used_branch_and_bound").Value(s.used_branch_and_bound)
      .Key("lower_bound").Value(s.lower_bound)
      .Key("bound_gap").Value(s.bound_gap);
  if (s.has_greedy_seed) {
    w.Key("greedy_seed").BeginObject()
        .Key("cost").Value(s.greedy_seed_cost)
        .Key("gap").Value(s.greedy_seed_gap)
        .Key("feasible").Value(s.greedy_seed_feasible)
        .EndObject();
  } else {
    w.Key("greedy_seed").Null();
  }
  w.EndObject();  // search

  w.Key("candidates").BeginArray();
  for (const DecisionCandidate& c : rec.candidates) {
    w.BeginObject()
        .Key("path").Value(c.path)
        .Key("config").Value(c.config)
        .Key("cost_per_op").Value(c.cost_per_op)
        .Key("cost_delta").Value(c.cost_delta)
        .Key("storage_bytes").Value(c.storage_bytes)
        .Key("violates_budget").Value(c.violates_budget)
        .Key("chosen").Value(c.chosen)
        .Key("current").Value(c.current)
        .Key("why_not").Value(c.why_not)
        .EndObject();
  }
  w.EndArray();

  const DecisionHysteresis& h = rec.hysteresis;
  w.Key("hysteresis").BeginObject()
      .Key("evaluated").Value(h.evaluated)
      .Key("current_cost_per_op").Value(h.current_cost_per_op)
      .Key("current_is_measured_naive").Value(h.current_is_measured_naive)
      .Key("best_cost_per_op").Value(h.best_cost_per_op)
      .Key("savings_per_op").Value(h.savings_per_op)
      .Key("horizon_ops").Value(h.horizon_ops)
      .Key("theta").Value(h.theta)
      .Key("lhs_pages").Value(h.lhs_pages);
  w.Key("modeled");
  WriteTransition(&w, h.modeled);
  w.Key("rhs_modeled_pages").Value(h.rhs_modeled_pages);
  if (h.has_measured) {
    w.Key("measured");
    WriteTransition(&w, h.measured);
    w.Key("rhs_measured_pages").Value(h.rhs_measured_pages);
  } else {
    w.Key("measured").Null();
    w.Key("rhs_measured_pages").Null();
  }
  w.Key("passed").Value(h.passed);
  w.EndObject();  // hysteresis

  w.EndObject();
  log->EndRecord();
}

void WriteLedgerMeta(obs::DecisionLog* log, const LedgerMeta& meta) {
  obs::JsonWriter& w = log->BeginRecord();
  w.BeginObject()
      .Key("type").Value("meta")
      .Key("schema_version").Value(obs::kDecisionLedgerSchemaVersion)
      .Key("mode").Value(meta.mode)
      .Key("spec").Value(meta.spec);
  w.Key("options").BeginObject()
      .Key("theta").Value(meta.theta)
      .Key("horizon_ops").Value(meta.horizon_ops)
      .Key("half_life_ops").Value(meta.half_life_ops)
      .Key("warmup_ops").Value(static_cast<std::uint64_t>(meta.warmup_ops))
      .Key("check_interval_ops")
          .Value(static_cast<std::uint64_t>(meta.check_interval_ops))
      // Infinity (no budget) serializes as null — JSON has no inf.
      .Key("storage_budget_bytes").Value(meta.storage_budget_bytes)
      .Key("decision_top_k").Value(meta.decision_top_k)
      .EndObject();
  w.Key("paths").BeginArray();
  for (const std::string& p : meta.paths) w.Value(p);
  w.EndArray();
  w.Key("phases").BeginArray();
  for (const std::string& p : meta.phases) w.Value(p);
  w.EndArray();
  w.EndObject();
  log->EndRecord();
}

void WriteLedgerPhaseSummary(obs::DecisionLog* log,
                             const LedgerPhaseSummary& summary) {
  obs::JsonWriter& w = log->BeginRecord();
  w.BeginObject()
      .Key("type").Value("phase_summary")
      .Key("phase").Value(summary.phase)
      .Key("ops").Value(static_cast<std::uint64_t>(summary.ops))
      .Key("pages").Value(static_cast<std::uint64_t>(summary.pages))
      .Key("reconfigurations").Value(summary.reconfigurations)
      .Key("decisions").Value(static_cast<std::uint64_t>(summary.decisions))
      .Key("transition_pages").Value(summary.transition_pages)
      .Key("measured_transition_pages")
          .Value(summary.measured_transition_pages);
  w.Key("latency_us");
  WritePhaseStats(&w, summary.latency_us);
  w.Key("op_pages");
  WritePhaseStats(&w, summary.op_pages);
  w.EndObject();
  log->EndRecord();
}

}  // namespace pathix
