#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "obs/decision_log.h"
#include "online/transition_cost.h"
#include "workload/load.h"

/// \file decision_record.h
/// \brief The decision ledger: one structured record per drift check, for
/// *both* controllers — what the workload looked like, what the solver
/// searched, which candidates it scored and why they lost, how the
/// hysteresis inequality evaluated (modeled and measured sides), and the
/// verdict (install / switch / hold).
///
/// The paper's contribution is a cost-model-driven *choice*; the ledger is
/// the audit trail of every such choice the online stack makes. AIM (Meta,
/// PAPERS.md) argues production index automation lives or dies on
/// verifiable decision records — the ROADMAP's rollback loop will replay
/// these verdicts against measured reality.
///
/// Determinism contract: a DecisionRecord contains *no wall-clock values*
/// (solve durations go to the metrics histograms instead), so the decision
/// portion of a ledger is byte-identical across replays of the same trace —
/// pinned by replay_determinism_test. Anything unordered (load entries) is
/// sorted before capture.

namespace pathix {

class Schema;

/// One (path, class) row of the workload-estimate snapshot, rendered with
/// names so the ledger is self-contained.
struct DecisionLoadEntry {
  std::string path;        ///< path id ("" for the single-path controller)
  std::string cls;         ///< class name
  double query = 0;        ///< alpha (normalized decayed frequency)
  double insert = 0;       ///< beta
  double del = 0;          ///< gamma
};

/// Measured naive-scan pages per operation for one path — the priced
/// status quo an unconfigured path's hysteresis gate weighs against.
struct DecisionNaivePages {
  std::string path;
  double pages_per_op = 0;
};

/// One scored candidate configuration and why it was not chosen.
struct DecisionCandidate {
  std::string path;        ///< the path this candidate configures
  std::string config;      ///< rendered (IndexConfiguration::ToString)
  /// Workload cost per operation with this candidate in place: the whole
  /// assignment's shared-aware cost (joint) or the path cost (single).
  double cost_per_op = 0;
  double cost_delta = 0;   ///< cost_per_op - the chosen assignment's cost
  /// Total distinct-index storage with this candidate in place (joint
  /// controller only; 0 for the single-path controller).
  double storage_bytes = 0;
  bool violates_budget = false;
  bool chosen = false;     ///< part of the winning assignment
  bool current = false;    ///< the configuration installed before the check
  /// Why the candidate lost: "" (chosen and committed), "costlier",
  /// "over_budget", or — for the winner of a held check — "hysteresis".
  std::string why_not;
};

/// Solver search effort behind the verdict. No timing lives here (see the
/// determinism contract); the re-solve duration goes to the
/// pathix_advisor_resolve_duration_us histogram.
struct DecisionSearchStats {
  long pool_entries = 0;       ///< distinct candidate-pool entries (joint)
  long configs_enumerated = 0; ///< enumerated per-path configurations
  long nodes_explored = 0;
  long nodes_pruned = 0;
  bool used_branch_and_bound = false;
  /// Admissible root lower bound of the joint search (0 when n/a); the
  /// chosen cost is always >= it.
  double lower_bound = 0;
  double bound_gap = 0;        ///< chosen cost - lower_bound
  bool has_greedy_seed = false;
  double greedy_seed_cost = 0; ///< the greedy assignment, shared accounting
  double greedy_seed_gap = 0;  ///< greedy_seed_cost - chosen cost (>= 0)
  bool greedy_seed_feasible = false;  ///< greedy fits the storage budget
};

/// The hysteresis inequality exactly as the controller evaluated it:
///   savings_per_op * horizon_ops  >  theta * transition.total()
/// with both the modeled side (the gate itself) and — after a commit — the
/// pager-measured side recorded next to it.
struct DecisionHysteresis {
  /// True when the full inequality was evaluated (a transition was priced);
  /// false when the check short-circuited earlier (no savings, already
  /// optimal, no traffic, error).
  bool evaluated = false;
  double current_cost_per_op = 0;
  /// True when current_cost_per_op is the *measured* naive-scan pages/op of
  /// unconfigured paths (the initial-install gate), not a modeled cost.
  bool current_is_measured_naive = false;
  double best_cost_per_op = 0;
  double savings_per_op = 0;   ///< current - best
  double horizon_ops = 0;
  double theta = 0;
  double lhs_pages = 0;        ///< savings_per_op * horizon_ops
  TransitionCost modeled;
  double rhs_modeled_pages = 0;  ///< theta * modeled.total()
  /// The measured side exists only after a commit (the build I/O is read
  /// from the pager after the transition actually ran); held checks carry
  /// has_measured = false and serialize the measured side as null.
  bool has_measured = false;
  TransitionCost measured;
  double rhs_measured_pages = 0;  ///< theta * measured.total()
  bool passed = false;
};

/// One drift check's full audit record.
struct DecisionRecord {
  std::uint64_t check_number = 0;  ///< 1-based, per controller
  std::uint64_t op_index = 0;      ///< operations observed at the check
  std::string controller;          ///< "single" or "joint"
  std::string phase;               ///< stamped by the replayer; "" otherwise
  std::string verdict;             ///< "install", "switch", or "hold"
  /// Hold verdicts only: "no_traffic", "already_optimal", "no_savings",
  /// "hysteresis", or "error".
  std::string hold_reason;
  std::vector<DecisionLoadEntry> load;  ///< sorted by (path, class id)
  std::vector<DecisionNaivePages> naive_pages;  ///< sorted by path
  DecisionSearchStats search;
  std::vector<DecisionCandidate> candidates;  ///< chosen first, then top-K
  DecisionHysteresis hysteresis;
};

/// Appends \p load's triplets under \p path_label to \p rec->load, rendered
/// with class names from \p schema, sorted by class id (entries() iterates
/// an unordered_map — sorting here is what keeps ledgers byte-stable).
void AppendLoadEntries(const Schema& schema, const std::string& path_label,
                       const LoadDistribution& load, DecisionRecord* rec);

/// Serializes \p rec as one {"type":"decision", ...} ledger line.
void WriteDecisionRecord(obs::DecisionLog* log, const DecisionRecord& rec);

/// The ledger's head record: run identity and the controller parameters
/// every decision was gated under. Scalars only (no ControllerOptions
/// dependency) so io/examples code can assemble it from any source.
struct LedgerMeta {
  std::string mode;  ///< "single" or "joint"
  std::string spec;  ///< spec file path, or a label for embedded traces
  double theta = 0;
  double horizon_ops = 0;
  double half_life_ops = 0;
  std::uint64_t warmup_ops = 0;
  std::uint64_t check_interval_ops = 0;
  double storage_budget_bytes = std::numeric_limits<double>::infinity();
  int decision_top_k = 0;
  std::vector<std::string> paths;   ///< "id: rendered path", spec order
  std::vector<std::string> phases;  ///< phase names, spec order
};

/// Serializes \p meta as the {"type":"meta", ...} first ledger line,
/// carrying obs::kDecisionLedgerSchemaVersion.
void WriteLedgerMeta(obs::DecisionLog* log, const LedgerMeta& meta);

/// One labeled distribution row of a phase summary (a latency or page
/// histogram's windowed percentiles — obs::HistogramData::DeltaSince).
struct LedgerPhaseStat {
  std::string label;
  std::uint64_t count = 0;
  double p50 = 0;
  double p90 = 0;
  double p99 = 0;
  double max = 0;
};

/// Per-phase rollup record: replay totals plus windowed latency/page
/// percentiles. The latency table is wall-clock (excluded from the
/// determinism contract — only decision records are pinned byte-identical);
/// the op_pages table is deterministic.
struct LedgerPhaseSummary {
  std::string phase;
  std::uint64_t ops = 0;
  std::uint64_t pages = 0;
  int reconfigurations = 0;
  std::uint64_t decisions = 0;  ///< decision records captured in the phase
  double transition_pages = 0;
  double measured_transition_pages = 0;
  std::vector<LedgerPhaseStat> latency_us;
  std::vector<LedgerPhaseStat> op_pages;
};

/// Serializes \p summary as one {"type":"phase_summary", ...} ledger line.
void WriteLedgerPhaseSummary(obs::DecisionLog* log,
                             const LedgerPhaseSummary& summary);

}  // namespace pathix
