#include "online/event_json.h"

#include "obs/json_writer.h"

namespace pathix {

namespace {

void WriteTransition(obs::JsonWriter* w, const char* key,
                     const TransitionCost& cost) {
  w->Key(key).BeginObject();
  w->Key("drop_pages").Value(cost.drop_pages);
  w->Key("scan_pages").Value(cost.scan_pages);
  w->Key("write_pages").Value(cost.write_pages);
  w->Key("total").Value(cost.total());
  w->EndObject();
}

}  // namespace

void WriteEventLog(obs::JsonWriter* w,
                   const std::vector<ReconfigurationEvent>& events) {
  w->BeginArray();
  for (const ReconfigurationEvent& ev : events) {
    w->BeginObject();
    w->Key("op_index").Value(ev.op_index);
    w->Key("initial").Value(ev.initial);
    w->Key("from").Value(ev.initial ? "(none)" : ev.from.ToString());
    w->Key("to").Value(ev.to.ToString());
    w->Key("predicted_savings_per_op").Value(ev.predicted_savings_per_op);
    WriteTransition(w, "transition", ev.transition);
    WriteTransition(w, "measured", ev.measured);
    w->EndObject();
  }
  w->EndArray();
}

void WriteEventLog(obs::JsonWriter* w,
                   const std::vector<JointReconfigurationEvent>& events) {
  w->BeginArray();
  for (const JointReconfigurationEvent& ev : events) {
    w->BeginObject();
    w->Key("op_index").Value(ev.op_index);
    w->Key("initial").Value(ev.initial);
    w->Key("changes").BeginArray();
    for (const JointReconfigurationEvent::PathChange& change : ev.changes) {
      w->BeginObject();
      w->Key("path").Value(change.path);
      w->Key("from").Value(change.from.parts().empty() ? "(none)"
                                                       : change.from.ToString());
      w->Key("to").Value(change.to.ToString());
      w->EndObject();
    }
    w->EndArray();
    w->Key("predicted_savings_per_op").Value(ev.predicted_savings_per_op);
    WriteTransition(w, "transition", ev.transition);
    WriteTransition(w, "measured", ev.measured);
    w->EndObject();
  }
  w->EndArray();
}

}  // namespace pathix
