#pragma once

#include <vector>

#include "online/controller.h"
#include "online/joint_controller.h"

/// \file event_json.h
/// \brief Structured-JSON rendering of the controllers' reconfiguration
/// event logs, via obs::JsonWriter — the machine-readable mirror of the
/// human-oriented event lines pathix_online prints.
///
/// Each event carries its op index, the configuration change (rendered with
/// IndexConfiguration::ToString), the hysteresis gate's predicted savings,
/// and the modeled-vs-measured transition price by component — the data
/// behind the measured-cost validation harness, now exportable per run.

namespace pathix {

namespace obs {
class JsonWriter;
}  // namespace obs

/// Appends a JSON array of the single-path controller's events to \p w.
void WriteEventLog(obs::JsonWriter* w,
                   const std::vector<ReconfigurationEvent>& events);

/// Appends a JSON array of the joint controller's events to \p w; each
/// event lists its per-path changes.
void WriteEventLog(obs::JsonWriter* w,
                   const std::vector<JointReconfigurationEvent>& events);

}  // namespace pathix
