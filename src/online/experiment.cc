#include "online/experiment.h"

#include <map>

#include "exec/analyze.h"

namespace pathix {

namespace {

/// A freshly populated database ready to replay the trace. A nonzero
/// \p buffer_pages enables the buffer pool *after* population, so every
/// replay starts from an identically cold pool.
struct Instance {
  explicit Instance(const TraceSpec& spec, std::size_t buffer_pages = 0)
      : db(spec.schema, spec.catalog.params()), replayer(&db, spec) {
    replayer.Populate();
    if (buffer_pages > 0) db.pager().EnableBuffer(buffer_pages);
  }
  SimDatabase db;
  TraceReplayer replayer;
};

/// The ops-weighted average of the phase mixes of path \p path_index —
/// what a one-shot offline advisor would be handed if the drift were
/// averaged away. The phase weight normalizes over the *whole* phase mix
/// (every path's queries plus the updates), so multi-path averages stay on
/// one common scale.
LoadDistribution AverageMix(const TraceSpec& spec, std::size_t path_index) {
  std::map<ClassId, OpLoad> acc;
  double total_ops = 0;
  for (const TracePhase& phase : spec.phases) {
    double phase_total = 0;
    for (const auto& per_path : phase.queries) {
      for (const auto& [cls, weight] : per_path) {
        (void)cls;
        phase_total += weight;
      }
    }
    for (const auto& [cls, upd] : phase.updates) {
      (void)cls;
      phase_total += upd.insert + upd.del;
    }
    if (phase_total <= 0) continue;
    const double ops = static_cast<double>(phase.ops);
    for (const auto& [cls, l] : phase.mixes[path_index].entries()) {
      OpLoad& a = acc[cls];
      a.query += l.query / phase_total * ops;
      a.insert += l.insert / phase_total * ops;
      a.del += l.del / phase_total * ops;
    }
    total_ops += ops;
  }
  LoadDistribution avg;
  if (total_ops <= 0) return avg;
  for (const auto& [cls, a] : acc) {
    avg.Set(cls, a.query / total_ops, a.insert / total_ops,
            a.del / total_ops);
  }
  return avg;
}

}  // namespace

LoadDistribution TraceAverageMix(const TraceSpec& spec,
                                 std::size_t path_index) {
  return AverageMix(spec, path_index);
}

Result<OptimizeResult> OfflineOptimum(const SimDatabase& db, const Path& path,
                                      const std::vector<IndexOrg>& orgs,
                                      const LoadDistribution& load,
                                      const PhysicalParams& physical_params) {
  // Statistics exactly as the controller's ANALYZE collects them, so the
  // convergence comparison is apples to apples.
  PhysicalParams params = physical_params;
  params.page_size = static_cast<double>(db.pager().page_size());
  const Catalog catalog =
      CollectStatistics(db.store(), db.schema(), path, params);
  Result<PathContext> ctx =
      PathContext::Build(db.schema(), path, catalog, load);
  if (!ctx.ok()) return ctx.status();
  return SelectDP(CostMatrix::Build(ctx.value(), orgs));
}

Result<ExperimentReport> RunOnlineExperiment(const TraceSpec& spec,
                                             const ControllerOptions& options,
                                             std::size_t buffer_pages) {
  for (IndexOrg org : spec.options.orgs) {
    if (org == IndexOrg::kNX || org == IndexOrg::kPX) {
      return Status::FailedPrecondition(
          "NX/PX are model-only candidates; the online experiment runs "
          "physical configurations");
    }
  }
  if (spec.paths.size() != 1) {
    return Status::FailedPrecondition(
        "this is the single-path experiment; multi-path traces run "
        "RunJointOnlineExperiment (joint_experiment.h)");
  }
  const TracePath& tp = spec.paths.front();

  ExperimentReport report;
  ControllerOptions copts = options;
  copts.orgs = spec.options.orgs;
  copts.physical_params = spec.catalog.params();

  // ----------------------------------------------------------- online run
  {
    Instance inst(spec, buffer_pages);
    ReconfigurationController controller(&inst.db, tp.path, copts, tp.id);
    inst.db.SetObserver(&controller);
    report.online_metrics_baseline = inst.db.SnapshotMetrics();
    report.online.label = "online";
    report.online.phases.reserve(spec.phases.size());
    for (std::size_t i = 0; i < spec.phases.size(); ++i) {
      report.online.phases.push_back(inst.replayer.RunPhase(i, &controller));
      controller.MirrorMetrics();
      report.online_phase_metrics.push_back(inst.db.SnapshotMetrics());
    }
    inst.db.SetObserver(nullptr);
    if (!controller.status().ok()) return controller.status();
    report.events = controller.events();
    controller.MirrorMetrics();
    report.online_metrics = inst.db.SnapshotMetrics();
  }

  // ----------------------------------------------------------- oracle run
  {
    Instance inst(spec, buffer_pages);
    report.oracle.label = "oracle";
    for (std::size_t i = 0; i < spec.phases.size(); ++i) {
      Result<OptimizeResult> best =
          OfflineOptimum(inst.db, tp.path, spec.options.orgs,
                         spec.phases[i].mix(), spec.catalog.params());
      if (!best.ok()) return best.status();
      PATHIX_RETURN_IF_ERROR(
          inst.db.ConfigureIndexes(tp.id, best.value().config));
      report.oracle_configs.push_back(best.value().config);
      report.oracle.phases.push_back(
          inst.replayer.RunPhase(i, static_cast<ReconfigurationController*>(
                                        nullptr)));
    }
  }

  // -------------------------------------------------------- static field
  // Candidates: the offline optimum of the averaged mix, plus each phase's
  // optimum — "the best single static configuration" is the cheapest of
  // them on the full trace.
  {
    std::vector<StaticCandidate> candidates;
    Instance stats_inst(spec);
    const auto add_candidate = [&](const std::string& label,
                                   const LoadDistribution& load) -> Status {
      Result<OptimizeResult> best =
          OfflineOptimum(stats_inst.db, tp.path, spec.options.orgs, load,
                         spec.catalog.params());
      if (!best.ok()) return best.status();
      for (const StaticCandidate& c : candidates) {
        if (c.config == best.value().config) return Status::OK();  // dedup
      }
      StaticCandidate c;
      c.label = label;
      c.config = best.value().config;
      candidates.push_back(std::move(c));
      return Status::OK();
    };
    PATHIX_RETURN_IF_ERROR(add_candidate("avg-mix", AverageMix(spec, 0)));
    for (const TracePhase& phase : spec.phases) {
      PATHIX_RETURN_IF_ERROR(
          add_candidate("phase-" + phase.name, phase.mix()));
    }

    for (StaticCandidate& c : candidates) {
      Instance inst(spec, buffer_pages);
      PATHIX_RETURN_IF_ERROR(inst.db.ConfigureIndexes(tp.id, c.config));
      c.run.label = "static:" + c.label;
      for (std::size_t i = 0; i < spec.phases.size(); ++i) {
        c.run.phases.push_back(
            inst.replayer.RunPhase(i, static_cast<ReconfigurationController*>(
                                          nullptr)));
      }
      report.statics.push_back(std::move(c));
    }
    for (std::size_t i = 0; i < report.statics.size(); ++i) {
      if (report.best_static < 0 ||
          report.statics[i].run.total_cost() <
              report.statics[static_cast<std::size_t>(report.best_static)]
                  .run.total_cost()) {
        report.best_static = static_cast<int>(i);
      }
    }
  }

  return report;
}

}  // namespace pathix
