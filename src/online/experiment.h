#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "online/trace.h"

/// \file experiment.h
/// \brief The online-selection experiment: replay one trace three ways and
/// compare page costs.
///
///  - online: cold database, ReconfigurationController attached — pays
///    measured pages plus the modeled transition charge of every switch;
///  - oracle: before each phase, the offline optimum for that phase's
///    *true* mix is installed for free — the per-phase lower bound the
///    regret is measured against;
///  - statics: every candidate single configuration (the offline optimum
///    of the ops-weighted average mix plus each phase's optimum), installed
///    up front and never changed.
///
/// All runs replay the identical operation stream (see trace.h), so the
/// comparison is exact, not sampled.

namespace pathix {

/// One replay of the whole trace.
struct ExperimentRun {
  std::string label;
  std::vector<PhaseReport> phases;

  double measured_pages() const {
    double total = 0;
    for (const PhaseReport& p : phases) total += static_cast<double>(p.pages);
    return total;
  }
  double transition_pages() const {
    double total = 0;
    for (const PhaseReport& p : phases) total += p.transition_pages;
    return total;
  }
  /// Pager-measured transition I/O (actual drops + actual build I/O).
  double measured_transition_pages() const {
    double total = 0;
    for (const PhaseReport& p : phases) total += p.measured_transition_pages;
    return total;
  }
  /// Measured pages plus modeled transition charges.
  double total_cost() const { return measured_pages() + transition_pages(); }
  /// Measured pages plus *measured* transition I/O — the model-free total
  /// the modeled one is validated against.
  double measured_total_cost() const {
    return measured_pages() + measured_transition_pages();
  }
};

/// A never-reconfigured baseline configuration and its replay.
struct StaticCandidate {
  std::string label;
  IndexConfiguration config;
  ExperimentRun run;
};

struct ExperimentReport {
  ExperimentRun online;
  std::vector<ReconfigurationEvent> events;  ///< the online run's switches

  /// The online run's metrics registry (obs/metrics.h), snapshotted twice:
  /// the baseline right after Populate() (whose inserts are counted
  /// traffic) and the final state after the last phase, with pager, part
  /// registry and controller counters mirrored in. Counter deltas between
  /// the two are exactly the replayed operations — the invariant the
  /// obs_smoke cross-check asserts.
  obs::MetricsSnapshot online_metrics_baseline;
  obs::MetricsSnapshot online_metrics;
  /// One snapshot per phase, taken right after the phase finished (counters
  /// mirrored in). DeltaSince between consecutive entries (or the baseline)
  /// is the phase's own window — the per-phase percentile tables of the
  /// decision ledger's phase_summary records.
  std::vector<obs::MetricsSnapshot> online_phase_metrics;

  ExperimentRun oracle;
  std::vector<IndexConfiguration> oracle_configs;  ///< per phase

  std::vector<StaticCandidate> statics;
  int best_static = -1;  ///< index of the cheapest static candidate

  double best_static_cost() const {
    return best_static >= 0 ? statics[static_cast<std::size_t>(best_static)]
                                  .run.total_cost()
                            : 0;
  }
  /// online / best-static (< 1 means adapting beat every fixed choice).
  double online_vs_best_static() const {
    const double base = best_static_cost();
    return base > 0 ? online.total_cost() / base : 1.0;
  }
  /// online / oracle — the regret factor versus per-phase clairvoyance.
  double online_vs_oracle() const {
    const double base = oracle.total_cost();
    return base > 0 ? online.total_cost() / base : 1.0;
  }
};

/// Replays \p spec's trace online / oracle / static and assembles the
/// report. Deterministic for a fixed spec (including its seed).
/// Single-path traces only; multi-path traces run RunJointOnlineExperiment
/// (joint_experiment.h).
///
/// \p buffer_pages > 0 serves every run (online, oracle, statics) through a
/// buffer pool of that capacity, enabled after Populate() so each replay
/// starts from the same cold pool. 0 (the default) keeps the cost-model's
/// cold-buffer assumption: every touch is a charged page access.
Result<ExperimentReport> RunOnlineExperiment(const TraceSpec& spec,
                                             const ControllerOptions& options,
                                             std::size_t buffer_pages = 0);

/// The ops-weighted average of the trace's phase mixes for one path — the
/// load a one-shot offline advisor would be handed if the drift were
/// averaged away. Multi-path averages share one normalization scale.
LoadDistribution TraceAverageMix(const TraceSpec& spec,
                                 std::size_t path_index);

/// The offline optimum (O(n^2) DP on the full cost matrix) for \p load on
/// statistics collected live from \p db, under \p physical_params (the
/// page size is always taken from the database's pager). Exposed for tests
/// comparing the online controller's convergence point against the offline
/// pick.
Result<OptimizeResult> OfflineOptimum(const SimDatabase& db, const Path& path,
                                      const std::vector<IndexOrg>& orgs,
                                      const LoadDistribution& load,
                                      const PhysicalParams& physical_params = {});

}  // namespace pathix
