#include "online/joint_controller.h"

#include <chrono>
#include <map>
#include <optional>
#include <utility>

#include "costmodel/subpath_cost.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace pathix {

JointReconfigurationController::JointReconfigurationController(
    SimDatabase* db, ControllerOptions options)
    : db_(db),
      options_(std::move(options)),
      path_ids_(db->path_ids()),
      monitor_(options_.half_life_ops),
      events_(options_.max_event_log),
      decisions_(options_.max_decision_log) {
  cadence_.Init(options_);
  scopes_.reserve(path_ids_.size());
  for (const PathId& id : path_ids_) {
    const std::vector<ClassId> scope_vec = db_->path(id).Scope(db_->schema());
    scopes_.emplace_back(scope_vec.begin(), scope_vec.end());
  }
  if (path_ids_.empty()) {
    status_ = Status::FailedPrecondition(
        "no paths registered; RegisterPath the workload before attaching "
        "the joint controller");
    dormant_.store(true, std::memory_order_relaxed);
  }
}

void JointReconfigurationController::OnOperation(const DbOpEvent& ev) {
  monitor_.Observe(ev);
  if (dormant_.load(std::memory_order_relaxed)) return;
  const std::uint64_t ops = monitor_.ops_observed();
  if (ops < options_.warmup_ops) return;
  // Same arbitration as ReconfigurationController: lock-free hint, then a
  // non-blocking claim — one thread checks, the rest keep serving.
  if (ops < next_check_hint_.load(std::memory_order_relaxed)) return;
  if (!check_mu_.TryLock()) return;
  if (status_.ok() && cadence_.Due(ops)) {
    cadence_.Reschedule(ops, Check());
    next_check_hint_.store(cadence_.next_check(), std::memory_order_relaxed);
    if (!status_.ok()) dormant_.store(true, std::memory_order_relaxed);
  }
  check_mu_.Unlock();
}

void JointReconfigurationController::CheckNow() {
  MutexLock lock(&check_mu_);
  if (status_.ok()) Check();
  if (!status_.ok()) dormant_.store(true, std::memory_order_relaxed);
}

bool JointReconfigurationController::Check() {
  obs::ObsSpan check_span(&obs::GlobalTracer(), "joint_drift_check",
                          "controller");
  ++checks_;

  // Every exit path of the check — hold or commit — lands this record on
  // the decision ledger, so the audit trail has no gaps.
  DecisionRecord rec;
  rec.check_number = checks_;
  rec.op_index = monitor_.ops_observed();
  rec.controller = "joint";
  const auto hold = [&](const char* reason) {
    rec.verdict = "hold";
    rec.hold_reason = reason;
    decisions_.Append(std::move(rec));
    return false;
  };

  std::vector<const Path*> paths;
  paths.reserve(path_ids_.size());
  for (const PathId& id : path_ids_) paths.push_back(&db_->path(id));
  // A statistics refresh invalidates the pool's cached skeleton (the
  // fingerprint would catch it too; the explicit call keeps the contract
  // visible and covers fingerprint collisions).
  if (analyzer_.Refresh(*db_, paths, options_)) pool_builder_.Invalidate();

  if (monitor_.DecayedTotal() <= 0) return hold("no_traffic");

  std::optional<obs::ObsSpan> solve_span;
  solve_span.emplace(&obs::GlobalTracer(), "joint_re_solve", "controller");
  const auto solve_start = std::chrono::steady_clock::now();

  // The workload as currently estimated: per-path query loads, shared
  // update loads — all on one normalization scale.
  std::vector<PathWorkload> workloads;
  std::vector<PathContext> ctxs;
  workloads.reserve(path_ids_.size());
  ctxs.reserve(path_ids_.size());
  for (std::size_t i = 0; i < path_ids_.size(); ++i) {
    PathWorkload w;
    w.path = *paths[i];
    w.load = monitor_.EstimatedLoadFor(path_ids_[i], scopes_[i]);
    AppendLoadEntries(db_->schema(), path_ids_[i], w.load, &rec);
    rec.naive_pages.push_back(DecisionNaivePages{
        path_ids_[i], monitor_.MeasuredNaiveQueryPagesPerOp(path_ids_[i])});
    Result<PathContext> ctx = PathContext::Build(db_->schema(), *paths[i],
                                                 analyzer_.catalog(), w.load);
    if (!ctx.ok()) {
      status_ = ctx.status();
      return hold("error");
    }
    ctxs.push_back(std::move(ctx).value());
    workloads.push_back(std::move(w));
  }

  AdvisorOptions advisor_options;
  advisor_options.orgs = options_.orgs;
  Result<CandidatePool> pool = pool_builder_.Build(
      db_->schema(), analyzer_.catalog(), workloads, advisor_options);
  if (!pool.ok()) {
    status_ = pool.status();
    return hold("error");
  }
  JointOptions joint_options;
  joint_options.storage_budget_bytes = options_.storage_budget_bytes;
  joint_options.capture_alternatives = options_.decision_top_k;
  Result<JointSelectionResult> joint =
      SelectJointConfiguration(pool.value(), joint_options);
  if (!joint.ok()) {
    status_ = joint.status();
    return hold("error");
  }
  const double solve_us =
      std::chrono::duration<double, std::micro>(
          std::chrono::steady_clock::now() - solve_start)
          .count();
  solve_span.reset();  // a committed change traces as a sibling span

  // Search effort, into the ledger (deterministic) and the metrics
  // (the re-solve duration is wall-clock, so it lives *only* here).
  obs::MetricsRegistry& metrics = db_->metrics();
  metrics
      .CounterAt("pathix_advisor_nodes_explored_total",
                 {{"controller", "joint"}})
      .Increment(static_cast<double>(joint.value().nodes_explored));
  metrics
      .CounterAt("pathix_advisor_nodes_pruned_total",
                 {{"controller", "joint"}})
      .Increment(static_cast<double>(joint.value().nodes_pruned));
  metrics
      .HistogramAt("pathix_advisor_resolve_duration_us",
                   {{"controller", "joint"}})
      .Observe(solve_us);
  metrics.CounterAt("pathix_advisor_pool_cache_hits_total")
      .MirrorTo(static_cast<double>(pool_builder_.cache_hits()));
  rec.search.pool_entries =
      static_cast<long>(pool.value().entries().size());
  rec.search.configs_enumerated = joint.value().configs_enumerated;
  rec.search.nodes_explored = joint.value().nodes_explored;
  rec.search.nodes_pruned = joint.value().nodes_pruned;
  rec.search.used_branch_and_bound = joint.value().used_branch_and_bound;
  rec.search.lower_bound = joint.value().lower_bound;
  rec.search.bound_gap = joint.value().total_cost - joint.value().lower_bound;
  rec.search.has_greedy_seed = joint.value().has_greedy_seed;
  rec.search.greedy_seed_cost = joint.value().greedy_cost;
  rec.search.greedy_seed_gap =
      joint.value().greedy_cost - joint.value().total_cost;
  rec.search.greedy_seed_feasible = joint.value().greedy_feasible;

  // The scored candidate list: the winning assignment's per-path entries
  // first, then the single-swap alternatives with their why-not margins.
  for (std::size_t i = 0; i < path_ids_.size(); ++i) {
    DecisionCandidate cand;
    cand.path = path_ids_[i];
    cand.config = joint.value().per_path[i].config.ToString(db_->schema(),
                                                            *paths[i]);
    cand.cost_per_op = joint.value().total_cost;
    cand.storage_bytes = joint.value().total_storage_bytes;
    cand.chosen = true;
    cand.current = db_->has_indexes(path_ids_[i]) &&
                   db_->physical(path_ids_[i]).config() ==
                       joint.value().per_path[i].config;
    rec.candidates.push_back(std::move(cand));
  }
  for (const JointCandidateScore& alt : joint.value().alternatives) {
    const auto pi = static_cast<std::size_t>(alt.path_index);
    DecisionCandidate cand;
    cand.path = path_ids_[pi];
    cand.config = alt.config.ToString(db_->schema(), *paths[pi]);
    cand.cost_per_op = alt.total_cost;
    cand.cost_delta = alt.total_cost - joint.value().total_cost;
    cand.storage_bytes = alt.total_storage_bytes;
    cand.violates_budget = !alt.within_budget;
    cand.current = db_->has_indexes(path_ids_[pi]) &&
                   db_->physical(path_ids_[pi]).config() == alt.config;
    cand.why_not = alt.within_budget ? "costlier" : "over_budget";
    rec.candidates.push_back(std::move(cand));
  }

  bool any_configured = false;
  for (const PathId& id : path_ids_) {
    if (db_->has_indexes(id)) any_configured = true;
  }

  // Transition pricing always sees the whole workload, so a part moving
  // between paths (or staying put anywhere) is free.
  std::vector<PathTransition> transitions(path_ids_.size());
  for (std::size_t i = 0; i < path_ids_.size(); ++i) {
    transitions[i].ctx = &ctxs[i];
    transitions[i].current =
        db_->has_indexes(path_ids_[i]) ? &db_->physical(path_ids_[i]) : nullptr;
    transitions[i].target = &joint.value().per_path[i].config;
  }

  // Quiet check (the stationary common case the adaptive cadence targets):
  // nothing to price when the solver re-picks the installed assignment. An
  // unconfigured path always constitutes a change — its target is a fresh
  // install.
  bool changed = false;
  for (std::size_t i = 0; i < path_ids_.size(); ++i) {
    if (!db_->has_indexes(path_ids_[i]) ||
        !(db_->physical(path_ids_[i]).config() ==
          joint.value().per_path[i].config)) {
      changed = true;
      break;
    }
  }
  if (!changed) return hold("already_optimal");

  // Current assignment priced under the same shared accounting as the
  // solver's objective: query+prefix per use, maintenance once per distinct
  // physical structure (the maximum across its uses). Parts whose
  // organization is outside the candidate set are priced directly from the
  // model (they still share by structural identity). An *unconfigured*
  // path's status quo is priced from the pager: the measured naive-scan
  // pages per operation the monitor observed — so the first install is
  // hysteresis-gated like any other transition instead of firing
  // unconditionally.
  double current_cost = 0;
  std::map<StructuralKey, double> placed_maintain;
  for (std::size_t i = 0; i < path_ids_.size(); ++i) {
    if (!db_->has_indexes(path_ids_[i])) {
      current_cost += monitor_.MeasuredNaiveQueryPagesPerOp(path_ids_[i]);
      continue;
    }
    const IndexConfiguration& config = db_->physical(path_ids_[i]).config();
    for (const IndexedSubpath& part : config.parts()) {
      double qp = 0;
      double maintain = 0;
      const int entry =
          pool.value().EntryFor(static_cast<int>(i), part.subpath, part.org);
      if (entry >= 0) {
        const CandidateUse& use = pool.value().UseFor(
            static_cast<int>(i), part.subpath, part.org);
        qp = use.query_prefix;
        maintain = use.maintain;
      } else {
        const SubpathCost cost = ComputeSubpathCost(
            ctxs[i], part.subpath.start, part.subpath.end, part.org);
        qp = cost.query + cost.prefix;
        maintain = cost.maintain + cost.boundary;
      }
      current_cost += AccumulateSharedPartCost(*paths[i], part, qp, maintain,
                                               &placed_maintain);
    }
  }

  const double savings = current_cost - joint.value().total_cost;
  DecisionHysteresis& hyst = rec.hysteresis;
  hyst.horizon_ops = options_.horizon_ops;
  hyst.theta = options_.hysteresis;
  hyst.current_cost_per_op = current_cost;
  hyst.current_is_measured_naive = !any_configured;
  hyst.best_cost_per_op = joint.value().total_cost;
  hyst.savings_per_op = savings;
  if (savings <= 0) return hold("no_savings");

  const TransitionCost transition =
      EstimateJointTransitionCost(transitions, db_->store());
  hyst.evaluated = true;
  hyst.lhs_pages = savings * options_.horizon_ops;
  hyst.modeled = transition;
  hyst.rhs_modeled_pages = options_.hysteresis * transition.total();
  if (hyst.lhs_pages <= hyst.rhs_modeled_pages) {
    for (DecisionCandidate& cand : rec.candidates) {
      if (cand.chosen) cand.why_not = "hysteresis";
    }
    return hold("hysteresis");
  }
  hyst.passed = true;

  JointReconfigurationEvent ev;
  ev.op_index = monitor_.ops_observed();
  ev.initial = !any_configured;
  ev.predicted_savings_per_op = savings;
  ev.transition = transition;
  return Commit(joint.value().per_path, std::move(ev), std::move(rec));
}

bool JointReconfigurationController::Commit(
    const std::vector<JointPathSelection>& targets,
    JointReconfigurationEvent ev, DecisionRecord rec) {
  std::vector<std::pair<PathId, IndexConfiguration>> changes;
  changes.reserve(path_ids_.size());
  for (std::size_t i = 0; i < path_ids_.size(); ++i) {
    const IndexConfiguration& target = targets[i].config;
    const bool installed = db_->has_indexes(path_ids_[i]);
    if (installed && db_->physical(path_ids_[i]).config() == target) {
      continue;
    }
    JointReconfigurationEvent::PathChange change;
    change.path = path_ids_[i];
    if (installed) change.from = db_->physical(path_ids_[i]).config();
    change.to = target;
    ev.changes.push_back(std::move(change));
    changes.emplace_back(path_ids_[i], target);
  }
  obs::ObsSpan commit_span(&obs::GlobalTracer(), "joint_reconfigure",
                           "controller");
  const AccessStats built_before = db_->registry().cumulative_build_io();
  const Status committed = db_->ReconfigureIndexes(changes);
  if (!committed.ok()) {
    status_ = committed;
    rec.verdict = "hold";
    rec.hold_reason = "error";
    decisions_.Append(std::move(rec));
    return false;
  }
  ev.measured = MeasuredTransitionCost(
      ev.transition, db_->registry().cumulative_build_io() - built_before);
  transition_charged_ += ev.transition.total();
  measured_transition_charged_ += ev.measured.total();
  commit_span.AddArg("initial", ev.initial ? "true" : "false");
  commit_span.AddArg("paths_changed", static_cast<double>(ev.changes.size()));
  commit_span.AddArg("modeled_pages", ev.transition.total());
  commit_span.AddArg("measured_pages", ev.measured.total());
  rec.hysteresis.has_measured = true;
  rec.hysteresis.measured = ev.measured;
  rec.hysteresis.rhs_measured_pages =
      options_.hysteresis * ev.measured.total();
  rec.verdict = ev.initial ? "install" : "switch";
  decisions_.Append(std::move(rec));
  events_.Append(std::move(ev));
  return true;
}

void JointReconfigurationController::MirrorMetrics() const {
  obs::MetricsRegistry& m = db_->metrics();
  m.CounterAt("pathix_controller_checks_total")
      .MirrorTo(static_cast<double>(checks_));
  m.CounterAt("pathix_controller_reconfigurations_total")
      .MirrorTo(static_cast<double>(events_.committed()));
  m.CounterAt("pathix_controller_events_evicted_total")
      .MirrorTo(static_cast<double>(events_.evicted()));
  m.CounterAt("pathix_controller_transition_pages_total",
              {{"kind", "modeled"}})
      .MirrorTo(transition_charged_);
  m.CounterAt("pathix_controller_transition_pages_total",
              {{"kind", "measured"}})
      .MirrorTo(measured_transition_charged_);
  monitor_.ExportMetrics(&m);
}

}  // namespace pathix
