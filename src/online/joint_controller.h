#pragma once

#include <atomic>
#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "advisor/joint_optimizer.h"
#include "online/controller.h"

/// \file joint_controller.h
/// \brief Multi-path online index selection: one controller watching *all*
/// registered paths of a SimDatabase, re-solving the workload advisor's
/// joint, storage-budgeted selection problem on every drift check.
///
/// This closes the loop the ROADMAP names: PR 2's SelectJointConfiguration
/// knows how to pick one configuration per path under a shared storage
/// budget with pay-maintenance-once accounting, PR 3's controller knows how
/// to watch a live database and reconfigure with hysteresis — the
/// JointReconfigurationController does both at once. Its per-check costs
/// and transition prices use the same shared-part accounting the physical
/// layer now implements (PhysicalPartRegistry): an index shared between
/// paths is maintained once, stored once, and free to "build" for a path
/// when another path already holds it.
///
/// With exactly one registered path and an infinite budget the controller
/// degenerates to ReconfigurationController — the same monitor estimates,
/// the same cadence, the same hysteresis rule, the same transition prices —
/// and the equivalence property test pins the two event logs to be
/// identical.

namespace pathix {

/// One committed joint reconfiguration (including the initial install).
struct JointReconfigurationEvent {
  /// One path's side of the change. Only changed paths are listed.
  struct PathChange {
    PathId path;
    IndexConfiguration from;  ///< empty on the initial install
    IndexConfiguration to;
  };

  std::uint64_t op_index = 0;  ///< operations observed when it happened
  bool initial = false;        ///< first install (nothing was configured)
  std::vector<PathChange> changes;  ///< ordered by path id
  /// current - best under the joint shared accounting; unconfigured paths'
  /// current cost is their *measured* naive-scan pages per operation.
  double predicted_savings_per_op = 0;
  TransitionCost transition;  ///< modeled price (shared parts charged once)
  /// Pager-measured price, recorded after the commit: drops from actual
  /// structure pages (as modeled), scan/write from the build I/O of the
  /// parts the registry actually built.
  TransitionCost measured;
};

/// \brief Attach with db->SetObserver(&controller); detach before either
/// dies. The controller manages every path registered with the database at
/// construction time. All controller work (ANALYZE, solving, index builds)
/// is uncounted; the modeled transition price is accumulated in
/// transition_pages_charged() so experiment totals can include it.
///
/// Thread safety: same protocol as ReconfigurationController — the monitor
/// absorbs observations from any number of serving threads; a due drift
/// check is claimed by exactly one thread via TryLock on the check mutex
/// (everyone else skips past without blocking), and its commit runs while
/// the other threads keep serving: in-flight queries finish on the old
/// configuration epochs (SimDatabase's epoch swap). Inspection accessors
/// are for quiescent use.
class JointReconfigurationController : public DbOpObserver {
 public:
  /// \p db must already have its workload paths registered
  /// (SimDatabase::RegisterPath); the controller snapshots the id list.
  /// options.storage_budget_bytes caps the total bytes of the distinct
  /// physical indexes the joint solver may choose.
  explicit JointReconfigurationController(SimDatabase* db,
                                          ControllerOptions options = {});

  void OnOperation(const DbOpEvent& ev) override;

  /// Runs a drift check now, regardless of the check interval.
  void CheckNow();

  const WorkloadMonitor& monitor() const { return monitor_; }
  const ScopedAnalyzer& analyzer() const { return analyzer_; }
  const DriftCadence& cadence() const { return cadence_; }
  const std::vector<PathId>& path_ids() const { return path_ids_; }

  /// The retained event log (the newest ControllerOptions::max_event_log
  /// events; everything when the bound is 0).
  const std::vector<JointReconfigurationEvent>& events() const {
    return events_.events();
  }
  /// All-time committed reconfigurations (eviction-proof — use this, not
  /// events().size(), for counting).
  std::uint64_t events_committed() const { return events_.committed(); }
  /// Events dropped from the retained log by the ring-buffer bound.
  std::uint64_t events_evicted() const { return events_.evicted(); }

  /// The retained decision ledger: one record per drift check (the newest
  /// ControllerOptions::max_decision_log records; everything when 0).
  const std::vector<DecisionRecord>& decisions() const {
    return decisions_.events();
  }
  /// All-time decision records captured (eviction-proof).
  std::uint64_t decisions_committed() const { return decisions_.committed(); }
  std::uint64_t decisions_evicted() const { return decisions_.evicted(); }

  /// Modeled page cost of every committed transition so far.
  double transition_pages_charged() const { return transition_charged_; }

  /// Pager-measured page cost of every committed transition so far (the
  /// events' .measured totals).
  double measured_transition_pages_charged() const {
    return measured_transition_charged_;
  }

  std::uint64_t checks_run() const { return checks_; }

  /// Mirrors the controller's counters (checks, committed/evicted events,
  /// modeled and measured transition pages) and the monitor's drift gauges
  /// into the database's metrics registry. Call before exporting.
  void MirrorMetrics() const;

  /// First error the control loop hit; the controller goes dormant after
  /// an error rather than flapping.
  const Status& status() const { return status_; }

 private:
  /// Returns true when a reconfiguration was committed.
  bool Check();

  /// Fills \p ev.changes with every path whose installed configuration
  /// differs from its target, commits them as one batch reconfigure,
  /// accumulates the transition charge and records the event and its
  /// decision record \p rec (measured side + verdict filled here). Returns
  /// false (and sets status_) on a commit error.
  bool Commit(const std::vector<JointPathSelection>& targets,
              JointReconfigurationEvent ev, DecisionRecord rec);

  SimDatabase* db_;
  ControllerOptions options_;
  std::vector<PathId> path_ids_;          ///< sorted (database id order)
  std::vector<std::set<ClassId>> scopes_;  ///< per path, same order
  WorkloadMonitor monitor_;

  /// Serializes drift checks and protects everything below it (see
  /// ReconfigurationController for the protocol).
  mutable Mutex check_mu_;
  std::atomic<std::uint64_t> next_check_hint_{0};
  std::atomic<bool> dormant_{false};

  DriftCadence cadence_;
  ScopedAnalyzer analyzer_;
  /// Candidate pool cached across drift checks: the pool's skeleton and
  /// unit costs depend on the catalog statistics and the path set, not the
  /// drifting load, so models are re-evaluated only when
  /// ScopedAnalyzer::Refresh re-collects a class
  /// (pathix_advisor_pool_cache_hits_total counts the reuses).
  CandidatePoolBuilder pool_builder_;

  BoundedEventLog<JointReconfigurationEvent> events_;
  BoundedEventLog<DecisionRecord> decisions_;
  double transition_charged_ = 0;
  double measured_transition_charged_ = 0;
  std::uint64_t checks_ = 0;
  Status status_;
};

}  // namespace pathix
