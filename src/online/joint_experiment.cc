#include "online/joint_experiment.h"

#include <set>
#include <utility>

#include "exec/analyze.h"

namespace pathix {

namespace {

/// A freshly populated database with every path registered, ready to
/// replay the trace. A nonzero \p buffer_pages enables the buffer pool
/// *after* population, so every replay starts from an identically cold pool.
struct Instance {
  explicit Instance(const TraceSpec& spec, std::size_t buffer_pages = 0)
      : db(spec.schema, spec.catalog.params()), replayer(&db, spec) {
    replayer.Populate();
    if (buffer_pages > 0) db.pager().EnableBuffer(buffer_pages);
  }
  SimDatabase db;
  TraceReplayer replayer;
};

/// Statistics exactly as the joint controller's scoped ANALYZE collects
/// them on first refresh (everything in every path's scope, shared
/// (class, attribute) pairs scanned once), so oracle and static solves are
/// apples to apples with the online run.
Catalog CollectWorkloadStatistics(const SimDatabase& db, const TraceSpec& spec) {
  PhysicalParams params = spec.catalog.params();
  params.page_size = static_cast<double>(db.pager().page_size());
  Catalog catalog(params);
  std::set<std::pair<ClassId, std::string>> collected;
  for (const TracePath& tp : spec.paths) {
    std::set<ClassId> scope;
    const std::vector<ClassId> scope_vec = tp.path.Scope(db.schema());
    scope.insert(scope_vec.begin(), scope_vec.end());
    RefreshStatistics(db.store(), db.schema(), tp.path, scope, &catalog,
                      &collected);
  }
  return catalog;
}

/// The joint optimum for the given per-path loads under the spec's budget,
/// on \p catalog (live statistics of the database the replay runs on).
Result<std::vector<IndexConfiguration>> SolveJoint(
    const SimDatabase& db, const TraceSpec& spec,
    const std::vector<LoadDistribution>& loads, const Catalog& catalog) {
  std::vector<PathWorkload> workloads;
  workloads.reserve(spec.paths.size());
  for (std::size_t p = 0; p < spec.paths.size(); ++p) {
    PathWorkload w;
    w.name = spec.paths[p].id;
    w.path = spec.paths[p].path;
    w.load = loads[p];
    workloads.push_back(std::move(w));
  }
  AdvisorOptions advisor_options;
  advisor_options.orgs = spec.options.orgs;
  Result<CandidatePool> pool =
      CandidatePool::Build(db.schema(), catalog, workloads, advisor_options);
  if (!pool.ok()) return pool.status();
  JointOptions joint_options;
  joint_options.storage_budget_bytes = spec.storage_budget_bytes;
  Result<JointSelectionResult> joint =
      SelectJointConfiguration(pool.value(), joint_options);
  if (!joint.ok()) return joint.status();
  std::vector<IndexConfiguration> configs;
  configs.reserve(spec.paths.size());
  for (const JointPathSelection& sel : joint.value().per_path) {
    configs.push_back(sel.config);
  }
  return configs;
}

/// Installs one configuration per path (uncounted).
Status InstallAll(Instance* inst, const TraceSpec& spec,
                  const std::vector<IndexConfiguration>& configs) {
  std::vector<std::pair<PathId, IndexConfiguration>> changes;
  changes.reserve(spec.paths.size());
  for (std::size_t p = 0; p < spec.paths.size(); ++p) {
    changes.emplace_back(spec.paths[p].id, configs[p]);
  }
  return inst->db.ReconfigureIndexes(changes);
}

}  // namespace

Result<JointExperimentReport> RunJointOnlineExperiment(
    const TraceSpec& spec, const ControllerOptions& options,
    std::size_t buffer_pages) {
  for (IndexOrg org : spec.options.orgs) {
    if (org == IndexOrg::kNX || org == IndexOrg::kPX) {
      return Status::FailedPrecondition(
          "NX/PX are model-only candidates; the online experiment runs "
          "physical configurations");
    }
  }
  if (spec.paths.empty()) {
    return Status::InvalidArgument("trace spec declares no paths");
  }

  JointExperimentReport report;
  ControllerOptions copts = options;
  copts.orgs = spec.options.orgs;
  copts.physical_params = spec.catalog.params();
  copts.storage_budget_bytes = spec.storage_budget_bytes;

  // ----------------------------------------------------------- online run
  {
    Instance inst(spec, buffer_pages);
    JointReconfigurationController controller(&inst.db, copts);
    inst.db.SetObserver(&controller);
    report.online_metrics_baseline = inst.db.SnapshotMetrics();
    report.online.label = "online-joint";
    report.online.phases.reserve(spec.phases.size());
    for (std::size_t i = 0; i < spec.phases.size(); ++i) {
      report.online.phases.push_back(inst.replayer.RunPhase(i, &controller));
      controller.MirrorMetrics();
      report.online_phase_metrics.push_back(inst.db.SnapshotMetrics());
    }
    inst.db.SetObserver(nullptr);
    if (!controller.status().ok()) return controller.status();
    report.events = controller.events();
    controller.MirrorMetrics();
    report.online_metrics = inst.db.SnapshotMetrics();
  }

  // ----------------------------------------------------- joint oracle run
  {
    Instance inst(spec, buffer_pages);
    report.oracle.label = "oracle-joint";
    for (std::size_t i = 0; i < spec.phases.size(); ++i) {
      // The replay mutates the store between phases, so the oracle
      // re-collects per phase — just like the online run's scoped ANALYZE.
      Result<std::vector<IndexConfiguration>> best = SolveJoint(
          inst.db, spec, spec.phases[i].mixes,
          CollectWorkloadStatistics(inst.db, spec));
      if (!best.ok()) return best.status();
      PATHIX_RETURN_IF_ERROR(InstallAll(&inst, spec, best.value()));
      report.oracle_configs.push_back(best.value());
      report.oracle.phases.push_back(inst.replayer.RunPhase(
          i, static_cast<JointReconfigurationController*>(nullptr)));
    }
  }

  // -------------------------------------------------------- static field
  {
    std::vector<JointStaticCandidate> candidates;
    Instance stats_inst(spec);
    // One catalog serves every static solve: stats_inst is populated once
    // and never replayed.
    const Catalog stats_catalog =
        CollectWorkloadStatistics(stats_inst.db, spec);
    const auto add_candidate =
        [&](const std::string& label, bool respects_budget,
            const std::vector<IndexConfiguration>& configs) {
          for (const JointStaticCandidate& c : candidates) {
            if (c.configs == configs) return;  // dedup identical assignments
          }
          JointStaticCandidate c;
          c.label = label;
          c.respects_budget = respects_budget;
          c.configs = configs;
          candidates.push_back(std::move(c));
        };

    // The joint optimum of the averaged mixes, and of each phase's mixes —
    // all solved under the budget.
    std::vector<LoadDistribution> avg;
    avg.reserve(spec.paths.size());
    for (std::size_t p = 0; p < spec.paths.size(); ++p) {
      avg.push_back(TraceAverageMix(spec, p));
    }
    Result<std::vector<IndexConfiguration>> joint_avg =
        SolveJoint(stats_inst.db, spec, avg, stats_catalog);
    if (!joint_avg.ok()) return joint_avg.status();
    add_candidate("joint-avg", true, joint_avg.value());
    for (const TracePhase& phase : spec.phases) {
      Result<std::vector<IndexConfiguration>> joint_phase =
          SolveJoint(stats_inst.db, spec, phase.mixes, stats_catalog);
      if (!joint_phase.ok()) return joint_phase.status();
      add_candidate("joint-phase-" + phase.name, true, joint_phase.value());
    }

    // The unbudgeted per-path independent optima on the averaged mixes.
    // Physically this coincides with the greedy merge (identical structures
    // share through the registry either way); it may bust the budget and is
    // reported as the what-unlimited-storage-buys baseline.
    {
      std::vector<IndexConfiguration> configs;
      configs.reserve(spec.paths.size());
      for (std::size_t p = 0; p < spec.paths.size(); ++p) {
        Result<OptimizeResult> best =
            OfflineOptimum(stats_inst.db, spec.paths[p].path,
                           spec.options.orgs, avg[p], spec.catalog.params());
        if (!best.ok()) return best.status();
        configs.push_back(best.value().config);
      }
      add_candidate("independent-greedy", false, configs);
    }

    for (JointStaticCandidate& c : candidates) {
      Instance inst(spec, buffer_pages);
      PATHIX_RETURN_IF_ERROR(InstallAll(&inst, spec, c.configs));
      c.run.label = "static:" + c.label;
      for (std::size_t i = 0; i < spec.phases.size(); ++i) {
        c.run.phases.push_back(inst.replayer.RunPhase(
            i, static_cast<JointReconfigurationController*>(nullptr)));
      }
      report.statics.push_back(std::move(c));
    }
    for (std::size_t i = 0; i < report.statics.size(); ++i) {
      if (!report.statics[i].respects_budget) continue;
      if (report.best_static_joint < 0 ||
          report.statics[i].run.total_cost() <
              report.statics[static_cast<std::size_t>(
                                 report.best_static_joint)]
                  .run.total_cost()) {
        report.best_static_joint = static_cast<int>(i);
      }
    }
  }

  return report;
}

}  // namespace pathix
