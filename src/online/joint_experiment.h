#pragma once

#include <string>
#include <vector>

#include "online/experiment.h"
#include "online/joint_controller.h"
#include "online/trace.h"

/// \file joint_experiment.h
/// \brief The multi-path online-selection experiment: replay one multi-path
/// trace several ways and compare page costs.
///
///  - online: cold database with every path registered, a
///    JointReconfigurationController attached — pays measured pages plus
///    the modeled joint transition charge of every switch, and its
///    selections respect the spec's storage budget;
///  - joint oracle: before each phase, the joint optimum (under the same
///    budget) for that phase's *true* per-path mixes is installed for free —
///    the per-phase lower bound the regret is measured against;
///  - statics: never-reconfigured assignments, installed up front: the
///    *joint* optimum of the ops-weighted average mixes and of each phase's
///    mixes (all budget-feasible by construction), plus the unbudgeted
///    per-path independent optima (physically identical to the greedy
///    merge, since the registry shares identical structures either way) as
///    the context baseline.
///
/// All runs replay the identical operation stream (see trace.h), so the
/// comparison is exact, not sampled. The acceptance envelope compares the
/// online run against the best *budget-feasible* static (the independent
/// baseline may exceed the budget and only bounds what unlimited storage
/// would buy).

namespace pathix {

/// A never-reconfigured assignment (one configuration per path) and its
/// replay.
struct JointStaticCandidate {
  std::string label;
  bool respects_budget = false;  ///< solved under the spec's budget
  std::vector<IndexConfiguration> configs;  ///< parallel to spec.paths
  ExperimentRun run;
};

struct JointExperimentReport {
  ExperimentRun online;
  std::vector<JointReconfigurationEvent> events;  ///< online run's switches

  /// The online run's metrics registry (obs/metrics.h), snapshotted twice:
  /// the baseline right after Populate() and the final state after the last
  /// phase with pager, part registry and controller counters mirrored in.
  /// Counter deltas between the two are exactly the replayed operations —
  /// the invariant the obs_smoke cross-check asserts.
  obs::MetricsSnapshot online_metrics_baseline;
  obs::MetricsSnapshot online_metrics;
  /// One snapshot per phase, taken right after the phase finished (counters
  /// mirrored in). DeltaSince between consecutive entries (or the baseline)
  /// is the phase's own window — the per-phase percentile tables of the
  /// decision ledger's phase_summary records.
  std::vector<obs::MetricsSnapshot> online_phase_metrics;

  ExperimentRun oracle;
  /// Per phase, per path: the joint oracle's installed configurations.
  std::vector<std::vector<IndexConfiguration>> oracle_configs;

  std::vector<JointStaticCandidate> statics;
  int best_static_joint = -1;  ///< cheapest budget-respecting static

  double best_static_joint_cost() const {
    return best_static_joint >= 0
               ? statics[static_cast<std::size_t>(best_static_joint)]
                     .run.total_cost()
               : 0;
  }
  /// online / best budget-feasible static (< 1: adapting beat every fixed
  /// budget-respecting choice).
  double online_vs_best_static_joint() const {
    const double base = best_static_joint_cost();
    return base > 0 ? online.total_cost() / base : 1.0;
  }
  /// online / joint oracle — the regret factor versus per-phase
  /// clairvoyance under the same budget.
  double online_vs_oracle() const {
    const double base = oracle.total_cost();
    return base > 0 ? online.total_cost() / base : 1.0;
  }
};

/// Replays \p spec's multi-path trace online / joint-oracle / static and
/// assembles the report. Deterministic for a fixed spec (including its
/// seed). Works for single-path specs too (the degenerate case), but the
/// single-path pipeline in experiment.h reports richer per-candidate
/// statics there.
///
/// \p buffer_pages > 0 serves every run through a buffer pool of that
/// capacity, enabled after Populate() so each replay starts from the same
/// cold pool (see RunOnlineExperiment).
Result<JointExperimentReport> RunJointOnlineExperiment(
    const TraceSpec& spec, const ControllerOptions& options,
    std::size_t buffer_pages = 0);

}  // namespace pathix
