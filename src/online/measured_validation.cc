#include "online/measured_validation.h"

#include <map>
#include <set>
#include <utility>

#include "core/structural_key.h"
#include "costmodel/subpath_cost.h"
#include "exec/analyze.h"
#include "online/experiment.h"
#include "online/joint_experiment.h"

namespace pathix {

namespace {

/// Counts the replay's operations per kind and, for queries, per path —
/// the denominators of the per-op comparisons.
class OpCounter : public DbOpObserver {
 public:
  void OnOperation(const DbOpEvent& ev) override {
    if (ev.kind == DbOpKind::kQuery) ++query_ops_[PathId(ev.path)];
  }

  std::uint64_t query_ops(const PathId& path) const {
    const auto it = query_ops_.find(path);
    return it == query_ops_.end() ? 0 : it->second;
  }
  void Reset() { query_ops_.clear(); }

 private:
  std::map<PathId, std::uint64_t> query_ops_;
};

/// Statistics exactly as the controllers' scoped ANALYZE collects them
/// (everything in every path's scope, shared (class, attribute) pairs
/// scanned once) on the live store.
Catalog CollectStats(const SimDatabase& db, const TraceSpec& spec) {
  PhysicalParams params = spec.catalog.params();
  params.page_size = static_cast<double>(db.pager().page_size());
  Catalog catalog(params);
  std::set<std::pair<ClassId, std::string>> collected;
  for (const TracePath& tp : spec.paths) {
    std::set<ClassId> scope;
    const std::vector<ClassId> scope_vec = tp.path.Scope(db.schema());
    scope.insert(scope_vec.begin(), scope_vec.end());
    RefreshStatistics(db.store(), db.schema(), tp.path, scope, &catalog,
                      &collected);
  }
  return catalog;
}

/// Sum of every weight of the phase's mix (all paths' queries plus the
/// updates): the normalizer turning weighted model costs into pages per
/// replayed operation.
double PhaseWeight(const TracePhase& phase) {
  double total = 0;
  for (const auto& per_path : phase.queries) {
    for (const auto& [cls, weight] : per_path) {
      (void)cls;
      total += weight;
    }
  }
  for (const auto& [cls, upd] : phase.updates) {
    (void)cls;
    total += upd.insert + upd.del;
  }
  return total;
}

}  // namespace

Result<MeasuredVsModeledReport> RunMeasuredVsModeled(
    const TraceSpec& spec, std::uint64_t min_query_ops) {
  for (IndexOrg org : spec.options.orgs) {
    if (org == IndexOrg::kNX || org == IndexOrg::kPX) {
      return Status::FailedPrecondition(
          "NX/PX are model-only candidates; the validation replay runs "
          "physical configurations");
    }
  }
  if (spec.paths.empty()) {
    return Status::InvalidArgument("trace spec declares no paths");
  }

  SimDatabase db(spec.schema, spec.catalog.params());
  TraceReplayer replayer(&db, spec);
  replayer.Populate();

  // The fixed configuration under replay: the joint optimum of the
  // ops-weighted average mixes (under the spec's budget) — the assignment a
  // one-shot offline advisor would install. The catalog doubles as phase
  // 0's statistics (index builds do not touch the store).
  MeasuredVsModeledReport report;
  Catalog catalog = CollectStats(db, spec);
  {
    std::vector<PathWorkload> workloads;
    workloads.reserve(spec.paths.size());
    for (std::size_t p = 0; p < spec.paths.size(); ++p) {
      PathWorkload w;
      w.name = spec.paths[p].id;
      w.path = spec.paths[p].path;
      w.load = TraceAverageMix(spec, p);
      workloads.push_back(std::move(w));
    }
    AdvisorOptions advisor_options;
    advisor_options.orgs = spec.options.orgs;
    Result<CandidatePool> pool =
        CandidatePool::Build(db.schema(), catalog, workloads, advisor_options);
    if (!pool.ok()) return pool.status();
    JointOptions joint_options;
    joint_options.storage_budget_bytes = spec.storage_budget_bytes;
    Result<JointSelectionResult> joint =
        SelectJointConfiguration(pool.value(), joint_options);
    if (!joint.ok()) return joint.status();

    std::vector<std::pair<PathId, IndexConfiguration>> changes;
    for (std::size_t p = 0; p < spec.paths.size(); ++p) {
      report.configs.push_back(joint.value().per_path[p].config);
      changes.emplace_back(spec.paths[p].id, report.configs.back());
    }
    PATHIX_RETURN_IF_ERROR(db.ReconfigureIndexes(changes));
  }

  OpCounter counter;
  db.SetObserver(&counter);

  for (std::size_t i = 0; i < spec.phases.size(); ++i) {
    const TracePhase& phase = spec.phases[i];
    const double phase_weight = PhaseWeight(phase);
    if (phase_weight <= 0 || phase.ops == 0) continue;

    // The modeled side, on statistics of the store as it stands entering
    // the phase (the same live-ANALYZE view a controller would solve on;
    // phase 0 reuses the selection catalog — nothing has mutated the store
    // since).
    if (i > 0) catalog = CollectStats(db, spec);
    std::vector<double> modeled_query(spec.paths.size(), 0);
    double modeled_total = 0;
    std::map<StructuralKey, double> placed_maintain;
    for (std::size_t p = 0; p < spec.paths.size(); ++p) {
      Result<PathContext> ctx = PathContext::Build(
          db.schema(), spec.paths[p].path, catalog, phase.mixes[p]);
      if (!ctx.ok()) return ctx.status();
      for (const IndexedSubpath& part : report.configs[p].parts()) {
        const SubpathCost cost = ComputeSubpathCost(
            ctx.value(), part.subpath.start, part.subpath.end, part.org);
        modeled_query[p] += cost.query + cost.prefix;
        // Maintenance once per distinct physical structure (the maximum
        // across its uses) — the advisor's shared accounting, which the
        // part registry made physically true.
        modeled_total += AccumulateSharedPartCost(
            spec.paths[p].path, part, /*query_prefix=*/0,
            cost.maintain + cost.boundary, &placed_maintain);
      }
      modeled_total += modeled_query[p];
    }
    // Store I/O the cost model never prices but the replay pays: one slot
    // write per insert, one read + one write per delete (object_store.h).
    for (const auto& [cls, upd] : phase.updates) {
      (void)cls;
      modeled_total += upd.insert * 1 + upd.del * 2;
    }

    // The measured side: scoped tallies over the phase's replay.
    db.pager().ResetTallies();
    counter.Reset();
    const PhaseReport measured = replayer.RunPhase(
        i, static_cast<JointReconfigurationController*>(nullptr));

    const double ops = static_cast<double>(phase.ops);
    MeasuredVsModeledPhase totals;
    totals.phase = phase.name;
    totals.ops = phase.ops;
    totals.measured_pages_per_op = static_cast<double>(measured.pages) / ops;
    totals.modeled_pages_per_op = modeled_total / phase_weight;
    report.phases.push_back(totals);

    for (std::size_t p = 0; p < spec.paths.size(); ++p) {
      MeasuredVsModeledCell cell;
      cell.phase = phase.name;
      cell.path = spec.paths[p].id;
      cell.query_ops = counter.query_ops(spec.paths[p].id);
      if (cell.query_ops < min_query_ops) continue;
      const auto& tallies = db.pager().label_tallies();
      const auto it = tallies.find(spec.paths[p].id);
      cell.measured_pages_per_op =
          it == tallies.end() ? 0
                              : static_cast<double>(it->second.total()) / ops;
      cell.modeled_pages_per_op = modeled_query[p] / phase_weight;
      report.cells.push_back(std::move(cell));
    }
  }

  db.SetObserver(nullptr);
  return report;
}

}  // namespace pathix
