#pragma once

#include <string>
#include <vector>

#include "online/trace.h"

/// \file measured_validation.h
/// \brief Measured-vs-modeled ground truth: replay a whole trace under a
/// fixed configuration and compare the analytic cost matrix against the
/// pager-measured page traffic — per path and per phase.
///
/// The single-query validation (tests/integration/model_vs_sim_test.cc,
/// bench_validation) checks the organization models probe by probe; this
/// harness checks what the selection pipeline actually consumes: whole-trace
/// expectations under drifting mixes, with shared-part maintenance deduped
/// exactly as the joint advisor prices it. The pager's scoped tallies
/// attribute the measured side per path (queries) and per operation kind,
/// so every cell of the comparison is a modeled-vs-measured data point the
/// integration test pins inside a stated envelope.

namespace pathix {

/// One (phase, path) comparison of query-side page traffic.
struct MeasuredVsModeledCell {
  std::string phase;
  PathId path;
  std::uint64_t query_ops = 0;  ///< query operations observed on the path
  /// Pager per-path tally of the phase's queries, per replayed operation.
  double measured_pages_per_op = 0;
  /// The matrix expectation (query + prefix of the installed parts under
  /// the phase's true mix), per operation.
  double modeled_pages_per_op = 0;

  /// measured / modeled (how far reality sits from the model; 0 when the
  /// modeled side is zero).
  double ratio() const {
    return modeled_pages_per_op > 0
               ? measured_pages_per_op / modeled_pages_per_op
               : 0;
  }
};

/// One phase's whole-traffic comparison (queries of every path, index
/// maintenance deduped per distinct structure, store I/O baseline).
struct MeasuredVsModeledPhase {
  std::string phase;
  std::uint64_t ops = 0;
  double measured_pages_per_op = 0;
  double modeled_pages_per_op = 0;

  double ratio() const {
    return modeled_pages_per_op > 0
               ? measured_pages_per_op / modeled_pages_per_op
               : 0;
  }
};

struct MeasuredVsModeledReport {
  /// The fixed configuration the replay ran under (the joint optimum of the
  /// trace's ops-weighted average mixes, budget-respecting), per path.
  std::vector<IndexConfiguration> configs;
  std::vector<MeasuredVsModeledCell> cells;
  std::vector<MeasuredVsModeledPhase> phases;
};

/// Replays \p spec once under the average-mix joint optimum and assembles
/// the per-phase, per-path comparison. Per-path cells are only emitted when
/// the phase directed at least \p min_query_ops queries at the path (below
/// that, sampling noise drowns the signal). Deterministic for a fixed spec.
Result<MeasuredVsModeledReport> RunMeasuredVsModeled(
    const TraceSpec& spec, std::uint64_t min_query_ops = 50);

}  // namespace pathix
