#include "online/online_selector.h"

#include <algorithm>

namespace pathix {

OnlineSelection OnlineSelector::Select(const PathContext& ctx,
                                       const IndexConfiguration* current,
                                       int capture_top_k) {
  const CostMatrix matrix = builder_.Build(ctx);
  OnlineSelection sel;
  sel.best = SelectDP(matrix);
  if (capture_top_k > 0) {
    sel.alternatives = TopKConfigurations(matrix, capture_top_k);
  }
  if (current != nullptr && !current->empty()) {
    sel.has_current = true;
    for (const IndexedSubpath& part : current->parts()) {
      // The installed configuration may use organizations outside the
      // candidate columns (e.g. installed by hand before the controller was
      // attached); price those directly from the model instead of reading a
      // wrong column.
      const bool in_matrix =
          std::find(matrix.orgs().begin(), matrix.orgs().end(), part.org) !=
          matrix.orgs().end();
      sel.current_cost +=
          in_matrix ? matrix.Cost(part.subpath, part.org)
                    : ComputeSubpathCost(ctx, part.subpath.start,
                                         part.subpath.end, part.org)
                          .total();
    }
  }
  return sel;
}

}  // namespace pathix
