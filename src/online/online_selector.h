#pragma once

#include "core/matrix_cache.h"
#include "core/optimizer.h"

/// \file online_selector.h
/// \brief Polynomial-time per-step selection on an estimated load.
///
/// Jordan et al. ("Optimal On The Fly Index Selection in Polynomial Time",
/// PAPERS.md) show the online variant of the paper's problem needs no
/// exponential enumeration per step: on every drift check it suffices to
/// solve the current instance with the O(n^2) interval dynamic program the
/// offline pipeline already cross-checks against. The selector therefore
/// reuses CostMatrix + SelectDP from src/core/, with the cached matrix
/// builder so repeated checks under an unchanged catalog cost no model
/// evaluations at all.

namespace pathix {

/// One drift check's outcome.
struct OnlineSelection {
  OptimizeResult best;       ///< DP optimum for the estimated load
  double current_cost = 0;   ///< installed configuration, same load/matrix
  bool has_current = false;  ///< false when nothing is installed yet
  /// The k cheapest recombinations on the same matrix, cheapest first
  /// (Select's capture_top_k; empty when capturing is off) — the decision
  /// ledger's scored candidate list.
  std::vector<ScoredConfiguration> alternatives;
};

/// \brief Stateless per-check solver with a stateful matrix cache.
class OnlineSelector {
 public:
  explicit OnlineSelector(std::vector<IndexOrg> orgs = {IndexOrg::kMX,
                                                        IndexOrg::kMIX,
                                                        IndexOrg::kNIX})
      : builder_(std::move(orgs)) {}

  /// Solves the instance \p ctx (statistics + estimated loads) and prices
  /// \p current (nullptr if nothing installed) on the same matrix.
  /// \p capture_top_k > 0 additionally fills alternatives with the k
  /// cheapest recombinations (TopKConfigurations on the cached matrix).
  OnlineSelection Select(const PathContext& ctx,
                         const IndexConfiguration* current,
                         int capture_top_k = 0);

  /// Cache behaviour, for tests and benchmarks.
  const CostMatrixBuilder& builder() const { return builder_; }

 private:
  CostMatrixBuilder builder_;
};

}  // namespace pathix
