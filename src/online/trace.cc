#include "online/trace.h"

#include <algorithm>

namespace pathix {

TraceReplayer::TraceReplayer(SimDatabase* db, const TraceSpec& spec)
    : db_(db), spec_(&spec), rng_(spec.seed),
      ending_level_(spec.path.length()) {}

void TraceReplayer::Populate() {
  std::vector<ClassGenSpec> specs;
  specs.reserve(spec_->populate.size());
  for (const TracePopulate& p : spec_->populate) {
    specs.push_back(ClassGenSpec{p.cls, p.count, p.distinct_values, p.nin});
  }
  PathDataGenerator gen(spec_->seed);
  live_ = gen.Populate(db_, spec_->path, specs);
}

const TracePopulate* TraceReplayer::PopulateSpecFor(ClassId cls) const {
  for (const TracePopulate& p : spec_->populate) {
    if (p.cls == cls) return &p;
  }
  return nullptr;
}

PhaseReport TraceReplayer::RunPhase(std::size_t phase_index,
                                    ReconfigurationController* controller) {
  const TracePhase& phase = spec_->phases[phase_index];
  PhaseReport report;
  report.name = phase.name;
  report.ops = phase.ops;

  // Flatten the mix into (class, kind) sampling weights, sorted for a
  // deterministic mapping into the discrete distribution.
  std::vector<MixEntry> entries;
  for (const auto& [cls, load] : phase.mix.entries()) {
    if (load.query > 0) entries.push_back({cls, DbOpKind::kQuery, load.query});
    if (load.insert > 0) {
      entries.push_back({cls, DbOpKind::kInsert, load.insert});
    }
    if (load.del > 0) entries.push_back({cls, DbOpKind::kDelete, load.del});
  }
  std::sort(entries.begin(), entries.end(),
            [](const MixEntry& a, const MixEntry& b) {
              return a.cls != b.cls ? a.cls < b.cls : a.kind < b.kind;
            });
  if (entries.empty()) return report;
  std::vector<double> weights;
  weights.reserve(entries.size());
  for (const MixEntry& e : entries) weights.push_back(e.weight);
  std::discrete_distribution<std::size_t> pick(weights.begin(), weights.end());

  const double transition_before =
      controller != nullptr ? controller->transition_pages_charged() : 0;
  const std::size_t events_before =
      controller != nullptr ? controller->events().size() : 0;
  const AccessProbe probe(db_->pager());

  for (std::uint64_t i = 0; i < phase.ops; ++i) RunOne(entries[pick(rng_)]);

  report.pages = probe.Delta().total();
  if (controller != nullptr) {
    report.transition_pages =
        controller->transition_pages_charged() - transition_before;
    report.reconfigurations =
        static_cast<int>(controller->events().size() - events_before);
  }
  return report;
}

void TraceReplayer::RunOne(const MixEntry& op) {
  switch (op.kind) {
    case DbOpKind::kQuery:
      DoQuery(op.cls);
      break;
    case DbOpKind::kInsert:
      DoInsert(op.cls);
      break;
    case DbOpKind::kDelete:
      DoDelete(op.cls);
      break;
  }
}

void TraceReplayer::DoQuery(ClassId cls) {
  // Query values are drawn from the ending-level value pool the population
  // (and the inserts) draw from.
  int distinct = 1;
  for (ClassId ending : db_->schema().HierarchyOf(
           spec_->path.class_at(ending_level_))) {
    const TracePopulate* p = PopulateSpecFor(ending);
    if (p != nullptr) distinct = std::max(distinct, p->distinct_values);
  }
  std::uniform_int_distribution<int> value(0, distinct - 1);
  const Key key = Key::FromString(EndingValue(value(rng_)));
  if (db_->has_indexes()) {
    db_->Query(key, cls).status();
  } else {
    db_->QueryNaive(key, cls).status();
  }
}

void TraceReplayer::DoInsert(ClassId cls) {
  int level = 0;
  for (int l = 1; l <= spec_->path.length(); ++l) {
    if (db_->schema().IsSameOrSubclassOf(cls, spec_->path.class_at(l))) {
      level = l;
      break;
    }
  }
  PATHIX_DCHECK(level > 0 && "mix classes are validated against scope(P)");

  const TracePopulate* p = PopulateSpecFor(cls);
  const double nin = p != nullptr ? p->nin : 1.0;
  std::uniform_real_distribution<double> frac(0.0, 1.0);
  int nvals = static_cast<int>(nin);
  if (frac(rng_) < nin - nvals) ++nvals;
  nvals = std::max(1, nvals);

  AttrValues attrs;
  const std::string& attr = spec_->path.attribute_at(level).name;
  std::vector<Value>& values = attrs[attr];
  if (level == ending_level_) {
    const int distinct = p != nullptr ? p->distinct_values : 1;
    std::uniform_int_distribution<int> value(0, distinct - 1);
    for (int v = 0; v < nvals; ++v) {
      values.push_back(Value::Str(EndingValue(value(rng_))));
    }
  } else {
    std::vector<Oid> pool;
    for (ClassId next : db_->schema().HierarchyOf(
             spec_->path.class_at(level + 1))) {
      const auto it = live_.find(next);
      if (it != live_.end()) {
        pool.insert(pool.end(), it->second.begin(), it->second.end());
      }
    }
    if (!pool.empty()) {
      std::uniform_int_distribution<std::size_t> ref(0, pool.size() - 1);
      for (int v = 0; v < nvals; ++v) {
        values.push_back(Value::Ref(pool[ref(rng_)]));
      }
    }
  }
  live_[cls].push_back(db_->Insert(cls, std::move(attrs)));
}

void TraceReplayer::DoDelete(ClassId cls) {
  std::vector<Oid>& pool = live_[cls];
  if (pool.empty()) return;  // deterministic no-op across replays
  std::uniform_int_distribution<std::size_t> victim(0, pool.size() - 1);
  const std::size_t i = victim(rng_);
  const Oid oid = pool[i];
  pool[i] = pool.back();
  pool.pop_back();
  db_->Delete(oid);
}

}  // namespace pathix
