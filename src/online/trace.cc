#include "online/trace.h"

#include <algorithm>

namespace pathix {

std::vector<TraceOpExecutor::MixEntry> TraceOpExecutor::FlattenMix(
    const TracePhase& phase) {
  std::vector<MixEntry> entries;
  for (std::size_t p = 0; p < phase.queries.size(); ++p) {
    for (const auto& [cls, weight] : phase.queries[p]) {
      if (weight > 0) {
        entries.push_back(
            {static_cast<int>(p), cls, DbOpKind::kQuery, weight});
      }
    }
  }
  for (const auto& [cls, upd] : phase.updates) {
    if (upd.insert > 0) {
      entries.push_back({-1, cls, DbOpKind::kInsert, upd.insert});
    }
    if (upd.del > 0) entries.push_back({-1, cls, DbOpKind::kDelete, upd.del});
  }
  std::sort(entries.begin(), entries.end(),
            [](const MixEntry& a, const MixEntry& b) {
              if (a.cls != b.cls) return a.cls < b.cls;
              if (a.kind != b.kind) return a.kind < b.kind;
              return a.path_index < b.path_index;
            });
  return entries;
}

void TraceOpExecutor::RunOne(const MixEntry& op, PhaseReport* report) {
  switch (op.kind) {
    case DbOpKind::kQuery:
      DoQuery(op.path_index, op.cls, report);
      break;
    case DbOpKind::kInsert:
      DoInsert(op.cls, report);
      break;
    case DbOpKind::kDelete:
      DoDelete(op.cls, report);
      break;
  }
}

const TracePopulate* TraceOpExecutor::PopulateSpecFor(ClassId cls) const {
  for (const TracePopulate& p : spec_->populate) {
    if (p.cls == cls) return &p;
  }
  return nullptr;
}

void TraceOpExecutor::DoQuery(int path_index, ClassId cls,
                              PhaseReport* report) {
  const TracePath& tp = spec_->paths[static_cast<std::size_t>(path_index)];
  // Query values are drawn from the ending-level value pool the population
  // (and the inserts) draw from.
  int distinct = 1;
  for (ClassId ending :
       db_->schema().HierarchyOf(tp.path.class_at(tp.path.length()))) {
    const TracePopulate* p = PopulateSpecFor(ending);
    if (p != nullptr) distinct = std::max(distinct, p->distinct_values);
  }
  std::uniform_int_distribution<int> value(0, distinct - 1);
  const Key key = Key::FromString(EndingValue(value(*rng_)));
  // Tallied on success only, mirroring the database's op counters (failed
  // operations neither count nor notify) — the cross-check is exact.
  const Result<SimDatabase::QueryOutcome> outcome = db_->QueryAny(tp.id, key,
                                                                  cls);
  if (outcome.ok()) {
    if (outcome.value().naive) {
      ++report->naive_query_ops[tp.id];
    } else {
      ++report->query_ops[tp.id];
    }
  }
}

void TraceOpExecutor::DoInsert(ClassId cls, PhaseReport* report) {
  const TracePopulate* p = PopulateSpecFor(cls);
  const double nin = p != nullptr ? p->nin : 1.0;
  std::uniform_real_distribution<double> frac(0.0, 1.0);

  // Fill the path attribute of every path the class lies on (dedup by
  // attribute name: overlapping paths share the attribute).
  AttrValues attrs;
  bool on_some_path = false;
  for (const TracePath& tp : spec_->paths) {
    int level = 0;
    for (int l = 1; l <= tp.path.length(); ++l) {
      if (db_->schema().IsSameOrSubclassOf(cls, tp.path.class_at(l))) {
        level = l;
        break;
      }
    }
    if (level == 0) continue;
    on_some_path = true;
    const std::string& attr = tp.path.attribute_at(level).name;
    if (attrs.count(attr) > 0) continue;  // shared subpath, already filled

    int nvals = static_cast<int>(nin);
    if (frac(*rng_) < nin - nvals) ++nvals;
    nvals = std::max(1, nvals);

    std::vector<Value>& values = attrs[attr];
    if (level == tp.path.length()) {
      const int distinct = p != nullptr ? p->distinct_values : 1;
      std::uniform_int_distribution<int> value(0, distinct - 1);
      for (int v = 0; v < nvals; ++v) {
        values.push_back(Value::Str(EndingValue(value(*rng_))));
      }
    } else {
      std::vector<Oid> pool;
      for (ClassId next :
           db_->schema().HierarchyOf(tp.path.class_at(level + 1))) {
        const auto it = live_->find(next);
        if (it != live_->end()) {
          pool.insert(pool.end(), it->second.begin(), it->second.end());
        }
      }
      if (!pool.empty()) {
        std::uniform_int_distribution<std::size_t> ref(0, pool.size() - 1);
        for (int v = 0; v < nvals; ++v) {
          values.push_back(Value::Ref(pool[ref(*rng_)]));
        }
      }
    }
  }
  PATHIX_DCHECK(on_some_path && "mix classes are validated against the "
                                "declared paths' scopes");
  (void)on_some_path;
  (*live_)[cls].push_back(db_->Insert(cls, std::move(attrs)));
  ++report->insert_ops;
}

void TraceOpExecutor::DoDelete(ClassId cls, PhaseReport* report) {
  std::vector<Oid>& pool = (*live_)[cls];
  if (pool.empty()) {
    ++report->noop_ops;
    return;  // deterministic no-op across replays
  }
  std::uniform_int_distribution<std::size_t> victim(0, pool.size() - 1);
  const std::size_t i = victim(*rng_);
  const Oid oid = pool[i];
  pool[i] = pool.back();
  pool.pop_back();
  if (db_->Delete(oid).ok()) {
    ++report->delete_ops;
  } else {
    ++report->noop_ops;
  }
}

TraceReplayer::TraceReplayer(SimDatabase* db, const TraceSpec& spec)
    : db_(db), spec_(&spec), rng_(spec.seed) {
  for (const TracePath& tp : spec.paths) {
    const Status registered = db_->RegisterPath(tp.id, tp.path);
    PATHIX_DCHECK(registered.ok());
    (void)registered;
  }
}

void TraceReplayer::Populate() {
  std::vector<ClassGenSpec> specs;
  specs.reserve(spec_->populate.size());
  for (const TracePopulate& p : spec_->populate) {
    specs.push_back(ClassGenSpec{p.cls, p.count, p.distinct_values, p.nin});
  }
  std::vector<const Path*> paths;
  paths.reserve(spec_->paths.size());
  for (const TracePath& tp : spec_->paths) paths.push_back(&tp.path);
  PathDataGenerator gen(spec_->seed);
  live_ = gen.Populate(db_, paths, specs);
}

PhaseReport TraceReplayer::RunPhaseOps(std::size_t phase_index) {
  const TracePhase& phase = spec_->phases[phase_index];
  PhaseReport report;
  report.name = phase.name;
  report.ops = phase.ops;

  const std::vector<TraceOpExecutor::MixEntry> entries =
      TraceOpExecutor::FlattenMix(phase);
  if (entries.empty()) return report;
  std::vector<double> weights;
  weights.reserve(entries.size());
  for (const TraceOpExecutor::MixEntry& e : entries) {
    weights.push_back(e.weight);
  }
  std::discrete_distribution<std::size_t> pick(weights.begin(), weights.end());

  TraceOpExecutor exec(db_, spec_, &rng_, &live_);
  const AccessProbe probe(db_->pager());
  for (std::uint64_t i = 0; i < phase.ops; ++i) {
    exec.RunOne(entries[pick(rng_)], &report);
  }
  report.pages = probe.Delta().total();
  return report;
}

}  // namespace pathix
