#pragma once

#include <cstdint>
#include <map>
#include <random>
#include <string>
#include <vector>

#include "datagen/generator.h"
#include "exec/database.h"
#include "io/spec_parser.h"
#include "online/controller.h"

/// \file trace.h
/// \brief Deterministic replay of a trace spec against a SimDatabase.
///
/// Operations are drawn from the active phase's normalized mix with a
/// seeded RNG. The stream is a pure function of (seed, phase list, live
/// object sets); since every run executes the same inserts and deletes,
/// replaying the same trace under different index configurations sees the
/// *identical* operation sequence — the property the online-vs-oracle
/// regret comparison rests on.

namespace pathix {

/// Measured outcome of one replayed phase.
struct PhaseReport {
  std::string name;
  std::uint64_t ops = 0;
  std::uint64_t pages = 0;         ///< measured page accesses in the phase
  double transition_pages = 0;     ///< modeled transition charge in the phase
  int reconfigurations = 0;        ///< committed switches (incl. initial)

  double total_cost() const {
    return static_cast<double>(pages) + transition_pages;
  }
};

/// \brief Replays the phases of one trace spec.
class TraceReplayer {
 public:
  /// \p db must already hold the spec's schema; Populate() fills it.
  TraceReplayer(SimDatabase* db, const TraceSpec& spec);

  /// Generates the initial population (uncounted) and records the live oid
  /// pools the operation sampling draws from.
  void Populate();

  /// Replays phase \p phase_index. If \p controller is non-null its
  /// transition charges and reconfiguration count over the phase are
  /// captured into the report. Queries use the configured indexes when
  /// installed, a naive scan otherwise (the cold-start price an online
  /// controller pays before its first install).
  PhaseReport RunPhase(std::size_t phase_index,
                       ReconfigurationController* controller);

  /// Live oids per class (inspection; e.g. final statistics collection).
  const std::map<ClassId, std::vector<Oid>>& live() const { return live_; }

 private:
  struct MixEntry {
    ClassId cls = kInvalidClass;
    DbOpKind kind = DbOpKind::kQuery;
    double weight = 0;
  };

  void RunOne(const MixEntry& op);
  void DoQuery(ClassId cls);
  void DoInsert(ClassId cls);
  void DoDelete(ClassId cls);

  /// Generation parameters for \p cls (ending-value pool, fan-out).
  const TracePopulate* PopulateSpecFor(ClassId cls) const;

  SimDatabase* db_;
  const TraceSpec* spec_;
  std::mt19937 rng_;
  std::map<ClassId, std::vector<Oid>> live_;
  int ending_level_ = 0;  ///< path length (level of the atomic attribute)
};

}  // namespace pathix
