#pragma once

#include <cstdint>
#include <map>
#include <random>
#include <string>
#include <vector>

#include "datagen/generator.h"
#include "exec/database.h"
#include "io/spec_parser.h"
#include "online/controller.h"
#include "online/joint_controller.h"

/// \file trace.h
/// \brief Deterministic replay of a trace spec against a SimDatabase.
///
/// Operations are drawn from the active phase's normalized mix with a
/// seeded RNG. The stream is a pure function of (seed, phase list, live
/// object sets); since every run executes the same inserts and deletes,
/// replaying the same trace under different index configurations sees the
/// *identical* operation sequence — the property the online-vs-oracle
/// regret comparison rests on. Multi-path traces direct each query at the
/// path its mix line names; updates are path-agnostic and maintain every
/// configured path's indexes.

namespace pathix {

/// Measured outcome of one replayed phase.
struct PhaseReport {
  std::string name;
  std::uint64_t ops = 0;
  std::uint64_t pages = 0;         ///< measured page accesses in the phase
  double transition_pages = 0;     ///< modeled transition charge in the phase
  /// Pager-measured transition I/O in the phase (actual drops + the build
  /// I/O of the parts the registry built for committed switches).
  double measured_transition_pages = 0;
  int reconfigurations = 0;        ///< committed switches (incl. initial)

  // Executed-op decomposition: what actually ran, per kind (and per path
  // for queries, split by evaluation mode). These are the replay-side
  // ground truth the metrics cross-check pins the database's op counters
  // against — they count *successful* operations only, exactly like the
  // counters, so ops == executed ops + noop_ops.
  std::map<std::string, std::uint64_t> query_ops;        ///< indexed, by path
  std::map<std::string, std::uint64_t> naive_query_ops;  ///< naive, by path
  std::uint64_t insert_ops = 0;
  std::uint64_t delete_ops = 0;
  /// Sampled ops that executed nothing (a delete drawn on an empty pool —
  /// the replayer's deterministic no-op).
  std::uint64_t noop_ops = 0;

  /// The decision records the controller captured during this phase, each
  /// stamped with the phase name (the per-phase slice of the controller's
  /// ledger — see online/decision_record.h). Empty without a controller. If
  /// the bounded ledger evicted mid-phase the oldest records of the slice
  /// are gone; decisions_captured keeps the true count.
  std::vector<DecisionRecord> decisions;
  std::uint64_t decisions_captured = 0;  ///< all-time delta over the phase

  double total_cost() const {
    return static_cast<double>(pages) + transition_pages;
  }
  /// Measured pages plus *measured* transition I/O (the model-free view).
  double measured_total_cost() const {
    return static_cast<double>(pages) + measured_transition_pages;
  }
};

/// \brief Executes single sampled trace operations against a SimDatabase —
/// the op-level core shared by the single-threaded TraceReplayer and the
/// multi-threaded serve driver (serve/serve_driver.h).
///
/// The executor owns no state: it borrows the RNG it draws from and the
/// live-oid pools it samples/mutates, so a replayer runs one of everything
/// while the serve driver runs one executor per worker thread (each with
/// its own RNG stream and pool shard — zero cross-thread coordination in
/// the op path). Queries go through SimDatabase::QueryAny: the
/// indexed-or-naive decision and the evaluation happen on one
/// configuration epoch, so a reconfiguration landing mid-op can't split
/// them.
class TraceOpExecutor {
 public:
  /// One (path, class, kind) sampling entry of a flattened phase mix.
  struct MixEntry {
    int path_index = -1;  ///< queried path; -1 for updates
    ClassId cls = kInvalidClass;
    DbOpKind kind = DbOpKind::kQuery;
    double weight = 0;
  };

  /// All pointees must outlive the executor. \p rng is the caller's stream
  /// (advanced by every op); \p live the pool the caller's deletes claim
  /// from and its inserts grow.
  TraceOpExecutor(SimDatabase* db, const TraceSpec* spec, std::mt19937* rng,
                  std::map<ClassId, std::vector<Oid>>* live)
      : db_(db), spec_(spec), rng_(rng), live_(live) {}

  /// Flattens a phase's mix into sampling entries, deterministically
  /// ordered (by class, then kind, then path — the order the single-path
  /// format always had). Entries with zero weight are dropped.
  static std::vector<MixEntry> FlattenMix(const TracePhase& phase);

  /// Executes one sampled op, tallying into \p report (successful ops only,
  /// mirroring the database's counters; a delete on an empty pool is the
  /// deterministic no-op).
  void RunOne(const MixEntry& op, PhaseReport* report);

 private:
  void DoQuery(int path_index, ClassId cls, PhaseReport* report);
  void DoInsert(ClassId cls, PhaseReport* report);
  void DoDelete(ClassId cls, PhaseReport* report);

  /// Generation parameters for \p cls (ending-value pool, fan-out).
  const TracePopulate* PopulateSpecFor(ClassId cls) const;

  SimDatabase* db_;
  const TraceSpec* spec_;
  std::mt19937* rng_;
  std::map<ClassId, std::vector<Oid>>* live_;
};

/// \brief Replays the phases of one trace spec.
class TraceReplayer {
 public:
  /// \p db must already hold the spec's schema; the constructor registers
  /// every spec path under its id and Populate() fills the store. \p spec
  /// must outlive the replayer.
  TraceReplayer(SimDatabase* db, const TraceSpec& spec);

  /// Generates the initial population (uncounted) and records the live oid
  /// pools the operation sampling draws from.
  void Populate();

  /// Replays phase \p phase_index. If a controller is given, its transition
  /// charges and reconfiguration count over the phase are captured into the
  /// report. Queries use the named path's configured indexes when
  /// installed, a naive scan otherwise (the cold-start price an online
  /// controller pays before its first install).
  PhaseReport RunPhase(std::size_t phase_index,
                       ReconfigurationController* controller) {
    return RunPhaseWith(phase_index, controller);
  }
  PhaseReport RunPhase(std::size_t phase_index,
                       JointReconfigurationController* controller) {
    return RunPhaseWith(phase_index, controller);
  }

  /// Live oids per class (inspection; e.g. final statistics collection).
  const std::map<ClassId, std::vector<Oid>>& live() const { return live_; }

 private:
  /// The shared replay: runs the phase's ops under the access probe; the
  /// public overloads wrap it to capture controller charges (both
  /// controller types expose the same accessors).
  template <typename Controller>
  PhaseReport RunPhaseWith(std::size_t phase_index, Controller* controller) {
    const double charged_before =
        controller != nullptr ? controller->transition_pages_charged() : 0;
    const double measured_before =
        controller != nullptr ? controller->measured_transition_pages_charged()
                              : 0;
    // Committed counts, not events().size(): the retained log is bounded
    // (ControllerOptions::max_event_log) and may evict.
    const std::uint64_t events_before =
        controller != nullptr ? controller->events_committed() : 0;
    const std::uint64_t decisions_before =
        controller != nullptr ? controller->decisions_committed() : 0;
    PhaseReport report = RunPhaseOps(phase_index);
    if (controller != nullptr) {
      report.transition_pages =
          controller->transition_pages_charged() - charged_before;
      report.measured_transition_pages =
          controller->measured_transition_pages_charged() - measured_before;
      report.reconfigurations =
          static_cast<int>(controller->events_committed() - events_before);
      // The phase's slice of the decision ledger, stamped with the phase
      // name. What the bounded ledger still retains is the newest suffix;
      // anything older than its window is counted but not copied.
      report.decisions_captured =
          controller->decisions_committed() - decisions_before;
      const std::vector<DecisionRecord>& ledger = controller->decisions();
      const std::uint64_t retained_start =
          controller->decisions_committed() -
          static_cast<std::uint64_t>(ledger.size());
      const std::uint64_t slice_start =
          decisions_before > retained_start ? decisions_before
                                            : retained_start;
      for (std::size_t i =
               static_cast<std::size_t>(slice_start - retained_start);
           i < ledger.size(); ++i) {
        report.decisions.push_back(ledger[i]);
        report.decisions.back().phase = report.name;
      }
    }
    return report;
  }

  PhaseReport RunPhaseOps(std::size_t phase_index);

  SimDatabase* db_;
  const TraceSpec* spec_;
  std::mt19937 rng_;
  std::map<ClassId, std::vector<Oid>> live_;
};

}  // namespace pathix
