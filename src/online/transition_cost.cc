#include "online/transition_cost.h"

#include <map>
#include <memory>
#include <set>

#include "common/math.h"
#include "common/mutex.h"
#include "core/structural_key.h"
#include "costmodel/org_model.h"

namespace pathix {

TransitionCost EstimateJointTransitionCost(
    const std::vector<PathTransition>& paths, const ObjectStore& store) {
  TransitionCost cost;

  // Structural identities of every part kept by a target configuration, and
  // of every part currently installed (on any path).
  std::set<StructuralKey> target_keys;
  std::set<StructuralKey> current_keys;
  for (const PathTransition& pt : paths) {
    const Path& path = pt.ctx->path();
    if (pt.target != nullptr) {
      for (const IndexedSubpath& part : pt.target->parts()) {
        target_keys.insert(StructuralKey::ForSubpath(
            path, part.subpath.start, part.subpath.end, part.org));
      }
    }
    if (pt.current != nullptr) {
      for (const IndexedSubpath& part : pt.current->config().parts()) {
        current_keys.insert(StructuralKey::ForSubpath(
            path, part.subpath.start, part.subpath.end, part.org));
      }
    }
  }

  // Dropped: installed parts no target keeps — their actual pages, touched
  // once to free them. Dedup by physical structure (shared parts are one
  // structure, freed once).
  std::set<const SubpathIndex*> dropped;
  for (const PathTransition& pt : paths) {
    if (pt.current == nullptr) continue;
    const Path& path = pt.ctx->path();
    const std::vector<IndexedSubpath>& parts = pt.current->config().parts();
    for (std::size_t i = 0; i < parts.size(); ++i) {
      const StructuralKey key = StructuralKey::ForSubpath(
          path, parts[i].subpath.start, parts[i].subpath.end, parts[i].org);
      if (target_keys.count(key) > 0) continue;
      const std::shared_ptr<PhysicalPart>& part = pt.current->part(i);
      const SubpathIndex* index = part->index.get();
      if (!dropped.insert(index).second) continue;
      // Size the structure under its reader latch: the part is live, and
      // concurrent maintenance mutates its trees under the writer side.
      ReaderMutexLock latch(&part->latch);
      cost.drop_pages += static_cast<double>(index->total_pages());
    }
  }

  // Built: target parts no current configuration holds — the store scan of
  // their scope plus the analytic size of their structures, charged once
  // per distinct structure however many paths use it.
  std::set<StructuralKey> built;
  for (const PathTransition& pt : paths) {
    if (pt.target == nullptr) continue;
    const Path& path = pt.ctx->path();
    for (const IndexedSubpath& part : pt.target->parts()) {
      StructuralKey key = StructuralKey::ForSubpath(
          path, part.subpath.start, part.subpath.end, part.org);
      if (current_keys.count(key) > 0) continue;
      // "No index" has no build: NoneIndex evaluates navigationally against
      // the store and materializes nothing (none_index.h).
      if (part.org == IndexOrg::kNone) continue;
      if (!built.insert(std::move(key)).second) continue;
      // Building reads every segment page of every class in the part's
      // scope once (the physical builders iterate the store class by
      // class) ...
      for (int l = part.subpath.start; l <= part.subpath.end; ++l) {
        for (const LevelClassInfo& c : pt.ctx->level(l)) {
          cost.scan_pages += static_cast<double>(store.SegmentPages(c.cls));
        }
      }
      // ... and writes the index structures out, sized by the same analytic
      // estimate the advisor reports as the part's storage footprint.
      const double bytes = MakeOrgCostModel(part.org, *pt.ctx,
                                            part.subpath.start,
                                            part.subpath.end)
                               ->StorageBytes();
      cost.write_pages += CeilDiv(bytes, pt.ctx->params().page_size);
    }
  }
  return cost;
}

TransitionCost EstimateTransitionCost(const PathContext& ctx,
                                      const ObjectStore& store,
                                      const PhysicalConfiguration* current,
                                      const IndexConfiguration& target) {
  PathTransition pt;
  pt.ctx = &ctx;
  pt.current = current;
  pt.target = &target;
  return EstimateJointTransitionCost({pt}, store);
}

}  // namespace pathix
