#include "online/transition_cost.h"

#include "common/math.h"
#include "costmodel/org_model.h"

namespace pathix {

namespace {

bool HasPart(const IndexConfiguration& config, const Subpath& range,
             IndexOrg org) {
  for (const IndexedSubpath& part : config.parts()) {
    if (part.subpath == range && part.org == org) return true;
  }
  return false;
}

}  // namespace

TransitionCost EstimateTransitionCost(const PathContext& ctx,
                                      const ObjectStore& store,
                                      const PhysicalConfiguration* current,
                                      const IndexConfiguration& target) {
  TransitionCost cost;

  if (current != nullptr) {
    for (const auto& index : current->indexes()) {
      if (HasPart(target, index->range(), index->org())) continue;
      cost.drop_pages += static_cast<double>(index->total_pages());
    }
  }

  for (const IndexedSubpath& part : target.parts()) {
    if (current != nullptr &&
        HasPart(current->config(), part.subpath, part.org)) {
      continue;
    }
    // "No index" has no build: NoneIndex evaluates navigationally against
    // the store and materializes nothing (none_index.h).
    if (part.org == IndexOrg::kNone) continue;
    // Building reads every segment page of every class in the part's scope
    // once (the physical builders iterate the store class by class) ...
    for (int l = part.subpath.start; l <= part.subpath.end; ++l) {
      for (const LevelClassInfo& c : ctx.level(l)) {
        cost.scan_pages += static_cast<double>(store.SegmentPages(c.cls));
      }
    }
    // ... and writes the index structures out, sized by the same analytic
    // estimate the advisor reports as the part's storage footprint.
    const double bytes =
        MakeOrgCostModel(part.org, ctx, part.subpath.start, part.subpath.end)
            ->StorageBytes();
    cost.write_pages += CeilDiv(bytes, ctx.params().page_size);
  }
  return cost;
}

}  // namespace pathix
