#pragma once

#include <vector>

#include "core/index_config.h"
#include "costmodel/path_context.h"
#include "index/physical_config.h"
#include "storage/object_store.h"

/// \file transition_cost.h
/// \brief Pricing an index reconfiguration in page accesses.
///
/// Going from the installed physical configurations to target ones costs
/// real I/O a steady-state cost matrix never sees: dropped indexes touch
/// their pages once to free them, new indexes scan the class segments in
/// their scope and write their structures out. Parts present before and
/// after (same structural identity — possibly on a *different* path, since
/// the registry shares structures across paths) are free: the physical
/// layer genuinely keeps them (SimDatabase::ReconfigureIndexes). The
/// reconfiguration controllers amortize this price against predicted
/// steady-state savings over their horizon.

namespace pathix {

/// One reconfiguration's page price, by component.
struct TransitionCost {
  double drop_pages = 0;   ///< pages of dropped parts, touched to free them
  double scan_pages = 0;   ///< store segment pages read to build new parts
  double write_pages = 0;  ///< pages written for the new parts' structures

  double total() const { return drop_pages + scan_pages + write_pages; }
};

/// One path's side of a joint transition.
struct PathTransition {
  const PathContext* ctx = nullptr;            ///< bound to the path
  const PhysicalConfiguration* current = nullptr;  ///< nullptr = nothing
  const IndexConfiguration* target = nullptr;
};

/// Prices the move of a whole workload at once, deduplicating by structural
/// identity: a physical part is dropped only when *no* target configuration
/// keeps it, and built (scan + write, once) only when no current
/// configuration already holds it — shared parts are free across paths, not
/// just across time. With a single entry this reduces exactly to the
/// single-path EstimateTransitionCost.
TransitionCost EstimateJointTransitionCost(
    const std::vector<PathTransition>& paths, const ObjectStore& store);

/// Prices the move from \p current (nullptr = nothing installed) to
/// \p target on the context's path. Dropped parts are priced from their
/// actual physical size; new parts from the segment pages of the classes
/// they scan plus the analytic storage estimate of their structures.
TransitionCost EstimateTransitionCost(const PathContext& ctx,
                                      const ObjectStore& store,
                                      const PhysicalConfiguration* current,
                                      const IndexConfiguration& target);

/// Assembles the *measured* counterpart of a modeled transition price after
/// the commit happened: dropped parts keep the modeled component (already
/// priced from their actual physical pages), scan/write come from the
/// pager-measured build I/O of the parts the registry actually built during
/// the commit (PhysicalPartRegistry::cumulative_build_io delta). The
/// controllers gate on the estimate — the build has not happened yet when
/// the decision is made — and record this next to it so every switch is a
/// modeled-vs-measured data point.
inline TransitionCost MeasuredTransitionCost(const TransitionCost& modeled,
                                             const AccessStats& build_io) {
  TransitionCost measured;
  measured.drop_pages = modeled.drop_pages;
  measured.scan_pages = static_cast<double>(build_io.reads);
  measured.write_pages = static_cast<double>(build_io.writes);
  return measured;
}

}  // namespace pathix
