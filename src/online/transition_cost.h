#pragma once

#include "core/index_config.h"
#include "costmodel/path_context.h"
#include "index/physical_config.h"
#include "storage/object_store.h"

/// \file transition_cost.h
/// \brief Pricing an index reconfiguration in page accesses.
///
/// Going from the installed physical configuration to a target one costs
/// real I/O a steady-state cost matrix never sees: dropped indexes touch
/// their pages once to free them, new indexes scan the class segments in
/// their scope and write their structures out. Parts present in both
/// configurations (same subpath range and organization) are free — the
/// physical layer genuinely keeps them (SimDatabase::ReconfigureIndexes).
/// The ReconfigurationController amortizes this price against predicted
/// steady-state savings over its horizon.

namespace pathix {

/// One reconfiguration's page price, by component.
struct TransitionCost {
  double drop_pages = 0;   ///< pages of dropped parts, touched to free them
  double scan_pages = 0;   ///< store segment pages read to build new parts
  double write_pages = 0;  ///< pages written for the new parts' structures

  double total() const { return drop_pages + scan_pages + write_pages; }
};

/// Prices the move from \p current (nullptr = nothing installed) to
/// \p target on the context's path. Dropped parts are priced from their
/// actual physical size; new parts from the segment pages of the classes
/// they scan plus the analytic storage estimate of their structures.
TransitionCost EstimateTransitionCost(const PathContext& ctx,
                                      const ObjectStore& store,
                                      const PhysicalConfiguration* current,
                                      const IndexConfiguration& target);

}  // namespace pathix
