#include "online/workload_monitor.h"

#include <cmath>

#include "obs/metrics.h"

namespace pathix {

WorkloadMonitor::WorkloadMonitor(double half_life_ops)
    : decay_(half_life_ops > 0 ? std::exp2(-1.0 / half_life_ops) : 1.0) {}

void WorkloadMonitor::FoldTo(Entry* e, std::uint64_t now) const {
  if (e->as_of == now) return;
  e->count *= std::pow(decay_, static_cast<double>(now - e->as_of));
  e->as_of = now;
}

double WorkloadMonitor::Folded(const Entry& e) const {
  return e.count * std::pow(decay_, static_cast<double>(ops_ - e.as_of));
}

void WorkloadMonitor::Observe(const DbOpEvent& ev) {
  MutexLock lock(&mu_);
  ++ops_;
  if (ev.kind == DbOpKind::kQuery && ev.naive) {
    Entry* pages = &naive_pages_[PathId(ev.path)];
    FoldTo(pages, ops_);
    // Cold-model touches (hits included): the selection signal must price
    // the workload identically at every buffer capacity, or a warm pool
    // would talk the controller out of ever indexing.
    pages->count += static_cast<double>(ev.pages.logical_total());
  }
  Entry* entry = nullptr;
  switch (ev.kind) {
    case DbOpKind::kQuery:
      entry = &queries_[PathId(ev.path)][ev.cls];
      break;
    case DbOpKind::kInsert:
      entry = &inserts_[ev.cls];
      break;
    case DbOpKind::kDelete:
      entry = &deletes_[ev.cls];
      break;
  }
  FoldTo(entry, ops_);
  entry->count += 1;
}

double WorkloadMonitor::DecayedTotal() const {
  ReaderMutexLock lock(&mu_);
  return DecayedTotalLocked();
}

double WorkloadMonitor::DecayedTotalLocked() const {
  double total = 0;
  for (const auto& [path, by_class] : queries_) {
    (void)path;
    for (const auto& [cls, e] : by_class) {
      (void)cls;
      total += Folded(e);
    }
  }
  for (const auto& [cls, e] : inserts_) {
    (void)cls;
    total += Folded(e);
  }
  for (const auto& [cls, e] : deletes_) {
    (void)cls;
    total += Folded(e);
  }
  return total;
}

LoadDistribution WorkloadMonitor::EstimatedLoad() const {
  ReaderMutexLock lock(&mu_);
  LoadDistribution load;
  const double total = DecayedTotalLocked();
  if (total <= 0) return load;
  std::unordered_map<ClassId, OpLoad> merged;
  for (const auto& [path, by_class] : queries_) {
    (void)path;
    for (const auto& [cls, e] : by_class) merged[cls].query += Folded(e);
  }
  for (const auto& [cls, e] : inserts_) merged[cls].insert += Folded(e);
  for (const auto& [cls, e] : deletes_) merged[cls].del += Folded(e);
  for (const auto& [cls, l] : merged) {
    load.Set(cls, l.query / total, l.insert / total, l.del / total);
  }
  return load;
}

LoadDistribution WorkloadMonitor::EstimatedLoadFor(
    const PathId& path, const std::set<ClassId>& scope) const {
  ReaderMutexLock lock(&mu_);
  LoadDistribution load;
  const double total = DecayedTotalLocked();
  if (total <= 0) return load;
  std::unordered_map<ClassId, OpLoad> merged;
  const auto it = queries_.find(path);
  if (it != queries_.end()) {
    for (const auto& [cls, e] : it->second) merged[cls].query += Folded(e);
  }
  for (const auto& [cls, e] : inserts_) {
    if (scope.count(cls) > 0) merged[cls].insert += Folded(e);
  }
  for (const auto& [cls, e] : deletes_) {
    if (scope.count(cls) > 0) merged[cls].del += Folded(e);
  }
  for (const auto& [cls, l] : merged) {
    load.Set(cls, l.query / total, l.insert / total, l.del / total);
  }
  return load;
}

double WorkloadMonitor::MeasuredNaiveQueryPagesPerOp(const PathId& path) const {
  ReaderMutexLock lock(&mu_);
  const double total = DecayedTotalLocked();
  if (total <= 0) return 0;
  const auto it = naive_pages_.find(path);
  return it == naive_pages_.end() ? 0 : Folded(it->second) / total;
}

double WorkloadMonitor::MeasuredNaiveQueryPagesPerOp() const {
  ReaderMutexLock lock(&mu_);
  const double total = DecayedTotalLocked();
  if (total <= 0) return 0;
  double pages = 0;
  for (const auto& [path, e] : naive_pages_) {
    (void)path;
    pages += Folded(e);
  }
  return pages / total;
}

void WorkloadMonitor::ExportMetrics(obs::MetricsRegistry* registry) const {
  double total = 0;
  std::uint64_t ops = 0;
  std::map<PathId, double> query_weight;
  std::map<PathId, double> naive_pages;
  {
    ReaderMutexLock lock(&mu_);
    total = DecayedTotalLocked();
    ops = ops_;
    for (const auto& [path, by_class] : queries_) {
      double weight = 0;
      for (const auto& [cls, e] : by_class) {
        (void)cls;
        weight += Folded(e);
      }
      query_weight[path] = total > 0 ? weight / total : 0;
    }
    for (const auto& [path, e] : naive_pages_) {
      naive_pages[path] = total > 0 ? Folded(e) / total : 0;
    }
  }
  registry->GaugeAt("pathix_monitor_decayed_total").Set(total);
  registry->CounterAt("pathix_monitor_ops_observed_total")
      .MirrorTo(static_cast<double>(ops));
  for (const auto& [path, weight] : query_weight) {
    registry->GaugeAt("pathix_monitor_query_weight", {{"path", path}})
        .Set(weight);
  }
  for (const auto& [path, pages] : naive_pages) {
    registry->GaugeAt("pathix_monitor_naive_pages_per_op", {{"path", path}})
        .Set(pages);
  }
}

void WorkloadMonitor::Reset() {
  MutexLock lock(&mu_);
  ops_ = 0;
  queries_.clear();
  inserts_.clear();
  deletes_.clear();
  naive_pages_.clear();
}

}  // namespace pathix
