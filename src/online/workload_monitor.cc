#include "online/workload_monitor.h"

#include <cmath>

namespace pathix {

WorkloadMonitor::WorkloadMonitor(double half_life_ops)
    : decay_(half_life_ops > 0 ? std::exp2(-1.0 / half_life_ops) : 1.0) {}

void WorkloadMonitor::FoldTo(Entry* e, std::uint64_t now) const {
  if (e->as_of == now) return;
  const double factor =
      std::pow(decay_, static_cast<double>(now - e->as_of));
  e->counts.query *= factor;
  e->counts.insert *= factor;
  e->counts.del *= factor;
  e->as_of = now;
}

void WorkloadMonitor::Observe(DbOpKind kind, ClassId cls) {
  ++ops_;
  Entry& e = entries_[cls];
  FoldTo(&e, ops_);
  switch (kind) {
    case DbOpKind::kQuery:
      e.counts.query += 1;
      break;
    case DbOpKind::kInsert:
      e.counts.insert += 1;
      break;
    case DbOpKind::kDelete:
      e.counts.del += 1;
      break;
  }
}

double WorkloadMonitor::DecayedTotal() const {
  double total = 0;
  for (const auto& [cls, e] : entries_) {
    (void)cls;
    Entry folded = e;
    FoldTo(&folded, ops_);
    total += folded.counts.query + folded.counts.insert + folded.counts.del;
  }
  return total;
}

LoadDistribution WorkloadMonitor::EstimatedLoad() const {
  LoadDistribution load;
  const double total = DecayedTotal();
  if (total <= 0) return load;
  for (const auto& [cls, e] : entries_) {
    Entry folded = e;
    FoldTo(&folded, ops_);
    load.Set(cls, folded.counts.query / total, folded.counts.insert / total,
             folded.counts.del / total);
  }
  return load;
}

void WorkloadMonitor::Reset() {
  ops_ = 0;
  entries_.clear();
}

}  // namespace pathix
