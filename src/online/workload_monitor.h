#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <unordered_map>

#include "common/mutex.h"
#include "exec/database.h"
#include "workload/load.h"

/// \file workload_monitor.h
/// \brief Exponentially-decayed estimation of the live load distribution,
/// per class and per path.
///
/// The paper's advisor assumes LD_{A_n} is known up front; the online
/// subsystem instead observes the operation stream of a SimDatabase and
/// maintains decayed operation counts. Queries are attributed to the path
/// they ran on (a workload of overlapping paths has one query load *per
/// path*); insertions and deletions are path-agnostic — one object churn
/// maintains the indexes of every path whose scope contains the class, so
/// its frequency enters every such path's load, exactly the accounting
/// under which the workload advisor charges a shared index's maintenance
/// once. Old traffic fades with a configurable half-life, so the estimate
/// tracks drift with O(paths x classes) state and O(1) amortized work per
/// operation — no unbounded history.

namespace pathix {

namespace obs {
class MetricsRegistry;
}  // namespace obs

/// \brief Decayed per-path per-class query counters plus per-class update
/// counters.
///
/// Counts decay by factor 2^(-1/half_life) per observed operation, applied
/// lazily: each entry remembers the operation index it was last folded at.
/// A stationary stream converges to weights proportional to the true mix;
/// after a phase shift the old phase's influence halves every half_life
/// operations. All estimates are normalized by the *shared* decayed total,
/// so per-path loads are mutually comparable (the joint optimizer's
/// max-across-uses maintenance charge relies on a common scale).
class WorkloadMonitor {
 public:
  /// \p half_life_ops <= 0 disables decay (plain counting).
  explicit WorkloadMonitor(double half_life_ops = 512);

  /// Records one operation. Queries are keyed by \p ev.path (empty path =
  /// the anonymous single-path stream); updates are keyed by class only.
  void Observe(const DbOpEvent& ev) EXCLUDES(mu_);

  /// Single-path convenience: queries land on the anonymous path, with no
  /// measured pages attached.
  void Observe(DbOpKind kind, ClassId cls) {
    Observe({kind, cls, {}, false, {}});
  }

  /// The all-paths estimate, normalized so all frequencies sum to 1 — the
  /// single-path controller's view (every query, whatever path it names,
  /// plus every update). Empty (all-zero) until the first observation.
  LoadDistribution EstimatedLoad() const EXCLUDES(mu_);

  /// The estimate for one path of a workload: that path's query
  /// frequencies, plus the update frequencies of the classes in \p scope.
  /// Normalized by the same shared total as every other path's estimate.
  LoadDistribution EstimatedLoadFor(const PathId& path,
                                    const std::set<ClassId>& scope) const
      EXCLUDES(mu_);

  /// Decayed measured pages of *naive-scan* queries on \p path per observed
  /// operation (same shared normalization scale as the frequency
  /// estimates) — the priced current-cost of an unconfigured path, directly
  /// comparable to the cost model's expected pages per operation. Zero
  /// until a naive query on the path has been observed.
  double MeasuredNaiveQueryPagesPerOp(const PathId& path) const EXCLUDES(mu_);

  /// The all-paths aggregate (the single-path controller's view).
  double MeasuredNaiveQueryPagesPerOp() const EXCLUDES(mu_);

  /// Decayed total weight across all paths, classes and kinds.
  double DecayedTotal() const EXCLUDES(mu_);

  std::uint64_t ops_observed() const EXCLUDES(mu_) {
    ReaderMutexLock lock(&mu_);
    return ops_;
  }

  void Reset() EXCLUDES(mu_);

  /// Mirrors the drift estimate into \p registry (obs/metrics.h): gauges
  /// pathix_monitor_decayed_total, pathix_monitor_query_weight{path} (the
  /// path's share of the decayed weight) and
  /// pathix_monitor_naive_pages_per_op{path}, plus the
  /// pathix_monitor_ops_observed_total counter. Estimates are collected
  /// under mu_ first; metric mutexes are only taken after it is released.
  void ExportMetrics(obs::MetricsRegistry* registry) const EXCLUDES(mu_);

 private:
  struct Entry {
    double count = 0;
    std::uint64_t as_of = 0;  ///< operation index the count is decayed to
  };

  /// count * decay^(now - as_of), folding the entry forward. \p e points
  /// into one of the guarded maps, hence the lock requirement.
  void FoldTo(Entry* e, std::uint64_t now) const REQUIRES(mu_);
  double Folded(const Entry& e) const REQUIRES_SHARED(mu_);

  /// DecayedTotal for callers already holding mu_ (shared_mutex does not
  /// support recursive locking).
  double DecayedTotalLocked() const REQUIRES_SHARED(mu_);

  mutable Mutex mu_;
  double decay_ = 1;  ///< per-operation decay factor; constant after ctor
  std::uint64_t ops_ GUARDED_BY(mu_) = 0;
  /// Query counts per (path, class); updates per class.
  std::map<PathId, std::unordered_map<ClassId, Entry>> queries_
      GUARDED_BY(mu_);
  std::unordered_map<ClassId, Entry> inserts_ GUARDED_BY(mu_);
  std::unordered_map<ClassId, Entry> deletes_ GUARDED_BY(mu_);
  /// Decayed measured pages of naive-scan queries, per path (the events'
  /// pages deltas, weighted with the same decay as the counts).
  std::map<PathId, Entry> naive_pages_ GUARDED_BY(mu_);
};

}  // namespace pathix
