#pragma once

#include <cstdint>
#include <unordered_map>

#include "exec/database.h"
#include "workload/load.h"

/// \file workload_monitor.h
/// \brief Exponentially-decayed estimation of the live load distribution.
///
/// The paper's advisor assumes LD_{A_n} is known up front; the online
/// subsystem instead observes the operation stream of a SimDatabase and
/// maintains per-class decayed operation counts. Old traffic fades with a
/// configurable half-life, so the estimate tracks drift with O(classes)
/// state and O(1) amortized work per operation — no unbounded history.

namespace pathix {

/// \brief Decayed per-class (alpha, beta, gamma) counters.
///
/// Counts decay by factor 2^(-1/half_life) per observed operation, applied
/// lazily: each class entry remembers the operation index it was last
/// folded at. A stationary stream converges to weights proportional to the
/// true mix; after a phase shift the old phase's influence halves every
/// half_life operations.
class WorkloadMonitor {
 public:
  /// \p half_life_ops <= 0 disables decay (plain counting).
  explicit WorkloadMonitor(double half_life_ops = 512);

  void Observe(DbOpKind kind, ClassId cls);

  /// The current estimate, normalized so all frequencies sum to 1 — the
  /// cost-model weighting then prices "expected index pages per operation".
  /// Empty (all-zero) until the first observation.
  LoadDistribution EstimatedLoad() const;

  /// Decayed total weight across all classes and kinds.
  double DecayedTotal() const;

  std::uint64_t ops_observed() const { return ops_; }

  void Reset();

 private:
  struct Entry {
    OpLoad counts;
    std::uint64_t as_of = 0;  ///< operation index counts are decayed to
  };

  /// counts * decay^(ops_ - as_of), folding the entry forward.
  void FoldTo(Entry* e, std::uint64_t now) const;

  double decay_ = 1;  ///< per-operation decay factor
  std::uint64_t ops_ = 0;
  std::unordered_map<ClassId, Entry> entries_;
};

}  // namespace pathix
