#include "schema/path.h"

#include <unordered_set>

namespace pathix {

Result<Path> Path::Create(const Schema& schema, ClassId starting_class,
                          const std::vector<std::string>& attr_names) {
  if (!schema.IsValidClass(starting_class)) {
    return Status::InvalidArgument("starting class is not part of the schema");
  }
  if (attr_names.empty()) {
    return Status::InvalidArgument("a path needs at least one attribute");
  }
  Path p;
  std::unordered_set<ClassId> seen;
  ClassId cur = starting_class;
  for (std::size_t i = 0; i < attr_names.size(); ++i) {
    if (!seen.insert(cur).second) {
      return Status::InvalidArgument(
          "class '" + schema.GetClass(cur).name() +
          "' appears more than once in the path (Def. 2.1)");
    }
    const Attribute* attr = schema.ResolveAttribute(cur, attr_names[i]);
    if (attr == nullptr) {
      return Status::InvalidArgument("class '" + schema.GetClass(cur).name() +
                                     "' has no attribute '" + attr_names[i] +
                                     "'");
    }
    p.classes_.push_back(cur);
    p.attrs_.push_back(*attr);
    const bool last = (i + 1 == attr_names.size());
    if (!last) {
      if (attr->kind != AttrKind::kReference) {
        return Status::InvalidArgument(
            "attribute '" + attr->name +
            "' is atomic and cannot be navigated further");
      }
      cur = attr->domain;
    }
  }
  return p;
}

std::vector<ClassId> Path::Scope(const Schema& schema) const {
  std::vector<ClassId> out;
  for (ClassId c : classes_) {
    const std::vector<ClassId> hier = schema.HierarchyOf(c);
    out.insert(out.end(), hier.begin(), hier.end());
  }
  return out;
}

std::string Path::ToString(const Schema& schema) const {
  std::string out = schema.GetClass(classes_.front()).name();
  for (const Attribute& a : attrs_) {
    out += ".";
    out += a.name;
  }
  return out;
}

Path Path::SubpathBetween(int a, int b) const {
  PATHIX_DCHECK(1 <= a && a <= b && b <= length());
  Path p;
  p.classes_.assign(classes_.begin() + (a - 1), classes_.begin() + b);
  p.attrs_.assign(attrs_.begin() + (a - 1), attrs_.begin() + b);
  return p;
}

}  // namespace pathix
