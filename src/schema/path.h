#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "schema/schema.h"

/// \file path.h
/// \brief Paths through an aggregation hierarchy (Definition 2.1 of the
/// paper) and the class(P)/scope(P) notions built on them.

namespace pathix {

/// \brief A path P = C1.A1.A2.....An through an aggregation hierarchy.
///
/// Level l (1-based, following the paper) associates class C_l with its
/// attribute A_l; the domain of A_{l-1} is C_l. The ending attribute A_n may
/// be atomic (a full query path) or a reference (a subpath whose index keys
/// are oids of C_{n+1}).
///
/// Definition 2.1 constraints enforced by Create():
///  - C1 is a class of the schema and A1 an attribute of C1;
///  - A_l is an attribute of C_l where C_l is the domain of A_{l-1};
///  - a class appears at most once along the path.
class Path {
 public:
  /// An empty path; usable only as an assignment target.
  Path() = default;

  /// Builds and validates a path from a starting class and attribute names,
  /// e.g. Create(schema, person, {"owns", "man", "divs", "name"}).
  static Result<Path> Create(const Schema& schema, ClassId starting_class,
                             const std::vector<std::string>& attr_names);

  /// len(P): number of classes along the path.
  int length() const { return static_cast<int>(classes_.size()); }

  /// Class C_l for level l in [1, length()].
  ClassId class_at(int level) const {
    PATHIX_DCHECK(level >= 1 && level <= length());
    return classes_[level - 1];
  }

  /// Attribute A_l for level l in [1, length()].
  const Attribute& attribute_at(int level) const {
    PATHIX_DCHECK(level >= 1 && level <= length());
    return attrs_[level - 1];
  }

  /// True iff the ending attribute A_n is a reference attribute, i.e. this
  /// path is usable only as a subpath whose index keys are oids.
  bool ends_in_reference() const {
    return attrs_.back().kind == AttrKind::kReference;
  }

  /// class(P): the classes along the path, in order.
  const std::vector<ClassId>& classes() const { return classes_; }

  /// scope(P): class(P) plus all their transitive subclasses, grouped per
  /// level (level l's hierarchy first has the root C_l then its subclasses).
  std::vector<ClassId> Scope(const Schema& schema) const;

  /// "Per.owns.man.divs.name"-style rendering.
  std::string ToString(const Schema& schema) const;

  /// The sub-path C_a.A_a....A_b for 1 <= a <= b <= length().
  Path SubpathBetween(int a, int b) const;

 private:
  std::vector<ClassId> classes_;
  std::vector<Attribute> attrs_;
};

}  // namespace pathix
