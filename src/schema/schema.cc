#include "schema/schema.h"

#include <deque>
#include <unordered_set>

namespace pathix {

Result<ClassId> Schema::AddClass(const std::string& name, ClassId superclass) {
  if (name.empty()) {
    return Status::InvalidArgument("class name must not be empty");
  }
  if (FindClass(name) != kInvalidClass) {
    return Status::AlreadyExists("class '" + name + "' already defined");
  }
  if (superclass != kInvalidClass && !IsValidClass(superclass)) {
    return Status::InvalidArgument("superclass id out of range for class '" +
                                   name + "'");
  }
  const ClassId id = static_cast<ClassId>(classes_.size());
  classes_.emplace_back(id, name, superclass);
  if (superclass != kInvalidClass) {
    classes_[superclass].subclasses_.push_back(id);
  }
  return id;
}

Status Schema::AddAtomicAttribute(ClassId cls, const std::string& name,
                                  AtomicType type, bool multi_valued) {
  if (!IsValidClass(cls)) {
    return Status::InvalidArgument("invalid class id");
  }
  if (ResolveAttribute(cls, name) != nullptr) {
    return Status::AlreadyExists("attribute '" + name + "' already defined");
  }
  Attribute a;
  a.name = name;
  a.kind = AttrKind::kAtomic;
  a.atomic_type = type;
  a.multi_valued = multi_valued;
  classes_[cls].attrs_.push_back(std::move(a));
  return Status::OK();
}

Status Schema::AddReferenceAttribute(ClassId cls, const std::string& name,
                                     ClassId domain, bool multi_valued) {
  if (!IsValidClass(cls)) {
    return Status::InvalidArgument("invalid class id");
  }
  if (!IsValidClass(domain)) {
    return Status::InvalidArgument("invalid domain class id for attribute '" +
                                   name + "'");
  }
  if (ResolveAttribute(cls, name) != nullptr) {
    return Status::AlreadyExists("attribute '" + name + "' already defined");
  }
  Attribute a;
  a.name = name;
  a.kind = AttrKind::kReference;
  a.domain = domain;
  a.multi_valued = multi_valued;
  classes_[cls].attrs_.push_back(std::move(a));
  return Status::OK();
}

const ClassDef& Schema::GetClass(ClassId id) const {
  PATHIX_DCHECK(IsValidClass(id));
  return classes_[id];
}

ClassId Schema::FindClass(const std::string& name) const {
  for (const ClassDef& c : classes_) {
    if (c.name() == name) return c.id();
  }
  return kInvalidClass;
}

const Attribute* Schema::ResolveAttribute(ClassId cls,
                                          const std::string& attr_name) const {
  ClassId cur = cls;
  while (cur != kInvalidClass) {
    const ClassDef& c = GetClass(cur);
    for (const Attribute& a : c.own_attributes()) {
      if (a.name == attr_name) return &a;
    }
    cur = c.superclass();
  }
  return nullptr;
}

bool Schema::IsSameOrSubclassOf(ClassId cls, ClassId ancestor) const {
  ClassId cur = cls;
  while (cur != kInvalidClass) {
    if (cur == ancestor) return true;
    cur = GetClass(cur).superclass();
  }
  return false;
}

std::vector<ClassId> Schema::HierarchyOf(ClassId root) const {
  PATHIX_DCHECK(IsValidClass(root));
  std::vector<ClassId> out;
  std::deque<ClassId> queue{root};
  while (!queue.empty()) {
    const ClassId cur = queue.front();
    queue.pop_front();
    out.push_back(cur);
    for (ClassId sub : GetClass(cur).subclasses()) {
      queue.push_back(sub);
    }
  }
  return out;
}

Status Schema::Validate() const {
  for (const ClassDef& c : classes_) {
    // Inheritance chains must terminate (no cycles).
    std::unordered_set<ClassId> seen;
    ClassId cur = c.id();
    while (cur != kInvalidClass) {
      if (!seen.insert(cur).second) {
        return Status::FailedPrecondition("inheritance cycle through class '" +
                                          c.name() + "'");
      }
      if (!IsValidClass(cur)) {
        return Status::FailedPrecondition("dangling superclass id");
      }
      cur = GetClass(cur).superclass();
    }
    // Attribute domains must be valid; names unique along the chain.
    std::unordered_set<std::string> names;
    ClassId walk = c.id();
    while (walk != kInvalidClass) {
      for (const Attribute& a : GetClass(walk).own_attributes()) {
        if (!names.insert(a.name).second) {
          return Status::FailedPrecondition(
              "attribute '" + a.name + "' multiply defined along hierarchy of '" +
              c.name() + "'");
        }
        if (a.kind == AttrKind::kReference && !IsValidClass(a.domain)) {
          return Status::FailedPrecondition("attribute '" + a.name +
                                            "' has an invalid domain class");
        }
      }
      walk = GetClass(walk).superclass();
    }
  }
  return Status::OK();
}

}  // namespace pathix
