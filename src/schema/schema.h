#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"

/// \file schema.h
/// \brief Object-oriented logical schema: classes with attributes, part-of
/// (aggregation) relationships and inheritance hierarchies, mirroring the
/// data model of Section 1 of the paper.

namespace pathix {

/// Kind of attribute domain.
enum class AttrKind {
  kAtomic,     ///< integer / string valued
  kReference,  ///< domain is another class (part-of relationship)
};

/// Atomic value type of an atomic attribute.
enum class AtomicType {
  kInt,
  kString,
};

/// \brief One attribute of a class.
///
/// A reference attribute establishes a part-of relationship: its domain is
/// another class (and, implicitly, that class's inheritance hierarchy).
/// Multi-valued attributes (marked '+' in Figure 1) hold a set of values.
struct Attribute {
  std::string name;
  AttrKind kind = AttrKind::kAtomic;
  AtomicType atomic_type = AtomicType::kString;  ///< meaningful iff kAtomic
  ClassId domain = kInvalidClass;                ///< meaningful iff kReference
  bool multi_valued = false;
};

/// \brief A class definition: named attributes plus an optional superclass.
class ClassDef {
 public:
  ClassDef(ClassId id, std::string name, ClassId superclass)
      : id_(id), name_(std::move(name)), superclass_(superclass) {}

  ClassId id() const { return id_; }
  const std::string& name() const { return name_; }
  ClassId superclass() const { return superclass_; }
  const std::vector<ClassId>& subclasses() const { return subclasses_; }
  /// Attributes declared directly on this class (inherited ones excluded).
  const std::vector<Attribute>& own_attributes() const { return attrs_; }

 private:
  friend class Schema;

  ClassId id_;
  std::string name_;
  ClassId superclass_ = kInvalidClass;
  std::vector<ClassId> subclasses_;  // direct subclasses
  std::vector<Attribute> attrs_;
};

/// \brief A database schema: the set of classes with their aggregation and
/// inheritance relationships.
///
/// Built programmatically:
/// \code
///   Schema s;
///   ClassId person = s.AddClass("Person").value();
///   ClassId vehicle = s.AddClass("Vehicle").value();
///   ClassId bus = s.AddClass("Bus", vehicle).value();
///   s.AddReferenceAttribute(person, "owns", vehicle, /*multi_valued=*/true);
///   s.AddAtomicAttribute(vehicle, "color", AtomicType::kString);
/// \endcode
class Schema {
 public:
  /// Creates a class; \p superclass links it into an inheritance hierarchy.
  Result<ClassId> AddClass(const std::string& name,
                           ClassId superclass = kInvalidClass);

  /// Adds an atomic attribute to \p cls.
  Status AddAtomicAttribute(ClassId cls, const std::string& name,
                            AtomicType type, bool multi_valued = false);

  /// Adds a reference (part-of) attribute to \p cls with domain \p domain.
  Status AddReferenceAttribute(ClassId cls, const std::string& name,
                               ClassId domain, bool multi_valued = false);

  int num_classes() const { return static_cast<int>(classes_.size()); }
  bool IsValidClass(ClassId id) const {
    return id >= 0 && id < num_classes();
  }
  const ClassDef& GetClass(ClassId id) const;
  /// Returns kInvalidClass if no class has this name.
  ClassId FindClass(const std::string& name) const;

  /// Resolves \p attr_name on \p cls, searching superclasses (inheritance).
  /// Returns the attribute or nullptr.
  const Attribute* ResolveAttribute(ClassId cls,
                                    const std::string& attr_name) const;

  /// True if \p cls equals \p ancestor or transitively specializes it.
  bool IsSameOrSubclassOf(ClassId cls, ClassId ancestor) const;

  /// The inheritance hierarchy rooted at \p root: root first, then all
  /// transitive subclasses in discovery (BFS) order. This is the paper's
  /// C+ notation.
  std::vector<ClassId> HierarchyOf(ClassId root) const;

  /// Verifies referential integrity of the schema (valid domains, no
  /// inheritance cycles, unique attribute names per class).
  Status Validate() const;

 private:
  std::vector<ClassDef> classes_;
};

}  // namespace pathix
