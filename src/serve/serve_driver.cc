#include "serve/serve_driver.h"

#include <chrono>
#include <string>
#include <thread>
#include <utility>

namespace pathix {

namespace {

using SteadyClock = std::chrono::steady_clock;

double MicrosSince(SteadyClock::time_point start) {
  return std::chrono::duration<double, std::micro>(SteadyClock::now() - start)
      .count();
}

/// Worker \p w's share of \p ops under the stripe split (workers
/// 0..ops%N-1 take the remainder).
std::uint64_t OpsForWorker(std::uint64_t ops, std::size_t w, std::size_t n) {
  return ops / n + (w < ops % n ? 1 : 0);
}

}  // namespace

ServeDriver::ServeDriver(SimDatabase* db, const TraceSpec& spec,
                         ServeOptions options)
    : db_(db),
      spec_(&spec),
      threads_(options.threads > 0 ? options.threads : 1) {
  rngs_.reserve(static_cast<std::size_t>(threads_));
  // Worker 0 is the replayer's stream, bit for bit; the other workers mix
  // the thread id in with the golden-ratio constant so nearby seeds do not
  // collide across streams.
  rngs_.emplace_back(spec.seed);
  for (int t = 1; t < threads_; ++t) {
    rngs_.emplace_back(static_cast<std::mt19937::result_type>(
        spec.seed + 0x9E3779B9u * static_cast<unsigned>(t)));
  }
  shards_.resize(static_cast<std::size_t>(threads_));
  for (const TracePath& tp : spec.paths) {
    const Status registered = db_->RegisterPath(tp.id, tp.path);
    PATHIX_DCHECK(registered.ok());
    (void)registered;
  }
}

void ServeDriver::Populate() {
  std::vector<ClassGenSpec> specs;
  specs.reserve(spec_->populate.size());
  for (const TracePopulate& p : spec_->populate) {
    specs.push_back(ClassGenSpec{p.cls, p.count, p.distinct_values, p.nin});
  }
  std::vector<const Path*> paths;
  paths.reserve(spec_->paths.size());
  for (const TracePath& tp : spec_->paths) paths.push_back(&tp.path);
  PathDataGenerator gen(spec_->seed);
  std::map<ClassId, std::vector<Oid>> live = gen.Populate(db_, paths, specs);

  // Round-robin stripe: oid i of a class lands in shard i % N, so with one
  // worker shard 0 *is* the replayer's pool, in the same order.
  for (auto& shard : shards_) shard.clear();
  const auto n = static_cast<std::size_t>(threads_);
  for (auto& [cls, oids] : live) {
    for (std::size_t i = 0; i < oids.size(); ++i) {
      shards_[i % n][cls].push_back(oids[i]);
    }
  }
}

std::map<ClassId, std::vector<Oid>> ServeDriver::LiveMerged() const {
  std::map<ClassId, std::vector<Oid>> merged;
  for (const auto& shard : shards_) {
    for (const auto& [cls, oids] : shard) {
      std::vector<Oid>& out = merged[cls];
      out.insert(out.end(), oids.begin(), oids.end());
    }
  }
  return merged;
}

ServePhaseReport ServeDriver::RunPhaseOps(std::size_t phase_index) {
  const TracePhase& phase = spec_->phases[phase_index];
  ServePhaseReport out;
  out.threads = threads_;
  PhaseReport& report = out.phase;
  report.name = phase.name;
  report.ops = phase.ops;

  const std::vector<TraceOpExecutor::MixEntry> entries =
      TraceOpExecutor::FlattenMix(phase);
  if (entries.empty()) return out;
  std::vector<double> weights;
  weights.reserve(entries.size());
  for (const TraceOpExecutor::MixEntry& e : entries) {
    weights.push_back(e.weight);
  }

  obs::MetricsRegistry& metrics = db_->metrics();
  obs::Counter& epoch_counter =
      metrics.CounterAt("pathix_db_config_epochs_total");
  const double epochs_before = epoch_counter.Value();

  const auto n = static_cast<std::size_t>(threads_);
  std::vector<PhaseReport> tallies(n);
  std::vector<obs::HistogramData> latencies(n);
  const AccessProbe probe(db_->pager());
  const SteadyClock::time_point phase_start = SteadyClock::now();

  // The op loop is the replayer's, per worker: own distribution object, own
  // RNG stream, own pool shard, own tallies. Nothing here is shared
  // mutably across workers — contention lives inside the database.
  const auto worker = [&](std::size_t w) {
    std::discrete_distribution<std::size_t> pick(weights.begin(),
                                                 weights.end());
    TraceOpExecutor exec(db_, spec_, &rngs_[w], &shards_[w]);
    PhaseReport& tally = tallies[w];
    obs::HistogramData& latency = latencies[w];
    const std::uint64_t count = OpsForWorker(phase.ops, w, n);
    for (std::uint64_t i = 0; i < count; ++i) {
      const SteadyClock::time_point op_start = SteadyClock::now();
      exec.RunOne(entries[pick(rngs_[w])], &tally);
      latency.Observe(MicrosSince(op_start));
    }
  };
  if (n == 1) {
    worker(0);  // no spawn: the determinism vehicle stays on this thread
  } else {
    std::vector<std::thread> spawned;
    spawned.reserve(n - 1);
    for (std::size_t w = 1; w < n; ++w) spawned.emplace_back(worker, w);
    worker(0);
    for (std::thread& t : spawned) t.join();
  }

  out.wall_seconds = std::chrono::duration<double>(SteadyClock::now() -
                                                   phase_start)
                         .count();
  // All worker frames folded into the pager at op scope exit; after the
  // join the global delta is the phase's aggregate traffic.
  report.pages = probe.Delta().total();

  // Phase boundary: fold the per-thread tallies into the merged report and
  // flush them into the registry (one histogram lock total per worker).
  for (std::size_t w = 0; w < n; ++w) {
    const PhaseReport& tally = tallies[w];
    for (const auto& [id, c] : tally.query_ops) report.query_ops[id] += c;
    for (const auto& [id, c] : tally.naive_query_ops) {
      report.naive_query_ops[id] += c;
    }
    report.insert_ops += tally.insert_ops;
    report.delete_ops += tally.delete_ops;
    report.noop_ops += tally.noop_ops;
    out.latency_us.MergeFrom(latencies[w]);
    metrics
        .CounterAt("pathix_serve_worker_ops_total",
                   {{"worker", std::to_string(w)}})
        .Increment(static_cast<double>(OpsForWorker(phase.ops, w, n)));
  }
  metrics.HistogramAt("pathix_serve_op_latency_us").MergeFrom(out.latency_us);
  metrics.CounterAt("pathix_serve_phases_total").Increment();

  out.epoch_swaps =
      static_cast<std::uint64_t>(epoch_counter.Value() - epochs_before + 0.5);
  out.ops_per_sec = out.wall_seconds > 0
                        ? static_cast<double>(phase.ops) / out.wall_seconds
                        : 0;
  return out;
}

}  // namespace pathix
