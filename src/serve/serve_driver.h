#pragma once

#include <cstdint>
#include <map>
#include <random>
#include <vector>

#include "online/trace.h"

/// \file serve_driver.h
/// \brief The concurrent serving engine: replays a trace spec's phase mixes
/// from N worker threads against one SimDatabase.
///
/// Thread model. Phase ops are split across workers by stripe: worker w
/// executes ceil/floor(ops/N) operations drawn from its *own* RNG stream
/// and its *own* shard of the live-oid pools, so the op path has zero
/// cross-thread coordination — workers meet only inside the database
/// (latched shards, epoch-pinned queries, the commit mutex's reader side)
/// and at phase boundaries, where per-thread tallies fold into the merged
/// report and the MetricsRegistry.
///
/// Determinism contract. Worker 0's RNG is seeded exactly like the
/// single-threaded TraceReplayer's (mt19937(spec.seed), advanced across
/// phases); worker t > 0 derives its stream from (seed, t). Pool shards
/// are striped round-robin from the same deterministic population. With
/// --threads=1 the driver therefore executes the replayer's *byte-identical*
/// op sequence — same event log, same decision ledger, same tallies
/// (tests/online/replay_determinism_test.cc pins this). With N > 1 each
/// worker's op sequence is deterministic; the interleaving between workers
/// is scheduling-dependent, which is the point — it exercises the engine's
/// concurrency under a reproducible per-thread workload.
///
/// Reconfiguration under load. A controller attached to the database runs
/// its drift checks on whichever worker claims them (TryLock arbitration);
/// its commit swaps configuration epochs while the other workers keep
/// serving — in-flight queries finish on the old epoch's parts. The phase
/// report counts the epoch publishes it served through.

namespace pathix {

/// Knobs of one serving run.
struct ServeOptions {
  int threads = 1;  ///< worker count (1 = the replayer's exact sequence)
};

/// Measured outcome of one concurrently-served phase.
struct ServePhaseReport {
  /// The merged phase tallies (ops, pages, per-kind/per-path executed-op
  /// counts, controller charges and decision slice) — same semantics as
  /// the single-threaded replayer's report.
  PhaseReport phase;
  int threads = 1;
  double wall_seconds = 0;
  double ops_per_sec = 0;
  /// Per-op wall latency in microseconds, merged across workers (p50/p99
  /// via HistogramData::Percentile).
  obs::HistogramData latency_us;
  /// Configuration epochs the database published during the phase (the
  /// pathix_db_config_epochs_total delta): reconfigurations served through
  /// without stopping.
  std::uint64_t epoch_swaps = 0;
};

/// \brief Serves the phases of one trace spec from N worker threads.
class ServeDriver {
 public:
  /// \p db must already hold the spec's schema; the constructor registers
  /// every spec path under its id. \p spec must outlive the driver.
  ServeDriver(SimDatabase* db, const TraceSpec& spec, ServeOptions options);

  /// Generates the initial population (uncounted, deterministic — same
  /// data as TraceReplayer::Populate) and stripes the live oid pools
  /// round-robin across the worker shards.
  void Populate();

  /// Serves phase \p phase_index from options.threads workers. With a
  /// controller, its transition charges, reconfiguration count and
  /// decision-ledger slice over the phase are captured into the report —
  /// identical bookkeeping to TraceReplayer::RunPhase.
  ServePhaseReport RunPhase(std::size_t phase_index) {
    return RunPhaseWith<ReconfigurationController>(phase_index, nullptr);
  }
  ServePhaseReport RunPhase(std::size_t phase_index,
                            ReconfigurationController* controller) {
    return RunPhaseWith(phase_index, controller);
  }
  ServePhaseReport RunPhase(std::size_t phase_index,
                            JointReconfigurationController* controller) {
    return RunPhaseWith(phase_index, controller);
  }

  int threads() const { return threads_; }

  /// Worker \p w's live-oid pool shard (inspection/tests).
  const std::map<ClassId, std::vector<Oid>>& shard(int w) const {
    return shards_[static_cast<std::size_t>(w)];
  }

  /// All shards merged: total live oids per class, in shard-stripe order
  /// (final statistics collection, test assertions).
  std::map<ClassId, std::vector<Oid>> LiveMerged() const;

 private:
  /// The controller-charge capture of TraceReplayer::RunPhaseWith, around
  /// the concurrent phase run.
  template <typename Controller>
  ServePhaseReport RunPhaseWith(std::size_t phase_index,
                                Controller* controller) {
    const double charged_before =
        controller != nullptr ? controller->transition_pages_charged() : 0;
    const double measured_before =
        controller != nullptr ? controller->measured_transition_pages_charged()
                              : 0;
    const std::uint64_t events_before =
        controller != nullptr ? controller->events_committed() : 0;
    const std::uint64_t decisions_before =
        controller != nullptr ? controller->decisions_committed() : 0;
    ServePhaseReport out = RunPhaseOps(phase_index);
    PhaseReport& report = out.phase;
    if (controller != nullptr) {
      report.transition_pages =
          controller->transition_pages_charged() - charged_before;
      report.measured_transition_pages =
          controller->measured_transition_pages_charged() - measured_before;
      report.reconfigurations =
          static_cast<int>(controller->events_committed() - events_before);
      report.decisions_captured =
          controller->decisions_committed() - decisions_before;
      const std::vector<DecisionRecord>& ledger = controller->decisions();
      const std::uint64_t retained_start =
          controller->decisions_committed() -
          static_cast<std::uint64_t>(ledger.size());
      const std::uint64_t slice_start =
          decisions_before > retained_start ? decisions_before
                                            : retained_start;
      for (std::size_t i =
               static_cast<std::size_t>(slice_start - retained_start);
           i < ledger.size(); ++i) {
        report.decisions.push_back(ledger[i]);
        report.decisions.back().phase = report.name;
      }
    }
    return out;
  }

  /// The concurrent run itself: spawn, stripe, merge, flush metrics.
  ServePhaseReport RunPhaseOps(std::size_t phase_index);

  SimDatabase* db_;
  const TraceSpec* spec_;
  int threads_;
  /// Worker RNG streams, persistent across phases (worker 0's is the
  /// replayer's stream).
  std::vector<std::mt19937> rngs_;
  /// Worker live-oid pool shards: each live oid is in exactly one shard,
  /// so two workers never race to delete the same object by construction
  /// (the store's claim-first Take covers adversarial callers anyway).
  std::vector<std::map<ClassId, std::vector<Oid>>> shards_;
};

}  // namespace pathix
