#include "storage/buffer_pool.h"

#include <algorithm>

namespace pathix {

/// RAII lock on the shard currently responsible for one page. Acquiring
/// any shard mutex blocks a concurrent Resize (which needs them all), so
/// re-validating the shard count under the lock pins the page->shard
/// mapping for the critical section.
class BufferPool::LockedShard {
 public:
  LockedShard(const BufferPool* pool, PageId page) NO_THREAD_SAFETY_ANALYSIS {
    for (;;) {
      const std::size_t count =
          pool->shard_count_.load(std::memory_order_acquire);
      Shard& s = pool->shards_[ShardIndex(page, count)];
      s.mu.Lock();
      if (count == pool->shard_count_.load(std::memory_order_relaxed)) {
        shard_ = &s;
        return;
      }
      s.mu.Unlock();  // resized between the load and the lock: re-route
    }
  }
  ~LockedShard() NO_THREAD_SAFETY_ANALYSIS { shard_->mu.Unlock(); }

  LockedShard(const LockedShard&) = delete;
  LockedShard& operator=(const LockedShard&) = delete;

  Shard& shard() const { return *shard_; }

 private:
  Shard* shard_ = nullptr;
};

std::size_t BufferPool::ShardCountFor(std::size_t capacity) {
  std::size_t shards = 1;
  while (shards < kMaxShards &&
         capacity / (shards * 2) >= kShardingThreshold) {
    shards *= 2;
  }
  return shards;
}

void BufferPool::LockAllShards() const {
  for (Shard& s : shards_) s.mu.Lock();
}

void BufferPool::UnlockAllShards() const {
  for (std::size_t i = shards_.size(); i > 0; --i) {
    shards_[i - 1].mu.Unlock();
  }
}

BufferTouchResult BufferPool::TouchRead(PageId page, bool pin) {
  LockedShard locked(this, page);
  Shard& s = locked.shard();
  s.mu.AssertHeld();
  return TouchLocked(s, page, /*write=*/false, pin);
}

BufferTouchResult BufferPool::TouchWrite(PageId page, bool pin) {
  LockedShard locked(this, page);
  Shard& s = locked.shard();
  s.mu.AssertHeld();
  return TouchLocked(s, page, /*write=*/true, pin);
}

BufferTouchResult BufferPool::TouchLocked(Shard& s, PageId page, bool write,
                                          bool pin) {
  BufferTouchResult r;
  auto it = s.table.find(page);
  if (it != s.table.end()) {
    Frame& f = s.frames[it->second];
    f.ref = true;  // second chance
    if (write) {
      f.dirty = true;
      ++s.stats.write_hits;
    } else {
      ++s.stats.read_hits;
    }
    if (pin) ++f.pins;
    r.hit = true;
    r.admitted = true;
    return r;
  }
  if (write) {
    ++s.stats.write_misses;
  } else {
    ++s.stats.read_misses;
  }
  if (s.capacity == 0) return r;  // shard holds nothing: pass through
  while (s.table.size() >= s.capacity) {
    bool wrote_back = false;
    if (!EvictOne(s, &wrote_back)) {
      ++s.stats.pin_bypasses;  // every frame pinned: pass through
      return r;
    }
    if (wrote_back) ++r.writebacks;
  }
  std::size_t slot;
  if (!s.free_slots.empty()) {
    slot = s.free_slots.back();
    s.free_slots.pop_back();
  } else {
    slot = s.frames.size();
    s.frames.emplace_back();
  }
  Frame& f = s.frames[slot];
  f.page = page;
  f.ref = true;
  f.dirty = write;
  f.pins = pin ? 1 : 0;
  s.table.emplace(page, slot);
  r.admitted = true;
  return r;
}

bool BufferPool::EvictOne(Shard& s, bool* wrote_back) {
  const std::size_t n = s.frames.size();
  if (n == 0) return false;
  // One full sweep may only clear reference bits; the second then finds a
  // victim. Only pinned frames survive 2n probes.
  for (std::size_t step = 0; step < 2 * n + 1; ++step) {
    const std::size_t here = s.hand;
    s.hand = (s.hand + 1) % n;
    Frame& f = s.frames[here];
    if (f.page == kInvalidPage) continue;  // free slot
    if (f.pins > 0) continue;              // pinned frames never leave
    if (f.ref) {
      f.ref = false;  // spend the second chance
      continue;
    }
    *wrote_back = f.dirty;
    if (f.dirty) ++s.stats.writebacks;
    ++s.stats.evictions;
    s.table.erase(f.page);
    f = Frame{};
    s.free_slots.push_back(here);
    return true;
  }
  return false;
}

std::uint64_t BufferPool::Unpin(PageId page) {
  LockedShard locked(this, page);
  Shard& s = locked.shard();
  s.mu.AssertHeld();
  auto it = s.table.find(page);
  if (it == s.table.end()) return 0;
  Frame& f = s.frames[it->second];
  if (f.pins > 0) --f.pins;
  if (f.pins > 0 || s.table.size() <= s.capacity) return 0;
  // The pin was the only thing holding this frame above a shrunken
  // capacity: retire it now.
  const std::uint64_t writebacks = f.dirty ? 1 : 0;
  if (f.dirty) ++s.stats.writebacks;
  ++s.stats.evictions;
  const std::size_t slot = it->second;
  s.table.erase(it);
  s.frames[slot] = Frame{};
  s.free_slots.push_back(slot);
  return writebacks;
}

std::uint64_t BufferPool::Resize(std::size_t capacity_pages)
    NO_THREAD_SAFETY_ANALYSIS {
  if (capacity_.load(std::memory_order_relaxed) == capacity_pages) {
    return 0;  // same capacity: warm state untouched
  }
  LockAllShards();
  std::uint64_t writebacks = 0;
  const std::size_t old_count = shard_count_.load(std::memory_order_relaxed);
  const std::size_t new_count = ShardCountFor(capacity_pages);

  // Gather every resident frame in global victim order: per shard, clock
  // order starting at the hand — the frames an eviction sweep would reach
  // first come first ("the cold end").
  std::vector<Frame> resident;
  for (std::size_t i = 0; i < old_count; ++i) {
    Shard& s = shards_[i];
    const std::size_t n = s.frames.size();
    for (std::size_t step = 0; step < n; ++step) {
      const Frame& f = s.frames[(s.hand + step) % n];
      if (f.page != kInvalidPage) resident.push_back(f);
    }
    s.frames.clear();
    s.table.clear();
    s.free_slots.clear();
    s.hand = 0;
  }
  // Within the victim order, reference-bit-clear frames are colder than
  // reference-bit-set ones (a sweep evicts them a pass earlier).
  std::stable_partition(resident.begin(), resident.end(),
                        [](const Frame& f) { return !f.ref; });

  const std::size_t base = capacity_pages / new_count;
  const std::size_t rem = capacity_pages % new_count;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    shards_[i].capacity = i < new_count ? base + (i < rem ? 1 : 0) : 0;
  }

  // Route each frame to its new shard. Warmest frames are inserted last;
  // a shard over its new capacity drops from the cold front — except
  // pinned frames, which are always kept (Unpin retires the overflow).
  for (auto keep = resident.rbegin(); keep != resident.rend(); ++keep) {
    Shard& s = shards_[ShardIndex(keep->page, new_count)];
    if (keep->pins == 0 && s.table.size() >= s.capacity) {
      if (keep->dirty) {
        ++writebacks;
        ++s.stats.writebacks;
      }
      ++s.stats.evictions;
      continue;
    }
    s.table.emplace(keep->page, s.frames.size());
    s.frames.push_back(*keep);
  }
  // The insertion loop ran warmest-first; reverse so the hand (index 0)
  // points at the coldest surviving frame, preserving victim order.
  for (std::size_t i = 0; i < new_count; ++i) {
    Shard& s = shards_[i];
    std::reverse(s.frames.begin(), s.frames.end());
    for (std::size_t slot = 0; slot < s.frames.size(); ++slot) {
      s.table[s.frames[slot].page] = slot;
    }
  }

  capacity_.store(capacity_pages, std::memory_order_relaxed);
  shard_count_.store(new_count, std::memory_order_release);
  UnlockAllShards();
  return writebacks;
}

std::uint64_t BufferPool::FlushAll() NO_THREAD_SAFETY_ANALYSIS {
  LockAllShards();
  std::uint64_t flushed = 0;
  for (Shard& s : shards_) {
    for (Frame& f : s.frames) {
      if (f.page == kInvalidPage || !f.dirty) continue;
      f.dirty = false;
      ++s.stats.writebacks;
      ++flushed;
    }
  }
  UnlockAllShards();
  return flushed;
}

BufferPoolStats BufferPool::GetStats() const NO_THREAD_SAFETY_ANALYSIS {
  LockAllShards();
  BufferPoolStats out;
  for (const Shard& s : shards_) out += s.stats;
  UnlockAllShards();
  return out;
}

std::size_t BufferPool::ResidentPages() const NO_THREAD_SAFETY_ANALYSIS {
  LockAllShards();
  std::size_t n = 0;
  for (const Shard& s : shards_) n += s.table.size();
  UnlockAllShards();
  return n;
}

bool BufferPool::Resident(PageId page) const {
  LockedShard locked(this, page);
  Shard& s = locked.shard();
  s.mu.AssertHeld();
  return s.table.find(page) != s.table.end();
}

bool BufferPool::Dirty(PageId page) const {
  LockedShard locked(this, page);
  Shard& s = locked.shard();
  s.mu.AssertHeld();
  auto it = s.table.find(page);
  return it != s.table.end() && s.frames[it->second].dirty;
}

}  // namespace pathix
