#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/types.h"

/// \file buffer_pool.h
/// \brief Fixed-capacity buffer pool: frame table, pins, CLOCK eviction.
///
/// The pool is a passive page table — it knows which pages are resident,
/// which are pinned, and which are dirty, and reports per-touch outcomes so
/// its owner (the Pager) can do the access accounting. It performs no I/O
/// itself: "writing back" a dirty page is an accounting event surfaced
/// through TouchResult/Resize return values and the stats counters.
///
/// Replacement is CLOCK (second chance): every frame carries a reference
/// bit, set on admission and on every hit; the eviction hand sweeps the
/// frame array clearing reference bits and evicts the first unpinned frame
/// found clear. Pinned frames are skipped entirely — a page pinned through
/// a PageGuard (pager.h) cannot leave the pool until unpinned. If every
/// frame is pinned, the touch bypasses the pool (the caller charges a real
/// access), keeping the accounting exact instead of blocking.
///
/// Writes are write-back: a write touch marks the frame dirty and is
/// otherwise free; the deferred cost surfaces as one write-back when the
/// dirty frame is evicted or flushed. A write touch that cannot be admitted
/// (zero capacity, or all frames pinned) is charged through immediately.
///
/// Thread safety: the frame table is sharded by page id. Small pools
/// (< 2 * kShardingThreshold pages) run a single shard so tiny-capacity
/// eviction sequences stay deterministic; larger pools stripe pages across
/// up to kMaxShards shards, each behind its own Mutex, so concurrent
/// serving threads touching disjoint pages rarely contend. Shard mutexes
/// are leaves of the lock hierarchy (common/mutex.h): no pool method calls
/// out while holding one. Resize()/FlushAll()/Stats() take every shard
/// mutex (in index order) to act on a consistent snapshot.
namespace pathix {

/// Outcome of one page touch against the pool.
struct BufferTouchResult {
  bool hit = false;       ///< the page was resident before the touch
  bool admitted = false;  ///< the page is resident after the touch
  /// Dirty frames evicted by this touch to make room; the caller owes one
  /// page write per write-back.
  std::uint32_t writebacks = 0;
};

/// Monotone counters of everything the pool did since construction.
struct BufferPoolStats {
  std::uint64_t read_hits = 0;
  std::uint64_t read_misses = 0;
  std::uint64_t write_hits = 0;
  std::uint64_t write_misses = 0;
  std::uint64_t evictions = 0;     ///< frames evicted (clean or dirty)
  std::uint64_t writebacks = 0;    ///< dirty frames evicted or flushed
  std::uint64_t pin_bypasses = 0;  ///< touches that found every frame pinned

  BufferPoolStats& operator+=(const BufferPoolStats& o) {
    read_hits += o.read_hits;
    read_misses += o.read_misses;
    write_hits += o.write_hits;
    write_misses += o.write_misses;
    evictions += o.evictions;
    writebacks += o.writebacks;
    pin_bypasses += o.pin_bypasses;
    return *this;
  }
};

/// \brief The pool.
class BufferPool {
 public:
  BufferPool() = default;
  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Read touch. A hit sets the reference bit; a miss admits the page
  /// (evicting if full). With \p pin the frame's pin count is raised when
  /// the page is resident after the touch (admitted == true) — balance
  /// with Unpin().
  BufferTouchResult TouchRead(PageId page, bool pin);

  /// Write touch (write-back): marks the frame dirty; misses admit. Same
  /// pin contract as TouchRead. When admitted is false the caller must
  /// charge the write through immediately.
  BufferTouchResult TouchWrite(PageId page, bool pin);

  /// Drops one pin from \p page's frame. A frame only the pin was keeping
  /// above capacity (a shrink raced an outstanding PageGuard) is evicted on
  /// its last unpin; as everywhere, the returned write-back count is owed
  /// one page write each by the caller. No-op if the page is not resident.
  std::uint64_t Unpin(PageId page);

  /// Sets the pool capacity, preserving warm state: the same capacity is a
  /// no-op, growing keeps every resident frame, shrinking evicts from the
  /// cold end (CLOCK victim order) until the new capacity fits — skipping
  /// pinned frames, which are kept even above capacity and absorbed as
  /// they unpin. Returns the number of dirty pages written back; the
  /// caller owes one page write each.
  std::uint64_t Resize(std::size_t capacity_pages);

  /// Writes back every dirty frame (frames stay resident, now clean).
  /// Returns the number of write-backs; the caller owes one write each.
  std::uint64_t FlushAll();

  std::size_t capacity() const {
    return capacity_.load(std::memory_order_relaxed);
  }

  /// Aggregated counters across all shards.
  BufferPoolStats GetStats() const;

  /// Number of resident frames (diagnostics; takes every shard mutex).
  std::size_t ResidentPages() const;

  /// True when \p page is resident (test hook).
  bool Resident(PageId page) const;

  /// True when \p page is resident and dirty (test hook).
  bool Dirty(PageId page) const;

 private:
  /// Above this many pages per shard the pool stripes across more shards.
  static constexpr std::size_t kShardingThreshold = 64;
  static constexpr std::size_t kMaxShards = 8;

  struct Frame {
    PageId page = kInvalidPage;
    bool ref = false;    ///< CLOCK second-chance bit
    bool dirty = false;  ///< pending write-back
    std::uint32_t pins = 0;
  };

  struct Shard {
    mutable Mutex mu;
    std::vector<Frame> frames GUARDED_BY(mu);
    std::unordered_map<PageId, std::size_t> table GUARDED_BY(mu);
    std::vector<std::size_t> free_slots GUARDED_BY(mu);
    std::size_t hand GUARDED_BY(mu) = 0;
    std::size_t capacity GUARDED_BY(mu) = 0;
    BufferPoolStats stats GUARDED_BY(mu);
  };

  /// Power-of-two shard count for \p capacity (1 for small pools).
  static std::size_t ShardCountFor(std::size_t capacity);
  static std::size_t ShardIndex(PageId page, std::size_t shard_count) {
    return static_cast<std::size_t>(page) & (shard_count - 1);
  }

  BufferTouchResult TouchLocked(Shard& s, PageId page, bool write, bool pin)
      REQUIRES(s.mu);
  /// Evicts one unpinned frame in CLOCK order; false if all are pinned.
  /// \p wrote_back reports whether the victim was dirty.
  bool EvictOne(Shard& s, bool* wrote_back) REQUIRES(s.mu);

  /// The shard currently responsible for \p page, locked. Loops to absorb
  /// a concurrent Resize changing the shard count: holding any shard mutex
  /// blocks Resize from completing, so once the count is re-validated
  /// under the lock it cannot change until release.
  class LockedShard;
  void LockAllShards() const NO_THREAD_SAFETY_ANALYSIS;
  void UnlockAllShards() const NO_THREAD_SAFETY_ANALYSIS;

  /// Total capacity (0 = pool off). Relaxed mirror for capacity(); the
  /// authoritative per-shard splits live behind the shard mutexes.
  std::atomic<std::size_t> capacity_{0};
  /// Current shard fan-out; changes only inside Resize with every shard
  /// mutex held.
  std::atomic<std::size_t> shard_count_{1};
  mutable std::array<Shard, kMaxShards> shards_;
};

}  // namespace pathix
