#include "storage/object.h"

namespace pathix {

Value Value::Int(std::int64_t v) {
  Value out;
  out.kind_ = Kind::kInt;
  out.int_ = v;
  return out;
}

Value Value::Str(std::string v) {
  Value out;
  out.kind_ = Kind::kString;
  out.str_ = std::move(v);
  return out;
}

Value Value::Ref(Oid v) {
  Value out;
  out.kind_ = Kind::kRef;
  out.ref_ = v;
  return out;
}

std::size_t Value::bytes() const {
  switch (kind_) {
    case Kind::kInt:
      return 8;
    case Kind::kString:
      return str_.size() + 2;
    case Kind::kRef:
      return 8;
  }
  return 8;
}

bool Value::operator==(const Value& other) const {
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case Kind::kInt:
      return int_ == other.int_;
    case Kind::kString:
      return str_ == other.str_;
    case Kind::kRef:
      return ref_ == other.ref_;
  }
  return false;
}

const std::vector<Value>& Object::values(const std::string& attr) const {
  static const std::vector<Value> kEmpty;
  auto it = attrs.find(attr);
  return it == attrs.end() ? kEmpty : it->second;
}

std::vector<Oid> Object::refs(const std::string& attr) const {
  std::vector<Oid> out;
  for (const Value& v : values(attr)) {
    if (v.kind() == Value::Kind::kRef) out.push_back(v.as_ref());
  }
  return out;
}

std::size_t Object::bytes() const {
  std::size_t total = 8 /*oid*/ + 4 /*class*/;
  for (const auto& [name, vals] : attrs) {
    total += name.size() + 2;
    for (const Value& v : vals) total += v.bytes();
  }
  return total;
}

}  // namespace pathix
