#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/types.h"

/// \file object.h
/// \brief Objects of the simulated database: oid + class + attribute values.
/// Values are scalars (int, string, or oid reference); multi-valued
/// attributes hold several scalars per attribute name.

namespace pathix {

/// \brief One scalar attribute value.
class Value {
 public:
  enum class Kind { kInt, kString, kRef };

  static Value Int(std::int64_t v);
  static Value Str(std::string v);
  static Value Ref(Oid v);

  Kind kind() const { return kind_; }
  std::int64_t as_int() const { return int_; }
  const std::string& as_string() const { return str_; }
  Oid as_ref() const { return ref_; }

  /// Serialized footprint in bytes (for page occupancy accounting).
  std::size_t bytes() const;

  bool operator==(const Value& other) const;

 private:
  Kind kind_ = Kind::kInt;
  std::int64_t int_ = 0;
  std::string str_;
  Oid ref_ = kInvalidOid;
};

/// Attribute name -> values (singletons for single-valued attributes).
using AttrValues = std::map<std::string, std::vector<Value>>;

/// \brief A stored object.
struct Object {
  Oid oid = kInvalidOid;
  ClassId cls = kInvalidClass;
  AttrValues attrs;

  /// The values of \p attr (empty if absent — the paper assumes no NULLs,
  /// but the store tolerates sparse objects for fault-injection tests).
  const std::vector<Value>& values(const std::string& attr) const;

  /// References held under \p attr.
  std::vector<Oid> refs(const std::string& attr) const;

  std::size_t bytes() const;
};

}  // namespace pathix
