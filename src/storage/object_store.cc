#include "storage/object_store.h"

#include <algorithm>

namespace pathix {

Oid ObjectStore::Insert(Object obj) {
  MutexLock lock(&mu_);
  obj.oid = next_oid_++;
  const std::size_t need = obj.bytes();

  std::vector<SegmentPage>& segment = segments_[obj.cls];
  if (segment.empty() ||
      segment.back().used_bytes + need > pager_->page_size()) {
    SegmentPage page;
    page.page = pager_->Allocate();
    segment.push_back(page);
  }
  SegmentPage& page = segment.back();
  page.used_bytes += need;
  page.oids.push_back(obj.oid);
  pager_->NoteWrite(page.page);

  locations_[obj.oid] = Location{obj.cls, segment.size() - 1};
  const Oid oid = obj.oid;
  objects_.emplace(oid, std::move(obj));
  return oid;
}

Status ObjectStore::Delete(Oid oid) {
  MutexLock lock(&mu_);
  auto it = objects_.find(oid);
  if (it == objects_.end()) {
    return Status::NotFound("object " + std::to_string(oid));
  }
  const Location loc = locations_[oid];
  SegmentPage& page = segments_[loc.cls][loc.page_index];
  pager_->NoteRead(page.page);
  page.used_bytes -= std::min(page.used_bytes, it->second.bytes());
  page.oids.erase(std::remove(page.oids.begin(), page.oids.end(), oid),
                  page.oids.end());
  pager_->NoteWrite(page.page);
  objects_.erase(it);
  locations_.erase(oid);
  return Status::OK();
}

const Object* ObjectStore::Get(Oid oid) {
  ReaderMutexLock lock(&mu_);
  auto it = objects_.find(oid);
  if (it == objects_.end()) return nullptr;
  pager_->NoteRead(segments_[it->second.cls][locations_[oid].page_index].page);
  return &it->second;
}

const Object* ObjectStore::Peek(Oid oid) const {
  ReaderMutexLock lock(&mu_);
  auto it = objects_.find(oid);
  return it == objects_.end() ? nullptr : &it->second;
}

std::vector<Oid> ObjectStore::Scan(ClassId cls) {
  ReaderMutexLock lock(&mu_);
  std::vector<Oid> out;
  auto it = segments_.find(cls);
  if (it == segments_.end()) return out;
  for (const SegmentPage& page : it->second) {
    pager_->NoteRead(page.page);
    out.insert(out.end(), page.oids.begin(), page.oids.end());
  }
  return out;
}

std::vector<Oid> ObjectStore::PeekAll(ClassId cls) const {
  ReaderMutexLock lock(&mu_);
  std::vector<Oid> out;
  auto it = segments_.find(cls);
  if (it == segments_.end()) return out;
  for (const SegmentPage& page : it->second) {
    out.insert(out.end(), page.oids.begin(), page.oids.end());
  }
  return out;
}

std::size_t ObjectStore::LiveCount(ClassId cls) const {
  ReaderMutexLock lock(&mu_);
  auto it = segments_.find(cls);
  if (it == segments_.end()) return 0;
  std::size_t count = 0;
  for (const SegmentPage& page : it->second) count += page.oids.size();
  return count;
}

std::size_t ObjectStore::SegmentPages(ClassId cls) const {
  ReaderMutexLock lock(&mu_);
  auto it = segments_.find(cls);
  return it == segments_.end() ? 0 : it->second.size();
}

PageId ObjectStore::PageOf(Oid oid) const {
  ReaderMutexLock lock(&mu_);
  auto it = locations_.find(oid);
  if (it == locations_.end()) return kInvalidPage;
  return segments_.at(it->second.cls)[it->second.page_index].page;
}

}  // namespace pathix
