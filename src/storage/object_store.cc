#include "storage/object_store.h"

#include <algorithm>
#include <utility>

namespace pathix {

ObjectStore::Shard& ObjectStore::ShardFor(ClassId cls) {
  {
    ReaderMutexLock lock(&shards_mu_);
    auto it = shards_.find(cls);
    if (it != shards_.end()) return *it->second;
  }
  MutexLock lock(&shards_mu_);
  std::unique_ptr<Shard>& slot = shards_[cls];
  if (slot == nullptr) slot = std::make_unique<Shard>();
  return *slot;
}

ObjectStore::Shard* ObjectStore::FindShard(ClassId cls) const {
  ReaderMutexLock lock(&shards_mu_);
  auto it = shards_.find(cls);
  return it == shards_.end() ? nullptr : it->second.get();
}

bool ObjectStore::FindLocation(Oid oid, Location* out) const {
  ReaderMutexLock lock(&loc_mu_);
  auto it = locations_.find(oid);
  if (it == locations_.end()) return false;
  *out = it->second;
  return true;
}

Oid ObjectStore::Insert(Object obj) {
  return InsertAndGet(std::move(obj))->oid;
}

std::shared_ptr<const Object> ObjectStore::InsertAndGet(Object obj) {
  obj.oid = next_oid_.fetch_add(1);
  const std::size_t need = obj.bytes();
  const ClassId cls = obj.cls;
  Shard& shard = ShardFor(cls);
  auto stored = std::make_shared<const Object>(std::move(obj));

  Location loc{cls, 0, kInvalidPage};
  {
    MutexLock lock(&shard.mu);
    if (shard.pages.empty() ||
        shard.pages.back().used_bytes + need > pager_->page_size()) {
      SegmentPage page;
      page.page = pager_->Allocate();
      shard.pages.push_back(page);
    }
    SegmentPage& page = shard.pages.back();
    page.used_bytes += need;
    page.oids.push_back(stored->oid);
    // Pin the slot page while the object lands on it (shard mutex > pager
    // and pool latches, both leaves — see common/mutex.h).
    PageGuard slot_pin = pager_->PinWrite(page.page);
    loc.page_index = shard.pages.size() - 1;
    loc.page = page.page;
    shard.objects.emplace(stored->oid, stored);
  }
  {
    MutexLock lock(&loc_mu_);
    locations_[stored->oid] = loc;
  }
  return stored;
}

Status ObjectStore::Delete(Oid oid) {
  if (Take(oid) == nullptr) {
    return Status::NotFound("object " + std::to_string(oid));
  }
  return Status::OK();
}

std::shared_ptr<const Object> ObjectStore::Take(Oid oid) {
  Location loc;
  if (!FindLocation(oid, &loc)) return nullptr;
  Shard* shard = FindShard(loc.cls);
  if (shard == nullptr) return nullptr;

  std::shared_ptr<const Object> claimed;
  {
    MutexLock lock(&shard->mu);
    auto it = shard->objects.find(oid);
    // Absent: a racing Take claimed it first — that claimant owns the
    // deletion's side effects and its page accounting.
    if (it == shard->objects.end()) return nullptr;
    claimed = std::move(it->second);
    shard->objects.erase(it);
    SegmentPage& page = shard->pages[loc.page_index];
    PageGuard slot_pin = pager_->PinRead(page.page);
    page.used_bytes -= std::min(page.used_bytes, claimed->bytes());
    page.oids.erase(std::remove(page.oids.begin(), page.oids.end(), oid),
                    page.oids.end());
    pager_->NoteWrite(page.page);
  }
  {
    MutexLock lock(&loc_mu_);
    locations_.erase(oid);
  }
  return claimed;
}

const Object* ObjectStore::Get(Oid oid) {
  Location loc;
  if (!FindLocation(oid, &loc)) return nullptr;
  Shard* shard = FindShard(loc.cls);
  if (shard == nullptr) return nullptr;
  ReaderMutexLock lock(&shard->mu);
  auto it = shard->objects.find(oid);
  if (it == shard->objects.end()) return nullptr;
  PageGuard slot_pin = pager_->PinRead(loc.page);
  return it->second.get();
}

std::shared_ptr<const Object> ObjectStore::GetRef(Oid oid) {
  Location loc;
  if (!FindLocation(oid, &loc)) return nullptr;
  Shard* shard = FindShard(loc.cls);
  if (shard == nullptr) return nullptr;
  ReaderMutexLock lock(&shard->mu);
  auto it = shard->objects.find(oid);
  if (it == shard->objects.end()) return nullptr;
  PageGuard slot_pin = pager_->PinRead(loc.page);
  return it->second;
}

const Object* ObjectStore::Peek(Oid oid) const {
  Location loc;
  if (!FindLocation(oid, &loc)) return nullptr;
  Shard* shard = FindShard(loc.cls);
  if (shard == nullptr) return nullptr;
  ReaderMutexLock lock(&shard->mu);
  auto it = shard->objects.find(oid);
  return it == shard->objects.end() ? nullptr : it->second.get();
}

std::shared_ptr<const Object> ObjectStore::PeekRef(Oid oid) const {
  Location loc;
  if (!FindLocation(oid, &loc)) return nullptr;
  Shard* shard = FindShard(loc.cls);
  if (shard == nullptr) return nullptr;
  ReaderMutexLock lock(&shard->mu);
  auto it = shard->objects.find(oid);
  return it == shard->objects.end() ? nullptr : it->second;
}

std::vector<Oid> ObjectStore::Scan(ClassId cls) {
  std::vector<Oid> out;
  Shard* shard = FindShard(cls);
  if (shard == nullptr) return out;
  ReaderMutexLock lock(&shard->mu);
  for (const SegmentPage& page : shard->pages) {
    pager_->NoteRead(page.page);
    out.insert(out.end(), page.oids.begin(), page.oids.end());
  }
  return out;
}

std::vector<Oid> ObjectStore::PeekAll(ClassId cls) const {
  std::vector<Oid> out;
  Shard* shard = FindShard(cls);
  if (shard == nullptr) return out;
  ReaderMutexLock lock(&shard->mu);
  for (const SegmentPage& page : shard->pages) {
    out.insert(out.end(), page.oids.begin(), page.oids.end());
  }
  return out;
}

std::size_t ObjectStore::LiveCount(ClassId cls) const {
  Shard* shard = FindShard(cls);
  if (shard == nullptr) return 0;
  ReaderMutexLock lock(&shard->mu);
  std::size_t count = 0;
  for (const SegmentPage& page : shard->pages) count += page.oids.size();
  return count;
}

std::size_t ObjectStore::SegmentPages(ClassId cls) const {
  Shard* shard = FindShard(cls);
  if (shard == nullptr) return 0;
  ReaderMutexLock lock(&shard->mu);
  return shard->pages.size();
}

PageId ObjectStore::PageOf(Oid oid) const {
  Location loc;
  if (!FindLocation(oid, &loc)) return kInvalidPage;
  return loc.page;
}

}  // namespace pathix
