#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "storage/object.h"
#include "storage/pager.h"

/// \file object_store.h
/// \brief Page-organized object store, sharded by class.
///
/// Mirrors the paper's storage assumptions: a page contains objects of only
/// one class, and objects hold only forward references. Objects are placed
/// into the last non-full page of their class segment; deletion leaves a
/// hole (no compaction), as in most real stores.
///
/// Thread safety: the store is sharded by class — each class's objects and
/// segment pages live behind that shard's reader/writer Mutex, so reads of
/// one class (the hot path: queries walking reference chains) take shared
/// locks only and never contend with traffic on other classes. A global
/// oid->location map behind its own mutex routes oid lookups to the right
/// shard. Objects are held by shared_ptr: the ref-returning accessors
/// (PeekRef/GetRef/InsertAndGet/Take) hand out owning references that stay
/// valid across a concurrent delete of the same object — the raw-pointer
/// accessors (Get/Peek) remain for callers whose lifetime is externally
/// ordered (single-threaded tooling, tests), valid until *that* object is
/// deleted. Lock order within the store: shard mutex before the location
/// mutex, never both the other way; both may call into the Pager (the
/// leaf).

namespace pathix {

/// \brief The object heap of one simulated database.
class ObjectStore {
 public:
  explicit ObjectStore(Pager* pager) : pager_(pager) {}

  /// Stores \p obj (oid assigned by the store) and returns its oid.
  /// Costs one page write.
  Oid Insert(Object obj);

  /// As Insert, but returns an owning reference to the stored object —
  /// what index maintenance reads, immune to a concurrent delete.
  std::shared_ptr<const Object> InsertAndGet(Object obj);

  /// Removes the object. Costs one page read + one write.
  Status Delete(Oid oid);

  /// Claim-first delete: atomically removes the object and returns the
  /// owning reference (null if absent — then nothing is counted). Of two
  /// racing Take(oid) calls exactly one receives the object, so deletion
  /// side effects (index maintenance) run exactly once. Costs one page
  /// read + one write on success.
  std::shared_ptr<const Object> Take(Oid oid);

  /// Fetches an object; counts one page read. nullptr if absent. The
  /// pointer is valid until that object is deleted — concurrent deleters
  /// must be ruled out by the caller (prefer GetRef under concurrency).
  const Object* Get(Oid oid);

  /// As Get, returning an owning reference.
  std::shared_ptr<const Object> GetRef(Oid oid);

  /// Fetch without page accounting (for test assertions and index builds
  /// whose cost is not part of an experiment). Same lifetime caveat as
  /// Get.
  const Object* Peek(Oid oid) const;

  /// As Peek, returning an owning reference (safe under concurrency).
  std::shared_ptr<const Object> PeekRef(Oid oid) const;

  /// All live oids of \p cls, counting one read per segment page (the
  /// class-scan a naive evaluation performs).
  std::vector<Oid> Scan(ClassId cls);

  /// As Scan but uncounted.
  std::vector<Oid> PeekAll(ClassId cls) const;

  /// Number of pages in the class segment.
  std::size_t SegmentPages(ClassId cls) const;

  /// Number of live objects of \p cls (uncounted). The scoped-ANALYZE
  /// drift check compares this against the count at the last statistics
  /// collection without materializing the oid list.
  std::size_t LiveCount(ClassId cls) const;

  /// Page holding \p oid (kInvalidPage if absent).
  PageId PageOf(Oid oid) const;

  std::size_t live_objects() const EXCLUDES(loc_mu_) {
    ReaderMutexLock lock(&loc_mu_);
    return locations_.size();
  }

 private:
  struct SegmentPage {
    PageId page = kInvalidPage;
    std::size_t used_bytes = 0;
    std::vector<Oid> oids;
  };
  /// One class's slice of the heap. Stable address (held by unique_ptr),
  /// so a shard pointer outlives any shards_mu_ critical section.
  struct Shard {
    mutable Mutex mu;
    std::unordered_map<Oid, std::shared_ptr<const Object>> objects
        GUARDED_BY(mu);
    std::vector<SegmentPage> pages GUARDED_BY(mu);
  };
  struct Location {
    ClassId cls = kInvalidClass;
    std::size_t page_index = 0;
    PageId page = kInvalidPage;
  };

  /// The shard of \p cls, created on first use.
  Shard& ShardFor(ClassId cls) EXCLUDES(shards_mu_);
  /// The shard of \p cls, or nullptr if the class has never been stored.
  Shard* FindShard(ClassId cls) const EXCLUDES(shards_mu_);
  /// Copy of the location entry; false if \p oid is not live.
  bool FindLocation(Oid oid, Location* out) const EXCLUDES(loc_mu_);

  Pager* pager_;
  std::atomic<Oid> next_oid_{1};  // oid 0 is kInvalidOid

  mutable Mutex shards_mu_;
  std::map<ClassId, std::unique_ptr<Shard>> shards_ GUARDED_BY(shards_mu_);

  mutable Mutex loc_mu_;
  std::unordered_map<Oid, Location> locations_ GUARDED_BY(loc_mu_);
};

}  // namespace pathix
