#pragma once

#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "storage/object.h"
#include "storage/pager.h"

/// \file object_store.h
/// \brief Page-organized object store.
///
/// Mirrors the paper's storage assumptions: a page contains objects of only
/// one class, and objects hold only forward references. Objects are placed
/// into the last non-full page of their class segment; deletion leaves a
/// hole (no compaction), as in most real stores.
///
/// Thread safety: the maps live behind mu_, so concurrent Insert/Delete/
/// Scan calls are internally consistent. Get/Peek return pointers into the
/// store; a pointer stays valid until *that* object is deleted (node-based
/// map), which concurrent callers must rule out themselves — the engine's
/// current callers hold each returned pointer only within the operation
/// that fetched it.

namespace pathix {

/// \brief The object heap of one simulated database.
class ObjectStore {
 public:
  explicit ObjectStore(Pager* pager) : pager_(pager) {}

  /// Stores \p obj (oid assigned by the store) and returns its oid.
  /// Costs one page write.
  Oid Insert(Object obj) EXCLUDES(mu_);

  /// Removes the object. Costs one page read + one write.
  Status Delete(Oid oid) EXCLUDES(mu_);

  /// Fetches an object; counts one page read. nullptr if absent.
  const Object* Get(Oid oid) EXCLUDES(mu_);

  /// Fetch without page accounting (for test assertions and index builds
  /// whose cost is not part of an experiment).
  const Object* Peek(Oid oid) const EXCLUDES(mu_);

  /// All live oids of \p cls, counting one read per segment page (the
  /// class-scan a naive evaluation performs).
  std::vector<Oid> Scan(ClassId cls) EXCLUDES(mu_);

  /// As Scan but uncounted.
  std::vector<Oid> PeekAll(ClassId cls) const EXCLUDES(mu_);

  /// Number of pages in the class segment.
  std::size_t SegmentPages(ClassId cls) const EXCLUDES(mu_);

  /// Number of live objects of \p cls (O(segment pages); uncounted). The
  /// scoped-ANALYZE drift check compares this against the count at the last
  /// statistics collection without materializing the oid list.
  std::size_t LiveCount(ClassId cls) const EXCLUDES(mu_);

  /// Page holding \p oid (kInvalidPage if absent).
  PageId PageOf(Oid oid) const EXCLUDES(mu_);

  std::size_t live_objects() const EXCLUDES(mu_) {
    ReaderMutexLock lock(&mu_);
    return objects_.size();
  }

 private:
  struct SegmentPage {
    PageId page = kInvalidPage;
    std::size_t used_bytes = 0;
    std::vector<Oid> oids;
  };
  struct Location {
    ClassId cls = kInvalidClass;
    std::size_t page_index = 0;
  };

  Pager* pager_;
  mutable Mutex mu_;
  Oid next_oid_ GUARDED_BY(mu_) = 1;  // oid 0 is kInvalidOid
  std::unordered_map<Oid, Object> objects_ GUARDED_BY(mu_);
  std::unordered_map<Oid, Location> locations_ GUARDED_BY(mu_);
  std::unordered_map<ClassId, std::vector<SegmentPage>> segments_
      GUARDED_BY(mu_);
};

}  // namespace pathix
