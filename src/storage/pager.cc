#include "storage/pager.h"

namespace pathix {

void Pager::EnableBuffer(std::size_t capacity_pages) {
  buffer_capacity_ = capacity_pages;
  lru_.clear();
  lru_index_.clear();
}

bool Pager::Touch(PageId page) {
  auto it = lru_index_.find(page);
  if (it == lru_index_.end()) return false;
  lru_.splice(lru_.begin(), lru_, it->second);
  return true;
}

void Pager::Admit(PageId page) {
  if (buffer_capacity_ == 0) return;
  if (Touch(page)) return;
  lru_.push_front(page);
  lru_index_[page] = lru_.begin();
  while (lru_.size() > buffer_capacity_) {
    lru_index_.erase(lru_.back());
    lru_.pop_back();
  }
}

}  // namespace pathix
