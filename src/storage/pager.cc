#include "storage/pager.h"

#include "common/status.h"
#include "obs/metrics.h"

namespace pathix {

const char* ToString(PageOpKind kind) {
  switch (kind) {
    case PageOpKind::kQuery:
      return "query";
    case PageOpKind::kInsert:
      return "insert";
    case PageOpKind::kDelete:
      return "delete";
    case PageOpKind::kBuild:
      return "build";
    case PageOpKind::kOther:
      return "other";
  }
  return "?";
}

void Pager::EnableBuffer(std::size_t capacity_pages) {
  MutexLock lock(&mu_);
  buffer_capacity_ = capacity_pages;
  buffered_.store(capacity_pages > 0, std::memory_order_relaxed);
  lru_.clear();
  lru_index_.clear();
}

bool Pager::Touch(PageId page) {
  auto it = lru_index_.find(page);
  if (it == lru_index_.end()) return false;
  lru_.splice(lru_.begin(), lru_, it->second);
  return true;
}

void Pager::Admit(PageId page) {
  if (buffer_capacity_ == 0) return;
  if (Touch(page)) return;
  lru_.push_front(page);
  lru_index_[page] = lru_.begin();
  while (lru_.size() > buffer_capacity_) {
    lru_index_.erase(lru_.back());
    lru_.pop_back();
  }
}

void Pager::ResetTallies() {
  MutexLock lock(&mu_);
  kind_tallies_ = {};
  label_tallies_.clear();
}

void Pager::CloseFrame(PageOpKind kind, const std::string& label,
                       const AccessFrame& frame) {
  MutexLock lock(&mu_);
  if (!frame.exclude) stats_ += frame.deferred;
  kind_tallies_[static_cast<std::size_t>(kind)] += frame.local;
  if (!label.empty()) label_tallies_[label] += frame.local;
}

void Pager::ExportMetrics(obs::MetricsRegistry* registry) const {
  // Copy everything out first (each accessor takes mu_ briefly); the
  // registry and metric mutexes are only touched after, keeping both sides
  // leaves of the lock hierarchy.
  const AccessStats stats = this->stats();
  std::array<AccessStats, kPageOpKindCount> kinds;
  for (std::size_t k = 0; k < kPageOpKindCount; ++k) {
    kinds[k] = tally(static_cast<PageOpKind>(k));
  }
  const std::map<std::string, AccessStats> labels = label_tallies();
  const std::uint64_t allocated = allocated_pages();

  auto mirror = [registry](std::string_view name, obs::MetricLabels l,
                           std::uint64_t value) {
    registry->CounterAt(name, std::move(l))
        .MirrorTo(static_cast<double>(value));
  };
  mirror("pathix_pager_io_total", {{"io", "read"}}, stats.reads);
  mirror("pathix_pager_io_total", {{"io", "write"}}, stats.writes);
  mirror("pathix_pager_buffer_hits_total", {}, stats.buffer_hits);
  for (std::size_t k = 0; k < kPageOpKindCount; ++k) {
    const std::string op = ToString(static_cast<PageOpKind>(k));
    mirror("pathix_pager_pages_total", {{"op", op}, {"io", "read"}},
           kinds[k].reads);
    mirror("pathix_pager_pages_total", {{"op", op}, {"io", "write"}},
           kinds[k].writes);
  }
  for (const auto& [label, tally] : labels) {
    mirror("pathix_pager_path_pages_total", {{"path", label}, {"io", "read"}},
           tally.reads);
    mirror("pathix_pager_path_pages_total", {{"path", label}, {"io", "write"}},
           tally.writes);
  }
  registry->GaugeAt("pathix_pager_allocated_pages")
      .Set(static_cast<double>(allocated));
}

ScopedAccessProbe::ScopedAccessProbe(Pager* pager, PageOpKind kind,
                                     std::string label, bool exclude)
    : pager_(pager), kind_(kind), label_(std::move(label)) {
  frame_.pager = pager;
  frame_.exclude = exclude;
  frame_.prev = internal::tls_frame_top;
  // The frame this one's *counting* traffic should land on: the nearest
  // enclosing excluded frame of the same pager on this thread (directly,
  // or inherited through an enclosing counting frame).
  if (AccessFrame* outer = internal::FrameFor(pager)) {
    frame_.redirect = outer->exclude ? outer : outer->redirect;
  }
  internal::tls_frame_top = &frame_;
}

ScopedAccessProbe::~ScopedAccessProbe() {
  PATHIX_DCHECK(internal::tls_frame_top == &frame_ &&
                "probes must unwind in LIFO order on their own thread");
  internal::tls_frame_top = frame_.prev;
  pager_->CloseFrame(kind_, label_, frame_);
}

}  // namespace pathix
