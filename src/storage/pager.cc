#include "storage/pager.h"

#include "common/status.h"
#include "obs/metrics.h"

namespace pathix {

const char* ToString(PageOpKind kind) {
  switch (kind) {
    case PageOpKind::kQuery:
      return "query";
    case PageOpKind::kInsert:
      return "insert";
    case PageOpKind::kDelete:
      return "delete";
    case PageOpKind::kBuild:
      return "build";
    case PageOpKind::kOther:
      return "other";
  }
  return "?";
}

void Pager::EnableBuffer(std::size_t capacity_pages) {
  const std::uint64_t writebacks = pool_.Resize(capacity_pages);
  buffered_.store(capacity_pages > 0, std::memory_order_relaxed);
  if (writebacks > 0) {
    // Dirty frames evicted by the shrink (or disable's flush-everything)
    // become real page writes now.
    AccessStats d;
    d.writes = writebacks;
    Charge(d);
  }
}

void Pager::Charge(const AccessStats& d) {
  if (AccessFrame* f = internal::FrameFor(this)) {
    AccessFrame* sink = f->exclude ? f : f->redirect;
    if (sink != nullptr) {
      sink->local += d;
      return;
    }
    f->local += d;
    f->deferred += d;
    return;
  }
  MutexLock lock(&mu_);
  stats_ += d;
}

bool Pager::BufferedRead(PageId page, AccessFrame* f, bool pin) {
  const BufferTouchResult r = pool_.TouchRead(page, pin);
  AccessStats d;
  if (r.hit) {
    d.buffer_hits = 1;
  } else {
    d.reads = 1;  // miss (admitted or bypassed): a real page fetch
  }
  d.writes = r.writebacks;
  if (f != nullptr) {
    f->local += d;
    f->deferred += d;
  } else {
    MutexLock lock(&mu_);
    stats_ += d;
  }
  return r.admitted;
}

bool Pager::BufferedWrite(PageId page, AccessFrame* f, bool pin) {
  const BufferTouchResult r = pool_.TouchWrite(page, pin);
  AccessStats d;
  // Write-back: an admitted write only dirties the frame — its charge
  // lands when the frame is written back. A bypassed write (zero-capacity
  // shard, or every frame pinned) is charged through immediately.
  d.writes = (r.admitted ? 0 : 1) + r.writebacks;
  if (d.writes != 0) {
    if (f != nullptr) {
      f->local.writes += d.writes;
      f->deferred.writes += d.writes;
    } else {
      MutexLock lock(&mu_);
      stats_.writes += d.writes;
    }
  }
  return r.admitted;
}

void Pager::UnpinPage(PageId page) {
  const std::uint64_t writebacks = pool_.Unpin(page);
  if (writebacks == 0) return;
  AccessStats d;
  d.writes = writebacks;
  Charge(d);
}

void Pager::ResetTallies() {
  MutexLock lock(&mu_);
  kind_tallies_ = {};
  label_tallies_.clear();
}

void Pager::CloseFrame(PageOpKind kind, const std::string& label,
                       const AccessFrame& frame) {
  MutexLock lock(&mu_);
  if (!frame.exclude) stats_ += frame.deferred;
  kind_tallies_[static_cast<std::size_t>(kind)] += frame.local;
  if (!label.empty()) label_tallies_[label] += frame.local;
}

void Pager::ExportMetrics(obs::MetricsRegistry* registry) const {
  // Copy everything out first (each accessor takes mu_ or a pool latch
  // briefly); the registry and metric mutexes are only touched after,
  // keeping both sides leaves of the lock hierarchy.
  const AccessStats stats = this->stats();
  std::array<AccessStats, kPageOpKindCount> kinds;
  for (std::size_t k = 0; k < kPageOpKindCount; ++k) {
    kinds[k] = tally(static_cast<PageOpKind>(k));
  }
  const std::map<std::string, AccessStats> labels = label_tallies();
  const std::uint64_t allocated = allocated_pages();
  const BufferPoolStats pool = pool_.GetStats();

  auto mirror = [registry](std::string_view name, obs::MetricLabels l,
                           std::uint64_t value) {
    registry->CounterAt(name, std::move(l))
        .MirrorTo(static_cast<double>(value));
  };
  mirror("pathix_pager_io_total", {{"io", "read"}}, stats.reads);
  mirror("pathix_pager_io_total", {{"io", "write"}}, stats.writes);
  mirror("pathix_pager_buffer_hits_total", {}, stats.buffer_hits);
  mirror("pathix_pager_buffer_evictions_total", {}, pool.evictions);
  mirror("pathix_pager_buffer_writebacks_total", {}, pool.writebacks);
  for (std::size_t k = 0; k < kPageOpKindCount; ++k) {
    const std::string op = ToString(static_cast<PageOpKind>(k));
    mirror("pathix_pager_pages_total", {{"op", op}, {"io", "read"}},
           kinds[k].reads);
    mirror("pathix_pager_pages_total", {{"op", op}, {"io", "write"}},
           kinds[k].writes);
    mirror("pathix_pager_pages_total", {{"op", op}, {"io", "hit"}},
           kinds[k].buffer_hits);
  }
  for (const auto& [label, tally] : labels) {
    mirror("pathix_pager_path_pages_total", {{"path", label}, {"io", "read"}},
           tally.reads);
    mirror("pathix_pager_path_pages_total", {{"path", label}, {"io", "write"}},
           tally.writes);
    mirror("pathix_pager_path_pages_total", {{"path", label}, {"io", "hit"}},
           tally.buffer_hits);
  }
  registry->GaugeAt("pathix_pager_allocated_pages")
      .Set(static_cast<double>(allocated));
}

ScopedAccessProbe::ScopedAccessProbe(Pager* pager, PageOpKind kind,
                                     std::string label, bool exclude)
    : pager_(pager), kind_(kind), label_(std::move(label)) {
  frame_.pager = pager;
  frame_.exclude = exclude;
  frame_.prev = internal::tls_frame_top;
  // The frame this one's *counting* traffic should land on: the nearest
  // enclosing excluded frame of the same pager on this thread (directly,
  // or inherited through an enclosing counting frame).
  if (AccessFrame* outer = internal::FrameFor(pager)) {
    frame_.redirect = outer->exclude ? outer : outer->redirect;
  }
  internal::tls_frame_top = &frame_;
}

ScopedAccessProbe::~ScopedAccessProbe() {
  PATHIX_DCHECK(internal::tls_frame_top == &frame_ &&
                "probes must unwind in LIFO order on their own thread");
  internal::tls_frame_top = frame_.prev;
  pager_->CloseFrame(kind_, label_, frame_);
}

}  // namespace pathix
