#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <list>
#include <map>
#include <string>
#include <unordered_map>

#include "common/mutex.h"
#include "common/types.h"

/// \file pager.h
/// \brief Logical page manager with access counting.
///
/// The simulator's only cost metric is page accesses — exactly the paper's.
/// Structures own their content in memory; the Pager allocates page
/// identities and tallies reads/writes. A page is the unit of transfer; one
/// B+-tree node, one record-overflow chunk, or one object-store slot block
/// occupies one page.
///
/// Beyond the global counters, the pager keeps *scoped* tallies: a
/// ScopedAccessProbe tags the accesses of one stretch of work with a
/// PageOpKind and an optional label (the queried path id), so experiments
/// can decompose measured traffic per operation kind and per path without
/// instrumenting every call site. Excluded scopes (index builds) measure
/// their traffic through the same counting paths while keeping it out of
/// the main stats — the mechanism behind pager-accounted index builds.
///
/// Thread safety: the global counters live behind mu_, so concurrent
/// Note*/stats()/Allocate() calls are safe (the pager is the leaf of the
/// lock hierarchy in common/mutex.h). Scoped frames are *thread-local*: a
/// ScopedAccessProbe pushes a frame onto its own thread's frame stack, and
/// Note* calls from that thread accumulate into the frame without touching
/// mu_ (unless the buffer pool is on — the LRU is shared state). The frame
/// folds its tally into the global counters once, when it closes, so N
/// serving threads doing framed page traffic contend on one mutex
/// acquisition per *operation* instead of one per *page touch*. Counting
/// frames still must not nest per thread (see ScopedAccessProbe); frames
/// of different threads are entirely independent.

namespace pathix {

namespace obs {
class MetricsRegistry;
}  // namespace obs

/// Counters of page traffic since the last Reset().
struct AccessStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t buffer_hits = 0;  ///< reads absorbed by the buffer pool

  std::uint64_t total() const { return reads + writes; }

  AccessStats& operator+=(const AccessStats& o) {
    reads += o.reads;
    writes += o.writes;
    buffer_hits += o.buffer_hits;
    return *this;
  }
  /// Per-field *saturating* difference: a counter that would go negative
  /// clamps to zero instead of wrapping. Deltas are normally taken between
  /// snapshots of one monotonically-growing counter set, where the result
  /// is exact; clamping makes the operator total so that comparing tallies
  /// from different frames (where one side may lack a kind) stays sane.
  AccessStats operator-(const AccessStats& o) const {
    auto sat = [](std::uint64_t a, std::uint64_t b) {
      return a >= b ? a - b : 0;
    };
    return AccessStats{sat(reads, o.reads), sat(writes, o.writes),
                       sat(buffer_hits, o.buffer_hits)};
  }
  bool operator==(const AccessStats& o) const {
    return reads == o.reads && writes == o.writes &&
           buffer_hits == o.buffer_hits;
  }
  bool operator!=(const AccessStats& o) const { return !(*this == o); }
};

/// Kind of database activity a scoped accounting frame belongs to.
enum class PageOpKind {
  kQuery = 0,   ///< path query evaluation (indexed or naive)
  kInsert = 1,  ///< object insertion (store write + index maintenance)
  kDelete = 2,  ///< object deletion (store + index maintenance)
  kBuild = 3,   ///< index construction (excluded from the main stats)
  kOther = 4,
};
inline constexpr std::size_t kPageOpKindCount = 5;

const char* ToString(PageOpKind kind);

class Pager;

/// One open ScopedAccessProbe, linked into the owning thread's frame
/// stack. Thread-private: Note* reaches a frame only through the calling
/// thread's own stack, so only the owning thread ever touches the
/// counters and accumulation needs no lock.
struct AccessFrame {
  Pager* pager = nullptr;
  bool exclude = false;
  AccessStats local;     ///< everything this frame observed
  AccessStats deferred;  ///< observed but not yet folded into the globals
  AccessFrame* prev = nullptr;      ///< next outer frame (any pager)
  AccessFrame* redirect = nullptr;  ///< enclosing excluded frame, same pager
};

namespace internal {
/// Top of the calling thread's open-frame stack.
inline thread_local AccessFrame* tls_frame_top = nullptr;

/// The innermost open frame of \p pager on the calling thread, if any.
inline AccessFrame* FrameFor(const Pager* pager) {
  for (AccessFrame* f = tls_frame_top; f != nullptr; f = f->prev) {
    if (f->pager == pager) return f;
  }
  return nullptr;
}
}  // namespace internal

/// \brief Allocates page ids and counts accesses.
///
/// Optionally emulates an LRU buffer pool (an ablation the paper's cold
/// model does not have: every node access there is a page access). Reads of
/// buffered pages count as hits, not accesses; writes are write-through
/// (always counted) and admit the page. Anonymous bulk reads (record
/// overflow chains) and bulk writes bypass the buffer.
class Pager {
 public:
  explicit Pager(std::size_t page_size) : page_size_(page_size) {}

  std::size_t page_size() const { return page_size_; }

  /// Allocates a fresh page id (allocation itself is not counted; the
  /// first write to the page is).
  PageId Allocate() { return next_page_.fetch_add(1); }

  /// Enables an LRU buffer pool of \p capacity_pages (0 disables — the
  /// default, matching the cost model's cold assumption).
  void EnableBuffer(std::size_t capacity_pages) EXCLUDES(mu_);

  // Note* route each page touch to the calling thread's innermost open
  // frame when one exists: excluded scopes absorb the touch (measured, not
  // charged, buffer bypassed), counting scopes accumulate it lock-free and
  // defer the global-stats fold to frame close — unless the buffer pool is
  // on, where the shared LRU forces the locked path. Unframed touches (the
  // concurrent smoke tests, ad-hoc tooling) take the locked path directly,
  // so the global stats stay exact without any frame protocol.

  void NoteRead(PageId page) EXCLUDES(mu_) {
    if (AccessFrame* f = internal::FrameFor(this)) {
      AccessFrame* sink = f->exclude ? f : f->redirect;
      if (sink != nullptr) {  // excluded scope: measured, not charged
        ++sink->local.reads;
        return;
      }
      if (!buffered_.load(std::memory_order_relaxed)) {
        ++f->local.reads;
        ++f->deferred.reads;
        return;
      }
      MutexLock lock(&mu_);
      if (buffer_capacity_ > 0 && Touch(page)) {
        ++stats_.buffer_hits;
        ++f->local.buffer_hits;
        return;
      }
      ++stats_.reads;
      ++f->local.reads;
      Admit(page);
      return;
    }
    MutexLock lock(&mu_);
    if (buffer_capacity_ > 0 && Touch(page)) {
      ++stats_.buffer_hits;
      return;
    }
    ++stats_.reads;
    Admit(page);
  }
  void NoteWrite(PageId page) EXCLUDES(mu_) {
    if (AccessFrame* f = internal::FrameFor(this)) {
      AccessFrame* sink = f->exclude ? f : f->redirect;
      if (sink != nullptr) {
        ++sink->local.writes;
        return;
      }
      if (!buffered_.load(std::memory_order_relaxed)) {
        ++f->local.writes;
        ++f->deferred.writes;
        return;
      }
      MutexLock lock(&mu_);
      ++stats_.writes;
      ++f->local.writes;
      Admit(page);
      return;
    }
    MutexLock lock(&mu_);
    ++stats_.writes;
    Admit(page);
  }
  /// Convenience for counting n sequential page reads (scans / chains).
  /// Bulk traffic always bypasses the buffer pool.
  void NoteReads(std::uint64_t n) EXCLUDES(mu_) {
    if (AccessFrame* f = internal::FrameFor(this)) {
      AccessFrame* sink = f->exclude ? f : f->redirect;
      if (sink != nullptr) {
        sink->local.reads += n;
        return;
      }
      f->local.reads += n;
      f->deferred.reads += n;
      return;
    }
    MutexLock lock(&mu_);
    stats_.reads += n;
  }
  /// Convenience for counting n sequential page writes (bulk write-out).
  void NoteWrites(std::uint64_t n) EXCLUDES(mu_) {
    if (AccessFrame* f = internal::FrameFor(this)) {
      AccessFrame* sink = f->exclude ? f : f->redirect;
      if (sink != nullptr) {
        sink->local.writes += n;
        return;
      }
      f->local.writes += n;
      f->deferred.writes += n;
      return;
    }
    MutexLock lock(&mu_);
    stats_.writes += n;
  }

  /// Snapshot of the global counters (consistent across the three fields).
  AccessStats stats() const EXCLUDES(mu_) {
    ReaderMutexLock lock(&mu_);
    return stats_;
  }
  void ResetStats() EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    stats_ = AccessStats{};
  }

  // ------------------------------------------------------ scoped tallies

  /// Accesses folded in by ScopedAccessProbe frames of \p kind (excluded
  /// kBuild frames included — they are measured, just not charged).
  AccessStats tally(PageOpKind kind) const EXCLUDES(mu_) {
    ReaderMutexLock lock(&mu_);
    return kind_tallies_[static_cast<std::size_t>(kind)];
  }
  /// Accesses per probe label (the queried path id), for labeled frames.
  /// Deterministically ordered.
  std::map<std::string, AccessStats> label_tallies() const EXCLUDES(mu_) {
    ReaderMutexLock lock(&mu_);
    return label_tallies_;
  }
  void ResetTallies() EXCLUDES(mu_);

  /// Pages allocated so far (storage footprint proxy).
  std::uint64_t allocated_pages() const { return next_page_.load(); }

  /// Mirrors the pager's counters into \p registry (obs/metrics.h):
  /// pathix_pager_io_total{io}, pathix_pager_pages_total{op,io},
  /// pathix_pager_path_pages_total{path,io}, pathix_pager_buffer_hits_total
  /// and the pathix_pager_allocated_pages gauge. Counters are mirrored
  /// (MirrorTo) from the pager's own monotone tallies, so repeated exports
  /// converge to the same values. Never called with mu_ held: the pager and
  /// the metric mutexes are both leaves and must not nest.
  void ExportMetrics(obs::MetricsRegistry* registry) const EXCLUDES(mu_);

 private:
  friend class ScopedAccessProbe;

  /// Moves \p page to the LRU front; false if absent.
  bool Touch(PageId page) REQUIRES(mu_);
  void Admit(PageId page) REQUIRES(mu_);

  /// Folds a closing frame into the globals under one lock: deferred
  /// counts into the main stats, the frame's full tally into the
  /// (kind, label) tallies.
  void CloseFrame(PageOpKind kind, const std::string& label,
                  const AccessFrame& frame) EXCLUDES(mu_);

  std::size_t page_size_;
  mutable Mutex mu_;
  std::atomic<PageId> next_page_{0};
  AccessStats stats_ GUARDED_BY(mu_);

  std::array<AccessStats, kPageOpKindCount> kind_tallies_ GUARDED_BY(mu_){};
  std::map<std::string, AccessStats> label_tallies_ GUARDED_BY(mu_);

  /// Mirrors buffer_capacity_ > 0 so framed Note* can pick the lock-free
  /// path without taking mu_ first.
  std::atomic<bool> buffered_{false};
  std::size_t buffer_capacity_ GUARDED_BY(mu_) = 0;
  std::list<PageId> lru_ GUARDED_BY(mu_);  // front = most recent
  std::unordered_map<PageId, std::list<PageId>::iterator> lru_index_
      GUARDED_BY(mu_);
};

/// \brief RAII probe: captures the access delta over a scope.
class AccessProbe {
 public:
  explicit AccessProbe(const Pager& pager)
      : pager_(pager), start_(pager.stats()) {}

  AccessStats Delta() const {
    const AccessStats now = pager_.stats();
    AccessStats d;
    d.reads = now.reads - start_.reads;
    d.writes = now.writes - start_.writes;
    return d;
  }

 private:
  const Pager& pager_;
  AccessStats start_;
};

/// \brief RAII scoped accounting frame: the accesses inside the scope are
/// tallied on the pager under (\p kind, \p label) when the frame closes.
///
/// With \p exclude set, the frame's accesses are redirected into the probe
/// (bypassing the buffer pool) instead of the pager's main stats: the
/// traffic is measured — Delta(), and the kBuild tally — but not charged to
/// whatever experiment is running. This is how index construction is routed
/// through the pager without becoming part of a replay's measured pages;
/// its price enters experiments through the transition accounting instead.
///
/// Frames are per-thread: each probe pushes an AccessFrame onto the calling
/// thread's stack and captures only that thread's traffic, accumulated
/// lock-free and folded into the pager's globals once at close. Frames may
/// nest per thread, but every frame folds its own delta into the tallies
/// when it closes — so the "kind tallies decompose stats()" invariant holds
/// only while *counting* frames do not nest on one thread (SimDatabase
/// opens exactly one per operation and closes it before observers run,
/// which guarantees this). Excluded frames nest freely (LIFO per thread):
/// a counting frame inside an excluded one observes no traffic, since its
/// thread's touches all land on the enclosing excluded frame by design.
/// Destruction must happen on the constructing thread (RAII makes this
/// automatic).
class ScopedAccessProbe {
 public:
  explicit ScopedAccessProbe(Pager* pager, PageOpKind kind,
                             std::string label = {}, bool exclude = false);
  ~ScopedAccessProbe();

  ScopedAccessProbe(const ScopedAccessProbe&) = delete;
  ScopedAccessProbe& operator=(const ScopedAccessProbe&) = delete;

  /// The accesses observed by this frame so far (this thread's traffic
  /// only; thread-private, so the read is race-free even mid-scope).
  AccessStats Delta() const { return frame_.local; }

 private:
  Pager* pager_;
  PageOpKind kind_;
  std::string label_;
  AccessFrame frame_;
};

}  // namespace pathix
