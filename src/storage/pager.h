#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>

#include "common/types.h"

/// \file pager.h
/// \brief Logical page manager with access counting.
///
/// The simulator's only cost metric is page accesses — exactly the paper's.
/// Structures own their content in memory; the Pager allocates page
/// identities and tallies reads/writes. A page is the unit of transfer; one
/// B+-tree node, one record-overflow chunk, or one object-store slot block
/// occupies one page.

namespace pathix {

/// Counters of page traffic since the last Reset().
struct AccessStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t buffer_hits = 0;  ///< reads absorbed by the buffer pool

  std::uint64_t total() const { return reads + writes; }
};

/// \brief Allocates page ids and counts accesses.
///
/// Optionally emulates an LRU buffer pool (an ablation the paper's cold
/// model does not have: every node access there is a page access). Reads of
/// buffered pages count as hits, not accesses; writes are write-through
/// (always counted) and admit the page. Anonymous bulk reads (record
/// overflow chains) bypass the buffer.
class Pager {
 public:
  explicit Pager(std::size_t page_size) : page_size_(page_size) {}

  std::size_t page_size() const { return page_size_; }

  /// Allocates a fresh page id (allocation itself is not counted; the
  /// first write to the page is).
  PageId Allocate() { return next_page_++; }

  /// Enables an LRU buffer pool of \p capacity_pages (0 disables — the
  /// default, matching the cost model's cold assumption).
  void EnableBuffer(std::size_t capacity_pages);

  void NoteRead(PageId page) {
    if (buffer_capacity_ > 0 && Touch(page)) {
      ++stats_.buffer_hits;
      return;
    }
    ++stats_.reads;
    Admit(page);
  }
  void NoteWrite(PageId page) {
    ++stats_.writes;
    Admit(page);
  }
  /// Convenience for counting n sequential page reads (scans / chains).
  void NoteReads(std::uint64_t n) { stats_.reads += n; }

  const AccessStats& stats() const { return stats_; }
  void ResetStats() { stats_ = AccessStats{}; }

  /// Pages allocated so far (storage footprint proxy).
  std::uint64_t allocated_pages() const { return next_page_; }

 private:
  /// Moves \p page to the LRU front; false if absent.
  bool Touch(PageId page);
  void Admit(PageId page);

  std::size_t page_size_;
  PageId next_page_ = 0;
  AccessStats stats_;

  std::size_t buffer_capacity_ = 0;
  std::list<PageId> lru_;  // front = most recent
  std::unordered_map<PageId, std::list<PageId>::iterator> lru_index_;
};

/// \brief RAII probe: captures the access delta over a scope.
class AccessProbe {
 public:
  explicit AccessProbe(const Pager& pager)
      : pager_(pager), start_(pager.stats()) {}

  AccessStats Delta() const {
    AccessStats d;
    d.reads = pager_.stats().reads - start_.reads;
    d.writes = pager_.stats().writes - start_.writes;
    return d;
  }

 private:
  const Pager& pager_;
  AccessStats start_;
};

}  // namespace pathix
