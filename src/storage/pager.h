#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/types.h"
#include "storage/buffer_pool.h"

/// \file pager.h
/// \brief Logical page manager with access counting and a real buffer pool.
///
/// The simulator's only cost metric is page accesses — exactly the paper's.
/// Structures own their content in memory; the Pager allocates page
/// identities and tallies reads/writes. A page is the unit of transfer; one
/// B+-tree node, one record-overflow chunk, or one object-store slot block
/// occupies one page.
///
/// Beyond the global counters, the pager keeps *scoped* tallies: a
/// ScopedAccessProbe tags the accesses of one stretch of work with a
/// PageOpKind and an optional label (the queried path id), so experiments
/// can decompose measured traffic per operation kind and per path without
/// instrumenting every call site. Excluded scopes (index builds) measure
/// their traffic through the same counting paths while keeping it out of
/// the main stats — the mechanism behind pager-accounted index builds.
///
/// The buffer pool (EnableBuffer) is a real fixed-capacity pool
/// (storage/buffer_pool.h): frames, CLOCK eviction, pins, dirty-page
/// write-back. Capacity 0 — the default — is the cost model's cold
/// assumption: every touch is charged. With capacity N, a read of a
/// resident page counts as a buffer hit instead of a read, a re-read after
/// eviction is charged again (eviction is observable), writes mark frames
/// dirty and are charged as write-backs when the dirty frame is evicted or
/// flushed, and PinRead/PinWrite return a PageGuard that keeps the frame
/// in the pool for the guard's lifetime. Anonymous bulk reads (record
/// overflow chains) and bulk writes bypass the pool.
///
/// Thread safety: the global counters live behind mu_, so concurrent
/// Note*/stats()/Allocate() calls are safe (the pager is the leaf of the
/// lock hierarchy in common/mutex.h). Scoped frames are *thread-local*: a
/// ScopedAccessProbe pushes a frame onto its own thread's frame stack, and
/// Note* calls from that thread accumulate into the frame without touching
/// mu_. The frame folds its tally into the global counters once, when it
/// closes, so N serving threads doing framed page traffic contend on one
/// mutex acquisition per *operation* instead of one per *page touch*.
/// Buffered touches preserve that design: they take only the pool's
/// *sharded* frame-table latches (leaves, like mu_; the two are never held
/// together) and defer the stats fold to frame close exactly like the
/// unbuffered fast path — mu_ stays one-acquisition-per-operation however
/// large the pool. Counting frames still must not nest per thread (see
/// ScopedAccessProbe); frames of different threads are independent.

namespace pathix {

namespace obs {
class MetricsRegistry;
}  // namespace obs

/// Counters of page traffic since the last Reset().
struct AccessStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t buffer_hits = 0;  ///< reads absorbed by the buffer pool

  std::uint64_t total() const { return reads + writes; }
  /// Page touches under the paper's cold-buffer cost model: what total()
  /// would have been with no pool. The index-selection layer prices
  /// workloads with this so its decisions don't depend on the buffer
  /// capacity it happens to be serving through.
  std::uint64_t logical_total() const { return reads + writes + buffer_hits; }

  AccessStats& operator+=(const AccessStats& o) {
    reads += o.reads;
    writes += o.writes;
    buffer_hits += o.buffer_hits;
    return *this;
  }
  /// Per-field *saturating* difference: a counter that would go negative
  /// clamps to zero instead of wrapping. Deltas are normally taken between
  /// snapshots of one monotonically-growing counter set, where the result
  /// is exact; clamping makes the operator total so that comparing tallies
  /// from different frames (where one side may lack a kind) stays sane.
  AccessStats operator-(const AccessStats& o) const {
    auto sat = [](std::uint64_t a, std::uint64_t b) {
      return a >= b ? a - b : 0;
    };
    return AccessStats{sat(reads, o.reads), sat(writes, o.writes),
                       sat(buffer_hits, o.buffer_hits)};
  }
  bool operator==(const AccessStats& o) const {
    return reads == o.reads && writes == o.writes &&
           buffer_hits == o.buffer_hits;
  }
  bool operator!=(const AccessStats& o) const { return !(*this == o); }
};

/// Kind of database activity a scoped accounting frame belongs to.
enum class PageOpKind {
  kQuery = 0,   ///< path query evaluation (indexed or naive)
  kInsert = 1,  ///< object insertion (store write + index maintenance)
  kDelete = 2,  ///< object deletion (store + index maintenance)
  kBuild = 3,   ///< index construction (excluded from the main stats)
  kOther = 4,
};
inline constexpr std::size_t kPageOpKindCount = 5;

const char* ToString(PageOpKind kind);

class Pager;

/// One open ScopedAccessProbe, linked into the owning thread's frame
/// stack. Thread-private: Note* reaches a frame only through the calling
/// thread's own stack, so only the owning thread ever touches the
/// counters and accumulation needs no lock.
struct AccessFrame {
  Pager* pager = nullptr;
  bool exclude = false;
  AccessStats local;     ///< everything this frame observed
  AccessStats deferred;  ///< observed but not yet folded into the globals
  AccessFrame* prev = nullptr;      ///< next outer frame (any pager)
  AccessFrame* redirect = nullptr;  ///< enclosing excluded frame, same pager
};

namespace internal {
/// Top of the calling thread's open-frame stack.
inline thread_local AccessFrame* tls_frame_top = nullptr;

/// The innermost open frame of \p pager on the calling thread, if any.
inline AccessFrame* FrameFor(const Pager* pager) {
  for (AccessFrame* f = tls_frame_top; f != nullptr; f = f->prev) {
    if (f->pager == pager) return f;
  }
  return nullptr;
}
}  // namespace internal

/// \brief RAII pin on one buffer-pool frame.
///
/// Returned by Pager::PinRead / Pager::PinWrite. While a guard is live the
/// pinned page cannot be evicted — CLOCK skips pinned frames — so a
/// multi-touch operation (a B-tree descent, an object-slot access) keeps
/// its working set resident for the operation's duration. Guards are
/// move-only and unpin on destruction. When the pool is off (capacity 0),
/// the page was not admitted (all frames pinned), or the touch landed in
/// an excluded scope, the guard is empty (pinned() == false) and
/// destruction is a no-op — pin/unpin has zero cost in the cold default.
class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(PageGuard&& o) noexcept : pager_(o.pager_), page_(o.page_) {
    o.pager_ = nullptr;
  }
  PageGuard& operator=(PageGuard&& o) noexcept {
    if (this != &o) {
      Release();
      pager_ = o.pager_;
      page_ = o.page_;
      o.pager_ = nullptr;
    }
    return *this;
  }
  ~PageGuard() { Release(); }

  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;

  bool pinned() const { return pager_ != nullptr; }
  PageId page() const { return page_; }

  /// Drops the pin early (idempotent).
  inline void Release();

 private:
  friend class Pager;
  PageGuard(Pager* pager, PageId page) : pager_(pager), page_(page) {}

  Pager* pager_ = nullptr;
  PageId page_ = kInvalidPage;
};

/// The pins one operation holds (e.g. a root-to-leaf descent path).
using PinSet = std::vector<PageGuard>;

/// \brief Allocates page ids, counts accesses, owns the buffer pool.
class Pager {
 public:
  explicit Pager(std::size_t page_size) : page_size_(page_size) {}

  std::size_t page_size() const { return page_size_; }

  /// Allocates a fresh page id (allocation itself is not counted; the
  /// first write to the page is).
  PageId Allocate() { return next_page_.fetch_add(1); }

  /// Sets the buffer pool capacity to \p capacity_pages (0 disables — the
  /// default, matching the cost model's cold assumption). Warm state is
  /// preserved: the same capacity is a no-op, growing keeps every resident
  /// frame, shrinking evicts from the cold end. Dirty frames that leave
  /// the pool (shrink, or disable's flush) are charged as page writes.
  void EnableBuffer(std::size_t capacity_pages) EXCLUDES(mu_);

  // Note* route each page touch to the calling thread's innermost open
  // frame when one exists: excluded scopes absorb the touch (measured, not
  // charged, buffer bypassed), counting scopes accumulate it lock-free and
  // defer the global-stats fold to frame close. With the buffer pool on,
  // the touch goes through the pool's sharded latches first and the
  // resulting charge (hit, read, or write-backs) is deferred the same way
  // — mu_ is never taken per touch on a framed path. Unframed touches
  // (the concurrent smoke tests, ad-hoc tooling) take the locked path
  // directly, so the global stats stay exact without any frame protocol.

  void NoteRead(PageId page) EXCLUDES(mu_) {
    if (AccessFrame* f = internal::FrameFor(this)) {
      AccessFrame* sink = f->exclude ? f : f->redirect;
      if (sink != nullptr) {  // excluded scope: measured, not charged
        ++sink->local.reads;
        return;
      }
      if (!buffered_.load(std::memory_order_relaxed)) {
        ++f->local.reads;
        ++f->deferred.reads;
        return;
      }
      BufferedRead(page, f);
      return;
    }
    if (buffered_.load(std::memory_order_relaxed)) {
      BufferedRead(page, nullptr);
      return;
    }
    MutexLock lock(&mu_);
    ++stats_.reads;
  }
  void NoteWrite(PageId page) EXCLUDES(mu_) {
    if (AccessFrame* f = internal::FrameFor(this)) {
      AccessFrame* sink = f->exclude ? f : f->redirect;
      if (sink != nullptr) {
        ++sink->local.writes;
        return;
      }
      if (!buffered_.load(std::memory_order_relaxed)) {
        ++f->local.writes;
        ++f->deferred.writes;
        return;
      }
      BufferedWrite(page, f);
      return;
    }
    if (buffered_.load(std::memory_order_relaxed)) {
      BufferedWrite(page, nullptr);
      return;
    }
    MutexLock lock(&mu_);
    ++stats_.writes;
  }

  /// As NoteRead, additionally pinning the page's frame for the returned
  /// guard's lifetime (empty guard when nothing was admitted — pool off,
  /// excluded scope, or every frame pinned).
  PageGuard PinRead(PageId page) EXCLUDES(mu_) {
    if (AccessFrame* f = internal::FrameFor(this)) {
      AccessFrame* sink = f->exclude ? f : f->redirect;
      if (sink != nullptr) {
        ++sink->local.reads;
        return PageGuard();
      }
      if (!buffered_.load(std::memory_order_relaxed)) {
        ++f->local.reads;
        ++f->deferred.reads;
        return PageGuard();
      }
      return BufferedRead(page, f, /*pin=*/true) ? PageGuard(this, page)
                                                 : PageGuard();
    }
    if (buffered_.load(std::memory_order_relaxed)) {
      return BufferedRead(page, nullptr, /*pin=*/true) ? PageGuard(this, page)
                                                       : PageGuard();
    }
    MutexLock lock(&mu_);
    ++stats_.reads;
    return PageGuard();
  }
  /// As NoteWrite, with the PinRead pin contract.
  PageGuard PinWrite(PageId page) EXCLUDES(mu_) {
    if (AccessFrame* f = internal::FrameFor(this)) {
      AccessFrame* sink = f->exclude ? f : f->redirect;
      if (sink != nullptr) {
        ++sink->local.writes;
        return PageGuard();
      }
      if (!buffered_.load(std::memory_order_relaxed)) {
        ++f->local.writes;
        ++f->deferred.writes;
        return PageGuard();
      }
      return BufferedWrite(page, f, /*pin=*/true) ? PageGuard(this, page)
                                                  : PageGuard();
    }
    if (buffered_.load(std::memory_order_relaxed)) {
      return BufferedWrite(page, nullptr, /*pin=*/true)
                 ? PageGuard(this, page)
                 : PageGuard();
    }
    MutexLock lock(&mu_);
    ++stats_.writes;
    return PageGuard();
  }

  /// Convenience for counting n sequential page reads (scans / chains).
  /// Bulk traffic always bypasses the buffer pool.
  void NoteReads(std::uint64_t n) EXCLUDES(mu_) {
    if (AccessFrame* f = internal::FrameFor(this)) {
      AccessFrame* sink = f->exclude ? f : f->redirect;
      if (sink != nullptr) {
        sink->local.reads += n;
        return;
      }
      f->local.reads += n;
      f->deferred.reads += n;
      return;
    }
    MutexLock lock(&mu_);
    stats_.reads += n;
  }
  /// Convenience for counting n sequential page writes (bulk write-out).
  void NoteWrites(std::uint64_t n) EXCLUDES(mu_) {
    if (AccessFrame* f = internal::FrameFor(this)) {
      AccessFrame* sink = f->exclude ? f : f->redirect;
      if (sink != nullptr) {
        sink->local.writes += n;
        return;
      }
      f->local.writes += n;
      f->deferred.writes += n;
      return;
    }
    MutexLock lock(&mu_);
    stats_.writes += n;
  }

  /// Snapshot of the global counters (consistent across the three fields).
  AccessStats stats() const EXCLUDES(mu_) {
    ReaderMutexLock lock(&mu_);
    return stats_;
  }
  void ResetStats() EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    stats_ = AccessStats{};
  }

  // ------------------------------------------------------ scoped tallies

  /// Accesses folded in by ScopedAccessProbe frames of \p kind (excluded
  /// kBuild frames included — they are measured, just not charged).
  AccessStats tally(PageOpKind kind) const EXCLUDES(mu_) {
    ReaderMutexLock lock(&mu_);
    return kind_tallies_[static_cast<std::size_t>(kind)];
  }
  /// Accesses per probe label (the queried path id), for labeled frames.
  /// Deterministically ordered.
  std::map<std::string, AccessStats> label_tallies() const EXCLUDES(mu_) {
    ReaderMutexLock lock(&mu_);
    return label_tallies_;
  }
  void ResetTallies() EXCLUDES(mu_);

  /// Pages allocated so far (storage footprint proxy).
  std::uint64_t allocated_pages() const { return next_page_.load(); }

  /// The buffer pool, for capacity/residency introspection (tests, bench
  /// reporting). Its counters are monotone across EnableBuffer calls.
  const BufferPool& buffer_pool() const { return pool_; }

  /// Mirrors the pager's counters into \p registry (obs/metrics.h):
  /// pathix_pager_io_total{io}, pathix_pager_pages_total{op,io},
  /// pathix_pager_path_pages_total{path,io} (io = read|write|hit),
  /// pathix_pager_buffer_hits_total, the pool's
  /// pathix_pager_buffer_{evictions,writebacks}_total and the
  /// pathix_pager_allocated_pages gauge. Counters are mirrored (MirrorTo)
  /// from the pager's own monotone tallies, so repeated exports converge
  /// to the same values. Never called with mu_ held: the pager and the
  /// metric mutexes are both leaves and must not nest.
  void ExportMetrics(obs::MetricsRegistry* registry) const EXCLUDES(mu_);

 private:
  friend class ScopedAccessProbe;
  friend class PageGuard;

  /// Buffered touch + charge: routes \p page through the pool (its sharded
  /// latches only — never mu_ on a framed path) and books the outcome
  /// (hit / read / write-backs) on frame \p f, or on the global stats when
  /// \p f is null. Returns true when the page is resident-and-pinned
  /// (\p pin) after the touch. Out of line: the unbuffered fast path above
  /// stays small enough to inline.
  bool BufferedRead(PageId page, AccessFrame* f, bool pin = false)
      EXCLUDES(mu_);
  bool BufferedWrite(PageId page, AccessFrame* f, bool pin = false)
      EXCLUDES(mu_);

  /// Books \p d wherever the calling thread's accounting currently lands:
  /// the enclosing excluded frame, the open counting frame (deferred), or
  /// the global stats.
  void Charge(const AccessStats& d) EXCLUDES(mu_);

  /// PageGuard's unpin hook; charges any write-back the unpin triggered.
  void UnpinPage(PageId page) EXCLUDES(mu_);

  /// Folds a closing frame into the globals under one lock: deferred
  /// counts into the main stats, the frame's full tally into the
  /// (kind, label) tallies.
  void CloseFrame(PageOpKind kind, const std::string& label,
                  const AccessFrame& frame) EXCLUDES(mu_);

  std::size_t page_size_;
  mutable Mutex mu_;
  std::atomic<PageId> next_page_{0};
  AccessStats stats_ GUARDED_BY(mu_);

  std::array<AccessStats, kPageOpKindCount> kind_tallies_ GUARDED_BY(mu_){};
  std::map<std::string, AccessStats> label_tallies_ GUARDED_BY(mu_);

  /// Mirrors pool capacity > 0 so Note*/Pin* pick the lock-free cold path
  /// without taking any lock first.
  std::atomic<bool> buffered_{false};
  /// The pool synchronizes itself (sharded latches, leaves like mu_; the
  /// two are never held together).
  BufferPool pool_;
};

inline void PageGuard::Release() {
  if (pager_ != nullptr) {
    pager_->UnpinPage(page_);
    pager_ = nullptr;
  }
}

/// \brief RAII probe: captures the access delta over a scope.
class AccessProbe {
 public:
  explicit AccessProbe(const Pager& pager)
      : pager_(pager), start_(pager.stats()) {}

  AccessStats Delta() const { return pager_.stats() - start_; }

 private:
  const Pager& pager_;
  AccessStats start_;
};

/// \brief RAII scoped accounting frame: the accesses inside the scope are
/// tallied on the pager under (\p kind, \p label) when the frame closes.
///
/// With \p exclude set, the frame's accesses are redirected into the probe
/// (bypassing the buffer pool) instead of the pager's main stats: the
/// traffic is measured — Delta(), and the kBuild tally — but not charged to
/// whatever experiment is running. This is how index construction is routed
/// through the pager without becoming part of a replay's measured pages;
/// its price enters experiments through the transition accounting instead.
///
/// Frames are per-thread: each probe pushes an AccessFrame onto the calling
/// thread's stack and captures only that thread's traffic, accumulated
/// lock-free and folded into the pager's globals once at close. Frames may
/// nest per thread, but every frame folds its own delta into the tallies
/// when it closes — so the "kind tallies decompose stats()" invariant holds
/// only while *counting* frames do not nest on one thread (SimDatabase
/// opens exactly one per operation and closes it before observers run,
/// which guarantees this). Excluded frames nest freely (LIFO per thread):
/// a counting frame inside an excluded one observes no traffic, since its
/// thread's touches all land on the enclosing excluded frame by design.
/// Destruction must happen on the constructing thread (RAII makes this
/// automatic).
class ScopedAccessProbe {
 public:
  explicit ScopedAccessProbe(Pager* pager, PageOpKind kind,
                             std::string label = {}, bool exclude = false);
  ~ScopedAccessProbe();

  ScopedAccessProbe(const ScopedAccessProbe&) = delete;
  ScopedAccessProbe& operator=(const ScopedAccessProbe&) = delete;

  /// The accesses observed by this frame so far (this thread's traffic
  /// only; thread-private, so the read is race-free even mid-scope).
  AccessStats Delta() const { return frame_.local; }

 private:
  Pager* pager_;
  PageOpKind kind_;
  std::string label_;
  AccessFrame frame_;
};

}  // namespace pathix
