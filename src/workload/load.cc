#include "workload/load.h"

namespace pathix {

double LoadDistribution::TotalQueryLoad() const {
  double total = 0;
  for (const auto& [cls, load] : loads_) total += load.query;
  return total;
}

double LoadDistribution::TotalUpdateLoad() const {
  double total = 0;
  for (const auto& [cls, load] : loads_) total += load.insert + load.del;
  return total;
}

}  // namespace pathix
