#pragma once

#include <unordered_map>

#include "common/types.h"

/// \file load.h
/// \brief The workload model of Section 3.2: per class C_{l,x} in scope(P) a
/// triplet (alpha, beta, gamma) — frequencies of queries against the ending
/// attribute with respect to that class, of insertions, and of deletions.

namespace pathix {

/// \brief One (alpha_{l,x}, beta_{l,x}, gamma_{l,x}) triplet.
struct OpLoad {
  double query = 0;   ///< alpha: queries against A_n w.r.t. this class
  double insert = 0;  ///< beta: object insertions into this class
  double del = 0;     ///< gamma: object deletions from this class
};

/// \brief Load distribution LD_{A_n}(scope(P)): triplets per class.
///
/// Frequencies are relative weights (the paper's examples use fractions of
/// an operation mix); classes not set carry zero load.
class LoadDistribution {
 public:
  void Set(ClassId cls, OpLoad load) { loads_[cls] = load; }
  void Set(ClassId cls, double query, double insert, double del) {
    loads_[cls] = OpLoad{query, insert, del};
  }

  OpLoad Get(ClassId cls) const {
    auto it = loads_.find(cls);
    return it == loads_.end() ? OpLoad{} : it->second;
  }

  /// Sum of all query frequencies (used for sanity checks and reporting).
  double TotalQueryLoad() const;
  double TotalUpdateLoad() const;

  /// All triplets set so far (iteration order unspecified; callers needing
  /// determinism sort by class id).
  const std::unordered_map<ClassId, OpLoad>& entries() const { return loads_; }

 private:
  std::unordered_map<ClassId, OpLoad> loads_;
};

}  // namespace pathix
