#include "advisor/candidate_pool.h"

#include <gtest/gtest.h>

#include <set>

#include "costmodel/subpath_cost.h"
#include "datagen/paper_schema.h"

namespace pathix {
namespace {

class CandidatePoolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    setup_ = MakeExample51Setup();
    full_ = PathWorkload{"", setup_.path, setup_.load};

    LoadDistribution audit_load;
    audit_load.Set(setup_.company, 0.5, 0.05, 0.05);
    audit_load.Set(setup_.vehicle, 0.3, 0.0, 0.05);
    audit_load.Set(setup_.division, 0.15, 0.1, 0.05);
    audit_ = PathWorkload{
        "",
        Path::Create(setup_.schema, setup_.vehicle, {"man", "divs", "name"})
            .value(),
        audit_load};

    LoadDistribution div_load;
    div_load.Set(setup_.division, 0.8, 0.1, 0.1);
    divisions_ = PathWorkload{
        "",
        Path::Create(setup_.schema, setup_.company, {"divs", "name"}).value(),
        div_load};
  }

  PaperSetup setup_;
  PathWorkload full_;
  PathWorkload audit_;
  PathWorkload divisions_;
};

TEST_F(CandidatePoolTest, EmptyWorkloadRejected) {
  EXPECT_FALSE(CandidatePool::Build(setup_.schema, setup_.catalog, {}).ok());
}

TEST_F(CandidatePoolTest, SinglePathEnumeratesEverySubpathTimesOrg) {
  const CandidatePool pool =
      CandidatePool::Build(setup_.schema, setup_.catalog, {full_}).value();
  ASSERT_EQ(pool.num_paths(), 1);
  EXPECT_EQ(pool.path_length(0), 4);
  // n(n+1)/2 subpaths x 3 default orgs, no duplicates within one path.
  EXPECT_EQ(pool.entries().size(), 10u * 3u);
  for (const CandidateEntry& e : pool.entries()) {
    ASSERT_EQ(e.uses.size(), 1u);
    EXPECT_FALSE(e.shareable);
    EXPECT_GE(e.uses[0].query_prefix, 0);
    EXPECT_GE(e.uses[0].maintain, 0);
    EXPECT_GT(e.storage_bytes, 0);
  }
}

TEST_F(CandidatePoolTest, OverlappingPathsDeduplicateStructurally) {
  const CandidatePool pool =
      CandidatePool::Build(setup_.schema, setup_.catalog,
                           {full_, audit_, divisions_})
          .value();
  ASSERT_EQ(pool.num_paths(), 3);

  // Company.divs.name is levels [3,4] of the full path, [2,3] of the audit
  // path and [1,2] of the standalone division path: one entry, three uses.
  const int e_full = pool.EntryFor(0, Subpath{3, 4}, IndexOrg::kMX);
  const int e_audit = pool.EntryFor(1, Subpath{2, 3}, IndexOrg::kMX);
  const int e_div = pool.EntryFor(2, Subpath{1, 2}, IndexOrg::kMX);
  EXPECT_EQ(e_full, e_audit);
  EXPECT_EQ(e_full, e_div);
  const CandidateEntry& entry =
      pool.entries()[static_cast<std::size_t>(e_full)];
  EXPECT_TRUE(entry.shareable);
  ASSERT_EQ(entry.uses.size(), 3u);
  std::set<int> users;
  for (const CandidateUse& use : entry.uses) users.insert(use.path_index);
  EXPECT_EQ(users, (std::set<int>{0, 1, 2}));

  // Same structure under a different organization is a different entry.
  EXPECT_NE(e_full, pool.EntryFor(0, Subpath{3, 4}, IndexOrg::kNIX));
  // The retrieval benefit is path-specific, per use.
  EXPECT_NE(entry.uses[0].query_prefix, entry.uses[2].query_prefix);
}

TEST_F(CandidatePoolTest, SubclassTypedPathsStayDistinct) {
  // Bus.man.divs.name navigates the same attributes as Vehicle.man.divs.name
  // but is rooted at the subclass: structurally different indexes.
  LoadDistribution bus_load;
  bus_load.Set(setup_.bus, 0.4, 0.1, 0.1);
  bus_load.Set(setup_.division, 0.2, 0.1, 0.1);
  const PathWorkload bus{
      "",
      Path::Create(setup_.schema, setup_.bus, {"man", "divs", "name"})
          .value(),
      bus_load};

  const CandidatePool pool =
      CandidatePool::Build(setup_.schema, setup_.catalog, {audit_, bus})
          .value();
  // The heads differ (Vehicle.man vs Bus.man)...
  EXPECT_NE(pool.EntryFor(0, Subpath{1, 1}, IndexOrg::kMX),
            pool.EntryFor(1, Subpath{1, 1}, IndexOrg::kMX));
  EXPECT_NE(pool.EntryFor(0, Subpath{1, 2}, IndexOrg::kNIX),
            pool.EntryFor(1, Subpath{1, 2}, IndexOrg::kNIX));
  // ...while the Company.divs.name tail is physically identical.
  const int tail0 = pool.EntryFor(0, Subpath{2, 3}, IndexOrg::kMIX);
  const int tail1 = pool.EntryFor(1, Subpath{2, 3}, IndexOrg::kMIX);
  EXPECT_EQ(tail0, tail1);
  EXPECT_TRUE(pool.entries()[static_cast<std::size_t>(tail0)].shareable);
}

TEST_F(CandidatePoolTest, UsesMatchDirectCostModelEvaluation) {
  const CandidatePool pool =
      CandidatePool::Build(setup_.schema, setup_.catalog, {full_}).value();
  const PathContext ctx =
      PathContext::Build(setup_.schema, setup_.path, setup_.catalog,
                         setup_.load)
          .value();
  for (const Subpath& sp : EnumerateSubpaths(4)) {
    for (const IndexOrg org :
         {IndexOrg::kMX, IndexOrg::kMIX, IndexOrg::kNIX}) {
      const CandidateUse& use = pool.UseFor(0, sp, org);
      const SubpathCost direct =
          ComputeSubpathCost(ctx, sp.start, sp.end, org);
      EXPECT_DOUBLE_EQ(use.query_prefix, direct.query + direct.prefix);
      EXPECT_DOUBLE_EQ(use.maintain, direct.maintain + direct.boundary);
    }
  }
}

TEST_F(CandidatePoolTest, EntryForUnknownOrgIsMinusOne) {
  const CandidatePool pool =
      CandidatePool::Build(setup_.schema, setup_.catalog, {full_}).value();
  EXPECT_EQ(pool.EntryFor(0, Subpath{1, 1}, IndexOrg::kPX), -1);
}

TEST_F(CandidatePoolTest, LabelsRenderButDoNotKey) {
  const CandidatePool pool =
      CandidatePool::Build(setup_.schema, setup_.catalog,
                           {full_, divisions_})
          .value();
  const int entry = pool.EntryFor(0, Subpath{3, 4}, IndexOrg::kMX);
  EXPECT_EQ(pool.entries()[static_cast<std::size_t>(entry)].label,
            "Company.divs.name (MX)");
}

}  // namespace
}  // namespace pathix
