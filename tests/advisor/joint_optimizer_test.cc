#include "advisor/joint_optimizer.h"

#include <gtest/gtest.h>

#include <map>

#include "advisor/workload_advisor.h"
#include "datagen/paper_schema.h"

namespace pathix {
namespace {

/// Recomputes a joint result's total from its parts: per-path query/prefix
/// shares plus one maintenance charge per distinct chosen entry.
double RecomputeTotal(const CandidatePool& pool,
                      const JointSelectionResult& joint) {
  double total = 0;
  std::map<int, double> max_maint;
  for (std::size_t i = 0; i < joint.per_path.size(); ++i) {
    for (const IndexedSubpath& part : joint.per_path[i].config.parts()) {
      const CandidateUse& use =
          pool.UseFor(static_cast<int>(i), part.subpath, part.org);
      total += use.query_prefix;
      const int entry =
          pool.EntryFor(static_cast<int>(i), part.subpath, part.org);
      max_maint[entry] = std::max(max_maint[entry], use.maintain);
    }
  }
  for (const auto& [entry, maint] : max_maint) total += maint;
  return total;
}

class JointOptimizerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    setup_ = MakeExample51Setup();
    paths_.push_back(PathWorkload{"", setup_.path, setup_.load});

    LoadDistribution audit_load;
    audit_load.Set(setup_.company, 0.5, 0.05, 0.05);
    audit_load.Set(setup_.vehicle, 0.3, 0.0, 0.05);
    audit_load.Set(setup_.division, 0.15, 0.1, 0.05);
    paths_.push_back(PathWorkload{
        "",
        Path::Create(setup_.schema, setup_.vehicle, {"man", "divs", "name"})
            .value(),
        audit_load});

    LoadDistribution div_load;
    div_load.Set(setup_.division, 0.8, 0.1, 0.1);
    div_load.Set(setup_.company, 0.1, 0.1, 0.1);
    paths_.push_back(PathWorkload{
        "",
        Path::Create(setup_.schema, setup_.company, {"divs", "name"}).value(),
        div_load});
  }

  PaperSetup setup_;
  std::vector<PathWorkload> paths_;
};

TEST_F(JointOptimizerTest, AcceptanceJointLeqGreedyLeqIndependent) {
  // The headline invariant on >= 3 overlapping paths.
  const WorkloadRecommendation rec =
      AdviseWorkload(setup_.schema, setup_.catalog, paths_).value();
  EXPECT_LE(rec.total_cost_joint, rec.total_cost_greedy + 1e-9);
  EXPECT_LE(rec.total_cost_greedy, rec.total_cost_independent + 1e-9);
  // On this workload the joint optimum strictly beats the greedy merge: the
  // merge keeps per-path optima that disagree on the shared tail's org.
  EXPECT_LT(rec.total_cost_joint, rec.total_cost_greedy - 1e-6);
  // Every path still gets a valid configuration.
  for (std::size_t i = 0; i < paths_.size(); ++i) {
    EXPECT_TRUE(rec.joint.per_path[i]
                    .config.Validate(paths_[i].path.length())
                    .ok());
  }
}

TEST_F(JointOptimizerTest, TotalCostMatchesSharedAccounting) {
  const CandidatePool pool =
      CandidatePool::Build(setup_.schema, setup_.catalog, paths_).value();
  const JointSelectionResult joint =
      SelectJointConfiguration(pool).value();
  EXPECT_NEAR(joint.total_cost, RecomputeTotal(pool, joint), 1e-9);

  // Reported storage equals the sum over the distinct chosen entries.
  double storage = 0;
  for (const ChosenIndex& c : joint.chosen) {
    storage +=
        pool.entries()[static_cast<std::size_t>(c.entry_id)].storage_bytes;
  }
  EXPECT_NEAR(joint.total_storage_bytes, storage, 1e-6);
}

TEST_F(JointOptimizerTest, ExhaustiveAndBranchAndBoundAgree) {
  const CandidatePool pool =
      CandidatePool::Build(setup_.schema, setup_.catalog, paths_).value();
  JointOptions ex_opts;
  ex_opts.algorithm = JointOptions::Algorithm::kExhaustive;
  JointOptions bb_opts;
  bb_opts.algorithm = JointOptions::Algorithm::kBranchAndBound;
  const JointSelectionResult ex = SelectJointConfiguration(pool, ex_opts).value();
  const JointSelectionResult bb = SelectJointConfiguration(pool, bb_opts).value();
  EXPECT_NEAR(ex.total_cost, bb.total_cost, 1e-9);
  EXPECT_FALSE(ex.used_branch_and_bound);
  EXPECT_TRUE(bb.used_branch_and_bound);
  EXPECT_LT(bb.nodes_explored, ex.nodes_explored);
}

TEST_F(JointOptimizerTest, SinglePathMatchesStandaloneAdvisor) {
  const CandidatePool pool =
      CandidatePool::Build(setup_.schema, setup_.catalog,
                           {paths_[0]})
          .value();
  const JointSelectionResult joint = SelectJointConfiguration(pool).value();
  const Recommendation single =
      AdviseIndexConfiguration(setup_.schema, setup_.path, setup_.catalog,
                               setup_.load)
          .value();
  EXPECT_NEAR(joint.total_cost, single.result.cost, 1e-9);
}

TEST_F(JointOptimizerTest, BindingBudgetReturnsFeasibleConfiguration) {
  const CandidatePool pool =
      CandidatePool::Build(setup_.schema, setup_.catalog, paths_).value();
  const JointSelectionResult unconstrained =
      SelectJointConfiguration(pool).value();

  JointOptions opts;
  opts.storage_budget_bytes = unconstrained.total_storage_bytes * 0.6;
  const Result<JointSelectionResult> constrained =
      SelectJointConfiguration(pool, opts);
  ASSERT_TRUE(constrained.ok()) << constrained.status().ToString();
  EXPECT_LE(constrained.value().total_storage_bytes,
            opts.storage_budget_bytes + 1e-6);
  // Feasibility costs something: the constrained optimum cannot beat the
  // unconstrained one.
  EXPECT_GE(constrained.value().total_cost, unconstrained.total_cost - 1e-9);
  for (std::size_t i = 0; i < paths_.size(); ++i) {
    EXPECT_TRUE(constrained.value()
                    .per_path[i]
                    .config.Validate(paths_[i].path.length())
                    .ok());
  }
}

TEST_F(JointOptimizerTest, ZeroBudgetWithoutNoneIsAClearError) {
  const CandidatePool pool =
      CandidatePool::Build(setup_.schema, setup_.catalog, paths_).value();
  JointOptions opts;
  opts.storage_budget_bytes = 0;
  const Result<JointSelectionResult> r = SelectJointConfiguration(pool, opts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(r.status().message().find("storage budget"), std::string::npos);
}

TEST_F(JointOptimizerTest, ZeroBudgetWithNoneDegradesToScans) {
  AdvisorOptions options;
  options.orgs = {IndexOrg::kMX, IndexOrg::kMIX, IndexOrg::kNIX,
                  IndexOrg::kNone};
  const CandidatePool pool =
      CandidatePool::Build(setup_.schema, setup_.catalog, paths_, options)
          .value();
  JointOptions opts;
  opts.storage_budget_bytes = 0;
  const Result<JointSelectionResult> r = SelectJointConfiguration(pool, opts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_NEAR(r.value().total_storage_bytes, 0, 1e-9);
  // Everything degraded to the cheapest feasible (index-free) candidates.
  for (const JointPathSelection& sel : r.value().per_path) {
    for (const IndexedSubpath& part : sel.config.parts()) {
      EXPECT_EQ(part.org, IndexOrg::kNone);
    }
  }
}

TEST_F(JointOptimizerTest, IdenticalPathsPayMaintenanceOnce) {
  const std::vector<PathWorkload> twins = {paths_[0], paths_[0]};
  const CandidatePool pool =
      CandidatePool::Build(setup_.schema, setup_.catalog, twins).value();
  const JointSelectionResult joint = SelectJointConfiguration(pool).value();
  const Recommendation single =
      AdviseIndexConfiguration(setup_.schema, setup_.path, setup_.catalog,
                               setup_.load)
          .value();
  // Twice the retrieval share, one maintenance charge: strictly cheaper
  // than two independent copies.
  EXPECT_LT(joint.total_cost, 2 * single.result.cost - 1e-9);
  for (const ChosenIndex& c : joint.chosen) {
    EXPECT_EQ(c.path_indexes.size(), 2u);
  }
}

}  // namespace
}  // namespace pathix
