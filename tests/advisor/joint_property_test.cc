#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "advisor/workload_advisor.h"

/// \file joint_property_test.cc
/// \brief Randomized-workload properties of the joint optimizer (the
/// companion of tests/core/optimizer_property_test.cc one layer up):
///
///  - joint <= greedy <= independent on any workload of overlapping paths
///    (the greedy merge can only remove duplicated maintenance; the joint
///    optimizer searches a superset of the greedy's solutions);
///  - branch-and-bound and exhaustive enumeration agree on the optimal
///    total (exhaustive is ground truth);
///  - the reported total matches re-derived shared accounting, and every
///    chosen configuration is a valid cover of its path.

namespace pathix {
namespace {

/// A random reference chain C0 -> ... -> C_depth ending in an atomic
/// attribute, with random statistics, plus suffix paths with random loads —
/// suffixes of one chain overlap maximally, which stresses the sharing
/// accounting.
struct RandomWorkload {
  Schema schema;
  Catalog catalog;
  std::vector<PathWorkload> paths;
};

RandomWorkload MakeRandomWorkload(std::uint32_t seed, int depth,
                                  int num_paths) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> objects(500, 100000);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  std::uniform_int_distribution<int> nin(1, 3);
  std::uniform_int_distribution<int> start_level(0, depth - 1);

  RandomWorkload w;
  std::vector<ClassId> classes;
  for (int i = 0; i <= depth; ++i) {
    const ClassId cls = w.schema.AddClass("C" + std::to_string(i)).value();
    classes.push_back(cls);
    const double n = objects(rng);
    const double d = std::max(1.0, n * (0.1 + 0.9 * unit(rng)));
    w.catalog.SetClassStats(cls, ClassStats{n, d, double(nin(rng)), 64});
  }
  for (int i = 0; i < depth; ++i) {
    EXPECT_TRUE(w.schema
                    .AddReferenceAttribute(
                        classes[static_cast<std::size_t>(i)],
                        "a" + std::to_string(i),
                        classes[static_cast<std::size_t>(i + 1)],
                        /*multi_valued=*/unit(rng) < 0.5)
                    .ok());
  }
  EXPECT_TRUE(w.schema
                  .AddAtomicAttribute(classes.back(), "name",
                                      AtomicType::kString)
                  .ok());

  for (int p = 0; p < num_paths; ++p) {
    const int start = p == 0 ? 0 : start_level(rng);  // always one full path
    std::vector<std::string> attrs;
    for (int i = start; i < depth; ++i) {
      attrs.push_back("a" + std::to_string(i));
    }
    attrs.push_back("name");
    PathWorkload pw;
    pw.path = Path::Create(w.schema,
                           classes[static_cast<std::size_t>(start)], attrs)
                  .value();
    for (int i = start; i <= depth; ++i) {
      pw.load.Set(classes[static_cast<std::size_t>(i)], unit(rng),
                  unit(rng) * 0.5, unit(rng) * 0.5);
    }
    w.paths.push_back(std::move(pw));
  }
  return w;
}

TEST(JointPropertyTest, JointLeqGreedyLeqIndependent) {
  for (std::uint32_t seed = 1; seed <= 15; ++seed) {
    const RandomWorkload w = MakeRandomWorkload(seed, /*depth=*/3,
                                                /*num_paths=*/3);
    const Result<WorkloadRecommendation> rec =
        AdviseWorkload(w.schema, w.catalog, w.paths);
    ASSERT_TRUE(rec.ok()) << "seed=" << seed << ": "
                          << rec.status().ToString();
    const WorkloadRecommendation& r = rec.value();
    EXPECT_LE(r.total_cost_joint, r.total_cost_greedy + 1e-7)
        << "seed=" << seed;
    EXPECT_LE(r.total_cost_greedy, r.total_cost_independent + 1e-7)
        << "seed=" << seed;
    for (std::size_t i = 0; i < w.paths.size(); ++i) {
      EXPECT_TRUE(r.joint.per_path[i]
                      .config.Validate(w.paths[i].path.length())
                      .ok())
          << "seed=" << seed << " path=" << i;
    }
  }
}

TEST(JointPropertyTest, BranchAndBoundMatchesExhaustive) {
  for (std::uint32_t seed = 100; seed <= 112; ++seed) {
    const RandomWorkload w = MakeRandomWorkload(seed, /*depth=*/2,
                                                /*num_paths=*/3);
    const CandidatePool pool =
        CandidatePool::Build(w.schema, w.catalog, w.paths).value();
    JointOptions ex_opts;
    ex_opts.algorithm = JointOptions::Algorithm::kExhaustive;
    JointOptions bb_opts;
    bb_opts.algorithm = JointOptions::Algorithm::kBranchAndBound;
    const JointSelectionResult ex =
        SelectJointConfiguration(pool, ex_opts).value();
    const JointSelectionResult bb =
        SelectJointConfiguration(pool, bb_opts).value();
    ASSERT_NEAR(ex.total_cost, bb.total_cost, 1e-7) << "seed=" << seed;
  }
}

TEST(JointPropertyTest, BudgetedSolutionsAreFeasibleAndMonotone) {
  for (std::uint32_t seed = 200; seed <= 208; ++seed) {
    const RandomWorkload w = MakeRandomWorkload(seed, /*depth=*/2,
                                                /*num_paths=*/2);
    AdvisorOptions options;
    options.orgs = {IndexOrg::kMX, IndexOrg::kMIX, IndexOrg::kNIX,
                    IndexOrg::kNone};
    const CandidatePool pool =
        CandidatePool::Build(w.schema, w.catalog, w.paths, options).value();
    const JointSelectionResult unconstrained =
        SelectJointConfiguration(pool).value();

    double previous_cost = unconstrained.total_cost;
    for (const double fraction : {0.75, 0.5, 0.25, 0.0}) {
      JointOptions opts;
      opts.storage_budget_bytes =
          unconstrained.total_storage_bytes * fraction;
      const Result<JointSelectionResult> r =
          SelectJointConfiguration(pool, opts);
      // NONE is a candidate, so a zero-storage assignment always exists.
      ASSERT_TRUE(r.ok()) << "seed=" << seed << ": "
                          << r.status().ToString();
      EXPECT_LE(r.value().total_storage_bytes,
                opts.storage_budget_bytes + 1e-6)
          << "seed=" << seed << " fraction=" << fraction;
      // Tightening the budget can only cost more.
      EXPECT_GE(r.value().total_cost, previous_cost - 1e-7)
          << "seed=" << seed << " fraction=" << fraction;
      previous_cost = r.value().total_cost;
    }
  }
}

}  // namespace
}  // namespace pathix
