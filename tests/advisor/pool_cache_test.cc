// The candidate-pool cache (advisor/candidate_pool.h): pools produced by
// CandidatePoolBuilder must be *identical* to CandidatePool::Build on the
// same inputs — the cache is a pure factorization, never an approximation —
// while Build calls with unchanged statistics reweigh the cached skeleton
// (cache_hits) instead of re-evaluating the organization models.

#include "advisor/candidate_pool.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "datagen/paper_schema.h"

namespace pathix {
namespace {

std::string Fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

/// Full serialization of a pool: every entry, every priced use, every
/// breakdown component — byte-equality here is pool identity.
std::string Dump(const CandidatePool& pool) {
  std::string out;
  out += "paths " + std::to_string(pool.num_paths());
  for (int p = 0; p < pool.num_paths(); ++p) {
    out += " " + std::to_string(pool.path_length(p));
  }
  out += "\n";
  for (const CandidateEntry& e : pool.entries()) {
    out += e.label + " storage " + Fmt(e.storage_bytes) +
           (e.shareable ? " shared" : "") + "\n";
    for (const CandidateUse& u : e.uses) {
      out += "  path " + std::to_string(u.path_index) + " [" +
             std::to_string(u.subpath.start) + "," +
             std::to_string(u.subpath.end) + "] qp " + Fmt(u.query_prefix) +
             " m " + Fmt(u.maintain) + " q " + Fmt(u.breakdown.query) +
             " p " + Fmt(u.breakdown.prefix) + " mm " +
             Fmt(u.breakdown.maintain) + " b " + Fmt(u.breakdown.boundary) +
             "\n";
    }
  }
  return out;
}

class PoolCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    setup_ = MakeExample51Setup();
    full_ = PathWorkload{"people", setup_.path, setup_.load};

    LoadDistribution audit_load;
    audit_load.Set(setup_.company, 0.5, 0.05, 0.05);
    audit_load.Set(setup_.vehicle, 0.3, 0.0, 0.05);
    audit_load.Set(setup_.division, 0.15, 0.1, 0.05);
    audit_ = PathWorkload{
        "audit",
        Path::Create(setup_.schema, setup_.vehicle, {"man", "divs", "name"})
            .value(),
        audit_load};
  }

  PaperSetup setup_;
  PathWorkload full_;
  PathWorkload audit_;
};

TEST_F(PoolCacheTest, CachedPoolIdenticalToDirectBuild) {
  CandidatePoolBuilder builder;
  const std::vector<PathWorkload> workload = {full_, audit_};

  const Result<CandidatePool> direct =
      CandidatePool::Build(setup_.schema, setup_.catalog, workload);
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();
  const Result<CandidatePool> first =
      builder.Build(setup_.schema, setup_.catalog, workload);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(builder.model_rebuilds(), 1u);
  EXPECT_EQ(builder.cache_hits(), 0u);
  EXPECT_EQ(Dump(direct.value()), Dump(first.value()));

  // Drifted loads, unchanged statistics: served from the skeleton, still
  // identical to a from-scratch build under the new loads.
  std::vector<PathWorkload> drifted = workload;
  drifted[0].load = LoadDistribution();
  drifted[0].load.Set(setup_.person, 0.1, 0.4, 0.3);
  drifted[0].load.Set(setup_.division, 0.05, 0.1, 0.05);
  const Result<CandidatePool> cached =
      builder.Build(setup_.schema, setup_.catalog, drifted);
  ASSERT_TRUE(cached.ok()) << cached.status().ToString();
  EXPECT_EQ(builder.model_rebuilds(), 1u);
  EXPECT_EQ(builder.cache_hits(), 1u);
  const Result<CandidatePool> drifted_direct =
      CandidatePool::Build(setup_.schema, setup_.catalog, drifted);
  ASSERT_TRUE(drifted_direct.ok());
  EXPECT_EQ(Dump(drifted_direct.value()), Dump(cached.value()));
  // The reweigh changed real prices (the drift was not a no-op).
  EXPECT_NE(Dump(first.value()), Dump(cached.value()));
}

TEST_F(PoolCacheTest, StatisticsChangeRebuildsModels) {
  CandidatePoolBuilder builder;
  const std::vector<PathWorkload> workload = {full_, audit_};
  ASSERT_TRUE(builder.Build(setup_.schema, setup_.catalog, workload).ok());
  ASSERT_TRUE(builder.Build(setup_.schema, setup_.catalog, workload).ok());
  EXPECT_EQ(builder.model_rebuilds(), 1u);
  EXPECT_EQ(builder.cache_hits(), 1u);

  // New statistics flip the fingerprint: the models re-evaluate and the
  // result matches a direct build against the new catalog.
  Catalog changed = setup_.catalog;
  ClassStats stats = changed.GetClassStats(setup_.division);
  stats.d = stats.d * 2 + 1;
  changed.SetClassStats(setup_.division, stats);
  const Result<CandidatePool> rebuilt =
      builder.Build(setup_.schema, changed, workload);
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status().ToString();
  EXPECT_EQ(builder.model_rebuilds(), 2u);
  EXPECT_EQ(builder.cache_hits(), 1u);
  const Result<CandidatePool> direct =
      CandidatePool::Build(setup_.schema, changed, workload);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(Dump(direct.value()), Dump(rebuilt.value()));
}

TEST_F(PoolCacheTest, PathSetChangeAndInvalidateRebuild) {
  CandidatePoolBuilder builder;
  ASSERT_TRUE(builder.Build(setup_.schema, setup_.catalog, {full_}).ok());
  // A different path set cannot reuse the skeleton.
  const Result<CandidatePool> two =
      builder.Build(setup_.schema, setup_.catalog, {full_, audit_});
  ASSERT_TRUE(two.ok());
  EXPECT_EQ(builder.model_rebuilds(), 2u);
  const Result<CandidatePool> direct =
      CandidatePool::Build(setup_.schema, setup_.catalog, {full_, audit_});
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(Dump(direct.value()), Dump(two.value()));

  // Invalidate drops the skeleton even with nothing changed.
  builder.Invalidate();
  ASSERT_TRUE(
      builder.Build(setup_.schema, setup_.catalog, {full_, audit_}).ok());
  EXPECT_EQ(builder.model_rebuilds(), 3u);
  EXPECT_EQ(builder.cache_hits(), 0u);
}

}  // namespace
}  // namespace pathix
